#include "energy/energy_model.hpp"

namespace stcache {

EnergyBreakdown EnergyModel::evaluate(const CacheConfig& cfg,
                                      const CacheStats& s,
                                      std::uint32_t victim_entries) const {
  EnergyBreakdown e;

  const double e_full = hit_energy(cfg);
  const double e_pred = predicted_probe_energy(cfg);

  // Probe energy. Prediction-on accesses always pay the predicted-way
  // probe; only those that do not first-hit pay the full-set probe on the
  // second cycle (a miss also falls through to the full probe). With
  // prediction off every access pays the full-set probe, regardless of any
  // stale prediction counters in the stats.
  if (cfg.way_prediction) {
    const double pred_accesses = static_cast<double>(s.pred_accesses);
    const double pred_first_hits = static_cast<double>(s.pred_first_hits);
    const double unpredicted =
        static_cast<double>(s.accesses - s.pred_accesses);
    e.cache_access = pred_accesses * e_pred +
                     (pred_accesses - pred_first_hits) * e_full +
                     unpredicted * e_full;
  } else {
    e.cache_access = static_cast<double>(s.accesses) * e_full;
  }

  // Victim-buffer activity: every probe pays the CAM compare; every hit
  // pays the on-chip swap (which is what saves the off-chip access).
  e.cache_access +=
      static_cast<double>(s.victim_probes) *
          cacti_.victim_probe_energy(victim_entries) +
      static_cast<double>(s.victim_hits) * cacti_.victim_swap_energy();

  // Filling fetched lines into the array.
  const double fill_lines =
      static_cast<double>(s.fill_bytes) / kPhysicalLineBytes;
  e.cache_fill = fill_lines * fill_energy_per_line(cfg);

  // Leakage of the powered banks over the whole interval.
  e.cache_static = static_cast<double>(s.cycles) *
                   params_.e_static_per_bank_cycle() *
                   static_cast<double>(cfg.banks_powered());

  // Off-chip: one read transaction per miss (the logical line), plus
  // write-back traffic (evictions and reconfiguration write-backs).
  const double wb_lines =
      static_cast<double>(s.writeback_bytes + s.reconfig_writeback_bytes) /
      kPhysicalLineBytes;
  e.offchip = static_cast<double>(s.misses) *
                  offchip_read_energy(cfg.line_bytes()) +
              wb_lines * offchip_writeback_energy_per_line() +
              // Write-through traffic: the write buffer coalesces stores, so
              // charge the per-16B write-back energy pro-rated by bytes.
              (static_cast<double>(s.write_through_bytes) / kPhysicalLineBytes) *
                  offchip_writeback_energy_per_line();

  // Processor stall energy.
  e.cpu_stall =
      static_cast<double>(s.stall_cycles) * params_.e_stall_per_cycle();

  return e;
}

EnergyBreakdown EnergyModel::evaluate_generic(const CacheGeometry& g,
                                              const CacheStats& s) const {
  EnergyBreakdown e;
  e.cache_access = static_cast<double>(s.accesses) * cacti_.generic_access_energy(g);

  const double fill_lines = static_cast<double>(s.fill_bytes) / g.line_bytes;
  e.cache_fill = fill_lines * cacti_.generic_fill_energy_per_line(g);

  e.cache_static = static_cast<double>(s.cycles) *
                   params_.e_static_per_bank_cycle() *
                   MiniCacti::generic_bank_equivalents(g);

  const double wb_bytes =
      static_cast<double>(s.writeback_bytes + s.reconfig_writeback_bytes);
  e.offchip = static_cast<double>(s.misses) * offchip_read_energy(g.line_bytes) +
              (wb_bytes / kPhysicalLineBytes) * offchip_writeback_energy_per_line();

  e.cpu_stall =
      static_cast<double>(s.stall_cycles) * params_.e_stall_per_cycle();
  return e;
}

}  // namespace stcache
