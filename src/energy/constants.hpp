// Technology and platform constants for the energy model (Equation 1 and 2
// of the paper), in SI units.
//
// The paper takes cache hit energy from a 0.18 um CMOS layout of the
// configurable cache (cross-checked against CACTI), off-chip access energy
// from a Samsung memory datasheet, and stall energy from a 0.18 um MIPS
// processor. We do not have those artifacts; the constants below are
// datasheet-plausible 0.18 um values chosen so that the *ratios* the
// heuristic depends on hold (an off-chip access costs roughly two orders of
// magnitude more than a cache hit; static energy is a small but visible
// fraction; larger/wider caches cost more per access). DESIGN.md records
// this substitution.
#pragma once

namespace stcache {

struct EnergyParams {
  // --- technology --------------------------------------------------------
  double vdd = 1.8;                 // volts, 0.18 um nominal supply
  double clock_hz = 200e6;          // paper's tuner runs at 200 MHz

  // --- cache array (mini-CACTI inputs) ------------------------------------
  // Effective switched capacitance per bitline, per row attached (drain +
  // wire), and fixed per-bitline overhead (precharge, sense amp, mux).
  double c_bitline_per_row = 1.8e-15;   // farads per cell on the bitline
  double c_bitline_fixed = 40e-15;      // farads
  double bitline_swing = 0.4;           // fraction of vdd swung on a read
  // Wordline capacitance per attached cell and driver overhead.
  double c_wordline_per_cell = 1.2e-15; // farads
  double c_wordline_fixed = 30e-15;     // farads
  // Row decoder energy per decoded row-address bit.
  double e_decode_per_bit = 6e-12;      // joules
  // Tag comparator energy per tag bit compared.
  double e_compare_per_bit = 0.35e-12;  // joules
  // Global routing / output mux energy per powered 2 KB bank spanned.
  double e_route_per_bank = 32e-12;     // joules
  // Sense amplifier energy per bit sensed.
  double e_sense_per_bit = 0.15e-12;    // joules
  // Output driver energy for a 32-bit word delivered to the CPU.
  double e_output_word = 15e-12;        // joules

  // --- static (leakage) ---------------------------------------------------
  // Leakage power per powered 2 KB bank (0.18 um leakage is modest; gated
  // banks leak nothing thanks to the gated-Vdd shutdown).
  double p_static_per_bank = 0.12e-3;   // watts

  // --- off-chip memory -----------------------------------------------------
  // Fixed energy per off-chip transaction (row activation, control) and
  // incremental energy per byte transferred, read or write.
  double e_mem_fixed = 3e-9;            // joules per transaction
  double e_mem_per_byte = 0.20e-9;      // joules per byte

  // --- processor -----------------------------------------------------------
  // Power burned by the stalled microprocessor while waiting on a miss.
  double p_cpu_stall = 75e-3;           // watts

  // --- tuner hardware (Section 3.5 / 4) ------------------------------------
  double tuner_power = 2.69e-3;         // watts at 200 MHz (paper's synthesis)
  unsigned tuner_cycles_per_config = 64;  // gate-level simulation result
  unsigned tuner_gates = 4000;            // reported size
  double tuner_area_mm2 = 0.039;          // 0.18 um CMOS

  double cycle_seconds() const { return 1.0 / clock_hz; }
  double e_static_per_bank_cycle() const {
    return p_static_per_bank * cycle_seconds();
  }
  double e_stall_per_cycle() const { return p_cpu_stall * cycle_seconds(); }
};

}  // namespace stcache
