// Equation 1 and Equation 2 of the paper.
//
//   E_total   = E_dynamic + E_static
//   E_dynamic = Cache_total * E_hit + Cache_misses * E_miss
//   E_miss    = E_offchip_access + E_uP_stall + E_cache_block_fill
//   E_static  = Cycles * E_static_per_cycle
//
//   E_tuner   = P_tuner * Time_total * NumSearch            (Equation 2)
//
// The model consumes CacheStats counters and produces an itemized
// EnergyBreakdown so experiments can plot the on-chip / off-chip
// decomposition of Figure 2 as well as the E_total the heuristic minimizes.
#pragma once

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/stats.hpp"
#include "energy/constants.hpp"
#include "energy/mini_cacti.hpp"

namespace stcache {

struct EnergyBreakdown {
  double cache_access = 0.0;  // dynamic probe/hit energy of the cache array
  double cache_fill = 0.0;    // writing fetched lines into the array
  double cache_static = 0.0;  // leakage over the elapsed cycles
  double offchip = 0.0;       // off-chip memory fetch + write-back energy
  double cpu_stall = 0.0;     // processor energy while stalled on misses

  double total() const {
    return cache_access + cache_fill + cache_static + offchip + cpu_stall;
  }
  // The paper's Figure 2 split: energy dissipated on chip by the cache ...
  double onchip_cache() const { return cache_access + cache_fill + cache_static; }
  // ... versus energy attributable to going off chip.
  double offchip_memory() const { return offchip + cpu_stall; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o) {
    cache_access += o.cache_access;
    cache_fill += o.cache_fill;
    cache_static += o.cache_static;
    offchip += o.offchip;
    cpu_stall += o.cpu_stall;
    return *this;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& params = EnergyParams{})
      : params_(params), cacti_(params) {}

  const EnergyParams& params() const { return params_; }
  const MiniCacti& cacti() const { return cacti_; }

  // --- per-event energies (platform cache) --------------------------------
  double hit_energy(const CacheConfig& cfg) const {
    return cacti_.platform_access_energy(cfg);
  }
  double predicted_probe_energy(const CacheConfig& cfg) const {
    return cacti_.platform_predicted_probe_energy(cfg);
  }
  double fill_energy_per_line(const CacheConfig& cfg) const {
    return cacti_.platform_fill_energy_per_line(cfg);
  }
  // Off-chip energy of one read transaction of `bytes`.
  double offchip_read_energy(std::uint32_t bytes) const {
    return params_.e_mem_fixed + static_cast<double>(bytes) * params_.e_mem_per_byte;
  }
  // Off-chip energy of writing back one 16 B line (page-mode write: half
  // the fixed transaction overhead).
  double offchip_writeback_energy_per_line() const {
    return 0.5 * params_.e_mem_fixed +
           static_cast<double>(kPhysicalLineBytes) * params_.e_mem_per_byte;
  }

  // --- Equation 1 -----------------------------------------------------------
  // Evaluate total memory-access energy of running with `cfg` for the
  // interval summarized by `stats` (platform cache). `victim_entries` sizes
  // the optional victim buffer whose probes/hits appear in the stats.
  EnergyBreakdown evaluate(const CacheConfig& cfg, const CacheStats& stats,
                           std::uint32_t victim_entries = 0) const;

  // Same for a generic cache geometry (Figure 2 sweep, L2 caches).
  EnergyBreakdown evaluate_generic(const CacheGeometry& g,
                                   const CacheStats& stats) const;

  // --- Equation 2 -----------------------------------------------------------
  // Energy consumed by the hardware tuner searching `configs_searched`
  // configurations (P_tuner * time_per_search * NumSearch).
  double tuner_energy(unsigned configs_searched) const {
    const double seconds_per_search =
        static_cast<double>(params_.tuner_cycles_per_config) *
        params_.cycle_seconds();
    return params_.tuner_power * seconds_per_search *
           static_cast<double>(configs_searched);
  }

 private:
  EnergyParams params_;
  MiniCacti cacti_;
};

}  // namespace stcache
