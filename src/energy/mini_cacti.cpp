#include "energy/mini_cacti.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace stcache {

double MiniCacti::array_read_energy(std::uint32_t rows,
                                    std::uint32_t bits_read) const {
  if (rows == 0 || bits_read == 0) fail("array_read_energy: empty array");
  // Bitline: each read bit swings a (differential) bitline pair loaded by
  // one access-transistor drain per row plus fixed precharge/mux overhead.
  const double c_bitline =
      static_cast<double>(rows) * p_.c_bitline_per_row + p_.c_bitline_fixed;
  const double e_bitline =
      static_cast<double>(bits_read) * c_bitline * p_.vdd * (p_.vdd * p_.bitline_swing);
  // Wordline: one full-swing wire across the selected row.
  const double c_wordline = static_cast<double>(bits_read) * p_.c_wordline_per_cell +
                            p_.c_wordline_fixed;
  const double e_wordline = c_wordline * p_.vdd * p_.vdd;
  // Sense amplifiers.
  const double e_sense = static_cast<double>(bits_read) * p_.e_sense_per_bit;
  return e_bitline + e_wordline + e_sense;
}

double MiniCacti::decode_energy(std::uint32_t rows) const {
  if (rows == 0) fail("decode_energy: empty array");
  const auto bits = static_cast<std::uint32_t>(std::bit_width(rows - 1));
  return static_cast<double>(bits == 0 ? 1 : bits) * p_.e_decode_per_bit;
}

double MiniCacti::bank_probe_energy() const {
  const std::uint32_t data_bits = kPhysicalLineBytes * 8;
  return array_read_energy(kRowsPerBank, data_bits + kStoredTagBits) +
         tag_compare_energy();
}

double MiniCacti::platform_access_energy(const CacheConfig& cfg) const {
  // Index decode spans the configuration's full index width.
  const double decode = decode_energy(cfg.num_sets());
  const double probes = static_cast<double>(cfg.ways()) * bank_probe_energy();
  const double route =
      static_cast<double>(cfg.banks_powered()) * p_.e_route_per_bank;
  return decode + probes + route + p_.e_output_word;
}

double MiniCacti::platform_predicted_probe_energy(const CacheConfig& cfg) const {
  const double decode = decode_energy(cfg.num_sets());
  const double route =
      static_cast<double>(cfg.banks_powered()) * p_.e_route_per_bank;
  return decode + bank_probe_energy() + route + p_.e_output_word;
}

double MiniCacti::platform_fill_energy_per_line(const CacheConfig& cfg) const {
  // Writing a 16 B line + tag into one bank; write energy is close to read
  // energy for this array style (full-swing write offsets the absent sense).
  const std::uint32_t bits = kPhysicalLineBytes * 8 + kStoredTagBits;
  return decode_energy(cfg.num_sets()) + array_read_energy(kRowsPerBank, bits);
}

double MiniCacti::victim_swap_energy() const {
  const std::uint32_t bits = kPhysicalLineBytes * 8 + kStoredTagBits;
  // Buffer side: a tiny array (model as an 8-row subarray); main side: one
  // bank row. Read + write on each.
  return 2.0 * array_read_energy(8, bits) +
         2.0 * array_read_energy(kRowsPerBank, bits);
}

double MiniCacti::generic_access_energy(const CacheGeometry& g) const {
  if (!g.valid()) fail("generic_access_energy: invalid geometry");
  const std::uint32_t rows_per_way = g.num_sets();
  const std::uint32_t subarray_rows =
      rows_per_way < kMaxSubarrayRows ? rows_per_way : kMaxSubarrayRows;
  const std::uint32_t bits = g.line_bytes * 8 + kStoredTagBits;
  // One subarray activated per way; routing grows with the physical span of
  // the array (sqrt of the powered area, in 2 KB-bank units).
  const double route =
      std::sqrt(generic_bank_equivalents(g)) * p_.e_route_per_bank;
  return decode_energy(rows_per_way) +
         static_cast<double>(g.assoc) *
             (array_read_energy(subarray_rows, bits) + tag_compare_energy()) +
         route + p_.e_output_word;
}

double MiniCacti::generic_fill_energy_per_line(const CacheGeometry& g) const {
  const std::uint32_t rows_per_way = g.num_sets();
  const std::uint32_t subarray_rows =
      rows_per_way < kMaxSubarrayRows ? rows_per_way : kMaxSubarrayRows;
  const std::uint32_t bits = g.line_bytes * 8 + kStoredTagBits;
  return decode_energy(rows_per_way) + array_read_energy(subarray_rows, bits);
}

}  // namespace stcache
