// Analytical SRAM/cache access-energy model ("mini-CACTI").
//
// The paper obtained per-configuration hit energies from a 0.18 um layout
// and cross-checked them against CACTI 2.0. We reproduce the analytical
// route: decoder + wordline + bitline + sense amp + tag compare + routing +
// output driver, with 0.18 um capacitance constants from
// energy/constants.hpp. The model covers
//
//  * the platform cache's fixed 2 KB banks (128 rows x 16 B + full tag),
//    giving the six distinct hit energies the tuner datapath stores in its
//    16-bit registers, and
//  * arbitrary set-associative geometries (subbanked for large arrays) for
//    the Figure 2 size sweep and the L2 of the multi-level extension.
#pragma once

#include <cstdint>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "energy/constants.hpp"

namespace stcache {

class MiniCacti {
 public:
  explicit MiniCacti(const EnergyParams& params) : p_(params) {}

  // Energy to read `bits_read` bits from one subarray of `rows` rows
  // (bitlines + wordline + sense amps). Excludes decode/routing/output.
  double array_read_energy(std::uint32_t rows, std::uint32_t bits_read) const;

  // Row decoder energy for an array with `rows` rows.
  double decode_energy(std::uint32_t rows) const;

  // Tag comparator energy (full tag, as the configurable cache always
  // compares the full stored block address).
  double tag_compare_energy() const { return kStoredTagBits * p_.e_compare_per_bit; }

  // One platform bank probe: tag + data read of a 128-row, 16 B-line bank.
  double bank_probe_energy() const;

  // --- platform (configurable) cache ---------------------------------------
  // Full-set hit/probe energy: decode + one bank probe per activated way +
  // routing across powered banks + output driver. Independent of line size
  // (the physical line is fixed at 16 B), matching the paper's observation.
  double platform_access_energy(const CacheConfig& cfg) const;

  // Way-predicted first probe: a single way is activated.
  double platform_predicted_probe_energy(const CacheConfig& cfg) const;

  // Writing one fetched 16 B physical line into the array.
  double platform_fill_energy_per_line(const CacheConfig& cfg) const;

  // --- victim buffer --------------------------------------------------------
  // Probing an N-entry fully associative buffer: N parallel full-tag
  // compares (CAM-style).
  double victim_probe_energy(std::uint32_t entries) const {
    return static_cast<double>(entries) * tag_compare_energy();
  }
  // A victim hit swaps two 16 B lines between the buffer and the main
  // array: one read + one write on each side.
  double victim_swap_energy() const;

  // --- generic cache (Figure 2 sweep, L2) ----------------------------------
  double generic_access_energy(const CacheGeometry& g) const;
  double generic_fill_energy_per_line(const CacheGeometry& g) const;

  // Number of 2 KB-bank equivalents a generic cache powers (for leakage).
  static double generic_bank_equivalents(const CacheGeometry& g) {
    return static_cast<double>(g.size_bytes) / kBankBytes;
  }

  // Full stored tag width: block address bits for a 32-bit address space
  // with 16 B blocks, less the minimum index width. We keep 24 bits, enough
  // for any mapping the platform uses (the paper: "checking the full tag is
  // reasonable").
  static constexpr std::uint32_t kStoredTagBits = 24;
  // Largest subarray before an array is split (CACTI-style banking).
  static constexpr std::uint32_t kMaxSubarrayRows = 256;

 private:
  EnergyParams p_;
};

}  // namespace stcache
