// Named phase-mixed scenarios: deterministic mega-traces with ground truth.
//
// Each scenario captures a handful of the Table 1 kernels (plus the
// synthetic parser-like generator), picks one of the two split streams,
// and composes a long packed stream from them via trace/phase_mix. The
// result carries the ground-truth segment list, which is what the oracle
// in bench_phase_adaptive and the boundary tests judge against.
//
// This lives in src/phase (not src/trace) because it binds the workload
// registry: stc_workloads links stc_trace, so the binding has to sit above
// both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/phase_mix.hpp"

namespace stcache {

struct PhaseScenario {
  std::string name;
  std::string description;
  bool instruction = true;  // which split stream the scenario composes
};

// The scenario catalog, in fixed order.
const std::vector<PhaseScenario>& phase_scenarios();

// Look up by name; fail()s with the known names on a miss.
const PhaseScenario& find_phase_scenario(const std::string& name);

// Build the scenario's stream + ground truth. `scale` multiplies every
// segment length (1 = the calibrated default, minutes of simulated
// traffic). Deterministic: same name + scale -> byte-identical stream.
PhaseMixedStream build_phase_scenario(const std::string& name,
                                      unsigned scale = 1);

}  // namespace stcache
