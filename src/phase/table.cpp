#include "phase/table.hpp"

namespace stcache {

std::optional<PhaseTable::Match> PhaseTable::nearest(
    const PhaseSignature& key) const {
  std::optional<Match> best;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double d = signature_distance(key, entries_[i].key);
    if (!best || d < best->distance) best = Match{i, d};
  }
  return best;
}

std::size_t PhaseTable::insert(const PhaseSignature& key,
                               const CacheConfig& config,
                               std::uint64_t phase) {
  entries_.push_back({key, config, phase, 0});
  return entries_.size() - 1;
}

}  // namespace stcache
