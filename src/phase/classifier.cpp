#include "phase/classifier.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace stcache {

void SignatureAccum::add(std::span<const std::uint32_t> words,
                         unsigned offset_mod, std::uint32_t& prev_block) {
  const std::uint32_t* p = words.data();
  const std::size_t n = words.size();
  sig_.words += n;
  std::size_t i = (kSampleStride - offset_mod) % kSampleStride;
  std::uint32_t prev = prev_block;
  std::uint64_t samples = 0, writes = 0, seq = 0, rep = 0;
  if (i < n && prev == kNoPrevBlock) {
    // First sample ever for this prev-chain: no predecessor to compare.
    const std::uint32_t w = p[i];
    const std::uint32_t block = w & 0x7FFFFFFFu;
    ++samples;
    writes += w >> 31;
    const std::uint32_t idx = (block * 0x9E3779B9u) >> 20;
    bitmap_[idx >> 6] |= 1ull << (idx & 63);
    prev = block;
    i += kSampleStride;
  }
  for (; i < n; i += kSampleStride) {
    const std::uint32_t w = p[i];
    const std::uint32_t block = w & 0x7FFFFFFFu;
    ++samples;
    writes += w >> 31;
    const std::uint32_t idx = (block * 0x9E3779B9u) >> 20;
    bitmap_[idx >> 6] |= 1ull << (idx & 63);
    // Signed log2 delta bucket: 0 = repeat, 1..31 forward strides by
    // magnitude, 32..62 backward. Shape, not location — recurrences of
    // the same behavior at a different address land in the same buckets.
    // Branchless: the sign of delta is unpredictable on mixed streams and
    // a mispredicting ternary here costs ~2x on the whole hot loop.
    const std::int32_t delta =
        static_cast<std::int32_t>(block) - static_cast<std::int32_t>(prev);
    const std::uint32_t sign =
        static_cast<std::uint32_t>(delta >> 31);  // 0 or 0xFFFFFFFF
    const std::uint32_t mag =
        (static_cast<std::uint32_t>(delta) ^ sign) - sign;
    const unsigned bkt = (sign & 31u) + std::bit_width(mag);
    ++sig_.buckets[bkt];
    seq += (delta == 0) | (delta == 1);
    rep += delta == 0;
    prev = block;
  }
  sig_.samples += samples;
  sig_.writes += writes;
  sig_.seq += seq;
  sig_.rep += rep;
  prev_block = prev;
}

void SignatureAccum::merge(const SignatureAccum& other) {
  sig_.words += other.sig_.words;
  sig_.samples += other.sig_.samples;
  sig_.writes += other.sig_.writes;
  sig_.seq += other.sig_.seq;
  sig_.rep += other.sig_.rep;
  for (std::size_t i = 0; i < sig_.buckets.size(); ++i)
    sig_.buckets[i] += other.sig_.buckets[i];
  for (std::size_t i = 0; i < bitmap_.size(); ++i)
    bitmap_[i] |= other.bitmap_[i];
}

void SignatureAccum::reset() {
  sig_ = PhaseSignature{};
  bitmap_.fill(0);
}

PhaseSignature SignatureAccum::snapshot() const {
  PhaseSignature s = sig_;
  std::uint64_t fp = 0;
  for (const std::uint64_t w : bitmap_) fp += std::popcount(w);
  s.footprint = fp;
  return s;
}

double signature_distance(const PhaseSignature& a, const PhaseSignature& b) {
  const double an = static_cast<double>(std::max<std::uint64_t>(1, a.samples));
  const double bn = static_cast<double>(std::max<std::uint64_t>(1, b.samples));
  // Histogram L1 over normalized stride-shape buckets, halved so the term
  // is 1.0 for fully disjoint shapes.
  double hist = 0.0;
  for (std::size_t i = 0; i < a.buckets.size(); ++i)
    hist += std::abs(static_cast<double>(a.buckets[i]) / an -
                     static_cast<double>(b.buckets[i]) / bn);
  hist *= 0.5;
  // Footprint compares *counts*, not which blocks: working-set size drives
  // the cache-size choice and is stable across recurrences of a behavior
  // at shifted addresses.
  const double fa = static_cast<double>(a.footprint);
  const double fb = static_cast<double>(b.footprint);
  const double fp = std::abs(fa - fb) / std::max({fa, fb, 1.0});
  const double wr = std::abs(static_cast<double>(a.writes) / an -
                             static_cast<double>(b.writes) / bn);
  const double sq = std::abs(static_cast<double>(a.seq) / an -
                             static_cast<double>(b.seq) / bn);
  return 0.40 * hist + 0.35 * fp + 0.15 * wr + 0.10 * sq;
}

PhaseClassifier::PhaseClassifier(Params params, Sink sink)
    : params_(params), sink_(std::move(sink)) {}

void PhaseClassifier::feed(std::span<const std::uint32_t> words) {
  while (!words.empty()) {
    const std::uint64_t room = params_.window_words - window_fill_;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(words.size(), room));
    cur_.add(words.first(take),
             static_cast<unsigned>(words_seen_ % SignatureAccum::kSampleStride),
             prev_block_);
    words_seen_ += take;
    window_fill_ += take;
    if (window_fill_ == params_.window_words) complete_window(window_fill_);
    words = words.subspan(take);
  }
}

void PhaseClassifier::finish() {
  if (window_fill_ > 0) complete_window(window_fill_);
}

void PhaseClassifier::complete_window(std::uint64_t window_words) {
  Window ev;
  ev.index = windows_;
  ev.begin = words_seen_ - window_words;
  ev.words = window_words;
  // A final sliver carries too few samples for a stable signature: always
  // fold it into the current phase.
  const bool tiny = window_words < params_.window_words / 4;
  if (!phase_started_) {
    phase_.merge(cur_);
    phase_started_ = true;
  } else {
    ev.distance = signature_distance(cur_.snapshot(), phase_.snapshot());
    if (tiny || ev.distance <= params_.boundary_threshold) {
      ev.action = Action::kContinue;
      ev.resolved_pending = static_cast<unsigned>(pending_.size());
      if (!pending_.empty()) {
        ++blips_;
        for (const SignatureAccum& p : pending_) phase_.merge(p);
        pending_.clear();
      }
      phase_.merge(cur_);
    } else {
      if (pending_.empty()) pending_begin_ = ev.begin;
      pending_.push_back(cur_);
      if (pending_.size() >= params_.debounce) {
        ev.action = Action::kBoundary;
        ev.resolved_pending = static_cast<unsigned>(pending_.size());
        ev.phase_begin = pending_begin_;
        ++boundaries_;
        phase_.reset();
        for (const SignatureAccum& p : pending_) phase_.merge(p);
        pending_.clear();
      } else {
        ev.action = Action::kPending;
      }
    }
  }
  ++windows_;
  window_fill_ = 0;
  cur_.reset();
  if (sink_) sink_(ev);
}

}  // namespace stcache
