// Phase history table: signature -> tuned configuration.
//
// The phase-distance-mapping methodology (Adegbija, Gordon-Ross & Munir,
// PAPERS.md): when a new phase appears, look up the nearest previously
// tuned phase by signature distance. If it is close enough, *reuse* its
// configuration — the whole point of the subsystem, turning an O(search)
// re-tune into an O(table) lookup; otherwise run a fresh sweep and insert
// the result. Lookups are deterministic: ties break toward the earliest
// inserted entry.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/config.hpp"
#include "phase/classifier.hpp"

namespace stcache {

struct PhaseTableEntry {
  PhaseSignature key;     // signature of the phase's early windows
  CacheConfig config;     // what the full sweep chose for it
  std::uint64_t phase = 0;  // timeline index of the phase that was swept
  std::uint64_t reuses = 0;
};

class PhaseTable {
 public:
  struct Match {
    std::size_t entry = 0;
    double distance = 0.0;
  };

  // Nearest entry by signature_distance; nullopt when empty.
  std::optional<Match> nearest(const PhaseSignature& key) const;

  std::size_t insert(const PhaseSignature& key, const CacheConfig& config,
                     std::uint64_t phase);
  void note_reuse(std::size_t entry) { ++entries_[entry].reuses; }

  const std::vector<PhaseTableEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<PhaseTableEntry> entries_;
};

}  // namespace stcache
