// Streaming phase detection over packed address streams.
//
// A phase is a stretch of the trace whose working set looks the same; the
// tuner's job (docs/phases.md) is to notice when that stops being true.
// The classifier summarizes each fixed-size window of the packed stream
// (pack_stream format: bit 31 = write, bits 30..0 = 16 B block number)
// into a PhaseSignature — a hashed-footprint sketch plus write/locality
// ratios — and compares each completed window against the accumulated
// signature of the current phase. A window whose distance exceeds the
// boundary threshold is *pending*; `debounce` consecutive pending windows
// confirm a boundary (retroactively, at the first pending window), while a
// window that falls back under the threshold folds the pending streak into
// the current phase as a blip.
//
// Hot-path contract: the classifier rides the streaming capture→sweep
// pipeline at chunk granularity, so its per-word cost must be a few
// percent of the 27-config oneshot sweep it accompanies
// (bench_phase_adaptive gates overhead <= 5%). It therefore samples the
// stream at a fixed stride on *absolute* word offsets — which also makes
// every signature invariant to how the stream was sliced into feed() calls
// (chunked vs. materialized equivalence, tests/phase_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace stcache {

// Working-set sketch of a stretch of packed words. All counts are over the
// *sampled* words (1 in sample_stride); `words` counts every word, so
// signatures of different-length stretches compare by ratio.
struct PhaseSignature {
  std::uint64_t words = 0;
  std::uint64_t samples = 0;
  std::uint64_t writes = 0;   // sampled write accesses
  std::uint64_t seq = 0;      // sampled block == prev or prev + 1
  std::uint64_t rep = 0;      // sampled block == prev
  std::uint64_t footprint = 0;  // distinct hashed blocks (bitmap popcount)
  // Stride-shape histogram over signed log2 block deltas between
  // consecutive samples: [0] repeat, [1..31] forward by magnitude,
  // [32..62] backward. Location-invariant by construction.
  std::array<std::uint32_t, 64> buckets{};
};

// Distance in [0, 1]: 0 = identical behavior. A weighted blend of the
// histogram L1 distance, relative footprint gap, and write/sequentiality
// ratio gaps; deterministic (fixed-order double arithmetic over integer
// counts). See docs/phases.md for the exact definition and calibration.
double signature_distance(const PhaseSignature& a, const PhaseSignature& b);

// Streaming signature builder. add() may be called with arbitrary slices;
// `offset_mod` is (absolute word offset of the slice) % sample_stride and
// `prev_block` carries the last *sampled* block across slices (pass
// kNoPrevBlock before the first slice of a stretch).
class SignatureAccum {
 public:
  static constexpr std::uint32_t kNoPrevBlock = 0xFFFFFFFFu;
  static constexpr unsigned kSampleStride = 8;  // must divide window_words

  void add(std::span<const std::uint32_t> words, unsigned offset_mod,
           std::uint32_t& prev_block);
  void merge(const SignatureAccum& other);
  void reset();
  PhaseSignature snapshot() const;  // fills footprint from the bitmap
  std::uint64_t words() const { return sig_.words; }

 private:
  PhaseSignature sig_;                      // footprint filled at snapshot
  std::array<std::uint64_t, 64> bitmap_{};  // 4096-bit hashed footprint
};

class PhaseClassifier {
 public:
  struct Params {
    std::uint64_t window_words = 1u << 16;  // multiple of kSampleStride
    double boundary_threshold = 0.25;
    unsigned debounce = 2;  // pending windows that confirm a boundary
  };

  enum class Action : std::uint8_t {
    kContinue,  // window belongs to the current phase (pending folds back)
    kPending,   // window deviates; boundary not yet confirmed
    kBoundary,  // boundary confirmed: a new phase started at phase_begin
  };

  // One completed (or final partial) window, reported in stream order.
  struct Window {
    std::uint64_t index = 0;  // 0-based window number
    std::uint64_t begin = 0;  // absolute word offset
    std::uint64_t words = 0;
    double distance = 0.0;    // to the current phase signature
    Action action = Action::kContinue;
    // kContinue: pending windows folded back into the phase (a blip).
    // kBoundary: pending windows (including this one) opening the phase.
    unsigned resolved_pending = 0;
    std::uint64_t phase_begin = 0;  // kBoundary: new phase's first word
  };

  using Sink = std::function<void(const Window&)>;

  explicit PhaseClassifier(Params params, Sink sink = {});

  // Fold the next slice of the stream. Window events fire synchronously,
  // and depend only on the concatenation of everything fed — never on the
  // slicing.
  void feed(std::span<const std::uint32_t> words);

  // Flush the final partial window (if any). A pending streak shorter than
  // the debounce at end of stream is left unresolved; callers treat those
  // windows as part of the final phase.
  void finish();

  PhaseSignature phase_signature() const { return phase_.snapshot(); }
  std::uint64_t windows_completed() const { return windows_; }
  std::uint64_t words_seen() const { return words_seen_; }
  std::uint64_t boundaries() const { return boundaries_; }
  std::uint64_t blips() const { return blips_; }

 private:
  void complete_window(std::uint64_t window_words);

  Params params_;
  Sink sink_;
  std::uint64_t words_seen_ = 0;
  std::uint64_t window_fill_ = 0;  // words in the in-progress window
  std::uint64_t windows_ = 0;
  std::uint64_t boundaries_ = 0;
  std::uint64_t blips_ = 0;
  std::uint32_t prev_block_ = SignatureAccum::kNoPrevBlock;
  SignatureAccum cur_;    // in-progress window
  SignatureAccum phase_;  // current phase (excludes pending windows)
  bool phase_started_ = false;
  std::vector<SignatureAccum> pending_;
  std::uint64_t pending_begin_ = 0;  // offset of first pending window
};

}  // namespace stcache
