#include "phase/scenario.hpp"

#include <initializer_list>
#include <utility>

#include "trace/replay.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "workloads/workload.hpp"

namespace stcache {

const std::vector<PhaseScenario>& phase_scenarios() {
  static const std::vector<PhaseScenario> scenarios = {
      {"squarewave",
       "crc <-> padpcm instruction streams, 24 equal slices: the cleanest "
       "recurring two-phase pattern (small hot loop vs. large kernel)",
       true},
      {"taskset",
       "cyclic executive over crc/jpeg/ucbqsort/padpcm instruction "
       "streams, 3 rounds of uneven time slices",
       true},
      {"datamix",
       "seeded random interleave of five kernel data streams plus the "
       "synthetic parser-like generator",
       false},
  };
  return scenarios;
}

const PhaseScenario& find_phase_scenario(const std::string& name) {
  for (const PhaseScenario& s : phase_scenarios())
    if (s.name == name) return s;
  std::string known;
  for (const PhaseScenario& s : phase_scenarios())
    known += (known.empty() ? "" : ", ") + s.name;
  fail("unknown phase scenario '" + name + "' (known: " + known + ")");
}

PhaseMixedStream build_phase_scenario(const std::string& name,
                                      unsigned scale) {
  if (scale == 0) fail("build_phase_scenario: scale must be > 0");
  const PhaseScenario& sc = find_phase_scenario(name);
  constexpr std::uint64_t kKi = 1024;
  std::vector<std::vector<std::uint32_t>> owned;
  std::vector<PhaseSegmentSpec> plan;
  const auto add_kernels = [&](std::initializer_list<const char*> names) {
    for (const char* n : names) {
      PackedCapture cap = capture_packed(find_workload(n));
      owned.push_back(sc.instruction ? std::move(cap.ifetch)
                                     : std::move(cap.data));
    }
  };
  if (sc.name == "squarewave") {
    add_kernels({"crc", "padpcm"});
    plan = square_wave_plan(768 * kKi * scale, 24);
  } else if (sc.name == "taskset") {
    add_kernels({"crc", "jpeg", "ucbqsort", "padpcm"});
    const std::uint64_t lens[] = {512 * kKi * scale, 768 * kKi * scale,
                                  640 * kKi * scale, 576 * kKi * scale};
    plan = cycle_plan(owned.size(), lens, 4);
  } else {  // datamix
    add_kernels({"adpcm", "jpeg", "ucbqsort", "g3fax", "epic"});
    owned.push_back(pack_stream(gen_parser_like({})));
    plan = interleaved_plan(owned.size(), 24, 384 * kKi * scale,
                            768 * kKi * scale, 0xC0FFEEULL);
  }
  std::vector<std::span<const std::uint32_t>> spans(owned.begin(),
                                                    owned.end());
  return compose_phases(spans, plan);
}

}  // namespace stcache
