// Phase-adaptive tuning: classifier + phase table + Fig. 6 sweep.
//
// PhaseAdaptiveTuner consumes a packed stream (whole, or chunk by chunk —
// the timeline is invariant to the slicing) and produces a tuning
// timeline: one record per detected phase, each phase either *reusing* the
// configuration of a previously tuned phase whose signature is within the
// reuse threshold (phase distance mapping, Adegbija et al.) or paying for
// a fresh full-space sweep over the phase's first sweep_windows windows
// (BankAccumulator under the configured engine/sweep-jobs, closed by the
// paper's Fig. 6 heuristic over a primed TraceEvaluator).
//
// Phase lifecycle, per detected phase:
//   warmup   — buffer windows; after key_skip_windows + key_windows
//              windows, build the lookup key from the post-skip windows
//              (the boundary-straddling window is excluded: it mixes two
//              behaviors) and decide reuse vs. sweep;
//   sweeping — feed the buffered + live windows to a fresh bank until
//              sweep_windows windows are in, then tune and table the
//              result;
//   locked   — configuration chosen; windows stream through the
//              classifier only (no buffering beyond the current window).
//
// Determinism: windows close at fixed absolute word offsets and bank
// stats are bit-identical across engines and --sweep-jobs, so the
// timeline (boundaries, verdicts, configs, distances) is byte-identical
// across all of them — repro.sh cmp-gates this through stcache_tune
// --phases.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "cache/config.hpp"
#include "cache/stats.hpp"
#include "energy/energy_model.hpp"
#include "phase/classifier.hpp"
#include "phase/table.hpp"
#include "trace/replay.hpp"

namespace stcache {

struct PhaseTunerParams {
  PhaseClassifier::Params classifier{};
  double reuse_threshold = 0.18;  // table distance at or under which we reuse
  unsigned key_skip_windows = 1;  // boundary windows excluded from the key
  unsigned key_windows = 2;       // windows folded into the lookup key
  unsigned sweep_windows = 4;     // windows a fresh sweep measures
  bool distance_mapping = true;   // false = naive: every phase re-sweeps
  ReplayEngine engine = ReplayEngine::kDefault;
  unsigned sweep_jobs = 0;  // 0 = default_sweep_jobs()
  TimingParams timing{};
};

enum class PhaseVerdict : std::uint8_t { kSwept, kReused };

// One phase of the tuning timeline.
struct PhaseRecord {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive; set when the phase closes
  PhaseVerdict verdict = PhaseVerdict::kSwept;
  CacheConfig config;
  // kReused: distance to the matched table entry. kSwept: distance to the
  // nearest entry at decision time (-1 when the table was empty).
  double table_distance = -1.0;
  std::int64_t matched_phase = -1;  // kReused: phase that swept the entry
  std::uint64_t swept_words = 0;    // words fed to this phase's bank
  unsigned configs_examined = 0;    // Fig. 6 evaluations (0 when reused)
};

class PhaseAdaptiveTuner {
 public:
  PhaseAdaptiveTuner(std::span<const CacheConfig> configs,
                     const EnergyModel& model, PhaseTunerParams params = {});

  void feed(std::span<const std::uint32_t> words);
  // Close the final phase and return the timeline. With metrics enabled
  // (util/metrics), prints the "[phase] boundaries/reuses/sweeps" summary
  // to stderr. Call exactly once.
  std::vector<PhaseRecord> finish();

  const PhaseTable& table() const { return table_; }
  std::uint64_t boundaries() const { return classifier_.boundaries(); }
  std::uint64_t blips() const { return classifier_.blips(); }
  std::uint64_t windows() const { return classifier_.windows_completed(); }
  std::uint64_t words_seen() const { return classifier_.words_seen(); }
  std::uint64_t reuses() const { return reuses_; }
  std::uint64_t sweeps() const { return sweeps_; }
  std::uint64_t swept_words() const { return swept_words_; }

 private:
  enum class State : std::uint8_t { kWarmup, kSweeping, kLocked };
  using Buffer = std::vector<std::uint32_t>;

  void on_window(const PhaseClassifier::Window& ev);
  void phase_window(Buffer&& buf);
  void decide();
  void close_sweep();
  void finalize_phase(std::uint64_t end);
  void start_phase(std::uint64_t begin);

  std::span<const CacheConfig> configs_;
  const EnergyModel* model_;
  PhaseTunerParams params_;
  PhaseClassifier classifier_;
  PhaseTable table_;
  std::vector<PhaseRecord> timeline_;
  bool finished_ = false;

  // Word-level buffering, window aligned: cur_buf_ mirrors the
  // classifier's in-progress window; pending_bufs_ holds windows the
  // classifier has not yet assigned to a phase; warm_bufs_ holds the
  // current phase's windows until the reuse/sweep decision.
  Buffer cur_buf_;
  std::deque<Buffer> pending_bufs_;
  std::deque<Buffer> warm_bufs_;

  // Current-phase state.
  State state_ = State::kWarmup;
  PhaseRecord current_;
  std::uint64_t phase_windows_ = 0;  // windows assigned to this phase
  SignatureAccum key_accum_;
  std::uint32_t key_prev_ = SignatureAccum::kNoPrevBlock;
  unsigned key_windows_seen_ = 0;
  // Whole-phase signature: when a swept phase closes, it is inserted as a
  // second table key for the same config. Early-window keys drift when a
  // recurring behavior resumes at a different position; the whole-phase
  // average is the stable complement (docs/phases.md).
  SignatureAccum whole_accum_;
  std::uint32_t whole_prev_ = SignatureAccum::kNoPrevBlock;
  PhaseSignature pending_key_;  // inserted into the table at close_sweep
  std::optional<BankAccumulator> bank_;
  unsigned bank_windows_ = 0;

  std::uint64_t reuses_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t swept_words_ = 0;
};

// Render a timeline as a deterministic table (stdout-stable across
// engines and shard counts). Used by stcache_tune --phases and the
// example.
void print_phase_timeline(std::ostream& os,
                          std::span<const PhaseRecord> timeline);

}  // namespace stcache
