#include "phase/adaptive.hpp"

#include <algorithm>
#include <iostream>
#include <utility>

#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

namespace stcache {

PhaseAdaptiveTuner::PhaseAdaptiveTuner(std::span<const CacheConfig> configs,
                                       const EnergyModel& model,
                                       PhaseTunerParams params)
    : configs_(configs),
      model_(&model),
      params_(params),
      classifier_(params.classifier,
                  [this](const PhaseClassifier::Window& ev) { on_window(ev); }) {
  if (configs_.empty()) fail("PhaseAdaptiveTuner: empty configuration space");
  if (params_.classifier.window_words % SignatureAccum::kSampleStride != 0)
    fail("PhaseAdaptiveTuner: window_words must be a multiple of the "
         "sample stride");
  if (params_.key_windows == 0 || params_.sweep_windows == 0)
    fail("PhaseAdaptiveTuner: key_windows and sweep_windows must be > 0");
  cur_buf_.reserve(params_.classifier.window_words);
  start_phase(0);
}

void PhaseAdaptiveTuner::feed(std::span<const std::uint32_t> words) {
  if (finished_) fail("PhaseAdaptiveTuner: feed after finish");
  while (!words.empty()) {
    const std::size_t take = static_cast<std::size_t>(std::min<std::uint64_t>(
        words.size(), params_.classifier.window_words - cur_buf_.size()));
    cur_buf_.insert(cur_buf_.end(), words.begin(), words.begin() + take);
    // May complete a window, which fires on_window() synchronously and
    // consumes cur_buf_ (it holds exactly the completed window).
    classifier_.feed(words.first(take));
    words = words.subspan(take);
  }
}

void PhaseAdaptiveTuner::on_window(const PhaseClassifier::Window& ev) {
  Buffer buf = std::move(cur_buf_);
  cur_buf_.clear();
  cur_buf_.reserve(params_.classifier.window_words);
  switch (ev.action) {
    case PhaseClassifier::Action::kContinue:
      // Any pending streak was a blip: those windows, then this one, all
      // belong to the current phase.
      while (!pending_bufs_.empty()) {
        phase_window(std::move(pending_bufs_.front()));
        pending_bufs_.pop_front();
      }
      phase_window(std::move(buf));
      break;
    case PhaseClassifier::Action::kPending:
      pending_bufs_.push_back(std::move(buf));
      break;
    case PhaseClassifier::Action::kBoundary:
      finalize_phase(ev.phase_begin);
      start_phase(ev.phase_begin);
      while (!pending_bufs_.empty()) {
        phase_window(std::move(pending_bufs_.front()));
        pending_bufs_.pop_front();
      }
      phase_window(std::move(buf));
      break;
  }
}

void PhaseAdaptiveTuner::phase_window(Buffer&& buf) {
  ++phase_windows_;
  whole_accum_.add(buf, 0, whole_prev_);
  if (state_ == State::kWarmup) {
    if (phase_windows_ > params_.key_skip_windows &&
        key_windows_seen_ < params_.key_windows) {
      // Window buffers start on a window boundary, so offset_mod is 0.
      key_accum_.add(buf, 0, key_prev_);
      ++key_windows_seen_;
    }
    warm_bufs_.push_back(std::move(buf));
    if (key_windows_seen_ >= params_.key_windows) decide();
  } else if (state_ == State::kSweeping && bank_) {
    bank_->feed(buf);
    current_.swept_words += buf.size();
    swept_words_ += buf.size();
    if (++bank_windows_ >= params_.sweep_windows) close_sweep();
  }
  // kLocked: the phase's configuration is chosen; nothing to retain.
}

void PhaseAdaptiveTuner::decide() {
  pending_key_ = key_accum_.snapshot();
  const std::optional<PhaseTable::Match> m = table_.nearest(pending_key_);
  if (m) current_.table_distance = m->distance;
  if (params_.distance_mapping && m &&
      m->distance <= params_.reuse_threshold) {
    const PhaseTableEntry& e = table_.entries()[m->entry];
    current_.verdict = PhaseVerdict::kReused;
    current_.config = e.config;
    current_.matched_phase = static_cast<std::int64_t>(e.phase);
    table_.note_reuse(m->entry);
    ++reuses_;
    warm_bufs_.clear();
    state_ = State::kLocked;
    return;
  }
  current_.verdict = PhaseVerdict::kSwept;
  state_ = State::kSweeping;
  bank_.emplace(configs_, params_.timing, params_.engine, params_.sweep_jobs);
  bank_windows_ = 0;
  std::deque<Buffer> bufs;
  bufs.swap(warm_bufs_);
  for (Buffer& b : bufs) {
    if (!bank_) break;  // sweep filled and closed mid-drain
    bank_->feed(b);
    current_.swept_words += b.size();
    swept_words_ += b.size();
    if (++bank_windows_ >= params_.sweep_windows) close_sweep();
  }
}

void PhaseAdaptiveTuner::close_sweep() {
  const std::vector<CacheStats> stats = bank_->stats();
  TraceEvaluator eval(std::span<const std::uint32_t>{}, *model_);
  prime_all(eval, configs_, stats);
  const SearchResult r = tune(eval);
  current_.config = r.best;
  current_.configs_examined = r.configs_examined;
  table_.insert(pending_key_, r.best, timeline_.size());
  ++sweeps_;
  bank_.reset();
  state_ = State::kLocked;
}

void PhaseAdaptiveTuner::finalize_phase(std::uint64_t end) {
  if (state_ == State::kWarmup) {
    // Phase ended before the key filled: key off whatever it had (all
    // buffered windows when even the post-skip prefix is empty).
    if (key_windows_seen_ == 0)
      for (const Buffer& b : warm_bufs_) key_accum_.add(b, 0, key_prev_);
    decide();
  }
  if (state_ == State::kSweeping && bank_) close_sweep();
  current_.end = end;
  // A swept phase also files its whole-phase signature: early-window keys
  // drift when a behavior recurs at a shifted position, and the
  // whole-phase average is the stable complement.
  if (current_.verdict == PhaseVerdict::kSwept)
    table_.insert(whole_accum_.snapshot(), current_.config,
                  timeline_.size());
  timeline_.push_back(current_);
}

void PhaseAdaptiveTuner::start_phase(std::uint64_t begin) {
  current_ = PhaseRecord{};
  current_.begin = begin;
  phase_windows_ = 0;
  state_ = State::kWarmup;
  key_accum_.reset();
  key_prev_ = SignatureAccum::kNoPrevBlock;
  key_windows_seen_ = 0;
  whole_accum_.reset();
  whole_prev_ = SignatureAccum::kNoPrevBlock;
  bank_.reset();
  bank_windows_ = 0;
  warm_bufs_.clear();
}

std::vector<PhaseRecord> PhaseAdaptiveTuner::finish() {
  if (finished_) fail("PhaseAdaptiveTuner: finish called twice");
  classifier_.finish();
  // A pending streak shorter than the debounce at end of stream never got
  // a verdict from the classifier: it belongs to the final phase.
  while (!pending_bufs_.empty()) {
    phase_window(std::move(pending_bufs_.front()));
    pending_bufs_.pop_front();
  }
  if (classifier_.words_seen() > 0) finalize_phase(classifier_.words_seen());
  finished_ = true;
  if (metrics_enabled()) {
    std::cerr << "[phase] windows=" << classifier_.windows_completed()
              << " boundaries=" << classifier_.boundaries()
              << " blips=" << classifier_.blips()
              << " phases=" << timeline_.size() << " reuses=" << reuses_
              << " sweeps=" << sweeps_ << " swept-words=" << swept_words_
              << " table=" << table_.size() << "\n";
  }
  return timeline_;
}

void print_phase_timeline(std::ostream& os,
                          std::span<const PhaseRecord> timeline) {
  Table table({"phase", "begin", "end", "verdict", "configuration", "dist",
               "evals"});
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const PhaseRecord& r = timeline[i];
    const bool reused = r.verdict == PhaseVerdict::kReused;
    table.add_row(
        {std::to_string(i), std::to_string(r.begin), std::to_string(r.end),
         reused ? "reuse<-" + std::to_string(r.matched_phase) : "sweep",
         r.config.name(),
         r.table_distance < 0 ? "-" : fmt_double(r.table_distance, 3),
         std::to_string(r.configs_examined)});
  }
  table.print(os);
}

}  // namespace stcache
