// Clock-steppable model of the cache tuner FSMD (Figures 7 and 8).
//
// TunerFsmd (tuner_fsmd.hpp) models the tuner at transaction granularity
// with aggregate cycle accounting; TunerStepper refines it to one clock
// edge per step() call, with the three state machines of Figure 8 made
// explicit:
//
//   PSM  (parameter state machine)  Start -> P1 size -> P2 line ->
//                                   P3 assoc -> P4 prediction -> Done
//   VSM  (value state machine)      picks the next ascending value of the
//                                   current parameter, requests a
//                                   measurement interval, hands the
//                                   counters to the CSM, applies the
//                                   comparator verdict
//   CSM  (calculation state machine) sequences the datapath: interface,
//                                   counter load, one multiply at a time
//                                   through the single sequential
//                                   multiplier, accumulate, compare, update
//
// The datapath registers (energy register, lowest-energy register,
// configuration register) are observable between steps, which is what the
// RTL-validation tests use. The aggregate and steppable models must agree
// exactly on decisions, visit order, and total cycles; a test asserts it.
//
// Measurement intervals (TunerPort::measure) consume no tuner cycles: while
// the application runs, the tuner datapath idles, just as Section 4's
// energy accounting assumes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/heuristic.hpp"
#include "core/tuner_fsmd.hpp"

namespace stcache {

class TunerStepper {
 public:
  enum class Psm : std::uint8_t {
    kStart,
    kP1Size,
    kP2Line,
    kP3Assoc,
    kP4Pred,
    kDone,
  };
  enum class Csm : std::uint8_t {
    kIdle,
    kInterface,      // VSM<->CSM handshake           (2 cycles)
    kLoadCounters,   // 3 counter registers            (3 cycles)
    kMul1,           // misses * E_miss                (17 cycles)
    kMul2,           // cycles10 * E_static            (17 cycles)
    kMul3,           // accesses * E_hit / E_pred      (17 cycles)
    kMul4,           // pred only: second-probe term   (17 cycles)
    kAccumulate,     // 3 adds through the one adder   (3 cycles)
    kCompare,        // comparator                     (1 cycle)
    kUpdate,         // best/config registers          (2 cycles)
    kPsmAdvance,     // PSM transition                 (2 cycles)
  };

  TunerStepper(const EnergyModel& model, TimingParams timing,
               unsigned counter_shift);

  // Advance one clock. Returns false once the PSM reaches Done (further
  // calls are no-ops). `port` is consulted only when a new measurement is
  // needed.
  bool step(TunerPort& port);

  // Run to completion; returns the cycle count.
  std::uint64_t run_to_completion(TunerPort& port);

  bool done() const { return psm_ == Psm::kDone; }
  std::uint64_t cycles() const { return cycles_; }
  unsigned configs_examined() const { return configs_examined_; }

  // --- observable architectural state -------------------------------------
  Psm psm() const { return psm_; }
  Csm csm() const { return csm_; }
  // Configuration register (the configuration currently applied/being
  // evaluated).
  const CacheConfig& config_reg() const { return candidate_; }
  // Energy register (result of the in-flight/last calculation).
  U32 energy_reg() const { return energy_reg_; }
  // Lowest-energy register.
  U32 lowest_reg() const { return lowest_reg_; }
  // The winning configuration; only meaningful when done().
  const CacheConfig& best() const { return current_; }
  double tuner_energy() const;
  bool saturated() const { return saturated_; }

 private:
  void begin_evaluation(TunerPort& port);
  void finish_compare();
  void advance_psm();
  Param psm_param() const;

  // Static structure.
  TunerFsmd math_;  // reuses the datapath arithmetic (constants, quantize)
  const EnergyModel* model_;

  // Architectural state.
  Psm psm_ = Psm::kStart;
  Csm csm_ = Csm::kIdle;
  unsigned state_cycles_left_ = 0;  // cycles remaining in the current state
  std::uint64_t cycles_ = 0;
  unsigned configs_examined_ = 0;
  bool saturated_ = false;

  CacheConfig current_{CacheSizeKB::k2, Assoc::w1, LineBytes::b16, false};
  CacheConfig candidate_ = current_;
  U32 energy_reg_{};
  U32 lowest_reg_{};
  bool have_lowest_ = false;
  bool compare_better_ = false;

  // Walk bookkeeping (the VSM's candidate queue for the active parameter).
  std::vector<CacheConfig> queue_;
  std::size_t queue_pos_ = 0;
  std::optional<TunerCounters> latched_counters_;
};

}  // namespace stcache
