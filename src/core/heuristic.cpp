#include "core/heuristic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace stcache {

std::string to_string(Param p) {
  switch (p) {
    case Param::kSize: return "size";
    case Param::kLine: return "line";
    case Param::kAssoc: return "assoc";
    case Param::kPred: return "pred";
  }
  fail("to_string(Param): bad value");
}

// Values of a parameter in ascending (flush-free) order, starting AFTER the
// current value of `cfg`; each candidate keeps the other parameters fixed.
std::vector<CacheConfig> ascending_candidates(const CacheConfig& cfg, Param p) {
  std::vector<CacheConfig> out;
  switch (p) {
    case Param::kSize:
      for (CacheSizeKB s : kCacheSizes) {
        if (static_cast<unsigned>(s) > static_cast<unsigned>(cfg.size_kb)) {
          CacheConfig c = cfg;
          c.size_kb = s;
          out.push_back(c);
        }
      }
      break;
    case Param::kLine:
      for (LineBytes l : kLineSizes) {
        if (static_cast<unsigned>(l) > static_cast<unsigned>(cfg.line)) {
          CacheConfig c = cfg;
          c.line = l;
          out.push_back(c);
        }
      }
      break;
    case Param::kAssoc:
      for (Assoc a : kAssocs) {
        if (static_cast<unsigned>(a) > static_cast<unsigned>(cfg.assoc)) {
          CacheConfig c = cfg;
          c.assoc = a;
          out.push_back(c);
        }
      }
      break;
    case Param::kPred:
      if (!cfg.way_prediction) {
        CacheConfig c = cfg;
        c.way_prediction = true;
        out.push_back(c);
      }
      break;
  }
  return out;
}

SearchResult tune(Evaluator& eval, std::array<Param, 4> order) {
  {
    // The order must be a permutation of the four parameters.
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    if (sorted != std::array<Param, 4>{Param::kSize, Param::kLine, Param::kAssoc,
                                       Param::kPred}) {
      fail("tune: order must mention each parameter exactly once");
    }
  }

  SearchResult r;
  CacheConfig current{CacheSizeKB::k2, Assoc::w1, LineBytes::b16, false};
  double current_energy = eval.energy(current);
  r.visited.push_back(current);
  ++r.configs_examined;

  for (Param p : order) {
    for (const CacheConfig& cand : ascending_candidates(current, p)) {
      if (!cand.valid()) break;  // cannot grow this parameter further here
      const double e = eval.energy(cand);
      r.visited.push_back(cand);
      ++r.configs_examined;
      if (e < current_energy) {
        current = cand;
        current_energy = e;
      } else {
        break;  // energy stopped improving; keep the best seen
      }
    }
  }

  r.best = current;
  r.best_energy = current_energy;
  return r;
}

SearchResult tune_exhaustive(Evaluator& eval) {
  SearchResult r;
  bool first = true;
  for (const CacheConfig& cfg : all_configs()) {
    const double e = eval.energy(cfg);
    r.visited.push_back(cfg);
    ++r.configs_examined;
    if (first || e < r.best_energy) {
      r.best = cfg;
      r.best_energy = e;
      first = false;
    }
  }
  return r;
}

std::vector<std::array<Param, 4>> all_param_orders() {
  std::array<Param, 4> base = {Param::kSize, Param::kLine, Param::kAssoc,
                               Param::kPred};
  std::sort(base.begin(), base.end());
  std::vector<std::array<Param, 4>> out;
  do {
    out.push_back(base);
  } while (std::next_permutation(base.begin(), base.end()));
  return out;
}

}  // namespace stcache
