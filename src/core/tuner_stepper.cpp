#include "core/tuner_stepper.hpp"

#include "util/error.hpp"

namespace stcache {

namespace {

unsigned state_budget(TunerStepper::Csm s) {
  using Csm = TunerStepper::Csm;
  switch (s) {
    case Csm::kIdle: return 0;
    case Csm::kInterface: return TunerFsmd::kInterfaceCycles;       // 2
    case Csm::kLoadCounters: return TunerFsmd::kCounterLoadCycles;  // 3
    case Csm::kMul1:
    case Csm::kMul2:
    case Csm::kMul3:
    case Csm::kMul4: return TunerFsmd::kMulCycles;                  // 17
    case Csm::kAccumulate: return 3 * TunerFsmd::kAddCycles;        // 3
    case Csm::kCompare: return TunerFsmd::kCompareCycles;           // 1
    case Csm::kUpdate: return TunerFsmd::kUpdateCycles;             // 2
    case Csm::kPsmAdvance: return TunerFsmd::kPsmCycles;            // 2
  }
  fail("TunerStepper: bad CSM state");
}

}  // namespace

TunerStepper::TunerStepper(const EnergyModel& model, TimingParams timing,
                           unsigned counter_shift)
    : math_(model, timing, counter_shift), model_(&model) {}

Param TunerStepper::psm_param() const {
  switch (psm_) {
    case Psm::kP1Size: return Param::kSize;
    case Psm::kP2Line: return Param::kLine;
    case Psm::kP3Assoc: return Param::kAssoc;
    case Psm::kP4Pred: return Param::kPred;
    default: fail("TunerStepper: no parameter in this PSM state");
  }
}

void TunerStepper::begin_evaluation(TunerPort& port) {
  // The application runs its measurement interval; the tuner idles (no
  // cycles charged — Equation 2 charges only calculation time).
  latched_counters_ = port.measure(candidate_);
  ++configs_examined_;
  csm_ = Csm::kInterface;
  state_cycles_left_ = state_budget(csm_);
}

void TunerStepper::finish_compare() {
  compare_better_ = !have_lowest_ || energy_reg_ < lowest_reg_;
}

void TunerStepper::advance_psm() {
  switch (psm_) {
    case Psm::kStart: psm_ = Psm::kP1Size; break;
    case Psm::kP1Size: psm_ = Psm::kP2Line; break;
    case Psm::kP2Line: psm_ = Psm::kP3Assoc; break;
    case Psm::kP3Assoc: psm_ = Psm::kP4Pred; break;
    case Psm::kP4Pred: psm_ = Psm::kDone; break;
    case Psm::kDone: break;
  }
  if (psm_ != Psm::kDone) {
    queue_ = ascending_candidates(current_, psm_param());
    queue_pos_ = 0;
  }
}

bool TunerStepper::step(TunerPort& port) {
  if (psm_ == Psm::kDone) return false;

  // Control dispatch (combinational; consumes no cycles): when the datapath
  // is idle, either launch the next evaluation or advance the PSM.
  while (csm_ == Csm::kIdle) {
    if (psm_ == Psm::kStart) {
      if (configs_examined_ == 0) {
        candidate_ = current_;
        begin_evaluation(port);
        break;
      }
      advance_psm();
      continue;
    }
    if (queue_pos_ < queue_.size()) {
      const CacheConfig cand = queue_[queue_pos_++];
      if (!cand.valid()) {
        queue_pos_ = queue_.size();  // the walk cannot grow further
        continue;
      }
      candidate_ = cand;
      begin_evaluation(port);
      break;
    }
    advance_psm();
    if (psm_ == Psm::kDone) return false;
  }

  // One clock edge.
  ++cycles_;
  if (--state_cycles_left_ > 0) return true;

  // State exit effects.
  switch (csm_) {
    case Csm::kInterface:
      csm_ = Csm::kLoadCounters;
      break;
    case Csm::kLoadCounters:
      csm_ = Csm::kMul1;
      break;
    case Csm::kMul1:
      csm_ = Csm::kMul2;
      break;
    case Csm::kMul2:
      csm_ = Csm::kMul3;
      break;
    case Csm::kMul3:
      csm_ = candidate_.way_prediction ? Csm::kMul4 : Csm::kAccumulate;
      break;
    case Csm::kMul4:
      csm_ = Csm::kAccumulate;
      break;
    case Csm::kAccumulate:
      // The accumulated sum becomes visible in the energy register.
      energy_reg_ = math_.quantized_energy(candidate_, *latched_counters_);
      saturated_ = saturated_ || energy_reg_.saturated();
      csm_ = Csm::kCompare;
      break;
    case Csm::kCompare:
      finish_compare();
      csm_ = Csm::kUpdate;
      break;
    case Csm::kUpdate:
      if (compare_better_) {
        lowest_reg_ = energy_reg_;
        current_ = candidate_;
        have_lowest_ = true;
      } else if (psm_ != Psm::kStart) {
        queue_pos_ = queue_.size();  // energy regressed: end this walk
      }
      csm_ = Csm::kPsmAdvance;
      break;
    case Csm::kPsmAdvance:
      csm_ = Csm::kIdle;
      break;
    case Csm::kIdle:
      fail("TunerStepper: clocked an idle datapath");
  }
  if (csm_ != Csm::kIdle) state_cycles_left_ = state_budget(csm_);
  return true;
}

std::uint64_t TunerStepper::run_to_completion(TunerPort& port) {
  while (step(port)) {
  }
  return cycles_;
}

double TunerStepper::tuner_energy() const {
  return static_cast<double>(cycles_) * model_->params().tuner_power *
         model_->params().cycle_seconds();
}

}  // namespace stcache
