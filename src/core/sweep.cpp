#include "core/sweep.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <thread>

#include "util/error.hpp"

namespace stcache {

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

SweepRunner::SweepRunner(const SweepOptions& opts) {
  workers_ = opts.jobs != 0 ? opts.jobs : std::thread::hardware_concurrency();
  if (workers_ == 0) workers_ = 1;
}

void SweepRunner::rethrow_with_context(std::size_t i, std::size_t n,
                                       const std::string& label,
                                       const std::string& what) {
  std::string msg = "sweep job " + std::to_string(i) + "/" + std::to_string(n);
  if (!label.empty()) msg += " [" + label + "]";
  fail(msg + ": " + what);
}

void SweepRunner::finish_round(std::size_t n,
                               std::chrono::steady_clock::time_point start) {
  jobs_run_ += n;
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

SweepMetrics SweepRunner::metrics() const {
  SweepMetrics m;
  m.workers = workers_;
  m.jobs_run = jobs_run_;
  m.wall_seconds = wall_seconds_;
  m.simulated_accesses = accesses_.load(std::memory_order_relaxed);
  return m;
}

std::string SweepMetrics::to_json() const {
  std::string s = "{";
  s += "\"workers\": " + std::to_string(workers);
  s += ", \"jobs_run\": " + std::to_string(jobs_run);
  s += ", \"wall_seconds\": " + fmt(wall_seconds);
  s += ", \"simulated_accesses\": " + std::to_string(simulated_accesses);
  s += ", \"accesses_per_second\": " + fmt(accesses_per_second());
  s += "}";
  return s;
}

void SweepRunner::print_metrics(std::ostream& os) const {
  const SweepMetrics m = metrics();
  os << "[sweep] jobs=" << m.jobs_run << " workers=" << m.workers
     << " wall=" << fmt(m.wall_seconds) << " s"
     << " simulated_accesses=" << m.simulated_accesses << " ("
     << fmt(m.accesses_per_second()) << " accesses/s)\n";
}

void SweepRunner::write_metrics_json(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) fail("sweep: cannot write metrics file '" + path + "'");
  out << metrics().to_json() << "\n";
  if (!out) fail("sweep: error writing metrics file '" + path + "'");
}

}  // namespace stcache
