// Cycle- and bit-accurate model of the hardware cache tuner (Section 3.5).
//
// The tuner is an FSMD: three nested state machines (PSM walks the
// parameters, VSM walks a parameter's values, CSM sequences the energy
// calculation) controlling a small datapath built from
//
//   * fifteen 16-bit registers: six per-size/associativity hit energies,
//     three per-line-size miss energies, three per-size static energies,
//     and three runtime counters (hits, misses, total cycles) — plus, in
//     our model, three predicted-probe energies so way prediction can be
//     evaluated from counters alone (a documented refinement; the paper
//     does not say how its datapath evaluates W=on),
//   * a 32-bit energy register and a 32-bit lowest-energy register,
//   * a 7-bit configuration register,
//   * one adder, one comparator, and one slow sequential multiplier.
//
// Energy arithmetic is unsigned fixed-point (util/fixed_point.hpp): the
// constants are quantized to a common energy LSB at construction, counters
// are prescaled by a power-of-two shift so they fit 16 bits, and the
// products accumulate in the 32-bit energy register with sticky
// saturation. Tests validate that the FSMD reaches the same configuration
// as the double-precision heuristic and quantify the residual
// quantization error.
//
// Cycle accounting per configuration evaluation (matching the paper's
// gate-level figure of 64 cycles):
//
//   VSM interface            2
//   counter load             3   (three registers through the one port)
//   3 sequential multiplies 51   (17 cycles each)
//   3 accumulate adds        3
//   compare                  1
//   best/config update       2
//   PSM transition           2
//   total                   64
//
// A way-prediction evaluation needs one extra multiply (+17 cycles).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cache/config.hpp"
#include "core/heuristic.hpp"
#include "energy/energy_model.hpp"
#include "util/fixed_point.hpp"

namespace stcache {

// Raw counters the platform hands the tuner after a measurement interval.
struct TunerCounters {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t cycles = 0;
  std::uint64_t pred_first_hits = 0;  // only meaningful when prediction is on
};

// What the hardware tuner plugs into: it writes the configuration register
// and, after the interval, reads back the counters.
class TunerPort {
 public:
  virtual ~TunerPort() = default;
  virtual TunerCounters measure(const CacheConfig& cfg) = 0;
};

// Counter plausibility guards: the hardened tuner refuses to base a
// decision on an interval whose counters violate invariants no genuine
// measurement can (accesses present, hits + misses <= accesses, predicted
// hits <= hits, at least one and at most `max_cycles_per_access` cycles per
// access, and no counter large enough to saturate the prescaled 16-bit
// datapath registers). A rejected interval is re-measured up to
// `max_retries` times; if every retry is implausible too, the candidate is
// scored as worst-possible energy so it can never be selected, and the
// session is flagged (Result::guard_exhausted) for the controller's
// fallback policy.
//
// On a pristine port the guards never fire and change nothing: the checks
// reuse the datapath comparator during the otherwise-idle counter-load
// cycles, so the accept path still costs exactly kCyclesPerEvaluation.
// Each re-measure costs a counter reload plus the check
// (kCounterLoadCycles + kGuardCheckCycles).
struct TunerGuards {
  bool enabled = true;
  unsigned max_retries = 2;
  std::uint64_t max_cycles_per_access = 64;  // worst legal stall per access

  static TunerGuards off() {
    TunerGuards g;
    g.enabled = false;
    return g;
  }
};

class TunerFsmd {
 public:
  struct Result {
    CacheConfig best;
    unsigned configs_examined = 0;
    std::uint64_t tuner_cycles = 0;  // total clock cycles spent calculating
    double tuner_energy = 0.0;       // Equation 2, from cycles and P_tuner
    bool saturated = false;          // any fixed-point overflow observed
    // Guard accounting (all zero on a pristine port).
    unsigned rejected_intervals = 0;  // measurements the guards refused
    unsigned remeasurements = 0;      // retry intervals issued
    bool guard_exhausted = false;     // some candidate never measured cleanly
  };

  // `counter_shift`: counters are prescaled by 2^counter_shift before
  // entering the 16-bit registers. Choose so the largest expected interval
  // counter fits; measure() results that still overflow saturate (sticky).
  TunerFsmd(const EnergyModel& model, TimingParams timing,
            unsigned counter_shift, TunerGuards guards = {});

  // Convenience: pick the smallest shift that makes `max_expected_count`
  // fit in 16 bits.
  static unsigned shift_for(std::uint64_t max_expected_count);

  // Execute the full tuning session (the paper's order: size, line size,
  // associativity, way prediction).
  Result run(TunerPort& port);

  // Fixed-point energy of one measurement, in energy-LSB*2^shift units.
  // Exposed for the quantization-error tests.
  U32 quantized_energy(const CacheConfig& cfg, const TunerCounters& c) const;

  // Would the guards accept this interval? Pure; exposed for tests and for
  // the fault-injection harness. `reason`, when non-null, receives a short
  // diagnostic on rejection.
  bool plausible(const TunerCounters& c, std::string* reason = nullptr) const;

  const TunerGuards& guards() const { return guards_; }

  // Physical value of one energy LSB (joules).
  double energy_lsb() const { return energy_lsb_; }

  // Cycle-accounting constants (documented above).
  static constexpr unsigned kInterfaceCycles = 2;
  static constexpr unsigned kCounterLoadCycles = 3;
  static constexpr unsigned kMulCycles = 17;
  static constexpr unsigned kAddCycles = 1;
  static constexpr unsigned kCompareCycles = 1;
  static constexpr unsigned kUpdateCycles = 2;
  static constexpr unsigned kPsmCycles = 2;
  static constexpr unsigned kCyclesPerEvaluation =
      kInterfaceCycles + kCounterLoadCycles + 3 * kMulCycles + 3 * kAddCycles +
      kCompareCycles + kUpdateCycles + kPsmCycles;  // == 64
  // A guard-triggered re-measure reloads the three counter registers and
  // re-runs the plausibility comparisons through the shared comparator.
  static constexpr unsigned kGuardCheckCycles = 6;
  // Static-energy constants are stored per 2^kStaticShift cycles to keep
  // 16-bit resolution on a per-cycle quantity.
  static constexpr unsigned kStaticShift = 10;

 private:
  struct SizeAssoc {
    CacheSizeKB size;
    Assoc assoc;
  };
  static constexpr std::array<SizeAssoc, 6> kSizeAssocs = {{
      {CacheSizeKB::k2, Assoc::w1},
      {CacheSizeKB::k4, Assoc::w1},
      {CacheSizeKB::k4, Assoc::w2},
      {CacheSizeKB::k8, Assoc::w1},
      {CacheSizeKB::k8, Assoc::w2},
      {CacheSizeKB::k8, Assoc::w4},
  }};

  unsigned size_assoc_index(const CacheConfig& cfg) const;
  U16 quantize_counter(std::uint64_t raw) const;

  const EnergyModel* model_;
  TimingParams timing_;
  unsigned counter_shift_;
  TunerGuards guards_;
  double energy_lsb_ = 0.0;

  // Constant registers (quantized at construction).
  std::array<U16, 6> hit_energy_q_{};     // per size/assoc
  std::array<U16, 3> pred_energy_q_{};    // per set-assoc size/assoc (model refinement)
  std::array<U16, 3> miss_energy_q_{};    // per line size
  std::array<U16, 3> static_energy_q_{};  // per size, per 2^10 cycles
};

}  // namespace stcache
