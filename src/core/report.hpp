// Renderer of the `stcache_tune --exhaustive` report, factored out so the
// in-process tool, the stcache_tunec serving client, and the loopback
// tests all print THE SAME bytes from the same inputs: a measured
// 27-configuration stats bank plus the access count. repro.sh cmp's the
// tool against the daemon end to end on exactly this property.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

#include "cache/config.hpp"
#include "cache/stats.hpp"
#include "energy/energy_model.hpp"

namespace stcache {

// Print the full report (header, heuristic + exhaustive table, Visited
// chain) for the selected stream. `measured[i]` must be the replay stats
// of `configs[i]`; both searches then run as pure memo lookups over a
// primed evaluator, deriving energies exactly as the measuring path does —
// which is what makes the output byte-identical to an in-process run.
void print_exhaustive_report(std::ostream& out, bool instruction,
                             std::uint64_t accesses,
                             std::span<const CacheConfig> configs,
                             std::span<const CacheStats> measured,
                             const EnergyModel& model);

}  // namespace stcache
