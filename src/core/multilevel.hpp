// Multi-level heuristic search (Section 3.4).
//
// The paper sketches scaling the heuristic to a two-level hierarchy:
// 16 KB 8-way L1 instruction and data caches with line sizes
// {8, 16, 32, 64} B and a unified 256 KB 8-way L2 with line sizes
// {64, 128, 256, 512} B. The full cross product is 4*4*4 = 64
// configurations; the one-parameter-at-a-time heuristic examines at most
// 4+4+4 = 12 (13 counting the re-evaluated start) while finding a
// near-optimal point.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "cache/cache_model.hpp"
#include "energy/energy_model.hpp"
#include "trace/trace.hpp"

namespace stcache {

struct TwoLevelConfig {
  std::uint32_t l1i_line = 8;   // {8, 16, 32, 64}
  std::uint32_t l1d_line = 8;   // {8, 16, 32, 64}
  std::uint32_t l2_line = 64;   // {64, 128, 256, 512}

  static constexpr std::uint32_t kL1Bytes = 16 * 1024;
  static constexpr std::uint32_t kL1Assoc = 8;
  static constexpr std::uint32_t kL2Bytes = 256 * 1024;
  static constexpr std::uint32_t kL2Assoc = 8;

  CacheGeometry l1i() const { return {kL1Bytes, kL1Assoc, l1i_line}; }
  CacheGeometry l1d() const { return {kL1Bytes, kL1Assoc, l1d_line}; }
  CacheGeometry l2() const { return {kL2Bytes, kL2Assoc, l2_line}; }

  std::string name() const;
  friend bool operator==(const TwoLevelConfig&, const TwoLevelConfig&) = default;
};

inline constexpr std::array<std::uint32_t, 4> kL1LineSizes = {8, 16, 32, 64};
inline constexpr std::array<std::uint32_t, 4> kL2LineSizes = {64, 128, 256, 512};

// Measured behavior of the two-level hierarchy on one combined trace.
struct TwoLevelStats {
  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  std::uint64_t total_cycles = 0;
  std::uint64_t stall_cycles = 0;
};

// Simulate the hierarchy over a combined (ifetch + data) trace in program
// order. L1 misses access the L2; L2 misses go off chip. Write-back,
// write-allocate at both levels.
TwoLevelStats simulate_two_level(const TwoLevelConfig& cfg,
                                 std::span<const TraceRecord> trace,
                                 TimingParams timing = {});

// Total memory-hierarchy energy of a measured run (dynamic L1 + L2,
// static, off-chip, stall).
double two_level_energy(const TwoLevelConfig& cfg, const TwoLevelStats& stats,
                        const EnergyModel& model);

struct TwoLevelSearchResult {
  TwoLevelConfig best;
  double best_energy = 0.0;
  unsigned configs_examined = 0;
};

// Greedy one-parameter-at-a-time heuristic over (L1I line, L1D line, L2
// line), each walked ascending while energy improves.
TwoLevelSearchResult tune_two_level(std::span<const TraceRecord> trace,
                                    const EnergyModel& model,
                                    TimingParams timing = {});

// Exhaustive 64-point baseline.
TwoLevelSearchResult tune_two_level_exhaustive(std::span<const TraceRecord> trace,
                                               const EnergyModel& model,
                                               TimingParams timing = {});

}  // namespace stcache
