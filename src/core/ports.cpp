#include "core/ports.hpp"

#include "trace/replay.hpp"

namespace stcache {

TunerCounters counters_from_stats(const CacheStats& s) {
  TunerCounters c;
  c.accesses = s.accesses;
  c.hits = s.hits;
  c.misses = s.misses;
  c.cycles = s.cycles;
  c.pred_first_hits = s.pred_first_hits;
  return c;
}

TunerCounters TraceTunerPort::measure(const CacheConfig& cfg) {
  return counters_from_stats(measure_config(cfg, stream_, timing_));
}

TunerCounters LiveTunerPort::measure(const CacheConfig& cfg) {
  reconfig_writebacks_ += cache_->reconfigure(cfg);
  const CacheStats before = cache_->stats();
  run_interval_();
  return counters_from_stats(cache_->stats() - before);
}

BankTunerPort::BankTunerPort(std::span<const CacheConfig> configs,
                             std::span<const CacheStats> stats)
    : configs_(configs), stats_(stats) {
  STC_ASSERT(configs_.size() == stats_.size(),
             "BankTunerPort: configs/stats size mismatch");
}

TunerCounters BankTunerPort::measure(const CacheConfig& cfg) {
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (configs_[i] == cfg) return counters_from_stats(stats_[i]);
  }
  fail("BankTunerPort: configuration " + cfg.name() + " not in the bank");
}

}  // namespace stcache
