// The paper's search heuristic (Figure 6) and its order-permutation
// variants (Section 4 compares against a line-size-first order).
//
// The heuristic tunes one parameter at a time, walking the parameter's
// values in ascending order (the flush-free direction established by the
// Figure 5 analysis) for as long as total energy keeps improving:
//
//   1. cache size   2 KB -> 4 KB -> 8 KB      (direct-mapped, 16 B line)
//   2. line size    16 B -> 32 B -> 64 B      (at the chosen size)
//   3. associativity 1 -> 2 -> 4 way          (as the size permits)
//   4. way prediction off -> on               (only if associativity > 1)
//
// Each parameter walk stops at the first value that increases energy and
// keeps the best value seen. The heuristic evaluates at most
// sum(parameter values) configurations instead of the product.
#pragma once

#include <array>
#include <vector>

#include "cache/config.hpp"
#include "core/evaluator.hpp"

namespace stcache {

enum class Param : std::uint8_t { kSize, kLine, kAssoc, kPred };

// The paper's order. Alternative orders are used by the ablation bench.
inline constexpr std::array<Param, 4> kPaperOrder = {Param::kSize, Param::kLine,
                                                     Param::kAssoc, Param::kPred};

struct SearchResult {
  CacheConfig best;
  double best_energy = 0.0;
  unsigned configs_examined = 0;
  // Every configuration evaluated, in evaluation order.
  std::vector<CacheConfig> visited;
};

// Run the heuristic with the given parameter order. The order must contain
// each Param exactly once. Starts from the 2 KB direct-mapped 16 B-line
// configuration as the paper prescribes.
SearchResult tune(Evaluator& eval, std::array<Param, 4> order = kPaperOrder);

// Exhaustive baseline: evaluate every legal configuration, return the
// optimum (ties broken toward the earlier configuration in all_configs()
// order).
SearchResult tune_exhaustive(Evaluator& eval);

// All 24 parameter orders (for the search-order ablation).
std::vector<std::array<Param, 4>> all_param_orders();

std::string to_string(Param p);

// Candidate configurations for growing parameter `p` from `cfg`, in
// ascending order (the flush-free direction). Used by tune() and by the
// clock-steppable FSMD; candidates may be invalid (e.g. 4-way at 2 KB),
// which terminates a walk.
std::vector<CacheConfig> ascending_candidates(const CacheConfig& cfg, Param p);

}  // namespace stcache
