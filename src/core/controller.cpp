#include "core/controller.hpp"

#include <algorithm>

namespace stcache {

TuningController::TuningController(ConfigurableCache& cache,
                                   const EnergyModel& model,
                                   ControllerParams params,
                                   unsigned counter_shift)
    : cache_(&cache),
      model_(&model),
      params_(params),
      counter_shift_(counter_shift) {}

double TuningController::total_tuner_energy() const {
  double total = 0.0;
  for (const TuningSession& s : sessions_) total += s.tuner_energy;
  return total;
}

bool TuningController::trigger_fired(double interval_miss_rate) {
  if (!tuned_once_) return true;  // every policy tunes at startup
  switch (params_.trigger) {
    case TuningTrigger::kOneShot:
      return false;
    case TuningTrigger::kPeriodic:
      return intervals_since_tune_ >= params_.period_intervals;
    case TuningTrigger::kPhaseChange: {
      // Oscillation watchdog: during a storm lockout the phase detector is
      // powered down entirely — strikes do not accumulate, so after the
      // lockout expires a genuine phase change must re-earn the debounce.
      if (interval_count_ < lockout_until_) {
        phase_strikes_ = 0;
        return false;
      }
      const double reference = sessions_.back().reference_miss_rate;
      const double delta = interval_miss_rate > reference
                               ? interval_miss_rate - reference
                               : reference - interval_miss_rate;
      if (delta > params_.miss_rate_delta) {
        ++phase_strikes_;
      } else {
        phase_strikes_ = 0;
      }
      return phase_strikes_ >= params_.phase_debounce;
    }
  }
  fail("TuningController: bad trigger");
}

void TuningController::run_tuning_session(const IntervalFns& fns,
                                          bool phase_triggered) {
  const std::function<void()>& search = fns.search ? fns.search : fns.quiet;
  LiveTunerPort raw_port(*cache_, search);
  std::optional<TappedTunerPort> tapped_port;
  TunerPort* port = &raw_port;
  if (tap_ != nullptr) {
    tapped_port.emplace(raw_port, *tap_);
    port = &*tapped_port;
  }
  TunerFsmd tuner(*model_, cache_->timing(), counter_shift_, params_.guards);
  const TunerFsmd::Result result = tuner.run(*port);

  // Trust assessment: a session that had to give up on a candidate
  // (guards exhausted) or whose energy arithmetic saturated may have
  // compared garbage; its choice is not applied over a known-good one.
  const bool distrusted = result.guard_exhausted || result.saturated;
  CacheConfig chosen = result.best;
  bool fell_back = false;
  if (distrusted && params_.hardening.fallback_to_last_good &&
      last_known_good_.has_value()) {
    chosen = *last_known_good_;
    fell_back = true;
  }

  // The search leaves the cache in the last-probed configuration; switch to
  // the winner (ascending walks mean this can only grow parameters or
  // toggle prediction, so it stays flush-free in practice).
  cache_->reconfigure(chosen);
  if (!distrusted) last_known_good_ = chosen;

  // One settling interval under the chosen configuration establishes the
  // phase detector's reference miss rate.
  const CacheStats before = cache_->stats();
  fns.quiet();
  const CacheStats delta = cache_->stats() - before;

  TuningSession session;
  session.started_at_interval = interval_count_;
  session.chosen = chosen;
  session.configs_examined = result.configs_examined;
  session.tuner_energy = result.tuner_energy;
  session.reference_miss_rate = delta.miss_rate();
  session.rejected_intervals = result.rejected_intervals;
  session.remeasurements = result.remeasurements;
  session.saturated = result.saturated;
  session.fell_back = fell_back;
  if (tap_ != nullptr) {
    const std::uint64_t now = tap_->faults_injected();
    session.faults_injected = now - tap_faults_seen_;
    tap_faults_seen_ = now;
  }
  sessions_.push_back(session);

  intervals_since_tune_ = 0;
  phase_strikes_ = 0;
  tuned_once_ = true;
  // Measurement intervals: one per examined configuration, one per guard
  // retry, plus the settling interval.
  interval_count_ += result.configs_examined + result.remeasurements + 1;

  // Oscillation watchdog: phase-triggered sessions arriving in a tight
  // burst mean the detector is flapping — a phase boundary oscillating
  // around the threshold, or corrupted interval statistics. Lock the
  // trigger (the configuration stays put) with exponential backoff.
  if (phase_triggered) {
    const HardeningParams& h = params_.hardening;
    // A quiet window after the last lockout expired forgives the backoff.
    if (backoff_ > 0 &&
        interval_count_ > lockout_until_ + h.storm_window_intervals) {
      backoff_ = 0;
    }
    phase_session_starts_.push_back(session.started_at_interval);
    const std::size_t n = phase_session_starts_.size();
    if (h.storm_sessions > 0 && n >= h.storm_sessions &&
        phase_session_starts_[n - 1] -
                phase_session_starts_[n - h.storm_sessions] <=
            h.storm_window_intervals) {
      backoff_ = backoff_ == 0
                     ? h.backoff_initial_intervals
                     : std::min(backoff_ * 2, h.backoff_max_intervals);
      lockout_until_ = interval_count_ + backoff_;
      ++storms_;
    }
  }
}

bool TuningController::step(const std::function<void()>& run_interval) {
  return step(IntervalFns{run_interval, {}});
}

bool TuningController::step(const IntervalFns& fns) {
  if (!tuned_once_) {
    run_tuning_session(fns, /*phase_triggered=*/false);
    return true;
  }

  // Quiet interval: the application runs, the counters are watched, the
  // tuner datapath is powered down.
  const CacheStats before = cache_->stats();
  fns.quiet();
  const CacheStats delta = cache_->stats() - before;
  ++interval_count_;
  ++intervals_since_tune_;

  if (trigger_fired(delta.miss_rate())) {
    run_tuning_session(
        fns, /*phase_triggered=*/params_.trigger == TuningTrigger::kPhaseChange);
    return true;
  }
  return false;
}

}  // namespace stcache
