#include "core/controller.hpp"

#include "core/ports.hpp"

namespace stcache {

TuningController::TuningController(ConfigurableCache& cache,
                                   const EnergyModel& model,
                                   ControllerParams params,
                                   unsigned counter_shift)
    : cache_(&cache),
      model_(&model),
      params_(params),
      counter_shift_(counter_shift) {}

double TuningController::total_tuner_energy() const {
  double total = 0.0;
  for (const TuningSession& s : sessions_) total += s.tuner_energy;
  return total;
}

bool TuningController::trigger_fired(double interval_miss_rate) {
  if (!tuned_once_) return true;  // every policy tunes at startup
  switch (params_.trigger) {
    case TuningTrigger::kOneShot:
      return false;
    case TuningTrigger::kPeriodic:
      return intervals_since_tune_ >= params_.period_intervals;
    case TuningTrigger::kPhaseChange: {
      const double reference = sessions_.back().reference_miss_rate;
      const double delta = interval_miss_rate > reference
                               ? interval_miss_rate - reference
                               : reference - interval_miss_rate;
      if (delta > params_.miss_rate_delta) {
        ++phase_strikes_;
      } else {
        phase_strikes_ = 0;
      }
      return phase_strikes_ >= params_.phase_debounce;
    }
  }
  fail("TuningController: bad trigger");
}

void TuningController::run_tuning_session(const IntervalFns& fns) {
  const std::function<void()>& search = fns.search ? fns.search : fns.quiet;
  LiveTunerPort port(*cache_, search);
  TunerFsmd tuner(*model_, cache_->timing(), counter_shift_);
  const TunerFsmd::Result result = tuner.run(port);
  // The search leaves the cache in the last-probed configuration; switch to
  // the winner (ascending walks mean this can only grow parameters or
  // toggle prediction, so it stays flush-free in practice).
  cache_->reconfigure(result.best);

  // One settling interval under the chosen configuration establishes the
  // phase detector's reference miss rate.
  const CacheStats before = cache_->stats();
  fns.quiet();
  const CacheStats delta = cache_->stats() - before;

  TuningSession session;
  session.started_at_interval = interval_count_;
  session.chosen = result.best;
  session.configs_examined = result.configs_examined;
  session.tuner_energy = result.tuner_energy;
  session.reference_miss_rate = delta.miss_rate();
  sessions_.push_back(session);

  intervals_since_tune_ = 0;
  phase_strikes_ = 0;
  tuned_once_ = true;
  interval_count_ += result.configs_examined + 1;  // measurement intervals
}

bool TuningController::step(const std::function<void()>& run_interval) {
  return step(IntervalFns{run_interval, {}});
}

bool TuningController::step(const IntervalFns& fns) {
  if (!tuned_once_) {
    run_tuning_session(fns);
    return true;
  }

  // Quiet interval: the application runs, the counters are watched, the
  // tuner datapath is powered down.
  const CacheStats before = cache_->stats();
  fns.quiet();
  const CacheStats delta = cache_->stats() - before;
  ++interval_count_;
  ++intervals_since_tune_;

  if (trigger_fired(delta.miss_rate())) {
    run_tuning_session(fns);
    return true;
  }
  return false;
}

}  // namespace stcache
