// TunerPort implementations: how the FSMD tuner's configuration register
// and counters attach to a platform.
#pragma once

#include <functional>
#include <span>

#include "core/tuner_fsmd.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"

namespace stcache {

// Offline port: each measurement replays the benchmark's full (single-
// stream) trace through a cold cache — the paper's Table 1 methodology.
class TraceTunerPort final : public TunerPort {
 public:
  TraceTunerPort(std::span<const TraceRecord> stream, TimingParams timing = {})
      : stream_(stream), timing_(timing) {}

  TunerCounters measure(const CacheConfig& cfg) override;

 private:
  std::span<const TraceRecord> stream_;
  TimingParams timing_;
};

// Online port: the tuner owns one cache of a live SplitCacheSystem and
// measures by letting the processor run a fixed number of instructions
// per configuration. Reconfiguration goes through
// ConfigurableCache::reconfigure — never a flush — so the application keeps
// running correctly throughout the search (the paper's headline property).
//
// The caller supplies a `run_interval` callback that advances the
// processor; this keeps the port independent of Cpu so tests can drive it
// with synthetic streams.
class LiveTunerPort final : public TunerPort {
 public:
  using IntervalFn = std::function<void()>;

  LiveTunerPort(ConfigurableCache& cache, IntervalFn run_interval)
      : cache_(&cache), run_interval_(std::move(run_interval)) {}

  TunerCounters measure(const CacheConfig& cfg) override;

  // Dirty lines written back across all reconfigurations (the cost the
  // ascending search keeps near zero).
  std::uint64_t reconfig_writebacks() const { return reconfig_writebacks_; }

 private:
  ConfigurableCache* cache_;
  IntervalFn run_interval_;
  std::uint64_t reconfig_writebacks_ = 0;
};

// Convert a CacheStats delta into the counter set the tuner datapath
// latches.
TunerCounters counters_from_stats(const CacheStats& s);

// --- the measurement trust boundary -----------------------------------------
//
// Everything between the platform's raw event counters and the tuner's
// registers — the counter bus, the interval latch, the interrupt that ends a
// measurement — is a trust boundary: on a live chip those values can arrive
// corrupted (single-event upsets, mis-latched intervals, stuck counters).
// A MeasurementTap models that boundary explicitly: it sees every counter
// set on its way into the tuner and may pass it through or perturb it. The
// fault-injection harness (src/fault/) is the only perturbing
// implementation; production code attaches no tap.
class MeasurementTap {
 public:
  virtual ~MeasurementTap() = default;
  // Called once per measurement with the pristine counters; returns what
  // the tuner actually latches.
  virtual TunerCounters tap(const CacheConfig& cfg,
                            const TunerCounters& clean) = 0;
  // Total faults this tap has injected so far (0 for a passthrough tap);
  // the controller uses deltas of this for per-session accounting.
  virtual std::uint64_t faults_injected() const { return 0; }
};

// Interpose a MeasurementTap between any port and the tuner.
class TappedTunerPort final : public TunerPort {
 public:
  TappedTunerPort(TunerPort& inner, MeasurementTap& tap)
      : inner_(&inner), tap_(&tap) {}

  TunerCounters measure(const CacheConfig& cfg) override {
    return tap_->tap(cfg, inner_->measure(cfg));
  }

 private:
  TunerPort* inner_;
  MeasurementTap* tap_;
};

// Serve measurements from a precomputed per-configuration bank. The
// resilience bench replays thousands of tuning sessions against the same
// stream; measuring each configuration once (measure_config_bank) and
// serving sessions from the bank makes every session a table lookup.
// Throws stcache::Error if a configuration outside the bank is requested.
class BankTunerPort final : public TunerPort {
 public:
  BankTunerPort(std::span<const CacheConfig> configs,
                std::span<const CacheStats> stats);

  TunerCounters measure(const CacheConfig& cfg) override;

 private:
  std::span<const CacheConfig> configs_;
  std::span<const CacheStats> stats_;
};

}  // namespace stcache
