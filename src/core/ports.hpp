// TunerPort implementations: how the FSMD tuner's configuration register
// and counters attach to a platform.
#pragma once

#include <functional>
#include <span>

#include "core/tuner_fsmd.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"

namespace stcache {

// Offline port: each measurement replays the benchmark's full (single-
// stream) trace through a cold cache — the paper's Table 1 methodology.
class TraceTunerPort final : public TunerPort {
 public:
  TraceTunerPort(std::span<const TraceRecord> stream, TimingParams timing = {})
      : stream_(stream), timing_(timing) {}

  TunerCounters measure(const CacheConfig& cfg) override;

 private:
  std::span<const TraceRecord> stream_;
  TimingParams timing_;
};

// Online port: the tuner owns one cache of a live SplitCacheSystem and
// measures by letting the processor run a fixed number of instructions
// per configuration. Reconfiguration goes through
// ConfigurableCache::reconfigure — never a flush — so the application keeps
// running correctly throughout the search (the paper's headline property).
//
// The caller supplies a `run_interval` callback that advances the
// processor; this keeps the port independent of Cpu so tests can drive it
// with synthetic streams.
class LiveTunerPort final : public TunerPort {
 public:
  using IntervalFn = std::function<void()>;

  LiveTunerPort(ConfigurableCache& cache, IntervalFn run_interval)
      : cache_(&cache), run_interval_(std::move(run_interval)) {}

  TunerCounters measure(const CacheConfig& cfg) override;

  // Dirty lines written back across all reconfigurations (the cost the
  // ascending search keeps near zero).
  std::uint64_t reconfig_writebacks() const { return reconfig_writebacks_; }

 private:
  ConfigurableCache* cache_;
  IntervalFn run_interval_;
  std::uint64_t reconfig_writebacks_ = 0;
};

// Convert a CacheStats delta into the counter set the tuner datapath
// latches.
TunerCounters counters_from_stats(const CacheStats& s);

}  // namespace stcache
