#include "core/flush_cost.hpp"

#include <array>

#include "cache/configurable_cache.hpp"
#include "trace/replay.hpp"

namespace stcache {

namespace {

// Run the schedule: replay equal slices of the stream under each size,
// reconfiguring between slices; return dirty lines written back by the
// reconfigurations (not by ordinary evictions).
std::uint64_t run_schedule(std::span<const TraceRecord> stream,
                           std::span<const CacheSizeKB> sizes,
                           TimingParams timing) {
  ConfigurableCache cache(
      CacheConfig{sizes.front(), Assoc::w1, LineBytes::b16, false}, timing);
  std::uint64_t reconfig_writebacks = 0;
  const std::size_t slice = stream.size() / sizes.size();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t begin = i * slice;
    const std::size_t end = i + 1 == sizes.size() ? stream.size() : begin + slice;
    if (i > 0) {
      reconfig_writebacks += cache.reconfigure(
          CacheConfig{sizes[i], Assoc::w1, LineBytes::b16, false});
    }
    replay(cache, stream.subspan(begin, end - begin));
  }
  return reconfig_writebacks;
}

}  // namespace

FlushCostReport measure_flush_cost(std::span<const TraceRecord> stream,
                                   const EnergyModel& model,
                                   TimingParams timing) {
  static constexpr std::array<CacheSizeKB, 3> kAscending = {
      CacheSizeKB::k2, CacheSizeKB::k4, CacheSizeKB::k8};
  static constexpr std::array<CacheSizeKB, 3> kDescending = {
      CacheSizeKB::k8, CacheSizeKB::k4, CacheSizeKB::k2};

  FlushCostReport report;
  report.ascending_writeback_lines = run_schedule(stream, kAscending, timing);
  report.descending_writeback_lines = run_schedule(stream, kDescending, timing);

  const double per_line = model.offchip_writeback_energy_per_line();
  report.ascending_writeback_energy =
      static_cast<double>(report.ascending_writeback_lines) * per_line;
  report.descending_writeback_energy =
      static_cast<double>(report.descending_writeback_lines) * per_line;
  return report;
}

}  // namespace stcache
