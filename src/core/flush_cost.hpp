// Flush-cost analysis (Section 4, last paragraph).
//
// The heuristic searches cache sizes smallest-to-largest precisely so that
// no bulk write-back of dirty data is ever needed. This experiment
// quantifies the alternative: walking the sizes largest-to-smallest forces
// the dirty contents of every bank being shut down out to memory. The
// paper reports 9.48 uJ .. 12 mJ (average 5.38 mJ) of write-back energy,
// about 48,000x the energy of the tuner itself.
#pragma once

#include <span>

#include "cache/config.hpp"
#include "cache/stats.hpp"
#include "energy/energy_model.hpp"
#include "trace/trace.hpp"

namespace stcache {

struct FlushCostReport {
  // Dirty 16 B lines written back by reconfigurations along the schedule.
  std::uint64_t ascending_writeback_lines = 0;
  std::uint64_t descending_writeback_lines = 0;
  // Energy of those write-backs (off-chip write energy).
  double ascending_writeback_energy = 0.0;
  double descending_writeback_energy = 0.0;
};

// Replay `stream` while walking the size schedule (2-4-8 KB ascending
// vs. 8-4-2 KB descending, direct-mapped, 16 B lines), reconfiguring after
// every `interval` accesses, and report the write-back traffic each
// direction induces. The stream should be a data stream (instruction
// streams never have dirty lines and cost zero either way).
FlushCostReport measure_flush_cost(std::span<const TraceRecord> stream,
                                   const EnergyModel& model,
                                   TimingParams timing = {});

}  // namespace stcache
