// Energy evaluation oracle used by the tuning heuristics.
//
// The heuristic (Figure 6) repeatedly asks "what is the total memory-access
// energy of configuration X?" — in hardware that answer comes from running
// an interval and combining the hit/miss/cycle counters with the stored
// energy constants; in the paper's evaluation (and ours for Table 1) it
// comes from replaying the benchmark's full trace. Both are Evaluators.
#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "cache/config.hpp"
#include "cache/stats.hpp"
#include "energy/energy_model.hpp"
#include "trace/trace.hpp"

namespace stcache {

class Evaluator {
 public:
  virtual ~Evaluator() = default;
  // Total energy (joules) of running the workload under `cfg`.
  virtual double energy(const CacheConfig& cfg) = 0;
  // Number of distinct configurations evaluated so far (the paper's "No."
  // column; repeated queries for an already-measured configuration are
  // free, as the tuner registers hold the previous result).
  virtual unsigned evaluations() const = 0;
};

// Full-trace evaluator: replays the (single-cache) address stream through a
// cold cache per configuration and applies Equation 1. Results are
// memoized.
class TraceEvaluator final : public Evaluator {
 public:
  TraceEvaluator(std::span<const TraceRecord> stream, const EnergyModel& model,
                 TimingParams timing = {})
      : stream_(stream), model_(&model), timing_(timing) {}

  // Packed-stream variant (capture_packed / load_packed_trace output):
  // measures on demand through measure_config_packed, which is stats-
  // identical to the record path for every engine. This is what lets the
  // in-process tuning pipeline evaluate without ever materializing a
  // TraceRecord AoS.
  TraceEvaluator(std::span<const std::uint32_t> packed_stream,
                 const EnergyModel& model, TimingParams timing = {})
      : packed_(packed_stream), packed_mode_(true), model_(&model),
        timing_(timing) {}

  double energy(const CacheConfig& cfg) override;
  unsigned evaluations() const override {
    return static_cast<unsigned>(cache_.size());
  }

  // Full breakdown and stats of a configuration (measured on demand).
  const CacheStats& stats(const CacheConfig& cfg);

  // Pre-populate the memo with an externally measured replay result (the
  // parallel sweep path measures configurations on worker threads, then
  // primes a serial evaluator so searches over it are pure lookups).
  // Energy is derived exactly as measure() derives it; a configuration
  // already in the memo is left untouched.
  void prime(const CacheConfig& cfg, const CacheStats& stats);

 private:
  struct Entry {
    CacheStats stats;
    double energy = 0.0;
  };
  const Entry& measure(const CacheConfig& cfg);

  std::span<const TraceRecord> stream_;
  std::span<const std::uint32_t> packed_;
  bool packed_mode_ = false;
  const EnergyModel* model_;
  TimingParams timing_;
  std::map<std::string, Entry> cache_;
};

// Prime an evaluator with a whole bank sweep result (index-aligned configs
// and stats, e.g. BankAccumulator::stats()). Searches over the primed
// evaluator are then pure lookups — report.cpp and the phase-adaptive
// tuner both close their sweeps this way.
void prime_all(TraceEvaluator& eval, std::span<const CacheConfig> configs,
               std::span<const CacheStats> stats);

}  // namespace stcache
