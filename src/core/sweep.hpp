// Parallel design-space sweep engine.
//
// Every full-space experiment in bench/ has the same shape: a grid of
// (workload stream x cache configuration) evaluations, each independent of
// all the others, followed by an order-sensitive reduction (tables, running
// averages, geometric means). SweepRunner shards the independent part
// across a ThreadPool and hands the results back *keyed by job index*, so
// the reduction runs serially in a fixed order and the output is
// byte-identical whatever the worker count or completion order — `--jobs 8`
// must reproduce `--jobs 1` exactly, including the floating-point
// accumulation order.
//
// The runner also keeps per-sweep metrics (jobs run, wall time, simulated
// accesses fed to cache models) that benches print at sweep end and can
// export as JSON via --metrics-out. Metrics go to stderr / a file, never
// stdout: stdout carries the reproduced table and must stay diffable.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace stcache {

struct SweepOptions {
  // Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned jobs = 0;
};

struct SweepMetrics {
  unsigned workers = 0;
  std::uint64_t jobs_run = 0;
  double wall_seconds = 0.0;
  // Trace records replayed through cache models, as reported by the jobs
  // themselves via SweepRunner::add_accesses.
  std::uint64_t simulated_accesses = 0;

  double accesses_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(simulated_accesses) / wall_seconds
               : 0.0;
  }
  std::string to_json() const;
};

class SweepRunner {
 public:
  explicit SweepRunner(const SweepOptions& opts = {});

  unsigned workers() const { return workers_; }

  // Evaluate fn(0), ..., fn(n-1) across the workers and return the results
  // in job-index order. Jobs must not depend on each other; fn runs on an
  // arbitrary worker thread. If any job throws, the first exception (in
  // job-index order) is rethrown here after the pool drains — wrapped in a
  // stcache::Error carrying the job's context (index, total, and the
  // caller's `label` for the job, e.g. "crc x 4K_2W_32B"), because "what
  // failed" matters more than "that something failed" in a thousand-cell
  // sweep. Multiple map() calls accumulate into the same metrics.
  using JobLabelFn = std::function<std::string(std::size_t)>;

  template <typename R>
  std::vector<R> map(std::size_t n, const std::function<R(std::size_t)>& fn,
                     const JobLabelFn& label = {}) {
    const auto start = std::chrono::steady_clock::now();
    auto run_job = [&](std::size_t i) -> R {
      try {
        return fn(i);
      } catch (const std::exception& e) {
        rethrow_with_context(i, n, label ? label(i) : std::string(), e.what());
      }
    };
    std::vector<std::optional<R>> slots(n);
    if (workers_ <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(run_job(i));
    } else {
      std::vector<std::future<void>> pending;
      pending.reserve(n);
      {
        ThreadPool pool(
            static_cast<unsigned>(std::min<std::size_t>(workers_, n)));
        for (std::size_t i = 0; i < n; ++i) {
          pending.push_back(pool.submit([&slots, &run_job, i] {
            slots[i].emplace(run_job(i));
          }));
        }
        // Joining before get() means every slot is filled (or poisoned)
        // before the first rethrow, so no job is abandoned mid-flight.
      }
      for (std::future<void>& f : pending) f.get();
    }
    finish_round(n, start);

    std::vector<R> out;
    out.reserve(n);
    for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  // Jobs call this to account the trace records they replayed.
  void add_accesses(std::uint64_t n) {
    accesses_.fetch_add(n, std::memory_order_relaxed);
  }

  SweepMetrics metrics() const;

  // One-line human summary, e.g. for stderr at sweep end.
  void print_metrics(std::ostream& os) const;

  // Write metrics as a JSON object to `path` (overwrites). Throws
  // stcache::Error if the file cannot be written. No-op when path is empty.
  void write_metrics_json(const std::string& path) const;

 private:
  void finish_round(std::size_t n,
                    std::chrono::steady_clock::time_point start);
  // Throws stcache::Error("sweep job i/n [label]: what").
  [[noreturn]] static void rethrow_with_context(std::size_t i, std::size_t n,
                                                const std::string& label,
                                                const std::string& what);

  unsigned workers_ = 1;
  std::uint64_t jobs_run_ = 0;
  double wall_seconds_ = 0.0;
  std::atomic<std::uint64_t> accesses_{0};
};

}  // namespace stcache
