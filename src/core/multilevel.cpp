#include "core/multilevel.hpp"

#include <map>

#include "util/error.hpp"

namespace stcache {

std::string TwoLevelConfig::name() const {
  return "L1I" + std::to_string(l1i_line) + "_L1D" + std::to_string(l1d_line) +
         "_L2x" + std::to_string(l2_line);
}

namespace {

// L2 access latency in cycles (on top of the L1 probe).
constexpr std::uint32_t kL2HitCycles = 8;

// One level-1 cache plus its path into the shared L2. We drive CacheModel
// for the arrays but keep the cycle accounting here, because CacheModel's
// built-in timing charges every miss the off-chip penalty, which is wrong
// under an L2.
struct Level1 {
  CacheModel cache;
  explicit Level1(const CacheGeometry& g) : cache(g) {}
};

}  // namespace

TwoLevelStats simulate_two_level(const TwoLevelConfig& cfg,
                                 std::span<const TraceRecord> trace,
                                 TimingParams timing) {
  Level1 l1i(cfg.l1i());
  Level1 l1d(cfg.l1d());
  CacheModel l2(cfg.l2());

  TwoLevelStats out;
  const std::uint32_t l2_miss_stall = timing.miss_stall_cycles(cfg.l2_line);

  auto access = [&](Level1& l1, std::uint32_t addr, bool is_write) {
    std::uint32_t cycles = timing.hit_cycles;
    const auto r1 = l1.cache.access(addr, is_write);
    if (!r1.hit) {
      // The L1 fill goes through the L2 (one L2 access: the L2 line is at
      // least as large as the L1 line). Dirty L1 victims also write into
      // the L2; the write-back traffic is already counted by CacheModel's
      // byte counters and folded into L2 pressure via this access.
      cycles += kL2HitCycles;
      out.stall_cycles += kL2HitCycles;
      const auto r2 = l2.access(addr, is_write);
      if (!r2.hit) {
        cycles += l2_miss_stall;
        out.stall_cycles += l2_miss_stall;
      }
    }
    out.total_cycles += cycles;
  };

  for (const TraceRecord& rec : trace) {
    switch (rec.kind) {
      case AccessKind::kIFetch:
        access(l1i, rec.addr, false);
        break;
      case AccessKind::kRead:
        access(l1d, rec.addr, false);
        break;
      case AccessKind::kWrite:
        access(l1d, rec.addr, true);
        break;
    }
  }

  out.l1i = l1i.cache.stats();
  out.l1d = l1d.cache.stats();
  out.l2 = l2.stats();
  return out;
}

double two_level_energy(const TwoLevelConfig& cfg, const TwoLevelStats& s,
                        const EnergyModel& model) {
  const MiniCacti& cacti = model.cacti();
  const EnergyParams& p = model.params();

  auto level_dynamic = [&](const CacheGeometry& g, const CacheStats& cs) {
    const double access = static_cast<double>(cs.accesses) *
                          cacti.generic_access_energy(g);
    const double fill = (static_cast<double>(cs.fill_bytes) / g.line_bytes) *
                        cacti.generic_fill_energy_per_line(g);
    return access + fill;
  };

  const double dyn = level_dynamic(cfg.l1i(), s.l1i) +
                     level_dynamic(cfg.l1d(), s.l1d) +
                     level_dynamic(cfg.l2(), s.l2);

  const double banks = MiniCacti::generic_bank_equivalents(cfg.l1i()) +
                       MiniCacti::generic_bank_equivalents(cfg.l1d()) +
                       MiniCacti::generic_bank_equivalents(cfg.l2());
  const double stat = static_cast<double>(s.total_cycles) *
                      p.e_static_per_bank_cycle() * banks;

  // Only L2 misses and L2 write-backs reach the off-chip memory.
  const double offchip =
      static_cast<double>(s.l2.misses) * model.offchip_read_energy(cfg.l2_line) +
      (static_cast<double>(s.l2.writeback_bytes) / kPhysicalLineBytes) *
          model.offchip_writeback_energy_per_line();

  const double stall =
      static_cast<double>(s.stall_cycles) * p.e_stall_per_cycle();

  return dyn + stat + offchip + stall;
}

namespace {

class TwoLevelEvaluator {
 public:
  TwoLevelEvaluator(std::span<const TraceRecord> trace, const EnergyModel& model,
                    TimingParams timing)
      : trace_(trace), model_(&model), timing_(timing) {}

  double energy(const TwoLevelConfig& cfg) {
    auto it = memo_.find(cfg.name());
    if (it == memo_.end()) {
      const TwoLevelStats stats = simulate_two_level(cfg, trace_, timing_);
      it = memo_.emplace(cfg.name(), two_level_energy(cfg, stats, *model_)).first;
      ++evaluations_;
    }
    return it->second;
  }

  unsigned evaluations() const { return evaluations_; }

 private:
  std::span<const TraceRecord> trace_;
  const EnergyModel* model_;
  TimingParams timing_;
  std::map<std::string, double> memo_;
  unsigned evaluations_ = 0;
};

}  // namespace

TwoLevelSearchResult tune_two_level(std::span<const TraceRecord> trace,
                                    const EnergyModel& model,
                                    TimingParams timing) {
  TwoLevelEvaluator eval(trace, model, timing);
  TwoLevelSearchResult r;
  TwoLevelConfig current;  // smallest line sizes everywhere
  double current_energy = eval.energy(current);

  auto walk = [&](auto apply, std::span<const std::uint32_t> values,
                  std::uint32_t current_value) {
    for (std::uint32_t v : values) {
      if (v <= current_value) continue;
      TwoLevelConfig cand = current;
      apply(cand, v);
      const double e = eval.energy(cand);
      if (e < current_energy) {
        current = cand;
        current_energy = e;
      } else {
        break;
      }
    }
  };

  walk([](TwoLevelConfig& c, std::uint32_t v) { c.l1i_line = v; }, kL1LineSizes,
       current.l1i_line);
  walk([](TwoLevelConfig& c, std::uint32_t v) { c.l1d_line = v; }, kL1LineSizes,
       current.l1d_line);
  walk([](TwoLevelConfig& c, std::uint32_t v) { c.l2_line = v; }, kL2LineSizes,
       current.l2_line);

  r.best = current;
  r.best_energy = current_energy;
  r.configs_examined = eval.evaluations();
  return r;
}

TwoLevelSearchResult tune_two_level_exhaustive(std::span<const TraceRecord> trace,
                                               const EnergyModel& model,
                                               TimingParams timing) {
  TwoLevelEvaluator eval(trace, model, timing);
  TwoLevelSearchResult r;
  bool first = true;
  for (std::uint32_t i : kL1LineSizes) {
    for (std::uint32_t d : kL1LineSizes) {
      for (std::uint32_t l2 : kL2LineSizes) {
        TwoLevelConfig cfg{i, d, l2};
        const double e = eval.energy(cfg);
        if (first || e < r.best_energy) {
          r.best = cfg;
          r.best_energy = e;
          first = false;
        }
      }
    }
  }
  r.configs_examined = eval.evaluations();
  return r;
}

}  // namespace stcache
