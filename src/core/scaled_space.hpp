// Heuristic accuracy on larger caches — the paper's declared future work.
//
// "While our search heuristic is scalable to larger caches, which have
//  more possible settings for cache size, line size, and associativity,
//  we have not analyzed the accuracy of our heuristic with larger caches
//  but plan to do so as future work." (Section 3.4)
//
// This module carries out that analysis: a generalized parameter space
// (arbitrary size/associativity/line-size value lists), the same
// ascending-greedy heuristic over it, and an exhaustive baseline. Caches
// are modeled with the generic CacheModel + mini-CACTI energy (way
// prediction is a platform-specific mechanism and is excluded here, as the
// paper's own scaling discussion excludes it).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "energy/energy_model.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"

namespace stcache {

struct ScaledSpace {
  std::vector<std::uint32_t> sizes;   // bytes, ascending
  std::vector<std::uint32_t> assocs;  // ways, ascending
  std::vector<std::uint32_t> lines;   // bytes, ascending

  ScaledSpace() = default;
  // Precomputes the valid-config list (configs() below) once, so callers
  // never triple-loop sizes x ways x lines again. The parameter vectors
  // stay public for reading; treat them as frozen after construction.
  ScaledSpace(std::vector<std::uint32_t> sizes,
              std::vector<std::uint32_t> assocs,
              std::vector<std::uint32_t> lines);

  // The platform of the paper scaled up one notch: 4-32 KB, up to 8-way,
  // 16-128 B lines (4*4*4 = 64 legal combinations).
  static ScaledSpace embedded_32k();
  // A desktop-ish L1 space: 8-64 KB, up to 8-way, 16-128 B (64 points).
  static ScaledSpace desktop_64k();

  // Every geometrically valid configuration, precomputed at construction,
  // in deterministic size-major (size, assoc, line) ascending order — the
  // same order the exhaustive search has always scanned in, so optimum
  // tie-breaking (strict improvement) is unchanged.
  const std::vector<CacheGeometry>& configs() const { return configs_; }
  unsigned total_configs() const {
    return static_cast<unsigned>(configs_.size());
  }
  bool valid(const CacheGeometry& g) const;

 private:
  std::vector<CacheGeometry> configs_;
};

// Full-trace evaluator over generic geometries, memoized. Single-config
// energy() queries replay through the engine-aware measure_geometry /
// measure_geometry_packed (fast engine under the process default);
// prime() measures a whole space in one generalized-oneshot bank pass.
class ScaledEvaluator {
 public:
  ScaledEvaluator(std::span<const TraceRecord> stream, const EnergyModel& model,
                  TimingParams timing = {})
      : stream_(stream), model_(&model), timing_(timing) {}
  // Packed-stream variant (16 B-block words): every geometry evaluated
  // through it must have line_bytes >= 16.
  ScaledEvaluator(std::span<const std::uint32_t> packed,
                  const EnergyModel& model, TimingParams timing = {})
      : packed_(packed), packed_mode_(true), model_(&model), timing_(timing) {}

  double energy(const CacheGeometry& g);

  // Measure every configuration of `space` in one bank pass — grouped by
  // line-size family into generalized stack-distance traversals under the
  // oneshot engine (see measure_geometry_bank) — and memoize the
  // energies. tune_scaled_exhaustive calls this; the greedy heuristic
  // keeps its on-demand per-config path.
  void prime(const ScaledSpace& space,
             ReplayEngine engine = ReplayEngine::kDefault,
             unsigned sweep_jobs = 0);
  // Memoize energies from externally measured stats (stats[i] ~ geoms[i]);
  // lets report renderers re-run searches without touching the stream.
  void prime_from(std::span<const CacheGeometry> geoms,
                  std::span<const CacheStats> stats);

  unsigned evaluations() const { return static_cast<unsigned>(memo_.size()); }

 private:
  std::span<const TraceRecord> stream_;
  std::span<const std::uint32_t> packed_;
  bool packed_mode_ = false;
  const EnergyModel* model_;
  TimingParams timing_;
  std::map<std::string, double> memo_;
};

struct ScaledSearchResult {
  CacheGeometry best{};
  double best_energy = 0.0;
  unsigned configs_examined = 0;
};

// The Figure 6 heuristic generalized: start from the smallest configuration
// and walk size, then line size, then associativity, each ascending while
// energy improves.
ScaledSearchResult tune_scaled(ScaledEvaluator& eval, const ScaledSpace& space);

ScaledSearchResult tune_scaled_exhaustive(ScaledEvaluator& eval,
                                          const ScaledSpace& space);

std::string geometry_name(const CacheGeometry& g);

}  // namespace stcache
