// Heuristic accuracy on larger caches — the paper's declared future work.
//
// "While our search heuristic is scalable to larger caches, which have
//  more possible settings for cache size, line size, and associativity,
//  we have not analyzed the accuracy of our heuristic with larger caches
//  but plan to do so as future work." (Section 3.4)
//
// This module carries out that analysis: a generalized parameter space
// (arbitrary size/associativity/line-size value lists), the same
// ascending-greedy heuristic over it, and an exhaustive baseline. Caches
// are modeled with the generic CacheModel + mini-CACTI energy (way
// prediction is a platform-specific mechanism and is excluded here, as the
// paper's own scaling discussion excludes it).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "energy/energy_model.hpp"
#include "trace/trace.hpp"

namespace stcache {

struct ScaledSpace {
  std::vector<std::uint32_t> sizes;   // bytes, ascending
  std::vector<std::uint32_t> assocs;  // ways, ascending
  std::vector<std::uint32_t> lines;   // bytes, ascending

  // The platform of the paper scaled up one notch: 4-32 KB, up to 8-way,
  // 16-128 B lines (4*4*4 = 64 legal combinations).
  static ScaledSpace embedded_32k();
  // A desktop-ish L1 space: 8-64 KB, up to 8-way, 16-128 B (64 points).
  static ScaledSpace desktop_64k();

  // Number of geometrically valid configurations.
  unsigned total_configs() const;
  bool valid(const CacheGeometry& g) const;
};

// Full-trace evaluator over generic geometries, memoized.
class ScaledEvaluator {
 public:
  ScaledEvaluator(std::span<const TraceRecord> stream, const EnergyModel& model,
                  TimingParams timing = {})
      : stream_(stream), model_(&model), timing_(timing) {}

  double energy(const CacheGeometry& g);
  unsigned evaluations() const { return static_cast<unsigned>(memo_.size()); }

 private:
  std::span<const TraceRecord> stream_;
  const EnergyModel* model_;
  TimingParams timing_;
  std::map<std::string, double> memo_;
};

struct ScaledSearchResult {
  CacheGeometry best{};
  double best_energy = 0.0;
  unsigned configs_examined = 0;
};

// The Figure 6 heuristic generalized: start from the smallest configuration
// and walk size, then line size, then associativity, each ascending while
// energy improves.
ScaledSearchResult tune_scaled(ScaledEvaluator& eval, const ScaledSpace& space);

ScaledSearchResult tune_scaled_exhaustive(ScaledEvaluator& eval,
                                          const ScaledSpace& space);

std::string geometry_name(const CacheGeometry& g);

}  // namespace stcache
