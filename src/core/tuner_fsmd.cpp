#include "core/tuner_fsmd.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace stcache {

unsigned TunerFsmd::shift_for(std::uint64_t max_expected_count) {
  unsigned shift = 0;
  while ((max_expected_count >> shift) > 0xffffULL) ++shift;
  return shift;
}

TunerFsmd::TunerFsmd(const EnergyModel& model, TimingParams timing,
                     unsigned counter_shift, TunerGuards guards)
    : model_(&model),
      timing_(timing),
      counter_shift_(counter_shift),
      guards_(guards) {
  // --- derive the physical constants the RTL would have baked in ----------
  std::array<double, 6> hit{};
  for (std::size_t i = 0; i < kSizeAssocs.size(); ++i) {
    CacheConfig cfg{kSizeAssocs[i].size, kSizeAssocs[i].assoc, LineBytes::b16,
                    false};
    hit[i] = model.hit_energy(cfg);
  }
  std::array<double, 3> pred{};
  {
    const CacheConfig cfgs[3] = {
        {CacheSizeKB::k4, Assoc::w2, LineBytes::b16, true},
        {CacheSizeKB::k8, Assoc::w2, LineBytes::b16, true},
        {CacheSizeKB::k8, Assoc::w4, LineBytes::b16, true},
    };
    for (int i = 0; i < 3; ++i) pred[i] = model.predicted_probe_energy(cfgs[i]);
  }
  std::array<double, 3> miss{};
  {
    // Representative fill decode (the largest index) — the variation across
    // configurations is a fraction of a picojoule.
    const CacheConfig rep{CacheSizeKB::k8, Assoc::w1, LineBytes::b16, false};
    const double fill_per_line = model.fill_energy_per_line(rep);
    for (std::size_t i = 0; i < kLineSizes.size(); ++i) {
      const auto line = static_cast<std::uint32_t>(kLineSizes[i]);
      miss[i] = model.offchip_read_energy(line) +
                static_cast<double>(timing.miss_stall_cycles(line)) *
                    model.params().e_stall_per_cycle() +
                static_cast<double>(line / kPhysicalLineBytes) * fill_per_line;
    }
  }
  std::array<double, 3> stat{};
  for (std::size_t i = 0; i < kCacheSizes.size(); ++i) {
    CacheConfig cfg{kCacheSizes[i], Assoc::w1, LineBytes::b16, false};
    stat[i] = model.params().e_static_per_bank_cycle() *
              static_cast<double>(cfg.banks_powered()) *
              static_cast<double>(1u << kStaticShift);
  }

  // --- common energy LSB so all products share one scale -------------------
  double max_constant = 0.0;
  for (double v : hit) max_constant = std::max(max_constant, v);
  for (double v : pred) max_constant = std::max(max_constant, v);
  for (double v : miss) max_constant = std::max(max_constant, v);
  for (double v : stat) max_constant = std::max(max_constant, v);
  energy_lsb_ = max_constant / 60000.0;  // headroom below 2^16-1

  for (std::size_t i = 0; i < hit.size(); ++i) {
    hit_energy_q_[i] = quantize16(hit[i], energy_lsb_);
  }
  for (std::size_t i = 0; i < pred.size(); ++i) {
    pred_energy_q_[i] = quantize16(pred[i], energy_lsb_);
  }
  for (std::size_t i = 0; i < miss.size(); ++i) {
    miss_energy_q_[i] = quantize16(miss[i], energy_lsb_);
  }
  for (std::size_t i = 0; i < stat.size(); ++i) {
    static_energy_q_[i] = quantize16(stat[i], energy_lsb_);
  }
}

unsigned TunerFsmd::size_assoc_index(const CacheConfig& cfg) const {
  for (std::size_t i = 0; i < kSizeAssocs.size(); ++i) {
    if (kSizeAssocs[i].size == cfg.size_kb && kSizeAssocs[i].assoc == cfg.assoc) {
      return static_cast<unsigned>(i);
    }
  }
  fail("TunerFsmd: illegal size/associativity pair " + cfg.name());
}

U16 TunerFsmd::quantize_counter(std::uint64_t raw) const {
  return U16::from_raw(raw >> counter_shift_);
}

U32 TunerFsmd::quantized_energy(const CacheConfig& cfg,
                                const TunerCounters& c) const {
  const unsigned sa = size_assoc_index(cfg);
  const unsigned line_idx =
      cfg.line == LineBytes::b16 ? 0 : cfg.line == LineBytes::b32 ? 1 : 2;
  const unsigned size_idx =
      cfg.size_kb == CacheSizeKB::k2 ? 0 : cfg.size_kb == CacheSizeKB::k4 ? 1 : 2;

  auto mul = [](U16 k, U16 count) {
    U32 wide = U32::from_raw(count.raw());
    U32 product = mul_16x32(k, wide);
    if (count.saturated()) return U32::saturated_max();
    return product;
  };

  const U16 misses_q = quantize_counter(c.misses);
  const U16 cycles10_q = quantize_counter(c.cycles >> kStaticShift);

  U32 e = mul(miss_energy_q_[line_idx], misses_q) +
          mul(static_energy_q_[size_idx], cycles10_q);

  if (!cfg.way_prediction) {
    // Every access probes the full set: accesses * E_hit.
    const U16 accesses_q = quantize_counter(c.accesses);
    e = e + mul(hit_energy_q_[sa], accesses_q);
  } else {
    // accesses * E_pred  +  (accesses - first_hits) * E_full:
    // every access pays the predicted-way probe; non-first-hits (way
    // mispredicts and misses) pay the full-set probe as well.
    const unsigned pred_idx = sa == 2 ? 0 : sa == 4 ? 1 : sa == 5 ? 2 : 3;
    if (pred_idx > 2) fail("TunerFsmd: prediction on a direct-mapped config");
    const U16 accesses_q = quantize_counter(c.accesses);
    const U16 second_q = quantize_counter(c.accesses - c.pred_first_hits);
    e = e + mul(pred_energy_q_[pred_idx], accesses_q) +
        mul(hit_energy_q_[sa], second_q);
  }
  return e;
}

bool TunerFsmd::plausible(const TunerCounters& c, std::string* reason) const {
  auto bad = [&](const char* why) {
    if (reason) *reason = why;
    return false;
  };
  // Invariants no genuine measurement interval can violate.
  if (c.accesses == 0) return bad("empty interval (no accesses)");
  if (c.hits > c.accesses || c.misses > c.accesses ||
      c.hits + c.misses > c.accesses) {
    return bad("hit/miss counters exceed the access counter");
  }
  if (c.pred_first_hits > c.hits) {
    return bad("predicted-way hits exceed total hits");
  }
  // Interval-length plausibility band: an access costs at least one cycle
  // (a hit) and at most the worst-case miss service.
  if (c.cycles < c.accesses) return bad("interval shorter than its accesses");
  if (c.cycles / c.accesses > guards_.max_cycles_per_access) {
    return bad("interval implausibly long for its accesses");
  }
  // Saturation detection: counter_shift_ was chosen so the largest expected
  // interval fits the 16-bit registers; a counter that would overflow them
  // anyway is corruption, not a measurement.
  if ((c.accesses >> counter_shift_) > U16::max_raw() ||
      (c.misses >> counter_shift_) > U16::max_raw() ||
      ((c.cycles >> kStaticShift) >> counter_shift_) > U16::max_raw()) {
    return bad("counter would saturate the 16-bit datapath registers");
  }
  return true;
}

TunerFsmd::Result TunerFsmd::run(TunerPort& port) {
  Result r;

  auto evaluate = [&](const CacheConfig& cfg) {
    TunerCounters c = port.measure(cfg);
    // Guarded counter latch: re-measure an implausible interval with
    // bounded retries before giving up on the candidate.
    bool ok = !guards_.enabled || plausible(c);
    for (unsigned retry = 0; !ok && retry < guards_.max_retries; ++retry) {
      ++r.rejected_intervals;
      ++r.remeasurements;
      r.tuner_cycles += kCounterLoadCycles + kGuardCheckCycles;
      c = port.measure(cfg);
      ok = plausible(c);
    }
    ++r.configs_examined;
    r.tuner_cycles += kCyclesPerEvaluation;
    if (cfg.way_prediction) r.tuner_cycles += kMulCycles;  // fourth multiply
    if (!ok) {
      // Retries exhausted: never base a decision on poisoned counters.
      // Worst-possible energy keeps the walk's current choice instead.
      ++r.rejected_intervals;
      r.guard_exhausted = true;
      return U32::saturated_max();
    }
    const U32 e = quantized_energy(cfg, c);
    r.saturated = r.saturated || e.saturated();
    return e;
  };

  // PSM start state: the initial 2 KB direct-mapped 16 B configuration.
  CacheConfig current{CacheSizeKB::k2, Assoc::w1, LineBytes::b16, false};
  U32 lowest = evaluate(current);

  // PSM states P1..P4 walk size, line, associativity, prediction; the VSM
  // inside each state walks values upward while energy keeps dropping.
  for (Param p : kPaperOrder) {
    switch (p) {
      case Param::kSize:
        for (CacheSizeKB s : kCacheSizes) {
          if (static_cast<unsigned>(s) <= static_cast<unsigned>(current.size_kb)) {
            continue;
          }
          CacheConfig cand = current;
          cand.size_kb = s;
          const U32 e = evaluate(cand);
          if (e < lowest) {
            current = cand;
            lowest = e;
          } else {
            break;
          }
        }
        break;
      case Param::kLine:
        for (LineBytes l : kLineSizes) {
          if (static_cast<unsigned>(l) <= static_cast<unsigned>(current.line)) {
            continue;
          }
          CacheConfig cand = current;
          cand.line = l;
          const U32 e = evaluate(cand);
          if (e < lowest) {
            current = cand;
            lowest = e;
          } else {
            break;
          }
        }
        break;
      case Param::kAssoc:
        for (Assoc a : kAssocs) {
          if (static_cast<unsigned>(a) <= static_cast<unsigned>(current.assoc)) {
            continue;
          }
          CacheConfig cand = current;
          cand.assoc = a;
          if (!cand.valid()) break;
          const U32 e = evaluate(cand);
          if (e < lowest) {
            current = cand;
            lowest = e;
          } else {
            break;
          }
        }
        break;
      case Param::kPred:
        if (current.assoc != Assoc::w1) {
          CacheConfig cand = current;
          cand.way_prediction = true;
          const U32 e = evaluate(cand);
          if (e < lowest) {
            current = cand;
            lowest = e;
          }
        }
        break;
    }
  }

  r.best = current;
  r.tuner_energy =
      static_cast<double>(r.tuner_cycles) * model_->params().tuner_power *
      model_->params().cycle_seconds();
  return r;
}

}  // namespace stcache
