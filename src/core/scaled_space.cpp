#include "core/scaled_space.hpp"

#include "trace/replay.hpp"
#include "util/error.hpp"

namespace stcache {

ScaledSpace ScaledSpace::embedded_32k() {
  return ScaledSpace{{4096, 8192, 16384, 32768}, {1, 2, 4, 8}, {16, 32, 64, 128}};
}

ScaledSpace ScaledSpace::desktop_64k() {
  return ScaledSpace{{8192, 16384, 32768, 65536}, {1, 2, 4, 8}, {16, 32, 64, 128}};
}

bool ScaledSpace::valid(const CacheGeometry& g) const {
  return g.valid() && g.num_sets() >= 1;
}

unsigned ScaledSpace::total_configs() const {
  unsigned n = 0;
  for (std::uint32_t s : sizes) {
    for (std::uint32_t a : assocs) {
      for (std::uint32_t l : lines) {
        if (valid(CacheGeometry{s, a, l})) ++n;
      }
    }
  }
  return n;
}

std::string geometry_name(const CacheGeometry& g) {
  return std::to_string(g.size_bytes / 1024) + "K_" + std::to_string(g.assoc) +
         "W_" + std::to_string(g.line_bytes) + "B";
}

double ScaledEvaluator::energy(const CacheGeometry& g) {
  const std::string key = geometry_name(g);
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    const CacheStats stats = measure_geometry(g, stream_, timing_);
    it = memo_.emplace(key, model_->evaluate_generic(g, stats).total()).first;
  }
  return it->second;
}

ScaledSearchResult tune_scaled(ScaledEvaluator& eval, const ScaledSpace& space) {
  if (space.sizes.empty() || space.assocs.empty() || space.lines.empty()) {
    fail("tune_scaled: empty parameter space");
  }
  ScaledSearchResult r;
  CacheGeometry current{space.sizes.front(), space.assocs.front(),
                        space.lines.front()};
  if (!space.valid(current)) fail("tune_scaled: smallest configuration invalid");
  double current_energy = eval.energy(current);
  ++r.configs_examined;

  auto walk = [&](auto values, auto apply) {
    for (std::uint32_t v : values) {
      CacheGeometry cand = current;
      apply(cand, v);
      if (cand == current) continue;  // handled below via value ordering
      // Only ascend.
      bool ascending = false;
      if (cand.size_bytes > current.size_bytes) ascending = true;
      if (cand.line_bytes > current.line_bytes) ascending = true;
      if (cand.assoc > current.assoc) ascending = true;
      if (!ascending || !space.valid(cand)) continue;
      const double e = eval.energy(cand);
      ++r.configs_examined;
      if (e < current_energy) {
        current = cand;
        current_energy = e;
      } else {
        break;
      }
    }
  };

  walk(space.sizes, [](CacheGeometry& g, std::uint32_t v) { g.size_bytes = v; });
  walk(space.lines, [](CacheGeometry& g, std::uint32_t v) { g.line_bytes = v; });
  walk(space.assocs, [](CacheGeometry& g, std::uint32_t v) { g.assoc = v; });

  r.best = current;
  r.best_energy = current_energy;
  return r;
}

ScaledSearchResult tune_scaled_exhaustive(ScaledEvaluator& eval,
                                          const ScaledSpace& space) {
  ScaledSearchResult r;
  bool first = true;
  for (std::uint32_t s : space.sizes) {
    for (std::uint32_t a : space.assocs) {
      for (std::uint32_t l : space.lines) {
        const CacheGeometry g{s, a, l};
        if (!space.valid(g)) continue;
        const double e = eval.energy(g);
        ++r.configs_examined;
        if (first || e < r.best_energy) {
          r.best = g;
          r.best_energy = e;
          first = false;
        }
      }
    }
  }
  if (first) fail("tune_scaled_exhaustive: no valid configuration");
  return r;
}

}  // namespace stcache
