#include "core/scaled_space.hpp"

#include <algorithm>

#include "trace/replay.hpp"
#include "util/error.hpp"

namespace stcache {

ScaledSpace::ScaledSpace(std::vector<std::uint32_t> sizes_in,
                         std::vector<std::uint32_t> assocs_in,
                         std::vector<std::uint32_t> lines_in)
    : sizes(std::move(sizes_in)),
      assocs(std::move(assocs_in)),
      lines(std::move(lines_in)) {
  configs_.reserve(sizes.size() * assocs.size() * lines.size());
  for (std::uint32_t s : sizes) {
    for (std::uint32_t a : assocs) {
      for (std::uint32_t l : lines) {
        const CacheGeometry g{s, a, l};
        if (g.valid() && g.num_sets() >= 1) configs_.push_back(g);
      }
    }
  }
}

ScaledSpace ScaledSpace::embedded_32k() {
  return ScaledSpace{{4096, 8192, 16384, 32768}, {1, 2, 4, 8}, {16, 32, 64, 128}};
}

ScaledSpace ScaledSpace::desktop_64k() {
  return ScaledSpace{{8192, 16384, 32768, 65536}, {1, 2, 4, 8}, {16, 32, 64, 128}};
}

bool ScaledSpace::valid(const CacheGeometry& g) const {
  if (!g.valid() || g.num_sets() < 1) return false;
  return std::find(configs_.begin(), configs_.end(), g) != configs_.end();
}

std::string geometry_name(const CacheGeometry& g) {
  return std::to_string(g.size_bytes / 1024) + "K_" + std::to_string(g.assoc) +
         "W_" + std::to_string(g.line_bytes) + "B";
}

double ScaledEvaluator::energy(const CacheGeometry& g) {
  const std::string key = geometry_name(g);
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    const CacheStats stats =
        packed_mode_ ? measure_geometry_packed(g, packed_, timing_)
                     : measure_geometry(g, stream_, timing_);
    it = memo_.emplace(key, model_->evaluate_generic(g, stats).total()).first;
  }
  return it->second;
}

void ScaledEvaluator::prime(const ScaledSpace& space, ReplayEngine engine,
                            unsigned sweep_jobs) {
  const std::vector<CacheGeometry>& geoms = space.configs();
  if (geoms.empty()) return;
  // Already primed (e.g. via prime_from) — nothing left to measure.
  bool all_memoized = true;
  for (const CacheGeometry& g : geoms) {
    if (!memo_.count(geometry_name(g))) {
      all_memoized = false;
      break;
    }
  }
  if (all_memoized) return;
  const std::vector<CacheStats> stats =
      packed_mode_
          ? measure_geometry_bank(geoms, packed_, timing_, engine, sweep_jobs)
          : measure_geometry_bank(geoms, stream_, timing_, engine, sweep_jobs);
  prime_from(geoms, stats);
}

void ScaledEvaluator::prime_from(std::span<const CacheGeometry> geoms,
                                 std::span<const CacheStats> stats) {
  if (geoms.size() != stats.size()) {
    fail("ScaledEvaluator::prime_from: geometry/stats size mismatch");
  }
  for (std::size_t i = 0; i < geoms.size(); ++i) {
    memo_.insert_or_assign(
        geometry_name(geoms[i]),
        model_->evaluate_generic(geoms[i], stats[i]).total());
  }
}

ScaledSearchResult tune_scaled(ScaledEvaluator& eval, const ScaledSpace& space) {
  if (space.sizes.empty() || space.assocs.empty() || space.lines.empty()) {
    fail("tune_scaled: empty parameter space");
  }
  ScaledSearchResult r;
  CacheGeometry current{space.sizes.front(), space.assocs.front(),
                        space.lines.front()};
  if (!space.valid(current)) fail("tune_scaled: smallest configuration invalid");
  double current_energy = eval.energy(current);
  ++r.configs_examined;

  auto walk = [&](auto values, auto apply) {
    for (std::uint32_t v : values) {
      CacheGeometry cand = current;
      apply(cand, v);
      if (cand == current) continue;  // handled below via value ordering
      // Only ascend.
      bool ascending = false;
      if (cand.size_bytes > current.size_bytes) ascending = true;
      if (cand.line_bytes > current.line_bytes) ascending = true;
      if (cand.assoc > current.assoc) ascending = true;
      if (!ascending || !space.valid(cand)) continue;
      const double e = eval.energy(cand);
      ++r.configs_examined;
      if (e < current_energy) {
        current = cand;
        current_energy = e;
      } else {
        break;
      }
    }
  };

  walk(space.sizes, [](CacheGeometry& g, std::uint32_t v) { g.size_bytes = v; });
  walk(space.lines, [](CacheGeometry& g, std::uint32_t v) { g.line_bytes = v; });
  walk(space.assocs, [](CacheGeometry& g, std::uint32_t v) { g.assoc = v; });

  r.best = current;
  r.best_energy = current_energy;
  return r;
}

ScaledSearchResult tune_scaled_exhaustive(ScaledEvaluator& eval,
                                          const ScaledSpace& space) {
  // One bank pass measures the whole space (grouped by line-size family
  // into generalized oneshot traversals); the scan below then only reads
  // the memo. configs() preserves the historical size-major scan order,
  // so strict-improvement tie-breaking picks the same optimum as before.
  eval.prime(space);
  ScaledSearchResult r;
  bool first = true;
  for (const CacheGeometry& g : space.configs()) {
    const double e = eval.energy(g);
    ++r.configs_examined;
    if (first || e < r.best_energy) {
      r.best = g;
      r.best_energy = e;
      first = false;
    }
  }
  if (first) fail("tune_scaled_exhaustive: no valid configuration");
  return r;
}

}  // namespace stcache
