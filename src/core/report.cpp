#include "core/report.hpp"

#include <ostream>
#include <string>

#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace stcache {

void print_exhaustive_report(std::ostream& out, bool instruction,
                             std::uint64_t accesses,
                             std::span<const CacheConfig> configs,
                             std::span<const CacheStats> measured,
                             const EnergyModel& model) {
  STC_ASSERT(configs.size() == measured.size(),
             "report: configs/measured size mismatch");
  out << "Tuning the " << (instruction ? "instruction" : "data")
      << " cache on " << accesses << " accesses...\n\n";

  // Both searches only ever visit registry configurations, all of which
  // are primed, so the empty packed span is never replayed.
  TraceEvaluator eval(std::span<const std::uint32_t>{}, model);
  prime_all(eval, configs, measured);
  const SearchResult heur = tune(eval);
  const double base = eval.energy(base_cache());

  Table table({"search", "configuration", "configs examined", "energy",
               "savings vs 8K_4W_32B"});
  table.add_row({"heuristic", heur.best.name(),
                 std::to_string(heur.configs_examined),
                 fmt_si_energy(heur.best_energy),
                 fmt_percent(1.0 - heur.best_energy / base, 1)});
  const SearchResult ex = tune_exhaustive(eval);
  table.add_row({"exhaustive", ex.best.name(),
                 std::to_string(ex.configs_examined),
                 fmt_si_energy(ex.best_energy),
                 fmt_percent(1.0 - ex.best_energy / base, 1)});
  table.print(out);

  out << "\nVisited: ";
  for (std::size_t v = 0; v < heur.visited.size(); ++v) {
    out << (v ? " -> " : "") << heur.visited[v].name();
  }
  out << "\n";
}

}  // namespace stcache
