#include "core/evaluator.hpp"

#include "trace/replay.hpp"
#include "util/error.hpp"

namespace stcache {

const TraceEvaluator::Entry& TraceEvaluator::measure(const CacheConfig& cfg) {
  auto it = cache_.find(cfg.name());
  if (it == cache_.end()) {
    Entry e;
    e.stats = packed_mode_ ? measure_config_packed(cfg, packed_, timing_)
                           : measure_config(cfg, stream_, timing_);
    e.energy = model_->evaluate(cfg, e.stats).total();
    it = cache_.emplace(cfg.name(), e).first;
  }
  return it->second;
}

void TraceEvaluator::prime(const CacheConfig& cfg, const CacheStats& stats) {
  if (cache_.contains(cfg.name())) return;
  Entry e;
  e.stats = stats;
  e.energy = model_->evaluate(cfg, e.stats).total();
  cache_.emplace(cfg.name(), e);
}

double TraceEvaluator::energy(const CacheConfig& cfg) { return measure(cfg).energy; }

const CacheStats& TraceEvaluator::stats(const CacheConfig& cfg) {
  return measure(cfg).stats;
}

void prime_all(TraceEvaluator& eval, std::span<const CacheConfig> configs,
               std::span<const CacheStats> stats) {
  if (configs.size() != stats.size())
    fail("prime_all: configs/stats size mismatch");
  for (std::size_t i = 0; i < configs.size(); ++i)
    eval.prime(configs[i], stats[i]);
}

}  // namespace stcache
