// Tuning-application policies (Section 1 of the paper).
//
// "The tuning could be applied using different approaches, perhaps being
//  applied only during a special software-selected tuning mode, during the
//  startup of a task, whenever a program phase change is detected, or at
//  fixed time periods. The choice of approach is orthogonal to the design
//  of the self-tuning architecture itself."
//
// This module implements that orthogonal layer: a TuningController owns one
// configurable cache of a live system and decides WHEN to rerun the search
// the tuner implements, based on a pluggable trigger policy:
//
//   kOneShot     tune once at task startup, then lock the configuration;
//   kPeriodic    retune every N intervals;
//   kPhaseChange retune when the interval miss rate departs from the miss
//                rate observed when the current configuration was chosen
//                (the Balasubramonian-style phase detector the paper cites).
//
// The controller drives the same TunerFsmd hardware model used everywhere
// else; between tuning sessions the tuner is "shut down" (costs nothing),
// exactly as Section 4 describes.
// Hardening (docs/robustness.md): the controller never trusts a single
// tuning session blindly. A session whose guards were exhausted or whose
// fixed-point arithmetic saturated is *distrusted* — its choice is
// discarded in favour of the last configuration chosen by a clean session —
// and a phase-change trigger that fires in rapid succession (a retune storm,
// the signature of faulty or flapping measurements) is locked out with
// exponential backoff.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/configurable_cache.hpp"
#include "core/ports.hpp"
#include "core/tuner_fsmd.hpp"

namespace stcache {

enum class TuningTrigger : std::uint8_t { kOneShot, kPeriodic, kPhaseChange };

struct HardeningParams {
  // Distrusted sessions (guards exhausted / arithmetic saturated) keep the
  // last-known-good configuration instead of applying their choice.
  bool fallback_to_last_good = true;
  // Oscillation watchdog (kPhaseChange only): this many phase-triggered
  // sessions starting within `storm_window_intervals` of each other is a
  // retune storm. The trigger is then locked out for the current backoff,
  // which starts at `backoff_initial_intervals`, doubles per storm up to
  // `backoff_max_intervals`, and resets once the trigger stays quiet for a
  // full window after a lockout expires.
  std::uint32_t storm_sessions = 3;
  std::uint64_t storm_window_intervals = 24;
  std::uint64_t backoff_initial_intervals = 16;
  std::uint64_t backoff_max_intervals = 4096;
};

struct ControllerParams {
  TuningTrigger trigger = TuningTrigger::kOneShot;
  // kPeriodic: retune after this many quiet intervals.
  std::uint32_t period_intervals = 64;
  // kPhaseChange: retune when the interval miss rate differs from the
  // chosen-time miss rate by more than this absolute amount...
  double miss_rate_delta = 0.05;
  // ...for this many consecutive intervals (debounce).
  std::uint32_t phase_debounce = 2;
  // Counter plausibility guards handed to each session's TunerFsmd.
  TunerGuards guards;
  HardeningParams hardening;
};

// Interval callbacks: the controller distinguishes quiet monitoring
// intervals from the (usually shorter) measurement intervals a tuning
// session uses, so that the search transient — a few intervals spent in
// deliberately-too-small configurations — costs as little as possible.
struct IntervalFns {
  std::function<void()> quiet;
  std::function<void()> search;  // defaults to `quiet` when empty
};

// One record per completed tuning session (for reporting and tests).
struct TuningSession {
  std::uint64_t started_at_interval = 0;
  CacheConfig chosen;
  unsigned configs_examined = 0;
  double tuner_energy = 0.0;
  double reference_miss_rate = 0.0;  // miss rate of the chosen config
  // Fault/retry accounting (docs/robustness.md).
  unsigned rejected_intervals = 0;   // measurements the guards refused
  unsigned remeasurements = 0;       // retry intervals the guards issued
  std::uint64_t faults_injected = 0; // from the attached MeasurementTap
  bool saturated = false;            // fixed-point overflow during the search
  bool fell_back = false;            // distrusted; kept last-known-good
};

class TuningController {
 public:
  // The controller owns reconfiguration of `cache`; `run_interval` advances
  // the application by one measurement interval (same contract as
  // LiveTunerPort).
  TuningController(ConfigurableCache& cache, const EnergyModel& model,
                   ControllerParams params, unsigned counter_shift);

  // Advance one interval: either a quiet monitoring interval (the tuner is
  // powered off) or, if the trigger fires, a full tuning session. Returns
  // true if a tuning session ran during this call.
  bool step(const std::function<void()>& run_interval);
  bool step(const IntervalFns& fns);

  const CacheConfig& current() const { return cache_->config(); }
  const std::vector<TuningSession>& sessions() const { return sessions_; }
  std::uint64_t intervals() const { return interval_count_; }
  double total_tuner_energy() const;

  // Attach a tap (e.g. a FaultInjector) on the counter path between the
  // live cache and the tuner; nullptr detaches. The controller reads the
  // tap's fault count delta into each session's accounting.
  void attach_tap(MeasurementTap* tap) { tap_ = tap; }

  // Last configuration chosen by a session the guards fully trusted.
  const std::optional<CacheConfig>& last_known_good() const {
    return last_known_good_;
  }
  // Oscillation-watchdog observability (tests and benches).
  std::uint64_t watchdog_storms() const { return storms_; }
  bool trigger_locked_out() const { return interval_count_ < lockout_until_; }

 private:
  bool trigger_fired(double interval_miss_rate);
  void run_tuning_session(const IntervalFns& fns, bool phase_triggered);

  ConfigurableCache* cache_;
  const EnergyModel* model_;
  ControllerParams params_;
  unsigned counter_shift_;

  std::vector<TuningSession> sessions_;
  std::uint64_t interval_count_ = 0;
  std::uint64_t intervals_since_tune_ = 0;
  std::uint32_t phase_strikes_ = 0;
  bool tuned_once_ = false;

  // Hardening state.
  MeasurementTap* tap_ = nullptr;
  std::uint64_t tap_faults_seen_ = 0;
  std::optional<CacheConfig> last_known_good_;
  std::vector<std::uint64_t> phase_session_starts_;
  std::uint64_t lockout_until_ = 0;
  std::uint64_t backoff_ = 0;
  std::uint64_t storms_ = 0;
};

}  // namespace stcache
