// In-order instruction-set simulator for the stcache ISA.
//
// Single-issue, stall-on-miss: every instruction pays its instruction-fetch
// cycles (1 on an I$ hit), and loads/stores additionally pay their data
// access cycles. This is the standard embedded-core timing model the
// paper's energy equations assume (the stall cycles show up as E_uP_stall).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/isa.hpp"
#include "sim/memory_system.hpp"

namespace stcache {

struct RunResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  bool halted = false;  // false => instruction budget exhausted
};

class Cpu {
 public:
  // Loads `program` into a fresh flat memory image of `mem_bytes` bytes
  // (power of two). The stack pointer starts at the top of memory.
  Cpu(const Program& program, MemorySystem& memory,
      std::uint32_t mem_bytes = 1u << 22);

  // Execute until halt or until `max_instructions` have retired.
  RunResult run(std::uint64_t max_instructions = 1ull << 32);

  // --- state inspection (tests, self-check harness) ------------------------
  std::uint32_t reg(std::uint8_t r) const;
  void set_reg(std::uint8_t r, std::uint32_t value);
  std::uint32_t pc() const { return pc_; }
  std::uint32_t load_word(std::uint32_t addr) const;
  std::uint8_t load_byte(std::uint32_t addr) const { return mem_at(addr); }
  void store_word(std::uint32_t addr, std::uint32_t value);
  std::uint32_t mem_bytes() const { return static_cast<std::uint32_t>(mem_.size()); }

 private:
  std::uint8_t mem_at(std::uint32_t addr) const;
  std::uint32_t read_mem(std::uint32_t addr, std::uint32_t bytes) const;
  void write_mem(std::uint32_t addr, std::uint32_t bytes, std::uint32_t value);
  const Instr& fetch_decoded(std::uint32_t addr);
  // Re-decode the word slots overlapping [addr, addr+bytes) after a store
  // into the text segment (self-modifying code).
  void redecode_range(std::uint32_t addr, std::uint32_t bytes);
  void decode_slot(std::uint32_t slot);

  [[noreturn]] void trap(const std::string& what) const;

  std::vector<std::uint8_t> mem_;
  // Every text word is decoded once up front (decode_slot); words that do
  // not decode — data placed low, or garbage — are marked not-ok and only
  // raise their decode error if fetched. Stores below text_end_ re-decode
  // the words they touch.
  std::vector<Instr> decode_cache_;
  std::vector<std::uint8_t> decode_ok_;
  std::uint32_t text_end_ = 0;
  std::uint32_t regs_[kNumRegs] = {};
  std::uint32_t pc_ = 0;
  MemorySystem* memory_;
};

}  // namespace stcache
