// Complete simulated system: CPU + split configurable I$/D$ + off-chip
// memory timing — the platform of the paper's Figure 1 (minus the tuner,
// which lives in core/ and attaches through the stats/reconfigure API the
// way the hardware tuner attaches through counter and configuration
// registers).
#pragma once

#include <cstdint>

#include "cache/config.hpp"
#include "cache/configurable_cache.hpp"
#include "sim/memory_system.hpp"

namespace stcache {

class SplitCacheSystem final : public MemorySystem {
 public:
  // Platform options beyond the tuned parameters: the data cache's write
  // policy and optional victim buffers on either side (instruction caches
  // are read-only, so their write policy is irrelevant and fixed).
  struct Options {
    WritePolicy dcache_write_policy = WritePolicy::kWriteBack;
    std::uint32_t icache_victim_entries = 0;
    std::uint32_t dcache_victim_entries = 0;
  };

  SplitCacheSystem(const CacheConfig& icfg, const CacheConfig& dcfg,
                   TimingParams timing, Options options)
      : icache_(icfg, timing, WritePolicy::kWriteBack,
                options.icache_victim_entries),
        dcache_(dcfg, timing, options.dcache_write_policy,
                options.dcache_victim_entries) {}

  // (Options cannot be a default argument of the constructor above while
  // the enclosing class is still incomplete, hence the delegation.)
  SplitCacheSystem(const CacheConfig& icfg, const CacheConfig& dcfg,
                   TimingParams timing = {})
      : SplitCacheSystem(icfg, dcfg, timing, Options{}) {}

  std::uint32_t ifetch(std::uint32_t addr) override {
    const auto cycles = icache_.access(addr, false).cycles;
    total_cycles_ += cycles;
    return cycles;
  }
  std::uint32_t dread(std::uint32_t addr, std::uint32_t) override {
    const auto cycles = dcache_.access(addr, false).cycles;
    total_cycles_ += cycles;
    return cycles;
  }
  std::uint32_t dwrite(std::uint32_t addr, std::uint32_t bytes) override {
    const auto cycles = dcache_.access(addr, true, bytes).cycles;
    total_cycles_ += cycles;
    return cycles;
  }

  ConfigurableCache& icache() { return icache_; }
  ConfigurableCache& dcache() { return dcache_; }
  const ConfigurableCache& icache() const { return icache_; }
  const ConfigurableCache& dcache() const { return dcache_; }

  // Cycles spent in the memory system since construction (both caches).
  std::uint64_t total_cycles() const { return total_cycles_; }

 private:
  ConfigurableCache icache_;
  ConfigurableCache dcache_;
  std::uint64_t total_cycles_ = 0;
};

}  // namespace stcache
