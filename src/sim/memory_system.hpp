// Interface between the CPU model and the memory hierarchy.
//
// The CPU is purely functional against a flat memory image; the
// MemorySystem only observes the *address stream* and returns the cycle
// cost of each access. This mirrors how the paper uses SimpleScalar: the
// simulator supplies per-configuration access and miss counts, nothing
// else.
#pragma once

#include <cstdint>

namespace stcache {

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  // Each returns the number of cycles the access takes (>= 1).
  virtual std::uint32_t ifetch(std::uint32_t addr) = 0;
  virtual std::uint32_t dread(std::uint32_t addr, std::uint32_t bytes) = 0;
  virtual std::uint32_t dwrite(std::uint32_t addr, std::uint32_t bytes) = 0;
};

// Idealized memory: every access takes one cycle. Used for functional
// testing of workloads and for fast trace-free runs.
class PerfectMemory final : public MemorySystem {
 public:
  std::uint32_t ifetch(std::uint32_t) override { return 1; }
  std::uint32_t dread(std::uint32_t, std::uint32_t) override { return 1; }
  std::uint32_t dwrite(std::uint32_t, std::uint32_t) override { return 1; }
};

}  // namespace stcache
