// Fast in-order interpreter: predecoded superblock execution with direct
// packed-trace emission.
//
// `Cpu` (cpu.hpp) is the behavioral reference: one `switch` dispatch per
// instruction, a virtual MemorySystem call per access, and a TraceRecord
// push per access when capturing. That shape is right for cache-timed
// whole-system runs (SplitCacheSystem), but trace *capture* — the producer
// side of every figure pipeline — only ever runs against unit-cost memory,
// where all of the per-instruction bookkeeping is loop-invariant.
// FastCpu specializes for exactly that case:
//
//  * Predecode to a dense form. The whole text segment decodes once into
//    8-byte DenseInstr entries (isa/dense.hpp): handler index + the
//    operand bytes and pre-massaged immediate the handler consumes.
//    Undecodable words get a poison handler that re-raises their decode
//    error only if fetched, exactly like the reference's decode_ok_ map.
//  * Superblocks. Straight-line runs between control-flow instructions are
//    precomputed (run_len_, one backward scan per decode) and executed as
//    a unit: no per-instruction PC update, fetch bounds check, or budget
//    check — those hoist to the block header, and the block's instruction
//    fetch trace (consecutive packed words) is emitted in bulk before the
//    run executes.
//  * Computed-goto dispatch. The straight-line loop threads through a
//    label table indexed by the dense handler byte when the compiler
//    supports the GNU labels-as-values extension (CMake feature test,
//    STCACHE_HAVE_COMPUTED_GOTO); a portable switch loop otherwise.
//  * Direct packed emission. Capture produces the split instruction/data
//    streams already in pack_stream() format (bit 31 = write, bits 30..0 =
//    16 B block number) through bump-pointer cursors into reusable chunk
//    buffers (PackedSink) — no TraceRecord AoS, no virtual call per
//    access, no split_trace/pack_stream round trip.
//  * SMC via per-block invalidation. A store below text_end_ re-decodes
//    the patched words, rebuilds the affected straight-line run lengths,
//    and truncates the currently executing superblock at the store, so
//    self-modifying code observes exactly the reference redecode
//    semantics (tests/fast_cpu_test.cpp runs the differential).
//
// Timing model: every instruction fetch and every data access costs one
// cycle (the capture contract of TracingMemory/PerfectMemory), so
// cycles == instructions + data accesses. For cache-timed runs use the
// reference Cpu with a real MemorySystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/dense.hpp"
#include "sim/cpu.hpp"

namespace stcache {

// Destination for packed trace words. The interpreter bumps the cursors
// directly (one store per access) and calls refill() only when a block
// needs more room than the current chunk has left, so the virtual call
// amortizes over a whole chunk. Implementations: PackedBufferSink
// (materialized vectors) and ChunkQueueSink (SPSC streaming) in
// trace/stream.hpp.
class PackedSink {
 public:
  virtual ~PackedSink() = default;

  std::uint32_t* ifetch_cursor() const { return iw_; }
  std::uint32_t* data_cursor() const { return dw_; }

 protected:
  friend class FastCpu;
  // Guarantee space for at least `min_free` more words in BOTH streams'
  // cursors (flushing or growing as needed). Cursor values may change.
  virtual void refill(std::size_t min_free) = 0;

  std::uint32_t* iw_ = nullptr;
  std::uint32_t* iw_end_ = nullptr;
  std::uint32_t* dw_ = nullptr;
  std::uint32_t* dw_end_ = nullptr;
};

class FastCpu {
 public:
  FastCpu(const Program& program, std::uint32_t mem_bytes = 1u << 22);

  // Execute until halt or until `max_instructions` have retired, without
  // capturing a trace (PerfectMemory-equivalent timing).
  RunResult run(std::uint64_t max_instructions = 1ull << 32);

  // Execute, emitting the packed instruction-fetch and data streams into
  // `sink`. The relative interleaving of the two streams is not defined
  // (each stream is in program order internally) — callers consume them as
  // the split streams every replay path wants anyway.
  RunResult run(std::uint64_t max_instructions, PackedSink& sink);

  // --- state inspection (differential tests, checksum verification) -------
  std::uint32_t reg(std::uint8_t r) const;
  void set_reg(std::uint8_t r, std::uint32_t value);
  std::uint32_t pc() const { return pc_; }
  std::uint32_t load_word(std::uint32_t addr) const;
  std::uint8_t load_byte(std::uint32_t addr) const;
  std::uint32_t mem_bytes() const { return static_cast<std::uint32_t>(mem_.size()); }

 private:
  template <bool kCapture>
  RunResult run_impl(std::uint64_t max_instructions, PackedSink* sink);

  void decode_slot(std::uint32_t slot);
  // Recompute run_len_ after (re)decoding slots in [first_changed,
  // last_changed]; scans backward and stops once values stabilize.
  void rebuild_run_lengths(std::uint32_t first_changed,
                           std::uint32_t last_changed);
  // Store into the text segment: redecode the touched words and rebuild
  // the straight-line run lengths (cold path, SMC only).
  void smc_store(std::uint32_t addr, std::uint32_t bytes);

  std::uint32_t read_mem_raw(std::uint32_t addr, std::uint32_t bytes) const;
  [[noreturn]] void trap(const std::string& what, std::uint32_t pc) const;

  std::vector<std::uint8_t> mem_;
  std::vector<DenseInstr> dense_;  // one entry per text word slot
  // Straight-line instructions executable from each slot before the next
  // control instruction / poisoned word / end of text.
  std::vector<std::uint32_t> run_len_;
  std::uint32_t text_end_ = 0;
  std::uint32_t regs_[kNumRegs] = {};
  std::uint32_t pc_ = 0;
};

}  // namespace stcache
