#include "sim/fast_cpu.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/error.hpp"

namespace stcache {

// The label table in run_impl is listed in Op declaration order; force a
// revisit here if the enum ever changes shape.
static_assert(static_cast<int>(Op::kJal) == 45,
              "Op enum changed: update the fast interpreter's label table");

FastCpu::FastCpu(const Program& program, std::uint32_t mem_bytes) {
  // Identical diagnostics to the reference constructor: the engines must be
  // indistinguishable from the outside, errors included.
  if (!std::has_single_bit(mem_bytes) || mem_bytes < (1u << 16)) {
    fail("Cpu: memory size must be a power of two >= 64 KB");
  }
  if (program.end_address() > mem_bytes) {
    fail("Cpu: program does not fit in " + std::to_string(mem_bytes) + " bytes");
  }
  mem_.assign(mem_bytes, 0);
  std::uint32_t text_end = 0;
  for (const Segment& s : program.segments) {
    std::copy(s.bytes.begin(), s.bytes.end(), mem_.begin() + s.base);
    if (s.base < kDefaultDataBase) {
      text_end = std::max(
          text_end, s.base + static_cast<std::uint32_t>(s.bytes.size()));
    }
  }
  text_end_ = text_end;
  const std::uint32_t nslots = (text_end_ + 3) / 4;
  dense_.resize(nslots);
  run_len_.assign(nslots, 0);
  for (std::uint32_t slot = 0; slot < nslots; ++slot) decode_slot(slot);
  if (nslots > 0) rebuild_run_lengths(0, nslots - 1);
  pc_ = program.entry;
  regs_[kSp] = mem_bytes - 16;
}

void FastCpu::decode_slot(std::uint32_t slot) {
  try {
    dense_[slot] = densify(decode(read_mem_raw(slot * 4, 4)));
  } catch (const Error&) {
    // Data interleaved with code, or a store that scribbled over an
    // instruction: poison the slot; the error re-raises only if fetched.
    dense_[slot] = DenseInstr{};  // kBadSlotHandler
  }
}

void FastCpu::rebuild_run_lengths(std::uint32_t first_changed,
                                  std::uint32_t last_changed) {
  // run_len_[s] depends only on slot s and run_len_[s+1], so one backward
  // scan from the last changed slot suffices; below the changed range the
  // scan stops as soon as a value reproduces itself.
  const std::uint32_t nslots = static_cast<std::uint32_t>(dense_.size());
  if (nslots == 0) return;
  for (std::uint32_t s = std::min(last_changed, nslots - 1) + 1; s-- > 0;) {
    const DenseInstr& d = dense_[s];
    std::uint32_t v = 0;
    if (d.h != kBadSlotHandler && !is_control(static_cast<Op>(d.h))) {
      v = 1 + (s + 1 < nslots ? run_len_[s + 1] : 0);
    }
    if (s < first_changed && v == run_len_[s]) break;
    run_len_[s] = v;
  }
}

void FastCpu::smc_store(std::uint32_t addr, std::uint32_t bytes) {
  const std::uint32_t first = (addr & ~3u) / 4;
  const std::uint32_t last = std::min(addr + bytes - 1, text_end_ - 1) / 4;
  for (std::uint32_t slot = first; slot <= last; ++slot) decode_slot(slot);
  rebuild_run_lengths(first, last);
}

std::uint32_t FastCpu::reg(std::uint8_t r) const {
  if (r >= kNumRegs) fail("Cpu::reg: register out of range");
  return regs_[r];
}

void FastCpu::set_reg(std::uint8_t r, std::uint32_t value) {
  if (r >= kNumRegs) fail("Cpu::set_reg: register out of range");
  if (r != kZero) regs_[r] = value;
}

std::uint8_t FastCpu::load_byte(std::uint32_t addr) const {
  if (addr >= mem_.size()) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "memory access out of range: 0x%08x", addr);
    fail(buf);
  }
  return mem_[addr];
}

std::uint32_t FastCpu::read_mem_raw(std::uint32_t addr, std::uint32_t bytes) const {
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint32_t>(load_byte(addr + i)) << (8 * i);
  }
  return v;
}

std::uint32_t FastCpu::load_word(std::uint32_t addr) const {
  return read_mem_raw(addr, 4);
}

void FastCpu::trap(const std::string& what, std::uint32_t pc) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, " (pc=0x%08x)", pc);
  fail("Cpu trap: " + what + buf);
}

RunResult FastCpu::run(std::uint64_t max_instructions) {
  return run_impl<false>(max_instructions, nullptr);
}

RunResult FastCpu::run(std::uint64_t max_instructions, PackedSink& sink) {
  return run_impl<true>(max_instructions, &sink);
}

namespace {

[[noreturn]] void oob_access(std::uint32_t addr) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "memory access out of range: 0x%08x", addr);
  fail(buf);
}

}  // namespace

template <bool kCapture>
RunResult FastCpu::run_impl(std::uint64_t max_instructions, PackedSink* sink) {
  RunResult result;
  std::uint64_t executed = 0;
  std::uint64_t daccesses = 0;
  std::uint32_t pc = pc_;
  std::uint32_t* iw = nullptr;
  std::uint32_t* dw = nullptr;
  if constexpr (kCapture) {
    iw = sink->iw_;
    dw = sink->dw_;
  }
  const std::uint32_t mem_size = static_cast<std::uint32_t>(mem_.size());
  std::uint8_t* const mem = mem_.data();

  if constexpr (!kCapture) {
    (void)sink;
    (void)iw;
    (void)dw;
  }

  // Traps must report the faulting instruction's address, exactly like the
  // reference (which keeps pc_ on the current instruction while it
  // executes).
  auto trap_at = [&](const char* what, std::uint32_t islot) {
    pc_ = islot * 4;
    trap(what, pc_);
  };
  // Like the reference, a failing load leaves pc_ at the faulting
  // instruction (its fail() carries no pc, but the member is inspectable).
  auto oob_at = [&](std::uint32_t addr, std::uint32_t islot) {
    pc_ = islot * 4;
    oob_access(addr);
  };

  while (executed < max_instructions) {
    // --- superblock header: all per-instruction bookkeeping, hoisted -----
    if (pc % 4 != 0) {
      pc_ = pc;
      trap("unaligned instruction fetch", pc);
    }
    if (pc >= text_end_) {
      pc_ = pc;
      trap("instruction fetch outside text segment", pc);
    }
    const std::uint32_t slot = pc / 4;
    std::uint32_t n = run_len_[slot];
    const std::uint64_t left = max_instructions - executed;
    const bool budget_cut = n >= left;
    if (budget_cut) n = static_cast<std::uint32_t>(left);

    if constexpr (kCapture) {
      // One space guarantee per block: n straight-line fetch words plus
      // the terminator's, and at most one data word per instruction.
      if (static_cast<std::size_t>(sink->iw_end_ - iw) < n + 1 ||
          static_cast<std::size_t>(sink->dw_end_ - dw) < n + 1) {
        sink->iw_ = iw;
        sink->dw_ = dw;
        sink->refill(n + 1);
        iw = sink->iw_;
        dw = sink->dw_;
      }
      // Bulk instruction-fetch emission: the block's packed words depend
      // only on its PC range, never on what the instructions compute.
      for (std::uint32_t k = 0; k < n; ++k) iw[k] = (slot + k) >> 2;
      iw += n;
    }

    // --- straight-line run: no PC updates, no fetch checks ---------------
    std::uint32_t i = 0;
    const DenseInstr* const base = dense_.data() + slot;
    if (n != 0) {
#define IN (base[i])
#if defined(STCACHE_HAVE_COMPUTED_GOTO)
      // Label table in Op declaration order (static_assert above); entries
      // for control ops and poisoned slots are unreachable inside a
      // straight-line run by construction of run_len_.
      static const void* const kLabels[kNumHandlers] = {
          &&h_kAdd, &&h_kSub, &&h_kAnd, &&h_kOr, &&h_kXor, &&h_kNor,
          &&h_kSlt, &&h_kSltu, &&h_kSll, &&h_kSrl, &&h_kSra, &&h_kSllv,
          &&h_kSrlv, &&h_kSrav, &&h_kMul, &&h_kMulhu, &&h_kDiv, &&h_kDivu,
          &&h_kRem, &&h_kRemu, &&h_unexpected, &&h_unexpected,
          &&h_unexpected, &&h_kAddi, &&h_kSlti, &&h_kSltiu, &&h_kAndi,
          &&h_kOri, &&h_kXori, &&h_kLui, &&h_unexpected, &&h_unexpected,
          &&h_unexpected, &&h_unexpected, &&h_unexpected, &&h_unexpected,
          &&h_kLb, &&h_kLbu, &&h_kLh, &&h_kLhu, &&h_kLw, &&h_kSb, &&h_kSh,
          &&h_kSw, &&h_unexpected, &&h_unexpected, &&h_unexpected};
#define CASE(name) h_##name
#define NEXT()                \
  do {                        \
    if (++i == n) goto run_done; \
    goto* kLabels[IN.h];      \
  } while (0)
      goto* kLabels[IN.h];
#else
#define CASE(name) case static_cast<std::uint8_t>(Op::name)
#define NEXT() break
      for (;;) {
        switch (IN.h) {
#endif

      CASE(kAdd): regs_[IN.a] = regs_[IN.b] + regs_[IN.c]; regs_[0] = 0; NEXT();
      CASE(kSub): regs_[IN.a] = regs_[IN.b] - regs_[IN.c]; regs_[0] = 0; NEXT();
      CASE(kAnd): regs_[IN.a] = regs_[IN.b] & regs_[IN.c]; regs_[0] = 0; NEXT();
      CASE(kOr): regs_[IN.a] = regs_[IN.b] | regs_[IN.c]; regs_[0] = 0; NEXT();
      CASE(kXor): regs_[IN.a] = regs_[IN.b] ^ regs_[IN.c]; regs_[0] = 0; NEXT();
      CASE(kNor): regs_[IN.a] = ~(regs_[IN.b] | regs_[IN.c]); regs_[0] = 0; NEXT();
      CASE(kSlt):
        regs_[IN.a] = static_cast<std::int32_t>(regs_[IN.b]) <
                              static_cast<std::int32_t>(regs_[IN.c])
                          ? 1
                          : 0;
        regs_[0] = 0;
        NEXT();
      CASE(kSltu):
        regs_[IN.a] = regs_[IN.b] < regs_[IN.c] ? 1 : 0;
        regs_[0] = 0;
        NEXT();
      CASE(kSll):
        regs_[IN.a] = regs_[IN.c] << IN.imm;
        regs_[0] = 0;
        NEXT();
      CASE(kSrl):
        regs_[IN.a] = regs_[IN.c] >> IN.imm;
        regs_[0] = 0;
        NEXT();
      CASE(kSra):
        regs_[IN.a] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(regs_[IN.c]) >> IN.imm);
        regs_[0] = 0;
        NEXT();
      CASE(kSllv):
        regs_[IN.a] = regs_[IN.c] << (regs_[IN.b] & 31);
        regs_[0] = 0;
        NEXT();
      CASE(kSrlv):
        regs_[IN.a] = regs_[IN.c] >> (regs_[IN.b] & 31);
        regs_[0] = 0;
        NEXT();
      CASE(kSrav):
        regs_[IN.a] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(regs_[IN.c]) >> (regs_[IN.b] & 31));
        regs_[0] = 0;
        NEXT();
      CASE(kMul):
        regs_[IN.a] = regs_[IN.b] * regs_[IN.c];
        regs_[0] = 0;
        NEXT();
      CASE(kMulhu):
        regs_[IN.a] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(regs_[IN.b]) * regs_[IN.c]) >> 32);
        regs_[0] = 0;
        NEXT();
      CASE(kDiv):
        regs_[IN.a] = regs_[IN.c] == 0
                          ? 0
                          : static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(regs_[IN.b]) /
                                static_cast<std::int32_t>(regs_[IN.c]));
        regs_[0] = 0;
        NEXT();
      CASE(kDivu):
        regs_[IN.a] = regs_[IN.c] == 0 ? 0 : regs_[IN.b] / regs_[IN.c];
        regs_[0] = 0;
        NEXT();
      CASE(kRem):
        regs_[IN.a] = regs_[IN.c] == 0
                          ? 0
                          : static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(regs_[IN.b]) %
                                static_cast<std::int32_t>(regs_[IN.c]));
        regs_[0] = 0;
        NEXT();
      CASE(kRemu):
        regs_[IN.a] = regs_[IN.c] == 0 ? 0 : regs_[IN.b] % regs_[IN.c];
        regs_[0] = 0;
        NEXT();

      CASE(kAddi):
        regs_[IN.a] = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        regs_[0] = 0;
        NEXT();
      CASE(kSlti):
        regs_[IN.a] = static_cast<std::int32_t>(regs_[IN.b]) < IN.imm ? 1 : 0;
        regs_[0] = 0;
        NEXT();
      CASE(kSltiu):
        regs_[IN.a] = regs_[IN.b] < static_cast<std::uint32_t>(IN.imm) ? 1 : 0;
        regs_[0] = 0;
        NEXT();
      CASE(kAndi):
        regs_[IN.a] = regs_[IN.b] & static_cast<std::uint32_t>(IN.imm);
        regs_[0] = 0;
        NEXT();
      CASE(kOri):
        regs_[IN.a] = regs_[IN.b] | static_cast<std::uint32_t>(IN.imm);
        regs_[0] = 0;
        NEXT();
      CASE(kXori):
        regs_[IN.a] = regs_[IN.b] ^ static_cast<std::uint32_t>(IN.imm);
        regs_[0] = 0;
        NEXT();
      CASE(kLui):
        regs_[IN.a] = static_cast<std::uint32_t>(IN.imm) << 16;
        regs_[0] = 0;
        NEXT();

      CASE(kLb): {
        const std::uint32_t addr = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        if (addr >= mem_size) oob_at(addr, slot + i);
        ++daccesses;
        if constexpr (kCapture) *dw++ = addr >> 4;
        regs_[IN.a] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(mem[addr])));
        regs_[0] = 0;
        NEXT();
      }
      CASE(kLbu): {
        const std::uint32_t addr = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        if (addr >= mem_size) oob_at(addr, slot + i);
        ++daccesses;
        if constexpr (kCapture) *dw++ = addr >> 4;
        regs_[IN.a] = mem[addr];
        regs_[0] = 0;
        NEXT();
      }
      CASE(kLh): {
        const std::uint32_t addr = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        if (addr % 2 != 0) trap_at("unaligned load", slot + i);
        if (addr >= mem_size) oob_at(addr, slot + i);
        ++daccesses;
        if constexpr (kCapture) *dw++ = addr >> 4;
        const std::uint32_t v = static_cast<std::uint32_t>(mem[addr]) |
                                (static_cast<std::uint32_t>(mem[addr + 1]) << 8);
        regs_[IN.a] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int16_t>(v)));
        regs_[0] = 0;
        NEXT();
      }
      CASE(kLhu): {
        const std::uint32_t addr = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        if (addr % 2 != 0) trap_at("unaligned load", slot + i);
        if (addr >= mem_size) oob_at(addr, slot + i);
        ++daccesses;
        if constexpr (kCapture) *dw++ = addr >> 4;
        regs_[IN.a] = static_cast<std::uint32_t>(mem[addr]) |
                      (static_cast<std::uint32_t>(mem[addr + 1]) << 8);
        regs_[0] = 0;
        NEXT();
      }
      CASE(kLw): {
        const std::uint32_t addr = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        if (addr % 4 != 0) trap_at("unaligned load", slot + i);
        if (addr >= mem_size) oob_at(addr, slot + i);
        ++daccesses;
        if constexpr (kCapture) *dw++ = addr >> 4;
        regs_[IN.a] = static_cast<std::uint32_t>(mem[addr]) |
                      (static_cast<std::uint32_t>(mem[addr + 1]) << 8) |
                      (static_cast<std::uint32_t>(mem[addr + 2]) << 16) |
                      (static_cast<std::uint32_t>(mem[addr + 3]) << 24);
        regs_[0] = 0;
        NEXT();
      }

      CASE(kSb): {
        const std::uint32_t addr = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        if (addr >= mem_size) trap_at("store out of range", slot + i);
        ++daccesses;
        if constexpr (kCapture) *dw++ = (addr >> 4) | 0x8000'0000u;
        mem[addr] = static_cast<std::uint8_t>(regs_[IN.a]);
        if (addr < text_end_) {
          smc_store(addr, 1);
          ++i;
          goto run_truncated;
        }
        NEXT();
      }
      CASE(kSh): {
        const std::uint32_t addr = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        if (addr % 2 != 0) trap_at("unaligned store", slot + i);
        if (addr > mem_size - 2) trap_at("store out of range", slot + i);
        ++daccesses;
        if constexpr (kCapture) *dw++ = (addr >> 4) | 0x8000'0000u;
        const std::uint32_t v = regs_[IN.a];
        mem[addr] = static_cast<std::uint8_t>(v);
        mem[addr + 1] = static_cast<std::uint8_t>(v >> 8);
        if (addr < text_end_) {
          smc_store(addr, 2);
          ++i;
          goto run_truncated;
        }
        NEXT();
      }
      CASE(kSw): {
        const std::uint32_t addr = regs_[IN.b] + static_cast<std::uint32_t>(IN.imm);
        if (addr % 4 != 0) trap_at("unaligned store", slot + i);
        if (addr > mem_size - 4) trap_at("store out of range", slot + i);
        ++daccesses;
        if constexpr (kCapture) *dw++ = (addr >> 4) | 0x8000'0000u;
        const std::uint32_t v = regs_[IN.a];
        mem[addr] = static_cast<std::uint8_t>(v);
        mem[addr + 1] = static_cast<std::uint8_t>(v >> 8);
        mem[addr + 2] = static_cast<std::uint8_t>(v >> 16);
        mem[addr + 3] = static_cast<std::uint8_t>(v >> 24);
        if (addr < text_end_) {
          smc_store(addr, 4);
          ++i;
          goto run_truncated;
        }
        NEXT();
      }

#if defined(STCACHE_HAVE_COMPUTED_GOTO)
      h_unexpected:
        fail("FastCpu: control instruction inside a straight-line run");
#else
          default:
            fail("FastCpu: control instruction inside a straight-line run");
        }
        if (++i == n) goto run_done;
      }
#endif
#undef CASE
#undef NEXT
#undef IN
    }

  run_done:
    executed += n;
    if (budget_cut) {
      pc = (slot + n) * 4;
      break;
    }

    // --- terminator: the control instruction that ends the block ---------
    {
      const std::uint32_t tslot = slot + n;
      const std::uint32_t tpc = tslot * 4;
      if (tpc >= text_end_) {
        pc_ = tpc;
        trap("instruction fetch outside text segment", tpc);
      }
      const DenseInstr t = dense_[tslot];
      if (t.h == kBadSlotHandler) {
        pc_ = tpc;
        decode(read_mem_raw(tpc, 4));  // re-raises the word's decode error
        trap("undecodable instruction", tpc);
      }
      if constexpr (kCapture) *iw++ = tslot >> 2;
      ++executed;
      switch (static_cast<Op>(t.h)) {
        case Op::kBeq:
          pc = tpc + (regs_[t.b] == regs_[t.c] ? static_cast<std::uint32_t>(t.imm) : 4u);
          break;
        case Op::kBne:
          pc = tpc + (regs_[t.b] != regs_[t.c] ? static_cast<std::uint32_t>(t.imm) : 4u);
          break;
        case Op::kBlt:
          pc = tpc + (static_cast<std::int32_t>(regs_[t.b]) <
                              static_cast<std::int32_t>(regs_[t.c])
                          ? static_cast<std::uint32_t>(t.imm)
                          : 4u);
          break;
        case Op::kBge:
          pc = tpc + (static_cast<std::int32_t>(regs_[t.b]) >=
                              static_cast<std::int32_t>(regs_[t.c])
                          ? static_cast<std::uint32_t>(t.imm)
                          : 4u);
          break;
        case Op::kBltu:
          pc = tpc + (regs_[t.b] < regs_[t.c] ? static_cast<std::uint32_t>(t.imm) : 4u);
          break;
        case Op::kBgeu:
          pc = tpc + (regs_[t.b] >= regs_[t.c] ? static_cast<std::uint32_t>(t.imm) : 4u);
          break;
        case Op::kJ:
          pc = static_cast<std::uint32_t>(t.imm);
          break;
        case Op::kJal:
          regs_[kRa] = tpc + 4;
          pc = static_cast<std::uint32_t>(t.imm);
          break;
        case Op::kJr:
          pc = regs_[t.b];
          break;
        case Op::kJalr: {
          // Read the target before the link write, like the reference
          // (which caches rs before set()), so jalr rd, rd works.
          const std::uint32_t target = regs_[t.b];
          if (t.a != kZero) regs_[t.a] = tpc + 4;
          pc = target;
          break;
        }
        case Op::kHalt:
          result.halted = true;
          pc = tpc;  // the reference leaves pc_ on the halt instruction
          goto halted;
        default:
          fail("FastCpu: non-control terminator");
      }
    }
    continue;

  run_truncated:
    // A store patched the text segment: the rest of this superblock may no
    // longer exist. Roll back the fetch words emitted for the unexecuted
    // tail and re-enter the dispatcher at the next instruction.
    if constexpr (kCapture) iw -= n - i;
    executed += i;
    pc = (slot + i) * 4;
  }

halted:
  pc_ = pc;
  if constexpr (kCapture) {
    sink->iw_ = iw;
    sink->dw_ = dw;
  }
  result.instructions = executed;
  result.cycles = executed + daccesses;
  return result;
}

template RunResult FastCpu::run_impl<false>(std::uint64_t, PackedSink*);
template RunResult FastCpu::run_impl<true>(std::uint64_t, PackedSink*);

}  // namespace stcache
