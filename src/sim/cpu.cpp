#include "sim/cpu.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/error.hpp"

namespace stcache {

Cpu::Cpu(const Program& program, MemorySystem& memory, std::uint32_t mem_bytes)
    : memory_(&memory) {
  if (!std::has_single_bit(mem_bytes) || mem_bytes < (1u << 16)) {
    fail("Cpu: memory size must be a power of two >= 64 KB");
  }
  if (program.end_address() > mem_bytes) {
    fail("Cpu: program does not fit in " + std::to_string(mem_bytes) + " bytes");
  }
  mem_.assign(mem_bytes, 0);
  std::uint32_t text_end = 0;
  for (const Segment& s : program.segments) {
    std::copy(s.bytes.begin(), s.bytes.end(), mem_.begin() + s.base);
    // Everything below the data base counts as text (the assembler places
    // code at low addresses).
    if (s.base < kDefaultDataBase) {
      text_end = std::max(
          text_end, s.base + static_cast<std::uint32_t>(s.bytes.size()));
    }
  }
  text_end_ = text_end;
  decode_cache_.resize(text_end_ / 4 + 1);
  decode_ok_.assign(decode_cache_.size(), 0);
  for (std::uint32_t slot = 0; slot * 4 < text_end_; ++slot) {
    decode_slot(slot);
  }
  pc_ = program.entry;
  regs_[kSp] = mem_bytes - 16;
}

void Cpu::decode_slot(std::uint32_t slot) {
  try {
    decode_cache_[slot] = decode(read_mem(slot * 4, 4));
    decode_ok_[slot] = 1;
  } catch (const Error&) {
    // Not every low word is an instruction (interleaved data, or a store
    // just scribbled over code); the error is only the program's problem if
    // the word is actually fetched, and fetch_decoded re-raises it then.
    decode_ok_[slot] = 0;
  }
}

void Cpu::redecode_range(std::uint32_t addr, std::uint32_t bytes) {
  const std::uint32_t first = (addr & ~3u) / 4;
  const std::uint32_t last = std::min(addr + bytes - 1, text_end_ - 1) / 4;
  for (std::uint32_t slot = first; slot <= last; ++slot) decode_slot(slot);
}

std::uint32_t Cpu::reg(std::uint8_t r) const {
  if (r >= kNumRegs) fail("Cpu::reg: register out of range");
  return regs_[r];
}

void Cpu::set_reg(std::uint8_t r, std::uint32_t value) {
  if (r >= kNumRegs) fail("Cpu::set_reg: register out of range");
  if (r != kZero) regs_[r] = value;
}

std::uint8_t Cpu::mem_at(std::uint32_t addr) const {
  if (addr >= mem_.size()) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "memory access out of range: 0x%08x", addr);
    fail(buf);
  }
  return mem_[addr];
}

std::uint32_t Cpu::read_mem(std::uint32_t addr, std::uint32_t bytes) const {
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint32_t>(mem_at(addr + i)) << (8 * i);
  }
  return v;
}

void Cpu::write_mem(std::uint32_t addr, std::uint32_t bytes, std::uint32_t value) {
  for (std::uint32_t i = 0; i < bytes; ++i) {
    if (addr + i >= mem_.size()) trap("store out of range");
    mem_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  if (addr < text_end_) redecode_range(addr, bytes);
}

std::uint32_t Cpu::load_word(std::uint32_t addr) const { return read_mem(addr, 4); }

void Cpu::store_word(std::uint32_t addr, std::uint32_t value) {
  for (std::uint32_t i = 0; i < 4; ++i) {
    mem_.at(addr + i) = static_cast<std::uint8_t>(value >> (8 * i));
  }
  if (addr < text_end_) redecode_range(addr, 4);
}

const Instr& Cpu::fetch_decoded(std::uint32_t addr) {
  if (addr % 4 != 0) trap("unaligned instruction fetch");
  if (addr >= text_end_) trap("instruction fetch outside text segment");
  const std::uint32_t slot = addr / 4;
  if (!decode_ok_[slot]) {
    decode(read_mem(addr, 4));  // re-raises the word's decode error
    trap("undecodable instruction");
  }
  return decode_cache_[slot];
}

void Cpu::trap(const std::string& what) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, " (pc=0x%08x)", pc_);
  fail("Cpu trap: " + what + buf);
}

RunResult Cpu::run(std::uint64_t max_instructions) {
  RunResult result;
  while (result.instructions < max_instructions) {
    const Instr& in = fetch_decoded(pc_);
    result.cycles += memory_->ifetch(pc_);
    ++result.instructions;
    std::uint32_t next_pc = pc_ + 4;

    const std::uint32_t rs = regs_[in.rs];
    const std::uint32_t rt = regs_[in.rt];
    auto set = [&](std::uint8_t r, std::uint32_t v) {
      if (r != kZero) regs_[r] = v;
    };

    switch (in.op) {
      case Op::kAdd: set(in.rd, rs + rt); break;
      case Op::kSub: set(in.rd, rs - rt); break;
      case Op::kAnd: set(in.rd, rs & rt); break;
      case Op::kOr: set(in.rd, rs | rt); break;
      case Op::kXor: set(in.rd, rs ^ rt); break;
      case Op::kNor: set(in.rd, ~(rs | rt)); break;
      case Op::kSlt:
        set(in.rd, static_cast<std::int32_t>(rs) < static_cast<std::int32_t>(rt) ? 1 : 0);
        break;
      case Op::kSltu: set(in.rd, rs < rt ? 1 : 0); break;
      case Op::kSll: set(in.rd, rt << in.shamt); break;
      case Op::kSrl: set(in.rd, rt >> in.shamt); break;
      case Op::kSra:
        set(in.rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(rt) >> in.shamt));
        break;
      case Op::kSllv: set(in.rd, rt << (rs & 31)); break;
      case Op::kSrlv: set(in.rd, rt >> (rs & 31)); break;
      case Op::kSrav:
        set(in.rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(rt) >> (rs & 31)));
        break;
      case Op::kMul: set(in.rd, rs * rt); break;
      case Op::kMulhu:
        set(in.rd, static_cast<std::uint32_t>(
                       (static_cast<std::uint64_t>(rs) * rt) >> 32));
        break;
      case Op::kDiv:
        set(in.rd, rt == 0 ? 0
                           : static_cast<std::uint32_t>(
                                 static_cast<std::int32_t>(rs) /
                                 static_cast<std::int32_t>(rt)));
        break;
      case Op::kDivu: set(in.rd, rt == 0 ? 0 : rs / rt); break;
      case Op::kRem:
        set(in.rd, rt == 0 ? 0
                           : static_cast<std::uint32_t>(
                                 static_cast<std::int32_t>(rs) %
                                 static_cast<std::int32_t>(rt)));
        break;
      case Op::kRemu: set(in.rd, rt == 0 ? 0 : rs % rt); break;
      case Op::kJr: next_pc = rs; break;
      case Op::kJalr:
        set(in.rd, pc_ + 4);
        next_pc = rs;
        break;
      case Op::kHalt:
        result.halted = true;
        return result;

      case Op::kAddi: set(in.rt, rs + static_cast<std::uint32_t>(in.imm)); break;
      case Op::kSlti:
        set(in.rt, static_cast<std::int32_t>(rs) < in.imm ? 1 : 0);
        break;
      case Op::kSltiu:
        set(in.rt, rs < static_cast<std::uint32_t>(in.imm) ? 1 : 0);
        break;
      case Op::kAndi: set(in.rt, rs & static_cast<std::uint32_t>(in.imm)); break;
      case Op::kOri: set(in.rt, rs | static_cast<std::uint32_t>(in.imm)); break;
      case Op::kXori: set(in.rt, rs ^ static_cast<std::uint32_t>(in.imm)); break;
      case Op::kLui: set(in.rt, static_cast<std::uint32_t>(in.imm) << 16); break;

      case Op::kBeq:
        if (rs == rt) next_pc = pc_ + 4 + (static_cast<std::uint32_t>(in.imm) << 2);
        break;
      case Op::kBne:
        if (rs != rt) next_pc = pc_ + 4 + (static_cast<std::uint32_t>(in.imm) << 2);
        break;
      case Op::kBlt:
        if (static_cast<std::int32_t>(rs) < static_cast<std::int32_t>(rt)) {
          next_pc = pc_ + 4 + (static_cast<std::uint32_t>(in.imm) << 2);
        }
        break;
      case Op::kBge:
        if (static_cast<std::int32_t>(rs) >= static_cast<std::int32_t>(rt)) {
          next_pc = pc_ + 4 + (static_cast<std::uint32_t>(in.imm) << 2);
        }
        break;
      case Op::kBltu:
        if (rs < rt) next_pc = pc_ + 4 + (static_cast<std::uint32_t>(in.imm) << 2);
        break;
      case Op::kBgeu:
        if (rs >= rt) next_pc = pc_ + 4 + (static_cast<std::uint32_t>(in.imm) << 2);
        break;

      case Op::kLb:
      case Op::kLbu:
      case Op::kLh:
      case Op::kLhu:
      case Op::kLw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        const std::uint32_t bytes = access_bytes(in.op);
        if (addr % bytes != 0) trap("unaligned load");
        result.cycles += memory_->dread(addr, bytes);
        std::uint32_t v = read_mem(addr, bytes);
        if (in.op == Op::kLb) {
          v = static_cast<std::uint32_t>(static_cast<std::int32_t>(
              static_cast<std::int8_t>(v)));
        } else if (in.op == Op::kLh) {
          v = static_cast<std::uint32_t>(static_cast<std::int32_t>(
              static_cast<std::int16_t>(v)));
        }
        set(in.rt, v);
        break;
      }
      case Op::kSb:
      case Op::kSh:
      case Op::kSw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        const std::uint32_t bytes = access_bytes(in.op);
        if (addr % bytes != 0) trap("unaligned store");
        result.cycles += memory_->dwrite(addr, bytes);
        write_mem(addr, bytes, rt);
        break;
      }

      case Op::kJ: next_pc = in.target; break;
      case Op::kJal:
        set(kRa, pc_ + 4);
        next_pc = in.target;
        break;
    }
    pc_ = next_pc;
  }
  return result;  // budget exhausted, halted == false
}

}  // namespace stcache
