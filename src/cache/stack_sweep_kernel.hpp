// Private kernel template shared by the scalar and SIMD translation units
// of StackSweepSim (stack_sweep.cpp and stack_sweep_simd.cpp). Not part of
// the public API — include stack_sweep.hpp instead.
//
// The template is parameterized on the subline count (line size / 16 B)
// and on a SweepOps policy that implements the three hot primitives:
//
//   find()     the per-access slot probe: locate the accessed line in its
//              coarse group's pool segment (a linear id search),
//   victim()   the per-miss LRU scan: among the group entries resident in
//              slot k and mapping to the accessed set, count them and pick
//              the one minimizing max(last access, fill tick),
//   run_len()  the repeat-run scan: count how many upcoming packed words
//              are identical to the current one (sequential ifetch hits
//              the same 16 B block four times in a row).
//
// SweepOps<false> (below) is the portable scalar fallback; SweepOps<true>
// is defined only inside stack_sweep_simd.cpp, compiled with -mavx2, and
// maps the same primitives onto 8-lane vector compares over the padded
// group rows. Both produce identical results by construction: the policy
// only answers queries, every state update stays in the shared template.
//
// Pool layout: group segments of kStride entries (kCap = 20 logical
// entries padded to 24 so 8-lane loads never leave the row). Timestamp
// arrays are laid out for the victim scan's access pattern — fill ticks
// slot-major and last-access ticks offset-major, so the scan over a fixed
// (slot k, offset o) reads two contiguous 24-entry rows.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/fast_cache.hpp"
#include "cache/stack_sweep.hpp"
#include "util/error.hpp"

namespace stcache {

struct StackSweepSim::Impl {
  virtual ~Impl() = default;
  // Build the derived masks (spread_, fast path key) once active/pred_active
  // are settled; called by the constructor after slot activation.
  virtual void finalize() = 0;
  virtual void replay(std::span<const std::uint32_t> packed) = 0;

  std::uint32_t line_bytes = 16;
  std::uint32_t active = 0;       // slot bits maintained by the traversal
  std::uint32_t pred_active = 0;  // pred bits (MRU memos) maintained
  bool simd = false;              // which kernel flavor this is
  TimingParams timing{};

  std::uint64_t n = 0;       // records replayed
  std::uint64_t writes = 0;  // of which writes
  // Bin key = hit mask (bits 0..5) | first-probe bits (bits 6..8); one
  // increment per access, all per-configuration counters derive from it.
  std::array<std::uint64_t, 512> hist{};
  std::array<std::uint64_t, 6> wb_bytes{};  // eviction write-backs
};

namespace sweep_detail {

// Defined in stack_sweep_simd.cpp. simd_kernel_compiled() reports whether
// that TU was built with an AVX2 kernel; make_simd_kernel() instantiates
// one (nullptr when none was compiled in). Runtime CPU support is checked
// by the caller (stack_sweep.cpp), not here.
bool simd_kernel_compiled();
std::unique_ptr<StackSweepSim::Impl> make_simd_kernel(std::uint32_t line_bytes);

// The six content-distinct (num_sets, ways) pairs per line size; see the
// slot table in stack_sweep.hpp. Way-predicted slots carry a pred bit.
constexpr std::uint32_t kNumSlots = 6;
constexpr std::uint32_t kSlotSets[kNumSlots] = {128, 128, 128, 256, 256, 512};
constexpr std::uint32_t kSlotWays[kNumSlots] = {1, 2, 4, 1, 2, 1};
constexpr int kSlotPredBit[kNumSlots] = {-1, 0, 1, -1, 2, -1};

inline std::uint32_t slot_of(const CacheConfig& cfg) {
  switch (cfg.num_sets()) {
    case 128: return cfg.ways() == 1 ? 0u : cfg.ways() == 2 ? 1u : 2u;
    case 256: return cfg.ways() == 1 ? 3u : 4u;
    case 512: return 5u;
  }
  fail("StackSweepSim: no slot for configuration " + cfg.name());
}

// Result of the LRU victim scan over one group segment.
struct VictimScan {
  std::uint32_t found = 0;   // entries resident in slot k at set `ls`
  std::uint32_t victim = 0;  // index of the entry with the minimal stamp
};

template <bool SIMD>
struct SweepOps;

// Portable scalar primitives — the reference semantics the SIMD policy
// must reproduce exactly.
template <>
struct SweepOps<false> {
  static constexpr std::uint32_t kNotFound = 0xFFFF'FFFFu;

  // Index of `l` in lines[0..count), or kNotFound.
  static std::uint32_t find(const std::uint32_t* lines, std::uint32_t count,
                            std::uint32_t l) {
    for (std::uint32_t i = 0; i < count; ++i) {
      if (lines[i] == l) return i;
    }
    return kNotFound;
  }

  // Count the entries with res bit k set and (line & smask) == ls, and
  // return the first one minimizing max(last_row[i], fill_row[i]). Ticks
  // are distinct so the minimum is unique whenever found > 0.
  static VictimScan victim(const std::uint32_t* lines,
                           const std::uint8_t* res,
                           const std::uint32_t* last_row,
                           const std::uint32_t* fill_row, std::uint32_t count,
                           std::uint32_t k, std::uint32_t smask,
                           std::uint32_t ls) {
    VictimScan out;
    std::uint32_t best = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!(res[i] >> k & 1u) || (lines[i] & smask) != ls) continue;
      const std::uint32_t ts =
          last_row[i] > fill_row[i] ? last_row[i] : fill_row[i];
      if (out.found == 0 || ts < best) {
        best = ts;
        out.victim = i;
      }
      ++out.found;
    }
    return out;
  }

  // 8-bit mask of p[j] != p[j+1] for j = 0..7 (reads p[0..8]): the run
  // boundaries inside one replay window. The scalar kernel never calls
  // this (its replay loop is the historical per-record one); it exists so
  // the template compiles for both policies.
  static std::uint32_t neq_next8(const std::uint32_t* p) {
    std::uint32_t m = 0;
    for (unsigned j = 0; j < 8; ++j) {
      m |= (p[j] != p[j + 1] ? 1u : 0u) << j;
    }
    return m;
  }

  // Whether replay() should run the windowed segment loop (replay_bulk).
  // The scalar kernel keeps the per-record loop byte for byte.
  static constexpr bool kBulkRuns = false;
};

template <unsigned SUBL, bool SIMD>
struct Kernel final : StackSweepSim::Impl {
  using Ops = SweepOps<SIMD>;

  static constexpr std::uint32_t kLog = SUBL == 1 ? 0u : SUBL == 2 ? 1u : 2u;
  // Coarse groups: the 128-set mask at line granularity. Every conflict in
  // any slot stays inside one group, so pool entries are bucketed by it.
  static constexpr std::uint32_t kGroups = 128 / SUBL;
  static constexpr std::uint32_t kGroupMask = kGroups - 1;
  // Max lines co-resident per group across all six slots: 1+2+4 (128-set
  // slots) + 2+4 (256-set) + 4 (512-set) = 17, +1 mid-install.
  static constexpr std::uint32_t kCap = 20;
  // Entries per group segment, padded so 8-lane loads stay inside the row.
  static constexpr std::uint32_t kStride = 24;
  static constexpr std::uint32_t kEntries = kGroups * kStride;
  static constexpr std::uint32_t kNoBlock = 0xFFFF'FFFFu;  // > any 28-bit id

  // Line pool, SoA, bucketed in kStride-entry group segments. `last_`
  // ticks are slot-independent (a hit refreshes the accessed subline
  // everywhere) and offset-major: last_[o * kEntries + e]. `fill_` ticks
  // are per slot and slot-major: fill_[k * kEntries + e]. Dirty nibbles
  // stay per entry (bit 4*slot + offset).
  std::vector<std::uint32_t> line_ = std::vector<std::uint32_t>(kEntries);
  std::vector<std::uint8_t> res_ = std::vector<std::uint8_t>(kEntries);
  std::vector<std::uint32_t> dirty_ = std::vector<std::uint32_t>(kEntries);
  std::vector<std::uint32_t> fill_ =
      std::vector<std::uint32_t>(kNumSlots * kEntries);
  std::vector<std::uint32_t> last_ = std::vector<std::uint32_t>(SUBL * kEntries);
  std::array<std::uint8_t, kGroups> count_{};
  // Repeat fast path: last accessed block per group, and its pool index.
  std::array<std::uint32_t, kGroups> last_block_;
  std::array<std::uint8_t, kGroups> last_idx_{};
  // MRU memos for the pred slots, indexed by block-granularity set.
  std::array<std::uint32_t, 128> memo1_;  // slot 1: 4K_2W
  std::array<std::uint32_t, 128> memo2_;  // slot 2: 8K_4W
  std::array<std::uint32_t, 256> memo4_;  // slot 4: 8K_2W
  // spread_[mask] maps slot bit k to dirty-nibble bit 4k, so a write hit
  // marks the accessed subline dirty in every hitting slot with one OR.
  std::array<std::uint32_t, 64> spread_{};
  std::uint32_t tick_ = 0;
  std::uint32_t fast_key_ = 0;     // histogram key of a repeat access
  std::uint32_t fast_spread_ = 0;  // spread_[active]

  Kernel() {
    simd = SIMD;
    last_block_.fill(kNoBlock);
    memo1_.fill(kNoBlock);
    memo2_.fill(kNoBlock);
    memo4_.fill(kNoBlock);
  }

  void finalize() override {
    for (std::uint32_t m = 0; m < 64; ++m) {
      std::uint32_t s = 0;
      for (std::uint32_t k = 0; k < kNumSlots; ++k) {
        if (m >> k & 1u) s |= 1u << (4 * k);
      }
      spread_[m] = s;
    }
    fast_key_ = active | (pred_active << kNumSlots);
    fast_spread_ = spread_[active];
  }

  void replay(std::span<const std::uint32_t> packed) override {
    if (packed.size() > 0xFFFF'FFFFull - tick_) {
      fail("StackSweepSim: stream exceeds the 32-bit tick budget");
    }
    n += packed.size();
    if constexpr (Ops::kBulkRuns) {
      replay_bulk(packed);
      return;
    }
    const std::uint32_t* const p = packed.data();
    const std::size_t size = packed.size();
    for (std::size_t i = 0; i < size; ++i) {
      const std::uint32_t rec = p[i];
      const std::uint32_t block = rec & FastCacheSim::kPackedBlockMask;
      const std::uint32_t is_write = rec >> 31;
      ++tick_;
      writes += is_write;
      const std::uint32_t g = (block >> kLog) & kGroupMask;
      if (last_block_[g] == block) {
        // Repeat access: the previous access to this group installed or
        // refreshed this very block, so it is resident in every active
        // slot, is the MRU of every predicted set, and no memo moved.
        const std::uint32_t e = g * kStride + last_idx_[g];
        ++hist[fast_key_];
        last_[(block & (SUBL - 1)) * kEntries + e] = tick_;
        if (is_write) dirty_[e] |= fast_spread_ << (block & (SUBL - 1));
        continue;
      }
      slow(block, g, is_write != 0);
    }
  }

  // The restructured loop the SIMD policy's primitives enable. The stream
  // is consumed in fixed windows of 8 records; per window ONE 8-lane
  // compare of p[i..i+7] against p[i+1..i+8] yields a boundary mask whose
  // set bits mark where the packed word changes. The window then splits
  // into segments of IDENTICAL words (sequential ifetch repeats the same
  // 16 B block several times — one block is four instructions — so ~2/3 of
  // ifetch records sit in such segments), and each segment collapses into
  // one head classification plus one bulk update: same histogram key, same
  // dirty OR, and a last-access tick the next record would overwrite.
  //
  // Why windows instead of scanning each run to its end: a run-at-a-time
  // loop advances `i` by a value computed from a just-loaded compare —
  // a load->mask->advance serial chain per run that costs more than the
  // short runs it skips. The fixed stride advances `i` by a constant, so
  // the next window's loads and boundary mask pipeline across iterations,
  // and the segment walk iterates on a register mask (tzcnt/clear-lowest).
  // A run crossing a window boundary is simply processed as two segments —
  // the continuation's head re-classifies as a repeat, and split bulk
  // updates sum to the same histogram (exactness is per-record sums).
  //
  // The accumulators (tick, writes, fast-key hits) live in locals: the
  // per-record ++hist[fast_key_] of the scalar loop is a loop-carried
  // store/reload on one address, and deferring it to one write-back per
  // replay call removes that chain. tick_ is flushed before every slow()
  // call, which reads it.
  void replay_bulk(std::span<const std::uint32_t> packed) {
    const std::uint32_t* const p = packed.data();
    const std::size_t size = packed.size();
    std::uint32_t tick = tick_;
    std::uint64_t wr = 0;         // writes seen this call
    std::uint64_t fast_hits = 0;  // deferred hist[fast_key_] increments
    // One segment of `len` identical records `rec`: classify the head,
    // bulk-apply the repeats.
    const auto segment = [&](std::uint32_t rec, std::uint32_t len) {
      const std::uint32_t block = rec & FastCacheSim::kPackedBlockMask;
      const std::uint32_t is_write = rec >> 31;
      const std::uint32_t g = (block >> kLog) & kGroupMask;
      const std::uint32_t e = g * kStride + last_idx_[g];
      if (last_block_[g] == block) {
        tick += len;
        wr += static_cast<std::uint64_t>(is_write) * len;
        fast_hits += len;
        last_[(block & (SUBL - 1)) * kEntries + e] = tick;
        dirty_[e] |= (0u - is_write) & (fast_spread_ << (block & (SUBL - 1)));
        return;
      }
      if constexpr (SUBL > 1) {
        // Same-line step: sequential code walks block -> block+1 of ONE
        // line, so the group's previous access often touched this line at
        // a different block (a quarter of all records at 64 B lines).
        // When that line is resident in EVERY active slot there is
        // nothing to probe and nothing to evict; only the first-probe
        // memo bits need the full read-then-refresh dance. res_ bits
        // never leave the active mask, so equality means all-resident.
        const std::uint32_t l = block >> kLog;
        if (line_[e] == l && res_[e] == active) {
          const std::uint32_t o = block & (SUBL - 1);
          std::uint32_t pbits = 0;
          if ((pred_active & 1u) && memo1_[block & 127u] == l) pbits |= 1u;
          if ((pred_active & 2u) && memo2_[block & 127u] == l) pbits |= 2u;
          if ((pred_active & 4u) && memo4_[block & 255u] == l) pbits |= 4u;
          ++hist[active | (pbits << kNumSlots)];
          tick += len;
          wr += static_cast<std::uint64_t>(is_write) * len;
          fast_hits += len - 1;
          last_[o * kEntries + e] = tick;
          dirty_[e] |= (0u - is_write) & (fast_spread_ << o);
          // A hit refreshes the accessed subline's set in every predicted
          // slot (all hold the line here). The head's repeats then see
          // every first-probe bit set, as fast_key_ assumes.
          if (pred_active & 1u) memo1_[block & 127u] = l;
          if (pred_active & 2u) memo2_[block & 127u] = l;
          if (pred_active & 4u) memo4_[block & 255u] = l;
          last_block_[g] = block;
          return;
        }
      }
      ++tick;
      wr += is_write;
      tick_ = tick;
      slow(block, g, is_write != 0);
      if (len > 1) {
        tick += len - 1;
        wr += static_cast<std::uint64_t>(is_write) * (len - 1);
        fast_hits += len - 1;
        const std::uint32_t e2 = g * kStride + last_idx_[g];
        last_[(block & (SUBL - 1)) * kEntries + e2] = tick;
        dirty_[e2] |= (0u - is_write) & (fast_spread_ << (block & (SUBL - 1)));
      }
    };
    std::size_t i = 0;
    for (; i + 9 <= size; i += 8) {
      std::uint32_t mm = Ops::neq_next8(p + i);
      std::uint32_t start = 0;
      while (mm != 0) {
        const std::uint32_t j =
            static_cast<std::uint32_t>(std::countr_zero(mm));
        mm &= mm - 1;
        segment(p[i + start], j - start + 1);
        start = j + 1;
      }
      if (start < 8) segment(p[i + start], 8 - start);
    }
    for (; i < size; ++i) segment(p[i], 1);
    tick_ = tick;
    writes += wr;
    hist[fast_key_] += fast_hits;
  }

  void slow(std::uint32_t block, std::uint32_t g, bool is_write) {
    const std::uint32_t l = block >> kLog;
    const std::uint32_t o = block & (SUBL - 1);
    const std::uint32_t* gl = &line_[g * kStride];
    std::uint32_t idx = Ops::find(gl, count_[g], l);
    const std::uint32_t r = idx != Ops::kNotFound ? res_[g * kStride + idx] : 0u;

    // First-probe bits before any state moves (prediction reads the
    // pre-access MRU, exactly like the reference).
    std::uint32_t pbits = 0;
    if (r != 0) {
      if ((pred_active & 1u) && (r >> 1 & 1u) && memo1_[block & 127u] == l)
        pbits |= 1u;
      if ((pred_active & 2u) && (r >> 2 & 1u) && memo2_[block & 127u] == l)
        pbits |= 2u;
      if ((pred_active & 4u) && (r >> 4 & 1u) && memo4_[block & 255u] == l)
        pbits |= 4u;
    }
    ++hist[r | (pbits << kNumSlots)];

    std::uint32_t miss = active & ~r;
    for (std::uint32_t m = miss; m != 0; m &= m - 1) {
      const std::uint32_t k = static_cast<std::uint32_t>(std::countr_zero(m));
      // LRU victim at the accessed set: the resident line minimizing
      // max(last access to the accessed offset, this slot's fill tick) —
      // the slot timestamp the reference stores at the probed row. Ticks
      // are distinct, so there are no ties to break.
      const std::uint32_t smask = (kSlotSets[k] >> kLog) - 1u;
      const std::uint32_t ls = l & smask;
      const VictimScan scan =
          Ops::victim(gl, &res_[g * kStride], &last_[o * kEntries + g * kStride],
                      &fill_[k * kEntries + g * kStride], count_[g], k, smask, ls);
      if (scan.found >= kSlotWays[k]) {
        const std::uint32_t e = g * kStride + scan.victim;
        wb_bytes[k] += kPhysicalLineBytes *
                       std::popcount((dirty_[e] >> (4 * k)) & 0xFu);
        res_[e] &= static_cast<std::uint8_t>(~(1u << k));
        dirty_[e] &= ~(0xFu << (4 * k));
        if (res_[e] == 0) free_entry(g, scan.victim);
      }
    }

    std::uint32_t e;
    if (miss != 0) {
      // Evictions may have compacted the pool; locate or allocate the
      // accessed entry afresh, then install into every missing slot.
      idx = Ops::find(gl, count_[g], l);
      if (idx == Ops::kNotFound) {
        idx = count_[g]++;
        if (idx >= kCap) fail("StackSweepSim: line pool overflow");
        e = g * kStride + idx;
        line_[e] = l;
        res_[e] = 0;
        dirty_[e] = 0;
        // Stale last_/fill_ ticks from a previous tenant are harmless:
        // they are all below the fill tick installed next, and
        // max(last, fill) screens them out.
      } else {
        e = g * kStride + idx;
      }
      for (std::uint32_t m = miss; m != 0; m &= m - 1) {
        const std::uint32_t k = static_cast<std::uint32_t>(std::countr_zero(m));
        res_[e] |= static_cast<std::uint8_t>(1u << k);
        fill_[k * kEntries + e] = tick_;
        dirty_[e] = (dirty_[e] & ~(0xFu << (4 * k))) |
                    (static_cast<std::uint32_t>(is_write) << (4 * k + o));
        // A fill touches every subline's set: the new line becomes the MRU
        // of all of them in this slot.
        const int pb = kSlotPredBit[k];
        if (pb >= 0 && (pred_active >> pb & 1u)) {
          const std::uint32_t bmask = kSlotSets[k] - 1u;
          for (std::uint32_t j = 0; j < SUBL; ++j) {
            memo_for(pb)[((l << kLog) + j) & bmask] = l;
          }
        }
      }
    } else {
      e = g * kStride + idx;
    }

    if (is_write && r != 0) dirty_[e] |= spread_[r] << o;
    last_[o * kEntries + e] = tick_;
    // A hit refreshes only the accessed subline's set in the memo.
    if ((r >> 1 & 1u) && (pred_active & 1u)) memo1_[block & 127u] = l;
    if ((r >> 2 & 1u) && (pred_active & 2u)) memo2_[block & 127u] = l;
    if ((r >> 4 & 1u) && (pred_active & 4u)) memo4_[block & 255u] = l;
    last_block_[g] = block;
    last_idx_[g] = static_cast<std::uint8_t>(idx);
  }

  std::uint32_t* memo_for(int pred_bit) {
    return pred_bit == 0 ? memo1_.data()
                         : pred_bit == 1 ? memo2_.data() : memo4_.data();
  }

  void free_entry(std::uint32_t g, std::uint32_t i) {
    const std::uint32_t tail = --count_[g];
    if (i == tail) return;
    const std::uint32_t dst = g * kStride + i;
    const std::uint32_t src = g * kStride + tail;
    line_[dst] = line_[src];
    res_[dst] = res_[src];
    dirty_[dst] = dirty_[src];
    for (std::uint32_t k = 0; k < kNumSlots; ++k) {
      fill_[k * kEntries + dst] = fill_[k * kEntries + src];
    }
    for (std::uint32_t j = 0; j < SUBL; ++j) {
      last_[j * kEntries + dst] = last_[j * kEntries + src];
    }
  }
};

}  // namespace sweep_detail
}  // namespace stcache
