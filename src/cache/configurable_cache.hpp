// The paper's highly configurable cache (Zhang/Vahid ISCA'03 mechanism,
// driven by the DATE'04 self-tuning heuristic).
//
// Physical organization: four 2 KB banks of 128 rows x 16 B. A logical
// configuration (CacheConfig) maps onto this storage as follows, for a
// 16 B-granular block number b (b = addr >> 4):
//
//   index  = b mod num_sets            (7..9 bits)
//   row    = index mod 128             (row within every bank)
//   group  = index / 128               (which bank of a concatenated way)
//   way w  -> bank  w * banks_per_way + group
//
// Key properties this mapping gives us (all verified by tests):
//  * At fixed size, the candidate banks of a block are NESTED across
//    associativities: the 1-way candidate is one of the 2-way candidates,
//    which are among the 4-way candidates. Increasing associativity
//    therefore never turns a present block into an unreachable one
//    (Figure 5(a) of the paper).
//  * The full block address is stored per physical line ("always check the
//    full tag"), so a line left behind by a previous configuration can
//    never produce a false hit: it is either found by an exact match or
//    ignored.
//  * Changing line size changes only the fill granularity (line
//    concatenation over 16 B physical lines), never the mapping, so it is
//    trivially flush-free.
//  * Increasing cache size can strand lines whose new index selects a
//    different bank. Clean stranded lines are harmless (full tag). Dirty
//    stranded lines must be written back for coherence; the default
//    reconfiguration policy does exactly that and reports the cost, which
//    the flush-cost experiment shows is orders of magnitude below the cost
//    of the descending-size search order the paper warns against.
//
// Way prediction: MRU-based first-probe of one way (Powell et al., cited by
// the paper). A correct prediction accesses a single way; a misprediction
// costs one extra cycle and a full-set probe.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cache/config.hpp"
#include "cache/stats.hpp"

namespace stcache {

// Store handling. The platform's M*CORE ancestor made this configurable;
// write-back is the paper's (and our) default. Write-through with
// no-write-allocate keeps every line clean, which makes every
// reconfiguration free — at the price of per-store off-chip traffic that
// the energy model charges (see the write-policy ablation bench).
enum class WritePolicy : std::uint8_t { kWriteBack, kWriteThrough };

enum class ReconfigPolicy {
  // Invalidate lines that the new configuration cannot reach, writing back
  // the dirty ones (guarantees coherence; zero-cost for associativity and
  // line-size changes, cheap for size increases, full shutdown-bank
  // write-back for size decreases).
  kWritebackUnreachableDirty,
  // Only handle power gating (banks switched off lose contents, banks
  // switched on come up invalidated); leave reachable-but-stale dirty lines
  // alone. This is the paper's idealized "no write back needed when
  // growing" mode; it is NOT coherent for data caches and exists so the
  // experiments can quantify the difference.
  kPowerGatingOnly,
};

class ConfigurableCache {
 public:
  struct AccessResult {
    bool hit = false;
    bool predicted_first_hit = false;  // prediction on and first probe hit
    std::uint32_t cycles = 0;
  };

  // `victim_entries`: size of the optional fully associative victim buffer
  // (0 = absent). The buffer holds 16 B physical lines evicted from the
  // main array; a main-array miss that hits the buffer swaps lines on chip
  // instead of going to memory (Jouppi-style; the mechanism this research
  // group studies as an alternative to associativity for conflict misses).
  // Being fully associative with full tags, the buffer is untouched by
  // reconfiguration — it keeps working across every configuration change.
  explicit ConfigurableCache(CacheConfig config, TimingParams timing = {},
                             WritePolicy write_policy = WritePolicy::kWriteBack,
                             std::uint32_t victim_entries = 0);

  std::uint32_t victim_entries() const {
    return static_cast<std::uint32_t>(victim_.size());
  }

  // Perform one access; addr is a byte address, `bytes` the access width
  // (used by write-through stores to account forwarded traffic).
  AccessResult access(std::uint32_t addr, bool is_write,
                      std::uint32_t bytes = 4);

  WritePolicy write_policy() const { return write_policy_; }

  // Switch to a new configuration WITHOUT flushing. Returns the number of
  // dirty 16 B lines written back (power-gated banks + unreachable lines,
  // per the policy). Contents that remain reachable keep serving hits.
  std::uint64_t reconfigure(const CacheConfig& next,
                            ReconfigPolicy policy = ReconfigPolicy::kWritebackUnreachableDirty);

  // Write back all dirty lines and invalidate everything (the expensive
  // operation the heuristic is designed to avoid). Returns dirty lines
  // written back.
  std::uint64_t flush();

  const CacheConfig& config() const { return config_; }
  const TimingParams& timing() const { return timing_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  // --- introspection (tests & experiments) --------------------------------
  // Would an access to addr hit under the current configuration?
  bool probe(std::uint32_t addr) const;
  // Is the 16 B block present anywhere in powered storage, reachable or not?
  bool stored_anywhere(std::uint32_t addr) const;
  // Dirty lines the current configuration cannot reach (coherence hazards
  // under kPowerGatingOnly).
  std::uint64_t dirty_unreachable_lines() const;
  // Number of valid lines in powered banks.
  std::uint64_t valid_lines() const;

 private:
  struct Line {
    std::uint32_t block = 0;   // full block address (addr >> 4): the full tag
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  struct Location {
    std::uint32_t bank;
    std::uint32_t row;
  };

  Line& line_at(Location loc) { return banks_[loc.bank][loc.row]; }
  const Line& line_at(Location loc) const { return banks_[loc.bank][loc.row]; }

  // Candidate location of `block` in logical way `way` under `cfg`.
  static Location candidate(const CacheConfig& cfg, std::uint32_t block,
                            std::uint32_t way);
  // Is the line at `loc` (holding `block`) reachable under `cfg`?
  static bool reachable(const CacheConfig& cfg, std::uint32_t block,
                        Location loc);

  std::uint64_t handle_power_gating(const CacheConfig& next);

  // Probe the victim buffer for `block`; on hit, remove and return its
  // contents via `out` (swap-out happens at the call site).
  bool victim_take(std::uint32_t block, Line* out);
  // Insert a line displaced from the main array into the victim buffer,
  // evicting (and write-back-accounting) the LRU entry if full.
  void victim_insert(const Line& line);

  CacheConfig config_;
  TimingParams timing_;
  WritePolicy write_policy_ = WritePolicy::kWriteBack;
  CacheStats stats_;
  std::array<std::vector<Line>, kNumBanks> banks_;
  std::array<bool, kNumBanks> bank_powered_{};
  std::vector<Line> victim_;  // fully associative, LRU by timestamp
  std::uint64_t tick_ = 0;
};

}  // namespace stcache
