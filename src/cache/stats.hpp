// Event counters shared by all cache models.
//
// These are exactly the quantities Equation 1 of the paper consumes: total
// accesses, misses, the off-chip traffic they induce (fills, write-backs),
// way-prediction outcomes, and the cycle count (for static energy and for
// the stall-energy term).
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace stcache {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t read_accesses = 0;
  std::uint64_t write_accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  // Off-chip traffic, in bytes.
  std::uint64_t fill_bytes = 0;        // bytes fetched on misses
  std::uint64_t writeback_bytes = 0;   // dirty bytes evicted during operation
  std::uint64_t reconfig_writeback_bytes = 0;  // dirty bytes flushed by reconfiguration
  // Write-through mode only: store bytes forwarded to memory, and store
  // misses that bypassed the cache (no-write-allocate).
  std::uint64_t write_through_bytes = 0;
  std::uint64_t wt_store_misses = 0;

  // Victim-buffer extension: probes issued on main-cache misses, and the
  // probes that hit (a victim hit swaps lines on chip; it is NOT counted
  // in `misses`, which tracks accesses that went off chip).
  std::uint64_t victim_probes = 0;
  std::uint64_t victim_hits = 0;

  // Way-prediction bookkeeping (zero when prediction is off).
  std::uint64_t pred_accesses = 0;     // accesses issued with prediction on
  std::uint64_t pred_first_hits = 0;   // hit in the predicted way
  std::uint64_t pred_mispredicts = 0;  // hit, but in a non-predicted way

  // Total cycles spent by the processor on these accesses, including miss
  // stalls and mispredict penalty cycles.
  std::uint64_t cycles = 0;
  // The subset of `cycles` during which the processor was stalled waiting
  // on the memory system (miss stalls + mispredict penalties); this is what
  // the E_uP_stall term of Equation 1 charges.
  std::uint64_t stall_cycles = 0;

  // Exact counter equality; the sweep tests use it to assert the parallel
  // path reproduces the serial reference bit-for-bit.
  friend bool operator==(const CacheStats&, const CacheStats&) = default;

  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) / static_cast<double>(accesses);
  }

  // Fraction of prediction-on accesses that hit in the predicted way
  // (the paper quotes ~90% for I$ and ~70% for D$).
  double prediction_accuracy() const {
    return pred_accesses == 0
               ? 0.0
               : static_cast<double>(pred_first_hits) /
                     static_cast<double>(pred_accesses);
  }

  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    read_accesses += o.read_accesses;
    write_accesses += o.write_accesses;
    hits += o.hits;
    misses += o.misses;
    fill_bytes += o.fill_bytes;
    writeback_bytes += o.writeback_bytes;
    reconfig_writeback_bytes += o.reconfig_writeback_bytes;
    write_through_bytes += o.write_through_bytes;
    wt_store_misses += o.wt_store_misses;
    victim_probes += o.victim_probes;
    victim_hits += o.victim_hits;
    pred_accesses += o.pred_accesses;
    pred_first_hits += o.pred_first_hits;
    pred_mispredicts += o.pred_mispredicts;
    cycles += o.cycles;
    stall_cycles += o.stall_cycles;
    return *this;
  }

  // Counter difference (for interval-based tuning): every field of *this
  // must be >= the corresponding field of `earlier`.
  CacheStats operator-(const CacheStats& earlier) const {
    auto sub = [](std::uint64_t a, std::uint64_t b) {
      if (a < b) fail("CacheStats: negative counter delta");
      return a - b;
    };
    CacheStats d;
    d.accesses = sub(accesses, earlier.accesses);
    d.read_accesses = sub(read_accesses, earlier.read_accesses);
    d.write_accesses = sub(write_accesses, earlier.write_accesses);
    d.hits = sub(hits, earlier.hits);
    d.misses = sub(misses, earlier.misses);
    d.fill_bytes = sub(fill_bytes, earlier.fill_bytes);
    d.writeback_bytes = sub(writeback_bytes, earlier.writeback_bytes);
    d.reconfig_writeback_bytes =
        sub(reconfig_writeback_bytes, earlier.reconfig_writeback_bytes);
    d.write_through_bytes = sub(write_through_bytes, earlier.write_through_bytes);
    d.wt_store_misses = sub(wt_store_misses, earlier.wt_store_misses);
    d.victim_probes = sub(victim_probes, earlier.victim_probes);
    d.victim_hits = sub(victim_hits, earlier.victim_hits);
    d.pred_accesses = sub(pred_accesses, earlier.pred_accesses);
    d.pred_first_hits = sub(pred_first_hits, earlier.pred_first_hits);
    d.pred_mispredicts = sub(pred_mispredicts, earlier.pred_mispredicts);
    d.cycles = sub(cycles, earlier.cycles);
    d.stall_cycles = sub(stall_cycles, earlier.stall_cycles);
    return d;
  }
};

// Timing model of the memory system, in processor cycles.
struct TimingParams {
  std::uint32_t hit_cycles = 1;          // cache hit latency
  std::uint32_t mispredict_penalty = 1;  // extra cycle on way mispredict
  std::uint32_t victim_hit_penalty = 2;  // swap-in latency on a victim hit
  std::uint32_t mem_latency = 20;        // cycles to the first 16 B beat
  std::uint32_t cycles_per_beat = 8;     // per 16 B transferred (16-bit bus)

  std::uint32_t miss_stall_cycles(std::uint32_t line_bytes) const {
    std::uint32_t beats = (line_bytes + 15u) / 16u;
    return mem_latency + beats * cycles_per_beat;
  }
};

}  // namespace stcache
