// Generic set-associative cache model.
//
// Used where the paper needs a cache outside the 27-configuration platform:
// the Figure 2 motivation sweep (1 KB .. 1 MB) and the second-level cache of
// the Section 3.4 multi-level extension. Write-back, write-allocate, true
// LRU replacement.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/stats.hpp"

namespace stcache {

struct CacheGeometry {
  std::uint32_t size_bytes = 0;
  std::uint32_t assoc = 1;
  std::uint32_t line_bytes = 32;

  std::uint32_t num_sets() const { return size_bytes / (assoc * line_bytes); }
  bool valid() const;

  friend bool operator==(const CacheGeometry&, const CacheGeometry&) = default;
};

class CacheModel {
 public:
  struct AccessResult {
    bool hit = false;
    std::uint32_t cycles = 0;
  };

  explicit CacheModel(CacheGeometry geometry, TimingParams timing = {});

  AccessResult access(std::uint32_t addr, bool is_write);

  // Non-mutating: would this address hit right now?
  bool probe(std::uint32_t addr) const;

  // Write back every dirty line and invalidate everything. Returns the
  // number of dirty lines written back (also counted in stats).
  std::uint64_t flush();

  const CacheGeometry& geometry() const { return geometry_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    std::uint32_t block = 0;  // addr >> log2(line_bytes)
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint32_t block_of(std::uint32_t addr) const { return addr >> line_shift_; }
  std::uint32_t set_of(std::uint32_t block) const { return block & set_mask_; }

  CacheGeometry geometry_;
  TimingParams timing_;
  CacheStats stats_;
  std::vector<Line> lines_;  // [set * assoc + way]
  std::uint64_t tick_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint32_t set_mask_ = 0;
};

}  // namespace stcache
