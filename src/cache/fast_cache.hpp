// Throughput-oriented replay twin of ConfigurableCache.
//
// ConfigurableCache (configurable_cache.hpp) is the behavioral reference:
// per access it recomputes the candidate() bank/row mapping for every way,
// scans the set once for way prediction and again for the hit probe, and
// chases Line structs through per-bank std::vectors. That is the right
// shape for a model that must also reconfigure mid-stream, but every
// full-space experiment replays *cold caches under a fixed configuration*,
// where all of that work is loop-invariant. FastCacheSim specializes for
// exactly that case:
//
//  * SoA line store: one contiguous block[] / last_use[] pair plus packed
//    valid/dirty bitmaps, sized to the full 4-bank array but indexed only
//    over the powered banks. A candidate slot is
//        slot = way * way_stride + (block & set_mask)
//    because row + 128*group == index (see candidate() in the reference),
//    so the per-way mapping collapses to one multiply-add on cached
//    constants.
//  * Per-configuration precomputation: set mask, way stride, subline count
//    and the miss stall are computed once in the constructor, never per
//    access.
//  * Compile-time specialization: the access loop is instantiated over
//    (ways in {1,2,4}, way_prediction, victim buffer, write policy) and
//    dispatched once per replay, so the per-record path has no
//    configuration branches.
//  * MRU-way memo: predict_way() in the reference rescans the set to find
//    the MRU valid way. Under a fixed configuration a main-array line,
//    once valid, stays valid, and each set sees at most one last_use
//    update per access (distinct ticks), so the MRU way is simply the way
//    of the last update — a one-byte memo per set replaces the scan.
//
// The engine is equivalence-tested against the reference: CacheStats must
// be bit-identical for all 27 configurations, both write policies, victim
// buffer on/off (tests/replay_equivalence_test.cpp). It deliberately does
// NOT support reconfigure()/flush() or warm-state replay; use the
// reference model for tuning-controller style interval simulation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "cache/config.hpp"
#include "cache/configurable_cache.hpp"
#include "cache/stats.hpp"

namespace stcache {

class FastCacheSim {
 public:
  // Packed replay record: bit 31 = write, bits 30..0 = 16 B block number
  // (byte address >> 4; 28 significant bits). The packing is done once per
  // stream (trace/replay.cpp) and shared by every cache in a bank sweep.
  static constexpr std::uint32_t kPackedWriteBit = 0x8000'0000u;
  static constexpr std::uint32_t kPackedBlockMask = 0x7FFF'FFFFu;

  explicit FastCacheSim(const CacheConfig& config, TimingParams timing = {},
                        WritePolicy write_policy = WritePolicy::kWriteBack,
                        std::uint32_t victim_entries = 0);

  // Replay a packed stream (state and stats accumulate across calls).
  // Dispatches once to the (ways, prediction, victim, write-policy)
  // specialization matching this configuration.
  void replay(std::span<const std::uint32_t> packed);

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

 private:
  static constexpr std::uint32_t kSlots = kNumBanks * kRowsPerBank;  // 512
  static constexpr std::uint32_t kMaxSets = 512;  // 8 KB direct-mapped
  static constexpr std::uint32_t kMaxVictimEntries = 64;
  // Sentinel stored in block_[] for invalid slots: real block numbers are
  // 28-bit (addr >> 4), so the probe needs no separate valid bitmap — a
  // single load+compare per way decides hit AND validity.
  static constexpr std::uint32_t kInvalidBlock = 0xFFFF'FFFFu;

  template <unsigned W, bool PRED, bool VICT, bool WT>
  void run(std::span<const std::uint32_t> packed);
  // Cold path (victim-buffer swap or miss fill); returns the stall cycles
  // it charged, which run() folds into cycles/stall_cycles.
  template <unsigned W, bool PRED, bool VICT, bool WT>
  std::uint32_t miss_path(std::uint32_t block, std::uint32_t set,
                          const std::uint32_t* slots, bool is_write);
  // Reference victim choice on the probed slots: first invalid way, else
  // LRU (earliest way wins ties, which cannot arise under distinct ticks).
  template <unsigned W>
  std::uint32_t pick_victim_way(const std::uint32_t* slots) const;
  // Retire the main-array line at `slot` into the victim buffer
  // (victim_insert semantics of the reference model).
  void victim_insert_slot(std::uint32_t slot);

  bool slot_valid(std::uint32_t i) const { return block_[i] != kInvalidBlock; }
  bool dirty_bit(std::uint32_t i) const {
    return (dirty_[i >> 6] >> (i & 63u)) & 1u;
  }
  void set_dirty(std::uint32_t i, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (i & 63u);
    if (v) dirty_[i >> 6] |= m;
    else dirty_[i >> 6] &= ~m;
  }

  // --- SoA line store (powered banks only are ever indexed) ---------------
  std::array<std::uint32_t, kSlots> block_{};  // kInvalidBlock when invalid
  std::array<std::uint64_t, kSlots> last_use_{};
  std::array<std::uint64_t, kSlots / 64> dirty_{};
  std::array<std::uint8_t, kMaxSets> mru_way_{};  // per-set MRU memo

  // --- victim buffer (SoA, <= 64 entries) ---------------------------------
  std::array<std::uint32_t, kMaxVictimEntries> vblock_{};
  std::array<std::uint64_t, kMaxVictimEntries> vlast_{};
  std::uint64_t vvalid_ = 0;
  std::uint64_t vdirty_ = 0;
  std::uint32_t victim_n_ = 0;

  // --- precomputed per-configuration constants ----------------------------
  std::uint32_t set_mask_ = 0;    // num_sets - 1
  std::uint32_t way_stride_ = 0;  // banks_per_way * kRowsPerBank
  std::uint32_t sublines_ = 1;    // line_bytes / 16
  std::uint32_t miss_stall_ = 0;  // timing.miss_stall_cycles(line_bytes)

  CacheConfig config_;
  TimingParams timing_;
  WritePolicy write_policy_ = WritePolicy::kWriteBack;
  CacheStats stats_;
  std::uint64_t tick_ = 0;
};

}  // namespace stcache
