// AVX2 flavor of the StackSweepSim kernel. This is the only translation
// unit compiled with -mavx2 (CMake adds the flag plus STCACHE_SIMD_AVX2
// only when the toolchain check passes), so AVX2 intrinsics must not leak
// into any header it includes. Runtime CPU dispatch lives in
// stack_sweep.cpp; nothing here executes unless the CPU reported AVX2.
//
// The SweepOps<true> policy maps the kernel's three hot scans onto 8-lane
// vector compares over the padded 24-entry group rows (kStride in
// stack_sweep_kernel.hpp guarantees every 8-lane load stays inside the
// row, and every lane past `count` is masked off before use):
//
//   find     splat the probed line id, compare up to 3 vectors of the
//            group's line-id row, movemask, mask to `count`, tzcnt.
//   victim   build a 24-bit validity mask (residency bit k set AND line
//            maps to the accessed set) with vector compares, compute
//            max(last, fill) stamps 8 lanes at a time into a stack array,
//            then pick the first strict minimum over the mask's set bits —
//            a loop of `found` iterations (almost always <= 4).
//   neq_next8  one 8-lane compare of p[i..i+7] against p[i+1..i+8] — the
//            run-boundary mask of a whole replay window. This powers the
//            windowed segment loop (Ops::kBulkRuns) in replay_bulk():
//            sequential code hits the same 16 B block several times in a
//            row, and each run collapses into one histogram addition.
//
// Equivalence: the policy only answers the same queries the scalar policy
// answers (same first-match, same first-strict-min over distinct ticks),
// and the bulk-run collapse is an exact algebraic rewrite of the repeat
// fast path — so SIMD and scalar kernels produce bit-identical CacheStats.
// tests/stack_sweep_test.cpp and tests/sharded_sweep_test.cpp enforce this
// differentially on every workload.
#include "cache/stack_sweep_kernel.hpp"

#if defined(STCACHE_SIMD_AVX2)

#include <immintrin.h>

namespace stcache {
namespace sweep_detail {

namespace {

// 8-bit lane mask of 32-bit equality.
inline std::uint32_t eq_mask(__m256i a, __m256i b) {
  return static_cast<std::uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b))));
}

inline __m256i load8(const std::uint32_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

// Zero-extend 8 residency bytes to 32-bit lanes.
inline __m256i load8_u8(const std::uint8_t* p) {
  return _mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

}  // namespace

template <>
struct SweepOps<true> {
  static constexpr std::uint32_t kNotFound = 0xFFFF'FFFFu;
  static constexpr bool kBulkRuns = true;

  static std::uint32_t find(const std::uint32_t* lines, std::uint32_t count,
                            std::uint32_t l) {
    // Small groups (the common case) early-exit faster scalar than any
    // fixed-width compare; the vector probe pays off past one lane group.
    if (count <= 8) {
      for (std::uint32_t i = 0; i < count; ++i) {
        if (lines[i] == l) return i;
      }
      return kNotFound;
    }
    const __m256i needle = _mm256_set1_epi32(static_cast<int>(l));
    std::uint32_t mask = eq_mask(load8(lines), needle);
    mask |= eq_mask(load8(lines + 8), needle) << 8;
    if (count > 16) mask |= eq_mask(load8(lines + 16), needle) << 16;
    mask &= (1u << count) - 1u;  // count <= kCap = 20 < 31
    return mask != 0 ? static_cast<std::uint32_t>(std::countr_zero(mask))
                     : kNotFound;
  }

  static VictimScan victim(const std::uint32_t* lines,
                           const std::uint8_t* res,
                           const std::uint32_t* last_row,
                           const std::uint32_t* fill_row, std::uint32_t count,
                           std::uint32_t k, std::uint32_t smask,
                           std::uint32_t ls) {
    if (count <= 8) {
      // Same small-group cutover as find(): a handful of well-predicted
      // scalar iterations beats the vector setup latency.
      VictimScan out;
      std::uint32_t best = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!(res[i] >> k & 1u) || (lines[i] & smask) != ls) continue;
        const std::uint32_t ts =
            last_row[i] > fill_row[i] ? last_row[i] : fill_row[i];
        if (out.found == 0 || ts < best) {
          best = ts;
          out.victim = i;
        }
        ++out.found;
      }
      return out;
    }
    const __m256i vsmask = _mm256_set1_epi32(static_cast<int>(smask));
    const __m256i vls = _mm256_set1_epi32(static_cast<int>(ls));
    const __m256i vkbit = _mm256_set1_epi32(static_cast<int>(1u << k));
    std::uint32_t cand[24];
    std::uint32_t valid = 0;
    for (std::uint32_t b = 0; b < count; b += 8) {
      const __m256i set_eq =
          _mm256_cmpeq_epi32(_mm256_and_si256(load8(lines + b), vsmask), vls);
      const __m256i res_hit = _mm256_cmpeq_epi32(
          _mm256_and_si256(load8_u8(res + b), vkbit), vkbit);
      valid |= static_cast<std::uint32_t>(_mm256_movemask_ps(
                   _mm256_castsi256_ps(_mm256_and_si256(set_eq, res_hit))))
               << b;
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(cand + b),
          _mm256_max_epu32(load8(last_row + b), load8(fill_row + b)));
    }
    valid &= (1u << count) - 1u;
    VictimScan out;
    out.found = static_cast<std::uint32_t>(std::popcount(valid));
    // First strict minimum in ascending index order — identical tie/order
    // semantics to the scalar scan (ticks are distinct anyway).
    std::uint32_t best = 0;
    bool have = false;
    for (std::uint32_t m = valid; m != 0; m &= m - 1) {
      const std::uint32_t i = static_cast<std::uint32_t>(std::countr_zero(m));
      if (!have || cand[i] < best) {
        best = cand[i];
        out.victim = i;
        have = true;
      }
    }
    return out;
  }

  static std::uint32_t neq_next8(const std::uint32_t* p) {
    return eq_mask(load8(p), load8(p + 1)) ^ 0xFFu;
  }
};

bool simd_kernel_compiled() { return true; }

std::unique_ptr<StackSweepSim::Impl> make_simd_kernel(
    std::uint32_t line_bytes) {
  switch (line_bytes) {
    case 16: return std::make_unique<Kernel<1, true>>();
    case 32: return std::make_unique<Kernel<2, true>>();
    case 64: return std::make_unique<Kernel<4, true>>();
  }
  return nullptr;
}

}  // namespace sweep_detail
}  // namespace stcache

#else  // !STCACHE_SIMD_AVX2

namespace stcache {
namespace sweep_detail {

bool simd_kernel_compiled() { return false; }

std::unique_ptr<StackSweepSim::Impl> make_simd_kernel(std::uint32_t) {
  return nullptr;
}

}  // namespace sweep_detail
}  // namespace stcache

#endif  // STCACHE_SIMD_AVX2
