// Single-pass all-configuration replay: the "oneshot" engine's kernel.
//
// The exhaustive experiments evaluate every size/associativity point of the
// platform cache against the same stream. FastCacheSim (fast_cache.hpp)
// already made each replay cheap, but a 27-configuration bank sweep still
// traverses the stream once per configuration. The platform's index
// functions nest — the 128-set mask (8 KB 4-way / 4 KB 2-way / 2 KB
// direct) is a prefix of the 256-set mask (8 KB 2-way / 4 KB direct) which
// is a prefix of the 512-set mask (8 KB direct) — and replacement is true
// LRU with distinct ticks, so a Mattson-style stack-distance pass can
// evaluate every size x associativity point of ONE line size exactly, in
// ONE traversal. Three traversals (16/32/64 B lines) cover the whole
// 27-point space.
//
// How the classic algorithm is adapted to this cache (the textbook version
// covers only the 16 B case):
//
//  * Content slots. Per line size there are six content-distinct
//    (num_sets, ways) pairs:
//        k : sets ways   configuration
//        0 : 128  1      2K_1W
//        1 : 128  2      4K_2W    (pred bit 0)
//        2 : 128  4      8K_4W    (pred bit 1)
//        3 : 256  1      4K_1W
//        4 : 256  2      8K_2W    (pred bit 2)
//        5 : 512  1      8K_1W
//    The way-predicted variants share their base slot's contents and only
//    differ in prediction counters, so 9 CacheStats fall out of 6 slots.
//
//  * Co-residency. With a cold start, write-back policy, no victim buffer
//    and a fixed configuration, the reference model always fills and
//    evicts whole logical lines (an aligned line's sublines occupy the
//    same way, rows index..index+sublines-1, and a fill overwrites all of
//    them). Replay state can therefore be tracked per logical LINE, not
//    per 16 B subline, with one pool entry per line holding:
//      - a per-slot residency bit (which of the 6 caches hold the line),
//      - a per-slot fill tick (slot-dependent: each cache filled it at a
//        different time),
//      - per-subline last-access ticks (slot-INdependent: a hit updates
//        the accessed subline's tick in every slot that holds the line),
//      - a per-slot dirty mask over sublines (write-back accounting).
//    The reference's LRU victim at the accessed set is the resident line
//    minimizing max(last_access[offset], fill_tick[slot]) — exactly the
//    slot timestamp ConfigurableCache stores — and ticks are distinct, so
//    ties never arise and way identity is never needed.
//
//  * One histogram increment per access. Per access the kernel computes
//    the 6-bit hit mask (which slots held the line) plus 3 first-probe
//    bits (was the line the MRU of its set, per predicted slot) and bumps
//    one of 512 histogram bins. All hit/miss/prediction counters, fill
//    bytes and stall/cycle totals for all 9 configurations derive from the
//    histogram at stats() time; only write-back bytes need a live per-slot
//    counter (they depend on the evicted victim's dirty mask).
//
//  * MRU memo. The first-probe bit for a predicted slot is "the accessed
//    line was the last toucher of its set", maintained as a per-set line
//    id (a hit touches the accessed subline's set; a fill touches every
//    subline's set), mirroring FastCacheSim's memo argument.
//
//  * Repeat fast path. Per coarse group (the 128-set mask at line
//    granularity) the kernel remembers the last accessed block. A repeat
//    access to the same block — the common case: sequential ifetch hits
//    the same 16 B block four times — is a hit in every active slot with
//    every first-probe bit set, reducing to one histogram bump, one
//    last-access store and an optional dirty OR.
//
// Scope: write-back, victim-buffer-off, cold-start, fixed-configuration
// replay — exactly the measure_config_bank() contract. Write-through
// no-write-allocate breaks the shared-recency argument (store misses do
// not allocate, so per-slot contents diverge from any shared stack), and a
// victim buffer resurrects evicted lines per-slot; both fall back to the
// fast engine at the dispatch layer (trace/replay.cpp), as does any
// warm/reconfiguring replay (reference engine only).
//
// Equivalence is enforced the same way FastCacheSim's is: CacheStats must
// be bit-identical to both other engines for every in-scope configuration
// (tests/replay_equivalence_test.cpp, tests/stack_sweep_test.cpp).
//
// SIMD: the hot loops (slot probe, LRU victim scan, repeat-run detection)
// have an AVX2 path compiled into a separate translation unit
// (stack_sweep_simd.cpp, built with -mavx2 when the toolchain supports it)
// and selected per-sim at construction when the running CPU reports AVX2.
// The scalar kernel stays the portable fallback and the differential
// suites run both flavors; STCACHE_SIMD=0 in the environment or
// set_stack_sweep_simd(false) forces scalar. Both flavors produce
// bit-identical CacheStats by construction — the SIMD lanes only
// restructure the probe/scan, never the update order.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "cache/config.hpp"
#include "cache/stats.hpp"

namespace stcache {

// True when an AVX2 kernel was compiled in AND the running CPU supports it.
bool stack_sweep_simd_available();
// available() && not disabled (STCACHE_SIMD=0 or set_stack_sweep_simd(false)).
// Sampled once per StackSweepSim at construction.
bool stack_sweep_simd_enabled();
// Force the SIMD path on/off for subsequently constructed sims (clamped to
// availability). The differential tests and bench_replay_throughput use
// this to time/compare both flavors in one process.
void set_stack_sweep_simd(bool on);

class StackSweepSim {
 public:
  // `configs` selects which slots the traversal maintains (a way-predicted
  // config activates its base slot plus the MRU memo). All configs must
  // share one line size; duplicates are allowed. Throws stcache::Error on
  // an empty span or mixed line sizes.
  explicit StackSweepSim(std::span<const CacheConfig> configs,
                         TimingParams timing = {});
  ~StackSweepSim();
  StackSweepSim(StackSweepSim&&) noexcept;
  StackSweepSim& operator=(StackSweepSim&&) noexcept;

  // Replay a packed stream (FastCacheSim encoding: bit 31 = write, bits
  // 30..0 = 16 B block number). State and stats accumulate across calls.
  void replay(std::span<const std::uint32_t> packed);

  // Stats for any configuration whose slot was activated by the
  // constructor; bit-identical to a cold fast/reference replay.
  CacheStats stats(const CacheConfig& cfg) const;

  std::uint32_t line_bytes() const;
  // True when this sim runs the AVX2 kernel (fixed at construction).
  bool simd() const;

  // Raw accumulated totals. Every per-configuration counter derives from
  // these at stats() time, and they are plain sums over the replayed
  // records — which is what makes the set-partitioned parallel sweep
  // exact: shards replay disjoint set partitions of one stream, their
  // totals are added, and stats_from() on the sum is bit-identical to a
  // serial replay (integer addition is associative and commutative).
  struct Totals {
    std::uint64_t n = 0;       // records replayed
    std::uint64_t writes = 0;  // of which writes
    std::array<std::uint64_t, 512> hist{};   // hit-mask | first-probe bins
    std::array<std::uint64_t, 6> wb_bytes{};  // per-slot write-back bytes
  };
  // Add this sim's accumulated totals into `into`.
  void add_totals(Totals& into) const;
  // Stats for `cfg` computed from explicit totals (typically a cross-shard
  // sum). stats(cfg) == stats_from(own totals, cfg).
  CacheStats stats_from(const Totals& totals, const CacheConfig& cfg) const;

  // Implementation base; the kernel TUs derive one kernel per subline
  // count and SIMD flavor.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace stcache
