#include "cache/fast_cache.hpp"

#include "util/error.hpp"

namespace stcache {

FastCacheSim::FastCacheSim(const CacheConfig& config, TimingParams timing,
                           WritePolicy write_policy,
                           std::uint32_t victim_entries)
    : config_(config), timing_(timing), write_policy_(write_policy) {
  if (!config_.valid()) {
    fail("FastCacheSim: invalid configuration " + config.name());
  }
  if (victim_entries > kMaxVictimEntries) {
    fail("FastCacheSim: victim buffer larger than 64 entries is not a victim buffer");
  }
  victim_n_ = victim_entries;
  set_mask_ = config_.num_sets() - 1;
  way_stride_ = config_.banks_per_way() * kRowsPerBank;
  sublines_ = config_.sublines_per_line();
  miss_stall_ = timing_.miss_stall_cycles(config_.line_bytes());
  block_.fill(kInvalidBlock);
}

template <unsigned W>
std::uint32_t FastCacheSim::pick_victim_way(const std::uint32_t* slots) const {
  for (std::uint32_t w = 0; w < W; ++w) {
    if (!slot_valid(slots[w])) return w;
  }
  std::uint32_t victim_way = 0;
  std::uint64_t oldest = last_use_[slots[0]];
  for (std::uint32_t w = 1; w < W; ++w) {
    if (last_use_[slots[w]] < oldest) {
      victim_way = w;
      oldest = last_use_[slots[w]];
    }
  }
  return victim_way;
}

void FastCacheSim::victim_insert_slot(std::uint32_t slot) {
  if (victim_n_ == 0 || !slot_valid(slot)) return;
  // First invalid entry, else the LRU one (earliest index wins ties),
  // exactly as ConfigurableCache::victim_insert scans.
  std::uint32_t dst = 0;
  for (std::uint32_t i = 0; i < victim_n_; ++i) {
    if (!((vvalid_ >> i) & 1u)) {
      dst = i;
      break;
    }
    if (vlast_[i] < vlast_[dst]) dst = i;
  }
  const std::uint64_t m = std::uint64_t{1} << dst;
  if ((vvalid_ & m) && (vdirty_ & m)) {
    stats_.writeback_bytes += kPhysicalLineBytes;
  }
  vblock_[dst] = block_[slot];
  vlast_[dst] = last_use_[slot];
  vvalid_ |= m;
  if (dirty_bit(slot)) vdirty_ |= m;
  else vdirty_ &= ~m;
}

template <unsigned W, bool PRED, bool VICT, bool WT>
std::uint32_t FastCacheSim::miss_path(std::uint32_t block, std::uint32_t set,
                                      const std::uint32_t* slots,
                                      bool is_write) {
  if constexpr (VICT) {
    ++stats_.victim_probes;
    // victim_take: first valid matching entry, removed on hit.
    std::uint32_t vi = victim_n_;
    for (std::uint32_t i = 0; i < victim_n_; ++i) {
      if (((vvalid_ >> i) & 1u) && vblock_[i] == block) {
        vi = i;
        break;
      }
    }
    if (vi != victim_n_) {
      const std::uint64_t vm = std::uint64_t{1} << vi;
      const bool rdirty = (vdirty_ & vm) != 0;
      vvalid_ &= ~vm;
      vdirty_ &= ~vm;
      // Swap with the main array: displaced line retires to the buffer,
      // the rescued line fills the normally chosen victim way.
      const std::uint32_t victim_way = pick_victim_way<W>(slots);
      const std::uint32_t s = slots[victim_way];
      victim_insert_slot(s);
      block_[s] = block;
      last_use_[s] = tick_;
      set_dirty(s, rdirty || is_write);
      if constexpr (PRED) mru_way_[set] = static_cast<std::uint8_t>(victim_way);
      ++stats_.victim_hits;
      return timing_.victim_hit_penalty;
    }
  }

  ++stats_.misses;
  // Line concatenation: fill every absent 16 B subline of the aligned
  // logical line into the way chosen at the accessed subline's set.
  const std::uint32_t base_block = block & ~(sublines_ - 1);
  const std::uint32_t victim_way = pick_victim_way<W>(slots);
  for (std::uint32_t sub = 0; sub < sublines_; ++sub) {
    const std::uint32_t sub_block = base_block + sub;
    const std::uint32_t sub_set = sub_block & set_mask_;
    bool present = false;
    for (std::uint32_t w = 0; w < W; ++w) {
      if (block_[w * way_stride_ + sub_set] == sub_block) {
        present = true;
        break;
      }
    }
    if (present) continue;
    const std::uint32_t ss = victim_way * way_stride_ + sub_set;
    if constexpr (VICT) {
      victim_insert_slot(ss);
    } else if (slot_valid(ss) && dirty_bit(ss)) {
      stats_.writeback_bytes += kPhysicalLineBytes;
    }
    block_[ss] = sub_block;
    last_use_[ss] = tick_;
    set_dirty(ss, false);
    if constexpr (PRED) mru_way_[sub_set] = static_cast<std::uint8_t>(victim_way);
    stats_.fill_bytes += kPhysicalLineBytes;
  }
  const std::uint32_t as = slots[victim_way];
  STC_ASSERT(block_[as] == block, "fast fill did not install the accessed block");
  set_dirty(as, is_write && !WT);
  last_use_[as] = tick_;
  return miss_stall_;
}

template <unsigned W, bool PRED, bool VICT, bool WT>
void FastCacheSim::run(std::span<const std::uint32_t> packed) {
  // Hot-loop state lives in locals: the compiler cannot keep member
  // counters in registers across the loop because stores through the line
  // arrays might alias them. The invariant cycles = accesses * hit_cycles
  // + stall_cycles (every path charges hit_cycles plus exactly its stall)
  // and write_through_bytes = 4 * writes let most counters be derived once
  // at loop exit instead of updated per record.
  std::uint64_t tick = tick_;
  std::uint64_t writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t stall = 0;
  std::uint64_t wt_store_misses = 0;
  std::uint64_t pred_first = 0;
  std::uint64_t pred_mispred = 0;
  const std::uint32_t set_mask = set_mask_;
  const std::uint32_t way_stride = way_stride_;
  const std::uint32_t mispredict_penalty = timing_.mispredict_penalty;

  for (const std::uint32_t rec : packed) {
    const std::uint32_t block = rec & kPackedBlockMask;
    const bool is_write = (rec & kPackedWriteBit) != 0;
    ++tick;
    writes += is_write;

    const std::uint32_t set = block & set_mask;
    std::uint32_t slots[W];
    for (std::uint32_t w = 0; w < W; ++w) slots[w] = w * way_stride + set;

    // Fused probe: one load+compare per way decides hit and validity
    // (invalid slots hold kInvalidBlock, which no real block matches).
    std::uint32_t hit_way = W;
    for (std::uint32_t w = 0; w < W; ++w) {
      if (block_[slots[w]] == block) {
        hit_way = w;
        break;
      }
    }

    if (hit_way != W) {
      ++hits;
      const std::uint32_t s = slots[hit_way];
      last_use_[s] = tick;
      if (!WT && is_write) set_dirty(s, true);
      if constexpr (PRED) {
        if (hit_way == mru_way_[set]) {
          ++pred_first;
        } else {
          ++pred_mispred;
          stall += mispredict_penalty;
        }
        mru_way_[set] = static_cast<std::uint8_t>(hit_way);
      }
    } else if (WT && is_write) {
      // No-write-allocate store miss: straight to the write buffer.
      ++wt_store_misses;
    } else {
      tick_ = tick;  // cold path reads the member
      stall += miss_path<W, PRED, VICT, WT>(block, set, slots, is_write);
    }
  }

  tick_ = tick;
  const std::uint64_t n = packed.size();
  stats_.accesses += n;
  stats_.write_accesses += writes;
  stats_.read_accesses += n - writes;
  stats_.hits += hits;
  stats_.stall_cycles += stall;
  stats_.cycles += n * timing_.hit_cycles + stall;
  if constexpr (WT) {
    stats_.write_through_bytes += 4 * writes;
    stats_.wt_store_misses += wt_store_misses;
  }
  if constexpr (PRED) {
    stats_.pred_accesses += n;
    stats_.pred_first_hits += pred_first;
    stats_.pred_mispredicts += pred_mispred;
  }
}

void FastCacheSim::replay(std::span<const std::uint32_t> packed) {
  const bool pred = config_.way_prediction && config_.ways() > 1;
  const bool vict = victim_n_ > 0;
  const bool wt = write_policy_ == WritePolicy::kWriteThrough;

  // One dispatch per replay; the record loop itself is branch-specialized.
  auto dispatch = [&]<unsigned W, bool PRED>() {
    if (vict) {
      if (wt) run<W, PRED, true, true>(packed);
      else run<W, PRED, true, false>(packed);
    } else {
      if (wt) run<W, PRED, false, true>(packed);
      else run<W, PRED, false, false>(packed);
    }
  };
  switch (config_.ways()) {
    case 1:
      dispatch.template operator()<1, false>();
      break;
    case 2:
      if (pred) dispatch.template operator()<2, true>();
      else dispatch.template operator()<2, false>();
      break;
    case 4:
      if (pred) dispatch.template operator()<4, true>();
      else dispatch.template operator()<4, false>();
      break;
    default:
      fail("FastCacheSim: unsupported associativity");
  }
}

}  // namespace stcache
