#include "cache/configurable_cache.hpp"

#include "util/error.hpp"

namespace stcache {

ConfigurableCache::ConfigurableCache(CacheConfig config, TimingParams timing,
                                     WritePolicy write_policy,
                                     std::uint32_t victim_entries)
    : config_(config), timing_(timing), write_policy_(write_policy) {
  if (!config_.valid()) {
    fail("ConfigurableCache: invalid configuration " + config.name());
  }
  if (victim_entries > 64) {
    fail("ConfigurableCache: victim buffer larger than 64 entries is not a victim buffer");
  }
  victim_.resize(victim_entries);
  for (auto& bank : banks_) bank.resize(kRowsPerBank);
  for (std::uint32_t b = 0; b < kNumBanks; ++b) {
    bank_powered_[b] = b < config_.banks_powered();
  }
}

ConfigurableCache::Location ConfigurableCache::candidate(
    const CacheConfig& cfg, std::uint32_t block, std::uint32_t way) {
  const std::uint32_t index = block & (cfg.num_sets() - 1);
  const std::uint32_t row = index & (kRowsPerBank - 1);
  const std::uint32_t group = index >> 7;  // log2(kRowsPerBank) == 7
  return Location{way * cfg.banks_per_way() + group, row};
}

bool ConfigurableCache::reachable(const CacheConfig& cfg, std::uint32_t block,
                                  Location loc) {
  for (std::uint32_t w = 0; w < cfg.ways(); ++w) {
    Location cand = candidate(cfg, block, w);
    if (cand.bank == loc.bank && cand.row == loc.row) return true;
  }
  return false;
}

ConfigurableCache::AccessResult ConfigurableCache::access(std::uint32_t addr,
                                                          bool is_write,
                                                          std::uint32_t bytes) {
  ++tick_;
  ++stats_.accesses;
  if (is_write) ++stats_.write_accesses;
  else ++stats_.read_accesses;

  const std::uint32_t block = addr >> 4;
  const std::uint32_t ways = config_.ways();

  // Resolve every candidate way's slot once; the same lines serve way
  // prediction, the hit probe, and (on the miss paths below) the LRU
  // victim choice, instead of recomputing candidate() per scan.
  Line* cand[4] = {};
  for (std::uint32_t w = 0; w < ways; ++w) {
    cand[w] = &line_at(candidate(config_, block, w));
  }

  const bool predicting = config_.way_prediction && ways > 1;
  std::uint32_t predicted_way = 0;
  if (predicting) {
    // MRU way among the candidates (valid lines preferred, earliest way
    // wins ties).
    std::uint64_t best_use = 0;
    bool found_valid = false;
    for (std::uint32_t w = 0; w < ways; ++w) {
      if (cand[w]->valid && (!found_valid || cand[w]->last_use > best_use)) {
        predicted_way = w;
        best_use = cand[w]->last_use;
        found_valid = true;
      }
    }
    ++stats_.pred_accesses;
  }

  // Probe all candidate ways; full tag compare. (Under the coherent
  // reconfiguration policy at most one copy of a block is ever reachable;
  // under kPowerGatingOnly duplicates can arise, in which case the first
  // match wins, mirroring a priority encoder.)
  std::uint32_t hit_way = 0;
  Line* hit_line = nullptr;
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (cand[w]->valid && cand[w]->block == block) {
      hit_line = cand[w];
      hit_way = w;
      break;
    }
  }

  // Victim way at the accessed block's set: first invalid way, else LRU
  // (shared by the victim-buffer swap and the miss fill).
  auto pick_victim_way = [&] {
    std::uint32_t victim_way = 0;
    bool chosen = false;
    std::uint64_t oldest = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
      if (!cand[w]->valid) return w;
      if (!chosen || cand[w]->last_use < oldest) {
        victim_way = w;
        oldest = cand[w]->last_use;
        chosen = true;
      }
    }
    return victim_way;
  };

  const bool write_through =
      is_write && write_policy_ == WritePolicy::kWriteThrough;
  if (write_through) stats_.write_through_bytes += bytes;

  AccessResult result;
  if (hit_line != nullptr) {
    ++stats_.hits;
    hit_line->last_use = tick_;
    hit_line->dirty = hit_line->dirty || (is_write && !write_through);
    result.hit = true;
    result.cycles = timing_.hit_cycles;
    if (predicting) {
      if (hit_way == predicted_way) {
        ++stats_.pred_first_hits;
        result.predicted_first_hit = true;
      } else {
        ++stats_.pred_mispredicts;
        result.cycles += timing_.mispredict_penalty;
        stats_.stall_cycles += timing_.mispredict_penalty;
      }
    }
  } else if (write_through) {
    // No-write-allocate: the store goes straight to the write buffer and
    // memory; the cache is untouched and the processor does not stall.
    ++stats_.wt_store_misses;
    result.hit = false;
    result.cycles = timing_.hit_cycles;
  } else if (!victim_.empty() && [&] {
               ++stats_.victim_probes;
               Line rescued;
               if (!victim_take(block, &rescued)) return false;
               // Swap: the rescued line enters the main array at its
               // candidate slot; whatever lived there retires to the
               // buffer. Pick the LRU way like a normal fill.
               Line& slot = *cand[pick_victim_way()];
               victim_insert(slot);
               rescued.last_use = tick_;
               rescued.dirty = rescued.dirty || is_write;
               slot = rescued;
               ++stats_.victim_hits;
               return true;
             }()) {
    result.hit = false;  // a main-array miss, served on chip
    result.cycles = timing_.hit_cycles + timing_.victim_hit_penalty;
    stats_.stall_cycles += timing_.victim_hit_penalty;
  } else {
    ++stats_.misses;
    // Line concatenation: fill every 16 B subline of the aligned logical
    // line into the same logical way. The victim way is chosen at the
    // accessed subline's set (invalid way first, else LRU).
    const std::uint32_t sublines = config_.sublines_per_line();
    const std::uint32_t base_block = block & ~(sublines - 1);
    const std::uint32_t victim_way = pick_victim_way();

    for (std::uint32_t s = 0; s < sublines; ++s) {
      const std::uint32_t sub_block = base_block + s;
      // If the subline is already present in some way (e.g. fetched by an
      // earlier miss under a different line size), leave it there — filling
      // a second copy would violate the single-reachable-copy invariant.
      bool already_present = false;
      for (std::uint32_t w = 0; w < config_.ways(); ++w) {
        const Line& line = line_at(candidate(config_, sub_block, w));
        if (line.valid && line.block == sub_block) {
          already_present = true;
          break;
        }
      }
      if (already_present) continue;

      Line& slot = line_at(candidate(config_, sub_block, victim_way));
      if (!victim_.empty()) {
        victim_insert(slot);  // displaced line retires to the victim buffer
      } else if (slot.valid && slot.dirty) {
        stats_.writeback_bytes += kPhysicalLineBytes;
      }
      slot = Line{sub_block, tick_, true, false};
      stats_.fill_bytes += kPhysicalLineBytes;
    }

    // Mark the accessed subline.
    Line& accessed = *cand[victim_way];
    STC_ASSERT(accessed.valid && accessed.block == block,
               "fill did not install the accessed block");
    accessed.dirty = is_write && write_policy_ == WritePolicy::kWriteBack;
    accessed.last_use = tick_;

    result.hit = false;
    const std::uint32_t stall = timing_.miss_stall_cycles(config_.line_bytes());
    result.cycles = timing_.hit_cycles + stall;
    stats_.stall_cycles += stall;
  }

  stats_.cycles += result.cycles;
  return result;
}

std::uint64_t ConfigurableCache::handle_power_gating(const CacheConfig& next) {
  std::uint64_t dirty_writebacks = 0;
  for (std::uint32_t b = 0; b < kNumBanks; ++b) {
    const bool was_on = bank_powered_[b];
    const bool now_on = b < next.banks_powered();
    if (was_on && !now_on) {
      // Bank is being power-gated: dirty contents must reach memory first,
      // everything is lost afterwards.
      for (Line& line : banks_[b]) {
        if (line.valid && line.dirty) {
          ++dirty_writebacks;
          stats_.reconfig_writeback_bytes += kPhysicalLineBytes;
        }
        line = Line{};
      }
    } else if (!was_on && now_on) {
      // Bank comes back up with undefined contents: invalidate.
      for (Line& line : banks_[b]) line = Line{};
    }
    bank_powered_[b] = now_on;
  }
  return dirty_writebacks;
}

std::uint64_t ConfigurableCache::reconfigure(const CacheConfig& next,
                                             ReconfigPolicy policy) {
  if (!next.valid()) {
    fail("ConfigurableCache::reconfigure: invalid configuration " + next.name());
  }
  std::uint64_t dirty_writebacks = handle_power_gating(next);

  if (policy == ReconfigPolicy::kWritebackUnreachableDirty) {
    // Lines the new mapping cannot reach are invalidated (dirty ones are
    // written back first). Merely cleaning them is not enough: a stale copy
    // stranded now could become reachable again after a later associativity
    // increase and serve outdated data.
    for (std::uint32_t b = 0; b < next.banks_powered(); ++b) {
      for (std::uint32_t r = 0; r < kRowsPerBank; ++r) {
        Line& line = banks_[b][r];
        if (line.valid && !reachable(next, line.block, Location{b, r})) {
          if (line.dirty) {
            ++dirty_writebacks;
            stats_.reconfig_writeback_bytes += kPhysicalLineBytes;
          }
          line = Line{};
        }
      }
    }
  }

  config_ = next;
  return dirty_writebacks;
}

std::uint64_t ConfigurableCache::flush() {
  std::uint64_t dirty = 0;
  for (Line& entry : victim_) {
    if (entry.valid && entry.dirty) {
      ++dirty;
      stats_.reconfig_writeback_bytes += kPhysicalLineBytes;
    }
    entry = Line{};
  }
  for (std::uint32_t b = 0; b < kNumBanks; ++b) {
    if (!bank_powered_[b]) continue;
    for (Line& line : banks_[b]) {
      if (line.valid && line.dirty) {
        ++dirty;
        stats_.reconfig_writeback_bytes += kPhysicalLineBytes;
      }
      line = Line{};
    }
  }
  return dirty;
}

bool ConfigurableCache::victim_take(std::uint32_t block, Line* out) {
  for (Line& entry : victim_) {
    if (entry.valid && entry.block == block) {
      *out = entry;
      entry = Line{};
      return true;
    }
  }
  return false;
}

void ConfigurableCache::victim_insert(const Line& line) {
  if (victim_.empty() || !line.valid) return;
  Line* slot = &victim_[0];
  for (Line& entry : victim_) {
    if (!entry.valid) {
      slot = &entry;
      break;
    }
    if (entry.last_use < slot->last_use) slot = &entry;
  }
  if (slot->valid && slot->dirty) {
    stats_.writeback_bytes += kPhysicalLineBytes;
  }
  *slot = line;
}

bool ConfigurableCache::probe(std::uint32_t addr) const {
  const std::uint32_t block = addr >> 4;
  for (std::uint32_t w = 0; w < config_.ways(); ++w) {
    const Line& line = line_at(candidate(config_, block, w));
    if (line.valid && line.block == block) return true;
  }
  return false;
}

bool ConfigurableCache::stored_anywhere(std::uint32_t addr) const {
  const std::uint32_t block = addr >> 4;
  for (std::uint32_t b = 0; b < kNumBanks; ++b) {
    if (!bank_powered_[b]) continue;
    for (const Line& line : banks_[b]) {
      if (line.valid && line.block == block) return true;
    }
  }
  return false;
}

std::uint64_t ConfigurableCache::dirty_unreachable_lines() const {
  std::uint64_t count = 0;
  for (std::uint32_t b = 0; b < kNumBanks; ++b) {
    if (!bank_powered_[b]) continue;
    for (std::uint32_t r = 0; r < kRowsPerBank; ++r) {
      const Line& line = banks_[b][r];
      if (line.valid && line.dirty &&
          !reachable(config_, line.block, Location{b, r})) {
        ++count;
      }
    }
  }
  return count;
}

std::uint64_t ConfigurableCache::valid_lines() const {
  std::uint64_t count = 0;
  for (std::uint32_t b = 0; b < kNumBanks; ++b) {
    if (!bank_powered_[b]) continue;
    for (const Line& line : banks_[b]) {
      if (line.valid) ++count;
    }
  }
  return count;
}

}  // namespace stcache
