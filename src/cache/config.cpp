#include "cache/config.hpp"

#include <bit>

#include "util/error.hpp"

namespace stcache {

std::uint32_t CacheConfig::index_bits() const {
  return static_cast<std::uint32_t>(std::countr_zero(num_sets()));
}

bool CacheConfig::valid() const {
  // Size must be one of 2/4/8 KB, associativity 1/2/4, line 16/32/64.
  bool size_ok = size_kb == CacheSizeKB::k2 || size_kb == CacheSizeKB::k4 ||
                 size_kb == CacheSizeKB::k8;
  bool assoc_ok = assoc == Assoc::w1 || assoc == Assoc::w2 || assoc == Assoc::w4;
  bool line_ok = line == LineBytes::b16 || line == LineBytes::b32 ||
                 line == LineBytes::b64;
  if (!size_ok || !assoc_ok || !line_ok) return false;
  // Way shutdown implements size reduction, so ways() cannot exceed the
  // number of powered banks.
  if (ways() > banks_powered()) return false;
  // Way prediction only exists for set-associative configurations.
  if (way_prediction && assoc == Assoc::w1) return false;
  return true;
}

std::string to_string(CacheSizeKB s) {
  return std::to_string(static_cast<unsigned>(s)) + "K";
}
std::string to_string(Assoc a) {
  return std::to_string(static_cast<unsigned>(a)) + "W";
}
std::string to_string(LineBytes l) {
  return std::to_string(static_cast<unsigned>(l)) + "B";
}

std::string CacheConfig::name() const {
  std::string n = to_string(size_kb) + "_" + to_string(assoc) + "_" +
                  to_string(line);
  if (way_prediction) n += "_P";
  return n;
}

CacheConfig CacheConfig::parse(const std::string& name) {
  // Expected shape: <size>K_<ways>W_<line>B[_P]
  CacheConfig cfg;
  std::size_t pos = 0;
  auto read_uint = [&](char terminator) -> unsigned {
    std::size_t start = pos;
    unsigned v = 0;
    while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
      v = v * 10 + static_cast<unsigned>(name[pos] - '0');
      ++pos;
    }
    if (pos == start || pos >= name.size() || name[pos] != terminator) {
      fail("CacheConfig::parse: malformed config name '" + name + "'");
    }
    ++pos;  // consume terminator
    return v;
  };
  unsigned size = read_uint('K');
  if (pos >= name.size() || name[pos] != '_') fail("CacheConfig::parse: '" + name + "'");
  ++pos;
  unsigned ways = read_uint('W');
  if (pos >= name.size() || name[pos] != '_') fail("CacheConfig::parse: '" + name + "'");
  ++pos;
  unsigned line = read_uint('B');
  if (pos != name.size()) {
    if (name.substr(pos) != "_P") {
      fail("CacheConfig::parse: trailing junk in '" + name + "'");
    }
    cfg.way_prediction = true;
  }
  cfg.size_kb = static_cast<CacheSizeKB>(size);
  cfg.assoc = static_cast<Assoc>(ways);
  cfg.line = static_cast<LineBytes>(line);
  if (!cfg.valid()) {
    fail("CacheConfig::parse: '" + name + "' is not a legal configuration");
  }
  return cfg;
}

namespace {

std::vector<CacheConfig> make_all(bool include_prediction) {
  std::vector<CacheConfig> out;
  for (CacheSizeKB s : kCacheSizes) {
    for (LineBytes l : kLineSizes) {
      for (Assoc a : kAssocs) {
        for (bool p : {false, true}) {
          if (p && !include_prediction) continue;
          CacheConfig cfg{s, a, l, p};
          if (cfg.valid()) out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

}  // namespace

const std::vector<CacheConfig>& all_configs() {
  static const std::vector<CacheConfig> kAll = make_all(true);
  return kAll;
}

const std::vector<CacheConfig>& base_configs() {
  static const std::vector<CacheConfig> kBase = make_all(false);
  return kBase;
}

CacheConfig base_cache() {
  return CacheConfig{CacheSizeKB::k8, Assoc::w4, LineBytes::b32, false};
}

}  // namespace stcache
