#include "cache/stack_sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "cache/stack_sweep_kernel.hpp"
#include "util/error.hpp"

namespace stcache {

namespace {

using sweep_detail::Kernel;
using sweep_detail::kNumSlots;
using sweep_detail::kSlotPredBit;
using sweep_detail::slot_of;

// -1: follow the STCACHE_SIMD environment variable (default on);
//  0 / 1: forced by set_stack_sweep_simd().
std::atomic<int> g_simd_override{-1};

bool simd_env_enabled() {
  const char* v = std::getenv("STCACHE_SIMD");
  return v == nullptr || std::string(v) != "0";
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool stack_sweep_simd_available() {
  static const bool avail = sweep_detail::simd_kernel_compiled() && cpu_has_avx2();
  return avail;
}

bool stack_sweep_simd_enabled() {
  if (!stack_sweep_simd_available()) return false;
  const int ovr = g_simd_override.load(std::memory_order_relaxed);
  if (ovr >= 0) return ovr != 0;
  return simd_env_enabled();
}

void set_stack_sweep_simd(bool on) {
  g_simd_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

StackSweepSim::StackSweepSim(std::span<const CacheConfig> configs,
                             TimingParams timing) {
  if (configs.empty()) fail("StackSweepSim: empty configuration bank");
  const std::uint32_t line = configs.front().line_bytes();
  if (line != 16 && line != 32 && line != 64) {
    fail("StackSweepSim: unsupported line size");
  }
  if (stack_sweep_simd_enabled()) {
    impl_ = sweep_detail::make_simd_kernel(line);
  }
  if (!impl_) {
    switch (line) {
      case 16: impl_ = std::make_unique<Kernel<1, false>>(); break;
      case 32: impl_ = std::make_unique<Kernel<2, false>>(); break;
      default: impl_ = std::make_unique<Kernel<4, false>>(); break;
    }
  }
  impl_->line_bytes = line;
  impl_->timing = timing;
  for (const CacheConfig& cfg : configs) {
    if (cfg.line_bytes() != line) {
      fail("StackSweepSim: mixed line sizes in one bank (" + cfg.name() +
           " vs " + std::to_string(line) + " B)");
    }
    if (!cfg.valid()) fail("StackSweepSim: invalid configuration " + cfg.name());
    const std::uint32_t k = slot_of(cfg);
    impl_->active |= 1u << k;
    if (cfg.way_prediction && cfg.ways() > 1) {
      impl_->pred_active |= 1u << kSlotPredBit[k];
    }
  }
  impl_->finalize();
}

StackSweepSim::~StackSweepSim() = default;
StackSweepSim::StackSweepSim(StackSweepSim&&) noexcept = default;
StackSweepSim& StackSweepSim::operator=(StackSweepSim&&) noexcept = default;

void StackSweepSim::replay(std::span<const std::uint32_t> packed) {
  impl_->replay(packed);
}

std::uint32_t StackSweepSim::line_bytes() const { return impl_->line_bytes; }

bool StackSweepSim::simd() const { return impl_->simd; }

void StackSweepSim::add_totals(Totals& into) const {
  into.n += impl_->n;
  into.writes += impl_->writes;
  for (std::uint32_t key = 0; key < 512; ++key) {
    into.hist[key] += impl_->hist[key];
  }
  for (std::uint32_t k = 0; k < kNumSlots; ++k) {
    into.wb_bytes[k] += impl_->wb_bytes[k];
  }
}

CacheStats StackSweepSim::stats_from(const Totals& totals,
                                     const CacheConfig& cfg) const {
  if (cfg.line_bytes() != impl_->line_bytes) {
    fail("StackSweepSim::stats: " + cfg.name() + " has the wrong line size");
  }
  const std::uint32_t k = slot_of(cfg);
  if (!(impl_->active >> k & 1u)) {
    fail("StackSweepSim::stats: " + cfg.name() + " was not in the bank");
  }
  const bool pred = cfg.way_prediction && cfg.ways() > 1;
  const int pb = pred ? kSlotPredBit[k] : -1;
  if (pred && !(impl_->pred_active >> pb & 1u)) {
    fail("StackSweepSim::stats: " + cfg.name() + " was not in the bank");
  }

  std::uint64_t hits = 0;
  std::uint64_t first = 0;
  for (std::uint32_t key = 0; key < 512; ++key) {
    const std::uint64_t c = totals.hist[key];
    if (c == 0) continue;
    if (key >> k & 1u) hits += c;
    if (pb >= 0 && (key >> (kNumSlots + static_cast<unsigned>(pb)) & 1u))
      first += c;
  }

  CacheStats s;
  s.accesses = totals.n;
  s.write_accesses = totals.writes;
  s.read_accesses = totals.n - totals.writes;
  s.hits = hits;
  s.misses = totals.n - hits;
  s.fill_bytes = s.misses * impl_->line_bytes;
  s.writeback_bytes = totals.wb_bytes[k];
  s.stall_cycles =
      s.misses * impl_->timing.miss_stall_cycles(impl_->line_bytes);
  if (pred) {
    s.pred_accesses = totals.n;
    s.pred_first_hits = first;
    s.pred_mispredicts = hits - first;
    s.stall_cycles += s.pred_mispredicts * impl_->timing.mispredict_penalty;
  }
  s.cycles = totals.n * impl_->timing.hit_cycles + s.stall_cycles;
  return s;
}

CacheStats StackSweepSim::stats(const CacheConfig& cfg) const {
  Totals t;
  add_totals(t);
  return stats_from(t, cfg);
}

}  // namespace stcache
