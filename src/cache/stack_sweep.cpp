#include "cache/stack_sweep.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <vector>

#include "cache/fast_cache.hpp"
#include "util/error.hpp"

namespace stcache {

namespace {

// The six content-distinct (num_sets, ways) pairs per line size; see the
// slot table in the header. Way-predicted slots carry a pred bit.
constexpr std::uint32_t kNumSlots = 6;
constexpr std::uint32_t kSlotSets[kNumSlots] = {128, 128, 128, 256, 256, 512};
constexpr std::uint32_t kSlotWays[kNumSlots] = {1, 2, 4, 1, 2, 1};
constexpr int kSlotPredBit[kNumSlots] = {-1, 0, 1, -1, 2, -1};

std::uint32_t slot_of(const CacheConfig& cfg) {
  switch (cfg.num_sets()) {
    case 128: return cfg.ways() == 1 ? 0u : cfg.ways() == 2 ? 1u : 2u;
    case 256: return cfg.ways() == 1 ? 3u : 4u;
    case 512: return 5u;
  }
  fail("StackSweepSim: no slot for configuration " + cfg.name());
}

}  // namespace

struct StackSweepSim::Impl {
  virtual ~Impl() = default;
  virtual void replay(std::span<const std::uint32_t> packed) = 0;

  std::uint32_t line_bytes = 16;
  std::uint32_t active = 0;       // slot bits maintained by the traversal
  std::uint32_t pred_active = 0;  // pred bits (MRU memos) maintained
  TimingParams timing{};

  std::uint64_t n = 0;       // records replayed
  std::uint64_t writes = 0;  // of which writes
  // Bin key = hit mask (bits 0..5) | first-probe bits (bits 6..8); one
  // increment per access, all per-configuration counters derive from it.
  std::array<std::uint64_t, 512> hist{};
  std::array<std::uint64_t, kNumSlots> wb_bytes{};  // eviction write-backs
};

namespace {

template <unsigned SUBL>
struct Kernel final : StackSweepSim::Impl {
  static constexpr std::uint32_t kLog =
      SUBL == 1 ? 0u : SUBL == 2 ? 1u : 2u;
  // Coarse groups: the 128-set mask at line granularity. Every conflict in
  // any slot stays inside one group, so pool entries are bucketed by it.
  static constexpr std::uint32_t kGroups = 128 / SUBL;
  static constexpr std::uint32_t kGroupMask = kGroups - 1;
  // Max lines co-resident per group across all six slots: 1+2+4 (128-set
  // slots) + 2+4 (256-set) + 4 (512-set) = 17, +1 mid-install.
  static constexpr std::uint32_t kCap = 20;
  static constexpr std::uint32_t kNoBlock = 0xFFFF'FFFFu;  // > any 28-bit id

  // Line pool, SoA, bucketed in kCap-entry group segments. `last` ticks are
  // slot-independent (a hit refreshes the accessed subline everywhere);
  // `fill` ticks and dirty nibbles are per slot.
  std::vector<std::uint32_t> line_ = std::vector<std::uint32_t>(kGroups * kCap);
  std::vector<std::uint8_t> res_ = std::vector<std::uint8_t>(kGroups * kCap);
  std::vector<std::uint32_t> dirty_ =
      std::vector<std::uint32_t>(kGroups * kCap);  // bit 4*slot+offset
  std::vector<std::uint32_t> fill_ =
      std::vector<std::uint32_t>(kGroups * kCap * kNumSlots);
  std::vector<std::uint32_t> last_ =
      std::vector<std::uint32_t>(kGroups * kCap * SUBL);
  std::array<std::uint8_t, kGroups> count_{};
  // Repeat fast path: last accessed block per group, and its pool index.
  std::array<std::uint32_t, kGroups> last_block_;
  std::array<std::uint8_t, kGroups> last_idx_{};
  // MRU memos for the pred slots, indexed by block-granularity set.
  std::array<std::uint32_t, 128> memo1_;  // slot 1: 4K_2W
  std::array<std::uint32_t, 128> memo2_;  // slot 2: 8K_4W
  std::array<std::uint32_t, 256> memo4_;  // slot 4: 8K_2W
  // spread_[mask] maps slot bit k to dirty-nibble bit 4k, so a write hit
  // marks the accessed subline dirty in every hitting slot with one OR.
  std::array<std::uint32_t, 64> spread_{};
  std::uint32_t tick_ = 0;
  std::uint32_t fast_key_ = 0;     // histogram key of a repeat access
  std::uint32_t fast_spread_ = 0;  // spread_[active]

  Kernel() {
    last_block_.fill(kNoBlock);
    memo1_.fill(kNoBlock);
    memo2_.fill(kNoBlock);
    memo4_.fill(kNoBlock);
  }

  void finalize_masks() {
    for (std::uint32_t m = 0; m < 64; ++m) {
      std::uint32_t s = 0;
      for (std::uint32_t k = 0; k < kNumSlots; ++k) {
        if (m >> k & 1u) s |= 1u << (4 * k);
      }
      spread_[m] = s;
    }
    fast_key_ = active | (pred_active << kNumSlots);
    fast_spread_ = spread_[active];
  }

  void replay(std::span<const std::uint32_t> packed) override {
    if (packed.size() > 0xFFFF'FFFFull - tick_) {
      fail("StackSweepSim: stream exceeds the 32-bit tick budget");
    }
    n += packed.size();
    for (const std::uint32_t rec : packed) {
      const std::uint32_t block = rec & FastCacheSim::kPackedBlockMask;
      const std::uint32_t is_write = rec >> 31;
      ++tick_;
      writes += is_write;
      const std::uint32_t g = (block >> kLog) & kGroupMask;
      if (last_block_[g] == block) {
        // Repeat access: the previous access to this group installed or
        // refreshed this very block, so it is resident in every active
        // slot, is the MRU of every predicted set, and no memo moved.
        const std::uint32_t e = g * kCap + last_idx_[g];
        ++hist[fast_key_];
        last_[e * SUBL + (block & (SUBL - 1))] = tick_;
        if (is_write) dirty_[e] |= fast_spread_ << (block & (SUBL - 1));
        continue;
      }
      slow(block, g, is_write != 0);
    }
  }

  void slow(std::uint32_t block, std::uint32_t g, bool is_write) {
    const std::uint32_t l = block >> kLog;
    const std::uint32_t o = block & (SUBL - 1);
    const std::uint32_t* gl = &line_[g * kCap];
    std::uint32_t idx = kCap;
    for (std::uint32_t i = 0; i < count_[g]; ++i) {
      if (gl[i] == l) {
        idx = i;
        break;
      }
    }
    const std::uint32_t r = idx < kCap ? res_[g * kCap + idx] : 0u;

    // First-probe bits before any state moves (prediction reads the
    // pre-access MRU, exactly like the reference).
    std::uint32_t pbits = 0;
    if (r != 0) {
      if ((pred_active & 1u) && (r >> 1 & 1u) && memo1_[block & 127u] == l)
        pbits |= 1u;
      if ((pred_active & 2u) && (r >> 2 & 1u) && memo2_[block & 127u] == l)
        pbits |= 2u;
      if ((pred_active & 4u) && (r >> 4 & 1u) && memo4_[block & 255u] == l)
        pbits |= 4u;
    }
    ++hist[r | (pbits << kNumSlots)];

    std::uint32_t miss = active & ~r;
    for (std::uint32_t m = miss; m != 0; m &= m - 1) {
      const std::uint32_t k = static_cast<std::uint32_t>(std::countr_zero(m));
      // LRU victim at the accessed set: the resident line minimizing
      // max(last access to the accessed offset, this slot's fill tick) —
      // the slot timestamp the reference stores at the probed row. Ticks
      // are distinct, so there are no ties to break.
      const std::uint32_t smask = (kSlotSets[k] >> kLog) - 1u;
      const std::uint32_t ls = l & smask;
      std::uint32_t found = 0;
      std::uint32_t victim = 0;
      std::uint32_t best = 0;
      for (std::uint32_t i = 0; i < count_[g]; ++i) {
        const std::uint32_t e = g * kCap + i;
        if (!(res_[e] >> k & 1u) || (line_[e] & smask) != ls) continue;
        const std::uint32_t ts =
            std::max(last_[e * SUBL + o], fill_[e * kNumSlots + k]);
        if (found == 0 || ts < best) {
          best = ts;
          victim = i;
        }
        ++found;
      }
      if (found >= kSlotWays[k]) {
        const std::uint32_t e = g * kCap + victim;
        wb_bytes[k] += kPhysicalLineBytes *
                       std::popcount((dirty_[e] >> (4 * k)) & 0xFu);
        res_[e] &= static_cast<std::uint8_t>(~(1u << k));
        dirty_[e] &= ~(0xFu << (4 * k));
        if (res_[e] == 0) free_entry(g, victim);
      }
    }

    std::uint32_t e;
    if (miss != 0) {
      // Evictions may have compacted the pool; locate or allocate the
      // accessed entry afresh, then install into every missing slot.
      idx = kCap;
      for (std::uint32_t i = 0; i < count_[g]; ++i) {
        if (gl[i] == l) {
          idx = i;
          break;
        }
      }
      if (idx == kCap) {
        idx = count_[g]++;
        if (idx >= kCap) fail("StackSweepSim: line pool overflow");
        e = g * kCap + idx;
        line_[e] = l;
        res_[e] = 0;
        dirty_[e] = 0;
        // Stale last_/fill_ ticks from a previous tenant are harmless:
        // they are all below the fill tick installed next, and
        // max(last, fill) screens them out.
      } else {
        e = g * kCap + idx;
      }
      for (std::uint32_t m = miss; m != 0; m &= m - 1) {
        const std::uint32_t k = static_cast<std::uint32_t>(std::countr_zero(m));
        res_[e] |= static_cast<std::uint8_t>(1u << k);
        fill_[e * kNumSlots + k] = tick_;
        dirty_[e] = (dirty_[e] & ~(0xFu << (4 * k))) |
                    (static_cast<std::uint32_t>(is_write) << (4 * k + o));
        // A fill touches every subline's set: the new line becomes the MRU
        // of all of them in this slot.
        const int pb = kSlotPredBit[k];
        if (pb >= 0 && (pred_active >> pb & 1u)) {
          const std::uint32_t bmask = kSlotSets[k] - 1u;
          for (std::uint32_t j = 0; j < SUBL; ++j) {
            memo_for(pb)[((l << kLog) + j) & bmask] = l;
          }
        }
      }
    } else {
      e = g * kCap + idx;
    }

    if (is_write && r != 0) dirty_[e] |= spread_[r] << o;
    last_[e * SUBL + o] = tick_;
    // A hit refreshes only the accessed subline's set in the memo.
    if ((r >> 1 & 1u) && (pred_active & 1u)) memo1_[block & 127u] = l;
    if ((r >> 2 & 1u) && (pred_active & 2u)) memo2_[block & 127u] = l;
    if ((r >> 4 & 1u) && (pred_active & 4u)) memo4_[block & 255u] = l;
    last_block_[g] = block;
    last_idx_[g] = static_cast<std::uint8_t>(idx);
  }

  std::uint32_t* memo_for(int pred_bit) {
    return pred_bit == 0 ? memo1_.data()
                         : pred_bit == 1 ? memo2_.data() : memo4_.data();
  }

  void free_entry(std::uint32_t g, std::uint32_t i) {
    const std::uint32_t tail = --count_[g];
    if (i == tail) return;
    const std::uint32_t dst = g * kCap + i;
    const std::uint32_t src = g * kCap + tail;
    line_[dst] = line_[src];
    res_[dst] = res_[src];
    dirty_[dst] = dirty_[src];
    std::memcpy(&fill_[dst * kNumSlots], &fill_[src * kNumSlots],
                kNumSlots * sizeof(std::uint32_t));
    std::memcpy(&last_[dst * SUBL], &last_[src * SUBL],
                SUBL * sizeof(std::uint32_t));
  }
};

}  // namespace

StackSweepSim::StackSweepSim(std::span<const CacheConfig> configs,
                             TimingParams timing) {
  if (configs.empty()) fail("StackSweepSim: empty configuration bank");
  const std::uint32_t line = configs.front().line_bytes();
  switch (line) {
    case 16: impl_ = std::make_unique<Kernel<1>>(); break;
    case 32: impl_ = std::make_unique<Kernel<2>>(); break;
    case 64: impl_ = std::make_unique<Kernel<4>>(); break;
    default: fail("StackSweepSim: unsupported line size");
  }
  impl_->line_bytes = line;
  impl_->timing = timing;
  for (const CacheConfig& cfg : configs) {
    if (cfg.line_bytes() != line) {
      fail("StackSweepSim: mixed line sizes in one bank (" + cfg.name() +
           " vs " + std::to_string(line) + " B)");
    }
    if (!cfg.valid()) fail("StackSweepSim: invalid configuration " + cfg.name());
    const std::uint32_t k = slot_of(cfg);
    impl_->active |= 1u << k;
    if (cfg.way_prediction && cfg.ways() > 1) {
      impl_->pred_active |= 1u << kSlotPredBit[k];
    }
  }
  switch (line) {
    case 16: static_cast<Kernel<1>*>(impl_.get())->finalize_masks(); break;
    case 32: static_cast<Kernel<2>*>(impl_.get())->finalize_masks(); break;
    default: static_cast<Kernel<4>*>(impl_.get())->finalize_masks(); break;
  }
}

StackSweepSim::~StackSweepSim() = default;
StackSweepSim::StackSweepSim(StackSweepSim&&) noexcept = default;
StackSweepSim& StackSweepSim::operator=(StackSweepSim&&) noexcept = default;

void StackSweepSim::replay(std::span<const std::uint32_t> packed) {
  impl_->replay(packed);
}

std::uint32_t StackSweepSim::line_bytes() const { return impl_->line_bytes; }

CacheStats StackSweepSim::stats(const CacheConfig& cfg) const {
  if (cfg.line_bytes() != impl_->line_bytes) {
    fail("StackSweepSim::stats: " + cfg.name() + " has the wrong line size");
  }
  const std::uint32_t k = slot_of(cfg);
  if (!(impl_->active >> k & 1u)) {
    fail("StackSweepSim::stats: " + cfg.name() + " was not in the bank");
  }
  const bool pred = cfg.way_prediction && cfg.ways() > 1;
  const int pb = pred ? kSlotPredBit[k] : -1;
  if (pred && !(impl_->pred_active >> pb & 1u)) {
    fail("StackSweepSim::stats: " + cfg.name() + " was not in the bank");
  }

  std::uint64_t hits = 0;
  std::uint64_t first = 0;
  for (std::uint32_t key = 0; key < 512; ++key) {
    const std::uint64_t c = impl_->hist[key];
    if (c == 0) continue;
    if (key >> k & 1u) hits += c;
    if (pb >= 0 && (key >> (kNumSlots + static_cast<unsigned>(pb)) & 1u))
      first += c;
  }

  CacheStats s;
  s.accesses = impl_->n;
  s.write_accesses = impl_->writes;
  s.read_accesses = impl_->n - impl_->writes;
  s.hits = hits;
  s.misses = impl_->n - hits;
  s.fill_bytes = s.misses * impl_->line_bytes;
  s.writeback_bytes = impl_->wb_bytes[k];
  s.stall_cycles =
      s.misses * impl_->timing.miss_stall_cycles(impl_->line_bytes);
  if (pred) {
    s.pred_accesses = impl_->n;
    s.pred_first_hits = first;
    s.pred_mispredicts = hits - first;
    s.stall_cycles += s.pred_mispredicts * impl_->timing.mispredict_penalty;
  }
  s.cycles = impl_->n * impl_->timing.hit_cycles + s.stall_cycles;
  return s;
}

}  // namespace stcache
