#include "cache/cache_model.hpp"

#include <bit>

#include "util/error.hpp"

namespace stcache {

bool CacheGeometry::valid() const {
  if (size_bytes == 0 || assoc == 0 || line_bytes == 0) return false;
  if (!std::has_single_bit(size_bytes) || !std::has_single_bit(assoc) ||
      !std::has_single_bit(line_bytes)) {
    return false;
  }
  if (line_bytes < 4) return false;
  return size_bytes >= assoc * line_bytes;
}

CacheModel::CacheModel(CacheGeometry geometry, TimingParams timing)
    : geometry_(geometry), timing_(timing) {
  if (!geometry_.valid()) {
    fail("CacheModel: invalid geometry (size=" +
         std::to_string(geometry_.size_bytes) +
         ", assoc=" + std::to_string(geometry_.assoc) +
         ", line=" + std::to_string(geometry_.line_bytes) + ")");
  }
  lines_.resize(static_cast<std::size_t>(geometry_.num_sets()) * geometry_.assoc);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(geometry_.line_bytes));
  set_mask_ = geometry_.num_sets() - 1;
}

CacheModel::AccessResult CacheModel::access(std::uint32_t addr, bool is_write) {
  ++tick_;
  ++stats_.accesses;
  if (is_write) ++stats_.write_accesses;
  else ++stats_.read_accesses;

  const std::uint32_t block = block_of(addr);
  const std::uint32_t set = set_of(block);
  Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.assoc];

  Line* hit_line = nullptr;
  for (std::uint32_t w = 0; w < geometry_.assoc; ++w) {
    if (base[w].valid && base[w].block == block) {
      hit_line = &base[w];
      break;
    }
  }

  AccessResult result;
  if (hit_line != nullptr) {
    ++stats_.hits;
    hit_line->last_use = tick_;
    hit_line->dirty = hit_line->dirty || is_write;
    result.hit = true;
    result.cycles = timing_.hit_cycles;
  } else {
    ++stats_.misses;
    // Victim: first invalid way, else LRU.
    Line* victim = &base[0];
    for (std::uint32_t w = 0; w < geometry_.assoc; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].last_use < victim->last_use) victim = &base[w];
    }
    if (victim->valid && victim->dirty) {
      stats_.writeback_bytes += geometry_.line_bytes;
    }
    *victim = Line{block, tick_, true, is_write};
    stats_.fill_bytes += geometry_.line_bytes;
    result.hit = false;
    const std::uint32_t stall = timing_.miss_stall_cycles(geometry_.line_bytes);
    result.cycles = timing_.hit_cycles + stall;
    stats_.stall_cycles += stall;
  }
  stats_.cycles += result.cycles;
  return result;
}

bool CacheModel::probe(std::uint32_t addr) const {
  const std::uint32_t block = block_of(addr);
  const std::uint32_t set = set_of(block);
  const Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.assoc];
  for (std::uint32_t w = 0; w < geometry_.assoc; ++w) {
    if (base[w].valid && base[w].block == block) return true;
  }
  return false;
}

std::uint64_t CacheModel::flush() {
  std::uint64_t dirty = 0;
  for (Line& line : lines_) {
    if (line.valid && line.dirty) ++dirty;
    line = Line{};
  }
  stats_.reconfig_writeback_bytes += dirty * geometry_.line_bytes;
  return dirty;
}

}  // namespace stcache
