#include "cache/nested_sweep.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>

#include "util/error.hpp"

namespace stcache {

namespace {

// Packed-record layout, shared with FastCacheSim/StackSweepSim
// (trace/replay.hpp pack_stream).
constexpr std::uint32_t kWriteBit = 0x8000'0000u;
constexpr std::uint32_t kBlockMask = 0x7FFF'FFFFu;

void check_geometry(const CacheGeometry& g) {
  if (!g.valid()) {
    fail("invalid geometry (size=" + std::to_string(g.size_bytes) +
         ", assoc=" + std::to_string(g.assoc) +
         ", line=" + std::to_string(g.line_bytes) + ")");
  }
  if (g.line_bytes < 16) {
    fail("sub-16 B line geometry cannot replay a packed 16 B-block stream");
  }
}

}  // namespace

// --- FastGeomSim -------------------------------------------------------------

FastGeomSim::FastGeomSim(const CacheGeometry& g, TimingParams timing)
    : geometry_(g), timing_(timing) {
  check_geometry(g);
  line_log_ = static_cast<std::uint32_t>(std::countr_zero(g.line_bytes)) - 4;
  set_mask_ = g.num_sets() - 1;
  ways_ = g.assoc;
  const std::size_t slots = static_cast<std::size_t>(g.num_sets()) * ways_;
  line_.assign(slots, kInvalidLine);
  last_.assign(slots, 0);
  dirty_.assign(slots, 0);
}

void FastGeomSim::replay(std::span<const std::uint32_t> packed) {
  const std::uint32_t W = ways_;
  for (const std::uint32_t word : packed) {
    const std::uint32_t is_write = word >> 31;
    const std::uint32_t line = (word & kBlockMask) >> line_log_;
    const std::size_t base =
        static_cast<std::size_t>(line & set_mask_) * W;
    std::uint32_t* const blk = &line_[base];
    std::uint64_t* const lu = &last_[base];
    ++tick_;
    ++n_;
    writes_ += is_write;
    std::uint32_t w = 0;
    while (w < W && blk[w] != line) ++w;
    if (w < W) {
      ++hits_;
      lu[w] = tick_;
      dirty_[base + w] |= static_cast<std::uint8_t>(is_write);
      continue;
    }
    // Victim: first invalid way (last-use 0), else true LRU — one min scan,
    // since every valid tick is >= 1 and strict < keeps the first minimum,
    // exactly CacheModel's first-invalid-else-LRU choice.
    std::uint32_t v = 0;
    for (std::uint32_t i = 1; i < W; ++i) {
      if (lu[i] < lu[v]) v = i;
    }
    wb_lines_ += (lu[v] != 0) & dirty_[base + v];
    blk[v] = line;
    lu[v] = tick_;
    dirty_[base + v] = static_cast<std::uint8_t>(is_write);
  }
}

CacheStats FastGeomSim::stats() const {
  CacheStats s;
  s.accesses = n_;
  s.write_accesses = writes_;
  s.read_accesses = n_ - writes_;
  s.hits = hits_;
  s.misses = n_ - hits_;
  s.fill_bytes = s.misses * geometry_.line_bytes;
  s.writeback_bytes = wb_lines_ * geometry_.line_bytes;
  const std::uint32_t stall = timing_.miss_stall_cycles(geometry_.line_bytes);
  s.stall_cycles = s.misses * stall;
  s.cycles = n_ * timing_.hit_cycles + s.stall_cycles;
  return s;
}

// --- NestedSweepSim ----------------------------------------------------------

NestedSweepSim::NestedSweepSim(std::span<const CacheGeometry> geoms,
                               TimingParams timing)
    : timing_(timing) {
  if (geoms.empty()) fail("NestedSweepSim: empty geometry bank");
  line_bytes_ = geoms.front().line_bytes;
  // Levels: one per distinct set count, each simulated at the largest
  // associativity any family member requests there.
  std::map<std::uint32_t, std::uint32_t> max_ways;
  for (const CacheGeometry& g : geoms) {
    check_geometry(g);
    if (g.line_bytes != line_bytes_) {
      fail("NestedSweepSim: mixed line sizes in one traversal");
    }
    if (g.assoc > 64) {
      fail("NestedSweepSim: associativity beyond the 64-way dirty-mask "
           "budget");
    }
    std::uint32_t& w = max_ways[g.num_sets()];
    w = std::max(w, g.assoc);
  }
  line_log_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes_)) - 4;
  nlev_ = static_cast<std::uint32_t>(max_ways.size());
  if (nlev_ > 24) fail("NestedSweepSim: too many set-count levels");
  all_mask_ = (1u << nlev_) - 1;

  levels_.reserve(nlev_);
  std::uint32_t hist_off = 0, wb_off = 0;
  for (const auto& [sets, ways] : max_ways) {  // std::map: ascending sets
    Level lev;
    lev.sets = sets;
    lev.lg = static_cast<std::uint32_t>(std::countr_zero(sets));
    lev.ways = ways;
    lev.full = ways == 64 ? ~0ull : (1ull << ways) - 1;
    lev.hist_off = hist_off;
    lev.wb_off = wb_off;
    hist_off += ways + 1;
    wb_off += ways;
    levels_.push_back(lev);
  }
  hist_.assign(hist_off, 0);
  wb_.assign(wb_off, 0);

  for (std::uint32_t z = 0; z < 32; ++z) {
    std::uint8_t m = 0;
    for (const Level& lev : levels_) m += lev.lg <= z;
    mlev_[z] = m;
  }

  // Pool capacity per coarse group: each level ℓ contributes at most
  // (sets_ℓ / groups) sets of ways_ℓ resident lines to a group, plus one
  // slot for the in-flight line between allocation and eviction sweep.
  groups_ = levels_.front().sets;
  gmask_ = groups_ - 1;
  std::uint64_t cap = 1;
  for (const Level& lev : levels_) {
    cap += static_cast<std::uint64_t>(lev.sets / groups_) * lev.ways;
  }
  if (cap > 0xFFFF) {
    fail("NestedSweepSim: per-group pool exceeds the 16-bit index budget");
  }
  cap_ = static_cast<std::uint32_t>(cap);

  const std::size_t entries = static_cast<std::size_t>(groups_) * cap_;
  line_.assign(entries, 0);
  last_.assign(entries, 0);
  res_.assign(entries, 0);
  dirty_.assign(entries * nlev_, 0);
  count_.assign(groups_, 0);
  last_line_.assign(groups_, kNone);  // no real line is 0xFFFFFFFF
  last_idx_.assign(groups_, 0);
  occ_.resize(nlev_);
  newer_.resize(nlev_);
  vict_.resize(nlev_);
  vmin_.resize(nlev_);
}

void NestedSweepSim::replay(std::span<const std::uint32_t> packed) {
  if (packed.size() > 0xFFFF'FFFFull - tick_) {
    fail("NestedSweepSim: stream exceeds the 32-bit tick budget");
  }
  for (const std::uint32_t word : packed) {
    const bool is_write = (word & kWriteBit) != 0;
    const std::uint32_t line = (word & kBlockMask) >> line_log_;
    const std::uint32_t g = line & gmask_;
    ++tick_;
    ++n_;
    writes_ += is_write;
    if (line == last_line_[g]) {
      // The group's most recent line is the most recent of every nested
      // set it occupies: depth 0 (a hit) at all levels, no evictions, no
      // epochs ending. Only a write touches the dirty masks.
      const std::uint32_t e = g * cap_ + last_idx_[g];
      ++repeat_hits_;
      last_[e] = tick_;
      if (is_write) {
        std::uint64_t* const d = &dirty_[static_cast<std::size_t>(e) * nlev_];
        for (std::uint32_t l = 0; l < nlev_; ++l) d[l] = levels_[l].full;
      }
      continue;
    }
    slow(line, g, is_write);
  }
}

void NestedSweepSim::slow(const std::uint32_t line, const std::uint32_t g,
                          const bool is_write) {
  const std::uint32_t seg = g * cap_;
  std::uint32_t cnt = count_[g];

  // Pass 1: the accessed line's pool entry, if any.
  std::uint32_t x = kNone;
  for (std::uint32_t i = 0; i < cnt; ++i) {
    if (line_[seg + i] == line) {
      x = i;
      break;
    }
  }
  const std::uint32_t xres = x != kNone ? res_[seg + x] : 0;
  const std::uint32_t xlast = x != kNone ? last_[seg + x] : 0;

  // Pass 2: per level, occupancy of the accessed set, the stack depth
  // (residents touched after the accessed line) and the LRU victim — all
  // from pre-access state in one scan of the segment. An entry matches
  // the first mlev_[countr_zero(diff)] levels (nested masks) and
  // contributes to exactly the levels it is resident in.
  for (std::uint32_t l = 0; l < nlev_; ++l) {
    occ_[l] = 0;
    newer_[l] = 0;
    vict_[l] = kNone;
    vmin_[l] = kNone;
  }
  for (std::uint32_t i = 0; i < cnt; ++i) {
    const std::uint32_t diff = line_[seg + i] ^ line;
    if (diff == 0) continue;  // the line itself: never newer, never a victim
    std::uint32_t r =
        res_[seg + i] & ((1u << mlev_[std::countr_zero(diff)]) - 1u);
    const std::uint32_t lu = last_[seg + i];
    const std::uint32_t nw = lu > xlast;
    while (r != 0) {
      const std::uint32_t l = static_cast<std::uint32_t>(std::countr_zero(r));
      r &= r - 1;
      ++occ_[l];
      newer_[l] += nw;
      if (lu < vmin_[l]) {
        vmin_[l] = lu;
        vict_[l] = i;
      }
    }
  }

  // The line needs a pool entry before the per-level resolution (which
  // writes its residency and dirty state). Allocation cannot disturb pass
  // 2's results: the new entry starts non-resident everywhere.
  if (x == kNone) {
    if (cnt >= cap_) fail("NestedSweepSim: line pool overflow");
    x = cnt;
    line_[seg + x] = line;
    res_[seg + x] = 0;
    std::memset(&dirty_[static_cast<std::size_t>(seg + x) * nlev_], 0,
                sizeof(std::uint64_t) * nlev_);
    ++cnt;
  }

  std::uint64_t* const xd = &dirty_[static_cast<std::size_t>(seg + x) * nlev_];
  bool freed = false;
  for (std::uint32_t l = 0; l < nlev_; ++l) {
    const Level& lev = levels_[l];
    std::uint64_t d = xd[l];
    if ((xres >> l) & 1u) {
      // Hit at stack depth newer_[l] (< ways: the maximal sim would have
      // evicted a deeper line). Configs w <= depth evicted the line since
      // its last touch: settle their dirty epochs now.
      const std::uint32_t depth = newer_[l];
      if (depth >= lev.ways) fail("NestedSweepSim: depth exceeds residency");
      ++hist_[lev.hist_off + depth];
      const std::uint64_t low = (1ull << depth) - 1;
      std::uint64_t ended = d & low;
      while (ended != 0) {
        ++wb_[lev.wb_off + std::countr_zero(ended)];
        ended &= ended - 1;
      }
      xd[l] = is_write ? lev.full : d & ~low;
    } else {
      // Miss: every (sets, w) config at this level fills the line; the
      // maximal simulation evicts its LRU resident if the set is full
      // (all smaller w evicted theirs earlier — already settled lazily or
      // below when their line leaves the maximal sim).
      ++hist_[lev.hist_off + lev.ways];
      if (occ_[l] >= lev.ways) {
        const std::size_t v =
            static_cast<std::size_t>(seg + vict_[l]) * nlev_ + l;
        std::uint64_t vd = dirty_[v];
        while (vd != 0) {
          ++wb_[lev.wb_off + std::countr_zero(vd)];
          vd &= vd - 1;
        }
        dirty_[v] = 0;
        res_[seg + vict_[l]] &= ~(1u << l);
        freed |= res_[seg + vict_[l]] == 0;
      }
      xd[l] = is_write ? lev.full : 0;
    }
  }
  res_[seg + x] = all_mask_;
  last_[seg + x] = tick_;

  // Swap-remove entries evicted from their last level; the accessed line
  // is resident everywhere, so it survives (but may move).
  if (freed) {
    std::uint32_t i = 0;
    while (i < cnt) {
      if (res_[seg + i] != 0) {
        ++i;
        continue;
      }
      --cnt;
      if (i != cnt) {
        line_[seg + i] = line_[seg + cnt];
        last_[seg + i] = last_[seg + cnt];
        res_[seg + i] = res_[seg + cnt];
        std::memcpy(&dirty_[static_cast<std::size_t>(seg + i) * nlev_],
                    &dirty_[static_cast<std::size_t>(seg + cnt) * nlev_],
                    sizeof(std::uint64_t) * nlev_);
        if (x == cnt) x = i;
      }
    }
  }
  count_[g] = static_cast<std::uint16_t>(cnt);
  last_line_[g] = line;
  last_idx_[g] = static_cast<std::uint16_t>(x);
}

void NestedSweepSim::add_totals(Totals& t) const {
  if (t.hist.empty() && t.wb.empty()) {
    t.hist.resize(hist_.size());
    t.wb.resize(wb_.size());
  } else if (t.hist.size() != hist_.size() || t.wb.size() != wb_.size()) {
    fail("NestedSweepSim: merging totals of a different family");
  }
  t.n += n_;
  t.writes += writes_;
  t.repeat_hits += repeat_hits_;
  for (std::size_t i = 0; i < hist_.size(); ++i) t.hist[i] += hist_[i];
  for (std::size_t i = 0; i < wb_.size(); ++i) t.wb[i] += wb_[i];

  // Still-open dirty bits whose (level, w) eviction already happened but
  // whose line was never touched again: CacheModel counted those
  // write-backs at eviction time. A bit w-1 belongs to an ended epoch iff
  // the line's CURRENT depth at the level is >= w; deeper bits are lines
  // still resident in (sets, w) — measure_geometry never flushes, so they
  // owe nothing. Pure read of the pool: feeding may continue after.
  for (std::uint32_t g = 0; g < groups_; ++g) {
    const std::uint32_t seg = g * cap_;
    const std::uint32_t cnt = count_[g];
    for (std::uint32_t i = 0; i < cnt; ++i) {
      const std::uint32_t r = res_[seg + i];
      const std::uint64_t* const d =
          &dirty_[static_cast<std::size_t>(seg + i) * nlev_];
      for (std::uint32_t l = 0; l < nlev_; ++l) {
        if (((r >> l) & 1u) == 0 || d[l] == 0) continue;
        const Level& lev = levels_[l];
        const std::uint32_t smask = lev.sets - 1;
        std::uint32_t depth = 0;
        for (std::uint32_t j = 0; j < cnt; ++j) {
          const std::uint32_t diff = line_[seg + j] ^ line_[seg + i];
          depth += diff != 0 && (diff & smask) == 0 &&
                   ((res_[seg + j] >> l) & 1u) != 0 &&
                   last_[seg + j] > last_[seg + i];
        }
        std::uint64_t ended = d[l] & ((1ull << depth) - 1);
        while (ended != 0) {
          ++t.wb[lev.wb_off + std::countr_zero(ended)];
          ended &= ended - 1;
        }
      }
    }
  }
}

const NestedSweepSim::Level& NestedSweepSim::level_of(
    const CacheGeometry& g) const {
  if (g.line_bytes == line_bytes_ && g.valid()) {
    for (const Level& lev : levels_) {
      if (lev.sets == g.num_sets()) {
        if (g.assoc <= lev.ways) return lev;
        break;
      }
    }
  }
  fail("NestedSweepSim: geometry " + std::to_string(g.size_bytes) + "/" +
       std::to_string(g.assoc) + "w/" + std::to_string(g.line_bytes) +
       "B is outside this traversal's family");
}

CacheStats NestedSweepSim::stats_from(const Totals& t,
                                      const CacheGeometry& g) const {
  const Level& lev = level_of(g);
  CacheStats s;
  if (t.n == 0) return s;
  std::uint64_t hits = t.repeat_hits;
  for (std::uint32_t d = 0; d < g.assoc; ++d) hits += t.hist[lev.hist_off + d];
  s.accesses = t.n;
  s.write_accesses = t.writes;
  s.read_accesses = t.n - t.writes;
  s.hits = hits;
  s.misses = t.n - hits;
  s.fill_bytes = s.misses * line_bytes_;
  s.writeback_bytes = t.wb[lev.wb_off + g.assoc - 1] * line_bytes_;
  const std::uint32_t stall = timing_.miss_stall_cycles(line_bytes_);
  s.stall_cycles = s.misses * stall;
  s.cycles = t.n * timing_.hit_cycles + s.stall_cycles;
  return s;
}

CacheStats NestedSweepSim::stats(const CacheGeometry& g) const {
  Totals t;
  add_totals(t);
  return stats_from(t, g);
}

}  // namespace stcache
