// Configuration space of the paper's highly configurable cache.
//
// The platform cache (Zhang/Vahid ISCA'03, used by the DATE'04 self-tuning
// work) is built from four 2 KB banks with a 16 B physical line. Three
// parameters are configurable:
//
//   total size     2 / 4 / 8 KB   (way shutdown powers banks off)
//   associativity  1 / 2 / 4 way  (way concatenation fuses banks into one
//                                  logical way, lengthening the index)
//   line size      16 / 32 / 64 B (line concatenation: a miss fills 1/2/4
//                                  physical lines)
//   way prediction on / off       (only meaningful for associativity > 1)
//
// Not all combinations are legal: size is reduced by shutting ways down, so
// a 4 KB cache supports at most 2 ways and a 2 KB cache is direct-mapped
// only. That yields 6 size/associativity pairs x 3 line sizes = 18 base
// configurations, plus way prediction on for the 9 set-associative ones:
// 27 configurations total, matching the paper's count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace stcache {

enum class CacheSizeKB : std::uint8_t { k2 = 2, k4 = 4, k8 = 8 };
enum class Assoc : std::uint8_t { w1 = 1, w2 = 2, w4 = 4 };
enum class LineBytes : std::uint8_t { b16 = 16, b32 = 32, b64 = 64 };

// Ordered value lists as the heuristic walks them (smallest first — the
// flush-free direction; see Section 3.3 of the paper).
inline constexpr std::array<CacheSizeKB, 3> kCacheSizes = {
    CacheSizeKB::k2, CacheSizeKB::k4, CacheSizeKB::k8};
inline constexpr std::array<Assoc, 3> kAssocs = {Assoc::w1, Assoc::w2,
                                                 Assoc::w4};
inline constexpr std::array<LineBytes, 3> kLineSizes = {
    LineBytes::b16, LineBytes::b32, LineBytes::b64};

// Physical organization constants of the platform cache.
inline constexpr std::uint32_t kBankBytes = 2048;     // one way bank
inline constexpr std::uint32_t kNumBanks = 4;         // 8 KB total
inline constexpr std::uint32_t kPhysicalLineBytes = 16;
inline constexpr std::uint32_t kRowsPerBank = kBankBytes / kPhysicalLineBytes;  // 128

struct CacheConfig {
  CacheSizeKB size_kb = CacheSizeKB::k2;
  Assoc assoc = Assoc::w1;
  LineBytes line = LineBytes::b16;
  bool way_prediction = false;

  // --- derived quantities -------------------------------------------------
  std::uint32_t size_bytes() const {
    return static_cast<std::uint32_t>(size_kb) * 1024u;
  }
  std::uint32_t ways() const { return static_cast<std::uint32_t>(assoc); }
  std::uint32_t line_bytes() const { return static_cast<std::uint32_t>(line); }
  std::uint32_t sublines_per_line() const {
    return line_bytes() / kPhysicalLineBytes;
  }
  // Number of 2 KB banks that remain powered.
  std::uint32_t banks_powered() const { return size_bytes() / kBankBytes; }
  // Banks fused into one logical way by way concatenation.
  std::uint32_t banks_per_way() const { return banks_powered() / ways(); }
  // Sets as seen by the index function (each set spans `ways()` physical
  // lines, one per logical way).
  std::uint32_t num_sets() const {
    return size_bytes() / (ways() * kPhysicalLineBytes);
  }
  std::uint32_t index_bits() const;

  // A size/associativity pair is legal iff the associativity does not
  // exceed the number of powered banks (shutdown removes ways).
  bool valid() const;

  // Canonical name, e.g. "8K_4W_32B" or "8K_4W_32B_P" with way prediction.
  std::string name() const;

  // Parse a canonical name back into a config. Throws stcache::Error on
  // malformed or illegal configurations.
  static CacheConfig parse(const std::string& name);

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

// All legal configurations in a deterministic order (size-major, then line,
// then associativity, then prediction): 27 entries.
const std::vector<CacheConfig>& all_configs();

// The 18 configurations with way prediction off (the size/line/assoc
// space explored by Figures 3 and 4).
const std::vector<CacheConfig>& base_configs();

// The paper's reference point: 8 KB 4-way, 32 B line, no prediction.
CacheConfig base_cache();

std::string to_string(CacheSizeKB s);
std::string to_string(Assoc a);
std::string to_string(LineBytes l);

}  // namespace stcache
