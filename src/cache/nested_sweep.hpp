// Generalized oneshot stack-distance sweep over an arbitrary nested-mask
// size family, plus the runtime-parameterized fast engine it falls back to.
//
// StackSweepSim (stack_sweep.hpp) evaluates the paper's 27-configuration
// platform in one traversal per line size, but its slot layout — the
// 128 ⊂ 256 ⊂ 512-set family, per-slot way budgets, way-prediction bits,
// subline offsets — is baked in at compile time. The scaled design spaces
// (core/scaled_space.hpp) need the same trick over families chosen at run
// time: ScaledSpace::embedded_32k() alone holds 16 (size, ways) geometries
// per line size, and the 10²–10³-config spaces ROADMAP item 2 aims at are
// out of reach for per-config replay.
//
// NestedSweepSim derives the layout at construction instead. Given a bank
// of CacheGeometry (generic CacheModel caches: monolithic lines,
// write-back write-allocate, true LRU — no sublines, no way prediction,
// no victim buffer) sharing one line size, it groups them into LEVELS by
// set count. Power-of-two set counts always nest: the index mask of s
// sets at line granularity is s - 1, so s₀ < s₁ implies mask₀ ⊂ mask₁ and
// every s₁-set is a refinement of an s₀-set. Mattson's inclusion property
// then gives, per access, one stack distance d_ℓ per level (computed in
// the recency order of the maximal (s_ℓ, W_ℓ) simulation, where W_ℓ is
// the largest associativity requested at that level), with
//
//     d_{s₀} >= d_{s₁} >= ... (coarser sets ⇒ deeper stacks)
//
// and every (s_ℓ, w <= W_ℓ) LRU cache hitting exactly when d_ℓ < w. One
// traversal therefore yields a depth histogram per level from which the
// hit counts of EVERY family member follow exactly.
//
// CacheModel's LRU stamp is the line's last-access tick — updated on hits
// AND fills — so recency order is a global property of the access stream,
// identical in every simulated config. That lets one pooled line store
// serve all levels: entries live in segments keyed by the COARSEST set
// index (every finer set is a subset of a coarse set, so all the state a
// lookup can touch sits in one segment), each entry carrying one 32-bit
// last-access tick, a residency bitmask over levels, and per-level dirty
// masks over ways for exact write-back accounting:
//
//   bit w-1 of dirty[level] set  ⇔  the line's current residency epoch in
//   the (sets_ℓ, w) config is dirty and its eventual write-back has not
//   been counted yet.
//
// On an access at depth d, configs w <= d evicted the line since its last
// touch — their set dirty bits are settled into per-(level, w) write-back
// counters and the masks restart (full on a write, cleared low bits on a
// read). Eviction from the maximal simulation settles all outstanding
// bits; stats-time finalization settles epochs whose eviction happened
// but whose line was never touched again (non-destructively, so stats
// may be taken mid-stream and feeding may continue).
//
// The produced CacheStats is bit-identical to CacheModel replay of the
// same stream for every family member — tests/replay_equivalence_test.cpp
// and tests/stack_sweep_test.cpp enforce this against the unbounded LRU
// oracle and the other engines. Totals are plain integers/vectors, so the
// set-partitioned parallel sweep (trace/replay.hpp) merges shard replicas
// exactly, same as the platform kernel.
//
// What falls OUTSIDE this kernel (the fallback matrix, see
// docs/performance.md §6): sub-16 B lines (a packed word is a 16 B block,
// the stream granularity), mixed line sizes in one traversal (the bank
// layer groups by line-size family), singleton families (nothing shared
// to amortize — FastGeomSim costs less), and any non-LRU/write-through/
// victim-buffered organization (those exist only in the platform
// CacheConfig world, which keeps its own engines).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/stats.hpp"

namespace stcache {

// Throughput twin of CacheModel for cold fixed-geometry replay of packed
// streams: SoA line store, precomputed mapping constants, no per-access
// allocation. Runtime-parameterized (the scaled spaces are not a closed
// enum like the platform's CacheConfig, so compile-time specialization is
// off the table) but still several times the reference throughput.
// Requires line_bytes >= 16: packed words carry 16 B block numbers.
class FastGeomSim {
 public:
  explicit FastGeomSim(const CacheGeometry& g, TimingParams timing = {});

  // Replay a packed stream (state and stats accumulate across calls).
  void replay(std::span<const std::uint32_t> packed);

  CacheStats stats() const;
  const CacheGeometry& geometry() const { return geometry_; }

 private:
  // Real line numbers are at most 2^31 - 1 >> line_log_, so the sentinel
  // doubles as the valid bit: a probe is one load+compare per way.
  static constexpr std::uint32_t kInvalidLine = 0xFFFF'FFFFu;

  CacheGeometry geometry_;
  TimingParams timing_;
  std::uint32_t line_log_ = 0;  // log2(line_bytes / 16)
  std::uint32_t set_mask_ = 0;
  std::uint32_t ways_ = 1;
  std::vector<std::uint32_t> line_;   // [set * ways + way]
  std::vector<std::uint64_t> last_;   // last-use tick; 0 = invalid way
  std::vector<std::uint8_t> dirty_;
  std::uint64_t tick_ = 0;
  std::uint64_t n_ = 0, writes_ = 0, hits_ = 0, wb_lines_ = 0;
};

class NestedSweepSim {
 public:
  // Exact integer accumulators: two sims constructed over the same bank
  // add their Totals to merge partial sweeps losslessly (the parallel
  // sweep's shard replicas; see BankAccumulator in trace/replay.hpp).
  struct Totals {
    std::uint64_t n = 0;
    std::uint64_t writes = 0;
    // Repeat-fast-path hits: depth 0 at every level, folded into each
    // level's hit count at stats_from() time instead of paying one
    // histogram increment per level on the hot path.
    std::uint64_t repeat_hits = 0;
    std::vector<std::uint64_t> hist;  // depth histograms, level-flattened
    std::vector<std::uint64_t> wb;    // write-back lines per (level, ways)
  };

  // All geometries must be valid(), share one line size >= 16 B, and stay
  // within the 64-way dirty-mask budget. Throws stcache::Error otherwise —
  // callers (BankAccumulator) route such banks to the fallback engines.
  explicit NestedSweepSim(std::span<const CacheGeometry> geoms,
                          TimingParams timing = {});

  // Replay a packed stream; state accumulates across calls so the
  // streaming pipeline can feed chunk by chunk.
  void replay(std::span<const std::uint32_t> packed);

  // Fold this sim's counters into `t` (sized on first use; shapes must
  // match across sims of the same family). Includes the stats-time
  // settlement of still-open dirty epochs, computed without mutating the
  // sim: stats may be taken mid-stream.
  void add_totals(Totals& t) const;

  // Exact CacheStats for one family member from merged totals —
  // bit-identical to CacheModel replay of the concatenated stream. `g`
  // must match the construction line size, one of the level set counts,
  // and ways <= that level's maximal ways (any such geometry works, even
  // if it was not in the constructor bank — the histogram covers it).
  CacheStats stats_from(const Totals& t, const CacheGeometry& g) const;

  // Convenience for single-sim use (tests): totals of this sim alone.
  CacheStats stats(const CacheGeometry& g) const;

  std::uint32_t num_levels() const { return nlev_; }

 private:
  struct Level {
    std::uint32_t sets = 0;  // set count at line granularity
    std::uint32_t lg = 0;    // log2(sets)
    std::uint32_t ways = 0;  // maximal associativity simulated here
    std::uint64_t full = 0;  // all `ways` dirty bits set
    std::uint32_t hist_off = 0;  // ways + 1 bins: depths 0..ways-1, miss
    std::uint32_t wb_off = 0;    // ways counters: w = 1..ways
  };

  static constexpr std::uint32_t kNone = 0xFFFF'FFFFu;

  void slow(std::uint32_t line, std::uint32_t g, bool is_write);
  const Level& level_of(const CacheGeometry& g) const;

  TimingParams timing_;
  std::uint32_t line_bytes_ = 0;
  std::uint32_t line_log_ = 0;  // log2(line_bytes / 16)
  std::uint32_t nlev_ = 0;
  std::uint32_t all_mask_ = 0;  // (1 << nlev_) - 1
  std::uint32_t groups_ = 0;    // coarsest set count = pool segments
  std::uint32_t gmask_ = 0;
  std::uint32_t cap_ = 0;  // pool entries per segment
  std::vector<Level> levels_;  // ascending set count (coarsest first)
  // countr_zero(line ^ other_line) -> number of levels whose index mask
  // the two lines collide under (levels are mask-nested, so "the first m
  // levels"). Indexed by bit position 0..31.
  std::uint8_t mlev_[32] = {};

  // Pooled line store, segment-per-coarse-group SoA with swap-remove
  // compaction (an entry is freed when evicted from its last level).
  std::vector<std::uint32_t> line_;
  std::vector<std::uint32_t> last_;
  std::vector<std::uint32_t> res_;     // residency bitmask over levels
  std::vector<std::uint64_t> dirty_;   // [entry * nlev_ + level]
  std::vector<std::uint16_t> count_;   // live entries per segment
  std::vector<std::uint32_t> last_line_;  // repeat fast path, per group
  std::vector<std::uint16_t> last_idx_;
  // Per-access scratch, one slot per level (members so slow() allocates
  // nothing).
  std::vector<std::uint32_t> occ_, newer_, vict_, vmin_;

  std::uint32_t tick_ = 0;
  std::uint64_t n_ = 0, writes_ = 0, repeat_hits_ = 0;
  std::vector<std::uint64_t> hist_, wb_;
};

}  // namespace stcache
