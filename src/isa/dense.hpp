// Dense execution form of a decoded instruction.
//
// The reference interpreter (sim/cpu.hpp) dispatches a 16-byte `Instr` per
// step through a compiler-generated switch. The fast interpreter
// (sim/fast_cpu.hpp) instead predecodes the whole text segment into this
// 8-byte form: a handler index (the `Op` value, contiguous from 0, plus
// one synthetic "bad slot" handler for words that do not decode) and the
// three operand bytes + 32-bit immediate its handler consumes. Immediates
// are pre-massaged so handlers do no field selection at run time:
//
//   R-type ALU         a=rd  b=rs  c=rt            (imm = shamt for shifts)
//   I-type ALU         a=rt  b=rs  imm = sign-extended immediate
//   branch             b=rs  c=rt  imm = 4 + (offset << 2)   (pc += imm)
//   load/store         a=rt  b=rs  imm = byte offset
//   j/jal              imm = target byte address
//   jr/jalr            a=rd  b=rs
//
// The handler index doubles as the label-table index for computed-goto
// dispatch, which is why kBadSlot must stay the last entry.
#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace stcache {

// Handler indices 0..kNumOps-1 are exactly Op values; kBadSlotHandler marks
// a text word that failed to decode (data interleaved with code, or a store
// that scribbled garbage over an instruction). Fetching it re-raises the
// word's decode error, like the reference's decode_ok_ bookkeeping.
inline constexpr std::uint8_t kNumOps = static_cast<std::uint8_t>(Op::kJal) + 1;
inline constexpr std::uint8_t kBadSlotHandler = kNumOps;
inline constexpr std::uint8_t kNumHandlers = kNumOps + 1;

struct DenseInstr {
  std::uint8_t h = kBadSlotHandler;  // Op value, or kBadSlotHandler
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;
  std::int32_t imm = 0;
};
static_assert(sizeof(DenseInstr) == 8, "DenseInstr must stay one dense word");

// True for instructions that end a straight-line run: branches, jumps and
// halt. Everything else (ALU, loads, stores) can execute inside a
// superblock without touching the program counter.
inline bool is_control(Op op) {
  return op == Op::kHalt || is_branch(op) || is_jump(op);
}

inline DenseInstr densify(const Instr& in) {
  DenseInstr d;
  d.h = static_cast<std::uint8_t>(in.op);
  if (is_branch(in.op)) {
    d.b = in.rs;
    d.c = in.rt;
    d.imm = 4 + (in.imm << 2);  // taken: pc += imm; not taken: pc += 4
  } else if (in.op == Op::kJ || in.op == Op::kJal) {
    d.imm = static_cast<std::int32_t>(in.target);
  } else if (is_load(in.op) || is_store(in.op)) {
    d.a = in.rt;
    d.b = in.rs;
    d.imm = in.imm;
  } else if (in.op == Op::kSll || in.op == Op::kSrl || in.op == Op::kSra) {
    d.a = in.rd;
    d.c = in.rt;
    d.imm = in.shamt;
  } else if (in.op == Op::kAddi || in.op == Op::kSlti || in.op == Op::kSltiu ||
             in.op == Op::kAndi || in.op == Op::kOri || in.op == Op::kXori ||
             in.op == Op::kLui) {
    d.a = in.rt;
    d.b = in.rs;
    d.imm = in.imm;
  } else {
    // R-type ALU, jr/jalr, halt.
    d.a = in.rd;
    d.b = in.rs;
    d.c = in.rt;
  }
  return d;
}

}  // namespace stcache
