// A compact 32-bit MIPS-like ISA.
//
// The paper collects per-benchmark cache access/miss counts with
// SimpleScalar's MIPS-like model. We stand up the equivalent substrate from
// scratch: a small RISC ISA with a real 32-bit binary encoding, a two-pass
// assembler (assembler.hpp), a disassembler, and an in-order ISS
// (sim/cpu.hpp). The workload kernels in src/workloads are written in this
// assembly, so the instruction-fetch and data address streams driving the
// cache experiments come from genuinely executed programs.
//
// Deliberate simplifications vs. real MIPS (documented here because they
// are visible to workload authors):
//  * mul/div/rem write a GPR directly; there are no HI/LO registers.
//  * Branches are fused compare-and-branch (blt/bge/bltu/bgeu exist as
//    first-class opcodes instead of slt+beq idioms).
//  * No branch delay slots.
//  * div/rem by zero produce 0 instead of trapping.
//  * halt is an instruction (funct 0x3f) instead of a syscall convention.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace stcache {

// Mnemonic-level operations.
enum class Op : std::uint8_t {
  // R-type ALU
  kAdd, kSub, kAnd, kOr, kXor, kNor, kSlt, kSltu,
  kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
  kMul, kMulhu, kDiv, kDivu, kRem, kRemu,
  kJr, kJalr, kHalt,
  // I-type ALU
  kAddi, kSlti, kSltiu, kAndi, kOri, kXori, kLui,
  // branches (I-type, PC-relative word offset)
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  // memory (I-type, offset(base))
  kLb, kLbu, kLh, kLhu, kLw, kSb, kSh, kSw,
  // jumps (J-type)
  kJ, kJal,
};

inline constexpr int kNumRegs = 32;

// Conventional register numbers (MIPS o32 names).
inline constexpr std::uint8_t kZero = 0, kAt = 1, kV0 = 2, kV1 = 3;
inline constexpr std::uint8_t kA0 = 4, kA1 = 5, kA2 = 6, kA3 = 7;
inline constexpr std::uint8_t kT0 = 8, kT1 = 9, kT2 = 10, kT3 = 11;
inline constexpr std::uint8_t kT4 = 12, kT5 = 13, kT6 = 14, kT7 = 15;
inline constexpr std::uint8_t kS0 = 16, kS1 = 17, kS2 = 18, kS3 = 19;
inline constexpr std::uint8_t kS4 = 20, kS5 = 21, kS6 = 22, kS7 = 23;
inline constexpr std::uint8_t kT8 = 24, kT9 = 25, kK0 = 26, kK1 = 27;
inline constexpr std::uint8_t kGp = 28, kSp = 29, kFp = 30, kRa = 31;

// One decoded instruction. Field usage depends on the operation class:
//   R-type ALU:    rd <- rs OP rt        (shifts-by-immediate use shamt)
//   I-type ALU:    rt <- rs OP imm
//   branch:        if (rs CMP rt) pc += 4 + imm*4
//   memory:        rt <-> mem[rs + imm]
//   jump:          pc <- target (byte address, must be word aligned)
struct Instr {
  Op op = Op::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t shamt = 0;
  std::int32_t imm = 0;        // sign-extended 16-bit immediate
  std::uint32_t target = 0;    // jump target (byte address)

  friend bool operator==(const Instr&, const Instr&) = default;
};

// Binary encoding <-> decoded form. encode() throws stcache::Error if a
// field is out of range (immediate does not fit 16 bits, misaligned jump
// target, ...). decode() throws on unknown opcode/funct patterns.
std::uint32_t encode(const Instr& instr);
Instr decode(std::uint32_t word);

// Instruction classification helpers used by the ISS and tests.
bool is_load(Op op);
bool is_store(Op op);
bool is_branch(Op op);
bool is_jump(Op op);
// Bytes accessed by a load/store op (1, 2 or 4).
std::uint32_t access_bytes(Op op);

// Mnemonic <-> Op.
std::string mnemonic(Op op);
std::optional<Op> parse_mnemonic(const std::string& name);

// Register name ("t0", "$t0", "r8", "$8") <-> number.
std::string reg_name(std::uint8_t reg);
std::optional<std::uint8_t> parse_reg(const std::string& name);

// Human-readable disassembly of one encoded word.
std::string disassemble(std::uint32_t word, std::uint32_t pc);

}  // namespace stcache
