#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>

#include "isa/isa.hpp"
#include "util/error.hpp"

namespace stcache {

std::uint32_t Program::end_address() const {
  std::uint32_t end = 0;
  for (const Segment& s : segments) {
    end = std::max(end, s.base + static_cast<std::uint32_t>(s.bytes.size()));
  }
  return end;
}

std::uint32_t Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) fail("Program::symbol: undefined symbol '" + name + "'");
  return it->second;
}

namespace {

struct Line {
  int number = 0;
  std::vector<std::string> labels;
  std::string head;                // directive or mnemonic (lowercased)
  std::vector<std::string> args;   // comma-separated operand strings
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

class Assembler {
 public:
  Assembler(const std::string& source, const std::string& unit)
      : unit_(unit) {
    split_lines(source);
  }

  Program run() {
    pass1();
    pass2();
    finalize();
    return std::move(program_);
  }

 private:
  // ---- error reporting ----------------------------------------------------
  [[noreturn]] void err(const Line& line, const std::string& msg) const {
    fail(unit_ + ":" + std::to_string(line.number) + ": " + msg);
  }

  // ---- lexing ---------------------------------------------------------------
  void split_lines(const std::string& source) {
    std::string current;
    int number = 1;
    auto flush = [&]() {
      parse_line(current, number);
      current.clear();
    };
    for (char c : source) {
      if (c == '\n') {
        flush();
        ++number;
      } else {
        current += c;
      }
    }
    flush();
  }

  void parse_line(const std::string& raw, int number) {
    std::string text = raw;
    // Strip comments ('#' or ';'), but not inside double-quoted strings
    // (.ascii operands may contain either character).
    bool in_str = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '"' && (i == 0 || text[i - 1] != '\\')) in_str = !in_str;
      if ((text[i] == '#' || text[i] == ';') && !in_str) {
        text = text.substr(0, i);
        break;
      }
    }
    text = trim(text);

    Line line;
    line.number = number;

    // Peel off leading labels.
    for (;;) {
      std::size_t i = 0;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      if (i > 0 && i < text.size() && text[i] == ':') {
        line.labels.push_back(text.substr(0, i));
        text = trim(text.substr(i + 1));
      } else {
        break;
      }
    }

    if (!text.empty()) {
      std::size_t i = 0;
      while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
      line.head = text.substr(0, i);
      std::transform(line.head.begin(), line.head.end(), line.head.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      std::string rest = trim(text.substr(i));
      // Split on commas at top level (no nesting in this syntax beyond
      // parentheses in memory operands, which never contain commas), but
      // never inside a double-quoted string (.ascii/.asciiz operands).
      std::string piece;
      bool in_string = false;
      for (char c : rest) {
        if (c == '"') in_string = !in_string;
        if (c == ',' && !in_string) {
          line.args.push_back(trim(piece));
          piece.clear();
        } else {
          piece += c;
        }
      }
      if (!trim(piece).empty()) line.args.push_back(trim(piece));
      for (const std::string& a : line.args) {
        if (a.empty()) err(line, "empty operand");
      }
    }

    if (!line.labels.empty() || !line.head.empty()) lines_.push_back(line);
  }

  // ---- expressions ----------------------------------------------------------
  // Evaluate an integer expression. `require_defined` controls whether an
  // unknown symbol is an error (pass 2 / immediate directives) or simply
  // reported as unresolved (pass 1 sizing never needs values of forward
  // labels, but .org/.space/.equ do).
  std::optional<std::int64_t> eval(const Line& line, const std::string& expr,
                                   bool require_defined) const {
    std::size_t pos = 0;
    auto out = parse_sum(line, expr, pos, require_defined);
    if (pos != expr.size()) err(line, "trailing junk in expression '" + expr + "'");
    return out;
  }

  std::optional<std::int64_t> parse_sum(const Line& line, const std::string& s,
                                        std::size_t& pos,
                                        bool require_defined) const {
    auto left = parse_term(line, s, pos, require_defined);
    for (;;) {
      while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
      if (pos >= s.size() || (s[pos] != '+' && s[pos] != '-')) break;
      char op = s[pos++];
      auto right = parse_term(line, s, pos, require_defined);
      if (!left || !right) {
        left = std::nullopt;
        continue;
      }
      left = op == '+' ? *left + *right : *left - *right;
    }
    return left;
  }

  std::optional<std::int64_t> parse_term(const Line& line, const std::string& s,
                                         std::size_t& pos,
                                         bool require_defined) const {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
    if (pos >= s.size()) err(line, "expected operand in expression '" + s + "'");

    // %hi(expr) / %lo(expr)
    if (s[pos] == '%') {
      std::size_t start = ++pos;
      while (pos < s.size() && std::isalpha(static_cast<unsigned char>(s[pos]))) ++pos;
      std::string fn = s.substr(start, pos - start);
      if (pos >= s.size() || s[pos] != '(') err(line, "expected '(' after %" + fn);
      ++pos;
      std::size_t depth = 1, inner_start = pos;
      while (pos < s.size() && depth > 0) {
        if (s[pos] == '(') ++depth;
        if (s[pos] == ')') --depth;
        ++pos;
      }
      if (depth != 0) err(line, "unbalanced parentheses in expression");
      std::string inner = s.substr(inner_start, pos - 1 - inner_start);
      auto v = eval(line, inner, require_defined);
      if (!v) return std::nullopt;
      auto u = static_cast<std::uint32_t>(*v);
      if (fn == "hi") return static_cast<std::int64_t>(u >> 16);
      if (fn == "lo") return static_cast<std::int64_t>(u & 0xffffu);
      err(line, "unknown operator %" + fn);
    }

    // Unary minus.
    if (s[pos] == '-') {
      ++pos;
      auto v = parse_term(line, s, pos, require_defined);
      if (!v) return std::nullopt;
      return -*v;
    }

    // Number.
    if (std::isdigit(static_cast<unsigned char>(s[pos]))) {
      std::int64_t value = 0;
      if (pos + 1 < s.size() && s[pos] == '0' && (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
        pos += 2;
        std::size_t start = pos;
        while (pos < s.size() && std::isxdigit(static_cast<unsigned char>(s[pos]))) {
          char c = static_cast<char>(std::tolower(s[pos]));
          value = value * 16 + (c <= '9' ? c - '0' : c - 'a' + 10);
          ++pos;
        }
        if (pos == start) err(line, "malformed hex literal");
      } else {
        while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
          value = value * 10 + (s[pos] - '0');
          ++pos;
        }
      }
      return value;
    }

    // Character literal.
    if (s[pos] == '\'') {
      if (pos + 2 >= s.size() || s[pos + 2] != '\'') err(line, "malformed char literal");
      std::int64_t v = static_cast<unsigned char>(s[pos + 1]);
      pos += 3;
      return v;
    }

    // Symbol.
    if (is_ident_char(s[pos]) && !std::isdigit(static_cast<unsigned char>(s[pos]))) {
      std::size_t start = pos;
      while (pos < s.size() && is_ident_char(s[pos])) ++pos;
      std::string name = s.substr(start, pos - start);
      auto it = symbols_.find(name);
      if (it != symbols_.end()) return static_cast<std::int64_t>(it->second);
      if (require_defined) err(line, "undefined symbol '" + name + "'");
      return std::nullopt;
    }

    err(line, "unexpected character '" + std::string(1, s[pos]) + "' in expression");
  }

  // ---- layout ---------------------------------------------------------------
  enum class Section { kText, kData };

  struct Cursor {
    std::uint32_t lc = 0;  // location counter
  };

  Cursor& cur() { return section_ == Section::kText ? text_ : data_; }
  const Cursor& cur() const { return section_ == Section::kText ? text_ : data_; }

  // Parse a double-quoted string operand with C-style escapes
  // (\n \t \0 \\ \").
  std::string string_literal(const Line& line, const std::string& a) const {
    if (a.size() < 2 || a.front() != '"' || a.back() != '"') {
      err(line, "expected a quoted string, got '" + a + "'");
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < a.size(); ++i) {
      char c = a[i];
      if (c == '\\' && i + 2 < a.size()) {
        ++i;
        switch (a[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: err(line, "unknown escape in string literal");
        }
      }
      out += c;
    }
    return out;
  }

  // Size in bytes this statement occupies (pass 1 and 2 must agree).
  std::uint32_t statement_size(const Line& line) {
    const std::string& h = line.head;
    if (h.empty()) return 0;
    if (h[0] == '.') {
      if (h == ".word") return 4 * static_cast<std::uint32_t>(line.args.size());
      if (h == ".ascii" || h == ".asciiz") {
        std::uint32_t total = 0;
        for (const std::string& a : line.args) {
          total += static_cast<std::uint32_t>(string_literal(line, a).size());
        }
        if (h == ".asciiz") total += static_cast<std::uint32_t>(line.args.size());
        return total;
      }
      if (h == ".half") return 2 * static_cast<std::uint32_t>(line.args.size());
      if (h == ".byte") return static_cast<std::uint32_t>(line.args.size());
      if (h == ".space") {
        auto v = eval(line, line.args.at(0), true);
        if (!v || *v < 0) err(line, ".space size must be a defined non-negative value");
        return static_cast<std::uint32_t>(*v);
      }
      return 0;  // .text/.data/.org/.align/.equ handled by the caller
    }
    if (h == "li" || h == "la") return 8;
    return 4;  // every other (pseudo-)instruction is one word
  }

  void advance_directive(const Line& line) {
    const std::string& h = line.head;
    if (h == ".text") {
      section_ = Section::kText;
    } else if (h == ".data") {
      section_ = Section::kData;
    } else if (h == ".org") {
      if (line.args.size() != 1) err(line, ".org takes one argument");
      auto v = eval(line, line.args[0], true);
      cur().lc = static_cast<std::uint32_t>(*v);
    } else if (h == ".align") {
      if (line.args.size() != 1) err(line, ".align takes one argument");
      auto v = eval(line, line.args[0], true);
      if (!v || *v <= 0 || (*v & (*v - 1)) != 0) err(line, ".align needs a power of two");
      auto a = static_cast<std::uint32_t>(*v);
      cur().lc = (cur().lc + a - 1) & ~(a - 1);
    } else if (h == ".equ") {
      if (line.args.size() != 2) err(line, ".equ takes NAME, value");
      auto v = eval(line, line.args[1], true);
      symbols_[line.args[0]] = static_cast<std::uint32_t>(*v);
    }
  }

  bool is_layout_directive(const std::string& h) {
    return h == ".text" || h == ".data" || h == ".org" || h == ".align" ||
           h == ".equ";
  }

  void pass1() {
    section_ = Section::kText;
    text_.lc = kDefaultTextBase;
    data_.lc = kDefaultDataBase;
    for (const Line& line : lines_) {
      for (const std::string& label : line.labels) {
        if (symbols_.count(label) != 0) err(line, "duplicate label '" + label + "'");
        symbols_[label] = cur().lc;
      }
      if (line.head.empty()) continue;
      if (is_layout_directive(line.head)) {
        advance_directive(line);
        // Labels on the same line as .org/.align bind BEFORE the directive;
        // that is surprising, so forbid it.
        if (!line.labels.empty() && (line.head == ".org" || line.head == ".align")) {
          err(line, "label and " + line.head + " on one line is ambiguous");
        }
        continue;
      }
      if (line.head[0] == '.' && line.head != ".word" && line.head != ".half" &&
          line.head != ".byte" && line.head != ".space" &&
          line.head != ".ascii" && line.head != ".asciiz") {
        err(line, "unknown directive '" + line.head + "'");
      }
      if (section_ == Section::kText && line.head[0] != '.' && cur().lc % 4 != 0) {
        err(line, "instruction at unaligned address");
      }
      cur().lc += statement_size(line);
    }
  }

  // ---- emission ---------------------------------------------------------------
  void open_segment(std::uint32_t base) {
    segments_.push_back(Segment{base, {}});
  }

  void emit_byte(std::uint8_t b) {
    segments_.back().bytes.push_back(b);
    ++cur().lc;
  }

  void emit_u16(std::uint32_t v) {
    emit_byte(static_cast<std::uint8_t>(v & 0xff));
    emit_byte(static_cast<std::uint8_t>((v >> 8) & 0xff));
  }

  void emit_u32(std::uint32_t v) {
    emit_u16(v & 0xffff);
    emit_u16(v >> 16);
  }

  // Ensure the active segment's write position equals the current section's
  // location counter; start a new segment otherwise (after .org/.align or a
  // section switch).
  void align_segment() {
    if (segments_.empty()) {
      open_segment(cur().lc);
      return;
    }
    const Segment& s = segments_.back();
    if (s.base + s.bytes.size() != cur().lc) open_segment(cur().lc);
  }

  void pass2() {
    section_ = Section::kText;
    text_.lc = kDefaultTextBase;
    data_.lc = kDefaultDataBase;
    for (const Line& line : lines_) {
      if (line.head.empty()) continue;
      if (is_layout_directive(line.head)) {
        advance_directive(line);
        continue;
      }
      align_segment();
      if (line.head[0] == '.') {
        emit_data_directive(line);
      } else {
        emit_instruction(line);
      }
    }
  }

  void emit_data_directive(const Line& line) {
    const std::string& h = line.head;
    if (h == ".word") {
      for (const std::string& a : line.args) {
        emit_u32(static_cast<std::uint32_t>(*eval(line, a, true)));
      }
    } else if (h == ".half") {
      for (const std::string& a : line.args) {
        auto v = *eval(line, a, true);
        if (v < -32768 || v > 65535) err(line, ".half value out of range");
        emit_u16(static_cast<std::uint32_t>(v) & 0xffffu);
      }
    } else if (h == ".byte") {
      for (const std::string& a : line.args) {
        auto v = *eval(line, a, true);
        if (v < -128 || v > 255) err(line, ".byte value out of range");
        emit_byte(static_cast<std::uint8_t>(v));
      }
    } else if (h == ".ascii" || h == ".asciiz") {
      for (const std::string& a : line.args) {
        for (char ch : string_literal(line, a)) {
          emit_byte(static_cast<std::uint8_t>(ch));
        }
        if (h == ".asciiz") emit_byte(0);
      }
    } else if (h == ".space") {
      auto n = *eval(line, line.args.at(0), true);
      std::uint8_t fill = 0;
      if (line.args.size() > 1) {
        fill = static_cast<std::uint8_t>(*eval(line, line.args[1], true));
      }
      for (std::int64_t i = 0; i < n; ++i) emit_byte(fill);
    } else {
      err(line, "unknown directive '" + h + "'");
    }
  }

  // ---- instruction operand helpers ---------------------------------------
  std::uint8_t reg_arg(const Line& line, const std::string& a) const {
    auto r = parse_reg(a);
    if (!r) err(line, "expected register, got '" + a + "'");
    return *r;
  }

  std::int32_t imm_arg(const Line& line, const std::string& a, std::int64_t lo,
                       std::int64_t hi) const {
    auto v = eval(line, a, true);
    if (*v < lo || *v > hi) {
      err(line, "immediate " + std::to_string(*v) + " out of range [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
    return static_cast<std::int32_t>(*v);
  }

  // off(base)
  std::pair<std::int32_t, std::uint8_t> mem_arg(const Line& line,
                                                const std::string& a) const {
    auto open = a.rfind('(');
    if (open == std::string::npos || a.back() != ')') {
      err(line, "expected offset(base), got '" + a + "'");
    }
    std::string off = trim(a.substr(0, open));
    std::string base = trim(a.substr(open + 1, a.size() - open - 2));
    std::int32_t imm = off.empty() ? 0 : imm_arg(line, off, -32768, 32767);
    return {imm, reg_arg(line, base)};
  }

  std::int32_t branch_offset(const Line& line, const std::string& a) const {
    auto v = eval(line, a, true);
    std::int64_t delta = *v - (static_cast<std::int64_t>(cur().lc) + 4);
    if (delta % 4 != 0) err(line, "misaligned branch target");
    std::int64_t words = delta / 4;
    if (words < -32768 || words > 32767) err(line, "branch target out of range");
    return static_cast<std::int32_t>(words);
  }

  void emit(const Instr& in) { emit_u32(encode(in)); }

  void expect_args(const Line& line, std::size_t n) const {
    if (line.args.size() != n) {
      err(line, line.head + " expects " + std::to_string(n) + " operand(s), got " +
                    std::to_string(line.args.size()));
    }
  }

  void emit_instruction(const Line& line) {
    const std::string& h = line.head;

    // ---- pseudo-instructions ----
    if (h == "nop") {
      expect_args(line, 0);
      emit(Instr{Op::kSll, kZero, 0, kZero, 0, 0, 0});
      return;
    }
    if (h == "move") {
      expect_args(line, 2);
      emit(Instr{Op::kAdd, reg_arg(line, line.args[0]), reg_arg(line, line.args[1]),
                 kZero, 0, 0, 0});
      return;
    }
    if (h == "not") {
      expect_args(line, 2);
      emit(Instr{Op::kNor, reg_arg(line, line.args[0]), reg_arg(line, line.args[1]),
                 kZero, 0, 0, 0});
      return;
    }
    if (h == "neg") {
      expect_args(line, 2);
      emit(Instr{Op::kSub, reg_arg(line, line.args[0]), kZero,
                 reg_arg(line, line.args[1]), 0, 0, 0});
      return;
    }
    if (h == "li" || h == "la") {
      expect_args(line, 2);
      const std::uint8_t rd = reg_arg(line, line.args[0]);
      auto v = eval(line, line.args[1], true);
      const auto u = static_cast<std::uint32_t>(*v);
      Instr lui{Op::kLui, 0, 0, rd, 0, static_cast<std::int32_t>(u >> 16), 0};
      Instr ori{Op::kOri, 0, rd, rd, 0, static_cast<std::int32_t>(u & 0xffffu), 0};
      emit(lui);
      emit(ori);
      return;
    }
    if (h == "b") {
      expect_args(line, 1);
      emit(Instr{Op::kBeq, 0, kZero, kZero, 0, branch_offset(line, line.args[0]), 0});
      return;
    }
    if (h == "beqz" || h == "bnez") {
      expect_args(line, 2);
      emit(Instr{h == "beqz" ? Op::kBeq : Op::kBne, 0, reg_arg(line, line.args[0]),
                 kZero, 0, branch_offset(line, line.args[1]), 0});
      return;
    }
    if (h == "bgt" || h == "ble" || h == "bgtu" || h == "bleu") {
      expect_args(line, 3);
      Op op = (h == "bgt") ? Op::kBlt : (h == "ble") ? Op::kBge
              : (h == "bgtu") ? Op::kBltu : Op::kBgeu;
      // Swap the operands: a > b  <=>  b < a.
      emit(Instr{op, 0, reg_arg(line, line.args[1]), reg_arg(line, line.args[0]), 0,
                 branch_offset(line, line.args[2]), 0});
      return;
    }
    if (h == "subi") {
      expect_args(line, 3);
      emit(Instr{Op::kAddi, 0, reg_arg(line, line.args[1]), reg_arg(line, line.args[0]),
                 0, -imm_arg(line, line.args[2], -32767, 32768), 0});
      return;
    }
    if (h == "ret") {
      expect_args(line, 0);
      emit(Instr{Op::kJr, 0, kRa, 0, 0, 0, 0});
      return;
    }

    // ---- real instructions ----
    auto op = parse_mnemonic(h);
    if (!op) err(line, "unknown mnemonic '" + h + "'");
    Instr in;
    in.op = *op;

    if (*op == Op::kHalt) {
      expect_args(line, 0);
    } else if (*op == Op::kJr) {
      expect_args(line, 1);
      in.rs = reg_arg(line, line.args[0]);
    } else if (*op == Op::kJalr) {
      if (line.args.size() == 1) {
        in.rd = kRa;
        in.rs = reg_arg(line, line.args[0]);
      } else {
        expect_args(line, 2);
        in.rd = reg_arg(line, line.args[0]);
        in.rs = reg_arg(line, line.args[1]);
      }
    } else if (*op == Op::kJ || *op == Op::kJal) {
      expect_args(line, 1);
      in.target = static_cast<std::uint32_t>(*eval(line, line.args[0], true));
    } else if (*op == Op::kSll || *op == Op::kSrl || *op == Op::kSra) {
      expect_args(line, 3);
      in.rd = reg_arg(line, line.args[0]);
      in.rt = reg_arg(line, line.args[1]);
      in.shamt = static_cast<std::uint8_t>(imm_arg(line, line.args[2], 0, 31));
    } else if (*op == Op::kSllv || *op == Op::kSrlv || *op == Op::kSrav) {
      expect_args(line, 3);
      in.rd = reg_arg(line, line.args[0]);
      in.rt = reg_arg(line, line.args[1]);
      in.rs = reg_arg(line, line.args[2]);
    } else if (*op == Op::kLui) {
      expect_args(line, 2);
      in.rt = reg_arg(line, line.args[0]);
      in.imm = imm_arg(line, line.args[1], 0, 65535);
    } else if (is_branch(*op)) {
      expect_args(line, 3);
      in.rs = reg_arg(line, line.args[0]);
      in.rt = reg_arg(line, line.args[1]);
      in.imm = branch_offset(line, line.args[2]);
    } else if (is_load(*op) || is_store(*op)) {
      expect_args(line, 2);
      in.rt = reg_arg(line, line.args[0]);
      auto [imm, base] = mem_arg(line, line.args[1]);
      in.imm = imm;
      in.rs = base;
    } else if (*op == Op::kAddi || *op == Op::kSlti || *op == Op::kSltiu ||
               *op == Op::kAndi || *op == Op::kOri || *op == Op::kXori) {
      expect_args(line, 3);
      in.rt = reg_arg(line, line.args[0]);
      in.rs = reg_arg(line, line.args[1]);
      const bool logical = *op == Op::kAndi || *op == Op::kOri || *op == Op::kXori;
      in.imm = logical ? imm_arg(line, line.args[2], 0, 65535)
                       : imm_arg(line, line.args[2], -32768, 32767);
    } else {
      // Three-register ALU.
      expect_args(line, 3);
      in.rd = reg_arg(line, line.args[0]);
      in.rs = reg_arg(line, line.args[1]);
      in.rt = reg_arg(line, line.args[2]);
    }
    emit(in);
  }

  void finalize() {
    // Drop empty segments, sort, check for overlap.
    std::erase_if(segments_, [](const Segment& s) { return s.bytes.empty(); });
    std::sort(segments_.begin(), segments_.end(),
              [](const Segment& a, const Segment& b) { return a.base < b.base; });
    for (std::size_t i = 1; i < segments_.size(); ++i) {
      const Segment& prev = segments_[i - 1];
      if (prev.base + prev.bytes.size() > segments_[i].base) {
        fail(unit_ + ": overlapping segments at 0x" + std::to_string(segments_[i].base));
      }
    }
    program_.segments = std::move(segments_);
    program_.symbols = std::move(symbols_);
    auto it = program_.symbols.find("main");
    program_.entry = it != program_.symbols.end()
                         ? it->second
                         : (program_.segments.empty() ? 0 : program_.segments.front().base);
  }

  std::string unit_;
  std::vector<Line> lines_;
  std::map<std::string, std::uint32_t> symbols_;
  std::vector<Segment> segments_;
  Section section_ = Section::kText;
  Cursor text_, data_;
  Program program_;
};

}  // namespace

Program assemble(const std::string& source, const std::string& unit_name) {
  return Assembler(source, unit_name).run();
}

}  // namespace stcache
