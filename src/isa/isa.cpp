#include "isa/isa.hpp"

#include <array>
#include <cstdio>

#include "util/error.hpp"

namespace stcache {

namespace {

// Encoding format classes.
enum class Fmt : std::uint8_t { kR, kI, kBranch, kMem, kJ, kShift };

struct OpInfo {
  Op op;
  Fmt fmt;
  std::uint8_t opcode;  // bits 31..26
  std::uint8_t funct;   // bits 5..0 (R-type only, opcode == 0)
  const char* name;
};

constexpr std::array<OpInfo, 44> kOpTable = {{
    {Op::kAdd, Fmt::kR, 0x00, 0x20, "add"},
    {Op::kSub, Fmt::kR, 0x00, 0x22, "sub"},
    {Op::kAnd, Fmt::kR, 0x00, 0x24, "and"},
    {Op::kOr, Fmt::kR, 0x00, 0x25, "or"},
    {Op::kXor, Fmt::kR, 0x00, 0x26, "xor"},
    {Op::kNor, Fmt::kR, 0x00, 0x27, "nor"},
    {Op::kSlt, Fmt::kR, 0x00, 0x2a, "slt"},
    {Op::kSltu, Fmt::kR, 0x00, 0x2b, "sltu"},
    {Op::kSll, Fmt::kShift, 0x00, 0x00, "sll"},
    {Op::kSrl, Fmt::kShift, 0x00, 0x02, "srl"},
    {Op::kSra, Fmt::kShift, 0x00, 0x03, "sra"},
    {Op::kSllv, Fmt::kR, 0x00, 0x04, "sllv"},
    {Op::kSrlv, Fmt::kR, 0x00, 0x06, "srlv"},
    {Op::kSrav, Fmt::kR, 0x00, 0x07, "srav"},
    {Op::kMul, Fmt::kR, 0x00, 0x18, "mul"},
    {Op::kMulhu, Fmt::kR, 0x00, 0x19, "mulhu"},
    {Op::kDiv, Fmt::kR, 0x00, 0x1a, "div"},
    {Op::kDivu, Fmt::kR, 0x00, 0x1c, "divu"},
    {Op::kRem, Fmt::kR, 0x00, 0x1b, "rem"},
    {Op::kRemu, Fmt::kR, 0x00, 0x1d, "remu"},
    {Op::kJr, Fmt::kR, 0x00, 0x08, "jr"},
    {Op::kJalr, Fmt::kR, 0x00, 0x09, "jalr"},
    {Op::kHalt, Fmt::kR, 0x00, 0x3f, "halt"},
    {Op::kAddi, Fmt::kI, 0x08, 0, "addi"},
    {Op::kSlti, Fmt::kI, 0x0a, 0, "slti"},
    {Op::kSltiu, Fmt::kI, 0x0b, 0, "sltiu"},
    {Op::kAndi, Fmt::kI, 0x0c, 0, "andi"},
    {Op::kOri, Fmt::kI, 0x0d, 0, "ori"},
    {Op::kXori, Fmt::kI, 0x0e, 0, "xori"},
    {Op::kLui, Fmt::kI, 0x0f, 0, "lui"},
    {Op::kBeq, Fmt::kBranch, 0x04, 0, "beq"},
    {Op::kBne, Fmt::kBranch, 0x05, 0, "bne"},
    {Op::kBlt, Fmt::kBranch, 0x06, 0, "blt"},
    {Op::kBge, Fmt::kBranch, 0x07, 0, "bge"},
    {Op::kBltu, Fmt::kBranch, 0x16, 0, "bltu"},
    {Op::kBgeu, Fmt::kBranch, 0x17, 0, "bgeu"},
    {Op::kLb, Fmt::kMem, 0x20, 0, "lb"},
    {Op::kLh, Fmt::kMem, 0x21, 0, "lh"},
    {Op::kLw, Fmt::kMem, 0x23, 0, "lw"},
    {Op::kLbu, Fmt::kMem, 0x24, 0, "lbu"},
    {Op::kLhu, Fmt::kMem, 0x25, 0, "lhu"},
    {Op::kSb, Fmt::kMem, 0x28, 0, "sb"},
    {Op::kSh, Fmt::kMem, 0x29, 0, "sh"},
    {Op::kSw, Fmt::kMem, 0x2b, 0, "sw"},
}};

const OpInfo& info_of(Op op) {
  for (const OpInfo& e : kOpTable) {
    if (e.op == op) return e;
  }
  // J-type ops are handled separately (they need 26-bit targets).
  static const OpInfo kJInfo{Op::kJ, Fmt::kJ, 0x02, 0, "j"};
  static const OpInfo kJalInfo{Op::kJal, Fmt::kJ, 0x03, 0, "jal"};
  if (op == Op::kJ) return kJInfo;
  if (op == Op::kJal) return kJalInfo;
  fail("info_of: unknown op");
}

void check_reg(std::uint8_t r, const char* which) {
  if (r >= kNumRegs) fail(std::string("encode: register out of range: ") + which);
}

}  // namespace

std::uint32_t encode(const Instr& in) {
  const OpInfo& info = info_of(in.op);
  check_reg(in.rd, "rd");
  check_reg(in.rs, "rs");
  check_reg(in.rt, "rt");
  switch (info.fmt) {
    case Fmt::kR:
      return (static_cast<std::uint32_t>(info.opcode) << 26) |
             (static_cast<std::uint32_t>(in.rs) << 21) |
             (static_cast<std::uint32_t>(in.rt) << 16) |
             (static_cast<std::uint32_t>(in.rd) << 11) | info.funct;
    case Fmt::kShift: {
      if (in.shamt >= 32) fail("encode: shamt out of range");
      return (static_cast<std::uint32_t>(info.opcode) << 26) |
             (static_cast<std::uint32_t>(in.rt) << 16) |
             (static_cast<std::uint32_t>(in.rd) << 11) |
             (static_cast<std::uint32_t>(in.shamt) << 6) | info.funct;
    }
    case Fmt::kI:
    case Fmt::kBranch:
    case Fmt::kMem: {
      if (in.imm < -32768 || in.imm > 65535) {
        fail("encode: immediate " + std::to_string(in.imm) +
             " does not fit in 16 bits (" + info.name + ")");
      }
      // Logical ops and lui treat the immediate as unsigned 16-bit; the
      // arithmetic ones as signed. Both fit the same field.
      const auto imm16 = static_cast<std::uint32_t>(in.imm) & 0xffffu;
      return (static_cast<std::uint32_t>(info.opcode) << 26) |
             (static_cast<std::uint32_t>(in.rs) << 21) |
             (static_cast<std::uint32_t>(in.rt) << 16) | imm16;
    }
    case Fmt::kJ: {
      if (in.target % 4 != 0) fail("encode: misaligned jump target");
      const std::uint32_t word_target = in.target >> 2;
      if (word_target >= (1u << 26)) fail("encode: jump target out of range");
      return (static_cast<std::uint32_t>(info.opcode) << 26) | word_target;
    }
  }
  fail("encode: unreachable");
}

Instr decode(std::uint32_t word) {
  const auto opcode = static_cast<std::uint8_t>(word >> 26);
  const auto rs = static_cast<std::uint8_t>((word >> 21) & 31);
  const auto rt = static_cast<std::uint8_t>((word >> 16) & 31);
  const auto rd = static_cast<std::uint8_t>((word >> 11) & 31);
  const auto shamt = static_cast<std::uint8_t>((word >> 6) & 31);
  const auto funct = static_cast<std::uint8_t>(word & 63);
  const auto imm16 = static_cast<std::uint16_t>(word & 0xffff);

  // J-type first.
  if (opcode == 0x02 || opcode == 0x03) {
    Instr in;
    in.op = opcode == 0x02 ? Op::kJ : Op::kJal;
    in.target = (word & ((1u << 26) - 1)) << 2;
    return in;
  }

  for (const OpInfo& e : kOpTable) {
    if (e.opcode != opcode) continue;
    if (opcode == 0x00 && e.funct != funct) continue;
    // Populate only the fields the format defines, so don't-care bits in
    // the word never leak into the decoded instruction: decode() is a
    // canonicalizing inverse of encode().
    Instr in;
    in.op = e.op;
    switch (e.fmt) {
      case Fmt::kR:
        in.rs = rs;
        in.rt = rt;
        in.rd = rd;
        break;
      case Fmt::kShift:
        in.rt = rt;
        in.rd = rd;
        in.shamt = shamt;
        break;
      case Fmt::kI:
      case Fmt::kBranch:
      case Fmt::kMem: {
        in.rs = rs;
        in.rt = rt;
        // Logical immediates (andi/ori/xori) and lui are zero-extended; the
        // rest sign-extended.
        const bool zero_ext = e.op == Op::kAndi || e.op == Op::kOri ||
                              e.op == Op::kXori || e.op == Op::kLui;
        in.imm = zero_ext
                     ? static_cast<std::int32_t>(imm16)
                     : static_cast<std::int32_t>(static_cast<std::int16_t>(imm16));
        break;
      }
      case Fmt::kJ:
        break;  // handled above
    }
    return in;
  }
  fail("decode: unknown instruction word 0x" + [&] {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", word);
    return std::string(buf);
  }());
}

bool is_load(Op op) {
  return op == Op::kLb || op == Op::kLbu || op == Op::kLh || op == Op::kLhu ||
         op == Op::kLw;
}

bool is_store(Op op) { return op == Op::kSb || op == Op::kSh || op == Op::kSw; }

bool is_branch(Op op) {
  return op == Op::kBeq || op == Op::kBne || op == Op::kBlt || op == Op::kBge ||
         op == Op::kBltu || op == Op::kBgeu;
}

bool is_jump(Op op) {
  return op == Op::kJ || op == Op::kJal || op == Op::kJr || op == Op::kJalr;
}

std::uint32_t access_bytes(Op op) {
  switch (op) {
    case Op::kLb:
    case Op::kLbu:
    case Op::kSb:
      return 1;
    case Op::kLh:
    case Op::kLhu:
    case Op::kSh:
      return 2;
    case Op::kLw:
    case Op::kSw:
      return 4;
    default:
      fail("access_bytes: not a memory op");
  }
}

std::string mnemonic(Op op) { return info_of(op).name; }

std::optional<Op> parse_mnemonic(const std::string& name) {
  for (const OpInfo& e : kOpTable) {
    if (name == e.name) return e.op;
  }
  if (name == "j") return Op::kJ;
  if (name == "jal") return Op::kJal;
  return std::nullopt;
}

namespace {
constexpr const char* kRegNames[kNumRegs] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0",   "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0",   "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8",   "t9", "k0", "k1", "gp", "sp", "fp", "ra"};
}  // namespace

std::string reg_name(std::uint8_t reg) {
  if (reg >= kNumRegs) fail("reg_name: register out of range");
  return kRegNames[reg];
}

std::optional<std::uint8_t> parse_reg(const std::string& name) {
  std::string n = name;
  if (!n.empty() && n.front() == '$') n = n.substr(1);
  for (std::uint8_t i = 0; i < kNumRegs; ++i) {
    if (n == kRegNames[i]) return i;
  }
  // Numeric forms: r8 / 8.
  if (!n.empty() && (n.front() == 'r' || n.front() == 'R')) n = n.substr(1);
  if (!n.empty()) {
    unsigned v = 0;
    for (char c : n) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + static_cast<unsigned>(c - '0');
    }
    if (v < kNumRegs) return static_cast<std::uint8_t>(v);
  }
  return std::nullopt;
}

std::string disassemble(std::uint32_t word, std::uint32_t pc) {
  Instr in = decode(word);
  const std::string m = mnemonic(in.op);
  auto r = [](std::uint8_t reg) { return reg_name(reg); };
  switch (in.op) {
    case Op::kHalt:
      return m;
    case Op::kJr:
      return m + " " + r(in.rs);
    case Op::kJalr:
      return m + " " + r(in.rd) + ", " + r(in.rs);
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      return m + " " + r(in.rd) + ", " + r(in.rt) + ", " +
             std::to_string(in.shamt);
    case Op::kJ:
    case Op::kJal:
      return m + " 0x" + [&] {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%x", in.target);
        return std::string(buf);
      }();
    case Op::kLui:
      return m + " " + r(in.rt) + ", " + std::to_string(in.imm);
    default:
      break;
  }
  if (is_load(in.op) || is_store(in.op)) {
    return m + " " + r(in.rt) + ", " + std::to_string(in.imm) + "(" + r(in.rs) + ")";
  }
  if (is_branch(in.op)) {
    const std::uint32_t dest = pc + 4 + (static_cast<std::uint32_t>(in.imm) << 2);
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%x", dest);
    return m + " " + r(in.rs) + ", " + r(in.rt) + ", " + buf;
  }
  if (info_of(in.op).fmt == Fmt::kI) {
    return m + " " + r(in.rt) + ", " + r(in.rs) + ", " + std::to_string(in.imm);
  }
  // R-type.
  return m + " " + r(in.rd) + ", " + r(in.rs) + ", " + r(in.rt);
}

}  // namespace stcache
