// Two-pass assembler for the stcache ISA.
//
// Syntax (MIPS-flavored):
//
//     # comment                ; comment
//     .text                    switch to the text section
//     .data                    switch to the data section
//     .org 0x1000              set the current section's location counter
//     .align 4                 align location counter (power of two)
//     .word 1, 0x2, label      emit 32-bit words (labels allowed)
//     .half 1, 2               emit 16-bit halves
//     .byte 1, 2               emit bytes
//     .space 256 [, fill]      reserve bytes
//     .equ NAME, expr          define a constant
//     label:                   define a label at the location counter
//     add t0, t1, t2           machine instruction
//     lw  t0, 8(sp)            memory operand
//
// Pseudo-instructions (expanded with fixed sizes so pass 1 can lay out
// labels): li rd, imm32 (lui+ori, 2 words) - la rd, label (2 words) -
// move rd, rs - nop - not rd, rs - neg rd, rs - b label -
// bgt/ble/bgtu/bleu rs, rt, label - subi rt, rs, imm - beqz/bnez rs, label -
// jal without ra clobber notes.
//
// Immediates/expressions: decimal, 0x hex, 'c' chars, label names,
// %hi(label) and %lo(label), and NAME defined by .equ. A single +/- offset
// is allowed (e.g. la t0, buf+16; lw t0, %lo(buf+4)(t1)).
//
// Default layout: .text starts at 0x0, .data at 0x00010000. The entry
// point is the label `main` if present, else the first text address.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stcache {

struct Segment {
  std::uint32_t base = 0;
  std::vector<std::uint8_t> bytes;
};

struct Program {
  std::vector<Segment> segments;  // disjoint, sorted by base
  std::uint32_t entry = 0;
  std::map<std::string, std::uint32_t> symbols;

  // Highest address occupied by any segment (exclusive).
  std::uint32_t end_address() const;
  // Look up a symbol; throws stcache::Error if absent.
  std::uint32_t symbol(const std::string& name) const;
};

// Assemble `source`. Throws stcache::Error with a line-numbered message on
// any syntax or range error. `unit_name` is used in error messages only.
Program assemble(const std::string& source,
                 const std::string& unit_name = "<asm>");

inline constexpr std::uint32_t kDefaultTextBase = 0x00000000;
inline constexpr std::uint32_t kDefaultDataBase = 0x00010000;

}  // namespace stcache
