// Replay drivers: feed a captured address stream through a cache model and
// collect the CacheStats that Equation 1 consumes.
//
// Three engines implement cold-start configuration measurement:
//
//   kReference  ConfigurableCache::access() per record — the behavioral
//               model, also usable warm and across reconfigurations.
//   kFast       FastCacheSim (cache/fast_cache.hpp) — SoA line store,
//               precomputed mapping constants, compile-time specialized
//               access loop. Bit-identical CacheStats, several times the
//               throughput, one traversal per configuration.
//   kOneshot    StackSweepSim (cache/stack_sweep.hpp) — single-pass
//               stack-distance sweep that evaluates every write-back,
//               victim-buffer-off configuration of one line size in ONE
//               traversal (the 27-point space in three). It only applies
//               to measure_config_bank() requests: a bank's configs are
//               grouped by line size, groups of two or more go through the
//               stack kernel, and everything else (single-config groups,
//               per-config measurement, write-through, victim buffers)
//               falls back to the fast engine. The process default.
//
// The engines are interchangeable by construction and the differential
// suites (tests/replay_equivalence_test.cpp, tests/stack_sweep_test.cpp)
// enforce it: every figure or table is byte-identical under any --engine.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/configurable_cache.hpp"
#include "cache/fast_cache.hpp"
#include "cache/stack_sweep.hpp"
#include "trace/trace.hpp"

namespace stcache {

enum class ReplayEngine : std::uint8_t {
  kDefault = 0,  // resolve to the process-wide default (oneshot unless overridden)
  kReference,
  kFast,
  kOneshot,
};

// Process-wide default engine used when a measure call passes kDefault.
// Benches set this from --engine=reference|fast|oneshot before sweeping;
// reads are atomic so sweep worker threads may resolve it concurrently.
ReplayEngine default_replay_engine();
void set_default_replay_engine(ReplayEngine engine);  // kDefault resets to kOneshot

const char* to_string(ReplayEngine engine);
// Parses "reference", "fast" or "oneshot"; throws stcache::Error otherwise.
ReplayEngine parse_replay_engine(const std::string& name);

// Encode a record stream for FastCacheSim/StackSweepSim::replay (bit 31 =
// write, bits 30..0 = 16 B block number). Done once per stream and shared
// by every cache in a bank sweep. The out-parameter overload reuses the
// buffer's capacity, so a loop of bank sweeps (bench_replay_throughput,
// repeated measurements of one workload) packs without reallocating.
std::vector<std::uint32_t> pack_stream(std::span<const TraceRecord> stream);
void pack_stream(std::span<const TraceRecord> stream,
                 std::vector<std::uint32_t>& out);

// Replay `stream` through an existing cache (state and stats accumulate;
// callers that want a cold run construct a fresh cache). Returns the stats
// delta contributed by this replay. Warm replay is inherently a reference-
// model operation: the fast engine only does cold fixed-configuration runs.
CacheStats replay(ConfigurableCache& cache, std::span<const TraceRecord> stream);
CacheStats replay(CacheModel& cache, std::span<const TraceRecord> stream);

// Cold-start evaluation of one configuration against one stream: construct
// a fresh cache, replay, return its stats. This is the paper's
// per-configuration measurement primitive.
CacheStats measure_config(const CacheConfig& cfg,
                          std::span<const TraceRecord> stream,
                          const TimingParams& timing = {},
                          ReplayEngine engine = ReplayEngine::kDefault);

// Full-parameter variant (write policy, victim buffer) used by the
// ablation experiments and the differential-equivalence suite.
struct ReplayParams {
  TimingParams timing{};
  WritePolicy write_policy = WritePolicy::kWriteBack;
  std::uint32_t victim_entries = 0;
  ReplayEngine engine = ReplayEngine::kDefault;
};
CacheStats measure_config_ex(const CacheConfig& cfg,
                             std::span<const TraceRecord> stream,
                             const ReplayParams& params);

CacheStats measure_geometry(const CacheGeometry& g,
                            std::span<const TraceRecord> stream,
                            const TimingParams& timing = {});

// Cold-start evaluation of one configuration against an already-packed
// stream (capture_packed / load_packed_trace output). Stats are
// bit-identical to measure_config over the unpacked records for every
// engine: the reference path replays block << 4, and no 16 B-or-wider
// geometry inspects the discarded low bits.
CacheStats measure_config_packed(const CacheConfig& cfg,
                                 std::span<const std::uint32_t> packed,
                                 const TimingParams& timing = {},
                                 ReplayEngine engine = ReplayEngine::kDefault);

// Bank evaluation: evaluate every configuration cold against one stream,
// decoding the trace once. stats[i] is bit-identical to
// measure_config(configs[i], stream, timing); the sweep tests assert this.
// The oneshot engine groups the bank's configs by line size and evaluates
// every group of two or more in a single stack-distance traversal
// (StackSweepSim), falling back to the fast kernel for singleton groups;
// the fast engine packs the stream once and runs config-major; the
// reference engine interleaves all caches over a single record pass.
// The scratch overload reuses a caller-provided packed-stream buffer
// across calls (the packing is otherwise reallocated per bank).
std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing = {},
    ReplayEngine engine = ReplayEngine::kDefault);
std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing, ReplayEngine engine,
    std::vector<std::uint32_t>& packed_scratch);

// Incremental bank evaluation over a *packed* stream. Construction fixes
// the configurations and engine; feed() folds any number of in-order
// packed slices — the streaming pipeline's chunks, or one whole stream —
// and stats() returns results bit-identical to measure_config_bank() over
// the concatenation of everything fed. All three engines accumulate across
// replay calls by construction, which is what lets a capture thread
// overlap the sweep chunk by chunk. The engine is resolved at
// construction, so a bank outlives later set_default_replay_engine calls.
//
// The reference path feeds ConfigurableCache::access(block << 4, write):
// packing discards the low 4 address bits, which no 16 B-or-wider cache
// geometry ever inspects (the equivalence suite proves stats invariance).
class BankAccumulator {
 public:
  BankAccumulator(std::span<const CacheConfig> configs,
                  const TimingParams& timing = {},
                  ReplayEngine engine = ReplayEngine::kDefault);

  void feed(std::span<const std::uint32_t> packed);
  // stats()[i] corresponds to configs[i] at construction.
  std::vector<CacheStats> stats() const;
  std::uint64_t words_fed() const { return words_fed_; }

 private:
  std::size_t n_;
  std::uint64_t words_fed_ = 0;
  // Exactly one of the following banks is populated, per the engine.
  std::vector<ConfigurableCache> reference_bank_;
  std::vector<FastCacheSim> fast_bank_;  // fast engine, index-aligned
  struct SweepGroup {
    StackSweepSim sweep;
    std::vector<CacheConfig> configs;
    std::vector<std::size_t> where;  // indices into the bank's stats
  };
  std::vector<SweepGroup> sweep_groups_;          // oneshot: per line size
  std::vector<std::size_t> singleton_where_;      // oneshot: fallback sims
  std::vector<FastCacheSim> singleton_sims_;
};

}  // namespace stcache
