// Replay drivers: feed a captured address stream through a cache model and
// collect the CacheStats that Equation 1 consumes.
#pragma once

#include <span>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/configurable_cache.hpp"
#include "trace/trace.hpp"

namespace stcache {

// Replay `stream` through an existing cache (state and stats accumulate;
// callers that want a cold run construct a fresh cache). Returns the stats
// delta contributed by this replay.
CacheStats replay(ConfigurableCache& cache, std::span<const TraceRecord> stream);
CacheStats replay(CacheModel& cache, std::span<const TraceRecord> stream);

// Cold-start evaluation of one configuration against one stream: construct
// a fresh cache, replay, return its stats. This is the paper's
// per-configuration measurement primitive.
CacheStats measure_config(const CacheConfig& cfg,
                          std::span<const TraceRecord> stream,
                          const TimingParams& timing = {});

CacheStats measure_geometry(const CacheGeometry& g,
                            std::span<const TraceRecord> stream,
                            const TimingParams& timing = {});

// Single-pass bank evaluation: construct one cold cache per configuration
// and stream every trace record through all of them in one pass, so the
// trace is decoded (iterated) once instead of once per configuration. The
// caches are independent, so stats[i] is bit-identical to
// measure_config(configs[i], stream, timing); the sweep tests assert this.
std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing = {});

}  // namespace stcache
