// Replay drivers: feed a captured address stream through a cache model and
// collect the CacheStats that Equation 1 consumes.
//
// Three engines implement cold-start configuration measurement:
//
//   kReference  ConfigurableCache::access() per record — the behavioral
//               model, also usable warm and across reconfigurations.
//   kFast       FastCacheSim (cache/fast_cache.hpp) — SoA line store,
//               precomputed mapping constants, compile-time specialized
//               access loop. Bit-identical CacheStats, several times the
//               throughput, one traversal per configuration.
//   kOneshot    StackSweepSim (cache/stack_sweep.hpp) — single-pass
//               stack-distance sweep that evaluates every write-back,
//               victim-buffer-off configuration of one line size in ONE
//               traversal (the 27-point space in three). It only applies
//               to measure_config_bank() requests: a bank's configs are
//               grouped by line size, groups of two or more go through the
//               stack kernel, and everything else (single-config groups,
//               per-config measurement, write-through, victim buffers)
//               falls back to the fast engine. The process default.
//
// The engines are interchangeable by construction and the differential
// suites (tests/replay_equivalence_test.cpp, tests/stack_sweep_test.cpp)
// enforce it: every figure or table is byte-identical under any --engine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/configurable_cache.hpp"
#include "cache/fast_cache.hpp"
#include "cache/nested_sweep.hpp"
#include "cache/stack_sweep.hpp"
#include "trace/trace.hpp"

namespace stcache {

class ThreadPool;  // util/thread_pool.hpp — owned by BankAccumulator

enum class ReplayEngine : std::uint8_t {
  kDefault = 0,  // resolve to the process-wide default (oneshot unless overridden)
  kReference,
  kFast,
  kOneshot,
};

// Process-wide default engine used when a measure call passes kDefault.
// Benches set this from --engine=reference|fast|oneshot before sweeping;
// reads are atomic so sweep worker threads may resolve it concurrently.
ReplayEngine default_replay_engine();
void set_default_replay_engine(ReplayEngine engine);  // kDefault resets to kOneshot

// Process-wide default shard count for the set-partitioned parallel
// oneshot sweep (BankAccumulator below). The default is 1 (serial) unless
// the STCACHE_SWEEP_JOBS environment variable says otherwise — intra-bank
// parallelism composes with the benches' workload-level --jobs pools, so
// it is strictly opt-in (--sweep-jobs on the tools/benches, or
// set_default_sweep_jobs here). Values are clamped to the partition count
// (at most 32: the partition key must stay inside the set-index bits every
// configuration shares; see replay.cpp). set_default_sweep_jobs(0) resets
// to the environment-driven default.
unsigned default_sweep_jobs();
void set_default_sweep_jobs(unsigned jobs);

// Number of set partitions the parallel sweep scatters a packed stream
// into: a power of two in [1, 32], default 32, overridable via
// STCACHE_SWEEP_PARTITIONS (resolved once per process). Shard s replays
// partitions s, s+jobs, s+2*jobs, ... — more partitions than shards
// smooths imbalance without changing results.
unsigned sweep_partitions();

const char* to_string(ReplayEngine engine);
// Parses "reference", "fast" or "oneshot"; throws stcache::Error otherwise.
ReplayEngine parse_replay_engine(const std::string& name);

// Encode a record stream for FastCacheSim/StackSweepSim::replay (bit 31 =
// write, bits 30..0 = 16 B block number). Done once per stream and shared
// by every cache in a bank sweep. The out-parameter overload reuses the
// buffer's capacity, so a loop of bank sweeps (bench_replay_throughput,
// repeated measurements of one workload) packs without reallocating.
std::vector<std::uint32_t> pack_stream(std::span<const TraceRecord> stream);
void pack_stream(std::span<const TraceRecord> stream,
                 std::vector<std::uint32_t>& out);

// Replay `stream` through an existing cache (state and stats accumulate;
// callers that want a cold run construct a fresh cache). Returns the stats
// delta contributed by this replay. Warm replay is inherently a reference-
// model operation: the fast engine only does cold fixed-configuration runs.
CacheStats replay(ConfigurableCache& cache, std::span<const TraceRecord> stream);
CacheStats replay(CacheModel& cache, std::span<const TraceRecord> stream);

// Cold-start evaluation of one configuration against one stream: construct
// a fresh cache, replay, return its stats. This is the paper's
// per-configuration measurement primitive.
CacheStats measure_config(const CacheConfig& cfg,
                          std::span<const TraceRecord> stream,
                          const TimingParams& timing = {},
                          ReplayEngine engine = ReplayEngine::kDefault);

// Full-parameter variant (write policy, victim buffer) used by the
// ablation experiments and the differential-equivalence suite.
struct ReplayParams {
  TimingParams timing{};
  WritePolicy write_policy = WritePolicy::kWriteBack;
  std::uint32_t victim_entries = 0;
  ReplayEngine engine = ReplayEngine::kDefault;
};
CacheStats measure_config_ex(const CacheConfig& cfg,
                             std::span<const TraceRecord> stream,
                             const ReplayParams& params);

// Cold-start evaluation of one generic CacheModel geometry. Engine
// dispatch mirrors measure_config: fast/oneshot requests run FastGeomSim
// over the packed stream (the oneshot kernel only pays off across a bank),
// the reference engine — and any sub-16 B line, which a packed 16 B-block
// stream cannot represent — replays CacheModel over the raw records.
// Bit-identical CacheStats either way (the equivalence suite proves it).
CacheStats measure_geometry(const CacheGeometry& g,
                            std::span<const TraceRecord> stream,
                            const TimingParams& timing = {},
                            ReplayEngine engine = ReplayEngine::kDefault);

// Same over an already-packed stream; requires line_bytes >= 16 (throws
// otherwise — the low 4 address bits are gone).
CacheStats measure_geometry_packed(const CacheGeometry& g,
                                   std::span<const std::uint32_t> packed,
                                   const TimingParams& timing = {},
                                   ReplayEngine engine = ReplayEngine::kDefault);

// Bank evaluation over generic geometries — the scaled-space analogue of
// measure_config_bank. stats[i] is bit-identical to measure_geometry
// (i.e. CacheModel replay) for every engine. The oneshot engine groups
// the bank by line-size family and evaluates each group of two or more in
// ONE generalized stack-distance traversal (NestedSweepSim), falling back
// to FastGeomSim for singleton families; sub-16 B-line geometries (which
// cannot replay packed streams) run on CacheModel directly. sweep_jobs
// shards the oneshot traversals exactly like the platform sweep (0 =
// default_sweep_jobs()).
std::vector<CacheStats> measure_geometry_bank(
    std::span<const CacheGeometry> geoms, std::span<const TraceRecord> stream,
    const TimingParams& timing = {},
    ReplayEngine engine = ReplayEngine::kDefault, unsigned sweep_jobs = 0);
// Packed-stream variant: every geometry must have line_bytes >= 16.
std::vector<CacheStats> measure_geometry_bank(
    std::span<const CacheGeometry> geoms,
    std::span<const std::uint32_t> packed, const TimingParams& timing = {},
    ReplayEngine engine = ReplayEngine::kDefault, unsigned sweep_jobs = 0);

// Cold-start evaluation of one configuration against an already-packed
// stream (capture_packed / load_packed_trace output). Stats are
// bit-identical to measure_config over the unpacked records for every
// engine: the reference path replays block << 4, and no 16 B-or-wider
// geometry inspects the discarded low bits.
CacheStats measure_config_packed(const CacheConfig& cfg,
                                 std::span<const std::uint32_t> packed,
                                 const TimingParams& timing = {},
                                 ReplayEngine engine = ReplayEngine::kDefault);

// Bank evaluation: evaluate every configuration cold against one stream,
// decoding the trace once. stats[i] is bit-identical to
// measure_config(configs[i], stream, timing); the sweep tests assert this.
// The oneshot engine groups the bank's configs by line size and evaluates
// every group of two or more in a single stack-distance traversal
// (StackSweepSim), falling back to the fast kernel for singleton groups;
// the fast engine packs the stream once and runs config-major; the
// reference engine interleaves all caches over a single record pass.
// The scratch overload reuses a caller-provided packed-stream buffer
// across calls (the packing is otherwise reallocated per bank).
std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing = {},
    ReplayEngine engine = ReplayEngine::kDefault);
std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing, ReplayEngine engine,
    std::vector<std::uint32_t>& packed_scratch);

// Incremental bank evaluation over a *packed* stream. Construction fixes
// the configurations and engine; feed() folds any number of in-order
// packed slices — the streaming pipeline's chunks, or one whole stream —
// and stats() returns results bit-identical to measure_config_bank() over
// the concatenation of everything fed. All three engines accumulate across
// replay calls by construction, which is what lets a capture thread
// overlap the sweep chunk by chunk. The engine is resolved at
// construction, so a bank outlives later set_default_replay_engine calls.
//
// The reference path feeds ConfigurableCache::access(block << 4, write):
// packing discards the low 4 address bits, which no 16 B-or-wider cache
// geometry ever inspects (the equivalence suite proves stats invariance).
//
// Parallel sweep (oneshot engine only): with sweep_jobs > 1 each feed()
// scatters the packed chunk into partition buckets keyed by bits
// [B, B + log2(parts)) of the 16 B block number, where B and the
// partition count are derived from the bank: B is the largest
// line-size shift of any oneshot-grouped config (so the key sits at or
// above line granularity for everyone) and the key width is capped by
// the narrowest set-index span, min over configs of
// log2(line/16) + log2(sets) - B. For the platform bank that yields the
// historical bits 2..6 and up to 32 partitions; for scaled geometry
// banks (whose smallest configs may have as few as 4 sets) the count is
// clamped further. Either way every bucket is a union of whole cache
// sets of EVERY grouped config and the sublines of any logical line
// land in one bucket together. Cold-start set-indexed caches factorize
// over sets, so each shard's sim replica replays its buckets (in stream
// order within a bucket) and accumulates exactly the histogram its sets
// would have contributed serially. stats() sums the per-shard Totals —
// exact integer addition — making the merged CacheStats bit-identical
// to a serial sweep for every shard count; tests/sharded_sweep_test.cpp
// enforces this. Shard 0 runs on the calling thread; shards 1..jobs-1
// run on a lazily spawned ThreadPool owned by the accumulator. The
// reference/fast/singleton paths stay serial (nothing shares their
// traversal, so the oneshot groups are where the wall-clock lives).
//
// The geometry-bank constructor accepts a scaled space's CacheGeometry
// list under the same contract: oneshot groups line-size families into
// NestedSweepSim traversals, fast/reference use FastGeomSim/CacheModel,
// and stats()[i] is bit-identical to CacheModel replay. Geometry banks
// require line_bytes >= 16 everywhere (packed streams are 16 B blocks;
// measure_geometry_bank over raw records routes smaller lines around
// the accumulator).
class BankAccumulator {
 public:
  // sweep_jobs: 0 = default_sweep_jobs(); clamped to sweep_partitions().
  BankAccumulator(std::span<const CacheConfig> configs,
                  const TimingParams& timing = {},
                  ReplayEngine engine = ReplayEngine::kDefault,
                  unsigned sweep_jobs = 0);
  // Scaled-space bank: generic CacheModel geometries, all line_bytes >= 16.
  BankAccumulator(std::span<const CacheGeometry> geoms,
                  const TimingParams& timing = {},
                  ReplayEngine engine = ReplayEngine::kDefault,
                  unsigned sweep_jobs = 0);
  ~BankAccumulator();
  BankAccumulator(BankAccumulator&&) noexcept;
  BankAccumulator& operator=(BankAccumulator&&) noexcept;

  void feed(std::span<const std::uint32_t> packed);
  // stats()[i] corresponds to configs[i] at construction. With metrics
  // enabled and jobs > 1, prints the "[sweep] shard imbalance" line.
  std::vector<CacheStats> stats() const;
  std::uint64_t words_fed() const { return words_fed_; }
  // Effective shard count for the oneshot sweep groups (1 = serial).
  unsigned sweep_jobs() const { return jobs_; }

 private:
  void replay_shard(unsigned shard);

  std::size_t n_;
  std::uint64_t words_fed_ = 0;
  // Exactly one of the following banks is populated, per the engine.
  std::vector<ConfigurableCache> reference_bank_;
  std::vector<FastCacheSim> fast_bank_;  // fast engine, index-aligned
  struct SweepGroup {
    std::vector<StackSweepSim> shards;  // [0] runs on the calling thread
    std::vector<CacheConfig> configs;
    std::vector<std::size_t> where;  // indices into the bank's stats
  };
  std::vector<SweepGroup> sweep_groups_;          // oneshot: per line size
  std::vector<std::size_t> singleton_where_;      // oneshot: fallback sims
  std::vector<FastCacheSim> singleton_sims_;
  // Geometry-bank twins of the above (scaled spaces).
  std::vector<CacheModel> geom_reference_bank_;
  std::vector<FastGeomSim> geom_fast_bank_;
  struct GeomSweepGroup {
    std::vector<NestedSweepSim> shards;  // [0] runs on the calling thread
    std::vector<CacheGeometry> geoms;
    std::vector<std::size_t> where;
  };
  std::vector<GeomSweepGroup> geom_groups_;  // oneshot: per line-size family
  std::vector<std::size_t> geom_singleton_where_;
  std::vector<FastGeomSim> geom_singleton_sims_;
  // Parallel-sweep state (jobs_ > 1 only).
  unsigned jobs_ = 1;   // sweep shard count
  unsigned parts_ = 1;  // scatter partitions (power of two, >= jobs_)
  unsigned scatter_shift_ = 2;  // low bit of the partition key
  std::vector<std::vector<std::uint32_t>> part_buf_;  // reused per feed
  std::vector<std::uint64_t> shard_records_;  // per-shard records replayed
  std::unique_ptr<ThreadPool> pool_;          // jobs_ - 1 workers, lazy
};

}  // namespace stcache
