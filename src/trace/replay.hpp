// Replay drivers: feed a captured address stream through a cache model and
// collect the CacheStats that Equation 1 consumes.
//
// Two engines implement cold-start configuration measurement:
//
//   kReference  ConfigurableCache::access() per record — the behavioral
//               model, also usable warm and across reconfigurations.
//   kFast       FastCacheSim (cache/fast_cache.hpp) — SoA line store,
//               precomputed mapping constants, compile-time specialized
//               access loop. Bit-identical CacheStats, several times the
//               throughput; the default for all sweeps.
//
// The engines are interchangeable by construction and the differential
// suite (tests/replay_equivalence_test.cpp) enforces it: every figure or
// table produced with --engine=fast is byte-identical to --engine=reference.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/config.hpp"
#include "cache/configurable_cache.hpp"
#include "trace/trace.hpp"

namespace stcache {

enum class ReplayEngine : std::uint8_t {
  kDefault = 0,  // resolve to the process-wide default (fast unless overridden)
  kReference,
  kFast,
};

// Process-wide default engine used when a measure call passes kDefault.
// Benches set this from --engine=reference|fast before sweeping; reads are
// atomic so sweep worker threads may resolve it concurrently.
ReplayEngine default_replay_engine();
void set_default_replay_engine(ReplayEngine engine);  // kDefault resets to kFast

const char* to_string(ReplayEngine engine);
// Parses "reference" or "fast"; throws stcache::Error on anything else.
ReplayEngine parse_replay_engine(const std::string& name);

// Encode a record stream for FastCacheSim::replay (bit 31 = write, bits
// 30..0 = 16 B block number). Done once per stream and shared by every
// cache in a bank sweep.
std::vector<std::uint32_t> pack_stream(std::span<const TraceRecord> stream);

// Replay `stream` through an existing cache (state and stats accumulate;
// callers that want a cold run construct a fresh cache). Returns the stats
// delta contributed by this replay. Warm replay is inherently a reference-
// model operation: the fast engine only does cold fixed-configuration runs.
CacheStats replay(ConfigurableCache& cache, std::span<const TraceRecord> stream);
CacheStats replay(CacheModel& cache, std::span<const TraceRecord> stream);

// Cold-start evaluation of one configuration against one stream: construct
// a fresh cache, replay, return its stats. This is the paper's
// per-configuration measurement primitive.
CacheStats measure_config(const CacheConfig& cfg,
                          std::span<const TraceRecord> stream,
                          const TimingParams& timing = {},
                          ReplayEngine engine = ReplayEngine::kDefault);

// Full-parameter variant (write policy, victim buffer) used by the
// ablation experiments and the differential-equivalence suite.
struct ReplayParams {
  TimingParams timing{};
  WritePolicy write_policy = WritePolicy::kWriteBack;
  std::uint32_t victim_entries = 0;
  ReplayEngine engine = ReplayEngine::kDefault;
};
CacheStats measure_config_ex(const CacheConfig& cfg,
                             std::span<const TraceRecord> stream,
                             const ReplayParams& params);

CacheStats measure_geometry(const CacheGeometry& g,
                            std::span<const TraceRecord> stream,
                            const TimingParams& timing = {});

// Bank evaluation: evaluate every configuration cold against one stream,
// decoding the trace once. stats[i] is bit-identical to
// measure_config(configs[i], stream, timing); the sweep tests assert this.
// The fast engine packs the stream once and runs config-major (each
// cache's SoA state stays resident while it streams the shared packed
// records); the reference engine interleaves all caches over a single
// record pass, as before.
std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing = {},
    ReplayEngine engine = ReplayEngine::kDefault);

}  // namespace stcache
