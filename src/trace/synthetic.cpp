#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace stcache {

Trace gen_loop_ifetch(std::uint32_t base, std::uint32_t body_bytes,
                      std::uint32_t iterations) {
  if (body_bytes % 4 != 0) fail("gen_loop_ifetch: body must be word aligned");
  Trace t;
  t.reserve(static_cast<std::size_t>(body_bytes / 4) * iterations);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (std::uint32_t off = 0; off < body_bytes; off += 4) {
      t.push_back({base + off, AccessKind::kIFetch});
    }
  }
  return t;
}

Trace gen_strided(std::uint32_t base, std::uint32_t stride, std::uint64_t count,
                  double write_fraction, Rng& rng) {
  Trace t;
  t.reserve(count);
  std::uint32_t addr = base;
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool write = rng.next_bool(write_fraction);
    t.push_back({addr, write ? AccessKind::kWrite : AccessKind::kRead});
    addr += stride;
  }
  return t;
}

Trace gen_uniform(std::uint32_t base, std::uint32_t ws_bytes, std::uint64_t count,
                  double write_fraction, Rng& rng) {
  if (ws_bytes < 4) fail("gen_uniform: working set too small");
  Trace t;
  t.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto off = static_cast<std::uint32_t>(rng.next_below(ws_bytes / 4)) * 4;
    const bool write = rng.next_bool(write_fraction);
    t.push_back({base + off, write ? AccessKind::kWrite : AccessKind::kRead});
  }
  return t;
}

Trace gen_pointer_chase(std::uint32_t base, std::uint32_t ws_bytes,
                        std::uint32_t stride, std::uint64_t count, Rng& rng) {
  const std::uint32_t nodes = ws_bytes / stride;
  if (nodes < 2) fail("gen_pointer_chase: need at least two nodes");
  // Random cyclic permutation (Sattolo's algorithm) of node order.
  std::vector<std::uint32_t> order(nodes);
  std::iota(order.begin(), order.end(), 0u);
  for (std::uint32_t i = nodes - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i));
    std::swap(order[i], order[j]);
  }
  Trace t;
  t.reserve(count);
  std::uint32_t cursor = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    t.push_back({base + order[cursor] * stride, AccessKind::kRead});
    cursor = (cursor + 1) % nodes;
  }
  return t;
}

namespace {

// Sampler for a Zipf distribution over `n` ranks with exponent `s`, using
// inverse-CDF over precomputed cumulative weights (n is at most a few
// hundred thousand here; the table is fine).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s) : cdf_(n) {
    double acc = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    for (double& v : cdf_) v /= acc;
  }

  std::uint32_t sample(Rng& rng) const {
    const double u = rng.next_double();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Trace gen_parser_like(const ParserLikeParams& p) {
  Rng rng(p.seed);
  Trace t;
  t.reserve(p.accesses);

  // Packed address-space layout with small pads, as a real linker would
  // produce: the regions never overlap in index space for any cache at
  // least as large as the total footprint, and wrap uniformly in smaller
  // caches.
  const std::uint32_t dict_base = 0x0010'0000;
  const std::uint32_t input_base = dict_base + p.dict_bytes + 4160;
  const std::uint32_t write_base = input_base + p.input_bytes + 2112;
  const std::uint32_t chase_base = write_base + 4096 + 3136;

  // Dictionary entries are 64 B records; Zipf rank decides which record.
  const std::uint32_t dict_entries = p.dict_bytes / 64;
  ZipfSampler zipf(dict_entries, p.zipf_s);

  // Parse structure: pointer chase over a quarter of the dictionary size.
  const std::uint32_t chase_nodes = std::max(2u, p.dict_bytes / 4 / 32);
  std::vector<std::uint32_t> chase_order(chase_nodes);
  std::iota(chase_order.begin(), chase_order.end(), 0u);
  for (std::uint32_t i = chase_nodes - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i));
    std::swap(chase_order[i], chase_order[j]);
  }

  std::uint32_t input_cursor = 0;
  std::uint32_t chase_cursor = 0;
  for (std::uint64_t i = 0; i < p.accesses; ++i) {
    const double u = rng.next_double();
    if (u < p.dict_fraction) {
      const std::uint32_t entry = zipf.sample(rng);
      const auto word = static_cast<std::uint32_t>(rng.next_below(16)) * 4;
      t.push_back({dict_base + entry * 64 + word, AccessKind::kRead});
    } else if (u < p.dict_fraction + p.chase_fraction) {
      t.push_back({chase_base + chase_order[chase_cursor] * 32, AccessKind::kRead});
      chase_cursor = (chase_cursor + 1) % chase_nodes;
    } else {
      t.push_back({input_base + input_cursor, AccessKind::kRead});
      input_cursor = (input_cursor + 4) % p.input_bytes;
      if (rng.next_bool(0.2)) {
        // Occasional write of parse output next to the input stream.
        t.push_back({write_base + (input_cursor % 4096), AccessKind::kWrite});
      }
    }
  }
  return t;
}

}  // namespace stcache
