// N-producer sharded session queues: the multi-tenant generalization of
// the single-SPSC streaming pipeline in trace/stream.hpp.
//
// stream.hpp moves ONE workload's packed chunks from one capture thread to
// one consumer. A tuning service (serve/server.hpp, tools/stcache_tuned)
// instead has many concurrent producers — one connection reader per client
// session — and a fixed pool of sweep workers. This header provides the
// three pieces that topology needs, with the same free-list-recycling,
// bounded-memory discipline the SPSC queue established:
//
//   ChunkPool             A FIXED budget of packed-word buffers shared by
//                         every session (TrustedSSD-style static buffer
//                         pool: total serving memory is capacity ×
//                         chunk_words × 4 bytes, decided at startup and
//                         never exceeded). acquire() blocks when the pool
//                         is dry — that is the global backpressure, which
//                         propagates to clients through the reader's
//                         socket.
//
//   ShardedSessionQueues  The session registry plus per-shard work queues.
//                         A session is opened by a producer, pinned to one
//                         shard (round-robin) for its lifetime, and pushes
//                         chunks in order; each shard is drained by exactly
//                         one worker thread, which round-robins across the
//                         shard's sessions (per-session FIFO, cross-session
//                         fairness). A bounded per-session chunk budget
//                         keeps one fast producer from monopolizing the
//                         pool: push() blocks once `session_budget` chunks
//                         are in flight until the worker releases some.
//
//   SessionState          The per-session lifecycle:
//
//                             open_session          finish        verdict
//                         ──▶ kStreaming ────────▶ kFinishing ──▶ kDone
//                                 │   │                │
//                       (producer │   │ (worker error) │
//                        vanished)▼   ▼                ▼
//                           kAbandoned   kPoisoned (CRC/decode failure)
//
//                         Poisoning and abandonment purge the session's
//                         queued chunks back to the pool and affect ONLY
//                         that session: the worker pool and every other
//                         session keep running — the serving-tier version
//                         of the PR 2 controller's per-session fault
//                         isolation (docs/robustness.md, docs/serving.md).
//
// Thread safety: one mutex guards the registry and all shard queues
// (operations are chunk-granular, so contention is negligible against the
// sweep work each chunk represents); per-shard condition variables wake
// exactly the shard's worker. Producers may call from any thread; each
// shard must be drained by a single worker thread — per-session chunk
// order then follows from the FIFO queue, with no cross-worker session
// sharing by construction.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace stcache {

// One packed-words buffer drawn from a ChunkPool. `count` words of `words`
// are valid; the vector keeps its full pool-decided capacity so recycled
// buffers never reallocate (the PackedChunk discipline of stream.hpp).
struct PooledChunk {
  std::vector<std::uint32_t> words;
  std::size_t count = 0;

  std::span<const std::uint32_t> valid_words() const {
    return {words.data(), count};
  }
};

// Fixed-size pool of chunk buffers. Buffers are allocated lazily up to
// `capacity`, then recycled forever: steady-state serving memory is flat
// regardless of how many sessions come and go.
class ChunkPool {
 public:
  ChunkPool(std::size_t capacity, std::size_t chunk_words);

  // A free buffer, its count reset. Blocks while every buffer is in
  // flight; throws stcache::Error after shutdown() (so blocked producers
  // unwind when the server stops).
  PooledChunk acquire();
  // Deadline-bounded acquire: true and a buffer in `out`, or false once
  // `deadline` passes with the pool still dry (the caller's cue to shed
  // its session instead of pinning a reader thread forever). Still throws
  // after shutdown().
  bool acquire_until(std::chrono::steady_clock::time_point deadline,
                     PooledChunk& out);
  // Hand a buffer back; never blocks.
  void release(PooledChunk&& chunk);
  // Unblock every acquire() with an error; release() still accepted.
  void shutdown();

  std::size_t capacity() const { return capacity_; }
  std::size_t chunk_words() const { return chunk_words_; }
  // Buffers not currently held by a producer/queue/worker (tests).
  std::size_t available() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable can_acquire_;
  std::vector<PooledChunk> free_;
  std::size_t allocated_ = 0;
  const std::size_t capacity_;
  const std::size_t chunk_words_;
  bool shutdown_ = false;
};

enum class SessionState : std::uint8_t {
  kStreaming,   // accepting chunks
  kFinishing,   // FIN queued; worker will emit the verdict
  kDone,        // verdict (or error) delivered
  kPoisoned,    // CRC/decode/protocol failure: no verdict will ever come
  kAbandoned,   // producer vanished mid-stream
  kClosed,      // unregistered (state() result for unknown ids)
};
const char* to_string(SessionState s);

// The session registry and the sharded work queues, as described above.
class ShardedSessionQueues {
 public:
  // One work item as a shard worker sees it: a chunk of `session`'s packed
  // stream, or the end-of-stream marker (`fin`, carrying no buffer).
  struct Item {
    std::uint64_t session = 0;
    PooledChunk chunk;
    bool fin = false;
  };

  ShardedSessionQueues(std::size_t num_shards, ChunkPool& pool,
                       std::size_t session_budget);

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t session_budget() const { return session_budget_; }

  // --- producer side (any thread) ------------------------------------------
  // Register a new session and pin it to a shard (round-robin). Session
  // ids are process-unique and never reused.
  std::uint64_t open_session();
  std::size_t shard_of(std::uint64_t session) const;
  // Queue one chunk in stream order. Blocks while the session already has
  // `session_budget` chunks in flight (queued or held by the worker).
  // Returns false — recycling the chunk — if the session stopped accepting
  // (poisoned, abandoned, or shutdown).
  bool push(std::uint64_t session, PooledChunk&& chunk);
  // Deadline-bounded push: kTimedOut (chunk recycled) if the session is
  // still over budget when `deadline` passes — a worker wedged on this
  // shard must not pin the reader past its session deadline.
  enum class PushResult { kAccepted, kRefused, kTimedOut };
  PushResult push_until(std::uint64_t session, PooledChunk&& chunk,
                        std::chrono::steady_clock::time_point deadline);
  // Queue the end-of-stream marker; kStreaming -> kFinishing. Returns
  // false if the session is not streaming (e.g. already poisoned).
  bool finish(std::uint64_t session);
  // Producer vanished: purge queued chunks back to the pool, unblock any
  // stuck push(), -> kAbandoned. The worker drops whatever it still sees.
  void abandon(std::uint64_t session);
  // Forget the session entirely (purges leftovers). state() -> kClosed.
  void close_session(std::uint64_t session);

  // --- consumer side (one worker thread per shard) --------------------------
  // Next item for `shard`, fair across its sessions (per-session FIFO,
  // round-robin between sessions with pending work). Blocks until an item
  // arrives; returns false once shutdown() has been called and the shard
  // is drained.
  bool pop(std::size_t shard, Item& out);
  // Recycle a processed item's buffer and credit the session's budget.
  void release(Item&& item);
  // Worker hit a CRC/decode failure in this session's stream: purge it,
  // refuse further chunks, -> kPoisoned. Only this session is affected.
  void poison(std::uint64_t session);
  // Verdict (or error) delivered; kFinishing -> kDone.
  void mark_done(std::uint64_t session);

  SessionState state(std::uint64_t session) const;
  std::size_t sessions_open() const;

  // Unblock all producers and workers; pop() drains then returns false.
  void shutdown();

 private:
  struct Session {
    std::size_t shard = 0;
    SessionState state = SessionState::kStreaming;
    std::size_t in_flight = 0;  // pushed, not yet release()d
  };
  struct Shard {
    // Per-session FIFO of pending items...
    std::unordered_map<std::uint64_t, std::deque<Item>> pending;
    // ...and the round-robin rotation over sessions with pending work.
    std::deque<std::uint64_t> ready;
  };

  // Purge `session`'s queued items from its shard back to the pool.
  // Caller holds mu_.
  void purge_locked(std::uint64_t session, Session& s);

  ChunkPool& pool_;
  const std::size_t session_budget_;
  mutable std::mutex mu_;
  std::condition_variable can_push_;                // budget waiters
  std::vector<std::condition_variable> can_pop_;    // one per shard
  std::vector<Shard> shards_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_ = 1;
  std::size_t next_shard_ = 0;
  bool shutdown_ = false;
};

}  // namespace stcache
