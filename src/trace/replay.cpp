#include "trace/replay.hpp"

#include <atomic>

#include "cache/fast_cache.hpp"
#include "util/error.hpp"

namespace stcache {

namespace {

std::atomic<ReplayEngine> g_default_engine{ReplayEngine::kFast};

ReplayEngine resolve(ReplayEngine engine) {
  return engine == ReplayEngine::kDefault
             ? g_default_engine.load(std::memory_order_relaxed)
             : engine;
}

}  // namespace

ReplayEngine default_replay_engine() {
  return g_default_engine.load(std::memory_order_relaxed);
}

void set_default_replay_engine(ReplayEngine engine) {
  g_default_engine.store(
      engine == ReplayEngine::kDefault ? ReplayEngine::kFast : engine,
      std::memory_order_relaxed);
}

const char* to_string(ReplayEngine engine) {
  switch (engine) {
    case ReplayEngine::kDefault: return "default";
    case ReplayEngine::kReference: return "reference";
    case ReplayEngine::kFast: return "fast";
  }
  return "?";
}

ReplayEngine parse_replay_engine(const std::string& name) {
  if (name == "reference") return ReplayEngine::kReference;
  if (name == "fast") return ReplayEngine::kFast;
  fail("unknown replay engine '" + name + "' (expected reference|fast)");
}

std::vector<std::uint32_t> pack_stream(std::span<const TraceRecord> stream) {
  std::vector<std::uint32_t> packed;
  packed.reserve(stream.size());
  for (const TraceRecord& r : stream) {
    packed.push_back((r.addr >> 4) | (r.kind == AccessKind::kWrite
                                          ? FastCacheSim::kPackedWriteBit
                                          : 0u));
  }
  return packed;
}

CacheStats replay(ConfigurableCache& cache, std::span<const TraceRecord> stream) {
  const CacheStats before = cache.stats();
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats() - before;
}

CacheStats replay(CacheModel& cache, std::span<const TraceRecord> stream) {
  const CacheStats before = cache.stats();
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats() - before;
}

CacheStats measure_config_ex(const CacheConfig& cfg,
                             std::span<const TraceRecord> stream,
                             const ReplayParams& params) {
  if (resolve(params.engine) == ReplayEngine::kFast) {
    FastCacheSim sim(cfg, params.timing, params.write_policy,
                     params.victim_entries);
    sim.replay(pack_stream(stream));
    return sim.stats();
  }
  ConfigurableCache cache(cfg, params.timing, params.write_policy,
                          params.victim_entries);
  return replay(cache, stream);
}

CacheStats measure_config(const CacheConfig& cfg,
                          std::span<const TraceRecord> stream,
                          const TimingParams& timing, ReplayEngine engine) {
  ReplayParams params;
  params.timing = timing;
  params.engine = engine;
  return measure_config_ex(cfg, stream, params);
}

CacheStats measure_geometry(const CacheGeometry& g,
                            std::span<const TraceRecord> stream,
                            const TimingParams& timing) {
  CacheModel cache(g, timing);
  return replay(cache, stream);
}

std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing, ReplayEngine engine) {
  std::vector<CacheStats> stats;
  stats.reserve(configs.size());
  if (resolve(engine) == ReplayEngine::kFast) {
    // Decode/pack once, then run config-major: each cache's few-KB SoA
    // state stays cache-resident while it streams the shared packed
    // records, instead of thrashing the whole bank's state per record.
    const std::vector<std::uint32_t> packed = pack_stream(stream);
    for (const CacheConfig& cfg : configs) {
      FastCacheSim sim(cfg, timing);
      sim.replay(packed);
      stats.push_back(sim.stats());
    }
    return stats;
  }
  std::vector<ConfigurableCache> bank;
  bank.reserve(configs.size());
  for (const CacheConfig& cfg : configs) bank.emplace_back(cfg, timing);
  for (const TraceRecord& r : stream) {
    const bool write = r.kind == AccessKind::kWrite;
    for (ConfigurableCache& cache : bank) cache.access(r.addr, write);
  }
  for (const ConfigurableCache& cache : bank) stats.push_back(cache.stats());
  return stats;
}

}  // namespace stcache
