#include "trace/replay.hpp"

namespace stcache {

CacheStats replay(ConfigurableCache& cache, std::span<const TraceRecord> stream) {
  const CacheStats before = cache.stats();
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats() - before;
}

CacheStats replay(CacheModel& cache, std::span<const TraceRecord> stream) {
  const CacheStats before = cache.stats();
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats() - before;
}

CacheStats measure_config(const CacheConfig& cfg,
                          std::span<const TraceRecord> stream,
                          const TimingParams& timing) {
  ConfigurableCache cache(cfg, timing);
  return replay(cache, stream);
}

CacheStats measure_geometry(const CacheGeometry& g,
                            std::span<const TraceRecord> stream,
                            const TimingParams& timing) {
  CacheModel cache(g, timing);
  return replay(cache, stream);
}

std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing) {
  std::vector<ConfigurableCache> bank;
  bank.reserve(configs.size());
  for (const CacheConfig& cfg : configs) bank.emplace_back(cfg, timing);
  for (const TraceRecord& r : stream) {
    const bool write = r.kind == AccessKind::kWrite;
    for (ConfigurableCache& cache : bank) cache.access(r.addr, write);
  }
  std::vector<CacheStats> stats;
  stats.reserve(bank.size());
  for (const ConfigurableCache& cache : bank) stats.push_back(cache.stats());
  return stats;
}

}  // namespace stcache
