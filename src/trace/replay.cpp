#include "trace/replay.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <future>
#include <iostream>

#include "cache/fast_cache.hpp"
#include "cache/stack_sweep.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace stcache {

namespace {

std::atomic<ReplayEngine> g_default_engine{ReplayEngine::kOneshot};

ReplayEngine resolve(ReplayEngine engine) {
  return engine == ReplayEngine::kDefault
             ? g_default_engine.load(std::memory_order_relaxed)
             : engine;
}

// Upper bound on partitions AND shards. The partition key uses bits 2..6
// of the 16 B block number; those five bits are the intersection of the
// set-index bit ranges of every supported configuration (128 sets at 64 B
// lines indexes bits 2..8, 128 sets at 16 B lines indexes bits 0..6), so
// a coarser key would split some configuration's set across partitions
// and break the exact-merge argument.
constexpr unsigned kMaxSweepPartitions = 32;

// 0 = resolve from the environment (STCACHE_SWEEP_JOBS, else serial).
std::atomic<unsigned> g_sweep_jobs{0};

unsigned clamp_jobs(long v) {
  if (v < 1) return 1;
  if (v > static_cast<long>(kMaxSweepPartitions)) return kMaxSweepPartitions;
  return static_cast<unsigned>(v);
}

unsigned env_sweep_jobs() {
  static const unsigned resolved = [] {
    if (const char* e = std::getenv("STCACHE_SWEEP_JOBS")) {
      return clamp_jobs(std::strtol(e, nullptr, 10));
    }
    return 1u;
  }();
  return resolved;
}

}  // namespace

unsigned default_sweep_jobs() {
  const unsigned v = g_sweep_jobs.load(std::memory_order_relaxed);
  return v != 0 ? v : env_sweep_jobs();
}

void set_default_sweep_jobs(unsigned jobs) {
  g_sweep_jobs.store(jobs == 0 ? 0 : clamp_jobs(static_cast<long>(jobs)),
                     std::memory_order_relaxed);
}

unsigned sweep_partitions() {
  static const unsigned parts = [] {
    unsigned p = kMaxSweepPartitions;
    if (const char* e = std::getenv("STCACHE_SWEEP_PARTITIONS")) {
      p = clamp_jobs(std::strtol(e, nullptr, 10));
    }
    return std::bit_floor(p);  // the scatter key is (block >> 2) & (p - 1)
  }();
  return parts;
}

ReplayEngine default_replay_engine() {
  return g_default_engine.load(std::memory_order_relaxed);
}

void set_default_replay_engine(ReplayEngine engine) {
  g_default_engine.store(
      engine == ReplayEngine::kDefault ? ReplayEngine::kOneshot : engine,
      std::memory_order_relaxed);
}

const char* to_string(ReplayEngine engine) {
  switch (engine) {
    case ReplayEngine::kDefault: return "default";
    case ReplayEngine::kReference: return "reference";
    case ReplayEngine::kFast: return "fast";
    case ReplayEngine::kOneshot: return "oneshot";
  }
  return "?";
}

ReplayEngine parse_replay_engine(const std::string& name) {
  if (name == "reference") return ReplayEngine::kReference;
  if (name == "fast") return ReplayEngine::kFast;
  if (name == "oneshot") return ReplayEngine::kOneshot;
  fail("unknown replay engine '" + name + "' (expected reference|fast|oneshot)");
}

void pack_stream(std::span<const TraceRecord> stream,
                 std::vector<std::uint32_t>& out) {
  out.clear();
  out.reserve(stream.size());
  for (const TraceRecord& r : stream) {
    out.push_back((r.addr >> 4) | (r.kind == AccessKind::kWrite
                                       ? FastCacheSim::kPackedWriteBit
                                       : 0u));
  }
}

std::vector<std::uint32_t> pack_stream(std::span<const TraceRecord> stream) {
  std::vector<std::uint32_t> packed;
  pack_stream(stream, packed);
  return packed;
}

CacheStats replay(ConfigurableCache& cache, std::span<const TraceRecord> stream) {
  const CacheStats before = cache.stats();
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats() - before;
}

CacheStats replay(CacheModel& cache, std::span<const TraceRecord> stream) {
  const CacheStats before = cache.stats();
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats() - before;
}

CacheStats measure_config_ex(const CacheConfig& cfg,
                             std::span<const TraceRecord> stream,
                             const ReplayParams& params) {
  const ReplayEngine engine = resolve(params.engine);
  // The oneshot kernel only pays off across a bank; a single-configuration
  // measurement (and anything write-through or victim-buffered, which is
  // outside the stack kernel's scope) runs on the fast engine.
  if (engine == ReplayEngine::kFast || engine == ReplayEngine::kOneshot) {
    FastCacheSim sim(cfg, params.timing, params.write_policy,
                     params.victim_entries);
    sim.replay(pack_stream(stream));
    return sim.stats();
  }
  ConfigurableCache cache(cfg, params.timing, params.write_policy,
                          params.victim_entries);
  return replay(cache, stream);
}

CacheStats measure_config(const CacheConfig& cfg,
                          std::span<const TraceRecord> stream,
                          const TimingParams& timing, ReplayEngine engine) {
  ReplayParams params;
  params.timing = timing;
  params.engine = engine;
  return measure_config_ex(cfg, stream, params);
}

CacheStats measure_geometry(const CacheGeometry& g,
                            std::span<const TraceRecord> stream,
                            const TimingParams& timing, ReplayEngine engine) {
  // Sub-16 B lines index below the packed 16 B block granularity, so they
  // stay on the reference model over the raw addresses regardless of the
  // requested engine.
  if (resolve(engine) == ReplayEngine::kReference || g.line_bytes < 16) {
    CacheModel cache(g, timing);
    return replay(cache, stream);
  }
  FastGeomSim sim(g, timing);
  sim.replay(pack_stream(stream));
  return sim.stats();
}

CacheStats measure_geometry_packed(const CacheGeometry& g,
                                   std::span<const std::uint32_t> packed,
                                   const TimingParams& timing,
                                   ReplayEngine engine) {
  if (g.line_bytes < 16) {
    fail("measure_geometry_packed: sub-16 B line geometry cannot replay a "
         "packed 16 B-block stream");
  }
  if (resolve(engine) == ReplayEngine::kReference) {
    CacheModel cache(g, timing);
    for (const std::uint32_t word : packed) {
      cache.access((word & FastCacheSim::kPackedBlockMask) << 4,
                   (word & FastCacheSim::kPackedWriteBit) != 0);
    }
    return cache.stats();
  }
  FastGeomSim sim(g, timing);
  sim.replay(packed);
  return sim.stats();
}

CacheStats measure_config_packed(const CacheConfig& cfg,
                                 std::span<const std::uint32_t> packed,
                                 const TimingParams& timing,
                                 ReplayEngine engine) {
  if (resolve(engine) == ReplayEngine::kReference) {
    ConfigurableCache cache(cfg, timing);
    for (const std::uint32_t word : packed) {
      cache.access((word & FastCacheSim::kPackedBlockMask) << 4,
                   (word & FastCacheSim::kPackedWriteBit) != 0);
    }
    return cache.stats();
  }
  FastCacheSim sim(cfg, timing);
  sim.replay(packed);
  return sim.stats();
}

BankAccumulator::BankAccumulator(std::span<const CacheConfig> configs,
                                 const TimingParams& timing,
                                 ReplayEngine engine, unsigned sweep_jobs)
    : n_(configs.size()) {
  switch (resolve(engine)) {
    case ReplayEngine::kReference:
      reference_bank_.reserve(n_);
      for (const CacheConfig& cfg : configs) {
        reference_bank_.emplace_back(cfg, timing);
      }
      break;
    case ReplayEngine::kFast:
      fast_bank_.reserve(n_);
      for (const CacheConfig& cfg : configs) {
        fast_bank_.emplace_back(cfg, timing);
      }
      break;
    default:
      // Oneshot: one stack-distance traversal per line size evaluates every
      // configuration of that group at once; a singleton group gains
      // nothing from the shared traversal and runs on the fast kernel.
      for (const LineBytes line : kLineSizes) {
        std::vector<CacheConfig> group;
        std::vector<std::size_t> where;
        for (std::size_t i = 0; i < n_; ++i) {
          if (configs[i].line == line) {
            group.push_back(configs[i]);
            where.push_back(i);
          }
        }
        if (group.empty()) continue;
        if (group.size() == 1) {
          singleton_where_.push_back(where.front());
          singleton_sims_.emplace_back(group.front(), timing);
          continue;
        }
        SweepGroup g;
        g.shards.emplace_back(group, timing);
        g.configs = std::move(group);
        g.where = std::move(where);
        sweep_groups_.push_back(std::move(g));
      }
      if (!sweep_groups_.empty()) {
        if (sweep_jobs == 0) sweep_jobs = default_sweep_jobs();
        parts_ = sweep_partitions();
        jobs_ = std::min(clamp_jobs(static_cast<long>(sweep_jobs)), parts_);
        if (jobs_ > 1) {
          // One sim replica per shard per group; each shard accumulates
          // the partitions it owns and stats() sums the Totals.
          for (SweepGroup& g : sweep_groups_) {
            g.shards.reserve(jobs_);
            for (unsigned s = 1; s < jobs_; ++s) {
              g.shards.emplace_back(g.configs, timing);
            }
          }
          part_buf_.resize(parts_);
          shard_records_.assign(jobs_, 0);
        }
      }
      break;
  }
}

BankAccumulator::BankAccumulator(std::span<const CacheGeometry> geoms,
                                 const TimingParams& timing,
                                 ReplayEngine engine, unsigned sweep_jobs)
    : n_(geoms.size()) {
  for (const CacheGeometry& g : geoms) {
    if (!g.valid() || g.line_bytes < 16) {
      fail("BankAccumulator: geometry bank requires valid line_bytes >= 16 "
           "geometries (measure_geometry_bank over records routes smaller "
           "lines to the reference model)");
    }
  }
  switch (resolve(engine)) {
    case ReplayEngine::kReference:
      geom_reference_bank_.reserve(n_);
      for (const CacheGeometry& g : geoms) {
        geom_reference_bank_.emplace_back(g, timing);
      }
      break;
    case ReplayEngine::kFast:
      geom_fast_bank_.reserve(n_);
      for (const CacheGeometry& g : geoms) {
        geom_fast_bank_.emplace_back(g, timing);
      }
      break;
    default: {
      // Oneshot: one generalized stack-distance traversal per line-size
      // family (set counts of one family always nest: powers of two).
      // Deterministic family order: ascending line size.
      std::vector<std::uint32_t> lines;
      for (const CacheGeometry& g : geoms) {
        if (std::find(lines.begin(), lines.end(), g.line_bytes) ==
            lines.end()) {
          lines.push_back(g.line_bytes);
        }
      }
      std::sort(lines.begin(), lines.end());
      for (const std::uint32_t line : lines) {
        std::vector<CacheGeometry> family;
        std::vector<std::size_t> where;
        for (std::size_t i = 0; i < n_; ++i) {
          if (geoms[i].line_bytes == line) {
            family.push_back(geoms[i]);
            where.push_back(i);
          }
        }
        if (family.size() == 1) {
          geom_singleton_where_.push_back(where.front());
          geom_singleton_sims_.emplace_back(family.front(), timing);
          continue;
        }
        GeomSweepGroup g;
        g.shards.emplace_back(family, timing);
        g.geoms = std::move(family);
        g.where = std::move(where);
        geom_groups_.push_back(std::move(g));
      }
      if (!geom_groups_.empty()) {
        if (sweep_jobs == 0) sweep_jobs = default_sweep_jobs();
        // Partition key derivation (see the class comment): the key must
        // sit at or above every family's line granularity and inside the
        // narrowest set-index span of any grouped geometry.
        unsigned max_shift = 0, min_top = 31;
        for (const GeomSweepGroup& g : geom_groups_) {
          for (const CacheGeometry& geo : g.geoms) {
            const unsigned k = static_cast<unsigned>(
                std::countr_zero(geo.line_bytes)) - 4;
            max_shift = std::max(max_shift, k);
            min_top = std::min(
                min_top,
                k + static_cast<unsigned>(std::countr_zero(geo.num_sets())));
          }
        }
        scatter_shift_ = max_shift;
        const unsigned key_bits =
            min_top > max_shift ? min_top - max_shift : 0;
        parts_ = std::min(sweep_partitions(),
                          key_bits >= 5 ? kMaxSweepPartitions : 1u << key_bits);
        jobs_ = std::min(clamp_jobs(static_cast<long>(sweep_jobs)), parts_);
        if (jobs_ > 1) {
          for (GeomSweepGroup& g : geom_groups_) {
            g.shards.reserve(jobs_);
            for (unsigned s = 1; s < jobs_; ++s) {
              g.shards.emplace_back(g.geoms, timing);
            }
          }
          part_buf_.resize(parts_);
          shard_records_.assign(jobs_, 0);
        }
      }
      break;
    }
  }
}

BankAccumulator::~BankAccumulator() = default;
BankAccumulator::BankAccumulator(BankAccumulator&&) noexcept = default;
BankAccumulator& BankAccumulator::operator=(BankAccumulator&&) noexcept =
    default;

void BankAccumulator::replay_shard(unsigned shard) {
  std::uint64_t fed = 0;
  for (unsigned p = shard; p < parts_; p += jobs_) {
    const std::vector<std::uint32_t>& bucket = part_buf_[p];
    if (bucket.empty()) continue;
    fed += bucket.size();
    for (SweepGroup& g : sweep_groups_) g.shards[shard].replay(bucket);
    for (GeomSweepGroup& g : geom_groups_) g.shards[shard].replay(bucket);
  }
  shard_records_[shard] += fed;
}

void BankAccumulator::feed(std::span<const std::uint32_t> packed) {
  words_fed_ += packed.size();
  if (!reference_bank_.empty() || !geom_reference_bank_.empty()) {
    for (const std::uint32_t word : packed) {
      const std::uint32_t addr = (word & FastCacheSim::kPackedBlockMask) << 4;
      const bool write = (word & FastCacheSim::kPackedWriteBit) != 0;
      for (ConfigurableCache& cache : reference_bank_) {
        cache.access(addr, write);
      }
      for (CacheModel& cache : geom_reference_bank_) {
        cache.access(addr, write);
      }
    }
    return;
  }
  for (FastCacheSim& sim : fast_bank_) sim.replay(packed);
  for (FastGeomSim& sim : geom_fast_bank_) sim.replay(packed);
  if (jobs_ > 1 && !packed.empty()) {
    // Scatter into set partitions (stream order preserved within each
    // bucket — the only order that matters, since partitions never share
    // a cache set), then replay every shard's buckets through its sim
    // replicas. Shard 0 runs here; the pool spawns on first use.
    for (std::vector<std::uint32_t>& bucket : part_buf_) bucket.clear();
    const std::uint32_t pmask = parts_ - 1;
    for (const std::uint32_t word : packed) {
      // Key bits [scatter_shift_, scatter_shift_ + log2(parts_)) of the
      // block number (the write bit is stripped first; for the platform
      // bank this is the historical bits 2..6).
      part_buf_[((word & FastCacheSim::kPackedBlockMask) >> scatter_shift_) &
                pmask]
          .push_back(word);
    }
    if (!pool_) pool_ = std::make_unique<ThreadPool>(jobs_ - 1);
    std::vector<std::future<void>> pending;
    pending.reserve(jobs_ - 1);
    for (unsigned s = 1; s < jobs_; ++s) {
      pending.push_back(pool_->submit([this, s] { replay_shard(s); }));
    }
    replay_shard(0);
    for (std::future<void>& f : pending) f.get();  // rethrows shard errors
  } else {
    for (SweepGroup& g : sweep_groups_) g.shards.front().replay(packed);
    for (GeomSweepGroup& g : geom_groups_) g.shards.front().replay(packed);
  }
  for (FastCacheSim& sim : singleton_sims_) sim.replay(packed);
  for (FastGeomSim& sim : geom_singleton_sims_) sim.replay(packed);
}

std::vector<CacheStats> BankAccumulator::stats() const {
  std::vector<CacheStats> out(n_);
  for (std::size_t i = 0; i < reference_bank_.size(); ++i) {
    out[i] = reference_bank_[i].stats();
  }
  for (std::size_t i = 0; i < fast_bank_.size(); ++i) {
    out[i] = fast_bank_[i].stats();
  }
  for (std::size_t i = 0; i < geom_reference_bank_.size(); ++i) {
    out[i] = geom_reference_bank_[i].stats();
  }
  for (std::size_t i = 0; i < geom_fast_bank_.size(); ++i) {
    out[i] = geom_fast_bank_[i].stats();
  }
  for (const SweepGroup& g : sweep_groups_) {
    StackSweepSim::Totals totals;
    for (const StackSweepSim& shard : g.shards) shard.add_totals(totals);
    for (std::size_t j = 0; j < g.configs.size(); ++j) {
      out[g.where[j]] = g.shards.front().stats_from(totals, g.configs[j]);
    }
  }
  for (const GeomSweepGroup& g : geom_groups_) {
    NestedSweepSim::Totals totals;
    for (const NestedSweepSim& shard : g.shards) shard.add_totals(totals);
    for (std::size_t j = 0; j < g.geoms.size(); ++j) {
      out[g.where[j]] = g.shards.front().stats_from(totals, g.geoms[j]);
    }
  }
  for (std::size_t i = 0; i < singleton_sims_.size(); ++i) {
    out[singleton_where_[i]] = singleton_sims_[i].stats();
  }
  for (std::size_t i = 0; i < geom_singleton_sims_.size(); ++i) {
    out[geom_singleton_where_[i]] = geom_singleton_sims_[i].stats();
  }
  if (jobs_ > 1 && metrics_enabled()) {
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (const std::uint64_t c : shard_records_) {
      total += c;
      peak = std::max(peak, c);
    }
    if (total > 0) {
      const double mean = static_cast<double>(total) / jobs_;
      std::cerr << "[sweep] shard imbalance: jobs=" << jobs_
                << " partitions=" << parts_ << " max=" << peak
                << " mean=" << static_cast<std::uint64_t>(mean)
                << " max/mean=" << peak / mean << "\n";
    }
  }
  return out;
}

std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing, ReplayEngine engine,
    std::vector<std::uint32_t>& packed_scratch) {
  const ReplayEngine resolved = resolve(engine);
  if (resolved == ReplayEngine::kReference) {
    // The reference bank keeps its historical record-major loop over the
    // raw (unpacked) addresses: no packing pass, and full addresses in
    // case a future geometry ever looks below bit 4.
    std::vector<CacheStats> stats(configs.size());
    std::vector<ConfigurableCache> bank;
    bank.reserve(configs.size());
    for (const CacheConfig& cfg : configs) bank.emplace_back(cfg, timing);
    for (const TraceRecord& r : stream) {
      const bool write = r.kind == AccessKind::kWrite;
      for (ConfigurableCache& cache : bank) cache.access(r.addr, write);
    }
    for (std::size_t i = 0; i < configs.size(); ++i) stats[i] = bank[i].stats();
    return stats;
  }

  // Decode/pack once; the packed engines stream the shared packed records
  // with their few-KB working state cache-resident. One whole-stream feed
  // through the accumulator is exactly the old one-shot bank sweep.
  pack_stream(stream, packed_scratch);
  BankAccumulator bank(configs, timing, resolved);
  bank.feed(packed_scratch);
  return bank.stats();
}

std::vector<CacheStats> measure_config_bank(
    std::span<const CacheConfig> configs, std::span<const TraceRecord> stream,
    const TimingParams& timing, ReplayEngine engine) {
  std::vector<std::uint32_t> packed;
  return measure_config_bank(configs, stream, timing, engine, packed);
}

std::vector<CacheStats> measure_geometry_bank(
    std::span<const CacheGeometry> geoms,
    std::span<const std::uint32_t> packed, const TimingParams& timing,
    ReplayEngine engine, unsigned sweep_jobs) {
  BankAccumulator bank(geoms, timing, engine, sweep_jobs);
  bank.feed(packed);
  return bank.stats();
}

std::vector<CacheStats> measure_geometry_bank(
    std::span<const CacheGeometry> geoms, std::span<const TraceRecord> stream,
    const TimingParams& timing, ReplayEngine engine, unsigned sweep_jobs) {
  // Sub-16 B-line geometries cannot replay the packed stream the
  // accumulator consumes; route them straight to the reference model over
  // the raw records and let the accumulator sweep the rest.
  std::vector<CacheGeometry> wide;
  std::vector<std::size_t> wide_where;
  std::vector<CacheStats> out(geoms.size());
  for (std::size_t i = 0; i < geoms.size(); ++i) {
    if (geoms[i].line_bytes >= 16) {
      wide.push_back(geoms[i]);
      wide_where.push_back(i);
    } else {
      CacheModel cache(geoms[i], timing);
      out[i] = replay(cache, stream);
    }
  }
  if (!wide.empty()) {
    const std::vector<std::uint32_t> packed = pack_stream(stream);
    const std::vector<CacheStats> stats =
        measure_geometry_bank(wide, packed, timing, engine, sweep_jobs);
    for (std::size_t j = 0; j < wide.size(); ++j) {
      out[wide_where[j]] = stats[j];
    }
  }
  return out;
}

}  // namespace stcache
