#include "trace/replay.hpp"

namespace stcache {

CacheStats replay(ConfigurableCache& cache, std::span<const TraceRecord> stream) {
  const CacheStats before = cache.stats();
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats() - before;
}

CacheStats replay(CacheModel& cache, std::span<const TraceRecord> stream) {
  const CacheStats before = cache.stats();
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats() - before;
}

CacheStats measure_config(const CacheConfig& cfg,
                          std::span<const TraceRecord> stream,
                          const TimingParams& timing) {
  ConfigurableCache cache(cfg, timing);
  return replay(cache, stream);
}

CacheStats measure_geometry(const CacheGeometry& g,
                            std::span<const TraceRecord> stream,
                            const TimingParams& timing) {
  CacheModel cache(g, timing);
  return replay(cache, stream);
}

}  // namespace stcache
