#include "trace/trace_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace stcache {

namespace {

constexpr std::size_t kRecordBytes = 5;
constexpr std::size_t kTraceHeaderBytes = 16;  // magic + version + count

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  os.write(buf, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  put_u32(os, static_cast<std::uint32_t>(v));
  put_u32(os, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  if (!is) fail("trace read: unexpected end of stream");
  return static_cast<std::uint32_t>(buf[0]) |
         (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

std::uint64_t get_u64(std::istream& is) {
  const std::uint64_t lo = get_u32(is);
  const std::uint64_t hi = get_u32(is);
  return lo | (hi << 32);
}

// Shared front half of the readers: header validation, record-count sizing
// against the actual stream length, and one bulk read of the payload.
struct RawPayload {
  std::vector<unsigned char> bytes;
  std::uint64_t count = 0;
  std::uint32_t version = 0;
};

RawPayload read_payload(std::istream& is) {
  RawPayload p;
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kTraceMagic, 4) != 0) {
    fail("trace read: bad magic (not an STCT trace)");
  }
  p.version = get_u32(is);
  if (p.version < kTraceMinFormatVersion || p.version > kTraceFormatVersion) {
    fail("trace read: unsupported format version " + std::to_string(p.version));
  }
  p.count = get_u64(is);
  // Guard against absurd counts before allocating.
  if (p.count > (1ull << 32)) fail("trace read: implausible record count");
  const std::uint64_t payload_bytes = p.count * kRecordBytes;

  // When the stream is seekable (files, string streams — every production
  // reader), validate the declared record count against the bytes actually
  // present BEFORE allocating payload-sized buffers, so a corrupted header
  // fails with a clean error instead of a multi-gigabyte allocation.
  {
    const std::istream::pos_type pos = is.tellg();
    if (pos != std::istream::pos_type(-1)) {
      is.seekg(0, std::ios::end);
      const std::istream::pos_type end = is.tellg();
      is.seekg(pos);
      if (!is || end == std::istream::pos_type(-1)) {
        fail("trace read: stream failure while sizing the record section");
      }
      const std::uint64_t avail = static_cast<std::uint64_t>(end - pos);
      const std::uint64_t need =
          payload_bytes + (p.version >= 2 ? 4u : 0u);  // records + CRC footer
      if (avail < need) fail("trace read: truncated record section");
    }
  }

  p.bytes.resize(payload_bytes);
  if (payload_bytes > 0) {
    is.read(reinterpret_cast<char*>(p.bytes.data()),
            static_cast<std::streamsize>(payload_bytes));
    if (!is) fail("trace read: truncated record section");
  }
  return p;
}

// Decode `n` raw records into the two split packed streams (pack_stream
// encoding). Shared by the buffered bulk reader and the mapped chunked
// reader so their outputs are bit-identical by construction.
void decode_split(const unsigned char* slice, std::uint64_t n,
                  std::vector<std::uint32_t>& ifetch,
                  std::vector<std::uint32_t>& data) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const unsigned char* p = slice + i * kRecordBytes;
    const std::uint32_t addr = static_cast<std::uint32_t>(p[1]) |
                               (static_cast<std::uint32_t>(p[2]) << 8) |
                               (static_cast<std::uint32_t>(p[3]) << 16) |
                               (static_cast<std::uint32_t>(p[4]) << 24);
    switch (p[0]) {
      case static_cast<unsigned char>(AccessKind::kIFetch):
        ifetch.push_back(addr >> 4);
        break;
      case static_cast<unsigned char>(AccessKind::kRead):
        data.push_back(addr >> 4);
        break;
      case static_cast<unsigned char>(AccessKind::kWrite):
        data.push_back((addr >> 4) | 0x8000'0000u);
        break;
      default:
        fail("trace read: invalid access kind " + std::to_string(p[0]));
    }
  }
}

// v2 footer: CRC-32 over the raw record payload. A mismatch means the
// records were corrupted in storage or transit — every downstream number
// would be quietly wrong, so reject the whole trace.
void check_footer(std::istream& is, std::uint32_t version, const Crc32& crc) {
  if (version < 2) return;
  const std::uint32_t stored = get_u32(is);
  if (stored != crc.value()) {
    fail("trace read: CRC mismatch (stored " + std::to_string(stored) +
         ", computed " + std::to_string(crc.value()) +
         ") — the record payload is corrupted");
  }
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace) {
  os.write(kTraceMagic, 4);
  put_u32(os, kTraceFormatVersion);
  put_u64(os, trace.size());
  // Buffered record emission to keep this fast for multi-million-record
  // traces; the footer CRC accumulates over the same buffers, so the
  // payload is still walked only once.
  Crc32 crc;
  std::vector<char> buffer;
  buffer.reserve(1 << 16);
  for (const TraceRecord& r : trace) {
    buffer.push_back(static_cast<char>(r.kind));
    buffer.push_back(static_cast<char>(r.addr));
    buffer.push_back(static_cast<char>(r.addr >> 8));
    buffer.push_back(static_cast<char>(r.addr >> 16));
    buffer.push_back(static_cast<char>(r.addr >> 24));
    if (buffer.size() + kRecordBytes > buffer.capacity()) {
      crc.update(buffer.data(), buffer.size());
      os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  crc.update(buffer.data(), buffer.size());
  os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  put_u32(os, crc.value());
  if (!os) fail("trace write: stream failure");
}

Trace read_trace(std::istream& is) {
  Trace trace;
  read_trace(is, trace);
  return trace;
}

void read_trace(std::istream& is, Trace& trace) {
  trace.clear();
  const RawPayload payload = read_payload(is);

  // One streaming sweep that interleaves CRC accumulation and decode over
  // 8192-record slices (the slice is re-touched while still cache-hot; the
  // payload itself is walked exactly once).
  trace.reserve(payload.count);
  Crc32 crc;
  constexpr std::uint64_t kSliceRecords = 8192;
  for (std::uint64_t done = 0; done < payload.count; done += kSliceRecords) {
    const std::uint64_t batch = std::min(kSliceRecords, payload.count - done);
    const unsigned char* slice = payload.bytes.data() + done * kRecordBytes;
    crc.update(slice, static_cast<std::size_t>(batch * kRecordBytes));
    for (std::uint64_t i = 0; i < batch; ++i) {
      const unsigned char* p = slice + i * kRecordBytes;
      if (p[0] > static_cast<unsigned char>(AccessKind::kWrite)) {
        fail("trace read: invalid access kind " + std::to_string(p[0]));
      }
      TraceRecord r;
      r.kind = static_cast<AccessKind>(p[0]);
      r.addr = static_cast<std::uint32_t>(p[1]) |
               (static_cast<std::uint32_t>(p[2]) << 8) |
               (static_cast<std::uint32_t>(p[3]) << 16) |
               (static_cast<std::uint32_t>(p[4]) << 24);
      trace.push_back(r);
    }
  }
  check_footer(is, payload.version, crc);
}

PackedSplitTrace read_packed_trace(std::istream& is) {
  const RawPayload payload = read_payload(is);
  PackedSplitTrace out;
  // A trace is mostly instruction fetches (one per instruction vs. one
  // data access per load/store), so the exact split is only known after
  // the walk; reserving the full count for each stream wastes at most one
  // transient allocation and never reallocates mid-decode.
  out.ifetch.reserve(payload.count);
  out.data.reserve(payload.count);
  Crc32 crc;
  constexpr std::uint64_t kSliceRecords = 8192;
  for (std::uint64_t done = 0; done < payload.count; done += kSliceRecords) {
    const std::uint64_t batch = std::min(kSliceRecords, payload.count - done);
    const unsigned char* slice = payload.bytes.data() + done * kRecordBytes;
    crc.update(slice, static_cast<std::size_t>(batch * kRecordBytes));
    decode_split(slice, batch, out.ifetch, out.data);
  }
  check_footer(is, payload.version, crc);
  return out;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) fail("save_trace: cannot open '" + path + "' for writing");
  write_trace(os, trace);
  os.flush();
  if (!os) fail("save_trace: write to '" + path + "' failed");
}

Trace load_trace(const std::string& path) {
  Trace trace;
  load_trace(path, trace);
  return trace;
}

namespace {

// Load-throughput metric on stderr (stdout stays reserved for figure
// data), gated behind util/metrics.hpp so tool stderr stays clean by
// default. Deliberately not prefixed "error:" — the CLI contract counts
// only '^error: ' lines as failures.
void io_metric(const std::string& path, std::size_t records, double seconds) {
  if (!metrics_enabled()) return;
  std::fprintf(stderr, "[trace_io] %s: %zu records in %.3f s (%.3g records/s)\n",
               path.c_str(), records, seconds,
               seconds > 0 ? static_cast<double>(records) / seconds : 0.0);
}

}  // namespace

void load_trace(const std::string& path, Trace& trace) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("load_trace: cannot open '" + path + "'");
  const auto start = std::chrono::steady_clock::now();
  read_trace(is, trace);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  io_metric(path, trace.size(), elapsed.count());
}

PackedSplitTrace load_packed_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("load_packed_trace: cannot open '" + path + "'");
  const auto start = std::chrono::steady_clock::now();
  PackedSplitTrace split = read_packed_trace(is);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  io_metric(path, split.ifetch.size() + split.data.size(), elapsed.count());
  return split;
}

namespace {

// STCACHE_NO_MMAP (anything but "0") forces the pread fallback — the
// tests use it to exercise both paths on one machine.
bool mmap_disabled_by_env() {
  const char* v = std::getenv("STCACHE_NO_MMAP");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

// Full pread with EINTR retry; false on EOF-before-done or I/O error.
bool pread_all(int fd, unsigned char* dst, std::uint64_t bytes,
               std::uint64_t off) {
  while (bytes > 0) {
    const ssize_t r = ::pread(fd, dst, static_cast<std::size_t>(bytes),
                              static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    dst += r;
    off += static_cast<std::uint64_t>(r);
    bytes -= static_cast<std::uint64_t>(r);
  }
  return true;
}

std::uint32_t le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

MappedPackedTrace::MappedPackedTrace(const std::string& path,
                                     std::size_t chunk_records)
    : path_(path), chunk_records_(chunk_records == 0 ? 1 : chunk_records) {
  // The constructor owns fd_ manually until it returns: on any validation
  // failure the destructor will not run, so close before throwing.
  const auto bail = [this](const std::string& msg) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    fail("MappedPackedTrace: " + msg);
  };
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) bail("cannot open '" + path + "'");
  struct stat st{};
  if (::fstat(fd_, &st) != 0) bail("cannot stat '" + path + "'");
  file_bytes_ = static_cast<std::uint64_t>(st.st_size);

  unsigned char header[kTraceHeaderBytes];
  if (file_bytes_ < kTraceHeaderBytes ||
      !pread_all(fd_, header, kTraceHeaderBytes, 0)) {
    bail("'" + path + "': truncated header (not an STCT trace)");
  }
  if (std::memcmp(header, kTraceMagic, 4) != 0) {
    bail("'" + path + "': bad magic (not an STCT trace)");
  }
  version_ = le32(header + 4);
  if (version_ < kTraceMinFormatVersion || version_ > kTraceFormatVersion) {
    bail("'" + path + "': unsupported format version " +
         std::to_string(version_));
  }
  count_ = static_cast<std::uint64_t>(le32(header + 8)) |
           (static_cast<std::uint64_t>(le32(header + 12)) << 32);
  if (count_ > (1ull << 32)) bail("'" + path + "': implausible record count");
  const std::uint64_t need = kTraceHeaderBytes + count_ * kRecordBytes +
                             (version_ >= 2 ? 4u : 0u);
  if (file_bytes_ < need) bail("'" + path + "': truncated record section");

  if (!mmap_disabled_by_env()) {
    void* m = ::mmap(nullptr, static_cast<std::size_t>(file_bytes_), PROT_READ,
                     MAP_PRIVATE, fd_, 0);
    if (m != MAP_FAILED) {
      map_ = static_cast<unsigned char*>(m);
      // Advisory only: a kernel that ignores it just readaheads less well.
      ::madvise(map_, static_cast<std::size_t>(file_bytes_), MADV_SEQUENTIAL);
    }
  }
  // map_ == nullptr here means the pread fallback; for_each_chunk sizes
  // read_buf_ on first use.
}

MappedPackedTrace::~MappedPackedTrace() {
  if (map_ != nullptr) ::munmap(map_, static_cast<std::size_t>(file_bytes_));
  if (fd_ >= 0) ::close(fd_);
}

void MappedPackedTrace::for_each_chunk(
    const std::function<void(const Chunk&)>& fn) {
  const auto start = std::chrono::steady_clock::now();
  Crc32 crc;
  const std::uint64_t page =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  std::uint64_t released = 0;  // file offset below which pages are dropped
  std::uint64_t done = 0;
  while (done < count_) {
    const std::uint64_t batch =
        std::min<std::uint64_t>(chunk_records_, count_ - done);
    const std::uint64_t off = kTraceHeaderBytes + done * kRecordBytes;
    const std::uint64_t bytes = batch * kRecordBytes;
    const unsigned char* slice;
    if (map_ != nullptr) {
      slice = map_ + off;
    } else {
      read_buf_.resize(static_cast<std::size_t>(bytes));
      if (!pread_all(fd_, read_buf_.data(), bytes, off)) {
        fail("MappedPackedTrace: '" + path_ + "': read failed mid-payload");
      }
      slice = read_buf_.data();
    }
    crc.update(slice, static_cast<std::size_t>(bytes));
    ifetch_buf_.clear();
    data_buf_.clear();
    decode_split(slice, batch, ifetch_buf_, data_buf_);
    Chunk chunk;
    chunk.ifetch = ifetch_buf_;
    chunk.data = data_buf_;
    chunk.first_record = done;
    fn(chunk);
    done += batch;
    if (map_ != nullptr && page > 0) {
      // Release whole pages the pass has fully consumed; peak RSS stays
      // ~one chunk regardless of trace size.
      const std::uint64_t consumed = (off + bytes) / page * page;
      if (consumed > released) {
        ::madvise(map_ + released, static_cast<std::size_t>(consumed - released),
                  MADV_DONTNEED);
        released = consumed;
      }
    }
  }
  if (version_ >= 2) {
    unsigned char footer[4];
    const std::uint64_t foff = kTraceHeaderBytes + count_ * kRecordBytes;
    if (map_ != nullptr) {
      std::memcpy(footer, map_ + foff, 4);
    } else if (!pread_all(fd_, footer, 4, foff)) {
      fail("MappedPackedTrace: '" + path_ + "': truncated CRC footer");
    }
    const std::uint32_t stored = le32(footer);
    if (stored != crc.value()) {
      fail("MappedPackedTrace: '" + path_ + "': CRC mismatch (stored " +
           std::to_string(stored) + ", computed " +
           std::to_string(crc.value()) + ") — the record payload is corrupted");
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  io_metric(path_ + (map_ != nullptr ? " (mmap)" : " (pread)"),
            static_cast<std::size_t>(count_), elapsed.count());
}

}  // namespace stcache
