// Synthetic address-stream generators.
//
// The paper's Figure 2 uses SPEC2000 `parser`, whose multi-megabyte traces
// we cannot obtain; per DESIGN.md we substitute a generator that reproduces
// the property Figure 2 depends on — a miss rate that keeps improving as
// the cache grows through the tens-of-kilobytes range and then flattens, so
// that total energy has an interior minimum. The simpler generators are
// also used by unit and property tests to exercise caches with controlled
// locality.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace stcache {

// Sequential instruction-fetch loop: `iterations` passes over a loop body
// of `body_bytes` starting at `base` (4-byte fetches).
Trace gen_loop_ifetch(std::uint32_t base, std::uint32_t body_bytes,
                      std::uint32_t iterations);

// Strided data scan: `count` accesses with the given stride, starting at
// `base`, with `write_fraction` of them writes.
Trace gen_strided(std::uint32_t base, std::uint32_t stride, std::uint64_t count,
                  double write_fraction, Rng& rng);

// Uniform random accesses over a working set of `ws_bytes`.
Trace gen_uniform(std::uint32_t base, std::uint32_t ws_bytes, std::uint64_t count,
                  double write_fraction, Rng& rng);

// Pointer-chase: a random permutation cycle over `ws_bytes/stride` nodes,
// visited `count` times (perfect temporal reuse, no spatial locality).
Trace gen_pointer_chase(std::uint32_t base, std::uint32_t ws_bytes,
                        std::uint32_t stride, std::uint64_t count, Rng& rng);

// `parser`-like composite workload: a Zipf-weighted dictionary of
// `dict_bytes` (word frequency locality), a sequential input scan, and a
// pointer-chasing parse structure. Produces a data stream whose miss rate
// falls steadily until the cache covers a large fraction of `dict_bytes`.
struct ParserLikeParams {
  std::uint32_t dict_bytes = 64 * 1024;
  std::uint32_t input_bytes = 16 * 1024;
  std::uint64_t accesses = 2'000'000;
  double zipf_s = 1.3;       // Zipf exponent for dictionary accesses
  double dict_fraction = 0.75;
  double chase_fraction = 0.10;  // remainder is the sequential input scan
  std::uint64_t seed = 0x5eed;
};
Trace gen_parser_like(const ParserLikeParams& params);

}  // namespace stcache
