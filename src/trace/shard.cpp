#include "trace/shard.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace stcache {

// --- ChunkPool --------------------------------------------------------------

ChunkPool::ChunkPool(std::size_t capacity, std::size_t chunk_words)
    : capacity_(std::max<std::size_t>(1, capacity)),
      chunk_words_(std::max<std::size_t>(16, chunk_words)) {}

PooledChunk ChunkPool::acquire() {
  PooledChunk chunk;
  const bool ok =
      acquire_until(std::chrono::steady_clock::time_point::max(), chunk);
  STC_ASSERT(ok, "chunk pool: unbounded acquire timed out");
  return chunk;
}

bool ChunkPool::acquire_until(std::chrono::steady_clock::time_point deadline,
                              PooledChunk& out) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto ready = [&] {
    return !free_.empty() || allocated_ < capacity_ || shutdown_;
  };
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    can_acquire_.wait(lock, ready);
  } else if (!can_acquire_.wait_until(lock, deadline, ready)) {
    return false;  // pool still dry at the deadline: shed, don't pin
  }
  if (shutdown_) fail("chunk pool: shut down");
  if (!free_.empty()) {
    out = std::move(free_.back());
    free_.pop_back();
  } else {
    ++allocated_;
    out.words.resize(chunk_words_);
  }
  out.count = 0;
  return true;
}

void ChunkPool::release(PooledChunk&& chunk) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(chunk));
  }
  can_acquire_.notify_one();
}

void ChunkPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  can_acquire_.notify_all();
}

std::size_t ChunkPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size() + (capacity_ - allocated_);
}

// --- SessionState -----------------------------------------------------------

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kStreaming: return "streaming";
    case SessionState::kFinishing: return "finishing";
    case SessionState::kDone: return "done";
    case SessionState::kPoisoned: return "poisoned";
    case SessionState::kAbandoned: return "abandoned";
    case SessionState::kClosed: return "closed";
  }
  return "?";
}

// --- ShardedSessionQueues ---------------------------------------------------

ShardedSessionQueues::ShardedSessionQueues(std::size_t num_shards,
                                           ChunkPool& pool,
                                           std::size_t session_budget)
    : pool_(pool),
      session_budget_(std::max<std::size_t>(1, session_budget)),
      can_pop_(std::max<std::size_t>(1, num_shards)),
      shards_(std::max<std::size_t>(1, num_shards)) {}

std::uint64_t ShardedSessionQueues::open_session() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) fail("session queues: shut down");
  const std::uint64_t id = next_session_++;
  Session s;
  s.shard = next_shard_;
  next_shard_ = (next_shard_ + 1) % shards_.size();
  sessions_.emplace(id, s);
  return id;
}

std::size_t ShardedSessionQueues::shard_of(std::uint64_t session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) fail("shard_of: unknown session");
  return it->second.shard;
}

bool ShardedSessionQueues::push(std::uint64_t session, PooledChunk&& chunk) {
  return push_until(session, std::move(chunk),
                    std::chrono::steady_clock::time_point::max()) ==
         PushResult::kAccepted;
}

ShardedSessionQueues::PushResult ShardedSessionQueues::push_until(
    std::uint64_t session, PooledChunk&& chunk,
    std::chrono::steady_clock::time_point deadline) {
  std::size_t shard;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    // Budget backpressure: wait for the worker to drain this session, or
    // for the session to stop accepting.
    const auto unblocked = [&] {
      if (shutdown_) return true;
      it = sessions_.find(session);
      if (it == sessions_.end()) return true;
      return it->second.state != SessionState::kStreaming ||
             it->second.in_flight < session_budget_;
    };
    bool ready;
    if (deadline == std::chrono::steady_clock::time_point::max()) {
      can_push_.wait(lock, unblocked);
      ready = true;
    } else {
      ready = can_push_.wait_until(lock, deadline, unblocked);
    }
    it = sessions_.find(session);
    if (!ready || shutdown_ || it == sessions_.end() ||
        it->second.state != SessionState::kStreaming) {
      lock.unlock();
      pool_.release(std::move(chunk));
      return ready ? PushResult::kRefused : PushResult::kTimedOut;
    }
    Session& s = it->second;
    ++s.in_flight;
    shard = s.shard;
    Shard& sh = shards_[shard];
    std::deque<Item>& q = sh.pending[session];
    if (q.empty()) sh.ready.push_back(session);
    q.push_back(Item{session, std::move(chunk), /*fin=*/false});
  }
  can_pop_[shard].notify_one();
  return PushResult::kAccepted;
}

bool ShardedSessionQueues::finish(std::uint64_t session) {
  std::size_t shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (shutdown_ || it == sessions_.end() ||
        it->second.state != SessionState::kStreaming) {
      return false;
    }
    Session& s = it->second;
    s.state = SessionState::kFinishing;
    shard = s.shard;
    Shard& sh = shards_[shard];
    std::deque<Item>& q = sh.pending[session];
    if (q.empty()) sh.ready.push_back(session);
    q.push_back(Item{session, PooledChunk{}, /*fin=*/true});
  }
  can_pop_[shard].notify_one();
  return true;
}

void ShardedSessionQueues::purge_locked(std::uint64_t session, Session& s) {
  Shard& sh = shards_[s.shard];
  auto qit = sh.pending.find(session);
  if (qit != sh.pending.end()) {
    for (Item& item : qit->second) {
      if (!item.chunk.words.empty()) {
        pool_.release(std::move(item.chunk));
        if (s.in_flight > 0) --s.in_flight;
      }
    }
    sh.pending.erase(qit);
  }
  sh.ready.erase(std::remove(sh.ready.begin(), sh.ready.end(), session),
                 sh.ready.end());
}

void ShardedSessionQueues::abandon(std::uint64_t session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    Session& s = it->second;
    if (s.state == SessionState::kStreaming ||
        s.state == SessionState::kFinishing) {
      s.state = SessionState::kAbandoned;
    }
    purge_locked(session, s);
  }
  can_push_.notify_all();
}

void ShardedSessionQueues::poison(std::uint64_t session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    Session& s = it->second;
    if (s.state == SessionState::kStreaming ||
        s.state == SessionState::kFinishing) {
      s.state = SessionState::kPoisoned;
    }
    purge_locked(session, s);
  }
  can_push_.notify_all();
}

void ShardedSessionQueues::mark_done(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  if (it->second.state == SessionState::kFinishing) {
    it->second.state = SessionState::kDone;
  }
}

void ShardedSessionQueues::close_session(std::uint64_t session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    purge_locked(session, it->second);
    sessions_.erase(it);
  }
  can_push_.notify_all();
}

bool ShardedSessionQueues::pop(std::size_t shard, Item& out) {
  STC_ASSERT(shard < shards_.size(), "pop: shard out of range");
  std::unique_lock<std::mutex> lock(mu_);
  Shard& sh = shards_[shard];
  can_pop_[shard].wait(lock, [&] { return !sh.ready.empty() || shutdown_; });
  if (sh.ready.empty()) return false;  // shutdown and drained
  const std::uint64_t session = sh.ready.front();
  sh.ready.pop_front();
  std::deque<Item>& q = sh.pending[session];
  STC_ASSERT(!q.empty(), "pop: ready session with empty queue");
  out = std::move(q.front());
  q.pop_front();
  if (!q.empty()) {
    sh.ready.push_back(session);  // rotate: fair across sessions
  } else {
    sh.pending.erase(session);
  }
  return true;
}

void ShardedSessionQueues::release(Item&& item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(item.session);
    if (it != sessions_.end() && !item.chunk.words.empty() &&
        it->second.in_flight > 0) {
      --it->second.in_flight;
    }
  }
  if (!item.chunk.words.empty()) pool_.release(std::move(item.chunk));
  can_push_.notify_all();
}

SessionState ShardedSessionQueues::state(std::uint64_t session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? SessionState::kClosed : it->second.state;
}

std::size_t ShardedSessionQueues::sessions_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void ShardedSessionQueues::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  can_push_.notify_all();
  for (std::condition_variable& cv : can_pop_) cv.notify_all();
}

}  // namespace stcache
