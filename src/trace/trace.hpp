// Memory-access traces.
//
// A Trace is the bridge between the ISS and the cache experiments: each
// workload is executed once to capture its instruction-fetch and data
// address streams, and the streams are then replayed through any number of
// cache configurations (27 per cache for the exhaustive baseline). This is
// exactly the methodology of the paper, which runs SimpleScalar per
// benchmark and evaluates all configurations from the resulting behavior.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/memory_system.hpp"

namespace stcache {

enum class AccessKind : std::uint8_t { kIFetch = 0, kRead = 1, kWrite = 2 };

struct TraceRecord {
  std::uint32_t addr = 0;
  AccessKind kind = AccessKind::kIFetch;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

using Trace = std::vector<TraceRecord>;

// A MemorySystem that records the address stream. Accesses cost one cycle
// each: trace capture is timing-independent (replay applies the timing).
class TracingMemory final : public MemorySystem {
 public:
  std::uint32_t ifetch(std::uint32_t addr) override {
    trace_.push_back({addr, AccessKind::kIFetch});
    return 1;
  }
  std::uint32_t dread(std::uint32_t addr, std::uint32_t) override {
    trace_.push_back({addr, AccessKind::kRead});
    return 1;
  }
  std::uint32_t dwrite(std::uint32_t addr, std::uint32_t) override {
    trace_.push_back({addr, AccessKind::kWrite});
    return 1;
  }

  const Trace& trace() const { return trace_; }
  Trace take() { return std::move(trace_); }
  void reserve(std::size_t n) { trace_.reserve(n); }

 private:
  Trace trace_;
};

// Split a combined trace into the instruction stream and the data stream
// (the paper tunes I$ and D$ independently).
struct SplitTrace {
  Trace ifetch;
  Trace data;
};
SplitTrace split_trace(const Trace& combined);

// --- summary statistics -----------------------------------------------------
struct TraceSummary {
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t ifetches = 0;
  // Distinct 16 B blocks touched (the working-set footprint in bytes is
  // 16 * unique_blocks).
  std::uint64_t unique_blocks = 0;
};
TraceSummary summarize(std::span<const TraceRecord> trace);

}  // namespace stcache
