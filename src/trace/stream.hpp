// Streaming capture→sweep pipeline: bounded SPSC chunk queue plus the
// PackedSink implementations that let FastCpu (sim/fast_cpu.hpp) emit
// packed trace words straight into consumers, killing the
// capture→Trace→disk→read_trace→pack_stream round trip.
//
// Topology (one producer thread, one consumer thread):
//
//   FastCpu::run(budget, sink)            stream_capture() caller
//        │ bump-pointer writes                  │
//        ▼                                      ▼
//   ChunkQueueSink ──push──▶ SpscChunkQueue ──pop──▶ consume(chunk)
//        ▲                    (bounded,             │ e.g. BankAccumulator
//        └──────recycle───────free-list)◀──────────┘   ::feed per stream
//
// A PackedChunk carries BOTH split streams (instruction fetches and data
// accesses) of one capture slice, already in pack_stream() format, so the
// consumer folds each chunk into its per-config accumulators and hands the
// buffer back for reuse: steady-state runs allocate a handful of chunks
// total, never a full trace. PackedBufferSink is the materialized
// counterpart (grows two flat vectors) for paths that still want whole
// packed streams in memory — it replaces the Trace AoS, not the streaming
// mode.
//
// Thread safety: SpscChunkQueue is mutex+condvar (TSan-clean by
// construction) and assumes ONE producer and ONE consumer thread, matching
// the capture pipeline. Producer errors propagate to pop() via
// exception_ptr; a consumer that stops early abandon()s the queue, which
// turns the producer's next refill into an AbandonedStream error so the
// capture unwinds promptly instead of simulating into a void.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "sim/fast_cpu.hpp"

namespace stcache {

// One capture slice: the two split packed streams, each internally in
// program order. `*_count` words of each vector are valid (the vectors keep
// their full capacity so recycled chunks never reallocate).
struct PackedChunk {
  std::vector<std::uint32_t> ifetch;
  std::vector<std::uint32_t> data;
  std::size_t ifetch_count = 0;
  std::size_t data_count = 0;

  std::span<const std::uint32_t> ifetch_words() const {
    return {ifetch.data(), ifetch_count};
  }
  std::span<const std::uint32_t> data_words() const {
    return {data.data(), data_count};
  }
};

// Bounded single-producer single-consumer queue of filled chunks with a
// free-list of drained buffers flowing the other way.
class SpscChunkQueue {
 public:
  explicit SpscChunkQueue(std::size_t max_depth = 4);

  // --- producer side -------------------------------------------------------
  // A drained buffer if one is waiting, else a fresh chunk. Never blocks.
  PackedChunk acquire();
  // Publish a filled chunk; blocks while the queue is at depth. Returns
  // false (discarding the chunk) once the consumer has abandoned the
  // stream.
  bool push(PackedChunk&& chunk);
  void finish();                        // no more chunks will be pushed
  void fail(std::exception_ptr error);  // propagate a producer error to pop()

  // --- consumer side -------------------------------------------------------
  // Next filled chunk in order. Blocks until one arrives; returns false
  // once the producer finished and everything is drained. Rethrows a
  // producer error as soon as it is observed.
  bool pop(PackedChunk& out);
  void recycle(PackedChunk&& chunk);  // hand a drained buffer back
  void abandon();                     // stop consuming; unblocks the producer

 private:
  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<PackedChunk> full_;
  std::vector<PackedChunk> free_;
  const std::size_t max_depth_;
  bool finished_ = false;
  bool abandoned_ = false;
  std::exception_ptr error_;
};

// PackedSink over an SpscChunkQueue: FastCpu fills the current chunk
// through the bump-pointer cursors; refill() publishes it and opens the
// next one, so the queue mutex is touched once per chunk, not per access.
class ChunkQueueSink : public PackedSink {
 public:
  // 64 Ki words per stream per chunk: 512 KB in flight per queue slot,
  // large enough that queue traffic is noise, small enough that the
  // consumer starts folding almost immediately.
  static constexpr std::size_t kDefaultChunkWords = std::size_t{1} << 16;

  explicit ChunkQueueSink(SpscChunkQueue& queue,
                          std::size_t chunk_words = kDefaultChunkWords);

  // Publish the final partially-filled chunk. Call after the capture run
  // returns (the run committed its cursor positions into the sink).
  void flush();

 protected:
  void refill(std::size_t min_free) override;

 private:
  void commit();                          // fold cursors into chunk counts
  void open_chunk(std::size_t min_words);

  SpscChunkQueue& queue_;
  const std::size_t chunk_words_;
  PackedChunk chunk_;
  bool open_ = false;
};

// PackedSink that materializes the two packed streams in flat vectors —
// the in-memory replacement for capture_trace()+split_trace()+pack_stream()
// when a consumer genuinely needs random access (the heuristic evaluator's
// on-demand re-measurement, trace file export).
class PackedBufferSink : public PackedSink {
 public:
  explicit PackedBufferSink(std::size_t initial_words = std::size_t{1} << 16);

  // The emitted streams, trimmed to what the run produced. Resets the sink.
  std::vector<std::uint32_t> take_ifetch();
  std::vector<std::uint32_t> take_data();

 protected:
  void refill(std::size_t min_free) override;

 private:
  std::vector<std::uint32_t> ifetch_;
  std::vector<std::uint32_t> data_;
};

// Run `produce` (typically a FastCpu capture of one workload) on a
// dedicated thread, publishing packed chunks through a bounded SPSC queue;
// the calling thread folds each chunk via `consume` as it arrives, in
// capture order. Returns the producer's RunResult. Exceptions from either
// side propagate to the caller; whichever side is still running is
// unblocked and joined first.
RunResult stream_capture(
    const std::function<RunResult(PackedSink&)>& produce,
    const std::function<void(const PackedChunk&)>& consume,
    std::size_t chunk_words = ChunkQueueSink::kDefaultChunkWords,
    std::size_t queue_depth = 4);

}  // namespace stcache
