#include "trace/stream.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace stcache {

namespace {

// Raised inside the producer thread when the consumer abandon()ed the
// queue: unwinds the capture run promptly; stream_capture()'s producer
// wrapper converts it into queue.fail(), where it is usually shadowed by
// the consumer-side exception that caused the abandonment.
[[noreturn]] void fail_abandoned_stream() {
  fail("stream capture: consumer abandoned the stream");
}

}  // namespace

// --- SpscChunkQueue ---------------------------------------------------------

SpscChunkQueue::SpscChunkQueue(std::size_t max_depth)
    : max_depth_(std::max<std::size_t>(1, max_depth)) {}

PackedChunk SpscChunkQueue::acquire() {
  PackedChunk chunk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      chunk = std::move(free_.back());
      free_.pop_back();
    }
  }
  chunk.ifetch_count = 0;
  chunk.data_count = 0;
  return chunk;
}

bool SpscChunkQueue::push(PackedChunk&& chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  can_push_.wait(lock,
                 [&] { return full_.size() < max_depth_ || abandoned_; });
  if (abandoned_) return false;
  full_.push_back(std::move(chunk));
  can_pop_.notify_one();
  return true;
}

void SpscChunkQueue::finish() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
  }
  can_pop_.notify_all();
}

void SpscChunkQueue::fail(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::move(error);
    finished_ = true;
  }
  can_pop_.notify_all();
}

bool SpscChunkQueue::pop(PackedChunk& out) {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [&] { return !full_.empty() || finished_; });
  // A producer error invalidates the whole capture: surface it immediately
  // rather than draining chunks whose run never completed.
  if (error_) std::rethrow_exception(error_);
  if (full_.empty()) return false;  // finished and drained
  out = std::move(full_.front());
  full_.pop_front();
  can_push_.notify_one();
  return true;
}

void SpscChunkQueue::recycle(PackedChunk&& chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(chunk));
}

void SpscChunkQueue::abandon() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    abandoned_ = true;
  }
  can_push_.notify_all();
}

// --- ChunkQueueSink ---------------------------------------------------------

ChunkQueueSink::ChunkQueueSink(SpscChunkQueue& queue, std::size_t chunk_words)
    : queue_(queue), chunk_words_(std::max<std::size_t>(16, chunk_words)) {}

void ChunkQueueSink::commit() {
  if (!open_) return;
  chunk_.ifetch_count = static_cast<std::size_t>(iw_ - chunk_.ifetch.data());
  chunk_.data_count = static_cast<std::size_t>(dw_ - chunk_.data.data());
}

void ChunkQueueSink::open_chunk(std::size_t min_words) {
  chunk_ = queue_.acquire();
  const std::size_t words = std::max(chunk_words_, min_words);
  if (chunk_.ifetch.size() < words) chunk_.ifetch.resize(words);
  if (chunk_.data.size() < words) chunk_.data.resize(words);
  iw_ = chunk_.ifetch.data();
  iw_end_ = iw_ + chunk_.ifetch.size();
  dw_ = chunk_.data.data();
  dw_end_ = dw_ + chunk_.data.size();
  open_ = true;
}

void ChunkQueueSink::refill(std::size_t min_free) {
  commit();
  if (open_ && (chunk_.ifetch_count > 0 || chunk_.data_count > 0)) {
    if (!queue_.push(std::move(chunk_))) {
      open_ = false;
      fail_abandoned_stream();
    }
  }
  open_chunk(min_free);
}

void ChunkQueueSink::flush() {
  commit();
  if (open_ && (chunk_.ifetch_count > 0 || chunk_.data_count > 0)) {
    if (!queue_.push(std::move(chunk_))) {
      open_ = false;
      fail_abandoned_stream();
    }
  }
  open_ = false;
  iw_ = iw_end_ = dw_ = dw_end_ = nullptr;
}

// --- PackedBufferSink -------------------------------------------------------

PackedBufferSink::PackedBufferSink(std::size_t initial_words) {
  const std::size_t words = std::max<std::size_t>(16, initial_words);
  ifetch_.resize(words);
  data_.resize(words);
  iw_ = ifetch_.data();
  iw_end_ = iw_ + ifetch_.size();
  dw_ = data_.data();
  dw_end_ = dw_ + data_.size();
}

void PackedBufferSink::refill(std::size_t min_free) {
  const std::size_t iused = static_cast<std::size_t>(iw_ - ifetch_.data());
  const std::size_t dused = static_cast<std::size_t>(dw_ - data_.data());
  ifetch_.resize(std::max(ifetch_.size() * 2, iused + min_free));
  data_.resize(std::max(data_.size() * 2, dused + min_free));
  iw_ = ifetch_.data() + iused;
  iw_end_ = ifetch_.data() + ifetch_.size();
  dw_ = data_.data() + dused;
  dw_end_ = data_.data() + data_.size();
}

std::vector<std::uint32_t> PackedBufferSink::take_ifetch() {
  ifetch_.resize(static_cast<std::size_t>(iw_ - ifetch_.data()));
  iw_ = iw_end_ = nullptr;
  return std::move(ifetch_);
}

std::vector<std::uint32_t> PackedBufferSink::take_data() {
  data_.resize(static_cast<std::size_t>(dw_ - data_.data()));
  dw_ = dw_end_ = nullptr;
  return std::move(data_);
}

// --- stream_capture ---------------------------------------------------------

RunResult stream_capture(const std::function<RunResult(PackedSink&)>& produce,
                         const std::function<void(const PackedChunk&)>& consume,
                         std::size_t chunk_words, std::size_t queue_depth) {
  SpscChunkQueue queue(queue_depth);
  RunResult result;  // written by the producer thread, read after join()
  std::thread producer([&] {
    try {
      ChunkQueueSink sink(queue, chunk_words);
      result = produce(sink);
      sink.flush();
      queue.finish();
    } catch (...) {
      queue.fail(std::current_exception());
    }
  });
  PackedChunk chunk;
  try {
    while (queue.pop(chunk)) {
      consume(chunk);
      queue.recycle(std::move(chunk));
    }
  } catch (...) {
    // Consumer failed (or the producer's error surfaced through pop):
    // unblock any pending push so the producer unwinds, then join before
    // rethrowing — the thread must not outlive `queue`.
    queue.abandon();
    producer.join();
    throw;
  }
  producer.join();
  return result;
}

}  // namespace stcache
