// Phase-mixed mega-trace composition.
//
// The paper tunes once per application, but its Section 1 deployment story
// tunes "whenever a program phase change is detected". To exercise that
// mode we need traces that actually *have* phases: long packed streams
// stitched from the address behavior of several workloads, with a ground
// truth of where each behavior starts and ends. compose_phases() builds
// such a stream from any set of packed source streams (pack_stream format:
// bit 31 = write, bits 30..0 = 16 B block number) and a segment plan; the
// returned segment list is the oracle the phase classifier is judged
// against (tests/phase_mix_test.cpp, bench_phase_adaptive).
//
// Sources are cycled with a per-source wrapping cursor: a plan may demand
// far more words of a behavior than its source stream holds (kernel data
// streams are only tens of thousands of words), and a recurring phase must
// resume where it left off rather than restart, so repeated visits to the
// same source are not byte-identical copies of each other — closer to a
// task being rescheduled than to a looped recording.
//
// Everything here is deterministic: the same sources + plan (and, for the
// seeded plan builder, the same seed) produce byte-identical streams on
// every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace stcache {

// One ground-truth segment: words [begin, end) of the composed stream were
// drawn from sources[source].
struct PhaseSegment {
  std::size_t source = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  friend bool operator==(const PhaseSegment&, const PhaseSegment&) = default;
};

// Plan entry: take `words` words from sources[source] next.
struct PhaseSegmentSpec {
  std::size_t source = 0;
  std::uint64_t words = 0;
};

struct PhaseMixedStream {
  std::vector<std::uint32_t> words;     // packed, pack_stream format
  std::vector<PhaseSegment> segments;   // tiles words[] exactly, in order
};

// Concatenate plan segments, slicing each from its source with a wrapping
// per-source cursor. Empty sources and zero-length plan entries are
// rejected (fail()).
PhaseMixedStream compose_phases(
    std::span<const std::span<const std::uint32_t>> sources,
    std::span<const PhaseSegmentSpec> plan);

// A/B/A/B... square wave over sources 0 and 1: `segments` segments of
// `segment_words` words each.
std::vector<PhaseSegmentSpec> square_wave_plan(std::uint64_t segment_words,
                                               unsigned segments);

// Round-robin task schedule: `rounds` passes over sources 0..n_sources-1,
// segment i (globally) taking segment_words[i % segment_words.size()]
// words. Models a cyclic executive with per-task time slices.
std::vector<PhaseSegmentSpec> cycle_plan(
    std::size_t n_sources, std::span<const std::uint64_t> segment_words,
    unsigned rounds);

// Seeded random interleave: `segments` segments, each from a source drawn
// uniformly (never the same source twice in a row, so every plan boundary
// is a real behavior change) with a length drawn uniformly from
// [min_words, max_words]. Deterministic in `seed` (util/rng splitmix64).
std::vector<PhaseSegmentSpec> interleaved_plan(std::size_t n_sources,
                                               unsigned segments,
                                               std::uint64_t min_words,
                                               std::uint64_t max_words,
                                               std::uint64_t seed);

}  // namespace stcache
