// Binary trace file format ("STCT"): capture once, tune anywhere.
//
// Layout (little-endian):
//   offset 0   char[4]   magic "STCT"
//   offset 4   u32       format version (currently 2)
//   offset 8   u64       record count
//   offset 16  records   5 bytes each: u8 kind (AccessKind), u32 address
//   footer     u32       CRC-32 (IEEE) of the record payload (v2 only)
//
// The format is deliberately dense (5 B/record): a 2 M-access kernel trace
// is ~10 MB. Readers validate the magic, version, and record count against
// the file size, reject malformed kinds, and (v2) verify the footer CRC
// over the raw record bytes, so a truncated, corrupted, or bit-flipped
// file fails loudly instead of producing silently wrong experiments.
// Version-1 files (no footer) are still accepted unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace stcache {

inline constexpr char kTraceMagic[4] = {'S', 'T', 'C', 'T'};
inline constexpr std::uint32_t kTraceFormatVersion = 2;
// Oldest version read_trace still accepts (v1 lacks the CRC footer).
inline constexpr std::uint32_t kTraceMinFormatVersion = 1;

// Stream-level primitives. The out-parameter overloads clear `out` and
// reuse its capacity, so a loop that reads many traces (per-workload bank
// sweeps, the fault-injection campaigns) does not reallocate the record
// vector each iteration; the by-value forms delegate to them.
void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);
void read_trace(std::istream& is, Trace& out);

// File-level convenience; throws stcache::Error on any I/O or format
// problem, with the path in the message.
void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);
void load_trace(const std::string& path, Trace& out);

// Replay-only bulk reader: decode an STCT file's records straight into the
// two split packed streams (pack_stream format: bit 31 = write, bits 30..0
// = 16 B block number), skipping the TraceRecord AoS intermediate that
// replay paths immediately split and pack anyway. One bulk read of the
// payload, same validation as read_trace including the v2 CRC-32 footer.
// Bit-identical to pack_stream over split_trace(load_trace(path)).
struct PackedSplitTrace {
  std::vector<std::uint32_t> ifetch;  // instruction fetches
  std::vector<std::uint32_t> data;    // reads and writes
};
PackedSplitTrace read_packed_trace(std::istream& is);
PackedSplitTrace load_packed_trace(const std::string& path);

// Out-of-core STCT reader: replays traces far larger than memory without
// ever materializing a Trace or a whole packed stream. The file is mapped
// (mmap + madvise(MADV_SEQUENTIAL)) and decoded in fixed-size record
// chunks into two reusable split packed buffers; fully-decoded pages are
// released behind the cursor (MADV_DONTNEED), so peak RSS is bounded by
// the chunk size — a few MB — independent of the trace size. A
// billion-record (~5 GB) .stct therefore streams straight into a
// BankAccumulator.
//
// Validation matches the buffered readers: magic/version/record-count are
// checked against the file size up front (truncation fails before any
// decode), record kinds are checked per record, and the v2 CRC-32 footer
// is accumulated chunk by chunk as each chunk is first touched and
// verified when the pass completes — a corrupt payload fails the pass
// even though no buffer ever held the whole file.
//
// When mmap is unavailable — the syscall fails, or STCACHE_NO_MMAP is set
// to anything but "0" — the reader falls back to chunked pread() into a
// private buffer with identical semantics (mapped() reports which path is
// live). Decoded chunks are bit-identical to load_packed_trace() slices
// in either mode; tests/mmap_trace_test.cpp enforces all of the above.
class MappedPackedTrace {
 public:
  // Spans live in buffers reused for the next chunk: consume (or copy)
  // within the callback. first_record is the chunk's absolute index.
  struct Chunk {
    std::span<const std::uint32_t> ifetch;
    std::span<const std::uint32_t> data;
    std::uint64_t first_record = 0;
  };

  // Opens, maps and validates; throws stcache::Error (path in message) on
  // any I/O or format problem. chunk_records is exposed for boundary
  // tests; the default keeps the working set at ~5 MB raw + ~8 MB decoded.
  explicit MappedPackedTrace(const std::string& path,
                             std::size_t chunk_records = std::size_t{1} << 20);
  ~MappedPackedTrace();
  MappedPackedTrace(const MappedPackedTrace&) = delete;
  MappedPackedTrace& operator=(const MappedPackedTrace&) = delete;

  std::uint64_t record_count() const { return count_; }
  // True when the record section is mmap'd; false on the pread fallback.
  bool mapped() const { return map_ != nullptr; }

  // One in-order pass over every record: decodes chunk after chunk,
  // invoking fn for each (zero times for an empty trace), verifying the
  // CRC footer at the end. Throws on corruption; callable again for a
  // fresh pass (pages released by an earlier pass fault back in).
  void for_each_chunk(const std::function<void(const Chunk&)>& fn);

 private:
  std::string path_;
  int fd_ = -1;
  unsigned char* map_ = nullptr;  // whole file when mapped() is true
  std::uint64_t file_bytes_ = 0;
  std::uint64_t count_ = 0;
  std::uint32_t version_ = 0;
  std::size_t chunk_records_;
  std::vector<unsigned char> read_buf_;   // pread fallback only
  std::vector<std::uint32_t> ifetch_buf_;  // reused chunk decode targets
  std::vector<std::uint32_t> data_buf_;
};

}  // namespace stcache
