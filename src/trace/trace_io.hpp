// Binary trace file format ("STCT"): capture once, tune anywhere.
//
// Layout (little-endian):
//   offset 0   char[4]   magic "STCT"
//   offset 4   u32       format version (currently 1)
//   offset 8   u64       record count
//   offset 16  records   5 bytes each: u8 kind (AccessKind), u32 address
//
// The format is deliberately dense (5 B/record): a 2 M-access kernel trace
// is ~10 MB. Readers validate the magic, version, and record count against
// the file size and reject malformed kinds, so a truncated or corrupted
// file fails loudly instead of producing silently wrong experiments.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace stcache {

inline constexpr char kTraceMagic[4] = {'S', 'T', 'C', 'T'};
inline constexpr std::uint32_t kTraceFormatVersion = 1;

// Stream-level primitives.
void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);

// File-level convenience; throws stcache::Error on any I/O or format
// problem, with the path in the message.
void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);

}  // namespace stcache
