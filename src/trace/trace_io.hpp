// Binary trace file format ("STCT"): capture once, tune anywhere.
//
// Layout (little-endian):
//   offset 0   char[4]   magic "STCT"
//   offset 4   u32       format version (currently 2)
//   offset 8   u64       record count
//   offset 16  records   5 bytes each: u8 kind (AccessKind), u32 address
//   footer     u32       CRC-32 (IEEE) of the record payload (v2 only)
//
// The format is deliberately dense (5 B/record): a 2 M-access kernel trace
// is ~10 MB. Readers validate the magic, version, and record count against
// the file size, reject malformed kinds, and (v2) verify the footer CRC
// over the raw record bytes, so a truncated, corrupted, or bit-flipped
// file fails loudly instead of producing silently wrong experiments.
// Version-1 files (no footer) are still accepted unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace stcache {

inline constexpr char kTraceMagic[4] = {'S', 'T', 'C', 'T'};
inline constexpr std::uint32_t kTraceFormatVersion = 2;
// Oldest version read_trace still accepts (v1 lacks the CRC footer).
inline constexpr std::uint32_t kTraceMinFormatVersion = 1;

// Stream-level primitives. The out-parameter overloads clear `out` and
// reuse its capacity, so a loop that reads many traces (per-workload bank
// sweeps, the fault-injection campaigns) does not reallocate the record
// vector each iteration; the by-value forms delegate to them.
void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);
void read_trace(std::istream& is, Trace& out);

// File-level convenience; throws stcache::Error on any I/O or format
// problem, with the path in the message.
void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);
void load_trace(const std::string& path, Trace& out);

// Replay-only bulk reader: decode an STCT file's records straight into the
// two split packed streams (pack_stream format: bit 31 = write, bits 30..0
// = 16 B block number), skipping the TraceRecord AoS intermediate that
// replay paths immediately split and pack anyway. One bulk read of the
// payload, same validation as read_trace including the v2 CRC-32 footer.
// Bit-identical to pack_stream over split_trace(load_trace(path)).
struct PackedSplitTrace {
  std::vector<std::uint32_t> ifetch;  // instruction fetches
  std::vector<std::uint32_t> data;    // reads and writes
};
PackedSplitTrace read_packed_trace(std::istream& is);
PackedSplitTrace load_packed_trace(const std::string& path);

}  // namespace stcache
