#include "trace/trace.hpp"

#include <unordered_set>

namespace stcache {

SplitTrace split_trace(const Trace& combined) {
  SplitTrace out;
  for (const TraceRecord& r : combined) {
    if (r.kind == AccessKind::kIFetch) out.ifetch.push_back(r);
    else out.data.push_back(r);
  }
  return out;
}

TraceSummary summarize(std::span<const TraceRecord> trace) {
  TraceSummary s;
  std::unordered_set<std::uint32_t> blocks;
  for (const TraceRecord& r : trace) {
    ++s.accesses;
    switch (r.kind) {
      case AccessKind::kIFetch: ++s.ifetches; break;
      case AccessKind::kRead: ++s.reads; break;
      case AccessKind::kWrite: ++s.writes; break;
    }
    blocks.insert(r.addr >> 4);
  }
  s.unique_blocks = blocks.size();
  return s;
}

}  // namespace stcache
