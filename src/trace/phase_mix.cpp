#include "trace/phase_mix.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace stcache {

PhaseMixedStream compose_phases(
    std::span<const std::span<const std::uint32_t>> sources,
    std::span<const PhaseSegmentSpec> plan) {
  std::uint64_t total = 0;
  for (const PhaseSegmentSpec& spec : plan) {
    if (spec.source >= sources.size())
      fail("compose_phases: plan references source " +
           std::to_string(spec.source) + " of " +
           std::to_string(sources.size()));
    if (spec.words == 0) fail("compose_phases: zero-length segment");
    if (sources[spec.source].empty())
      fail("compose_phases: source " + std::to_string(spec.source) +
           " is empty");
    total += spec.words;
  }

  PhaseMixedStream out;
  out.words.reserve(total);
  out.segments.reserve(plan.size());
  std::vector<std::size_t> cursor(sources.size(), 0);
  for (const PhaseSegmentSpec& spec : plan) {
    const std::span<const std::uint32_t> src = sources[spec.source];
    const std::uint64_t begin = out.words.size();
    std::uint64_t remaining = spec.words;
    std::size_t& cur = cursor[spec.source];
    while (remaining > 0) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, src.size() - cur));
      out.words.insert(out.words.end(), src.begin() + cur,
                       src.begin() + cur + take);
      cur += take;
      if (cur == src.size()) cur = 0;
      remaining -= take;
    }
    out.segments.push_back({spec.source, begin, out.words.size()});
  }
  return out;
}

std::vector<PhaseSegmentSpec> square_wave_plan(std::uint64_t segment_words,
                                               unsigned segments) {
  std::vector<PhaseSegmentSpec> plan;
  plan.reserve(segments);
  for (unsigned i = 0; i < segments; ++i)
    plan.push_back({i % 2, segment_words});
  return plan;
}

std::vector<PhaseSegmentSpec> cycle_plan(
    std::size_t n_sources, std::span<const std::uint64_t> segment_words,
    unsigned rounds) {
  if (n_sources == 0 || segment_words.empty())
    fail("cycle_plan: need sources and segment lengths");
  std::vector<PhaseSegmentSpec> plan;
  plan.reserve(n_sources * rounds);
  std::size_t i = 0;
  for (unsigned r = 0; r < rounds; ++r)
    for (std::size_t s = 0; s < n_sources; ++s, ++i)
      plan.push_back({s, segment_words[i % segment_words.size()]});
  return plan;
}

std::vector<PhaseSegmentSpec> interleaved_plan(std::size_t n_sources,
                                               unsigned segments,
                                               std::uint64_t min_words,
                                               std::uint64_t max_words,
                                               std::uint64_t seed) {
  if (n_sources < 2) fail("interleaved_plan: need at least 2 sources");
  if (min_words == 0 || max_words < min_words)
    fail("interleaved_plan: bad word range");
  Rng rng(seed);
  std::vector<PhaseSegmentSpec> plan;
  plan.reserve(segments);
  std::size_t prev = n_sources;  // sentinel: first draw is unconstrained
  for (unsigned i = 0; i < segments; ++i) {
    std::size_t src;
    if (prev >= n_sources) {
      src = static_cast<std::size_t>(rng.next_below(n_sources));
    } else {
      // Draw from the n-1 sources that are not `prev`.
      src = static_cast<std::size_t>(rng.next_below(n_sources - 1));
      if (src >= prev) ++src;
    }
    const std::uint64_t words =
        min_words + rng.next_below(max_words - min_words + 1);
    plan.push_back({src, words});
    prev = src;
  }
  return plan;
}

}  // namespace stcache
