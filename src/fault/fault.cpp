#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace stcache {

namespace {

// splitmix64 finalizer, used to mix a shard id into a seed without
// correlating nearby ids.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Counters are 64-bit registers in the model, but the physically plausible
// magnitude is bounded by the prescaled 16-bit datapath with generous
// headroom; upsets are injected in the low 48 bits.
constexpr unsigned kCounterBits = 48;

std::uint64_t scale_count(std::uint64_t v, double factor) {
  return static_cast<std::uint64_t>(std::llround(static_cast<double>(v) * factor));
}

}  // namespace

FaultPlan FaultPlan::campaign(double rate, std::uint64_t seed) {
  STC_ASSERT(rate >= 0.0 && rate <= 1.0, "FaultPlan: campaign rate out of range");
  FaultPlan p;
  p.seed = seed;
  p.drop = rate / 4.0;
  p.bitflip = rate / 4.0;
  p.saturate = rate / 4.0;
  p.noise = rate / 4.0;
  return p;
}

FaultPlan FaultPlan::reseeded(std::uint64_t stream_id) const {
  FaultPlan p = *this;
  p.seed = mix64(seed ^ mix64(stream_id));
  return p;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {
  STC_ASSERT(plan.interval_rate() <= 1.0,
             "FaultInjector: interval fault rates sum above 1");
}

TunerCounters FaultInjector::tap(const CacheConfig& cfg,
                                 const TunerCounters& clean) {
  (void)cfg;  // faults here model the counter path, not the configuration
  return perturb(clean);
}

TunerCounters FaultInjector::perturb(const TunerCounters& clean) {
  // One uniform draw selects at most one fault class per interval, so class
  // rates are exclusive and sum to interval_rate().
  const double u = rng_.next_double();
  double edge = plan_.drop;
  TunerCounters out = clean;

  // The duplicate class needs the previous *clean* interval whatever class
  // fires now, so record it before perturbing.
  const TunerCounters prev = prev_;
  const bool had_prev = has_prev_;
  prev_ = clean;
  has_prev_ = true;

  if (u < edge) {
    ++counts_.drops;
    return TunerCounters{};  // the interval never arrived
  }
  edge += plan_.bitflip;
  if (u < edge) {
    ++counts_.bitflips;
    std::uint64_t* regs[5] = {&out.accesses, &out.hits, &out.misses,
                              &out.cycles, &out.pred_first_hits};
    std::uint64_t* reg = regs[rng_.next_below(5)];
    *reg ^= 1ULL << rng_.next_below(kCounterBits);
    return out;
  }
  edge += plan_.saturate;
  if (u < edge) {
    ++counts_.saturations;
    std::uint64_t* regs[4] = {&out.accesses, &out.hits, &out.misses,
                              &out.cycles};
    *regs[rng_.next_below(4)] = (1ULL << kCounterBits) - 1;
    return out;
  }
  edge += plan_.duplicate;
  if (u < edge) {
    if (had_prev) {
      ++counts_.duplicates;
      return prev;
    }
    ++counts_.drops;  // nothing latched yet: degrades to a lost interval
    return TunerCounters{};
  }
  edge += plan_.noise;
  if (u < edge) {
    ++counts_.noisy;
    // Coherent error: every counter mis-scaled by the same factor, as a
    // mis-timed interval boundary would. Clamping preserves the counter
    // invariants (hits + misses <= accesses, cycles >= accesses), so this
    // class passes the plausibility guards by design — it is the
    // graceful-degradation case, not the loud-failure one.
    const double factor =
        1.0 + (2.0 * rng_.next_double() - 1.0) * plan_.noise_magnitude;
    out.accesses = std::max<std::uint64_t>(1, scale_count(clean.accesses, factor));
    out.hits = std::min(scale_count(clean.hits, factor), out.accesses);
    out.misses = std::min(scale_count(clean.misses, factor), out.accesses - out.hits);
    out.cycles = std::max(scale_count(clean.cycles, factor), out.accesses);
    out.pred_first_hits = std::min(scale_count(clean.pred_first_hits, factor), out.hits);
    return out;
  }
  return out;  // pristine interval
}

void FaultInjector::perturb_trace(Trace& trace) {
  if (plan_.record_bitflip <= 0.0) return;
  for (TraceRecord& r : trace) {
    if (rng_.next_bool(plan_.record_bitflip)) {
      ++counts_.record_flips;
      r.addr ^= 1u << rng_.next_below(32);
    }
  }
}

}  // namespace stcache
