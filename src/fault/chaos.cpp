#include "fault/chaos.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace stcache {

const char* to_string(WireFaultClass c) {
  switch (c) {
    case WireFaultClass::kNone: return "none";
    case WireFaultClass::kCorrupt: return "corrupt";
    case WireFaultClass::kTruncate: return "truncate";
    case WireFaultClass::kDisconnect: return "disconnect";
    case WireFaultClass::kStall: return "stall";
    case WireFaultClass::kDuplicate: return "duplicate";
  }
  return "?";
}

const char* to_string(ChaosOutcome o) {
  switch (o) {
    case ChaosOutcome::kVerdict: return "verdict";
    case ChaosOutcome::kMismatch: return "mismatch";
    case ChaosOutcome::kServerError: return "server-error";
    case ChaosOutcome::kSelfDisconnect: return "self-disconnect";
    case ChaosOutcome::kTransportError: return "transport-error";
  }
  return "?";
}

namespace {

// Raw byte send — faulted frames are deliberately NOT valid wire frames,
// so this bypasses write_frame. Returns false on any error (EPIPE after
// the server poisoned us is the expected failure, not an exception).
bool send_bytes(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// One encoded frame, header + payload, ready for fault surgery.
std::vector<std::uint8_t> encode_frame(serve::FrameType type,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> bytes(5 + payload.size());
  bytes[0] = static_cast<std::uint8_t>(type);
  const auto len = static_cast<std::uint32_t>(payload.size());
  bytes[1] = static_cast<std::uint8_t>(len);
  bytes[2] = static_cast<std::uint8_t>(len >> 8);
  bytes[3] = static_cast<std::uint8_t>(len >> 16);
  bytes[4] = static_cast<std::uint8_t>(len >> 24);
  std::copy(payload.begin(), payload.end(), bytes.begin() + 5);
  return bytes;
}

}  // namespace

ChaosEndpoint::ChaosEndpoint(const FaultPlan& plan,
                             std::uint32_t response_timeout_ms)
    : plan_(plan), response_timeout_ms_(response_timeout_ms),
      rng_(plan.seed) {}

ChaosReport ChaosEndpoint::run(const std::string& socket_path,
                               bool instruction,
                               std::span<const std::uint32_t> packed,
                               std::size_t chunk_words) {
  STC_ASSERT(chunk_words > 0, "chaos: chunk_words must be positive");
  ChaosReport report;
  report.clean_words = packed.size();

  int fd = -1;
  try {
    fd = serve::unix_connect(socket_path);
  } catch (const std::exception& e) {
    report.outcome = ChaosOutcome::kTransportError;
    report.detail = e.what();
    return report;
  }

  // Bounded response read + classification; owns the final outcome for
  // every path that expects the server to say something.
  const auto read_response = [&] {
    try {
      serve::Frame frame;
      if (!serve::read_frame(fd, frame, serve::kMaxFramePayload,
                             serve::wire_deadline_after(response_timeout_ms_))) {
        report.outcome = ChaosOutcome::kTransportError;
        report.detail = "server closed without a response";
      } else if (frame.type == serve::FrameType::kError) {
        const serve::WireError err = serve::decode_error(frame.payload);
        report.outcome = ChaosOutcome::kServerError;
        report.server_code = err.code;
        report.detail = err.message;
      } else if (frame.type == serve::FrameType::kVerdict) {
        report.verdict = serve::decode_verdict(frame.payload);
        report.outcome = report.verdict.accesses == report.clean_words
                             ? ChaosOutcome::kVerdict
                             : ChaosOutcome::kMismatch;
        if (report.outcome == ChaosOutcome::kMismatch) {
          report.detail = "verdict folded " +
                          std::to_string(report.verdict.accesses) +
                          " words, clean stream has " +
                          std::to_string(report.clean_words);
        }
      } else {
        report.outcome = ChaosOutcome::kTransportError;
        report.detail = "unexpected response frame type " +
                        std::to_string(static_cast<unsigned>(frame.type));
      }
    } catch (const serve::WireTimeout& e) {
      report.outcome = ChaosOutcome::kTransportError;
      report.detail = std::string("response deadline: ") + e.what();
    } catch (const std::exception& e) {
      report.outcome = ChaosOutcome::kTransportError;
      report.detail = e.what();
    }
  };

  // The session's frame sequence, materialized so faults can operate on
  // raw bytes: HELLO, CHUNK..., FIN.
  struct Outgoing {
    serve::FrameType type;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Outgoing> frames;
  frames.push_back({serve::FrameType::kHello,
                    encode_frame(serve::FrameType::kHello,
                                 serve::encode_hello(instruction))});
  for (std::size_t off = 0; off < packed.size(); off += chunk_words) {
    const std::size_t n = std::min(chunk_words, packed.size() - off);
    frames.push_back(
        {serve::FrameType::kChunk,
         encode_frame(serve::FrameType::kChunk,
                      serve::encode_chunk(packed.subspan(off, n)))});
  }
  frames.push_back({serve::FrameType::kFin,
                    encode_frame(serve::FrameType::kFin, {})});

  bool awaiting_response = true;  // false once the plan closed the socket
  for (const Outgoing& out : frames) {
    // One uniform draw per frame picks at most one class (the counter-path
    // idiom); corrupt/duplicate downgrade to none off CHUNK frames.
    WireFaultClass cls = WireFaultClass::kNone;
    const double u = rng_.next_double();
    double acc = 0.0;
    if (u < (acc += plan_.wire_corrupt)) cls = WireFaultClass::kCorrupt;
    else if (u < (acc += plan_.wire_truncate)) cls = WireFaultClass::kTruncate;
    else if (u < (acc += plan_.wire_disconnect)) cls = WireFaultClass::kDisconnect;
    else if (u < (acc += plan_.wire_stall)) cls = WireFaultClass::kStall;
    else if (u < (acc += plan_.wire_duplicate)) cls = WireFaultClass::kDuplicate;
    if ((cls == WireFaultClass::kCorrupt ||
         cls == WireFaultClass::kDuplicate) &&
        out.type != serve::FrameType::kChunk) {
      cls = WireFaultClass::kNone;
    }

    if (cls == WireFaultClass::kDisconnect) {
      ++report.counts.disconnects;
      report.outcome = ChaosOutcome::kSelfDisconnect;
      report.detail = "plan dropped the connection before a " +
                      std::to_string(static_cast<unsigned>(out.type)) +
                      " frame";
      awaiting_response = false;
      break;
    }

    if (cls == WireFaultClass::kStall) {
      ++report.counts.stalls;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(plan_.wire_stall_ms));
      // Fall through: the frame is sent unmodified after the stall.
    }

    std::vector<std::uint8_t> bytes = out.bytes;
    bool half_close = false;
    if (cls == WireFaultClass::kCorrupt) {
      ++report.counts.corrupted;
      // Flip a payload bit: framing stays intact, so the server must
      // catch this with the CRC or the chunk structure check.
      const std::size_t payload_bits = (bytes.size() - 5) * 8;
      const std::size_t bit = rng_.next_below(payload_bits);
      bytes[5 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      half_close = true;  // the stream is untrustworthy; force the verdict
    } else if (cls == WireFaultClass::kTruncate) {
      ++report.counts.truncated;
      // A strict prefix: at least 1 byte, never the whole frame, so the
      // server always sees a torn frame, not a short session.
      const std::size_t cut = 1 + rng_.next_below(bytes.size() - 1);
      bytes.resize(cut);
      half_close = true;
    }

    ++report.counts.frames_sent;
    bool sent = send_bytes(fd, bytes.data(), bytes.size());
    if (sent && cls == WireFaultClass::kDuplicate) {
      ++report.counts.duplicates;
      ++report.counts.frames_sent;
      sent = send_bytes(fd, bytes.data(), bytes.size());
    }
    if (half_close && sent) {
      // EOF the write side so the server's reader terminates its frame
      // parse NOW instead of waiting out its idle deadline.
      ::shutdown(fd, SHUT_WR);
    }
    if (!sent || half_close) {
      // Either the server already poisoned us (send failed: its ERROR is
      // pending) or we just invalidated the stream — read the response.
      read_response();
      awaiting_response = false;
      break;
    }
  }

  if (awaiting_response) read_response();
  ::close(fd);
  return report;
}

}  // namespace stcache
