// Deterministic fault injection for the self-tuning stack.
//
// The paper's tuner runs on-chip against live hit/miss/cycle counters; a
// production deployment has to survive those counters arriving corrupted
// (single-event upsets, mis-latched measurement intervals, stuck bits) and
// trace files arriving damaged. This module makes every such fault
// reproducible: a FaultPlan is a seeded description of a fault campaign,
// and a FaultInjector executes it at the two trust boundaries the model
// exposes —
//
//   * the counter path: FaultInjector is a MeasurementTap (core/ports.hpp)
//     that perturbs TunerCounters between the platform and the tuner;
//   * the trace path: perturb_trace() flips address bits in captured
//     records, modelling storage/transport corruption that the STCT v2
//     CRC (trace/trace_io.hpp) exists to catch.
//
// Determinism contract: the injector draws every decision from one
// splitmix64 stream seeded by the plan, so the same plan produces the same
// fault sequence on every run, on every platform, and independent of how a
// sweep shards its jobs. Parallel shards decorrelate with
// FaultPlan::reseeded(stream_id), which mixes a per-shard id into the seed
// — never by sharing one injector across jobs.
//
// See docs/robustness.md for the full fault model and the guard semantics
// on the hardened side.
#pragma once

#include <cstdint>

#include "core/ports.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace stcache {

// A seeded fault campaign. Interval-class probabilities are drawn once per
// measured interval and are mutually exclusive: a single uniform draw is
// compared against the cumulative rates, so at most one fault class fires
// per interval and the total corrupted-interval rate is interval_rate().
struct FaultPlan {
  std::uint64_t seed = 0x5EEDFA11;

  // --- counter path (probability per measurement interval) ---
  double drop = 0.0;       // interval lost: all counters read back as zero
  double bitflip = 0.0;    // single-event upset: one random bit of one counter
  double saturate = 0.0;   // stuck counter: one counter forced to all-ones
  double duplicate = 0.0;  // stale latch: the previous interval re-latched
  double noise = 0.0;      // coherent multiplicative error on all counters
  double noise_magnitude = 0.02;  // max fractional error of the noise class

  // --- trace path (probability per record) ---
  double record_bitflip = 0.0;  // flip one address bit of a record

  // --- wire path (probability per outgoing frame; fault/chaos.hpp) ---
  // Executed by ChaosEndpoint against a live tuning daemon. Like the
  // counter classes, a single uniform draw per frame picks at most one
  // class. Corrupt and duplicate only fire on CHUNK frames (the classes
  // exist to prove CRC and verdict-consistency detection); the draw
  // downgrades to "no fault" on other frame types so the decision stream
  // stays frame-aligned.
  double wire_corrupt = 0.0;     // flip one random payload bit of the frame
  double wire_truncate = 0.0;    // send a strict prefix, then half-close
  double wire_disconnect = 0.0;  // drop the connection instead of the frame
  double wire_stall = 0.0;       // sleep wire_stall_ms before the frame
  double wire_duplicate = 0.0;   // send the frame twice
  std::uint32_t wire_stall_ms = 50;

  double interval_rate() const {
    return drop + bitflip + saturate + duplicate + noise;
  }

  double wire_rate() const {
    return wire_corrupt + wire_truncate + wire_disconnect + wire_stall +
           wire_duplicate;
  }

  // The default campaign: `rate` of all measurement intervals corrupted,
  // split evenly over the classes the plausibility guards are built to
  // catch (drop, bitflip, saturate) plus coherent noise, the
  // graceful-degradation class. Stale-latch duplication is deliberately
  // NOT part of the default campaign: a duplicated coherent interval is
  // indistinguishable from a true measurement at the counter level (see
  // docs/robustness.md §limitations); it is injected explicitly where a
  // test wants it.
  static FaultPlan campaign(double rate, std::uint64_t seed);

  // The same campaign, decorrelated for shard `stream_id`: deterministic
  // function of (seed, stream_id) so parallel sweep jobs each own an
  // independent but reproducible fault stream.
  FaultPlan reseeded(std::uint64_t stream_id) const;
};

// Per-class injection counts (what actually fired, not what was planned).
struct FaultCounts {
  std::uint64_t drops = 0;
  std::uint64_t bitflips = 0;
  std::uint64_t saturations = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t noisy = 0;
  std::uint64_t record_flips = 0;

  std::uint64_t total() const {
    return drops + bitflips + saturations + duplicates + noisy + record_flips;
  }
};

class FaultInjector final : public MeasurementTap {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // MeasurementTap: perturb one interval's counters per the plan.
  TunerCounters tap(const CacheConfig& cfg, const TunerCounters& clean) override;
  std::uint64_t faults_injected() const override { return counts_.total(); }

  // Trace-path corruption: flip one random address bit per record with
  // probability plan.record_bitflip.
  void perturb_trace(Trace& trace);

  const FaultCounts& counts() const { return counts_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  TunerCounters perturb(const TunerCounters& clean);

  FaultPlan plan_;
  Rng rng_;
  TunerCounters prev_{};  // last clean interval, for the duplicate class
  bool has_prev_ = false;
  FaultCounts counts_;
};

}  // namespace stcache
