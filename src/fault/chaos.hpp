// Deterministic wire-chaos harness for the tuning service — the serving
// tier's analogue of FaultInjector (fault.hpp).
//
// FaultInjector perturbs the two trust boundaries of the in-process
// model (counters, trace records); ChaosEndpoint perturbs the third one a
// deployment adds: the socket between stcache_tunec and stcache_tuned. It
// plays one complete client session against a live daemon, but routes
// every outgoing frame through a seeded fault draw:
//
//   kCorrupt     flip one random payload bit of a CHUNK — must trip the
//                CRC (or the chunk structure check), never reach a bank
//   kTruncate    send a strict prefix of a frame, then half-close — the
//                server must diagnose mid-frame EOF, not hang waiting
//   kDisconnect  drop the connection cold — the server must abandon the
//                session and recycle its chunks, owing no response
//   kStall       sleep wire_stall_ms before the frame — exercises the
//                server's idle deadline (stall < idle completes cleanly;
//                stall > idle must produce `ERROR timeout`)
//   kDuplicate   send a CHUNK twice — framing and CRC both pass, so only
//                the verdict/words-sent cross-check can catch it
//
// Determinism: all draws (class, bit position, cut point) come from one
// splitmix64 stream seeded by the FaultPlan, so a (plan, workload) pair
// replays the identical fault sequence on every run — the serving
// resilience tests sweep seeds and assert a typed outcome for every one,
// with a deadline on every read so "hang" is a test failure, not a
// timeout in CI. docs/serving.md §7 maps fault classes to the outcomes
// asserted here.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "fault/fault.hpp"
#include "serve/wire.hpp"
#include "util/rng.hpp"

namespace stcache {

enum class WireFaultClass : std::uint8_t {
  kNone = 0,
  kCorrupt,
  kTruncate,
  kDisconnect,
  kStall,
  kDuplicate,
};
const char* to_string(WireFaultClass c);

// What actually fired during one chaos session.
struct WireFaultCounts {
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t stalls = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t frames_sent = 0;  // frames that reached the wire (dups count)

  std::uint64_t total() const {
    return corrupted + truncated + disconnects + stalls + duplicates;
  }
};

// How one chaos session ended. Every enumerator is a *terminated* state:
// ChaosEndpoint bounds every socket read, so a hung server surfaces as
// kTransportError with "deadline" in the detail, never as a stuck test.
enum class ChaosOutcome : std::uint8_t {
  kVerdict,         // VERDICT arrived and folded exactly the clean stream
  kMismatch,        // VERDICT arrived but folded a different word count
                    // (the duplicate class, caught by the cross-check)
  kServerError,     // typed ERROR frame (server_code says which)
  kSelfDisconnect,  // the plan dropped the connection; no response owed
  kTransportError,  // transport died without a typed frame (EOF/EPIPE/
                    // response deadline)
};
const char* to_string(ChaosOutcome o);

struct ChaosReport {
  ChaosOutcome outcome = ChaosOutcome::kTransportError;
  serve::WireErrorCode server_code = serve::WireErrorCode::kInternal;
  std::string detail;
  WireFaultCounts counts;
  serve::Verdict verdict;        // valid for kVerdict / kMismatch
  std::uint64_t clean_words = 0; // words of `packed` (what a clean verdict folds)

  // A retry (sessions are idempotent) is the sanctioned reaction to
  // everything except a typed rejection of the stream itself.
  bool retryable() const {
    return outcome != ChaosOutcome::kServerError ||
           server_code == serve::WireErrorCode::kOverload ||
           server_code == serve::WireErrorCode::kTimeout;
  }
};

class ChaosEndpoint {
 public:
  // `plan` supplies the wire_* rates and the seed; `response_timeout_ms`
  // bounds every read so a wedged server can never hang the harness.
  explicit ChaosEndpoint(const FaultPlan& plan,
                         std::uint32_t response_timeout_ms = 30'000);

  // Play one session of `packed` (chunked to `chunk_words`) against the
  // daemon at `socket_path`, faults included, and report how it ended.
  // Never throws on wire trouble — that is the point — only on internal
  // misuse (e.g. empty chunk_words).
  ChaosReport run(const std::string& socket_path, bool instruction,
                  std::span<const std::uint32_t> packed,
                  std::size_t chunk_words);

 private:
  FaultPlan plan_;
  std::uint32_t response_timeout_ms_;
  Rng rng_;
};

}  // namespace stcache
