#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <utility>

#include "cache/config.hpp"
#include "util/error.hpp"

namespace stcache::serve {

TuningServer::TuningServer(ServerOptions opts) : opts_(std::move(opts)) {}

TuningServer::~TuningServer() { stop(); }

void TuningServer::start() {
  if (running_) fail("tuning server: already running");
  workers_ = opts_.workers != 0
                 ? opts_.workers
                 : std::max(1u, std::thread::hardware_concurrency());
  pool_ = std::make_unique<ChunkPool>(opts_.pool_chunks, opts_.chunk_words);
  queues_ = std::make_unique<ShardedSessionQueues>(workers_, *pool_,
                                                   opts_.session_budget);
  listen_fd_ = unix_listen(opts_.socket_path, opts_.listen_backlog);
  stopping_ = false;
  draining_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  worker_threads_.reserve(workers_);
  for (std::size_t shard = 0; shard < workers_; ++shard) {
    worker_threads_.emplace_back([this, shard] { worker_loop(shard); });
  }
}

void TuningServer::stop() {
  if (!running_) return;
  stopping_ = true;
  // Wake the accept loop; the fd is closed after the thread joins.
  ::shutdown(listen_fd_, SHUT_RDWR);
  // Force every open connection out of its blocking read, and every
  // FIN-waiter out of its verdict wait.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [id, entry] : sessions_) {
      {
        std::lock_guard<std::mutex> elock(entry->write_mu);
        entry->done = true;
      }
      entry->done_cv.notify_all();
    }
  }
  queues_->shutdown();  // workers drain, then exit
  pool_->shutdown();    // readers blocked on a dry pool unwind
  {
    std::unique_lock<std::mutex> lock(mu_);
    connections_drained_.wait(lock, [&] { return active_connections_ == 0; });
  }
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opts_.socket_path.c_str());
  running_ = false;
}

bool TuningServer::drain(std::uint32_t deadline_ms) {
  if (!running_) return true;
  // New HELLOs are refused from here on (serve_connection's admission
  // check); connections already past HELLO run to completion.
  draining_ = true;
  const WireDeadline deadline = wire_deadline_after(deadline_ms);
  bool drained;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto idle = [&] { return active_connections_ == 0; };
    if (deadline == kNoWireDeadline) {
      connections_drained_.wait(lock, idle);
      drained = true;
    } else {
      drained = connections_drained_.wait_until(lock, deadline, idle);
    }
  }
  stop();  // stragglers past the deadline are aborted here
  return drained;
}

void TuningServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop) or unrecoverable
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn_fds_.push_back(fd);
      ++active_connections_;
    }
    // Detached on purpose: lifetime is tracked by active_connections_,
    // which stop() waits on, so no thread outlives the server.
    std::thread([this, fd] { serve_connection(fd); }).detach();
  }
}

TuningServer::EntryPtr TuningServer::find_entry(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : it->second;
}

bool TuningServer::send_response(const EntryPtr& entry, FrameType type,
                                 std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(entry->write_mu);
  if (entry->replied) return false;
  entry->replied = true;
  ++sessions_served_;
  try {
    write_frame(entry->fd, type, payload, response_deadline());
  } catch (...) {
    // The client may already be gone (or too stalled to take the frame
    // before the write deadline); the session is answered either way.
  }
  return true;
}

void TuningServer::send_error(const EntryPtr& entry, WireErrorCode code,
                              const std::string& message,
                              std::uint16_t retry_after_ms) {
  send_response(entry, FrameType::kError,
                encode_error(code, message, retry_after_ms));
}

void TuningServer::fail_session(std::uint64_t session, const EntryPtr& entry,
                                WireErrorCode code, const std::string& message,
                                std::uint16_t retry_after_ms) {
  queues_->poison(session);  // purge queued chunks back to the pool
  ++sessions_poisoned_;
  if (code == WireErrorCode::kTimeout) ++sessions_timed_out_;
  send_error(entry, code, message, retry_after_ms);
}

void TuningServer::mark_entry_done(const EntryPtr& entry) {
  {
    std::lock_guard<std::mutex> lock(entry->write_mu);
    entry->done = true;
  }
  entry->done_cv.notify_all();
}

void TuningServer::serve_connection(int fd) {
  std::uint64_t session = 0;
  EntryPtr entry;
  bool fin_sent = false;

  // Pre-session failures answer on the raw fd (there is no session to
  // poison yet).
  auto raw_error = [&](WireErrorCode code, const std::string& message,
                       std::uint16_t retry_after = 0) {
    try {
      const auto payload = encode_error(code, message, retry_after);
      write_frame(fd, FrameType::kError, payload, response_deadline());
    } catch (...) {
    }
  };

  // The total-session clock starts at accept; every frame read is bounded
  // by the sooner of the idle deadline (reset per frame) and this one.
  const WireDeadline session_deadline =
      wire_deadline_after(opts_.session_timeout_ms);
  const auto frame_deadline = [&] {
    return std::min(wire_deadline_after(opts_.idle_timeout_ms),
                    session_deadline);
  };

  try {
    Frame frame;
    bool instruction = true;
    bool hello_ok = false;
    try {
      if (read_frame(fd, frame, kMaxFramePayload, frame_deadline())) {
        if (frame.type != FrameType::kHello) {
          raw_error(WireErrorCode::kProtocol,
                    "expected HELLO, got frame type " +
                        std::to_string(static_cast<unsigned>(frame.type)));
        } else {
          try {
            const Hello hello = decode_hello(frame.payload);
            instruction = hello.instruction;
            hello_ok = true;
          } catch (const std::exception& e) {
            raw_error(WireErrorCode::kProtocol, e.what());
          }
        }
      }
    } catch (const WireTimeout& e) {
      // Slow-loris: connected but never produced a HELLO in time.
      ++sessions_timed_out_;
      raw_error(WireErrorCode::kTimeout, e.what());
      hello_ok = false;
    } catch (const std::exception& e) {
      // Torn or malformed bytes before a session exists (e.g. a HELLO cut
      // mid-frame): still answered with a typed ERROR, never a bare close.
      raw_error(WireErrorCode::kProtocol, e.what());
      hello_ok = false;
    }

    // Admission control: shed BEFORE the session touches the pool, so an
    // overloaded server answers cheaply instead of piling readers onto
    // already-contended buffers (docs/serving.md §6).
    if (hello_ok) {
      std::string refuse;
      if (draining_ || stopping_) {
        refuse = "draining: not accepting new sessions";
      } else if (opts_.max_inflight_sessions != 0) {
        std::lock_guard<std::mutex> lock(mu_);
        if (sessions_.size() >= opts_.max_inflight_sessions) {
          refuse = "overloaded: session capacity reached";
        }
      }
      if (refuse.empty() && opts_.shed_pool_min != 0 &&
          pool_->available() < opts_.shed_pool_min) {
        refuse = "overloaded: chunk pool pressure";
      }
      if (!refuse.empty()) {
        ++sessions_shed_;
        raw_error(WireErrorCode::kOverload, refuse, opts_.retry_after_ms);
        hello_ok = false;
      }
    }

    if (hello_ok) {
      try {
        session = queues_->open_session();
      } catch (const std::exception& e) {
        raw_error(WireErrorCode::kOverload, e.what(), opts_.retry_after_ms);
      }
    }

    if (session != 0) {
      entry = std::make_shared<SessionEntry>(
          std::span<const CacheConfig>(all_configs()), opts_.engine);
      entry->fd = fd;
      entry->instruction = instruction;
      {
        std::lock_guard<std::mutex> lock(mu_);
        sessions_.emplace(session, entry);
      }

      while (!fin_sent) {
        bool got = false;
        bool malformed = false;
        bool timed_out = false;
        std::string why;
        try {
          got = read_frame(fd, frame, kMaxFramePayload, frame_deadline());
        } catch (const WireTimeout& e) {
          timed_out = true;
          why = e.what();
        } catch (const std::exception& e) {
          // Oversized/unknown frame or mid-frame EOF: the stream is
          // unusable either way.
          malformed = true;
          why = e.what();
        }
        if (timed_out) {
          fail_session(session, entry, WireErrorCode::kTimeout, why,
                       opts_.retry_after_ms);
          break;
        }
        if (malformed) {
          fail_session(session, entry, WireErrorCode::kProtocol, why);
          break;
        }
        if (!got) {
          // Clean disconnect without FIN: abandoned, no response owed.
          queues_->abandon(session);
          break;
        }
        if (frame.type == FrameType::kChunk) {
          PooledChunk chunk;
          // Global backpressure, bounded: a dry pool past the deadline
          // sheds this session instead of pinning its reader forever.
          if (!pool_->acquire_until(frame_deadline(), chunk)) {
            fail_session(session, entry, WireErrorCode::kTimeout,
                         "timeout: chunk pool exhausted past the deadline",
                         opts_.retry_after_ms);
            break;
          }
          try {
            decode_chunk(frame.payload, chunk);
          } catch (const std::exception& e) {
            pool_->release(std::move(chunk));
            const std::string message = e.what();
            const WireErrorCode code =
                message.find("crc") != std::string::npos
                    ? WireErrorCode::kChunkCrc
                    : WireErrorCode::kProtocol;
            fail_session(session, entry, code, message);
            break;
          }
          const auto pushed =
              queues_->push_until(session, std::move(chunk), frame_deadline());
          if (pushed == ShardedSessionQueues::PushResult::kTimedOut) {
            fail_session(session, entry, WireErrorCode::kTimeout,
                         "timeout: session budget saturated past the deadline",
                         opts_.retry_after_ms);
            break;
          }
          if (pushed == ShardedSessionQueues::PushResult::kRefused) {
            // Poisoned by the worker (its ERROR frame is authoritative),
            // or the server is stopping.
            break;
          }
        } else if (frame.type == FrameType::kFin) {
          fin_sent = true;
          queues_->finish(session);
          // Wait for the shard worker to retire the FIN and answer —
          // bounded, so a wedged shard cannot pin this reader forever.
          const WireDeadline deadline = frame_deadline();
          bool finished;
          {
            std::unique_lock<std::mutex> lock(entry->write_mu);
            const auto done = [&] { return entry->done; };
            if (deadline == kNoWireDeadline) {
              entry->done_cv.wait(lock, done);
              finished = true;
            } else {
              finished = entry->done_cv.wait_until(lock, deadline, done);
            }
          }
          if (!finished) {
            fail_session(session, entry, WireErrorCode::kTimeout,
                         "timeout: verdict not ready before the deadline",
                         opts_.retry_after_ms);
          }
        } else {
          fail_session(session, entry, WireErrorCode::kProtocol,
                       "unexpected frame type " +
                           std::to_string(static_cast<unsigned>(frame.type)) +
                           " inside a session");
          break;
        }
      }
    }
  } catch (const std::exception&) {
    // Pool shutdown or a socket error outside the per-frame handling:
    // treat as a dead connection.
    if (session != 0) queues_->abandon(session);
  }

  if (session != 0) {
    queues_->abandon(session);  // no-op unless still streaming
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(session);
    }
    queues_->close_session(session);
  }
  ::close(fd);
  {
    // Notify under mu_: once the count hits zero stop() may return and the
    // server be destroyed, so the broadcast must complete before the
    // waiter can re-check the predicate (it re-acquires mu_ to do so).
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
    --active_connections_;
    connections_drained_.notify_all();
  }
}

void TuningServer::worker_loop(std::size_t shard) {
  ShardedSessionQueues::Item item;
  while (queues_->pop(shard, item)) {
    const EntryPtr entry = find_entry(item.session);
    const SessionState st = queues_->state(item.session);
    if (entry) {
      try {
        if (item.fin) {
          if (st == SessionState::kFinishing) {
            if (entry->bank.words_fed() == 0) {
              send_error(entry, WireErrorCode::kEmptyStream,
                         "fin: no packed words were streamed");
            } else {
              const std::vector<CacheStats> stats = entry->bank.stats();
              const auto payload =
                  encode_verdict(entry->bank.words_fed(), stats);
              send_response(entry, FrameType::kVerdict, payload);
            }
            queues_->mark_done(item.session);
          }
          mark_entry_done(entry);
        } else if (st == SessionState::kStreaming ||
                   st == SessionState::kFinishing) {
          entry->bank.feed(item.chunk.valid_words());
        }
      } catch (const std::exception& e) {
        // A failure inside THIS session's sweep poisons only this session;
        // the worker — and every other session on this shard — lives on.
        fail_session(item.session, entry, WireErrorCode::kInternal, e.what());
        mark_entry_done(entry);
      }
    }
    queues_->release(std::move(item));
  }
}

}  // namespace stcache::serve
