#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <utility>

#include "cache/config.hpp"
#include "util/error.hpp"

namespace stcache::serve {

TuningServer::TuningServer(ServerOptions opts) : opts_(std::move(opts)) {}

TuningServer::~TuningServer() { stop(); }

void TuningServer::start() {
  if (running_) fail("tuning server: already running");
  workers_ = opts_.workers != 0
                 ? opts_.workers
                 : std::max(1u, std::thread::hardware_concurrency());
  pool_ = std::make_unique<ChunkPool>(opts_.pool_chunks, opts_.chunk_words);
  queues_ = std::make_unique<ShardedSessionQueues>(workers_, *pool_,
                                                   opts_.session_budget);
  listen_fd_ = unix_listen(opts_.socket_path, opts_.listen_backlog);
  stopping_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  worker_threads_.reserve(workers_);
  for (std::size_t shard = 0; shard < workers_; ++shard) {
    worker_threads_.emplace_back([this, shard] { worker_loop(shard); });
  }
}

void TuningServer::stop() {
  if (!running_) return;
  stopping_ = true;
  // Wake the accept loop; the fd is closed after the thread joins.
  ::shutdown(listen_fd_, SHUT_RDWR);
  // Force every open connection out of its blocking read, and every
  // FIN-waiter out of its verdict wait.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [id, entry] : sessions_) {
      {
        std::lock_guard<std::mutex> elock(entry->write_mu);
        entry->done = true;
      }
      entry->done_cv.notify_all();
    }
  }
  queues_->shutdown();  // workers drain, then exit
  pool_->shutdown();    // readers blocked on a dry pool unwind
  {
    std::unique_lock<std::mutex> lock(mu_);
    connections_drained_.wait(lock, [&] { return active_connections_ == 0; });
  }
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opts_.socket_path.c_str());
  running_ = false;
}

void TuningServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop) or unrecoverable
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn_fds_.push_back(fd);
      ++active_connections_;
    }
    // Detached on purpose: lifetime is tracked by active_connections_,
    // which stop() waits on, so no thread outlives the server.
    std::thread([this, fd] { serve_connection(fd); }).detach();
  }
}

TuningServer::EntryPtr TuningServer::find_entry(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : it->second;
}

bool TuningServer::send_response(const EntryPtr& entry, FrameType type,
                                 std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(entry->write_mu);
  if (entry->replied) return false;
  entry->replied = true;
  ++sessions_served_;
  try {
    write_frame(entry->fd, type, payload);
  } catch (...) {
    // The client may already be gone; the session is answered either way.
  }
  return true;
}

void TuningServer::send_error(const EntryPtr& entry, WireErrorCode code,
                              const std::string& message) {
  send_response(entry, FrameType::kError, encode_error(code, message));
}

void TuningServer::mark_entry_done(const EntryPtr& entry) {
  {
    std::lock_guard<std::mutex> lock(entry->write_mu);
    entry->done = true;
  }
  entry->done_cv.notify_all();
}

void TuningServer::serve_connection(int fd) {
  std::uint64_t session = 0;
  EntryPtr entry;
  bool fin_sent = false;

  // Pre-session protocol failures answer on the raw fd (there is no
  // session to poison yet).
  auto raw_error = [&](WireErrorCode code, const std::string& message) {
    try {
      const auto payload = encode_error(code, message);
      write_frame(fd, FrameType::kError, payload);
    } catch (...) {
    }
  };

  try {
    Frame frame;
    bool instruction = true;
    bool hello_ok = false;
    if (read_frame(fd, frame)) {
      if (frame.type != FrameType::kHello) {
        raw_error(WireErrorCode::kProtocol,
                  "expected HELLO, got frame type " +
                      std::to_string(static_cast<unsigned>(frame.type)));
      } else {
        try {
          instruction = decode_hello(frame.payload);
          hello_ok = true;
        } catch (const std::exception& e) {
          raw_error(WireErrorCode::kProtocol, e.what());
        }
      }
    }

    if (hello_ok) {
      try {
        session = queues_->open_session();
      } catch (const std::exception& e) {
        raw_error(WireErrorCode::kOverload, e.what());
      }
    }

    if (session != 0) {
      entry = std::make_shared<SessionEntry>(
          std::span<const CacheConfig>(all_configs()), opts_.engine);
      entry->fd = fd;
      entry->instruction = instruction;
      {
        std::lock_guard<std::mutex> lock(mu_);
        sessions_.emplace(session, entry);
      }

      while (!fin_sent) {
        bool got = false;
        bool malformed = false;
        std::string why;
        try {
          got = read_frame(fd, frame);
        } catch (const std::exception& e) {
          // Oversized/unknown frame or mid-frame EOF: the stream is
          // unusable either way.
          malformed = true;
          why = e.what();
        }
        if (malformed) {
          queues_->poison(session);
          send_error(entry, WireErrorCode::kProtocol, why);
          break;
        }
        if (!got) {
          // Clean disconnect without FIN: abandoned, no response owed.
          queues_->abandon(session);
          break;
        }
        if (frame.type == FrameType::kChunk) {
          PooledChunk chunk = pool_->acquire();  // global backpressure
          try {
            decode_chunk(frame.payload, chunk);
          } catch (const std::exception& e) {
            pool_->release(std::move(chunk));
            queues_->poison(session);
            const std::string message = e.what();
            const WireErrorCode code =
                message.find("crc") != std::string::npos
                    ? WireErrorCode::kChunkCrc
                    : WireErrorCode::kProtocol;
            send_error(entry, code, message);
            break;
          }
          if (!queues_->push(session, std::move(chunk))) {
            // Poisoned by the worker (its ERROR frame is authoritative),
            // or the server is stopping.
            break;
          }
        } else if (frame.type == FrameType::kFin) {
          fin_sent = true;
          queues_->finish(session);
          // Wait for the shard worker to retire the FIN and answer.
          std::unique_lock<std::mutex> lock(entry->write_mu);
          entry->done_cv.wait(lock, [&] { return entry->done; });
        } else {
          queues_->poison(session);
          send_error(entry, WireErrorCode::kProtocol,
                     "unexpected frame type " +
                         std::to_string(static_cast<unsigned>(frame.type)) +
                         " inside a session");
          break;
        }
      }
    }
  } catch (const std::exception&) {
    // Pool shutdown or a socket error outside the per-frame handling:
    // treat as a dead connection.
    if (session != 0) queues_->abandon(session);
  }

  if (session != 0) {
    queues_->abandon(session);  // no-op unless still streaming
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(session);
    }
    queues_->close_session(session);
  }
  ::close(fd);
  {
    // Notify under mu_: once the count hits zero stop() may return and the
    // server be destroyed, so the broadcast must complete before the
    // waiter can re-check the predicate (it re-acquires mu_ to do so).
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
    --active_connections_;
    connections_drained_.notify_all();
  }
}

void TuningServer::worker_loop(std::size_t shard) {
  ShardedSessionQueues::Item item;
  while (queues_->pop(shard, item)) {
    const EntryPtr entry = find_entry(item.session);
    const SessionState st = queues_->state(item.session);
    if (entry) {
      try {
        if (item.fin) {
          if (st == SessionState::kFinishing) {
            if (entry->bank.words_fed() == 0) {
              send_error(entry, WireErrorCode::kEmptyStream,
                         "fin: no packed words were streamed");
            } else {
              const std::vector<CacheStats> stats = entry->bank.stats();
              const auto payload =
                  encode_verdict(entry->bank.words_fed(), stats);
              send_response(entry, FrameType::kVerdict, payload);
            }
            queues_->mark_done(item.session);
          }
          mark_entry_done(entry);
        } else if (st == SessionState::kStreaming ||
                   st == SessionState::kFinishing) {
          entry->bank.feed(item.chunk.valid_words());
        }
      } catch (const std::exception& e) {
        // A failure inside THIS session's sweep poisons only this session;
        // the worker — and every other session on this shard — lives on.
        queues_->poison(item.session);
        send_error(entry, WireErrorCode::kInternal, e.what());
        mark_entry_done(entry);
      }
    }
    queues_->release(std::move(item));
  }
}

}  // namespace stcache::serve
