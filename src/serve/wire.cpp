#include "serve/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace stcache::serve {

namespace {

// --- little-endian scalar helpers -------------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// CacheStats counters in cache/stats.hpp declaration order — the VERDICT
// payload contract (17 × u64 per configuration).
constexpr std::size_t kStatsFields = 17;

void put_stats(std::vector<std::uint8_t>& out, const CacheStats& s) {
  put_u64(out, s.accesses);
  put_u64(out, s.read_accesses);
  put_u64(out, s.write_accesses);
  put_u64(out, s.hits);
  put_u64(out, s.misses);
  put_u64(out, s.fill_bytes);
  put_u64(out, s.writeback_bytes);
  put_u64(out, s.reconfig_writeback_bytes);
  put_u64(out, s.write_through_bytes);
  put_u64(out, s.wt_store_misses);
  put_u64(out, s.victim_probes);
  put_u64(out, s.victim_hits);
  put_u64(out, s.pred_accesses);
  put_u64(out, s.pred_first_hits);
  put_u64(out, s.pred_mispredicts);
  put_u64(out, s.cycles);
  put_u64(out, s.stall_cycles);
}

CacheStats get_stats(const std::uint8_t* p) {
  CacheStats s;
  std::size_t at = 0;
  auto next = [&] { return get_u64(p + 8 * at++); };
  s.accesses = next();
  s.read_accesses = next();
  s.write_accesses = next();
  s.hits = next();
  s.misses = next();
  s.fill_bytes = next();
  s.writeback_bytes = next();
  s.reconfig_writeback_bytes = next();
  s.write_through_bytes = next();
  s.wt_store_misses = next();
  s.victim_probes = next();
  s.victim_hits = next();
  s.pred_accesses = next();
  s.pred_first_hits = next();
  s.pred_mispredicts = next();
  s.cycles = next();
  s.stall_cycles = next();
  return s;
}

}  // namespace

const char* to_string(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kProtocol: return "protocol";
    case WireErrorCode::kChunkCrc: return "chunk-crc";
    case WireErrorCode::kEmptyStream: return "empty-stream";
    case WireErrorCode::kOverload: return "overload";
    case WireErrorCode::kInternal: return "internal";
    case WireErrorCode::kTimeout: return "timeout";
  }
  return "?";
}

// --- payload encode/decode --------------------------------------------------

std::vector<std::uint8_t> encode_hello(bool instruction,
                                       std::uint16_t version) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kHelloMagic, kHelloMagic + 4);
  put_u16(out, version);
  out.push_back(instruction ? 0 : 1);
  out.push_back(0);  // reserved
  return out;
}

Hello decode_hello(std::span<const std::uint8_t> payload) {
  if (payload.size() != 8) fail("hello: payload must be 8 bytes");
  if (std::memcmp(payload.data(), kHelloMagic, 4) != 0) {
    fail("hello: bad magic");
  }
  Hello hello;
  hello.version = get_u16(payload.data() + 4);
  if (hello.version < kMinProtocolVersion || hello.version > kProtocolVersion) {
    fail("hello: unsupported protocol version " + std::to_string(hello.version));
  }
  const std::uint8_t stream = payload[6];
  if (stream > 1) fail("hello: bad stream selector");
  if (payload[7] != 0) fail("hello: reserved byte must be zero");
  hello.instruction = stream == 0;
  return hello;
}

std::vector<std::uint8_t> encode_chunk(std::span<const std::uint32_t> words) {
  STC_ASSERT(!words.empty() && words.size() <= kMaxChunkWords,
             "encode_chunk: bad word count");
  std::vector<std::uint8_t> out;
  out.reserve(8 + 4 * words.size());
  put_u32(out, static_cast<std::uint32_t>(words.size()));
  put_u32(out, 0);  // crc placeholder
  for (std::uint32_t w : words) put_u32(out, w);
  const std::uint32_t crc = crc32(out.data() + 8, 4 * words.size());
  out[4] = static_cast<std::uint8_t>(crc);
  out[5] = static_cast<std::uint8_t>(crc >> 8);
  out[6] = static_cast<std::uint8_t>(crc >> 16);
  out[7] = static_cast<std::uint8_t>(crc >> 24);
  return out;
}

void decode_chunk(std::span<const std::uint8_t> payload, PooledChunk& out) {
  if (payload.size() < 8) fail("chunk: truncated header");
  const std::uint32_t count = get_u32(payload.data());
  if (count == 0 || count > kMaxChunkWords) {
    fail("chunk: bad word count " + std::to_string(count));
  }
  if (payload.size() != 8 + std::size_t{4} * count) {
    fail("chunk: payload length does not match word count");
  }
  const std::uint32_t declared = get_u32(payload.data() + 4);
  const std::uint32_t actual = crc32(payload.data() + 8, std::size_t{4} * count);
  if (declared != actual) fail("chunk: crc mismatch");
  if (out.words.size() < count) out.words.resize(count);
  // Word bytes are little-endian on the wire; decode explicitly so the
  // protocol stays endian-portable.
  for (std::uint32_t i = 0; i < count; ++i) {
    out.words[i] = get_u32(payload.data() + 8 + std::size_t{4} * i);
  }
  out.count = count;
}

std::vector<std::uint8_t> encode_verdict(std::uint64_t accesses,
                                         std::span<const CacheStats> stats) {
  std::vector<std::uint8_t> out;
  out.reserve(12 + stats.size() * kStatsFields * 8);
  put_u64(out, accesses);
  put_u32(out, static_cast<std::uint32_t>(stats.size()));
  for (const CacheStats& s : stats) put_stats(out, s);
  return out;
}

Verdict decode_verdict(std::span<const std::uint8_t> payload) {
  if (payload.size() < 12) fail("verdict: truncated header");
  Verdict v;
  v.accesses = get_u64(payload.data());
  const std::uint32_t n = get_u32(payload.data() + 8);
  if (n == 0 || n > 4096) fail("verdict: bad config count");
  if (payload.size() != 12 + std::size_t{n} * kStatsFields * 8) {
    fail("verdict: payload length does not match config count");
  }
  v.stats.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    v.stats.push_back(get_stats(payload.data() + 12 + std::size_t{i} * kStatsFields * 8));
  }
  return v;
}

std::vector<std::uint8_t> encode_error(WireErrorCode code,
                                       const std::string& message,
                                       std::uint16_t retry_after_ms) {
  std::vector<std::uint8_t> out;
  put_u16(out, static_cast<std::uint16_t>(code));
  put_u16(out, retry_after_ms);  // reserved-zero in protocol v1
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

WireError decode_error(std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) fail("error frame: truncated header");
  WireError e;
  e.code = static_cast<WireErrorCode>(get_u16(payload.data()));
  e.retry_after_ms = get_u16(payload.data() + 2);
  e.message.assign(payload.begin() + 4, payload.end());
  return e;
}

// --- framed socket I/O ------------------------------------------------------

namespace {

// Block until `fd` is ready for `events` or `deadline` passes; throws
// WireTimeout on expiry. POLLERR/POLLHUP readiness is returned to the
// caller — the subsequent recv/send surfaces the real errno (or EOF).
void poll_or_timeout(int fd, short events, WireDeadline deadline,
                     const char* what) {
  while (true) {
    const auto now = WireClock::now();
    if (now >= deadline) {
      throw WireTimeout(std::string(what) + ": deadline expired");
    }
    const auto left =
        std::chrono::ceil<std::chrono::milliseconds>(deadline - now).count();
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(
        &pfd, 1,
        static_cast<int>(std::min<long long>(left, 60'000)));  // re-check hour+
    if (rc < 0) {
      if (errno == EINTR) continue;
      fail(std::string(what) + ": poll: " + std::strerror(errno));
    }
    if (rc > 0) return;  // ready (or error/hup: let recv/send report it)
  }
}

void write_all(int fd, const void* data, std::size_t len,
               WireDeadline deadline) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-write surfaces as EPIPE, not a
    // process-killing SIGPIPE. Under a deadline the send is non-blocking
    // and gated by poll(): a blocking send() may not return until the
    // WHOLE buffer is queued, which would sail past the deadline.
    const bool bounded = deadline != kNoWireDeadline;
    if (bounded) poll_or_timeout(fd, POLLOUT, deadline, "socket write");
    const ssize_t n =
        ::send(fd, p, len, MSG_NOSIGNAL | (bounded ? MSG_DONTWAIT : 0));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      fail(std::string("socket write: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

// false only on EOF before the first byte; throws on mid-buffer EOF, and
// WireTimeout once `deadline` passes.
bool read_exact(int fd, void* data, std::size_t len, WireDeadline deadline) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const bool bounded = deadline != kNoWireDeadline;
    if (bounded) poll_or_timeout(fd, POLLIN, deadline, "socket read");
    const ssize_t n =
        ::recv(fd, p + got, len - got, bounded ? MSG_DONTWAIT : 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      fail(std::string("socket read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      fail("socket read: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, FrameType type, std::span<const std::uint8_t> payload,
                 WireDeadline deadline) {
  std::uint8_t header[5];
  header[0] = static_cast<std::uint8_t>(type);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  header[1] = static_cast<std::uint8_t>(len);
  header[2] = static_cast<std::uint8_t>(len >> 8);
  header[3] = static_cast<std::uint8_t>(len >> 16);
  header[4] = static_cast<std::uint8_t>(len >> 24);
  write_all(fd, header, sizeof header, deadline);
  if (!payload.empty()) write_all(fd, payload.data(), payload.size(), deadline);
}

bool read_frame(int fd, Frame& out, std::size_t max_payload,
                WireDeadline deadline) {
  std::uint8_t header[5];
  if (!read_exact(fd, header, sizeof header, deadline)) return false;
  if (header[0] < static_cast<std::uint8_t>(FrameType::kHello) ||
      header[0] > static_cast<std::uint8_t>(FrameType::kError)) {
    fail("frame: unknown type " + std::to_string(header[0]));
  }
  out.type = static_cast<FrameType>(header[0]);
  const std::uint32_t len = get_u32(header + 1);
  if (len > max_payload) {
    fail("frame: declared payload " + std::to_string(len) + " exceeds limit");
  }
  out.payload.resize(len);
  if (len > 0 && !read_exact(fd, out.payload.data(), len, deadline)) {
    fail("frame: connection closed mid-frame");
  }
  return true;
}

// --- unix-domain sockets ----------------------------------------------------

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    fail("unix socket path too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail(std::string("socket: ") + std::strerror(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    if (errno == EADDRINUSE) {
      // A stale socket file from a dead daemon is reclaimed; a live one is
      // a real conflict (detected by a successful connect).
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 &&
          ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0;
      if (probe >= 0) ::close(probe);
      if (!live && ::unlink(path.c_str()) == 0 &&
          ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
              0) {
        // reclaimed the stale path
      } else {
        ::close(fd);
        fail("bind '" + path + "': address already in use");
      }
    } else {
      const std::string why = std::strerror(errno);
      ::close(fd);
      fail("bind '" + path + "': " + why);
    }
  }
  if (::listen(fd, backlog) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    fail("listen '" + path + "': " + why);
  }
  return fd;
}

int unix_connect(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail(std::string("socket: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    fail("connect '" + path + "': " + why);
  }
  return fd;
}

}  // namespace stcache::serve
