#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace stcache::serve {

namespace {

[[noreturn]] void throw_server_error(const WireError& err) {
  fail(std::string("server: ") + to_string(err.code) + ": " + err.message);
}

}  // namespace

TuneClient::TuneClient(const std::string& socket_path, bool instruction,
                       std::size_t chunk_words)
    : chunk_words_(std::clamp<std::size_t>(chunk_words, 1, kMaxChunkWords)) {
  fd_ = unix_connect(socket_path);
  try {
    write_frame(fd_, FrameType::kHello, encode_hello(instruction));
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

TuneClient::~TuneClient() {
  if (fd_ >= 0) ::close(fd_);
}

void TuneClient::send(std::span<const std::uint32_t> packed) {
  STC_ASSERT(!finished_, "tune client: send() after finish()");
  while (!packed.empty()) {
    const std::size_t n = std::min(packed.size(), chunk_words_);
    const std::vector<std::uint8_t> payload = encode_chunk(packed.first(n));
    try {
      write_frame(fd_, FrameType::kChunk, payload);
    } catch (const std::exception& e) {
      // The server closed on us mid-stream — if it left an ERROR frame
      // explaining why, prefer that over the raw transport error.
      std::string message = e.what();
      try {
        Frame frame;
        if (read_frame(fd_, frame) && frame.type == FrameType::kError) {
          const WireError err = decode_error(frame.payload);
          message = std::string("server: ") + to_string(err.code) + ": " +
                    err.message;
        }
      } catch (...) {
      }
      fail(message);
    }
    packed = packed.subspan(n);
  }
}

Verdict TuneClient::finish() {
  STC_ASSERT(!finished_, "tune client: finish() called twice");
  finished_ = true;
  write_frame(fd_, FrameType::kFin, {});
  Frame frame;
  if (!read_frame(fd_, frame)) {
    fail("server closed the connection without a response");
  }
  if (frame.type == FrameType::kError) {
    throw_server_error(decode_error(frame.payload));
  }
  if (frame.type != FrameType::kVerdict) {
    fail("unexpected response frame type " +
         std::to_string(static_cast<unsigned>(frame.type)));
  }
  return decode_verdict(frame.payload);
}

Verdict tune_remote(const std::string& socket_path, bool instruction,
                    std::span<const std::uint32_t> packed,
                    std::size_t chunk_words) {
  TuneClient client(socket_path, instruction, chunk_words);
  client.send(packed);
  return client.finish();
}

}  // namespace stcache::serve
