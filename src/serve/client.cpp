#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace stcache::serve {

const char* to_string(TuneErrorKind kind) {
  switch (kind) {
    case TuneErrorKind::kConnect: return "connect";
    case TuneErrorKind::kOverload: return "overload";
    case TuneErrorKind::kTimeout: return "timeout";
    case TuneErrorKind::kDisconnect: return "disconnect";
    case TuneErrorKind::kMismatch: return "mismatch";
    case TuneErrorKind::kRejected: return "rejected";
  }
  return "?";
}

namespace {

TuneErrorKind kind_of(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kOverload: return TuneErrorKind::kOverload;
    case WireErrorCode::kTimeout: return TuneErrorKind::kTimeout;
    default: return TuneErrorKind::kRejected;
  }
}

}  // namespace

void TuneClient::throw_wire_error(const WireError& err) const {
  throw TuneError(kind_of(err.code),
                  std::string("server: ") + to_string(err.code) + ": " +
                      err.message,
                  err.retry_after_ms);
}

TuneClient::TuneClient(const std::string& socket_path, bool instruction,
                       ClientOptions opts)
    : opts_(opts) {
  opts_.chunk_words = std::clamp<std::size_t>(opts_.chunk_words, 1,
                                              kMaxChunkWords);
  try {
    fd_ = unix_connect(socket_path);
  } catch (const std::exception& e) {
    throw TuneError(TuneErrorKind::kConnect, e.what());
  }
  try {
    write_frame(fd_, FrameType::kHello, encode_hello(instruction),
                wire_deadline_after(opts_.io_timeout_ms));
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw TuneError(TuneErrorKind::kDisconnect,
                    "connection died sending HELLO");
  }
}

TuneClient::~TuneClient() {
  if (fd_ >= 0) ::close(fd_);
}

void TuneClient::send(std::span<const std::uint32_t> packed) {
  STC_ASSERT(!finished_, "tune client: send() after finish()");
  while (!packed.empty()) {
    const std::size_t n = std::min(packed.size(), opts_.chunk_words);
    const std::vector<std::uint8_t> payload = encode_chunk(packed.first(n));
    try {
      write_frame(fd_, FrameType::kChunk, payload,
                  wire_deadline_after(opts_.io_timeout_ms));
    } catch (const WireTimeout& e) {
      throw TuneError(TuneErrorKind::kTimeout, e.what());
    } catch (const std::exception& e) {
      // The server closed on us mid-stream — if it left an ERROR frame
      // explaining why, prefer that (typed) over the raw transport error.
      try {
        Frame frame;
        if (read_frame(fd_, frame, kMaxFramePayload,
                       wire_deadline_after(opts_.io_timeout_ms)) &&
            frame.type == FrameType::kError) {
          throw_wire_error(decode_error(frame.payload));
        }
      } catch (const TuneError&) {
        throw;
      } catch (...) {
      }
      throw TuneError(TuneErrorKind::kDisconnect, e.what());
    }
    words_sent_ += n;
    packed = packed.subspan(n);
  }
}

Verdict TuneClient::finish() {
  STC_ASSERT(!finished_, "tune client: finish() called twice");
  finished_ = true;
  Frame frame;
  bool got = false;
  try {
    write_frame(fd_, FrameType::kFin, {},
                wire_deadline_after(opts_.io_timeout_ms));
    got = read_frame(fd_, frame, kMaxFramePayload,
                     wire_deadline_after(opts_.verdict_timeout_ms));
  } catch (const WireTimeout& e) {
    throw TuneError(TuneErrorKind::kTimeout, e.what());
  } catch (const std::exception& e) {
    throw TuneError(TuneErrorKind::kDisconnect, e.what());
  }
  if (!got) {
    throw TuneError(TuneErrorKind::kDisconnect,
                    "server closed the connection without a response");
  }
  if (frame.type == FrameType::kError) {
    throw_wire_error(decode_error(frame.payload));
  }
  if (frame.type != FrameType::kVerdict) {
    throw TuneError(TuneErrorKind::kDisconnect,
                    "unexpected response frame type " +
                        std::to_string(static_cast<unsigned>(frame.type)));
  }
  Verdict verdict;
  try {
    verdict = decode_verdict(frame.payload);
  } catch (const std::exception& e) {
    throw TuneError(TuneErrorKind::kDisconnect, e.what());
  }
  // The end-to-end integrity check: CRCs catch corruption, this catches
  // whole frames duplicated or swallowed between CRC and verdict.
  if (verdict.accesses != words_sent_) {
    throw TuneError(TuneErrorKind::kMismatch,
                    "verdict folded " + std::to_string(verdict.accesses) +
                        " words but this session streamed " +
                        std::to_string(words_sent_));
  }
  return verdict;
}

Verdict tune_remote(const std::string& socket_path, bool instruction,
                    std::span<const std::uint32_t> packed,
                    std::size_t chunk_words) {
  TuneClient client(socket_path, instruction, chunk_words);
  client.send(packed);
  return client.finish();
}

std::uint32_t RetryBackoff::next_delay_ms(std::uint16_t retry_after_ms) {
  const std::uint32_t shift = std::min(attempt_, 20u);
  ++attempt_;
  std::uint64_t base = std::uint64_t{policy_.backoff_ms} << shift;
  base = std::min<std::uint64_t>(base, policy_.backoff_max_ms);
  // Jitter to [50%, 100%] so a herd of clients kicked off one daemon
  // restart does not reconnect in lockstep.
  std::uint64_t delay = base - rng_.next_below(base / 2 + 1);
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(delay, retry_after_ms));
}

Verdict tune_remote_retry(const std::string& socket_path, bool instruction,
                          std::span<const std::uint32_t> packed,
                          const RetryPolicy& policy,
                          const ClientOptions& opts) {
  RetryBackoff backoff(policy);
  const std::uint32_t attempts = std::max(1u, policy.max_attempts);
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      TuneClient client(socket_path, instruction, opts);
      client.send(packed);
      return client.finish();
    } catch (const TuneError& e) {
      if (!e.retryable() || attempt + 1 >= attempts) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          backoff.next_delay_ms(e.retry_after_ms())));
    }
  }
}

}  // namespace stcache::serve
