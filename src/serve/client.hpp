// Client side of the tuning service: a thin session wrapper over the wire
// protocol (serve/wire.hpp) used by the stcache_tunec CLI, the loopback
// integration tests, and bench_serving. One TuneClient is one session:
// HELLO at construction, send() any number of packed slices (re-chunked to
// the configured frame size), finish() to FIN and collect the server's
// verdict. Server-side ERROR frames surface as stcache::Error with the
// server's code and message, so callers get the daemon's diagnostic, not a
// bare EPIPE.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "serve/wire.hpp"

namespace stcache::serve {

class TuneClient {
 public:
  // Matches ServerOptions::chunk_words: 64 KB of packed words per CHUNK.
  static constexpr std::size_t kDefaultChunkWords = std::size_t{1} << 14;

  // Connects and sends HELLO. Throws stcache::Error if the daemon is not
  // listening on `socket_path`.
  TuneClient(const std::string& socket_path, bool instruction,
             std::size_t chunk_words = kDefaultChunkWords);
  ~TuneClient();

  TuneClient(const TuneClient&) = delete;
  TuneClient& operator=(const TuneClient&) = delete;

  // Stream a packed slice in order, split into CHUNK frames of at most
  // chunk_words each. If the server has already poisoned the session its
  // pending ERROR frame is surfaced as the thrown message.
  void send(std::span<const std::uint32_t> packed);

  // Send FIN and block for the single VERDICT/ERROR response. Throws
  // stcache::Error on ERROR (message prefixed "server:") or a dropped
  // connection. Call at most once.
  Verdict finish();

 private:
  int fd_ = -1;
  std::size_t chunk_words_;
  bool finished_ = false;
};

// One-shot convenience: open a session, stream `packed`, return the
// verdict.
Verdict tune_remote(const std::string& socket_path, bool instruction,
                    std::span<const std::uint32_t> packed,
                    std::size_t chunk_words = TuneClient::kDefaultChunkWords);

}  // namespace stcache::serve
