// Client side of the tuning service: a session wrapper over the wire
// protocol (serve/wire.hpp) used by the stcache_tunec CLI, the loopback
// integration tests, and the serving benches. One TuneClient is one
// session: HELLO at construction, send() any number of packed slices
// (re-chunked to the configured frame size), finish() to FIN and collect
// the server's verdict.
//
// Every failure surfaces as a TuneError carrying a machine-readable kind,
// so callers can tell "the daemon is down" (kConnect) from "the daemon
// shed me, retry later" (kOverload, with the server's retry-after hint)
// from "my stream was rejected" (kRejected — retrying the same bytes can
// only fail again). Sessions are idempotent — a verdict is a pure function
// of the packed stream — so every kind except kRejected is safe to retry
// from scratch; tune_remote_retry() does exactly that with seeded
// exponential backoff (docs/serving.md §7 has the failure-mode matrix).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "serve/wire.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace stcache::serve {

// Why a tuning session failed, from the client's point of view.
enum class TuneErrorKind : std::uint8_t {
  kConnect,     // could not connect: daemon down or socket path wrong
  kOverload,    // server shed the session (capacity, pool pressure, drain)
  kTimeout,     // a deadline expired — ours (io/verdict) or the server's
  kDisconnect,  // transport died mid-session (EOF, EPIPE, garbled response)
  kMismatch,    // verdict inconsistent with the stream we sent (e.g. the
                // wire duplicated/dropped a chunk without tripping a CRC)
  kRejected,    // typed server rejection (protocol/crc/empty/internal):
                // the stream itself is bad — NOT retryable
};
const char* to_string(TuneErrorKind kind);

class TuneError : public Error {
 public:
  TuneError(TuneErrorKind kind, const std::string& what,
            std::uint16_t retry_after_ms = 0)
      : Error(what), kind_(kind), retry_after_ms_(retry_after_ms) {}

  TuneErrorKind kind() const { return kind_; }
  // The server's reconnect hint (overload/timeout sheds); 0 = none.
  std::uint16_t retry_after_ms() const { return retry_after_ms_; }
  // Everything except an explicit rejection is worth replaying: sessions
  // are idempotent, so a retry can never double-count.
  bool retryable() const { return kind_ != TuneErrorKind::kRejected; }

 private:
  TuneErrorKind kind_;
  std::uint16_t retry_after_ms_;
};

struct ClientOptions {
  // Matches ServerOptions::chunk_words: 64 KB of packed words per CHUNK.
  std::size_t chunk_words = std::size_t{1} << 14;
  // Deadline for each frame write and for the HELLO; 0 = block forever.
  std::uint32_t io_timeout_ms = 10'000;
  // Deadline for the FIN -> VERDICT/ERROR wait (covers the server's whole
  // sweep tail, so it is longer than the per-frame bound). 0 = forever.
  std::uint32_t verdict_timeout_ms = 60'000;
};

class TuneClient {
 public:
  static constexpr std::size_t kDefaultChunkWords = std::size_t{1} << 14;

  // Connects and sends HELLO. Throws TuneError{kConnect} if the daemon is
  // not listening on `socket_path`.
  TuneClient(const std::string& socket_path, bool instruction,
             ClientOptions opts);
  TuneClient(const std::string& socket_path, bool instruction,
             std::size_t chunk_words = kDefaultChunkWords)
      : TuneClient(socket_path, instruction,
                   ClientOptions{.chunk_words = chunk_words}) {}
  ~TuneClient();

  TuneClient(const TuneClient&) = delete;
  TuneClient& operator=(const TuneClient&) = delete;

  // Stream a packed slice in order, split into CHUNK frames of at most
  // chunk_words each. If the server has already poisoned the session its
  // pending ERROR frame is surfaced (typed) instead of the raw EPIPE.
  void send(std::span<const std::uint32_t> packed);

  // Send FIN and block (up to verdict_timeout_ms) for the single
  // VERDICT/ERROR response. Cross-checks verdict.accesses against the
  // words this client actually streamed — a mismatch means the transport
  // mangled the session undetectably and throws kMismatch. Call at most
  // once.
  Verdict finish();

  // Packed words streamed so far (what finish() validates against).
  std::uint64_t words_sent() const { return words_sent_; }

 private:
  [[noreturn]] void throw_wire_error(const WireError& err) const;

  int fd_ = -1;
  ClientOptions opts_;
  std::uint64_t words_sent_ = 0;
  bool finished_ = false;
};

// One-shot convenience: open a session, stream `packed`, return the
// verdict. Single attempt — see tune_remote_retry for the resilient form.
Verdict tune_remote(const std::string& socket_path, bool instruction,
                    std::span<const std::uint32_t> packed,
                    std::size_t chunk_words = TuneClient::kDefaultChunkWords);

// --- retry/backoff -----------------------------------------------------------

struct RetryPolicy {
  // Total attempts, including the first. 1 = no retries.
  std::uint32_t max_attempts = 3;
  // Base delay before retry k is roughly backoff_ms << k, capped at
  // backoff_max_ms, jittered to [50%, 100%] of that, and floored by the
  // server's retry-after hint when one was given.
  std::uint32_t backoff_ms = 20;
  std::uint32_t backoff_max_ms = 2'000;
  // Seed for the jitter stream: same seed => same delays, so chaos
  // campaigns replay bit-identically.
  std::uint64_t seed = 0x5eed;
};

// The seeded backoff schedule, reusable by callers that own their retry
// loop (stcache_tunec's streaming path re-captures the workload per
// attempt instead of buffering it, so it cannot use tune_remote_retry).
class RetryBackoff {
 public:
  explicit RetryBackoff(const RetryPolicy& policy)
      : policy_(policy), rng_(policy.seed) {}

  // Delay before the next retry; advances the attempt counter and the
  // jitter stream.
  std::uint32_t next_delay_ms(std::uint16_t retry_after_ms);

 private:
  RetryPolicy policy_;
  Rng rng_;
  std::uint32_t attempt_ = 0;
};

// tune_remote with retries: replays the whole session on any retryable
// TuneError, sleeping the backoff delay between attempts. Rethrows the
// last error once attempts are exhausted, and kRejected immediately.
Verdict tune_remote_retry(const std::string& socket_path, bool instruction,
                          std::span<const std::uint32_t> packed,
                          const RetryPolicy& policy = {},
                          const ClientOptions& opts = {});

}  // namespace stcache::serve
