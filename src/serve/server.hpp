// TuningServer — the multi-tenant tuning service core shared by the
// stcache_tuned daemon and the in-process embedding example
// (examples/tuning_service.cpp).
//
// Topology (docs/serving.md has the full architecture):
//
//   client sockets          connection readers         sharded queues
//   ──────────────          ------------------         --------------
//   HELLO/CHUNK/FIN  ──▶  one thread per connection ──▶ ChunkPool +
//                          (frame parse, CRC check,     ShardedSessionQueues
//                           backpressure via pool)          │ 1 worker/shard
//                                                           ▼
//   VERDICT/ERROR  ◀───── verdict writer (the shard     BankAccumulator
//                          worker that retires FIN)     per session
//
// Every session is pinned to one shard worker, which owns that session's
// BankAccumulator — per-session sweep state is single-threaded by
// construction, exactly like the SPSC pipeline's consumer. A malformed
// session (bad frame, CRC mismatch, decode failure) is poisoned and
// answered with ERROR; the worker pool and every concurrent session are
// untouched, and a poisoned session NEVER gets a verdict computed from
// partial data (the serving analogue of the PR 2 controller's refusal to
// act on distrusted measurements; docs/robustness.md).
//
// Verdicts are computed by the same BankAccumulator the in-process
// pipeline uses, so a daemon verdict is bit-identical to
// `stcache_tune --exhaustive` on the same stream — repro.sh byte-compares
// the two end to end.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/wire.hpp"
#include "trace/replay.hpp"
#include "trace/shard.hpp"

namespace stcache::serve {

struct ServerOptions {
  std::string socket_path;
  // Sweep worker threads == queue shards. 0 = hardware_concurrency.
  std::size_t workers = 0;
  // Fixed buffer pool shared by every session: total serving memory is
  // pool_chunks × chunk_words × 4 bytes, decided here and never exceeded.
  std::size_t pool_chunks = 64;
  std::size_t chunk_words = std::size_t{1} << 14;
  // Max chunks one session may have in flight before its reader blocks.
  std::size_t session_budget = 4;
  // Replay engine for the per-session banks (kDefault = process default).
  ReplayEngine engine = ReplayEngine::kDefault;
  int listen_backlog = 16;

  // --- resilience knobs (docs/serving.md §6) --------------------------------
  // A connection that makes no frame progress for this long is timed out:
  // the session is poisoned (chunks purged back to the pool), answered
  // with `ERROR timeout`, and closed. 0 = no idle deadline.
  std::uint32_t idle_timeout_ms = 30'000;
  // Total wall-clock budget for one session, HELLO to response. A byzantine
  // client that trickles frames forever hits this even if it never idles.
  // 0 = no total deadline.
  std::uint32_t session_timeout_ms = 0;
  // Admission control: refuse HELLOs (ERROR overload + retry-after) once
  // this many sessions are in flight, instead of letting readers pile onto
  // the pool. 0 = unlimited.
  std::size_t max_inflight_sessions = 0;
  // Pool-pressure shedding: refuse HELLOs while fewer than this many pool
  // chunks are free. 0 = disabled.
  std::size_t shed_pool_min = 0;
  // The retry-after hint attached to overload/drain refusals.
  std::uint16_t retry_after_ms = 50;
};

class TuningServer {
 public:
  explicit TuningServer(ServerOptions opts);
  ~TuningServer();  // stop()s if still running

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  // Bind the socket and launch the accept loop and shard workers. Throws
  // stcache::Error (e.g. path in use) without leaking threads.
  void start();
  // Stop serving: in-flight sessions are aborted, all threads join, the
  // socket file is unlinked. Idempotent.
  void stop();

  // Graceful drain, the SIGTERM/SIGINT path: new HELLOs are refused with
  // `ERROR overload "draining"` + retry-after, in-flight sessions run to
  // completion up to `deadline_ms` (0 = wait forever), then stop().
  // Returns true if every in-flight session finished before the deadline
  // (stragglers past it are aborted by stop() as usual). Idempotent-safe
  // with stop().
  bool drain(std::uint32_t deadline_ms);
  bool draining() const { return draining_; }

  bool running() const { return running_; }
  const std::string& socket_path() const { return opts_.socket_path; }
  std::size_t workers() const { return workers_; }
  // Sessions answered so far (VERDICT or ERROR).
  std::uint64_t sessions_served() const { return sessions_served_; }
  // Sessions poisoned (CRC/protocol/internal/timeout failures).
  std::uint64_t sessions_poisoned() const { return sessions_poisoned_; }
  // HELLOs refused by admission control (capacity, pool pressure, drain).
  std::uint64_t sessions_shed() const { return sessions_shed_; }
  // Connections/sessions that blew an idle/total deadline.
  std::uint64_t sessions_timed_out() const { return sessions_timed_out_; }

 private:
  // Server-side session record. The connection reader owns the lifecycle;
  // the shard worker owns `bank`. `write_mu` serializes the single
  // response frame (reader-side protocol errors vs worker verdicts).
  struct SessionEntry {
    explicit SessionEntry(std::span<const CacheConfig> configs,
                          ReplayEngine engine)
        : bank(configs, {}, engine) {}
    BankAccumulator bank;
    int fd = -1;
    bool instruction = true;
    std::mutex write_mu;
    bool replied = false;       // at most one VERDICT/ERROR per session
    std::condition_variable done_cv;
    bool done = false;          // response sent (or session dead)
  };
  using EntryPtr = std::shared_ptr<SessionEntry>;

  void accept_loop();
  void serve_connection(int fd);
  void worker_loop(std::size_t shard);

  EntryPtr find_entry(std::uint64_t session);
  // Send the session's single response frame; returns false if one was
  // already sent. Socket errors are swallowed (the client may be gone),
  // and the write itself is deadline-bounded by idle_timeout_ms so a
  // stalled client cannot pin the sender.
  bool send_response(const EntryPtr& entry, FrameType type,
                     std::span<const std::uint8_t> payload);
  void send_error(const EntryPtr& entry, WireErrorCode code,
                  const std::string& message, std::uint16_t retry_after_ms = 0);
  void mark_entry_done(const EntryPtr& entry);
  // Poison + typed ERROR + accounting, the reader-side failure epilogue.
  void fail_session(std::uint64_t session, const EntryPtr& entry,
                    WireErrorCode code, const std::string& message,
                    std::uint16_t retry_after_ms = 0);
  WireDeadline response_deadline() const {
    return wire_deadline_after(opts_.idle_timeout_ms);
  }

  ServerOptions opts_;
  std::size_t workers_ = 0;
  std::unique_ptr<ChunkPool> pool_;
  std::unique_ptr<ShardedSessionQueues> queues_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;

  std::mutex mu_;  // guards sessions_, conn_fds_, active_connections_
  std::unordered_map<std::uint64_t, EntryPtr> sessions_;
  std::vector<int> conn_fds_;  // open connection fds, for forced shutdown
  std::size_t active_connections_ = 0;
  std::condition_variable connections_drained_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> sessions_served_{0};
  std::atomic<std::uint64_t> sessions_poisoned_{0};
  std::atomic<std::uint64_t> sessions_shed_{0};
  std::atomic<std::uint64_t> sessions_timed_out_{0};
};

}  // namespace stcache::serve
