// Wire protocol of the tuning service (version 2) — the length-prefixed
// frames stcache_tuned and stcache_tunec exchange over a unix-domain
// stream socket. docs/serving.md is the normative spec; this header is its
// implementation.
//
// Frame layout (all integers little-endian):
//
//   offset 0  u8   type        (FrameType)
//   offset 1  u32  length      payload byte count (bounded by
//                              kMaxFramePayload; larger is a protocol
//                              violation)
//   offset 5  u8[] payload
//
// Session message sequence: the client sends HELLO, any number of CHUNKs,
// then FIN; the server answers with exactly one VERDICT or ERROR and
// closes. Payloads:
//
//   HELLO    char[4] magic "STCH", u16 version (<= 2), u8 stream
//            (0 = instruction, 1 = data), u8 reserved (=0)
//   CHUNK    u32 word_count, u32 crc32 (IEEE, over the word bytes as
//            transmitted), then word_count packed u32 words in
//            pack_stream() format (bit 31 = write, bits 30..0 = 16 B
//            block)
//   FIN      empty
//   VERDICT  u64 accesses (total words folded), u32 n_configs, then
//            n_configs CacheStats blocks (17 u64 counters each, in
//            cache/stats.hpp declaration order), index-aligned with
//            all_configs() — the registry order is part of the protocol
//            contract and versioned with it
//   ERROR    u16 code (WireErrorCode), u16 retry_after_ms (0 = no hint;
//            this field was reserved-zero in v1, so the formats are
//            mutually intelligible), UTF-8 message
//
// Version negotiation: the server accepts any HELLO version it knows
// (1..kProtocolVersion) and never sends a frame the announced version
// cannot parse — v1 clients simply read retry_after_ms as the reserved
// word they already ignored. Version 2 adds the retry_after_ms hint and
// the `timeout` error code.
//
// Deadlines: every framed I/O call optionally takes a steady-clock
// deadline. A deadline turns the blocking socket calls into poll()-bounded
// ones; expiry throws WireTimeout (a stcache::Error subtype), so callers
// can tell "the peer is slow or gone" from "the peer sent garbage". With
// the default kNoWireDeadline the calls block exactly as before.
//
// Everything here throws stcache::Error on malformed input or I/O
// failure; the server maps those to per-session ERROR frames, never to a
// worker death (docs/serving.md, "failure isolation").
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

#include "cache/stats.hpp"
#include "trace/shard.hpp"

namespace stcache::serve {

inline constexpr char kHelloMagic[4] = {'S', 'T', 'C', 'H'};
inline constexpr std::uint16_t kProtocolVersion = 2;
// Oldest HELLO version the server still speaks.
inline constexpr std::uint16_t kMinProtocolVersion = 1;
// Frames above this size are rejected before allocation: a client cannot
// make the server buffer unbounded garbage.
inline constexpr std::size_t kMaxFramePayload = (std::size_t{1} << 22) + 64;
inline constexpr std::size_t kMaxChunkWords = std::size_t{1} << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kChunk = 2,
  kFin = 3,
  kVerdict = 4,
  kError = 5,
};

enum class WireErrorCode : std::uint16_t {
  kProtocol = 1,     // framing, ordering, or size violation
  kChunkCrc = 2,     // CHUNK payload failed its CRC-32
  kEmptyStream = 3,  // FIN with zero words streamed
  kOverload = 4,     // server refused/shed the session (capacity, drain)
  kInternal = 5,     // decode/sweep failure inside the server
  kTimeout = 6,      // the session blew an idle/total deadline (v2)
};
const char* to_string(WireErrorCode code);

// --- deadlines ---------------------------------------------------------------

using WireClock = std::chrono::steady_clock;
using WireDeadline = WireClock::time_point;
inline constexpr WireDeadline kNoWireDeadline = WireDeadline::max();

// Deadline `ms` milliseconds from now; 0 means "no deadline".
inline WireDeadline wire_deadline_after(std::uint32_t ms) {
  return ms == 0 ? kNoWireDeadline
                 : WireClock::now() + std::chrono::milliseconds(ms);
}

// Thrown (only) when a framed I/O call's deadline expires mid-operation —
// distinct from Error so callers can answer `timeout` instead of
// `protocol`.
class WireTimeout : public Error {
 public:
  explicit WireTimeout(const std::string& what) : Error(what) {}
};

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

// --- payload encode/decode --------------------------------------------------

std::vector<std::uint8_t> encode_hello(bool instruction,
                                       std::uint16_t version = kProtocolVersion);
struct Hello {
  bool instruction = true;
  std::uint16_t version = kProtocolVersion;  // what the client announced
};
// Throws on bad magic, a version outside [kMinProtocolVersion,
// kProtocolVersion], or nonzero reserved bytes.
Hello decode_hello(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_chunk(std::span<const std::uint32_t> words);
// Copies the words into `out` (resizing as needed) and verifies the
// declared CRC-32; throws Error mentioning "crc" on a checksum mismatch
// and "chunk" on structural problems.
void decode_chunk(std::span<const std::uint8_t> payload, PooledChunk& out);

std::vector<std::uint8_t> encode_verdict(std::uint64_t accesses,
                                         std::span<const CacheStats> stats);
struct Verdict {
  std::uint64_t accesses = 0;
  std::vector<CacheStats> stats;  // index-aligned with all_configs()
};
Verdict decode_verdict(std::span<const std::uint8_t> payload);

// retry_after_ms is a hint for shed sessions (overload/drain/timeout):
// "reconnect after this backoff". 0 = no hint (and the v1 encoding).
std::vector<std::uint8_t> encode_error(WireErrorCode code,
                                       const std::string& message,
                                       std::uint16_t retry_after_ms = 0);
struct WireError {
  WireErrorCode code = WireErrorCode::kInternal;
  std::uint16_t retry_after_ms = 0;
  std::string message;
};
WireError decode_error(std::span<const std::uint8_t> payload);

// --- framed socket I/O ------------------------------------------------------

// Write one frame (header + payload) to `fd`; throws on any short write
// or peer reset (SIGPIPE is suppressed), WireTimeout once `deadline`
// passes with the kernel buffer still full.
void write_frame(int fd, FrameType type, std::span<const std::uint8_t> payload,
                 WireDeadline deadline = kNoWireDeadline);

// Read one frame. Returns false on clean EOF at a frame boundary; throws
// on mid-frame EOF, I/O errors, unknown frame types, an oversized
// declared payload, or (WireTimeout) a deadline expiring before the frame
// completes.
bool read_frame(int fd, Frame& out, std::size_t max_payload = kMaxFramePayload,
                WireDeadline deadline = kNoWireDeadline);

// --- unix-domain sockets ----------------------------------------------------

// Bind + listen on `path` (unlinking a stale socket first). Throws with
// the path in the message on failure. Returns the listening fd.
int unix_listen(const std::string& path, int backlog);
// Connect to a listening socket; throws with the path in the message.
int unix_connect(const std::string& path);

}  // namespace stcache::serve
