// Wire protocol of the tuning service (version 1) — the length-prefixed
// frames stcache_tuned and stcache_tunec exchange over a unix-domain
// stream socket. docs/serving.md is the normative spec; this header is its
// implementation.
//
// Frame layout (all integers little-endian):
//
//   offset 0  u8   type        (FrameType)
//   offset 1  u32  length      payload byte count (bounded by
//                              kMaxFramePayload; larger is a protocol
//                              violation)
//   offset 5  u8[] payload
//
// Session message sequence: the client sends HELLO, any number of CHUNKs,
// then FIN; the server answers with exactly one VERDICT or ERROR and
// closes. Payloads:
//
//   HELLO    char[4] magic "STCH", u16 version (=1), u8 stream
//            (0 = instruction, 1 = data), u8 reserved (=0)
//   CHUNK    u32 word_count, u32 crc32 (IEEE, over the word bytes as
//            transmitted), then word_count packed u32 words in
//            pack_stream() format (bit 31 = write, bits 30..0 = 16 B
//            block)
//   FIN      empty
//   VERDICT  u64 accesses (total words folded), u32 n_configs, then
//            n_configs CacheStats blocks (17 u64 counters each, in
//            cache/stats.hpp declaration order), index-aligned with
//            all_configs() — the registry order is part of the protocol
//            contract and versioned with it
//   ERROR    u16 code (WireErrorCode), u16 reserved (=0), UTF-8 message
//
// Everything here throws stcache::Error on malformed input or I/O
// failure; the server maps those to per-session ERROR frames, never to a
// worker death (docs/serving.md, "failure isolation").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/stats.hpp"
#include "trace/shard.hpp"

namespace stcache::serve {

inline constexpr char kHelloMagic[4] = {'S', 'T', 'C', 'H'};
inline constexpr std::uint16_t kProtocolVersion = 1;
// Frames above this size are rejected before allocation: a client cannot
// make the server buffer unbounded garbage.
inline constexpr std::size_t kMaxFramePayload = (std::size_t{1} << 22) + 64;
inline constexpr std::size_t kMaxChunkWords = std::size_t{1} << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kChunk = 2,
  kFin = 3,
  kVerdict = 4,
  kError = 5,
};

enum class WireErrorCode : std::uint16_t {
  kProtocol = 1,     // framing, ordering, or size violation
  kChunkCrc = 2,     // CHUNK payload failed its CRC-32
  kEmptyStream = 3,  // FIN with zero words streamed
  kOverload = 4,     // server refused the session (at capacity)
  kInternal = 5,     // decode/sweep failure inside the server
};
const char* to_string(WireErrorCode code);

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

// --- payload encode/decode --------------------------------------------------

std::vector<std::uint8_t> encode_hello(bool instruction);
// true = instruction stream; throws on bad magic/version/reserved bytes.
bool decode_hello(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_chunk(std::span<const std::uint32_t> words);
// Copies the words into `out` (resizing as needed) and verifies the
// declared CRC-32; throws Error mentioning "crc" on a checksum mismatch
// and "chunk" on structural problems.
void decode_chunk(std::span<const std::uint8_t> payload, PooledChunk& out);

std::vector<std::uint8_t> encode_verdict(std::uint64_t accesses,
                                         std::span<const CacheStats> stats);
struct Verdict {
  std::uint64_t accesses = 0;
  std::vector<CacheStats> stats;  // index-aligned with all_configs()
};
Verdict decode_verdict(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_error(WireErrorCode code,
                                       const std::string& message);
struct WireError {
  WireErrorCode code = WireErrorCode::kInternal;
  std::string message;
};
WireError decode_error(std::span<const std::uint8_t> payload);

// --- framed socket I/O ------------------------------------------------------

// Write one frame (header + payload) to `fd`; throws on any short write
// or peer reset (SIGPIPE is suppressed).
void write_frame(int fd, FrameType type, std::span<const std::uint8_t> payload);

// Read one frame. Returns false on clean EOF at a frame boundary; throws
// on mid-frame EOF, I/O errors, unknown frame types, or an oversized
// declared payload.
bool read_frame(int fd, Frame& out, std::size_t max_payload = kMaxFramePayload);

// --- unix-domain sockets ----------------------------------------------------

// Bind + listen on `path` (unlinking a stale socket first). Throws with
// the path in the message on failure. Returns the listening fd.
int unix_listen(const std::string& path, int backlog);
// Connect to a listening socket; throws with the path in the message.
int unix_connect(const std::string& path);

}  // namespace stcache::serve
