// Deterministic pseudo-random number generation for workload inputs,
// synthetic traces, and property tests.
//
// We use splitmix64: tiny, fast, and with well-understood statistical
// quality for this purpose. Determinism across platforms matters more than
// cryptographic strength — every experiment in EXPERIMENTS.md must be
// exactly reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace stcache {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  // Next 64 uniformly distributed bits.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all << 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

  // Geometric-ish run length in [1, max_len] with mean roughly `mean`.
  std::uint32_t next_run_length(double mean, std::uint32_t max_len) {
    double u = next_double();
    // Inverse CDF of geometric with success prob 1/mean.
    double p = 1.0 / mean;
    auto len = static_cast<std::uint32_t>(1.0 + (u == 0.0 ? 0.0 : -std::log(1.0 - u) / p));
    if (len < 1) len = 1;
    if (len > max_len) len = max_len;
    return len;
  }

 private:
  std::uint64_t state_;
};

}  // namespace stcache
