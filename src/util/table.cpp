#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace stcache {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  // Heuristic: at least half the characters are digits, and it starts with
  // a digit, sign, or dot.
  char first = s.front();
  return (std::isdigit(static_cast<unsigned char>(first)) || first == '-' ||
          first == '+' || first == '.') &&
         digits * 2 >= s.size();
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) fail("Table: at least one column required");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    fail("Table::add_row: expected " + std::to_string(headers_.size()) +
         " cells, got " + std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_cell = [&](const std::string& cell, std::size_t width, bool right) {
    std::size_t pad = width - cell.size();
    if (right) os << std::string(pad, ' ') << cell;
    else os << cell << std::string(pad, ' ');
  };

  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    emit_cell(headers_[c], widths[c], false);
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      emit_cell(row[c], widths[c], looks_numeric(row[c]));
    }
    os << '\n';
  }
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_si_energy(double joules) {
  struct Unit {
    double scale;
    const char* name;
  };
  static constexpr Unit kUnits[] = {
      {1.0, "J"},     {1e-3, "mJ"}, {1e-6, "uJ"},
      {1e-9, "nJ"},   {1e-12, "pJ"},
  };
  for (const Unit& u : kUnits) {
    if (std::fabs(joules) >= u.scale || &u == &kUnits[4]) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f %s", joules / u.scale, u.name);
      return buf;
    }
  }
  return "0 J";
}

}  // namespace stcache
