// A small fixed-size thread pool for the parallel sweep engine.
//
// Design goals, in order: deterministic shutdown (the destructor runs every
// task that was ever queued, then joins — no dropped work), exception
// propagation (a throwing task surfaces through its std::future, never
// std::terminate), and zero cleverness (one mutex, one condition variable,
// a deque). Sweeps shard hundreds of multi-millisecond jobs, so queue
// contention is irrelevant next to job cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace stcache {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least one, even if asked for zero).
  explicit ThreadPool(unsigned threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains the queue: every submitted task runs to completion before the
  // workers exit. Tasks queued after the destructor starts are rejected by
  // submit() below.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue `fn` and return a future for its result. If the task throws,
  // the exception is stored in the future and rethrown by get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and fully drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();  // exceptions land in the task's promise, not here
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace stcache
