// Small statistics accumulators used across experiments.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace stcache {

// Running mean / min / max / count over double samples.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    sum_sq_ += x * x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    if (count_ == 0) fail("RunningStats::mean on empty accumulator");
    return sum_ / static_cast<double>(count_);
  }
  double min() const {
    if (count_ == 0) fail("RunningStats::min on empty accumulator");
    return min_;
  }
  double max() const {
    if (count_ == 0) fail("RunningStats::max on empty accumulator");
    return max_;
  }
  // Population variance / stddev.
  double variance() const {
    double m = mean();
    return sum_sq_ / static_cast<double>(count_) - m * m;
  }
  double stddev() const { return std::sqrt(std::max(0.0, variance())); }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Geometric mean over strictly positive samples (standard for normalized
// energy/speedup ratios).
class GeoMean {
 public:
  void add(double x) {
    if (!(x > 0.0)) fail("GeoMean::add requires positive samples");
    log_sum_ += std::log(x);
    ++count_;
  }
  std::uint64_t count() const { return count_; }
  double value() const {
    if (count_ == 0) fail("GeoMean::value on empty accumulator");
    return std::exp(log_sum_ / static_cast<double>(count_));
  }

 private:
  double log_sum_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace stcache
