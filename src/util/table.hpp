// Plain-text table printer for the experiment harnesses in bench/.
//
// Every bench binary regenerates one of the paper's tables or figures as an
// aligned ASCII table (figures are emitted as the data series behind them),
// so the output can be diffed across runs and pasted into EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace stcache {

class Table {
 public:
  // Column headers define the table width.
  explicit Table(std::vector<std::string> headers);

  // Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }

  // Render with column alignment. Numeric-looking cells are right-aligned,
  // everything else left-aligned.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers shared by the bench binaries.
std::string fmt_double(double v, int precision);
std::string fmt_percent(double fraction, int precision = 1);  // 0.45 -> "45.0%"
std::string fmt_si_energy(double joules);  // 1.2e-3 -> "1.200 mJ"

}  // namespace stcache
