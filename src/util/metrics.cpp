#include "util/metrics.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace stcache {

namespace {

// -1 = not yet resolved (consult STCACHE_METRICS), 0 = off, 1 = on.
std::atomic<int> g_metrics{-1};

int resolve_from_env() {
  const char* v = std::getenv("STCACHE_METRICS");
  const int on = (v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0) ? 1 : 0;
  int expected = -1;
  g_metrics.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_metrics.load(std::memory_order_relaxed);
}

}  // namespace

bool metrics_enabled() {
  const int s = g_metrics.load(std::memory_order_relaxed);
  return (s < 0 ? resolve_from_env() : s) != 0;
}

void set_metrics_enabled(bool on) {
  g_metrics.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace stcache
