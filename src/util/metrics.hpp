// Runtime switch for the informational stderr metric lines: the
// "[sim]" capture-throughput, "[trace_io]" load-throughput and "[replay]"
// engine-attribution messages.
//
// Default: DISABLED, so tool invocations (stcache_tune, stcache_trace) and
// repro.sh stderr comparisons stay clean. Two ways to turn them on:
//
//   * the STCACHE_METRICS environment variable (any value but "0"), read
//     once on first query;
//   * set_metrics_enabled(true), which overrides the environment — the ✦
//     bench binaries call this at startup so their recorded [sim]/[replay]
//     throughput lines keep appearing by default, and tools expose it as
//     --metrics.
#pragma once

namespace stcache {

bool metrics_enabled();
void set_metrics_enabled(bool on);

}  // namespace stcache
