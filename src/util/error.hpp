// Common error type for the stcache library.
//
// All library components throw stcache::Error (a std::runtime_error) on
// precondition violations and unrecoverable conditions; assertions that
// indicate internal logic bugs use STC_ASSERT which throws as well so that
// tests can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace stcache {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& message) {
  throw Error(message);
}

}  // namespace stcache

// Internal-invariant check; active in all build types because the library's
// correctness claims (flushless reconfiguration, tag coherence) are the
// point of the reproduction.
#define STC_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::stcache::fail(std::string("assertion failed: ") + (msg) + " [" +   \
                      __FILE__ + ":" + std::to_string(__LINE__) + "]");    \
    }                                                                      \
  } while (0)
