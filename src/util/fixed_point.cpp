#include "util/fixed_point.hpp"

#include <cmath>
#include <string>

namespace stcache {

U16 quantize16(double value, double units_per_lsb) {
  if (!(units_per_lsb > 0.0)) {
    fail("quantize16: units_per_lsb must be positive");
  }
  if (!(value >= 0.0)) {
    fail("quantize16: value must be non-negative, got " + std::to_string(value));
  }
  double raw = std::round(value / units_per_lsb);
  if (raw > static_cast<double>(U16::max_raw())) {
    fail("quantize16: value " + std::to_string(value) +
         " does not fit in 16 bits at scale " + std::to_string(units_per_lsb));
  }
  return U16::from_raw(static_cast<std::uint64_t>(raw));
}

double dequantize(std::uint64_t raw, double units_per_lsb) {
  return static_cast<double>(raw) * units_per_lsb;
}

}  // namespace stcache
