// Fixed-point arithmetic matching the cache tuner's hardware datapath.
//
// The paper's tuner (Section 3.5) stores per-configuration energy constants
// in fifteen 16-bit registers and accumulates energy results in two 32-bit
// registers, using a single adder and a single (slow, sequential)
// multiplier. We model that arithmetic exactly so the FSMD tuner can be
// validated against the behavioural (double-precision) heuristic, and so we
// can quantify the decision error introduced by quantization — one of the
// ablations DESIGN.md calls out.
//
// Representation: unsigned Q-format. A UFixed<W> holds a W-bit magnitude; a
// separate scale (picojoules per LSB, cycles per LSB, ...) is carried by
// the caller. Multiplication of 16x32 -> 32 bits mirrors the datapath
// multiplier. Saturation mirrors what a careful RTL implementation would do
// (and the tests assert the experiments never actually saturate).
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace stcache {

// Unsigned saturating fixed-point value of Width bits (1 <= Width <= 63).
template <unsigned Width>
class UFixed {
  static_assert(Width >= 1 && Width <= 63, "width out of range");

 public:
  static constexpr std::uint64_t max_raw() { return (1ULL << Width) - 1; }

  constexpr UFixed() = default;

  // Saturating construction from a raw integer.
  static constexpr UFixed from_raw(std::uint64_t raw) {
    UFixed v;
    v.saturated_ = raw > max_raw();
    v.raw_ = v.saturated_ ? max_raw() : raw;
    return v;
  }

  static constexpr UFixed saturated_max() {
    UFixed v;
    v.raw_ = max_raw();
    v.saturated_ = true;
    return v;
  }

  constexpr std::uint64_t raw() const { return raw_; }
  constexpr bool saturated() const { return saturated_; }

  // Saturating add (the datapath's adder). Saturation is sticky.
  friend constexpr UFixed operator+(UFixed a, UFixed b) {
    UFixed v = from_raw(a.raw_ + b.raw_);  // cannot wrap uint64 for Width<=63
    v.saturated_ = v.saturated_ || a.saturated_ || b.saturated_;
    return v;
  }

  friend constexpr bool operator<(UFixed a, UFixed b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator==(UFixed a, UFixed b) { return a.raw_ == b.raw_; }

 private:
  std::uint64_t raw_ = 0;
  bool saturated_ = false;
};

using U16 = UFixed<16>;
using U32 = UFixed<32>;

// 16 x 32 -> 32-bit saturating multiply: the tuner multiplies a 16-bit
// energy constant by a 32-bit event count. A real sequential multiplier
// produces the full 48-bit product; the datapath keeps the low 32 bits and
// raises a (sticky) saturation flag if the high bits are nonzero.
inline U32 mul_16x32(U16 constant, U32 count) {
  std::uint64_t product = constant.raw() * count.raw();  // <= 48 bits
  if (product > U32::max_raw() || constant.saturated() || count.saturated()) {
    return U32::saturated_max();
  }
  return U32::from_raw(product);
}

// Quantize a physical quantity (e.g. picojoules) to a 16-bit register given
// a scale (physical units per LSB). Rounds to nearest; throws if the value
// does not fit, because a constant that cannot be represented means the
// chosen scale is wrong (a design error, not a runtime condition).
U16 quantize16(double value, double units_per_lsb);

// Dequantize back to physical units.
double dequantize(std::uint64_t raw, double units_per_lsb);

}  // namespace stcache
