// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same checksum
// zlib and PNG use, so trace files can be cross-checked with standard tools
// (`python3 -c "import zlib, sys; print(zlib.crc32(...))"`).
//
// Header-only with a constexpr-generated table: no init-order concerns, and
// the incremental Crc32 accumulator lets writers checksum multi-million
// record traces buffer by buffer without a second pass over the data.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace stcache {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = [] {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}();

}  // namespace detail

// Incremental CRC-32 accumulator: feed bytes in any chunking, read value().
class Crc32 {
 public:
  void update(const void* data, std::size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < len; ++i) {
      c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    }
    state_ = c;
  }

  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

// One-shot convenience.
inline std::uint32_t crc32(const void* data, std::size_t len) {
  Crc32 crc;
  crc.update(data, len);
  return crc.value();
}

}  // namespace stcache
