// MediaBench-like kernels: jpeg (unrolled 8x8 DCT), pjpeg (table-driven
// progressive scans), epic (wavelet pyramid), g721 (branchy two-channel
// predictive codec), pegwit (bignum modular exponentiation), mpeg2 (block
// motion estimation).
//
// Where the assembly is generated programmatically (jpeg's unrolled DCT,
// g721's channel clones), the C++ reference replicates the generated code
// exactly — same constants, same evaluation order, same integer widths.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace stcache {

namespace {

std::uint32_t lcg_fill_bytes(std::vector<std::uint8_t>& out, std::uint32_t seed,
                             std::size_t bytes) {
  out.resize(bytes);
  std::uint32_t x = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    x = lcg_next(x);
    out[i] = static_cast<std::uint8_t>(x >> 16);
  }
  return x;
}

// The byte-generator loop shared by several kernels ((lcg >> 16) & 0xff).
std::string gen_bytes_asm(const std::string& label, const std::string& buf,
                          std::uint32_t count, std::uint32_t seed) {
  std::string s;
  s += "        la   t0, " + buf + "\n";
  s += "        li   t1, " + std::to_string(count) + "\n";
  s += "        li   t2, " + std::to_string(seed) + "\n";
  s += "        li   t3, 1103515245\n";
  s += label + ":  mul  t2, t2, t3\n";
  s += "        addi t2, t2, 12345\n";
  s += "        srl  t4, t2, 16\n";
  s += "        sb   t4, 0(t0)\n";
  s += "        addi t0, t0, 1\n";
  s += "        subi t1, t1, 1\n";
  s += "        bnez t1, " + label + "\n";
  return s;
}

// ---------------------------------------------------------------------------
// Shared integer DCT basis: C[u][x] = round(64 * cos((2x+1) u pi / 16)),
// except row 0 which uses the orthonormal 45 (= round(64/sqrt(2))).
// ---------------------------------------------------------------------------

const std::array<std::array<int, 8>, 8>& dct_basis() {
  static const std::array<std::array<int, 8>, 8> kBasis = [] {
    std::array<std::array<int, 8>, 8> c{};
    for (int u = 0; u < 8; ++u) {
      for (int x = 0; x < 8; ++x) {
        if (u == 0) {
          c[u][x] = 45;
        } else {
          c[u][x] = static_cast<int>(std::lround(
              64.0 * std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0)));
        }
      }
    }
    return c;
  }();
  return kBasis;
}

int jpeg_qtab(int i) { return 8 + ((i * 3) & 31); }

// Zigzag scan order of an 8x8 block (shared by the jpeg and pjpeg
// entropy/progressive stages).
const std::array<int, 64>& zigzag_order() {
  static const std::array<int, 64> kZigzag = [] {
    std::array<int, 64> z{};
    int idx = 0;
    for (int d = 0; d < 15; ++d) {
      if (d % 2 == 0) {
        for (int y = std::min(d, 7); y >= 0 && d - y <= 7; --y) z[idx++] = y * 8 + (d - y);
      } else {
        for (int x = std::min(d, 7); x >= 0 && d - x <= 7; --x) z[idx++] = (d - x) * 8 + x;
      }
    }
    return z;
  }();
  return kZigzag;
}


// ---------------------------------------------------------------------------
// jpeg: 8x8 blocks of a 64x64 image through a fully unrolled separable
// integer DCT plus quantization. The unrolled transforms give jpeg the
// multi-kilobyte instruction footprint Table 1 shows.
// ---------------------------------------------------------------------------

std::uint32_t jpeg_reference() {
  std::vector<std::uint8_t> img;
  lcg_fill_bytes(img, 9, 64 * 64);
  const auto& c = dct_basis();
  const auto& zz = zigzag_order();
  std::uint32_t checksum = 0;
  std::uint32_t out_bytes = 0;  // entropy-coded stream length

  for (int by = 0; by < 64; by += 8) {
    for (int bx = 0; bx < 64; bx += 8) {
      std::int32_t in[64], tmp[64], out[64], q[64];
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          in[y * 8 + x] = img[(by + y) * 64 + bx + x];
        }
      }
      for (int r = 0; r < 8; ++r) {        // row transform
        for (int u = 0; u < 8; ++u) {
          std::int32_t acc = 0;
          for (int x = 0; x < 8; ++x) acc += in[r * 8 + x] * c[u][x];
          tmp[r * 8 + u] = acc >> 6;
        }
      }
      for (int col = 0; col < 8; ++col) {  // column transform
        for (int u = 0; u < 8; ++u) {
          std::int32_t acc = 0;
          for (int x = 0; x < 8; ++x) acc += tmp[x * 8 + col] * c[u][x];
          out[u * 8 + col] = acc >> 6;
        }
      }
      for (int i = 0; i < 64; ++i) {
        q[i] = out[i] / jpeg_qtab(i);  // trunc toward zero
        checksum += static_cast<std::uint32_t>(q[i]) * static_cast<std::uint32_t>(i + 1);
      }
      // Entropy stage: zigzag scan with (run, category) symbol emission —
      // the run-length/category structure of a baseline JPEG encoder, with
      // the Huffman table replaced by direct byte emission.
      std::uint32_t run = 0;
      for (int i = 0; i < 64; ++i) {
        const std::int32_t v = q[zz[i]];
        if (v == 0) {
          ++run;
          continue;
        }
        std::uint32_t mag = static_cast<std::uint32_t>(v < 0 ? -v : v);
        std::uint32_t cat = 0;
        while (mag != 0) {
          ++cat;
          mag >>= 1;
        }
        const auto sym = static_cast<std::uint8_t>((run << 4) | (cat & 0xF));
        const auto low = static_cast<std::uint8_t>(v);
        checksum += sym;
        checksum += low;
        out_bytes += 2;
        run = 0;
      }
      checksum += run;  // end-of-block: trailing zero count
      ++out_bytes;
    }
  }
  return checksum + out_bytes * 7u;
}

// Emit a fully unrolled 8-point DCT function: reads 8 words at a0 with
// byte stride `in_stride`, writes 8 words at a1 with stride `out_stride`.
std::string unrolled_dct_fn(const std::string& name, int in_stride,
                            int out_stride) {
  const auto& c = dct_basis();
  std::string s = name + ":\n";
  for (int u = 0; u < 8; ++u) {
    s += "        li   t4, 0\n";
    for (int x = 0; x < 8; ++x) {
      const int k = c[u][x];
      s += "        lw   t0, " + std::to_string(x * in_stride) + "(a0)\n";
      if (k == 0) continue;
      s += "        li   t1, " + std::to_string(k) + "\n";
      s += "        mul  t0, t0, t1\n";
      s += "        add  t4, t4, t0\n";
    }
    s += "        sra  t4, t4, 6\n";
    s += "        sw   t4, " + std::to_string(u * out_stride) + "(a1)\n";
  }
  s += "        ret\n\n";
  return s;
}

std::string jpeg_source() {
  std::string s;
  s += "# jpeg: 8x8 unrolled integer DCT + quantization over a 64x64 image.\n";
  s += "        .text\n";
  s += "main:\n";
  s += gen_bytes_asm("geni", "img", 64 * 64, 9);
  s += "        li   s0, 0\n";        // checksum
  s += "        la   s6, jout\n";     // entropy output cursor
  s += "        li   s7, 0\n";        // entropy byte count
  s += "        li   s1, 0\n";        // by
  s += "blky:   li   s2, 0\n";        // bx
  s += "blkx:\n";
  // load block: in[y*8+x] = img[(by+y)*64 + bx+x]
  s += "        la   t5, img\n";
  s += "        sll  t6, s1, 6\n";    // by*64
  s += "        add  t5, t5, t6\n";
  s += "        add  t5, t5, s2\n";   // &img[by][bx]
  s += "        la   t6, blkin\n";
  s += "        li   t7, 8\n";
  s += "ldrow:  li   t8, 8\n";
  s += "        move t9, t5\n";
  s += "ldpix:  lbu  t0, 0(t9)\n";
  s += "        sw   t0, 0(t6)\n";
  s += "        addi t9, t9, 1\n";
  s += "        addi t6, t6, 4\n";
  s += "        subi t8, t8, 1\n";
  s += "        bnez t8, ldpix\n";
  s += "        addi t5, t5, 64\n";
  s += "        subi t7, t7, 1\n";
  s += "        bnez t7, ldrow\n";
  // row transforms
  s += "        la   a0, blkin\n";
  s += "        la   a1, blktmp\n";
  s += "        li   s3, 8\n";
  s += "rowt:   jal  dct_row\n";
  s += "        addi a0, a0, 32\n";
  s += "        addi a1, a1, 32\n";
  s += "        subi s3, s3, 1\n";
  s += "        bnez s3, rowt\n";
  // column transforms
  s += "        la   a0, blktmp\n";
  s += "        la   a1, blkout\n";
  s += "        li   s3, 8\n";
  s += "colt:   jal  dct_col\n";
  s += "        addi a0, a0, 4\n";
  s += "        addi a1, a1, 4\n";
  s += "        subi s3, s3, 1\n";
  s += "        bnez s3, colt\n";
  // quantize + checksum (quantized coefficients kept for the entropy pass)
  s += "        la   t5, blkout\n";
  s += "        la   t6, qtab\n";
  s += "        la   t9, blkq\n";
  s += "        li   t7, 0\n";        // i
  s += "        li   t8, 64\n";
  s += "quant:  lw   t0, 0(t5)\n";
  s += "        lw   t1, 0(t6)\n";
  s += "        div  t0, t0, t1\n";
  s += "        sw   t0, 0(t9)\n";
  s += "        addi t2, t7, 1\n";
  s += "        mul  t0, t0, t2\n";
  s += "        add  s0, s0, t0\n";
  s += "        addi t5, t5, 4\n";
  s += "        addi t6, t6, 4\n";
  s += "        addi t9, t9, 4\n";
  s += "        addi t7, t7, 1\n";
  s += "        bne  t7, t8, quant\n";
  // entropy stage: zigzag (run, category) symbols into the output stream.
  // s6 = output cursor (persists across blocks), s7 = running byte count.
  s += "        la   t7, zigzag\n";
  s += "        li   t8, 0\n";        // i
  s += "        li   t9, 0\n";        // zero run
  s += "ezz:    lw   t0, 0(t7)\n";
  s += "        sll  t0, t0, 2\n";
  s += "        la   t1, blkq\n";
  s += "        add  t0, t0, t1\n";
  s += "        lw   t0, 0(t0)\n";    // v = q[zz[i]]
  s += "        bnez t0, envz\n";
  s += "        addi t9, t9, 1\n";
  s += "        b    eznext\n";
  s += "envz:   move t2, t0\n";       // |v|
  s += "        bge  t2, zero, emag\n";
  s += "        neg  t2, t2\n";
  s += "emag:   li   t3, 0\n";        // category
  s += "ecat:   beqz t2, ecatd\n";
  s += "        addi t3, t3, 1\n";
  s += "        srl  t2, t2, 1\n";
  s += "        b    ecat\n";
  s += "ecatd:  sll  t4, t9, 4\n";
  s += "        andi t3, t3, 0xF\n";
  s += "        or   t4, t4, t3\n";   // sym = run<<4 | cat
  s += "        sb   t4, 0(s6)\n";    // symbol byte
  s += "        sb   t0, 1(s6)\n";    // low byte of v
  s += "        andi t4, t4, 0xFF\n";
  s += "        add  s0, s0, t4\n";
  s += "        andi t0, t0, 0xFF\n";
  s += "        add  s0, s0, t0\n";
  s += "        addi s6, s6, 2\n";
  s += "        addi s7, s7, 2\n";
  s += "        li   t9, 0\n";
  s += "eznext: addi t7, t7, 4\n";
  s += "        addi t8, t8, 1\n";
  s += "        li   t0, 64\n";
  s += "        bne  t8, t0, ezz\n";
  s += "        add  s0, s0, t9\n";   // end-of-block trailing-zero count
  s += "        addi s7, s7, 1\n";
  // next block
  s += "        addi s2, s2, 8\n";
  s += "        li   t0, 64\n";
  s += "        bne  s2, t0, blkx\n";
  s += "        addi s1, s1, 8\n";
  s += "        li   t0, 64\n";
  s += "        bne  s1, t0, blky\n";
  s += "        li   t0, 7\n";
  s += "        mul  t1, s7, t0\n";   // checksum += out_bytes * 7
  s += "        add  s0, s0, t1\n";
  s += "        move v0, s0\n";
  s += "        halt\n\n";
  s += unrolled_dct_fn("dct_row", 4, 4);
  s += unrolled_dct_fn("dct_col", 32, 32);
  s += "        .data\n";
  s += "img:    .space 4096\n";
  s += "        .space 112\n";  // stagger the block buffers off the image
  s += "blkin:  .space 256\n";
  s += "blktmp: .space 256\n";
  s += "blkout: .space 256\n";
  s += "blkq:   .space 256\n";
  s += "jout:   .space 8192\n";
  s += "qtab:";
  for (int i = 0; i < 64; ++i) {
    s += (i % 8 == 0) ? "\n        .word " : ", ";
    s += std::to_string(jpeg_qtab(i));
  }
  s += "\nzigzag:";
  const auto& zz = zigzag_order();
  for (int i = 0; i < 64; ++i) {
    s += (i % 8 == 0) ? "\n        .word " : ", ";
    s += std::to_string(zz[i]);
  }
  s += "\n";
  return s;
}

}  // namespace

Workload make_jpeg() {
  Workload w;
  w.name = "jpeg";
  w.suite = "mediabench";
  w.description = "unrolled 8x8 integer DCT + quantization over a 64x64 image";
  w.source = jpeg_source();
  w.expected_checksum = jpeg_reference();
  return w;
}

// ---------------------------------------------------------------------------
// pjpeg: table-driven DCT with three progressive quantization scans and
// zigzag traversal (smaller code than jpeg, heavier table traffic).
// ---------------------------------------------------------------------------

namespace {

std::uint32_t pjpeg_reference() {
  std::vector<std::uint8_t> img;
  lcg_fill_bytes(img, 19, 64 * 64);
  const auto& c = dct_basis();
  const auto& zz = zigzag_order();
  std::uint32_t checksum = 0;
  std::uint32_t bitbuf = 0, bitcount = 0, packed_bytes = 0;

  for (int by = 0; by < 64; by += 8) {
    for (int bx = 0; bx < 64; bx += 8) {
      std::int32_t in[64], tmp[64], out[64];
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) in[y * 8 + x] = img[(by + y) * 64 + bx + x];
      }
      for (int r = 0; r < 8; ++r) {
        for (int u = 0; u < 8; ++u) {
          std::int32_t acc = 0;
          for (int x = 0; x < 8; ++x) acc += in[r * 8 + x] * c[u][x];
          tmp[r * 8 + u] = acc >> 6;
        }
      }
      for (int col = 0; col < 8; ++col) {
        for (int u = 0; u < 8; ++u) {
          std::int32_t acc = 0;
          for (int x = 0; x < 8; ++x) acc += tmp[x * 8 + col] * c[u][x];
          out[u * 8 + col] = acc >> 6;
        }
      }
      // Three progressive scans: successively finer quantization along the
      // zigzag, counting zero runs and bit-packing each coefficient's
      // magnitude into the output stream the way a progressive encoder
      // would.
      for (int scan = 0; scan < 3; ++scan) {
        const int shift = 6 - 2 * scan;  // 6, 4, 2
        std::uint32_t zero_run = 0;
        for (int i = 0; i < 64; ++i) {
          const std::int32_t q = out[zz[i]] >> shift;  // arithmetic shift
          if (q == 0) {
            ++zero_run;
          } else {
            checksum += static_cast<std::uint32_t>(q) + zero_run * 3u;
            zero_run = 0;
            // Bit-pack |q| with its own bit length (JPEG category coding).
            std::uint32_t mag = static_cast<std::uint32_t>(q < 0 ? -q : q);
            std::uint32_t cat = 0;
            for (std::uint32_t m = mag; m != 0; m >>= 1) ++cat;
            bitbuf |= mag << bitcount;
            bitcount += cat;
            while (bitcount >= 8) {
              const std::uint32_t byte = bitbuf & 0xFFu;
              checksum += byte;
              ++packed_bytes;
              bitbuf >>= 8;
              bitcount -= 8;
            }
          }
        }
        checksum += zero_run;
      }
    }
  }
  // Flush the straggler bits and fold the stream length.
  if (bitcount > 0) {
    checksum += bitbuf & 0xFFu;
    ++packed_bytes;
  }
  return checksum + packed_bytes * 11u;
}

std::string pjpeg_source() {
  const auto& c = dct_basis();
  const auto& zz = zigzag_order();
  std::string s;
  s += "# pjpeg: table-driven DCT with three progressive zigzag scans.\n";
  s += "        .text\n";
  s += "main:\n";
  s += gen_bytes_asm("geni", "img", 64 * 64, 19);
  s += "        li   s0, 0\n";
  s += "        li   s6, 0\n";  // bit accumulator
  s += "        li   s7, 0\n";  // bits in accumulator
  s += "        la   gp, pout\n";  // packed-output cursor
  s += "        li   fp, 0\n";  // packed bytes emitted
  s += "        li   s1, 0\n";  // by
  s += "pbly:   li   s2, 0\n";  // bx
  s += "pblx:\n";
  // load block
  s += "        la   t5, img\n";
  s += "        sll  t6, s1, 6\n";
  s += "        add  t5, t5, t6\n";
  s += "        add  t5, t5, s2\n";
  s += "        la   t6, blkin\n";
  s += "        li   t7, 8\n";
  s += "ldrow:  li   t8, 8\n";
  s += "        move t9, t5\n";
  s += "ldpix:  lbu  t0, 0(t9)\n";
  s += "        sw   t0, 0(t6)\n";
  s += "        addi t9, t9, 1\n";
  s += "        addi t6, t6, 4\n";
  s += "        subi t8, t8, 1\n";
  s += "        bnez t8, ldpix\n";
  s += "        addi t5, t5, 64\n";
  s += "        subi t7, t7, 1\n";
  s += "        bnez t7, ldrow\n";
  // table-driven row transform: for r, for u: acc = sum in[r*8+x]*basis[u*8+x]
  s += "        la   s3, blkin\n";
  s += "        la   s4, blktmp\n";
  s += "        li   s5, 8\n";          // rows remaining
  s += "prow:   la   t7, basis\n";
  s += "        li   t8, 8\n";          // u remaining
  s += "pu:     li   t4, 0\n";
  s += "        move t5, s3\n";
  s += "        li   t6, 8\n";
  s += "px:     lw   t0, 0(t5)\n";
  s += "        lw   t1, 0(t7)\n";
  s += "        mul  t0, t0, t1\n";
  s += "        add  t4, t4, t0\n";
  s += "        addi t5, t5, 4\n";
  s += "        addi t7, t7, 4\n";
  s += "        subi t6, t6, 1\n";
  s += "        bnez t6, px\n";
  s += "        sra  t4, t4, 6\n";
  s += "        sw   t4, 0(s4)\n";
  s += "        addi s4, s4, 4\n";
  s += "        subi t8, t8, 1\n";
  s += "        bnez t8, pu\n";
  s += "        addi s3, s3, 32\n";
  s += "        subi s5, s5, 1\n";
  s += "        bnez s5, prow\n";
  // table-driven column transform: for col, for u: acc over x of
  // tmp[x*8+col]*basis[u*8+x]; out[u*8+col]
  s += "        li   s5, 0\n";          // col
  s += "pcol:   la   t7, basis\n";
  s += "        li   t8, 0\n";          // u
  s += "pcu:    li   t4, 0\n";
  s += "        la   t5, blktmp\n";
  s += "        sll  t6, s5, 2\n";
  s += "        add  t5, t5, t6\n";     // &tmp[col]
  s += "        li   t6, 8\n";
  s += "pcx:    lw   t0, 0(t5)\n";
  s += "        lw   t1, 0(t7)\n";
  s += "        mul  t0, t0, t1\n";
  s += "        add  t4, t4, t0\n";
  s += "        addi t5, t5, 32\n";
  s += "        addi t7, t7, 4\n";
  s += "        subi t6, t6, 1\n";
  s += "        bnez t6, pcx\n";
  s += "        sra  t4, t4, 6\n";
  s += "        sll  t0, t8, 5\n";      // u*32
  s += "        la   t1, blkout\n";
  s += "        add  t0, t0, t1\n";
  s += "        sll  t1, s5, 2\n";
  s += "        add  t0, t0, t1\n";
  s += "        sw   t4, 0(t0)\n";
  s += "        addi t8, t8, 1\n";
  s += "        li   t0, 8\n";
  s += "        bne  t8, t0, pcu\n";
  s += "        addi s5, s5, 1\n";
  s += "        li   t0, 8\n";
  s += "        bne  s5, t0, pcol\n";
  // three progressive zigzag scans: shift = 6, 4, 2
  s += "        li   s3, 6\n";          // shift
  s += "scan:   la   t7, zigzag\n";
  s += "        li   t8, 0\n";          // i
  s += "        li   t9, 0\n";          // zero_run
  s += "zz:     lw   t0, 0(t7)\n";      // zz[i] (word index)
  s += "        sll  t0, t0, 2\n";
  s += "        la   t1, blkout\n";
  s += "        add  t0, t0, t1\n";
  s += "        lw   t0, 0(t0)\n";
  s += "        srav t0, t0, s3\n";
  s += "        bnez t0, nz\n";
  s += "        addi t9, t9, 1\n";
  s += "        b    zznext\n";
  s += "nz:     li   t1, 3\n";
  s += "        mul  t1, t9, t1\n";
  s += "        add  t1, t0, t1\n";
  s += "        add  s0, s0, t1\n";
  s += "        li   t9, 0\n";
  // bit-pack |q| with its own bit length (JPEG category coding)
  s += "        move t2, t0\n";
  s += "        bge  t2, zero, pmag\n";
  s += "        neg  t2, t2\n";
  s += "pmag:   li   t3, 0\n";          // category
  s += "        move t4, t2\n";
  s += "pcat:   beqz t4, pcd\n";
  s += "        addi t3, t3, 1\n";
  s += "        srl  t4, t4, 1\n";
  s += "        b    pcat\n";
  s += "pcd:    sllv t4, t2, s7\n";     // append magnitude bits
  s += "        or   s6, s6, t4\n";
  s += "        add  s7, s7, t3\n";
  s += "pflush: li   t4, 8\n";
  s += "        blt  s7, t4, pfd\n";
  s += "        andi t4, s6, 0xFF\n";
  s += "        sb   t4, 0(gp)\n";
  s += "        add  s0, s0, t4\n";
  s += "        addi gp, gp, 1\n";
  s += "        addi fp, fp, 1\n";
  s += "        srl  s6, s6, 8\n";
  s += "        subi s7, s7, 8\n";
  s += "        b    pflush\n";
  s += "pfd:\n";
  s += "zznext: addi t7, t7, 4\n";
  s += "        addi t8, t8, 1\n";
  s += "        li   t0, 64\n";
  s += "        bne  t8, t0, zz\n";
  s += "        add  s0, s0, t9\n";
  s += "        subi s3, s3, 2\n";
  s += "        bnez s3, scan\n";
  // next block
  s += "        addi s2, s2, 8\n";
  s += "        li   t0, 64\n";
  s += "        bne  s2, t0, pblx\n";
  s += "        addi s1, s1, 8\n";
  s += "        li   t0, 64\n";
  s += "        bne  s1, t0, pbly\n";
  s += "        beqz s7, pnof\n";      // flush straggler bits
  s += "        andi t0, s6, 0xFF\n";
  s += "        add  s0, s0, t0\n";
  s += "        addi fp, fp, 1\n";
  s += "pnof:   li   t0, 11\n";
  s += "        mul  t1, fp, t0\n";
  s += "        add  s0, s0, t1\n";
  s += "        move v0, s0\n";
  s += "        halt\n\n";
  s += "        .data\n";
  s += "img:    .space 4096\n";
  s += "pout:   .space 16384\n";
  s += "        .space 176\n";  // stagger the block buffers off the image
  s += "blkin:  .space 256\n";
  s += "blktmp: .space 256\n";
  s += "blkout: .space 256\n";
  s += "basis:";
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      s += (x == 0) ? "\n        .word " : ", ";
      s += std::to_string(c[u][x]);
    }
  }
  s += "\nzigzag:";
  for (int i = 0; i < 64; ++i) {
    s += (i % 8 == 0) ? "\n        .word " : ", ";
    s += std::to_string(zz[i]);
  }
  s += "\n";
  return s;
}

}  // namespace

Workload make_pjpeg() {
  Workload w;
  w.name = "pjpeg";
  w.suite = "powerstone";
  w.description = "table-driven DCT with three progressive zigzag scans";
  w.source = pjpeg_source();
  w.expected_checksum = pjpeg_reference();
  return w;
}

// ---------------------------------------------------------------------------
// epic: three-level Haar wavelet pyramid over a 128x128 word image (64 KB),
// rows then columns per level; the column passes stride 512 B, exercising
// line-size and conflict behavior.
// ---------------------------------------------------------------------------

namespace {

constexpr int kEpicDim = 128;

std::uint32_t epic_reference() {
  std::vector<std::int32_t> img(kEpicDim * kEpicDim);
  std::uint32_t x = 33;
  for (auto& v : img) {
    x = lcg_next(x);
    v = static_cast<std::int32_t>((x >> 16) & 0xFFu);
  }
  std::vector<std::int32_t> buf(kEpicDim);

  auto haar = [&](std::int32_t* base, int stride_words, int n) {
    const int half = n / 2;
    for (int i = 0; i < half; ++i) {
      const std::int32_t a = base[(2 * i) * stride_words];
      const std::int32_t b = base[(2 * i + 1) * stride_words];
      buf[i] = (a + b) >> 1;  // arithmetic shift, matches sra
      buf[half + i] = a - b;
    }
    for (int i = 0; i < n; ++i) base[i * stride_words] = buf[i];
  };

  for (int level = 0; level < 3; ++level) {
    const int n = kEpicDim >> level;
    for (int y = 0; y < n; ++y) haar(&img[y * kEpicDim], 1, n);
    for (int xx = 0; xx < n; ++xx) haar(&img[xx], kEpicDim, n);
  }
  std::uint32_t checksum = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    checksum ^= static_cast<std::uint32_t>(img[i]) + static_cast<std::uint32_t>(i);
  }

  // Quantize-and-run-length stage (what EPIC does after its pyramid):
  // coefficients are quantized by an arithmetic shift and zero runs are
  // collapsed into (run, value) byte pairs.
  std::uint32_t run = 0, bytes = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    const std::int32_t q = img[i] >> 3;
    if (q == 0) {
      if (++run == 255) {
        checksum += run;
        ++bytes;
        run = 0;
      }
      continue;
    }
    checksum += run + (static_cast<std::uint32_t>(q) & 0xFFu);
    bytes += 2;
    run = 0;
  }
  checksum += run;
  return checksum + bytes * 5u;
}

constexpr char kEpicSource[] = R"(
# epic: 3-level Haar wavelet pyramid over a 128x128 word image.
        .text
main:   la   t0, img
        li   t1, 16384
        li   t2, 33
        li   t3, 1103515245
gen:    mul  t2, t2, t3
        addi t2, t2, 12345
        srl  t4, t2, 16
        andi t4, t4, 0xFF
        sw   t4, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen
        li   s1, 0            # level
lvl:    li   t0, 128
        srlv s2, t0, s1       # n = 128 >> level
        li   s3, 0            # y
rowy:   la   a0, img
        sll  t0, s3, 9
        add  a0, a0, t0
        li   a2, 4
        move a3, s2
        jal  haar
        addi s3, s3, 1
        bne  s3, s2, rowy
        li   s3, 0            # x
colx:   la   a0, img
        sll  t0, s3, 2
        add  a0, a0, t0
        li   a2, 512
        move a3, s2
        jal  haar
        addi s3, s3, 1
        bne  s3, s2, colx
        addi s1, s1, 1
        li   t0, 3
        bne  s1, t0, lvl
        li   s0, 0
        la   t5, img
        li   t6, 0
        li   t7, 16384
cks:    lw   t0, 0(t5)
        add  t0, t0, t6
        xor  s0, s0, t0
        addi t5, t5, 4
        addi t6, t6, 1
        bne  t6, t7, cks
        # ---- quantize + run-length encode the pyramid into outb ----
        la   t5, img
        la   t8, outb
        li   t6, 16384        # coefficients remaining
        li   t9, 0            # current zero run
        li   t7, 0            # bytes emitted
erle:   lw   t0, 0(t5)
        sra  t0, t0, 3
        bnez t0, ernz
        addi t9, t9, 1
        li   t1, 255
        bne  t9, t1, ernext
        sb   t9, 0(t8)        # flush a saturated run
        addi t8, t8, 1
        addi t7, t7, 1
        add  s0, s0, t9
        li   t9, 0
        b    ernext
ernz:   sb   t9, 0(t8)        # run length, then coefficient low byte
        sb   t0, 1(t8)
        add  s0, s0, t9
        andi t1, t0, 0xFF
        add  s0, s0, t1
        addi t8, t8, 2
        addi t7, t7, 2
        li   t9, 0
ernext: addi t5, t5, 4
        subi t6, t6, 1
        bnez t6, erle
        add  s0, s0, t9       # trailing zero run
        li   t0, 5
        mul  t1, t7, t0
        add  s0, s0, t1
        move v0, s0
        halt

# haar(a0 = base, a2 = stride bytes, a3 = n): one lifting pass in place.
haar:   la   t9, hbuf
        srl  t6, a3, 1
        sll  t8, t6, 2
        add  t8, t8, t9
        move t5, a0
        move t7, t6
hlp:    lw   t0, 0(t5)
        add  t1, t5, a2
        lw   t1, 0(t1)
        add  t2, t0, t1
        sra  t2, t2, 1
        sw   t2, 0(t9)
        sub  t2, t0, t1
        sw   t2, 0(t8)
        addi t9, t9, 4
        addi t8, t8, 4
        add  t5, t5, a2
        add  t5, t5, a2
        subi t7, t7, 1
        bnez t7, hlp
        la   t9, hbuf
        move t5, a0
        move t7, a3
hcp:    lw   t0, 0(t9)
        sw   t0, 0(t5)
        addi t9, t9, 4
        add  t5, t5, a2
        subi t7, t7, 1
        bnez t7, hcp
        ret

        .data
img:    .space 65536
hbuf:   .space 512
outb:   .space 32768
)";

}  // namespace

Workload make_epic() {
  Workload w;
  w.name = "epic";
  w.suite = "mediabench";
  w.description = "3-level Haar wavelet pyramid over a 128x128 word image";
  w.source = kEpicSource;
  w.expected_checksum = epic_reference();
  return w;
}

// ---------------------------------------------------------------------------
// g721: two-channel predictive codec with an adaptive predictor switch and
// a threshold-ladder quantizer; each channel runs a cloned copy of the
// codec (alternating clone execution stresses the instruction cache the
// way the paper's g721 run does).
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<int, 7> kG721Thresholds = {16, 48, 112, 240, 496, 1008, 2032};
constexpr std::array<int, 8> kG721Recon = {8, 32, 80, 176, 368, 752, 1520, 3056};
constexpr unsigned kG721Channels = 16;
constexpr unsigned kG721Samples = 6400;  // total across all channels

struct G721Channel {
  std::int32_t s1p = 0;
  std::int32_t s2p = 0;
  std::int32_t lasterr = 0;
};

std::uint32_t g721_step(G721Channel& ch, std::int32_t sample,
                        std::uint32_t checksum) {
  std::int32_t pred;
  std::int32_t abserr = ch.lasterr < 0 ? -ch.lasterr : ch.lasterr;
  if (abserr < 256) {
    pred = (3 * ch.s1p - ch.s2p) >> 1;
  } else {
    pred = (ch.s1p + ch.s2p) >> 1;
  }
  std::int32_t d = sample - pred;
  std::int32_t sign = 0;
  if (d < 0) {
    sign = 8;
    d = -d;
  }
  std::int32_t code = 0;
  while (code < 7 && d >= kG721Thresholds[code]) ++code;
  std::int32_t rec = kG721Recon[code];
  if (sign != 0) rec = -rec;
  std::int32_t srec = pred + rec;
  if (srec > 8191) srec = 8191;
  else if (srec < -8192) srec = -8192;
  ch.lasterr = sample - srec;
  ch.s2p = ch.s1p;
  ch.s1p = srec;
  return checksum + static_cast<std::uint32_t>(code) +
         static_cast<std::uint32_t>(sign) +
         (static_cast<std::uint32_t>(srec) & 0xFFu);
}

std::uint32_t g721_reference() {
  std::uint32_t x = 901;
  G721Channel ch[kG721Channels];
  std::uint32_t checksum = 0;
  for (unsigned n = 0; n < kG721Samples; ++n) {
    x = lcg_next(x);
    const auto sample = static_cast<std::int32_t>(
                            static_cast<std::int16_t>(x >> 8)) >> 3;
    checksum = g721_step(ch[n % kG721Channels], sample, checksum);
  }
  return checksum;
}

// One codec clone. Register contract: s1 = LCG, s7 = LCG multiplier,
// s0 = checksum; channel state lives in memory at <prefix>st (3 words:
// s1p, s2p, lasterr). Clobbers t0..t7.
std::string g721_clone(const std::string& p) {
  std::string s;
  auto L = [&](const std::string& line) { s += line + "\n"; };
  L(p + ":");
  L("        mul  s1, s1, s7");
  L("        addi s1, s1, 12345");
  L("        srl  t0, s1, 8");
  L("        sll  t0, t0, 16");
  L("        sra  t0, t0, 16");
  L("        sra  t0, t0, 3");            // sample
  L("        la   t7, " + p + "st");
  L("        lw   t1, 0(t7)");            // s1p
  L("        lw   t2, 4(t7)");            // s2p
  L("        lw   t3, 8(t7)");            // lasterr
  L("        bge  t3, zero, " + p + "_a");
  L("        neg  t3, t3");
  L(p + "_a:");
  L("        li   t4, 256");
  L("        bge  t3, t4, " + p + "_smooth");
  L("        li   t4, 3");                // pred = (3*s1p - s2p) >> 1
  L("        mul  t4, t1, t4");
  L("        sub  t4, t4, t2");
  L("        sra  t4, t4, 1");
  L("        b    " + p + "_pp");
  L(p + "_smooth:");
  L("        add  t4, t1, t2");           // pred = (s1p + s2p) >> 1
  L("        sra  t4, t4, 1");
  L(p + "_pp:");
  L("        sub  t5, t0, t4");           // d
  L("        li   t6, 0");                // sign
  L("        bge  t5, zero, " + p + "_q");
  L("        li   t6, 8");
  L("        neg  t5, t5");
  L(p + "_q:");
  // threshold ladder: code = first level with d < thr
  L("        li   t3, 0");                // code
  L("        la   t8, g7thr");
  L(p + "_ql:");
  L("        li   t9, 7");
  L("        bge  t3, t9, " + p + "_qd");
  L("        lw   t9, 0(t8)");
  L("        blt  t5, t9, " + p + "_qd");
  L("        addi t3, t3, 1");
  L("        addi t8, t8, 4");
  L("        b    " + p + "_ql");
  L(p + "_qd:");
  L("        la   t8, g7rec");
  L("        sll  t9, t3, 2");
  L("        add  t8, t8, t9");
  L("        lw   t8, 0(t8)");            // rec
  L("        beqz t6, " + p + "_r");
  L("        neg  t8, t8");
  L(p + "_r:");
  L("        add  t8, t4, t8");           // srec
  L("        li   t9, 8191");
  L("        ble  t8, t9, " + p + "_c1");
  L("        move t8, t9");
  L(p + "_c1:");
  L("        li   t9, -8192");
  L("        bge  t8, t9, " + p + "_c2");
  L("        move t8, t9");               // clamp to the lower bound
  L(p + "_c2:");
  L("        la   t7, " + p + "st");
  L("        lw   t9, 0(t7)");            // old s1p
  L("        sw   t9, 4(t7)");            // s2p = s1p
  L("        sw   t8, 0(t7)");            // s1p = srec
  L("        sub  t9, t0, t8");           // lasterr = sample - srec
  L("        sw   t9, 8(t7)");
  L("        add  s0, s0, t3");           // checksum += code
  L("        add  s0, s0, t6");           // += sign
  L("        andi t8, t8, 0xFF");
  L("        add  s0, s0, t8");           // += srec & 0xff
  L("        ret");
  return s;
}

std::string g721_source() {
  std::string s;
  s += "# g721: " + std::to_string(kG721Channels) +
       " cloned predictive-codec channels, one sample each per iteration.\n";
  s += "        .text\n";
  s += "main:   li   s0, 0\n";
  s += "        li   s1, 901\n";
  s += "        li   s7, 1103515245\n";
  s += "        li   s2, " + std::to_string(kG721Samples / kG721Channels) + "\n";
  s += "gloop:\n";
  for (unsigned c = 0; c < kG721Channels; ++c) {
    s += "        jal  ch" + std::to_string(c) + "\n";
  }
  s += "        subi s2, s2, 1\n";
  s += "        bnez s2, gloop\n";
  s += "        move v0, s0\n";
  s += "        halt\n\n";
  for (unsigned c = 0; c < kG721Channels; ++c) {
    s += g721_clone("ch" + std::to_string(c)) + "\n";
  }
  s += "        .data\n";
  s += "g7thr:";
  for (std::size_t i = 0; i < kG721Thresholds.size(); ++i) {
    s += (i == 0) ? "\n        .word " : ", ";
    s += std::to_string(kG721Thresholds[i]);
  }
  s += "\ng7rec:";
  for (std::size_t i = 0; i < kG721Recon.size(); ++i) {
    s += (i == 0) ? "\n        .word " : ", ";
    s += std::to_string(kG721Recon[i]);
  }
  s += "\n";
  for (unsigned c = 0; c < kG721Channels; ++c) {
    s += "ch" + std::to_string(c) + "st: .word 0, 0, 0\n";
  }
  return s;
}

}  // namespace

Workload make_g721() {
  Workload w;
  w.name = "g721";
  w.suite = "mediabench";
  w.description = "16 cloned predictive-codec channels with adaptive predictor switch";
  w.source = g721_source();
  w.expected_checksum = g721_reference();
  return w;
}

// ---------------------------------------------------------------------------
// pegwit: 256-bit modular exponentiation (arithmetic mod 2^256 — the
// carry-propagating schoolbook multiplies dominate, which is what matters
// for the cache behavior of public-key code).
// ---------------------------------------------------------------------------

namespace {

using Big = std::array<std::uint32_t, 8>;

Big big_from_lcg(std::uint32_t& x) {
  Big b{};
  for (auto& w : b) {
    x = lcg_next(x);
    w = x;
  }
  return b;
}

Big big_mul_low(const Big& a, const Big& b) {
  std::array<std::uint32_t, 16> r{};
  for (int i = 0; i < 8; ++i) {
    std::uint32_t carry = 0;
    for (int j = 0; j < 8; ++j) {
      const std::uint64_t p =
          static_cast<std::uint64_t>(a[i]) * static_cast<std::uint64_t>(b[j]);
      const auto lo = static_cast<std::uint32_t>(p);
      auto hi = static_cast<std::uint32_t>(p >> 32);
      std::uint32_t s = r[i + j] + carry;
      if (s < carry) ++hi;
      const std::uint32_t s2 = s + lo;
      if (s2 < lo) ++hi;
      r[i + j] = s2;
      carry = hi;
    }
    r[i + 8] = carry;
  }
  Big out{};
  for (int i = 0; i < 8; ++i) out[i] = r[i];
  return out;
}

std::uint32_t pegwit_reference() {
  std::uint32_t x = 23;
  const Big g = big_from_lcg(x);
  const Big e = big_from_lcg(x);
  Big res{};
  res[0] = 1;
  for (int word = 7; word >= 0; --word) {
    for (int bit = 31; bit >= 0; --bit) {
      res = big_mul_low(res, res);
      if ((e[word] >> bit) & 1u) res = big_mul_low(res, g);
    }
  }
  std::uint32_t checksum = 0;
  for (int i = 0; i < 8; ++i) checksum ^= res[i] + static_cast<std::uint32_t>(i);
  return checksum;
}

constexpr char kPegwitSource[] = R"(
# pegwit: 256-bit modular exponentiation (mod 2^256), square-and-multiply.
        .text
main:   # generate g (8 words) and e (8 words) from LCG seed 23
        la   t0, gbuf
        li   t1, 16
        li   t2, 23
        li   t3, 1103515245
gen:    mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen
        # res = 1
        la   t0, res
        li   t1, 1
        sw   t1, 0(t0)
        li   t1, 7
clrres: sw   zero, 4(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, clrres
        li   s1, 7            # word index
wloop:  li   s2, 31           # bit index
bloop:  # res = res * res (low 8 words)
        la   a0, res
        la   a1, res
        jal  bigmul
        jal  cplow
        # if bit set: res = res * g
        la   t0, ebuf
        sll  t1, s1, 2
        add  t0, t0, t1
        lw   t0, 0(t0)
        srlv t0, t0, s2
        andi t0, t0, 1
        beqz t0, bnext
        la   a0, res
        la   a1, gbuf
        jal  bigmul
        jal  cplow
bnext:  subi s2, s2, 1
        bge  s2, zero, bloop
        subi s1, s1, 1
        bge  s1, zero, wloop
        # checksum
        li   s0, 0
        la   t5, res
        li   t6, 0
        li   t7, 8
cks:    lw   t0, 0(t5)
        add  t0, t0, t6
        xor  s0, s0, t0
        addi t5, t5, 4
        addi t6, t6, 1
        bne  t6, t7, cks
        move v0, s0
        halt

# bigmul: prod[0..15] = a0[0..7] * a1[0..7] (schoolbook with carries)
bigmul: la   t5, prod
        li   t6, 16
bmclr:  sw   zero, 0(t5)
        addi t5, t5, 4
        subi t6, t6, 1
        bnez t6, bmclr
        li   t7, 0            # i
bmoi:   sll  t0, t7, 2
        add  t0, t0, a0
        lw   t8, 0(t0)        # a[i]
        li   t9, 0            # carry
        li   t6, 0            # j
bmoj:   sll  t0, t6, 2
        add  t0, t0, a1
        lw   t1, 0(t0)        # b[j]
        mul  t2, t8, t1       # lo
        mulhu t3, t8, t1      # hi
        add  t0, t7, t6
        sll  t0, t0, 2
        la   t4, prod
        add  t0, t0, t4
        lw   t4, 0(t0)        # prod[i+j]
        add  t5, t4, t9       # s = prod + carry
        sltu t4, t5, t9
        add  t3, t3, t4
        add  t4, t5, t2       # s2 = s + lo
        sltu t5, t4, t2
        add  t3, t3, t5
        sw   t4, 0(t0)
        move t9, t3
        addi t6, t6, 1
        li   t0, 8
        bne  t6, t0, bmoj
        addi t0, t7, 8
        sll  t0, t0, 2
        la   t4, prod
        add  t0, t0, t4
        sw   t9, 0(t0)
        addi t7, t7, 1
        li   t0, 8
        bne  t7, t0, bmoi
        ret

# cplow: res[0..7] = prod[0..7]
cplow:  la   t5, prod
        la   t6, res
        li   t7, 8
cpl:    lw   t0, 0(t5)
        sw   t0, 0(t6)
        addi t5, t5, 4
        addi t6, t6, 4
        subi t7, t7, 1
        bnez t7, cpl
        ret

        .data
gbuf:   .space 32
ebuf:   .space 32
res:    .space 32
prod:   .space 64
)";

}  // namespace

Workload make_pegwit() {
  Workload w;
  w.name = "pegwit";
  w.suite = "mediabench";
  w.description = "256-bit square-and-multiply exponentiation (mod 2^256)";
  w.source = kPegwitSource;
  w.expected_checksum = pegwit_reference();
  w.max_instructions = 160'000'000;
  return w;
}

// ---------------------------------------------------------------------------
// mpeg2: exhaustive block motion estimation — 9 blocks of 16x16 pixels,
// +/-4 search window, SAD matching between two 96x96 frames.
// ---------------------------------------------------------------------------

namespace {

constexpr int kMpegDim = 96;

std::uint32_t mpeg2_reference() {
  std::vector<std::uint8_t> ref_frame, cur_frame;
  lcg_fill_bytes(ref_frame, 13, kMpegDim * kMpegDim);
  lcg_fill_bytes(cur_frame, 14, kMpegDim * kMpegDim);

  std::uint32_t checksum = 0;
  for (int bi = 0; bi < 9; ++bi) {
    const int bx = 16 + (bi % 3) * 24;
    const int by = 16 + (bi / 3) * 24;
    std::uint32_t best_sad = 0x7FFFFFFFu;
    std::uint32_t best_code = 0;
    for (int dy = -4; dy <= 4; ++dy) {
      for (int dx = -4; dx <= 4; ++dx) {
        std::uint32_t sad = 0;
        for (int y = 0; y < 16; ++y) {
          for (int x = 0; x < 16; ++x) {
            const int c = cur_frame[(by + y) * kMpegDim + bx + x];
            const int r = ref_frame[(by + y + dy) * kMpegDim + bx + x + dx];
            sad += static_cast<std::uint32_t>(c > r ? c - r : r - c);
          }
        }
        if (sad < best_sad) {
          best_sad = sad;
          best_code = static_cast<std::uint32_t>((dy + 4) * 9 + dx + 4);
        }
      }
    }
    checksum += best_sad * 31u + best_code;

    // Half-pel refinement around the integer-pel winner (the second stage
    // of a real MPEG-2 motion estimator): evaluate the eight half-sample
    // positions with bilinear interpolation.
    const int bdy = static_cast<int>(best_code) / 9 - 4;
    const int bdx = static_cast<int>(best_code) % 9 - 4;
    std::uint32_t best_half_sad = best_sad;
    std::uint32_t best_half_code = 4;  // center (hy+1)*3 + hx+1 = 4
    for (int hy = -1; hy <= 1; ++hy) {
      for (int hx = -1; hx <= 1; ++hx) {
        if (hx == 0 && hy == 0) continue;
        std::uint32_t sad = 0;
        for (int y = 0; y < 16; ++y) {
          for (int x = 0; x < 16; ++x) {
            const int X = bx + x + bdx;
            const int Y = (by + y + bdy) * kMpegDim;
            int p;
            if (hy == 0) {
              p = (ref_frame[Y + X] + ref_frame[Y + X + hx] + 1) >> 1;
            } else if (hx == 0) {
              p = (ref_frame[Y + X] + ref_frame[Y + hy * kMpegDim + X] + 1) >> 1;
            } else {
              p = (ref_frame[Y + X] + ref_frame[Y + X + hx] +
                   ref_frame[Y + hy * kMpegDim + X] +
                   ref_frame[Y + hy * kMpegDim + X + hx] + 2) >> 2;
            }
            const int c = cur_frame[(by + y) * kMpegDim + bx + x];
            sad += static_cast<std::uint32_t>(c > p ? c - p : p - c);
          }
        }
        if (sad < best_half_sad) {
          best_half_sad = sad;
          best_half_code = static_cast<std::uint32_t>((hy + 1) * 3 + hx + 1);
        }
      }
    }
    checksum += best_half_sad * 13u + best_half_code;
  }
  return checksum;
}

constexpr char kMpeg2Source[] = R"(
# mpeg2: SAD motion estimation, 9 blocks, +/-4 search, 96x96 frames.
        .text
main:   la   t0, refb
        li   t1, 9216
        li   t2, 13
        li   t3, 1103515245
genr:   mul  t2, t2, t3
        addi t2, t2, 12345
        srl  t4, t2, 16
        sb   t4, 0(t0)
        addi t0, t0, 1
        subi t1, t1, 1
        bnez t1, genr
        la   t0, curb
        li   t1, 9216
        li   t2, 14
genc:   mul  t2, t2, t3
        addi t2, t2, 12345
        srl  t4, t2, 16
        sb   t4, 0(t0)
        addi t0, t0, 1
        subi t1, t1, 1
        bnez t1, genc
        li   s0, 0            # checksum
        li   s1, 0            # block index
blk:    li   t0, 3
        remu t1, s1, t0
        divu t2, s1, t0
        li   t0, 24
        mul  t1, t1, t0
        addi t1, t1, 16
        mul  t2, t2, t0
        addi t2, t2, 16
        move s2, t1           # bx
        move s3, t2           # by
        li   s4, 0x7FFFFFFF   # best SAD
        li   s5, 0            # best code
        li   s6, -4           # dy
dyl:    li   s7, -4           # dx
dxl:    la   t0, curb
        li   t1, 96
        mul  t2, s3, t1
        add  t0, t0, t2
        add  t8, t0, s2       # cur block ptr
        la   t0, refb
        add  t2, s3, s6
        mul  t2, t2, t1
        add  t0, t0, t2
        add  t9, t0, s2
        add  t9, t9, s7       # ref candidate ptr
        li   t7, 16           # rows
        li   t6, 0            # sad
sadr:   li   t5, 16
sadp:   lbu  t0, 0(t8)
        lbu  t1, 0(t9)
        sub  t2, t0, t1
        bge  t2, zero, absk
        neg  t2, t2
absk:   add  t6, t6, t2
        addi t8, t8, 1
        addi t9, t9, 1
        subi t5, t5, 1
        bnez t5, sadp
        addi t8, t8, 80
        addi t9, t9, 80
        subi t7, t7, 1
        bnez t7, sadr
        bgeu t6, s4, nosv
        move s4, t6
        addi t0, s6, 4
        li   t1, 9
        mul  t0, t0, t1
        add  t0, t0, s7
        addi t0, t0, 4
        move s5, t0
nosv:   addi s7, s7, 1
        li   t0, 5
        bne  s7, t0, dxl
        addi s6, s6, 1
        li   t0, 5
        bne  s6, t0, dyl
        li   t0, 31
        mul  t1, s4, t0
        add  s0, s0, t1
        add  s0, s0, s5
        # ---- half-pel refinement around the integer-pel winner ----
        # recover (bdx, bdy) from the best code in s5
        li   t0, 9
        divu t1, s5, t0       # (dy+4)
        remu t2, s5, t0       # (dx+4)
        subi t1, t1, 4        # bdy
        subi t2, t2, 4        # bdx
        # s6 <- &cur[by][bx], s7 <- &ref[by+bdy][bx+bdx]
        la   t0, curb
        li   t3, 96
        mul  t4, s3, t3
        add  t0, t0, t4
        add  s6, t0, s2
        la   t0, refb
        add  t4, s3, t1
        mul  t4, t4, t3
        add  t0, t0, t4
        add  s7, t0, s2
        add  s7, s7, t2
        # gp = half-position index 0..8 (skipping 4 = center)
        # fp = best half SAD (seeded with the integer result in s4)
        move fp, s4
        li   s5, 4            # best half code = center
        li   gp, 0
hloop:  li   t0, 4
        beq  gp, t0, hnext    # skip the center position
        li   t0, 3
        divu t1, gp, t0       # hy+1
        remu t2, gp, t0       # hx+1
        subi t1, t1, 1        # hy
        subi t2, t2, 1        # hx
        # per-pixel offsets: t3 = hy*96 + 0, t4 = hx
        li   t0, 96
        mul  t3, t1, t0
        move t4, t2
        # SAD over the 16x16 block with bilinear interpolation
        move t8, s6           # cur ptr
        move t9, s7           # ref ptr
        li   t7, 16           # rows
        li   t6, 0            # sad
hsadr:  li   t5, 16
hsadp:  lbu  t0, 0(t9)        # a = ref[Y][X]
        beqz t3, hrow         # hy == 0 ?
        beqz t4, hcol         # hx == 0 ?
        # diagonal: (a + b + c + d + 2) >> 2
        add  t1, t9, t4
        lbu  t1, 0(t1)        # b = ref[Y][X+hx]
        add  t0, t0, t1
        add  t1, t9, t3
        lbu  t2, 0(t1)        # c = ref[Y+hy][X]
        add  t0, t0, t2
        add  t1, t1, t4
        lbu  t1, 0(t1)        # d = ref[Y+hy][X+hx]
        add  t0, t0, t1
        addi t0, t0, 2
        srl  t0, t0, 2
        b    hpix
hrow:   # hy==0, hx!=0: (a + b + 1) >> 1
        add  t1, t9, t4
        lbu  t1, 0(t1)
        add  t0, t0, t1
        addi t0, t0, 1
        srl  t0, t0, 1
        b    hpix
hcol:   # hx==0, hy!=0: (a + c + 1) >> 1
        add  t1, t9, t3
        lbu  t1, 0(t1)
        add  t0, t0, t1
        addi t0, t0, 1
        srl  t0, t0, 1
hpix:   lbu  t1, 0(t8)        # cur pixel
        sub  t1, t1, t0
        bge  t1, zero, habs
        neg  t1, t1
habs:   add  t6, t6, t1
        addi t8, t8, 1
        addi t9, t9, 1
        subi t5, t5, 1
        bnez t5, hsadp
        addi t8, t8, 80
        addi t9, t9, 80
        subi t7, t7, 1
        bnez t7, hsadr
        bgeu t6, fp, hnext
        move fp, t6
        move s5, gp
hnext:  addi gp, gp, 1
        li   t0, 9
        bne  gp, t0, hloop
        li   t0, 13
        mul  t1, fp, t0
        add  s0, s0, t1
        add  s0, s0, s5
        addi s1, s1, 1
        li   t0, 9
        bne  s1, t0, blk
        move v0, s0
        halt

        .data
refb:   .space 9216
curb:   .space 9216
)";

}  // namespace

Workload make_mpeg2() {
  Workload w;
  w.name = "mpeg2";
  w.suite = "mediabench";
  w.description = "SAD motion estimation over two 96x96 frames";
  w.source = kMpeg2Source;
  w.expected_checksum = mpeg2_reference();
  return w;
}

}  // namespace stcache
