// Embedded benchmark kernels.
//
// The paper evaluates 13 Powerstone and 6 MediaBench benchmarks. The
// binaries and inputs of those suites are not redistributable, so (per the
// substitution policy in DESIGN.md) we implement the same kernels in the
// stcache assembly language, sized so that their instruction working sets
// and data locality span the range the paper's Table 1 exhibits — tiny
// bit-twiddling loops (bcnt, bilv), table-driven streaming codecs (crc,
// adpcm, g3fax), stencil and block-transform media kernels (tv, jpeg,
// epic, mpeg2), and pointer/recursion-heavy code (ucbqsort, binary).
//
// Every workload carries a C++ reference implementation of its checksum:
// after the ISS runs the kernel to completion, register v0 must equal the
// reference value. This validates the assembler, the ISS, and the kernel
// itself before any cache statistics are trusted.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/cpu.hpp"
#include "trace/stream.hpp"
#include "trace/trace.hpp"

namespace stcache {

struct Workload {
  std::string name;
  std::string suite;        // "powerstone" | "mediabench" | "synthetic"
  std::string description;
  std::string source;       // assembly text
  std::uint32_t mem_bytes = 1u << 21;
  std::uint64_t max_instructions = 80'000'000;
  // Expected value of v0 at halt (the kernel's self-checksum), computed by
  // an independent C++ reference implementation.
  std::uint32_t expected_checksum = 0;
};

// The 19 kernels, in the paper's Table 1 order (13 Powerstone, then 6
// MediaBench).
const std::vector<Workload>& all_workloads();

// Look up one workload by name; throws stcache::Error if unknown.
const Workload& find_workload(const std::string& name);

// Assemble and execute `w` against a perfect memory, verifying the
// checksum; returns the run result. Throws on checksum mismatch.
RunResult run_functional(const Workload& w);

// Assemble and execute `w`, capturing the full address trace. The checksum
// is verified. (Trace capture uses 1-cycle accesses; timing is applied at
// replay time.)
Trace capture_trace(const Workload& w);

// Fast-interpreter capture: the two split streams already in pack_stream()
// format (bit 31 = write, bits 30..0 = 16 B block). Checksum verified.
// Equivalent to split_trace(capture_trace(w)) + pack_stream on each half —
// the differential suite (tests/fast_cpu_test.cpp) proves it bit-identical
// — at several times the reference interpreter's throughput and without
// the TraceRecord AoS intermediate.
struct PackedCapture {
  std::vector<std::uint32_t> ifetch;
  std::vector<std::uint32_t> data;
  RunResult run;
};
PackedCapture capture_packed(const Workload& w);

// Streaming capture: run the fast interpreter on a producer thread and
// fold each packed chunk into `consume` as it is published (in capture
// order; each chunk carries both split streams). The checksum is verified
// before the final chunk is released, so a consumer never folds a chunk
// of a run that later fails verification into durable state without the
// surrounding call throwing. Returns the run result.
RunResult stream_workload(const Workload& w,
                          const std::function<void(const PackedChunk&)>& consume);

// The deterministic 32-bit LCG all kernels use to self-generate input data
// (x <- x * 1103515245 + 12345). Reference implementations share it.
inline std::uint32_t lcg_next(std::uint32_t x) {
  return x * 1103515245u + 12345u;
}

}  // namespace stcache
