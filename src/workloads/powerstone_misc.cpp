// Powerstone-like kernels with mixed control/data behavior: g3fax (run-
// length fill), ucbqsort (iterative quicksort), tv (Sobel edge detect).
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "workloads/workload.hpp"

namespace stcache {

// ---------------------------------------------------------------------------
// g3fax: alternating-color run-length expansion into a 48 KB scanline
// buffer, 2 passes, plus a strided checksum sweep.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kFaxBytes = 49152;

std::uint32_t g3fax_reference() {
  std::vector<std::uint8_t> out(kFaxBytes);
  std::uint32_t x = 771;
  for (int pass = 0; pass < 2; ++pass) {
    std::uint32_t remaining = kFaxBytes;
    std::uint32_t color = 0;
    std::size_t pos = 0;
    while (remaining > 0) {
      x = lcg_next(x);
      std::uint32_t len = ((x >> 5) & 63u) + 1;
      if (len > remaining) len = remaining;
      remaining -= len;
      const std::uint8_t value = color ? 0xFF : 0x00;
      for (std::uint32_t i = 0; i < len; ++i) out[pos++] = value;
      color ^= 1;
    }
  }
  std::uint32_t checksum = 0;
  for (std::uint32_t i = 0; i < kFaxBytes; i += 97) checksum += out[i];

  // Re-encode stage (what a fax codec's round trip does): scan the
  // expanded bitmap back into runs, folding the run count and every 64th
  // run's length into the checksum.
  std::uint32_t runs = 0;
  std::uint32_t run_len = 1;
  for (std::uint32_t i = 1; i < kFaxBytes; ++i) {
    if (out[i] == out[i - 1]) {
      ++run_len;
      continue;
    }
    if (runs % 64 == 0) checksum += run_len;
    ++runs;
    run_len = 1;
  }
  ++runs;
  return checksum + runs * 3u;
}

constexpr char kG3faxSource[] = R"(
# g3fax: run-length expansion of alternating black/white runs, 2 passes.
        .text
main:   li   t2, 771
        li   s7, 1103515245
        li   s6, 2
pass:   la   s1, outbuf
        li   s2, 49152
        li   s3, 0
runs:   mul  t2, t2, s7
        addi t2, t2, 12345
        srl  t0, t2, 5
        andi t0, t0, 63
        addi t0, t0, 1
        bleu t0, s2, lenok
        move t0, s2
lenok:  sub  s2, s2, t0
        li   t1, 0
        beqz s3, fill
        li   t1, 0xFF
fill:   sb   t1, 0(s1)
        addi s1, s1, 1
        subi t0, t0, 1
        bnez t0, fill
        xori s3, s3, 1
        bnez s2, runs
        subi s6, s6, 1
        bnez s6, pass
        li   s0, 0
        la   s1, outbuf
        li   t3, 0
        li   t4, 49152
cks:    add  t5, s1, t3
        lbu  t6, 0(t5)
        add  s0, s0, t6
        addi t3, t3, 97
        bltu t3, t4, cks
        # ---- re-encode: scan the bitmap back into runs ----
        la   s1, outbuf
        lbu  t0, 0(s1)        # previous byte
        addi s1, s1, 1
        li   t1, 49151        # bytes remaining (kFaxBytes - 1)
        li   t2, 0            # runs
        li   t3, 1            # current run length
renc:   lbu  t4, 0(s1)
        beq  t4, t0, rsame
        andi t5, t2, 63       # every 64th run folds its length in
        bnez t5, rskip
        add  s0, s0, t3
rskip:  addi t2, t2, 1
        li   t3, 1
        move t0, t4
        b    rnext
rsame:  addi t3, t3, 1
rnext:  addi s1, s1, 1
        subi t1, t1, 1
        bnez t1, renc
        addi t2, t2, 1
        li   t0, 3
        mul  t1, t2, t0
        add  s0, s0, t1
        move v0, s0
        halt

        .data
outbuf: .space 49152
)";

}  // namespace

Workload make_g3fax() {
  Workload w;
  w.name = "g3fax";
  w.suite = "powerstone";
  w.description = "run-length expand + re-encode round trip over a 48 KB scanline buffer";
  w.source = kG3faxSource;
  w.expected_checksum = g3fax_reference();
  return w;
}

// ---------------------------------------------------------------------------
// ucbqsort: iterative quicksort (Lomuto partition, explicit segment stack)
// of 4096 words.
// ---------------------------------------------------------------------------

namespace {

std::uint32_t ucbqsort_reference() {
  std::vector<std::uint32_t> arr(4096);
  std::uint32_t x = 41;
  for (auto& v : arr) {
    x = lcg_next(x);
    v = x;
  }
  std::sort(arr.begin(), arr.end());
  std::uint32_t checksum = 0;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    checksum ^= arr[i] + static_cast<std::uint32_t>(i);
  }
  return checksum;
}

constexpr char kUcbqsortSource[] = R"(
# ucbqsort: iterative quicksort of 4096 words with an explicit stack.
        .text
main:   la   t0, arr
        li   t1, 4096
        li   t2, 41
        li   t3, 1103515245
gen:    mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen
        la   s4, arr
        la   s6, stack
        li   t0, 0
        li   t1, 4095
        sw   t0, 0(s6)
        sw   t1, 4(s6)
        li   s5, 8
qloop:  beqz s5, qdone
        subi s5, s5, 8
        add  t9, s6, s5
        lw   t7, 0(t9)
        lw   t8, 4(t9)
        bge  t7, t8, qloop
        # Lomuto partition with arr[hi] as pivot
        sll  t0, t8, 2
        add  t0, t0, s4
        lw   t6, 0(t0)
        move t1, t7
        move t2, t7
ploop:  bge  t2, t8, pdone
        sll  t3, t2, 2
        add  t3, t3, s4
        lw   t4, 0(t3)
        bgeu t4, t6, pnext
        sll  t5, t1, 2
        add  t5, t5, s4
        lw   t0, 0(t5)
        sw   t4, 0(t5)
        sw   t0, 0(t3)
        addi t1, t1, 1
pnext:  addi t2, t2, 1
        b    ploop
pdone:  sll  t3, t8, 2
        add  t3, t3, s4
        lw   t4, 0(t3)
        sll  t5, t1, 2
        add  t5, t5, s4
        lw   t0, 0(t5)
        sw   t4, 0(t5)
        sw   t0, 0(t3)
        subi t4, t1, 1
        add  t9, s6, s5
        sw   t7, 0(t9)
        sw   t4, 4(t9)
        addi s5, s5, 8
        addi t4, t1, 1
        add  t9, s6, s5
        sw   t4, 0(t9)
        sw   t8, 4(t9)
        addi s5, s5, 8
        b    qloop
qdone:  li   s0, 0
        la   s1, arr
        li   t3, 0
        li   t4, 4096
cks:    lw   t5, 0(s1)
        add  t5, t5, t3
        xor  s0, s0, t5
        addi s1, s1, 4
        addi t3, t3, 1
        bne  t3, t4, cks
        move v0, s0
        halt

        .data
arr:    .space 16384
        .space 176            # stagger the segment stack off the array
stack:  .space 32768
)";

}  // namespace

Workload make_ucbqsort() {
  Workload w;
  w.name = "ucbqsort";
  w.suite = "powerstone";
  w.description = "iterative quicksort of 4096 words";
  w.source = kUcbqsortSource;
  w.expected_checksum = ucbqsort_reference();
  return w;
}

// ---------------------------------------------------------------------------
// tv: Sobel edge detection over a 128x128 greyscale image.
// ---------------------------------------------------------------------------

namespace {

constexpr int kTvDim = 128;

std::uint32_t tv_reference() {
  std::vector<std::uint8_t> img(kTvDim * kTvDim);
  std::uint32_t x = 3;
  for (auto& p : img) {
    x = lcg_next(x);
    p = static_cast<std::uint8_t>(x >> 16);
  }
  auto at = [&](int y, int xx) { return static_cast<int>(img[y * kTvDim + xx]); };
  std::uint32_t checksum = 0;
  for (int y = 1; y < kTvDim - 1; ++y) {
    for (int xx = 1; xx < kTvDim - 1; ++xx) {
      const int gx = (at(y - 1, xx + 1) + 2 * at(y, xx + 1) + at(y + 1, xx + 1)) -
                     (at(y - 1, xx - 1) + 2 * at(y, xx - 1) + at(y + 1, xx - 1));
      const int gy = (at(y + 1, xx - 1) + 2 * at(y + 1, xx) + at(y + 1, xx + 1)) -
                     (at(y - 1, xx - 1) + 2 * at(y - 1, xx) + at(y - 1, xx + 1));
      int sum = std::abs(gx) + std::abs(gy);
      if (sum > 255) sum = 255;
      checksum += static_cast<std::uint32_t>(sum);
    }
  }
  return checksum;
}

constexpr char kTvSource[] = R"(
# tv: Sobel edge detect over a 128x128 image.
        .text
main:   la   t0, img
        li   t1, 16384
        li   t2, 3
        li   t3, 1103515245
gen:    mul  t2, t2, t3
        addi t2, t2, 12345
        srl  t4, t2, 16
        sb   t4, 0(t0)
        addi t0, t0, 1
        subi t1, t1, 1
        bnez t1, gen
        li   s0, 0            # checksum
        li   s1, 1            # y
        li   s2, 127          # y limit
        la   s3, img
        la   s4, out
yloop:  li   s5, 1            # x
        sll  t0, s1, 7
        add  t6, s3, t0       # &img[y][0]
        add  t7, s4, t0       # &out[y][0]
xloop:  add  t9, t6, s5       # center
        # gx = (tr + 2*mr + br) - (tl + 2*ml + bl)
        lbu  t0, -127(t9)
        lbu  t1, 1(t9)
        lbu  t2, 129(t9)
        sll  t1, t1, 1
        add  t0, t0, t1
        add  t0, t0, t2       # right column
        lbu  t1, -129(t9)
        lbu  t2, -1(t9)
        lbu  t3, 127(t9)
        sll  t2, t2, 1
        add  t1, t1, t2
        add  t1, t1, t3       # left column
        sub  t8, t0, t1       # gx
        bge  t8, zero, gxok
        neg  t8, t8
gxok:   # gy = (bl + 2*bm + br) - (tl + 2*tm + tr)
        lbu  t0, 127(t9)
        lbu  t1, 128(t9)
        lbu  t2, 129(t9)
        sll  t1, t1, 1
        add  t0, t0, t1
        add  t0, t0, t2       # bottom row
        lbu  t1, -129(t9)
        lbu  t2, -128(t9)
        lbu  t3, -127(t9)
        sll  t2, t2, 1
        add  t1, t1, t2
        add  t1, t1, t3       # top row
        sub  t0, t0, t1       # gy
        bge  t0, zero, gyok
        neg  t0, t0
gyok:   add  t8, t8, t0
        li   t1, 255
        ble  t8, t1, clampd
        move t8, t1
clampd: add  t0, t7, s5
        sb   t8, 0(t0)
        add  s0, s0, t8
        addi s5, s5, 1
        bne  s5, s2, xloop
        addi s1, s1, 1
        bne  s1, s2, yloop
        move v0, s0
        halt

        .data
img:    .space 16384
        .space 208            # stagger out so stencil writes do not alias
out:    .space 16384
)";

}  // namespace

Workload make_tv() {
  Workload w;
  w.name = "tv";
  w.suite = "powerstone";
  w.description = "Sobel edge detection over a 128x128 image";
  w.source = kTvSource;
  w.expected_checksum = tv_reference();
  return w;
}

}  // namespace stcache
