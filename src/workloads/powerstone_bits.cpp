// Powerstone-like bit-manipulation kernels: crc, bcnt, bilv, binary, blit,
// brev. Each workload's assembly self-generates its input with the shared
// LCG and leaves a checksum in v0; the C++ reference implementations below
// compute the expected value independently.
#include <cstdint>
#include <vector>

#include "workloads/workload.hpp"

namespace stcache {

namespace {

// Fill `words` successive LCG values starting from `seed`, as the kernels'
// generator loops do; returns the final LCG state.
std::uint32_t lcg_fill(std::vector<std::uint32_t>& out, std::uint32_t seed,
                       std::size_t words) {
  out.resize(words);
  std::uint32_t x = seed;
  for (std::size_t i = 0; i < words; ++i) {
    x = lcg_next(x);
    out[i] = x;
  }
  return x;
}

std::vector<std::uint8_t> words_to_bytes(const std::vector<std::uint32_t>& w) {
  std::vector<std::uint8_t> b;
  b.reserve(w.size() * 4);
  for (std::uint32_t v : w) {
    b.push_back(static_cast<std::uint8_t>(v));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
    b.push_back(static_cast<std::uint8_t>(v >> 16));
    b.push_back(static_cast<std::uint8_t>(v >> 24));
  }
  return b;
}

}  // namespace

// ---------------------------------------------------------------------------
// crc: table-driven CRC-32 over an 8 KB message, 8 passes.
// ---------------------------------------------------------------------------

namespace {

std::uint32_t crc_reference() {
  std::vector<std::uint32_t> msg_words;
  lcg_fill(msg_words, 12345, 2048);
  const std::vector<std::uint8_t> msg = words_to_bytes(msg_words);

  std::uint32_t tbl[256];
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (c >> 1) ^ 0xEDB88320u : c >> 1;
    }
    tbl[i] = c;
  }
  std::uint32_t c = 0xFFFFFFFFu;
  for (int pass = 0; pass < 8; ++pass) {
    for (std::uint8_t b : msg) {
      c = tbl[(c ^ b) & 0xffu] ^ (c >> 8);
    }
  }
  return ~c;
}

constexpr char kCrcSource[] = R"(
# crc: CRC-32 of an 8 KB LCG-generated message, 8 passes.
        .text
main:   la   s4, tbl
        # generate message (2048 words, seed 12345)
        la   t0, msg
        li   t1, 2048
        li   t2, 12345
        li   t3, 1103515245
gen:    mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen
        # build the CRC-32 table
        la   t0, tbl
        li   t1, 0
        li   t5, 0xEDB88320
        li   t6, 256
tblgen: move t2, t1
        li   t3, 8
tblbit: andi t4, t2, 1
        srl  t2, t2, 1
        beqz t4, tskip
        xor  t2, t2, t5
tskip:  subi t3, t3, 1
        bnez t3, tblbit
        sw   t2, 0(t0)
        addi t0, t0, 4
        addi t1, t1, 1
        bne  t1, t6, tblgen
        # 8 passes of CRC over the message
        li   s0, 0xFFFFFFFF
        li   s3, 8
pass:   la   s1, msg
        li   s2, 8192
byte:   lbu  t0, 0(s1)
        xor  t1, s0, t0
        andi t1, t1, 0xff
        sll  t1, t1, 2
        add  t1, t1, s4
        lw   t1, 0(t1)
        srl  t0, s0, 8
        xor  s0, t1, t0
        addi s1, s1, 1
        subi s2, s2, 1
        bnez s2, byte
        subi s3, s3, 1
        bnez s3, pass
        not  v0, s0
        halt

        .data
tbl:    .space 1024
msg:    .space 8192
)";

}  // namespace

Workload make_crc() {
  Workload w;
  w.name = "crc";
  w.suite = "powerstone";
  w.description = "table-driven CRC-32 over an 8 KB message (8 passes)";
  w.source = kCrcSource;
  w.expected_checksum = crc_reference();
  return w;
}

// ---------------------------------------------------------------------------
// bcnt: SWAR population count over 16 KB, 6 passes.
// ---------------------------------------------------------------------------

namespace {

std::uint32_t bcnt_reference() {
  std::vector<std::uint32_t> buf;
  lcg_fill(buf, 99, 4096);
  std::uint32_t total = 0;
  for (int pass = 0; pass < 6; ++pass) {
    for (std::uint32_t x : buf) {
      x = x - ((x >> 1) & 0x55555555u);
      x = (x & 0x33333333u) + ((x >> 2) & 0x33333333u);
      x = (x + (x >> 4)) & 0x0F0F0F0Fu;
      x = (x * 0x01010101u) >> 24;
      total += x;
    }
  }
  return total;
}

constexpr char kBcntSource[] = R"(
# bcnt: SWAR popcount over a 16 KB buffer, 6 passes.
        .text
main:   la   t0, buf
        li   t1, 4096
        li   t2, 99
        li   t3, 1103515245
gen:    mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen
        li   s1, 0x55555555
        li   s2, 0x33333333
        li   s3, 0x0F0F0F0F
        li   s4, 0x01010101
        li   s0, 0
        li   s6, 6
pass:   la   t0, buf
        li   t1, 4096
loop:   lw   t2, 0(t0)
        srl  t3, t2, 1
        and  t3, t3, s1
        sub  t2, t2, t3
        srl  t3, t2, 2
        and  t3, t3, s2
        and  t2, t2, s2
        add  t2, t2, t3
        srl  t3, t2, 4
        add  t2, t2, t3
        and  t2, t2, s3
        mul  t2, t2, s4
        srl  t2, t2, 24
        add  s0, s0, t2
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, loop
        subi s6, s6, 1
        bnez s6, pass
        move v0, s0
        halt

        .data
buf:    .space 16384
)";

}  // namespace

Workload make_bcnt() {
  Workload w;
  w.name = "bcnt";
  w.suite = "powerstone";
  w.description = "SWAR population count over 16 KB (6 passes)";
  w.source = kBcntSource;
  w.expected_checksum = bcnt_reference();
  return w;
}

// ---------------------------------------------------------------------------
// bilv: bit interleave (Morton encode) of 2048 words, 2 passes.
// ---------------------------------------------------------------------------

namespace {

std::uint32_t bilv_reference() {
  std::vector<std::uint32_t> src;
  lcg_fill(src, 7, 2048);
  std::uint32_t checksum = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t v : src) {
      std::uint32_t a = v & 0xffffu;
      std::uint32_t b = v >> 16;
      std::uint32_t r = 0;
      for (int i = 0; i < 16; ++i) {
        r |= ((a >> i) & 1u) << (2 * i);
        r |= ((b >> i) & 1u) << (2 * i + 1);
      }
      checksum ^= r;
    }
  }
  return checksum;
}

constexpr char kBilvSource[] = R"(
# bilv: Morton bit-interleave of 2048 words, 2 passes.
        .text
main:   la   t0, src
        li   t1, 2048
        li   t2, 7
        li   t3, 1103515245
gen:    mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen
        li   s0, 0
        li   s5, 2
pass:   la   s1, src
        la   s2, dst
        li   s3, 2048
word:   lw   t0, 0(s1)
        andi t1, t0, 0xFFFF
        srl  t2, t0, 16
        li   t3, 0
        li   t4, 0
        li   t7, 16
bit:    andi t5, t1, 1
        srl  t1, t1, 1
        sll  t6, t4, 1
        sllv t5, t5, t6
        or   t3, t3, t5
        andi t5, t2, 1
        srl  t2, t2, 1
        addi t6, t6, 1
        sllv t5, t5, t6
        or   t3, t3, t5
        addi t4, t4, 1
        bne  t4, t7, bit
        sw   t3, 0(s2)
        xor  s0, s0, t3
        addi s1, s1, 4
        addi s2, s2, 4
        subi s3, s3, 1
        bnez s3, word
        subi s5, s5, 1
        bnez s5, pass
        move v0, s0
        halt

        .data
src:    .space 8192
        .space 112            # stagger dst so the planes do not alias
dst:    .space 8192
)";

}  // namespace

Workload make_bilv() {
  Workload w;
  w.name = "bilv";
  w.suite = "powerstone";
  w.description = "Morton bit-interleave of 2048 words (2 passes)";
  w.source = kBilvSource;
  w.expected_checksum = bilv_reference();
  return w;
}

// ---------------------------------------------------------------------------
// binary: 8000 binary searches over a sorted 4096-entry table.
// ---------------------------------------------------------------------------

namespace {

std::uint32_t binary_reference() {
  std::vector<std::uint32_t> arr(4096);
  std::uint32_t x = 31;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    x = lcg_next(x);
    arr[i] = 13 * i + (x & 7u);
  }
  std::uint32_t checksum = 0;
  for (int n = 0; n < 8000; ++n) {
    x = lcg_next(x);
    const std::uint32_t key = (x >> 8) % 53248u;
    std::uint32_t lo = 0, hi = 4096;
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) >> 1;
      if (arr[mid] == key) {
        checksum += mid;
        break;
      }
      if (arr[mid] < key) lo = mid + 1;
      else hi = mid;
    }
    checksum += 1;
  }
  return checksum;
}

constexpr char kBinarySource[] = R"(
# binary: 8000 binary searches over a sorted 16 KB table.
        .text
main:   la   t0, arr
        li   t1, 0
        li   t6, 4096
        li   t2, 31
        li   t3, 1103515245
        li   t7, 13
geni:   mul  t2, t2, t3
        addi t2, t2, 12345
        andi t4, t2, 7
        mul  t5, t1, t7
        add  t5, t5, t4
        sw   t5, 0(t0)
        addi t0, t0, 4
        addi t1, t1, 1
        bne  t1, t6, geni
        li   s0, 0
        li   s1, 8000
        li   s2, 53248
        la   s3, arr
srch:   mul  t2, t2, t3
        addi t2, t2, 12345
        srl  t4, t2, 8
        remu t4, t4, s2
        li   t0, 0
        li   t1, 4096
bs:     bgeu t0, t1, notf
        add  t5, t0, t1
        srl  t5, t5, 1
        sll  t6, t5, 2
        add  t6, t6, s3
        lw   t6, 0(t6)
        beq  t6, t4, found
        bltu t6, t4, gor
        move t1, t5
        b    bs
gor:    addi t0, t5, 1
        b    bs
found:  add  s0, s0, t5
notf:   addi s0, s0, 1
        subi s1, s1, 1
        bnez s1, srch
        move v0, s0
        halt

        .data
arr:    .space 16384
)";

}  // namespace

Workload make_binary() {
  Workload w;
  w.name = "binary";
  w.suite = "powerstone";
  w.description = "8000 binary searches over a sorted 16 KB table";
  w.source = kBinarySource;
  w.expected_checksum = binary_reference();
  return w;
}

// ---------------------------------------------------------------------------
// blit: bitmap OR-blit, 8192 words per plane, 3 passes + checksum sweep.
// ---------------------------------------------------------------------------

namespace {

std::uint32_t blit_reference() {
  std::vector<std::uint32_t> src1, src2;
  lcg_fill(src1, 1, 8192);
  lcg_fill(src2, 2, 8192);
  std::vector<std::uint32_t> dst(8192);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src1[i] | src2[i];
  }
  std::uint32_t checksum = 0;
  for (std::uint32_t v : dst) checksum ^= v;
  return checksum;
}

constexpr char kBlitSource[] = R"(
# blit: OR-combine two 32 KB bitmap planes into a third, 3 passes.
        .text
main:   la   t0, src1
        li   t1, 8192
        li   t2, 1
        li   t3, 1103515245
gen1:   mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen1
        la   t0, src2
        li   t1, 8192
        li   t2, 2
gen2:   mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen2
        li   s5, 3
pass:   la   s1, src1
        la   s2, src2
        la   s3, dst
        li   s4, 8192
loop:   lw   t0, 0(s1)
        lw   t1, 0(s2)
        or   t2, t0, t1
        sw   t2, 0(s3)
        addi s1, s1, 4
        addi s2, s2, 4
        addi s3, s3, 4
        subi s4, s4, 1
        bnez s4, loop
        subi s5, s5, 1
        bnez s5, pass
        li   s0, 0
        la   s3, dst
        li   s4, 8192
sum:    lw   t0, 0(s3)
        xor  s0, s0, t0
        addi s3, s3, 4
        subi s4, s4, 1
        bnez s4, sum
        move v0, s0
        halt

        .data
src1:   .space 32768
        .space 96             # stagger the planes across cache sets
src2:   .space 32768
        .space 160
dst:    .space 32768
)";

}  // namespace

Workload make_blit() {
  Workload w;
  w.name = "blit";
  w.suite = "powerstone";
  w.description = "OR-blit of two 32 KB bitmap planes (3 passes)";
  w.source = kBlitSource;
  w.expected_checksum = blit_reference();
  return w;
}

// ---------------------------------------------------------------------------
// brev: bit-reverse 2048 words into mirrored positions, 6 passes.
// ---------------------------------------------------------------------------

namespace {

std::uint32_t brev_word(std::uint32_t x) {
  x = ((x >> 1) & 0x55555555u) | ((x & 0x55555555u) << 1);
  x = ((x >> 2) & 0x33333333u) | ((x & 0x33333333u) << 2);
  x = ((x >> 4) & 0x0F0F0F0Fu) | ((x & 0x0F0F0F0Fu) << 4);
  x = ((x >> 8) & 0x00FF00FFu) | ((x & 0x00FF00FFu) << 8);
  return (x >> 16) | (x << 16);
}

std::uint32_t brev_reference() {
  std::vector<std::uint32_t> buf;
  lcg_fill(buf, 5, 2048);
  std::vector<std::uint32_t> out(2048);
  std::uint32_t checksum = 0;
  for (int pass = 0; pass < 6; ++pass) {
    for (std::size_t i = 0; i < buf.size(); ++i) {
      const std::uint32_t r = brev_word(buf[i]);
      out[2047 - i] = r;
      checksum ^= r + static_cast<std::uint32_t>(i);
    }
  }
  return checksum;
}

constexpr char kBrevSource[] = R"(
# brev: bit-reverse each word of an 8 KB buffer into the mirrored slot.
        .text
main:   la   t0, buf
        li   t1, 2048
        li   t2, 5
        li   t3, 1103515245
gen:    mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, gen
        li   s1, 0x55555555
        li   s2, 0x33333333
        li   s3, 0x0F0F0F0F
        li   s4, 0x00FF00FF
        li   s0, 0
        li   s7, 6
pass:   la   s5, buf
        la   s6, out+8188     # &out[2047]
        li   t7, 0            # i
        li   t8, 2048
word:   lw   t0, 0(s5)
        # swap odd/even bits
        srl  t1, t0, 1
        and  t1, t1, s1
        and  t2, t0, s1
        sll  t2, t2, 1
        or   t0, t1, t2
        # swap bit pairs
        srl  t1, t0, 2
        and  t1, t1, s2
        and  t2, t0, s2
        sll  t2, t2, 2
        or   t0, t1, t2
        # swap nibbles
        srl  t1, t0, 4
        and  t1, t1, s3
        and  t2, t0, s3
        sll  t2, t2, 4
        or   t0, t1, t2
        # swap bytes
        srl  t1, t0, 8
        and  t1, t1, s4
        and  t2, t0, s4
        sll  t2, t2, 8
        or   t0, t1, t2
        # swap halves
        srl  t1, t0, 16
        sll  t2, t0, 16
        or   t0, t1, t2
        sw   t0, 0(s6)
        add  t0, t0, t7
        xor  s0, s0, t0
        addi s5, s5, 4
        subi s6, s6, 4
        addi t7, t7, 1
        bne  t7, t8, word
        subi s7, s7, 1
        bnez s7, pass
        move v0, s0
        halt

        .data
buf:    .space 8192
        .space 80             # stagger out so mirrored writes do not alias
out:    .space 8192
)";

}  // namespace

Workload make_brev() {
  Workload w;
  w.name = "brev";
  w.suite = "powerstone";
  w.description = "bit-reversal of an 8 KB buffer into mirrored positions (6 passes)";
  w.source = kBrevSource;
  w.expected_checksum = brev_reference();
  return w;
}

}  // namespace stcache
