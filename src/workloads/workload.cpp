#include "workloads/workload.hpp"

#include <chrono>
#include <cstdio>

#include "isa/assembler.hpp"
#include "sim/fast_cpu.hpp"
#include "sim/memory_system.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace stcache {

// Factory functions, one translation unit per suite group.
Workload make_crc();
Workload make_bcnt();
Workload make_bilv();
Workload make_binary();
Workload make_blit();
Workload make_brev();
Workload make_fir();
Workload make_g3fax();
Workload make_ucbqsort();
Workload make_adpcm();
Workload make_padpcm();
Workload make_auto();
Workload make_tv();
Workload make_jpeg();
Workload make_pjpeg();
Workload make_epic();
Workload make_g721();
Workload make_pegwit();
Workload make_mpeg2();

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kAll = [] {
    std::vector<Workload> w;
    // Powerstone (paper Table 1 order).
    w.push_back(make_padpcm());
    w.push_back(make_crc());
    w.push_back(make_auto());
    w.push_back(make_bcnt());
    w.push_back(make_bilv());
    w.push_back(make_binary());
    w.push_back(make_blit());
    w.push_back(make_brev());
    w.push_back(make_g3fax());
    w.push_back(make_fir());
    w.push_back(make_jpeg());
    w.push_back(make_pjpeg());
    w.push_back(make_ucbqsort());
    w.push_back(make_tv());
    // MediaBench.
    w.push_back(make_adpcm());
    w.push_back(make_epic());
    w.push_back(make_g721());
    w.push_back(make_pegwit());
    w.push_back(make_mpeg2());
    return w;
  }();
  return kAll;
}

const Workload& find_workload(const std::string& name) {
  for (const Workload& w : all_workloads()) {
    if (w.name == name) return w;
  }
  fail("find_workload: unknown workload '" + name + "'");
}

namespace {

// Shared halt/checksum verification: both interpreters must run the kernel
// to completion and leave the reference checksum in v0 before any of its
// trace is trusted.
void check_run(const Workload& w, const RunResult& r, std::uint32_t v0) {
  if (!r.halted) {
    fail("workload '" + w.name + "' exceeded its instruction budget (" +
         std::to_string(w.max_instructions) + ")");
  }
  if (v0 != w.expected_checksum) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "checksum mismatch: got 0x%08x, expected 0x%08x", v0,
                  w.expected_checksum);
    fail("workload '" + w.name + "': " + buf);
  }
}

RunResult execute(const Workload& w, MemorySystem& mem) {
  const Program program = assemble(w.source, w.name);
  Cpu cpu(program, mem, w.mem_bytes);
  RunResult r = cpu.run(w.max_instructions);
  check_run(w, r, cpu.reg(kV0));
  return r;
}

// Simulator throughput on stderr (gated: util/metrics.hpp); stdout stays
// reserved for tables/figures.
void sim_metric(const Workload& w, const RunResult& r, double seconds) {
  if (!metrics_enabled()) return;
  std::fprintf(stderr,
               "[sim] %s: %llu instructions in %.3f s (%.3g instructions/s)\n",
               w.name.c_str(), static_cast<unsigned long long>(r.instructions),
               seconds, static_cast<double>(r.instructions) / seconds);
}

}  // namespace

RunResult run_functional(const Workload& w) {
  PerfectMemory mem;
  return execute(w, mem);
}

Trace capture_trace(const Workload& w) {
  TracingMemory mem;
  mem.reserve(static_cast<std::size_t>(w.max_instructions / 4));
  const auto start = std::chrono::steady_clock::now();
  const RunResult r = execute(w, mem);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  sim_metric(w, r, elapsed.count());
  return mem.take();
}

PackedCapture capture_packed(const Workload& w) {
  const Program program = assemble(w.source, w.name);
  FastCpu cpu(program, w.mem_bytes);
  PackedBufferSink sink;
  const auto start = std::chrono::steady_clock::now();
  const RunResult r = cpu.run(w.max_instructions, sink);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  check_run(w, r, cpu.reg(kV0));
  sim_metric(w, r, elapsed.count());
  PackedCapture out;
  out.ifetch = sink.take_ifetch();
  out.data = sink.take_data();
  out.run = r;
  return out;
}

RunResult stream_workload(
    const Workload& w, const std::function<void(const PackedChunk&)>& consume) {
  const Program program = assemble(w.source, w.name);
  FastCpu cpu(program, w.mem_bytes);  // built here; touched only by the producer
  const auto start = std::chrono::steady_clock::now();
  const RunResult r = stream_capture(
      [&](PackedSink& sink) {
        const RunResult rr = cpu.run(w.max_instructions, sink);
        // Verify on the producer thread, before the tail chunk is
        // published: a failing run reaches the consumer as an error, never
        // as a complete-looking stream.
        check_run(w, rr, cpu.reg(kV0));
        return rr;
      },
      consume);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  sim_metric(w, r, elapsed.count());
  return r;
}

}  // namespace stcache
