// Powerstone-like DSP/control kernels: fir, adpcm, padpcm, auto.
//
// padpcm and auto generate parts of their assembly programmatically (cloned
// codec blocks, a bank of dispatched control functions) to reproduce the
// larger instruction working sets those benchmarks show in the paper's
// Table 1; the C++ references replicate the generated code exactly.
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace stcache {

namespace {

std::uint32_t lcg_fill_words(std::vector<std::uint32_t>& out, std::uint32_t seed,
                             std::size_t words) {
  out.resize(words);
  std::uint32_t x = seed;
  for (std::size_t i = 0; i < words; ++i) {
    x = lcg_next(x);
    out[i] = x;
  }
  return x;
}

}  // namespace

// ---------------------------------------------------------------------------
// fir: 64-tap FIR filter over 4096 samples.
// ---------------------------------------------------------------------------

namespace {

std::uint32_t fir_reference() {
  std::vector<std::uint32_t> coef, x;
  lcg_fill_words(coef, 11, 64);
  lcg_fill_words(x, 21, 4096);
  std::uint32_t checksum = 0;
  for (std::uint32_t n = 63; n < 4096; ++n) {
    std::uint32_t acc = 0;
    for (std::uint32_t k = 0; k < 64; ++k) {
      acc += x[n - k] * coef[k];
    }
    checksum ^= acc;
  }
  return checksum;
}

constexpr char kFirSource[] = R"(
# fir: 64-tap FIR over 4096 samples (word arithmetic, wrap-around).
        .text
main:   la   t0, coef
        li   t1, 64
        li   t2, 11
        li   t3, 1103515245
genc:   mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, genc
        la   t0, x
        li   t1, 4096
        li   t2, 21
genx:   mul  t2, t2, t3
        addi t2, t2, 12345
        sw   t2, 0(t0)
        addi t0, t0, 4
        subi t1, t1, 1
        bnez t1, genx
        li   s0, 0
        la   s1, x+252        # &x[63]
        la   s3, y
        li   s2, 4033
        la   s4, coef
firn:   li   t4, 0
        move t5, s1
        move t6, s4
        li   t7, 64
tap:    lw   t0, 0(t5)
        lw   t1, 0(t6)
        mul  t0, t0, t1
        add  t4, t4, t0
        subi t5, t5, 4
        addi t6, t6, 4
        subi t7, t7, 1
        bnez t7, tap
        sw   t4, 0(s3)
        xor  s0, s0, t4
        addi s1, s1, 4
        addi s3, s3, 4
        subi s2, s2, 1
        bnez s2, firn
        move v0, s0
        halt

        .data
coef:   .space 256
        .space 48             # stagger the streams across cache sets
x:      .space 16384
        .space 144
y:      .space 16384
)";

}  // namespace

Workload make_fir() {
  Workload w;
  w.name = "fir";
  w.suite = "powerstone";
  w.description = "64-tap FIR filter over 4096 samples";
  w.source = kFirSource;
  w.expected_checksum = fir_reference();
  return w;
}

// ---------------------------------------------------------------------------
// adpcm: IMA ADPCM encoder over 8192 samples.
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<int, 16> kIndexTable = {-1, -1, -1, -1, 2, 4, 6, 8,
                                             -1, -1, -1, -1, 2, 4, 6, 8};

constexpr std::array<int, 89> kStepTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

// Full encode + decode round trip, mirroring the adpcm kernel: the encoder
// writes its nibble codes to an output buffer and a decoder pass
// reconstructs the signal from them, folding the reconstruction into the
// checksum (a real codec's self-test).
std::uint32_t adpcm_roundtrip_reference(std::uint32_t seed, std::uint32_t count) {
  std::uint32_t x = seed;
  std::int32_t valpred = 0;
  std::int32_t index = 0;
  std::uint32_t checksum = 0;
  std::vector<std::uint8_t> codes(count);
  for (std::uint32_t n = 0; n < count; ++n) {
    x = lcg_next(x);
    const auto sample =
        static_cast<std::int32_t>(static_cast<std::int16_t>(x >> 8));
    std::int32_t step = kStepTable[index];
    std::int32_t diff = sample - valpred;
    std::int32_t sign = 0;
    if (diff < 0) {
      sign = 8;
      diff = -diff;
    }
    std::int32_t delta = 0;
    std::int32_t vpdiff = step >> 3;
    if (diff >= step) {
      delta = 4;
      diff -= step;
      vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
      delta |= 2;
      diff -= step;
      vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
      delta |= 1;
      vpdiff += step;
    }
    if (sign != 0) valpred -= vpdiff;
    else valpred += vpdiff;
    if (valpred > 32767) valpred = 32767;
    else if (valpred < -32768) valpred = -32768;
    delta |= sign;
    codes[n] = static_cast<std::uint8_t>(delta);
    index += kIndexTable[delta];
    if (index < 0) index = 0;
    else if (index > 88) index = 88;
    checksum += static_cast<std::uint32_t>(delta) + (n & 0xffu);
  }
  checksum += static_cast<std::uint32_t>(valpred) * 3u +
              static_cast<std::uint32_t>(index);

  // Decode pass.
  valpred = 0;
  index = 0;
  for (std::uint32_t n = 0; n < count; ++n) {
    const std::uint32_t delta = codes[n];
    std::int32_t step = kStepTable[index];
    std::int32_t vpdiff = step >> 3;
    if (delta & 4) vpdiff += step;
    if (delta & 2) vpdiff += step >> 1;
    if (delta & 1) vpdiff += step >> 2;
    if (delta & 8) valpred -= vpdiff;
    else valpred += vpdiff;
    if (valpred > 32767) valpred = 32767;
    else if (valpred < -32768) valpred = -32768;
    index += kIndexTable[delta];
    if (index < 0) index = 0;
    else if (index > 88) index = 88;
    checksum += static_cast<std::uint32_t>(valpred) & 0xFFFFu;
  }
  return checksum;
}

std::string step_table_words() {
  std::string s;
  for (std::size_t i = 0; i < kStepTable.size(); ++i) {
    s += (i % 8 == 0) ? "\n        .word " : ", ";
    s += std::to_string(kStepTable[i]);
  }
  return s;
}

std::string index_table_words() {
  std::string s = "\n        .word ";
  for (std::size_t i = 0; i < kIndexTable.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(kIndexTable[i]);
  }
  return s;
}

// The encoder loop body, parameterized by a label prefix so padpcm can
// clone it. Register contract:
//   in:  s1 = LCG state, s2 = sample count, s3 = output cursor,
//        s4 = &steptab, s5 = &indextab
//   io:  s0 = checksum, t8 = valpred, t9 = index
//   uses t0..t7; `n & 0xff` counter in s6 (caller clears s6 per block? no —
//   s6 is the absolute sample counter maintained here).
std::string encoder_sample(const std::string& p) {
  std::string a;
  auto L = [&](const std::string& s) { a += s + "\n"; };
  L("        mul  s1, s1, s7");         // s7 = 1103515245 (caller loads)
  L("        addi s1, s1, 12345");
  L("        srl  t0, s1, 8");
  L("        sll  t0, t0, 16");
  L("        sra  t0, t0, 16");          // sample (sign-extended 16-bit)
  // step = steptab[index]
  L("        sll  t1, t9, 2");
  L("        add  t1, t1, s4");
  L("        lw   t1, 0(t1)");           // step
  L("        sub  t2, t0, t8");          // diff = sample - valpred
  L("        li   t3, 0");               // sign
  L("        bge  t2, zero, " + p + "pos");
  L("        li   t3, 8");
  L("        neg  t2, t2");
  L(p + "pos:");
  L("        li   t4, 0");               // delta
  L("        sra  t5, t1, 3");           // vpdiff = step >> 3
  L("        blt  t2, t1, " + p + "s1");
  L("        li   t4, 4");
  L("        sub  t2, t2, t1");
  L("        add  t5, t5, t1");
  L(p + "s1:");
  L("        sra  t1, t1, 1");
  L("        blt  t2, t1, " + p + "s2");
  L("        ori  t4, t4, 2");
  L("        sub  t2, t2, t1");
  L("        add  t5, t5, t1");
  L(p + "s2:");
  L("        sra  t1, t1, 1");
  L("        blt  t2, t1, " + p + "s3");
  L("        ori  t4, t4, 1");
  L("        add  t5, t5, t1");
  L(p + "s3:");
  L("        beqz t3, " + p + "addv");
  L("        sub  t8, t8, t5");
  L("        b    " + p + "clamp");
  L(p + "addv:");
  L("        add  t8, t8, t5");
  L(p + "clamp:");
  L("        li   t6, 32767");
  L("        ble  t8, t6, " + p + "c1");
  L("        move t8, t6");
  L(p + "c1:");
  L("        li   t6, -32768");
  L("        bge  t8, t6, " + p + "c2");
  L("        move t8, t6");
  L(p + "c2:");
  L("        or   t4, t4, t3");          // delta |= sign
  L("        sb   t4, 0(s3)");            // emit the code to the output stream
  L("        addi s3, s3, 1");
  // index += indextab[delta], clamp 0..88
  L("        sll  t6, t4, 2");
  L("        add  t6, t6, s5");
  L("        lw   t6, 0(t6)");
  L("        add  t9, t9, t6");
  L("        bge  t9, zero, " + p + "i1");
  L("        li   t9, 0");
  L(p + "i1:");
  L("        li   t6, 88");
  L("        ble  t9, t6, " + p + "i2");
  L("        move t9, t6");
  L(p + "i2:");
  L("        andi t6, s6, 0xff");
  L("        add  t4, t4, t6");
  L("        add  s0, s0, t4");          // checksum += delta + (n & 0xff)
  L("        addi s6, s6, 1");
  return a;
}

// Loop wrapper: encode s2 samples.
std::string encoder_body(const std::string& p) {
  std::string a;
  a += p + "loop:\n";
  a += encoder_sample(p);
  a += "        subi s2, s2, 1\n";
  a += "        bnez s2, " + p + "loop\n";
  return a;
}

std::string adpcm_source() {
  std::string s;
  s += "# adpcm: IMA ADPCM encoder over 8192 LCG samples.\n";
  s += "        .text\n";
  s += "main:   la   s4, steptab\n";
  s += "        la   s5, indextab\n";
  s += "        la   s3, outbuf\n";
  s += "        li   s7, 1103515245\n";
  s += "        li   s0, 0\n";
  s += "        li   s1, 77\n";        // LCG seed
  s += "        li   s2, 8192\n";      // samples
  s += "        li   s6, 0\n";         // absolute sample counter
  s += "        li   t8, 0\n";         // valpred
  s += "        li   t9, 0\n";         // index
  s += encoder_body("e");
  s += "        li   t0, 3\n";
  s += "        mul  t1, t8, t0\n";
  s += "        add  s0, s0, t1\n";
  s += "        add  s0, s0, t9\n";
  // ---- decode pass: reconstruct the signal from the emitted codes ----
  s += "        la   s3, outbuf\n";
  s += "        li   s2, 8192\n";
  s += "        li   t8, 0\n";        // valpred
  s += "        li   t9, 0\n";        // index
  s += "dloop:  lbu  t4, 0(s3)\n";    // delta
  s += "        sll  t1, t9, 2\n";
  s += "        add  t1, t1, s4\n";
  s += "        lw   t1, 0(t1)\n";    // step
  s += "        sra  t5, t1, 3\n";    // vpdiff = step >> 3
  s += "        andi t0, t4, 4\n";
  s += "        beqz t0, d1\n";
  s += "        add  t5, t5, t1\n";
  s += "d1:     andi t0, t4, 2\n";
  s += "        beqz t0, d2\n";
  s += "        sra  t0, t1, 1\n";
  s += "        add  t5, t5, t0\n";
  s += "d2:     andi t0, t4, 1\n";
  s += "        beqz t0, d3\n";
  s += "        sra  t0, t1, 2\n";
  s += "        add  t5, t5, t0\n";
  s += "d3:     andi t0, t4, 8\n";
  s += "        beqz t0, dadd\n";
  s += "        sub  t8, t8, t5\n";
  s += "        b    dclamp\n";
  s += "dadd:   add  t8, t8, t5\n";
  s += "dclamp: li   t0, 32767\n";
  s += "        ble  t8, t0, dc1\n";
  s += "        move t8, t0\n";
  s += "dc1:    li   t0, -32768\n";
  s += "        bge  t8, t0, dc2\n";
  s += "        move t8, t0\n";
  s += "dc2:    sll  t0, t4, 2\n";
  s += "        add  t0, t0, s5\n";
  s += "        lw   t0, 0(t0)\n";
  s += "        add  t9, t9, t0\n";
  s += "        bge  t9, zero, di1\n";
  s += "        li   t9, 0\n";
  s += "di1:    li   t0, 88\n";
  s += "        ble  t9, t0, di2\n";
  s += "        move t9, t0\n";
  s += "di2:    li   t0, 0xFFFF\n";
  s += "        and  t0, t8, t0\n";
  s += "        add  s0, s0, t0\n";   // checksum += valpred & 0xFFFF
  s += "        addi s3, s3, 1\n";
  s += "        subi s2, s2, 1\n";
  s += "        bnez s2, dloop\n";
  s += "        move v0, s0\n";
  s += "        halt\n";
  s += "\n        .data\n";
  s += "steptab:" + step_table_words() + "\n";
  s += "indextab:" + index_table_words() + "\n";
  s += "outbuf: .space 8192\n";
  return s;
}

}  // namespace

Workload make_adpcm() {
  Workload w;
  w.name = "adpcm";
  w.suite = "mediabench";
  w.description = "IMA ADPCM encode + decode round trip over 8192 samples";
  w.source = adpcm_source();
  w.expected_checksum = adpcm_roundtrip_reference(77, 8192);
  return w;
}

// ---------------------------------------------------------------------------
// padpcm: 16 cloned ADPCM encoder blocks, dispatched round-robin over 2
// passes. The clones give the kernel a multi-kilobyte instruction working
// set (the paper's padpcm selects an 8 KB instruction cache).
// ---------------------------------------------------------------------------

namespace {

constexpr unsigned kPadpcmClones = 16;
constexpr unsigned kPadpcmIters = 512;   // iterations per pass (1 sample/clone)
constexpr unsigned kPadpcmPasses = 2;

std::uint32_t padpcm_reference() {
  // Mirrors the generated assembly: one running LCG/checksum/counter; each
  // clone keeps its own predictor state in memory and encodes ONE sample
  // per iteration, so the sixteen clone bodies stay live in the
  // instruction cache simultaneously.
  std::uint32_t x = 505;
  std::uint32_t checksum = 0;
  std::uint32_t abs_n = 0;
  std::int32_t valpred[kPadpcmClones] = {};
  std::int32_t index[kPadpcmClones] = {};
  for (unsigned pass = 0; pass < kPadpcmPasses; ++pass) {
    for (unsigned iter = 0; iter < kPadpcmIters; ++iter) {
      for (unsigned clone = 0; clone < kPadpcmClones; ++clone) {
        x = lcg_next(x);
        const auto sample =
            static_cast<std::int32_t>(static_cast<std::int16_t>(x >> 8));
        std::int32_t step = kStepTable[index[clone]];
        std::int32_t diff = sample - valpred[clone];
        std::int32_t sign = 0;
        if (diff < 0) {
          sign = 8;
          diff = -diff;
        }
        std::int32_t delta = 0;
        std::int32_t vpdiff = step >> 3;
        if (diff >= step) {
          delta = 4;
          diff -= step;
          vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
          delta |= 2;
          diff -= step;
          vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
          delta |= 1;
          vpdiff += step;
        }
        if (sign != 0) valpred[clone] -= vpdiff;
        else valpred[clone] += vpdiff;
        if (valpred[clone] > 32767) valpred[clone] = 32767;
        else if (valpred[clone] < -32768) valpred[clone] = -32768;
        delta |= sign;
        index[clone] += kIndexTable[delta];
        if (index[clone] < 0) index[clone] = 0;
        else if (index[clone] > 88) index[clone] = 88;
        checksum += static_cast<std::uint32_t>(delta) + (abs_n & 0xffu);
        ++abs_n;
      }
    }
  }
  for (unsigned clone = 0; clone < kPadpcmClones; ++clone) {
    checksum += static_cast<std::uint32_t>(valpred[clone]) * 3u +
                static_cast<std::uint32_t>(index[clone]) + clone;
  }
  return checksum;
}

std::string padpcm_source() {
  std::string s;
  s += "# padpcm: " + std::to_string(kPadpcmClones) +
       " cloned ADPCM encoders, one sample per clone per iteration.\n";
  s += "        .text\n";
  s += "main:   la   s4, steptab\n";
  s += "        la   s5, indextab\n";
  s += "        la   s3, outbuf\n";
  s += "        li   s7, 1103515245\n";
  s += "        li   s0, 0\n";
  s += "        li   s1, 505\n";
  s += "        li   s6, 0\n";
  s += "        la   t0, padst\n";   // clear the per-clone state records
  s += "        li   t1, " + std::to_string(2 * kPadpcmClones) + "\n";
  s += "clrst:  sw   zero, 0(t0)\n";
  s += "        addi t0, t0, 4\n";
  s += "        subi t1, t1, 1\n";
  s += "        bnez t1, clrst\n";
  s += "        li   gp, " + std::to_string(kPadpcmPasses) + "\n";
  s += "pass:   li   fp, " + std::to_string(kPadpcmIters) + "\n";
  s += "iter:\n";
  for (unsigned clone = 0; clone < kPadpcmClones; ++clone) {
    s += "        jal  enc" + std::to_string(clone) + "\n";
  }
  s += "        subi fp, fp, 1\n";
  s += "        bnez fp, iter\n";
  s += "        subi gp, gp, 1\n";
  s += "        bnez gp, pass\n";
  // fold the clone states into the checksum
  s += "        la   t7, padst\n";
  s += "        li   t6, 0\n";
  s += "fold:   lw   t8, 0(t7)\n";
  s += "        li   t0, 3\n";
  s += "        mul  t1, t8, t0\n";
  s += "        add  s0, s0, t1\n";
  s += "        lw   t9, 4(t7)\n";
  s += "        add  s0, s0, t9\n";
  s += "        add  s0, s0, t6\n";
  s += "        addi t7, t7, 8\n";
  s += "        addi t6, t6, 1\n";
  s += "        li   t0, " + std::to_string(kPadpcmClones) + "\n";
  s += "        bne  t6, t0, fold\n";
  s += "        move v0, s0\n";
  s += "        halt\n\n";

  for (unsigned clone = 0; clone < kPadpcmClones; ++clone) {
    const std::string p = "e" + std::to_string(clone) + "_";
    const std::string st = "padst+" + std::to_string(clone * 8);
    s += "enc" + std::to_string(clone) + ":\n";
    s += "        la   t7, " + st + "\n";
    s += "        lw   t8, 0(t7)\n";   // valpred
    s += "        lw   t9, 4(t7)\n";   // index
    s += encoder_sample(p);
    s += "        sw   t8, 0(t7)\n";
    s += "        sw   t9, 4(t7)\n";
    s += "        ret\n\n";
  }

  s += "        .data\n";
  s += "steptab:" + step_table_words() + "\n";
  s += "indextab:" + index_table_words() + "\n";
  s += "padst:  .space " + std::to_string(kPadpcmClones * 8) + "\n";
  s += "outbuf: .space " + std::to_string(kPadpcmClones * kPadpcmIters *
                                          kPadpcmPasses) + "\n";
  return s;
}

}  // namespace

Workload make_padpcm() {
  Workload w;
  w.name = "padpcm";
  w.suite = "powerstone";
  w.description = "16 interleaved ADPCM encoder clones (large live instruction set)";
  w.source = padpcm_source();
  w.expected_checksum = padpcm_reference();
  w.max_instructions = 120'000'000;
  return w;
}

// ---------------------------------------------------------------------------
// auto: engine-control dispatch over a bank of 32 generated handler
// functions driven through a function-pointer table (large, conflict-prone
// instruction working set; small data working set).
// ---------------------------------------------------------------------------

namespace {

constexpr unsigned kAutoFuncs = 32;
constexpr unsigned kAutoIters = 16000;
constexpr unsigned kAutoStateWords = 64;

// Per-function constants (deterministic in the function id).
std::uint32_t auto_mul_const(unsigned f) { return 0x10001u + f * 0x202u; }
std::uint32_t auto_add_const(unsigned f) { return 17u + f * 29u; }
unsigned auto_slot(unsigned f, unsigned j) { return (f * 5 + j * 3) & (kAutoStateWords - 1); }

std::uint32_t auto_reference() {
  std::vector<std::uint32_t> state;
  std::uint32_t x = 17;
  lcg_fill_words(state, 17, kAutoStateWords);
  x = state.back();

  for (unsigned it = 0; it < kAutoIters; ++it) {
    x = lcg_next(x);
    const unsigned f = (x >> 10) & (kAutoFuncs - 1);
    const std::uint32_t mc = auto_mul_const(f);
    const std::uint32_t ac = auto_add_const(f);
    for (unsigned j = 0; j < 8; ++j) {
      const unsigned slot = auto_slot(f, j);
      std::uint32_t v = state[slot];
      v = v * mc + ac;
      if (j % 2 == 0) v ^= (v >> 7);
      else v += (v << 3);
      state[slot] = v;
      // Handlers bail out early on odd sensor values: roughly half the
      // calls execute only the first update, which makes long fetch lines
      // wasteful for this kernel (sparse execution).
      if (j == 0 && (v & 1u) != 0) break;
    }
  }
  std::uint32_t checksum = 0;
  for (std::uint32_t v : state) checksum ^= v;
  return checksum;
}

std::string auto_source() {
  std::string s;
  s += "# auto: dispatch over " + std::to_string(kAutoFuncs) +
       " generated control handlers via a function-pointer table.\n";
  s += "        .text\n";
  s += "main:   la   t0, state\n";
  s += "        li   t1, " + std::to_string(kAutoStateWords) + "\n";
  s += "        li   t2, 17\n";
  s += "        li   t3, 1103515245\n";
  s += "gen:    mul  t2, t2, t3\n";
  s += "        addi t2, t2, 12345\n";
  s += "        sw   t2, 0(t0)\n";
  s += "        addi t0, t0, 4\n";
  s += "        subi t1, t1, 1\n";
  s += "        bnez t1, gen\n";
  s += "        move s3, t2\n";  // LCG state continues from the fill
  s += "        li   s1, " + std::to_string(kAutoIters) + "\n";
  s += "        la   s2, ftab\n";
  s += "        li   s7, 1103515245\n";
  s += "disp:   mul  s3, s3, s7\n";
  s += "        addi s3, s3, 12345\n";
  s += "        srl  t0, s3, 10\n";
  s += "        andi t0, t0, " + std::to_string(kAutoFuncs - 1) + "\n";
  s += "        sll  t0, t0, 2\n";
  s += "        add  t0, t0, s2\n";
  s += "        lw   t0, 0(t0)\n";
  s += "        jalr t0\n";
  s += "        subi s1, s1, 1\n";
  s += "        bnez s1, disp\n";
  s += "        li   s0, 0\n";
  s += "        la   t0, state\n";
  s += "        li   t1, " + std::to_string(kAutoStateWords) + "\n";
  s += "sum:    lw   t2, 0(t0)\n";
  s += "        xor  s0, s0, t2\n";
  s += "        addi t0, t0, 4\n";
  s += "        subi t1, t1, 1\n";
  s += "        bnez t1, sum\n";
  s += "        move v0, s0\n";
  s += "        halt\n\n";

  for (unsigned f = 0; f < kAutoFuncs; ++f) {
    s += "f" + std::to_string(f) + ":\n";
    s += "        la   t1, state\n";
    s += "        li   t2, " + std::to_string(auto_mul_const(f)) + "\n";
    s += "        li   t3, " + std::to_string(auto_add_const(f)) + "\n";
    for (unsigned j = 0; j < 8; ++j) {
      const unsigned off = auto_slot(f, j) * 4;
      s += "        lw   t4, " + std::to_string(off) + "(t1)\n";
      s += "        mul  t4, t4, t2\n";
      s += "        add  t4, t4, t3\n";
      if (j % 2 == 0) {
        s += "        srl  t5, t4, 7\n";
        s += "        xor  t4, t4, t5\n";
      } else {
        s += "        sll  t5, t4, 3\n";
        s += "        add  t4, t4, t5\n";
      }
      s += "        sw   t4, " + std::to_string(off) + "(t1)\n";
      if (j == 0) {
        // early exit on odd sensor value (sparse execution path)
        s += "        andi t5, t4, 1\n";
        s += "        beqz t5, f" + std::to_string(f) + "c\n";
        s += "        ret\n";
        s += "f" + std::to_string(f) + "c:\n";
      }
    }
    s += "        ret\n\n";
  }

  s += "        .data\n";
  s += "ftab:";
  for (unsigned f = 0; f < kAutoFuncs; ++f) {
    s += (f % 8 == 0) ? "\n        .word " : ", ";
    s += "f" + std::to_string(f);
  }
  s += "\nstate:  .space " + std::to_string(kAutoStateWords * 4) + "\n";
  return s;
}

}  // namespace

Workload make_auto() {
  Workload w;
  w.name = "auto";
  w.suite = "powerstone";
  w.description = "function-pointer dispatch over 32 generated control handlers";
  w.source = auto_source();
  w.expected_checksum = auto_reference();
  return w;
}

}  // namespace stcache
