#!/usr/bin/env python3
"""Gate replay-engine throughput against the committed baseline.

Usage: bench_check.py BASELINE.json FRESH.json [--tolerance FRAC]

Both files are bench_replay_throughput --out snapshots. The check compares
the overall records/second of each engine (reference, fast, oneshot) and
fails if any engine regressed by more than the tolerance (default 0.20,
i.e. a fresh run slower than 80% of baseline; override with --tolerance or
the STCACHE_BENCH_TOLERANCE environment variable). Speedups are never a
failure — the baseline is a floor, not a target band — so a faster machine
or compiler passes trivially, and the committed BENCH_replay.json should be
regenerated whenever the floor moves up for real.

repro.sh runs this in full (non-sanitizer) mode; sanitizer builds skip it
because their throughput is not comparable to the committed snapshot.
"""

import argparse
import json
import os
import sys

ENGINES = ("reference", "fast", "oneshot")


def overall_rates(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    overall = doc.get("overall")
    if not isinstance(overall, dict):
        sys.exit(f"error: {path}: no 'overall' object")
    rates = {}
    for engine in ENGINES:
        key = f"{engine}_records_per_second"
        value = overall.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            sys.exit(f"error: {path}: missing or non-positive '{key}'")
        rates[engine] = float(value)
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("STCACHE_BENCH_TOLERANCE", "0.20")),
        help="allowed fractional regression per engine (default 0.20)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("error: --tolerance must be in [0, 1)")

    base = overall_rates(args.baseline)
    fresh = overall_rates(args.fresh)

    failed = False
    for engine in ENGINES:
        ratio = fresh[engine] / base[engine]
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failed = True
        print(
            f"[bench_check] {engine:9s} baseline {base[engine]:.3e} rec/s, "
            f"fresh {fresh[engine]:.3e} rec/s ({ratio:.2f}x) {status}"
        )
    if failed:
        print(
            f"[bench_check] FAILED: an engine fell below "
            f"{1.0 - args.tolerance:.0%} of the committed BENCH_replay.json; "
            "investigate or regenerate the baseline if the change is intended."
        )
        return 1
    print("[bench_check] all engines within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
