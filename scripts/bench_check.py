#!/usr/bin/env python3
"""Gate replay-engine, capture, and serving throughput against baselines.

Usage: bench_check.py BASELINE.json FRESH.json
                      [--mode replay|serving|resilience|scaled]
                      [--tolerance FRAC]

In the default --mode replay, both files are bench_replay_throughput --out
snapshots. Three checks run:

1. Engine regression: the overall records/second of each replay engine
   (reference, fast, oneshot) must stay within the tolerance of the
   baseline (default 0.20, i.e. a fresh run slower than 80% of baseline
   fails; override with --tolerance or STCACHE_BENCH_TOLERANCE). Speedups
   are never a failure — the baseline is a floor, not a target band.
2. Capture floor: the fast interpreter's overall capture speedup over the
   reference route (capture + split + pack) must be at least
   --capture-min (default 3.0, STCACHE_CAPTURE_MIN) in the FRESH run.
3. End-to-end floor: the streaming exhaustive-tune pipeline must be at
   least --e2e-min (default 2.0, STCACHE_E2E_MIN) times faster than the
   capture-to-disk round trip in the FRESH run.
4. SIMD floor: the AVX2 oneshot stack-sweep kernel must be at least
   --simd-min (default 1.3, STCACHE_SIMD_MIN) times faster than the
   scalar flavor in the FRESH run. Armed whenever the fresh snapshot
   reports simd.available (the kernel was compiled in and the CPU has
   AVX2); on hosts without it the check prints an explicit skip — both
   timed rows would be the scalar kernel and the ratio meaningless.
5. Parallel floor: the set-partitioned parallel exhaustive sweep must
   sustain at least --parallel-min (default 5e9, STCACHE_PARALLEL_MIN)
   aggregate simulated records/second in the FRESH run. One core cannot
   outrun itself, so (like the serving scaling floor) this is enforced
   only when the fresh snapshot reports cpus >= 2; on a single-core host
   the check prints an explicit skip.

The capture/end-to-end sections also regression-compare against the
baseline when the baseline snapshot has them (older snapshots may not).

In --mode serving, both files are bench_serving --out snapshots. The
single-client and multi-client aggregate words/second must stay within the
tolerance of the baseline, and the fresh run's aggregate/single scaling
must be at least --serving-min (default 2.0, STCACHE_SERVING_MIN). One CPU
cannot run two sweep workers faster than one, so the scaling floor is
enforced only when the fresh snapshot reports cpus >= 2; on a single-core
host the check prints an explicit skip and only the rate regressions gate.

In --mode resilience, both files are bench_serving_resilience --out
snapshots. The clean and under-chaos words/second must stay within the
tolerance of the baseline, and the fresh run's chaos/clean ratio — the
clean tenant's throughput while a neighbor injects wire faults — must be
at least --resilience-min (default 0.8, STCACHE_RESILIENCE_MIN). On a
single-core host the neighbor steals real CPU from the clean tenant, so
(like the serving scaling floor) the ratio floor is enforced only when
the fresh snapshot reports cpus >= 2; the rate regressions always gate.

In --mode phase, both files are bench_phase_adaptive --out snapshots. Four
checks run on the FRESH snapshot: phase-adaptive tuning must beat the
static Fig. 6 configuration's energy on >= 2 phase-mixed scenarios; its
energy must be within --phase-oracle-max (default 0.10,
STCACHE_PHASE_ORACLE_MAX) of the per-phase oracle on >= 2 scenarios; the
overall naive/adaptive full-sweep ratio must be at least --phase-reuse-min
(default 3.0, STCACHE_PHASE_REUSE_MIN); and the classifier's overall
paired overhead on the streaming sweep pipeline must be at most
--phase-overhead-max (default 0.05, STCACHE_PHASE_OVERHEAD_MAX). The
classifier words/second must also stay within the tolerance of the
baseline. Energy and sweep counts are deterministic (bit-identical bank
stats), so only the overhead and throughput legs are wall-clock.

In --mode scaled, both files are bench_scaled_space --out snapshots. The
full embedded_32k space sweep through the generalized oneshot engine (one
nested traversal per line-size family) must be at least --scaled-min
(default 5.0, STCACHE_SCALED_MIN) times faster than the per-config fast
engine on at least two workloads in the FRESH run. The comparison is
serial engine-vs-engine (both sides single-threaded), so the floor is
armed even on one core. The overall oneshot records/second must also stay
within the tolerance of the baseline.

repro.sh runs this in full (non-sanitizer) mode; sanitizer builds skip it
because their throughput is not comparable to the committed snapshot.
"""

import argparse
import json
import os
import sys

ENGINES = ("reference", "fast", "oneshot")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def overall_rates(doc, path):
    overall = doc.get("overall")
    if not isinstance(overall, dict):
        sys.exit(f"error: {path}: no 'overall' object")
    rates = {}
    for engine in ENGINES:
        key = f"{engine}_records_per_second"
        value = overall.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            sys.exit(f"error: {path}: missing or non-positive '{key}'")
        rates[engine] = float(value)
    return rates


def section_overall(doc, section, key, path, required):
    sec = doc.get(section)
    if not isinstance(sec, dict) or not isinstance(sec.get("overall"), dict):
        if required:
            sys.exit(f"error: {path}: no '{section}.overall' object")
        return None
    value = sec["overall"].get(key)
    if not isinstance(value, (int, float)) or value <= 0:
        if required:
            sys.exit(f"error: {path}: missing or non-positive '{section}.overall.{key}'")
        return None
    return float(value)


def serving_rate(doc, section, key, path):
    sec = doc.get(section)
    if not isinstance(sec, dict):
        sys.exit(f"error: {path}: no '{section}' object")
    value = sec.get(key)
    if not isinstance(value, (int, float)) or value <= 0:
        sys.exit(f"error: {path}: missing or non-positive '{section}.{key}'")
    return float(value)


def check_serving(base_doc, fresh_doc, args):
    failed = False
    rates = (
        ("single", "single", "words_per_second"),
        ("aggregate", "multi", "aggregate_words_per_second"),
    )
    for label, section, key in rates:
        base = serving_rate(base_doc, section, key, args.baseline)
        fresh = serving_rate(fresh_doc, section, key, args.fresh)
        ratio = fresh / base
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failed = True
        print(
            f"[bench_check] serving {label:9s} baseline {base:.3e} words/s, "
            f"fresh {fresh:.3e} words/s ({ratio:.2f}x) {status}"
        )

    scaling = fresh_doc.get("scaling")
    cpus = fresh_doc.get("cpus")
    if not isinstance(scaling, (int, float)) or scaling <= 0:
        sys.exit(f"error: {args.fresh}: missing or non-positive 'scaling'")
    if not isinstance(cpus, int) or cpus < 1:
        sys.exit(f"error: {args.fresh}: missing or non-positive 'cpus'")
    if cpus < 2:
        print(
            f"[bench_check] serving scaling   {scaling:.2f}x measured, floor "
            f"{args.serving_min:.2f}x SKIPPED (fresh run had {cpus} cpu; "
            "concurrent sessions cannot outrun one worker on one core)"
        )
    else:
        status = "ok" if scaling >= args.serving_min else "BELOW FLOOR"
        failed = failed or scaling < args.serving_min
        print(
            f"[bench_check] serving scaling   aggregate vs single "
            f"{scaling:.2f}x (floor {args.serving_min:.2f}x) {status}"
        )
    return failed


def check_resilience(base_doc, fresh_doc, args):
    for doc, path in ((base_doc, args.baseline), (fresh_doc, args.fresh)):
        if doc.get("bench") != "serving_resilience":
            sys.exit(f"error: {path}: not a serving_resilience snapshot")
    failed = False
    rates = (
        ("clean", "clean", "words_per_second"),
        ("chaos", "chaos", "words_per_second"),
    )
    for label, section, key in rates:
        base = serving_rate(base_doc, section, key, args.baseline)
        fresh = serving_rate(fresh_doc, section, key, args.fresh)
        ratio = fresh / base
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failed = True
        print(
            f"[bench_check] resilience {label:6s} baseline {base:.3e} words/s, "
            f"fresh {fresh:.3e} words/s ({ratio:.2f}x) {status}"
        )

    ratio = fresh_doc.get("ratio")
    cpus = fresh_doc.get("cpus")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        sys.exit(f"error: {args.fresh}: missing or non-positive 'ratio'")
    if not isinstance(cpus, int) or cpus < 1:
        sys.exit(f"error: {args.fresh}: missing or non-positive 'cpus'")
    if cpus < 2:
        print(
            f"[bench_check] resilience ratio  {ratio:.2f}x measured, floor "
            f"{args.resilience_min:.2f}x SKIPPED (fresh run had {cpus} cpu; "
            "the chaos neighbor steals real CPU from the clean tenant)"
        )
    else:
        status = "ok" if ratio >= args.resilience_min else "BELOW FLOOR"
        failed = failed or ratio < args.resilience_min
        print(
            f"[bench_check] resilience ratio  clean-under-chaos "
            f"{ratio:.2f}x (floor {args.resilience_min:.2f}x) {status}"
        )
    return failed


def check_scaled(base_doc, fresh_doc, args):
    for doc, path in ((base_doc, args.baseline), (fresh_doc, args.fresh)):
        if not isinstance(doc.get("workloads"), list) or doc.get("space") is None:
            sys.exit(f"error: {path}: not a bench_scaled_space snapshot")
    failed = False

    base_rate = serving_rate(base_doc, "overall", "oneshot_records_per_second", args.baseline)
    fresh_rate = serving_rate(fresh_doc, "overall", "oneshot_records_per_second", args.fresh)
    ratio = fresh_rate / base_rate
    status = "ok"
    if ratio < 1.0 - args.tolerance:
        status = "REGRESSION"
        failed = True
    print(
        f"[bench_check] scaled oneshot   baseline {base_rate:.3e} rec/s, "
        f"fresh {fresh_rate:.3e} rec/s ({ratio:.2f}x) {status}"
    )

    # Speedup floor: serial oneshot vs serial per-config fast, per workload.
    # Engine against engine on the same core, so no cpu-count skip.
    passing = 0
    for w in fresh_doc["workloads"]:
        name = w.get("name")
        speedup = w.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            sys.exit(f"error: {args.fresh}: workload '{name}' has no speedup")
        mark = "meets floor" if speedup >= args.scaled_min else "below floor"
        if speedup >= args.scaled_min:
            passing += 1
        print(
            f"[bench_check] scaled sweep     {name:10s} oneshot vs fast "
            f"{speedup:.2f}x ({mark} {args.scaled_min:.2f}x)"
        )
    status = "ok" if passing >= 2 else "BELOW FLOOR"
    failed = failed or passing < 2
    print(
        f"[bench_check] scaled sweep     {passing}/{len(fresh_doc['workloads'])} "
        f"workloads >= {args.scaled_min:.2f}x (need >= 2) {status}"
    )
    return failed


def check_phase(base_doc, fresh_doc, args):
    for doc, path in ((base_doc, args.baseline), (fresh_doc, args.fresh)):
        if doc.get("bench") != "phase_adaptive":
            sys.exit(f"error: {path}: not a phase_adaptive snapshot")
    failed = False

    # Classifier throughput regression vs the committed snapshot.
    base_rate = serving_rate(
        base_doc, "overall", "classifier_words_per_second", args.baseline
    )
    fresh_rate = serving_rate(
        fresh_doc, "overall", "classifier_words_per_second", args.fresh
    )
    ratio = fresh_rate / base_rate
    status = "ok"
    if ratio < 1.0 - args.tolerance:
        status = "REGRESSION"
        failed = True
    print(
        f"[bench_check] phase classifier baseline {base_rate:.3e} words/s, "
        f"fresh {fresh_rate:.3e} words/s ({ratio:.2f}x) {status}"
    )

    scenarios = fresh_doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        sys.exit(f"error: {args.fresh}: no 'scenarios' list")
    beating = 0
    within_oracle = 0
    for s in scenarios:
        name = s.get("name")
        vs_static = s.get("adaptive_vs_static")
        vs_oracle = s.get("adaptive_vs_oracle")
        if not isinstance(vs_static, (int, float)) or not isinstance(
            vs_oracle, (int, float)
        ):
            sys.exit(f"error: {args.fresh}: scenario '{name}' has no gaps")
        if vs_static < 0:
            beating += 1
        if vs_oracle <= args.phase_oracle_max:
            within_oracle += 1
        print(
            f"[bench_check] phase scenario   {name:10s} vs static "
            f"{vs_static:+.2%}, vs oracle {vs_oracle:+.2%}"
        )
    status = "ok" if beating >= 2 else "BELOW FLOOR"
    failed = failed or beating < 2
    print(
        f"[bench_check] phase energy     beats static on {beating}/"
        f"{len(scenarios)} scenarios (need >= 2) {status}"
    )
    status = "ok" if within_oracle >= 2 else "BELOW FLOOR"
    failed = failed or within_oracle < 2
    print(
        f"[bench_check] phase oracle     within {args.phase_oracle_max:.0%} of "
        f"oracle on {within_oracle}/{len(scenarios)} scenarios (need >= 2) "
        f"{status}"
    )

    # Search-reduction floor: full sweeps issued, naive / distance-mapped.
    sweep_ratio = serving_rate(fresh_doc, "overall", "sweep_ratio", args.fresh)
    status = "ok" if sweep_ratio >= args.phase_reuse_min else "BELOW FLOOR"
    failed = failed or sweep_ratio < args.phase_reuse_min
    print(
        f"[bench_check] phase reuse      naive/adaptive sweeps "
        f"{sweep_ratio:.2f}x (floor {args.phase_reuse_min:.2f}x) {status}"
    )

    # Classifier overhead ceiling on the streaming sweep pipeline. The
    # paired estimator can come out slightly negative in noise; anything
    # at or under the ceiling passes.
    overhead = fresh_doc.get("overall", {}).get("overhead")
    if not isinstance(overhead, (int, float)):
        sys.exit(f"error: {args.fresh}: missing 'overall.overhead'")
    status = "ok" if overhead <= args.phase_overhead_max else "ABOVE CEILING"
    failed = failed or overhead > args.phase_overhead_max
    print(
        f"[bench_check] phase overhead   classifier on sweep pipeline "
        f"{overhead:+.2%} (ceiling {args.phase_overhead_max:.0%}) {status}"
    )
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--mode",
        choices=("replay", "serving", "resilience", "scaled", "phase"),
        default="replay",
        help="which bench snapshot pair is being gated (default replay)",
    )
    parser.add_argument(
        "--serving-min",
        type=float,
        default=float(os.environ.get("STCACHE_SERVING_MIN", "2.0")),
        help="minimum aggregate-vs-single serving scaling (default 2.0)",
    )
    parser.add_argument(
        "--resilience-min",
        type=float,
        default=float(os.environ.get("STCACHE_RESILIENCE_MIN", "0.8")),
        help="minimum clean-under-chaos throughput ratio (default 0.8)",
    )
    parser.add_argument(
        "--scaled-min",
        type=float,
        default=float(os.environ.get("STCACHE_SCALED_MIN", "5.0")),
        help="minimum oneshot-vs-fast scaled-space sweep speedup (default 5.0)",
    )
    parser.add_argument(
        "--phase-oracle-max",
        type=float,
        default=float(os.environ.get("STCACHE_PHASE_ORACLE_MAX", "0.10")),
        help="maximum adaptive-vs-oracle energy gap per scenario (default 0.10)",
    )
    parser.add_argument(
        "--phase-reuse-min",
        type=float,
        default=float(os.environ.get("STCACHE_PHASE_REUSE_MIN", "3.0")),
        help="minimum naive/adaptive full-sweep ratio (default 3.0)",
    )
    parser.add_argument(
        "--phase-overhead-max",
        type=float,
        default=float(os.environ.get("STCACHE_PHASE_OVERHEAD_MAX", "0.05")),
        help="maximum classifier overhead on the sweep pipeline (default 0.05)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("STCACHE_BENCH_TOLERANCE", "0.20")),
        help="allowed fractional regression per engine (default 0.20)",
    )
    parser.add_argument(
        "--capture-min",
        type=float,
        default=float(os.environ.get("STCACHE_CAPTURE_MIN", "3.0")),
        help="minimum fast-vs-reference capture speedup (default 3.0)",
    )
    parser.add_argument(
        "--e2e-min",
        type=float,
        default=float(os.environ.get("STCACHE_E2E_MIN", "2.0")),
        help="minimum streaming-vs-disk end-to-end speedup (default 2.0)",
    )
    parser.add_argument(
        "--simd-min",
        type=float,
        default=float(os.environ.get("STCACHE_SIMD_MIN", "1.3")),
        help="minimum AVX2-vs-scalar sweep-kernel speedup (default 1.3)",
    )
    parser.add_argument(
        "--parallel-min",
        type=float,
        default=float(os.environ.get("STCACHE_PARALLEL_MIN", "5e9")),
        help="minimum aggregate parallel-sweep records/second (default 5e9)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("error: --tolerance must be in [0, 1)")

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)

    if args.mode == "serving":
        if check_serving(base_doc, fresh_doc, args):
            print(
                "[bench_check] FAILED: a serving gate fell below its floor; "
                "investigate or regenerate the baseline if intended."
            )
            return 1
        print("[bench_check] all serving gates passed")
        return 0

    if args.mode == "phase":
        if check_phase(base_doc, fresh_doc, args):
            print(
                "[bench_check] FAILED: a phase-adaptive gate fell below its "
                "floor; investigate or regenerate the baseline if intended."
            )
            return 1
        print("[bench_check] all phase-adaptive gates passed")
        return 0

    if args.mode == "scaled":
        if check_scaled(base_doc, fresh_doc, args):
            print(
                "[bench_check] FAILED: a scaled-sweep gate fell below its "
                "floor; investigate or regenerate the baseline if intended."
            )
            return 1
        print("[bench_check] all scaled-sweep gates passed")
        return 0

    if args.mode == "resilience":
        if check_resilience(base_doc, fresh_doc, args):
            print(
                "[bench_check] FAILED: a resilience gate fell below its "
                "floor; investigate or regenerate the baseline if intended."
            )
            return 1
        print("[bench_check] all resilience gates passed")
        return 0

    base = overall_rates(base_doc, args.baseline)
    fresh = overall_rates(fresh_doc, args.fresh)

    failed = False
    for engine in ENGINES:
        ratio = fresh[engine] / base[engine]
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failed = True
        print(
            f"[bench_check] {engine:9s} baseline {base[engine]:.3e} rec/s, "
            f"fresh {fresh[engine]:.3e} rec/s ({ratio:.2f}x) {status}"
        )

    # Absolute floors on the fresh run (the PR acceptance metrics).
    capture = section_overall(fresh_doc, "capture", "speedup", args.fresh, True)
    status = "ok" if capture >= args.capture_min else "BELOW FLOOR"
    failed = failed or capture < args.capture_min
    print(
        f"[bench_check] capture   fast vs reference {capture:.2f}x "
        f"(floor {args.capture_min:.2f}x) {status}"
    )
    e2e = section_overall(fresh_doc, "end_to_end", "speedup", args.fresh, True)
    status = "ok" if e2e >= args.e2e_min else "BELOW FLOOR"
    failed = failed or e2e < args.e2e_min
    print(
        f"[bench_check] end2end   streaming vs disk {e2e:.2f}x "
        f"(floor {args.e2e_min:.2f}x) {status}"
    )

    # SIMD sweep-kernel floor: armed whenever the fresh run had the AVX2
    # kernel (older snapshots without the section fail loudly — the bench
    # that produced them predates the gate).
    simd_sec = fresh_doc.get("simd")
    if not isinstance(simd_sec, dict) or "available" not in simd_sec:
        sys.exit(f"error: {args.fresh}: no 'simd' section")
    if simd_sec["available"]:
        simd = section_overall(fresh_doc, "simd", "speedup", args.fresh, True)
        status = "ok" if simd >= args.simd_min else "BELOW FLOOR"
        failed = failed or simd < args.simd_min
        print(
            f"[bench_check] simd      AVX2 vs scalar {simd:.2f}x "
            f"(floor {args.simd_min:.2f}x) {status}"
        )
    else:
        print(
            f"[bench_check] simd      floor {args.simd_min:.2f}x SKIPPED "
            "(fresh run had no AVX2 kernel; both flavors are the scalar path)"
        )

    # Parallel aggregate floor: only meaningful with real parallelism.
    par_sec = fresh_doc.get("parallel")
    if not isinstance(par_sec, dict):
        sys.exit(f"error: {args.fresh}: no 'parallel' section")
    par_cpus = par_sec.get("cpus")
    if not isinstance(par_cpus, int) or par_cpus < 1:
        sys.exit(f"error: {args.fresh}: missing or non-positive 'parallel.cpus'")
    par = section_overall(
        fresh_doc, "parallel", "aggregate_records_per_second", args.fresh, True
    )
    if par_cpus < 2:
        print(
            f"[bench_check] parallel  {par:.3e} rec/s measured, floor "
            f"{args.parallel_min:.2e} rec/s SKIPPED (fresh run had "
            f"{par_cpus} cpu; sharded sweep cannot outrun serial on one core)"
        )
    else:
        status = "ok" if par >= args.parallel_min else "BELOW FLOOR"
        failed = failed or par < args.parallel_min
        print(
            f"[bench_check] parallel  aggregate {par:.3e} rec/s "
            f"(floor {args.parallel_min:.2e} rec/s) {status}"
        )

    # Rate regressions for the capture section when the baseline has it.
    base_cap = section_overall(
        base_doc, "capture", "fast_instructions_per_second", args.baseline, False
    )
    fresh_cap = section_overall(
        fresh_doc, "capture", "fast_instructions_per_second", args.fresh, True
    )
    if base_cap is not None:
        ratio = fresh_cap / base_cap
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failed = True
        print(
            f"[bench_check] capture   baseline {base_cap:.3e} instr/s, "
            f"fresh {fresh_cap:.3e} instr/s ({ratio:.2f}x) {status}"
        )

    if failed:
        print(
            "[bench_check] FAILED: a throughput gate fell below its floor; "
            "investigate or regenerate the baseline if the change is intended."
        )
        return 1
    print("[bench_check] all throughput gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
