// Table 1: per-benchmark results of the search heuristic.
//
// For every benchmark and both caches: the configuration the heuristic
// selects, the number of configurations it examined, and the energy savings
// relative to the 8 KB 4-way 32 B base cache. Rows where the heuristic
// missed the exhaustive optimum also show the optimal configuration and the
// gap, mirroring the paper's `optimal` sub-rows for pjpeg and mpeg2.
#include <iostream>

#include "common.hpp"
#include "core/tuner_fsmd.hpp"
#include "core/ports.hpp"

namespace stcache {
namespace {

struct StreamResult {
  SearchResult heur;
  SearchResult exhaustive;
  double base_energy = 0.0;
  double pred_accuracy = 0.0;  // of the heuristic's choice, if predicting

  double savings() const { return 1.0 - heur.best_energy / base_energy; }
  bool optimal() const { return heur.best == exhaustive.best; }
  double gap() const {
    return heur.best_energy / exhaustive.best_energy - 1.0;
  }
};

StreamResult evaluate_stream(std::span<const TraceRecord> stream,
                             const EnergyModel& model) {
  TraceEvaluator eval(stream, model);
  StreamResult r;
  r.heur = tune(eval);
  r.exhaustive = tune_exhaustive(eval);
  r.base_energy = eval.energy(base_cache());
  if (r.heur.best.way_prediction) {
    r.pred_accuracy = eval.stats(r.heur.best).prediction_accuracy();
  }
  return r;
}

int run() {
  bench::print_header(
      "Table 1: heuristic-selected configurations, configurations examined, "
      "and energy savings vs. the 8K_4W_32B base",
      "Table 1");

  const EnergyModel model;
  Table table({"Ben.", "I-cache cfg.", "No.", "D-cache cfg.", "No.", "I-E%",
               "D-E%"});

  double i_savings = 0, d_savings = 0, i_count = 0, d_count = 0;
  unsigned i_misses = 0, d_misses = 0;
  unsigned n = 0;
  std::vector<std::string> optimal_notes;

  for (const std::string& name : bench::workload_names()) {
    const SplitTrace& split = bench::all_split_traces().at(name);
    const StreamResult ic = evaluate_stream(split.ifetch, model);
    const StreamResult dc = evaluate_stream(split.data, model);

    table.add_row({name, ic.heur.best.name(),
                   std::to_string(ic.heur.configs_examined),
                   dc.heur.best.name(),
                   std::to_string(dc.heur.configs_examined),
                   fmt_percent(ic.savings(), 1), fmt_percent(dc.savings(), 1)});
    if (!ic.optimal()) {
      ++i_misses;
      optimal_notes.push_back(name + " I-cache optimal: " +
                              ic.exhaustive.best.name() + " (heuristic " +
                              fmt_percent(ic.gap(), 1) + " worse)");
    }
    if (!dc.optimal()) {
      ++d_misses;
      optimal_notes.push_back(name + " D-cache optimal: " +
                              dc.exhaustive.best.name() + " (heuristic " +
                              fmt_percent(dc.gap(), 1) + " worse)");
    }

    i_savings += ic.savings();
    d_savings += dc.savings();
    i_count += ic.heur.configs_examined;
    d_count += dc.heur.configs_examined;
    ++n;
  }

  table.add_row({"Average:", "", fmt_double(i_count / n, 1), "",
                 fmt_double(d_count / n, 1), fmt_percent(i_savings / n, 1),
                 fmt_percent(d_savings / n, 1)});
  table.print(std::cout);

  std::cout << "\nHeuristic vs. exhaustive (27 configurations):\n"
            << "  I-caches: optimal in " << (n - i_misses) << "/" << n
            << " benchmarks\n"
            << "  D-caches: optimal in " << (n - d_misses) << "/" << n
            << " benchmarks\n";
  for (const std::string& note : optimal_notes) {
    std::cout << "    " << note << "\n";
  }
  std::cout << "(Paper: ~5.8 configurations searched on average, optimal in\n"
            << " all but two data caches — pjpeg 5% and mpeg2 2% worse —\n"
            << " with average savings of 45%/55% for I/D.)\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
