// Figure 2: energy of the on-chip cache, the off-chip memory, and their
// total, for a parser-like workload as the cache grows from 1 KB to 1 MB.
//
// The paper's point: off-chip energy falls steeply up to a mid-range size
// and then flattens, while cache energy keeps growing, so total energy has
// an interior minimum — the per-application sweet spot the self-tuning
// architecture hunts for. The paper uses SPEC2000 `parser`; we use the
// parser-like synthetic workload documented in DESIGN.md.
#include <iostream>

#include "common.hpp"
#include "cache/cache_model.hpp"
#include "trace/replay.hpp"
#include "trace/synthetic.hpp"

namespace stcache {
namespace {

int run() {
  bench::print_header("Figure 2: energy vs. cache size, parser-like workload",
                      "Figure 2");

  ParserLikeParams params;  // 256 KB dictionary working set
  const Trace trace = gen_parser_like(params);
  const EnergyModel model;

  Table table({"cache size", "miss rate", "cache (on-chip)", "off-chip memory",
               "total"});

  double best_total = 0.0;
  std::uint32_t best_size = 0;
  for (std::uint32_t size = 1024; size <= (1u << 20); size *= 2) {
    const CacheGeometry g{size, 1, 32};
    const CacheStats stats = measure_geometry(g, trace);
    const EnergyBreakdown e = model.evaluate_generic(g, stats);
    table.add_row({std::to_string(size / 1024) + "KB",
                   fmt_percent(stats.miss_rate(), 2),
                   fmt_si_energy(e.onchip_cache()),
                   fmt_si_energy(e.offchip_memory()),
                   fmt_si_energy(e.total())});
    if (best_size == 0 || e.total() < best_total) {
      best_total = e.total();
      best_size = size;
    }
  }
  table.print(std::cout);

  std::cout << "\nMinimum-energy size: " << best_size / 1024 << " KB\n"
            << "The reproduced claim is the SHAPE: off-chip energy falls\n"
            << "steeply while the miss rate improves, then flattens; cache\n"
            << "energy keeps growing with size; their sum has an interior\n"
            << "minimum. The paper's parser bottoms out at 16 KB; our\n"
            << "synthetic substitute's locality knee sits higher (see\n"
            << "EXPERIMENTS.md), so the minimum lands at a larger size.\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
