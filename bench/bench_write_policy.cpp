// Write-policy ablation: write-back (the paper's platform default) versus
// write-through with no-write-allocate (the M*CORE-style alternative).
//
// Write-through makes the self-tuning story trivially safe — no line is
// ever dirty, so every reconfiguration (including the descending size
// order the paper warns against) is free. The price is per-store off-chip
// traffic. This harness quantifies both sides on every benchmark's data
// stream under the heuristic's chosen configuration.
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "cache/configurable_cache.hpp"
#include "core/flush_cost.hpp"
#include "trace/replay.hpp"

namespace stcache {
namespace {

CacheStats run_policy(const CacheConfig& cfg, std::span<const TraceRecord> stream,
                      WritePolicy policy) {
  ConfigurableCache cache(cfg, {}, policy);
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return cache.stats();
}

int run() {
  bench::print_header(
      "Write-back vs. write-through data caches under the tuned "
      "configuration",
      "platform write-policy ablation (M*CORE lineage, Section 1)");

  const EnergyModel model;
  Table table({"Ben.", "tuned cfg", "WB energy", "WT energy", "WT/WB",
               "WB desc. flush", "WT desc. flush"});

  GeoMean ratio;
  for (const std::string& name : bench::workload_names()) {
    const SplitTrace& split = bench::all_split_traces().at(name);

    // Tune under write-back (the paper's flow), then compare policies at
    // the chosen configuration.
    TraceEvaluator eval(split.data, model);
    const SearchResult tuned = tune(eval);

    const CacheStats wb = run_policy(tuned.best, split.data, WritePolicy::kWriteBack);
    const CacheStats wt = run_policy(tuned.best, split.data, WritePolicy::kWriteThrough);
    const double e_wb = model.evaluate(tuned.best, wb).total();
    const double e_wt = model.evaluate(tuned.best, wt).total();
    ratio.add(e_wt / e_wb);

    // Descending-size flush cost under each policy.
    const FlushCostReport wb_flush = measure_flush_cost(split.data, model);
    auto wt_desc_writebacks = [&] {
      ConfigurableCache cache(CacheConfig::parse("8K_1W_16B"), {},
                              WritePolicy::kWriteThrough);
      const std::size_t third = split.data.size() / 3;
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < split.data.size(); ++i) {
        if (i == third) total += cache.reconfigure(CacheConfig::parse("4K_1W_16B"));
        if (i == 2 * third) total += cache.reconfigure(CacheConfig::parse("2K_1W_16B"));
        cache.access(split.data[i].addr,
                     split.data[i].kind == AccessKind::kWrite);
      }
      return total;
    };

    table.add_row({name, tuned.best.name(), fmt_si_energy(e_wb),
                   fmt_si_energy(e_wt), fmt_double(e_wt / e_wb, 2) + "x",
                   std::to_string(wb_flush.descending_writeback_lines) + " lines",
                   std::to_string(wt_desc_writebacks()) + " lines"});
  }
  table.print(std::cout);

  std::cout << "\nGeometric-mean WT/WB energy ratio: "
            << fmt_double(ratio.value(), 2)
            << "x\nReading: write-through removes every reconfiguration\n"
            << "write-back (right column is all zeros) but costs more total\n"
            << "energy on write-heavy kernels — which is why the paper's\n"
            << "platform keeps write-back and instead makes the SEARCH\n"
            << "ORDER flush-free.\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
