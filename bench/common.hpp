// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure of the paper. The
// helpers here capture workload traces once per process, parse the sweep
// CLI flags every full-space bench accepts (--jobs N, --metrics-out PATH),
// and provide the parallel (workload x configuration) sweep plumbing on top
// of core/sweep.hpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "core/sweep.hpp"
#include "energy/energy_model.hpp"
#include "trace/replay.hpp"
#include "trace/stream.hpp"
#include "trace/trace.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace stcache::bench {

// Captured and split traces for every workload, computed lazily and cached
// for the lifetime of the process.
//
// Thread safety: the function-local static is initialized under the C++11
// magic-static guard, so concurrent first calls block until one thread has
// captured everything. The capture path itself (all_workloads() ->
// assemble() -> Cpu::run with a TracingMemory) touches only locals plus
// const magic statics (the workload/config registries), so the guarded
// initializer is reentrancy-safe. Sweep benches still call this BEFORE
// starting the SweepRunner so that trace capture stays out of the timed
// region and workers never contend on the guard.
inline const std::map<std::string, SplitTrace>& all_split_traces() {
  static const std::map<std::string, SplitTrace> kTraces = [] {
    std::map<std::string, SplitTrace> m;
    for (const Workload& w : all_workloads()) {
      m.emplace(w.name, split_trace(capture_trace(w)));
    }
    return m;
  }();
  return kTraces;
}

// The split traces in deterministic (name-sorted) order, for index-keyed
// sweep jobs. Capturing happens here, before any timing starts.
struct NamedSplitTrace {
  const std::string* name;
  const SplitTrace* split;
};
inline std::vector<NamedSplitTrace> ordered_split_traces() {
  std::vector<NamedSplitTrace> out;
  for (const auto& [name, split] : all_split_traces()) {
    out.push_back({&name, &split});
  }
  return out;
}

// Workload names in the paper's Table 1 order.
inline std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const Workload& w : all_workloads()) names.push_back(w.name);
  return names;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << " of Zhang/Vahid/Lysecky, DATE'04)\n"
            << "================================================================\n";
}

// --- sweep CLI --------------------------------------------------------------

inline ReplayEngine checked_engine(const char* prog, const std::string& name) {
  try {
    return parse_replay_engine(name);
  } catch (const std::exception& e) {
    std::cerr << prog << ": " << e.what() << "\n";
    std::exit(2);
  }
}

struct BenchOptions {
  SweepOptions sweep;       // --jobs N (0 = hardware_concurrency)
  std::string metrics_out;  // --metrics-out PATH (JSON)
  ReplayEngine engine = ReplayEngine::kOneshot;  // --engine reference|fast|oneshot
  bool streaming = true;    // --pipeline streaming|materialized
  unsigned sweep_jobs = 0;  // --sweep-jobs N (0 = keep the process default)
};

// Parse the common sweep flags; exits with usage on anything unknown.
// Installs the chosen replay engine as the process default and reports it
// on stderr so every figure run is attributable to an engine (stdout stays
// byte-identical across engines — that is what the equivalence suite
// proves). Benches are measurement binaries, so the informational
// [sim]/[trace_io]/[replay] stderr metrics stay on by default here (tools
// default them off; see util/metrics.hpp).
inline BenchOptions parse_bench_args(int argc, char** argv) {
  set_metrics_enabled(true);
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      opts.sweep.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--sweep-jobs" && i + 1 < argc) {
      // Intra-bank shard count for the oneshot sweep (set-partitioned,
      // exact merge — stdout stays byte-identical). Composes with the
      // workload-level --jobs pool: total threads ~= jobs * sweep-jobs.
      opts.sweep_jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      opts.metrics_out = argv[++i];
    } else if (arg == "--engine" && i + 1 < argc) {
      opts.engine = checked_engine(argv[0], argv[++i]);
    } else if (arg.rfind("--engine=", 0) == 0) {
      opts.engine = checked_engine(argv[0], arg.substr(9));
    } else if (arg == "--pipeline" && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "streaming") opts.streaming = true;
      else if (p == "materialized") opts.streaming = false;
      else {
        std::cerr << argv[0] << ": unknown pipeline '" << p
                  << "' (expected streaming|materialized)\n";
        std::exit(2);
      }
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--jobs N] [--sweep-jobs N] [--metrics-out file.json]"
                << " [--engine reference|fast|oneshot]"
                << " [--pipeline streaming|materialized]\n";
      std::exit(2);
    }
  }
  set_default_replay_engine(opts.engine);
  if (opts.sweep_jobs != 0) set_default_sweep_jobs(opts.sweep_jobs);
  std::cerr << "[replay] engine=" << to_string(default_replay_engine()) << "\n";
  return opts;
}

// Print the sweep summary to stderr (stdout carries the table and must be
// byte-identical across --jobs values) and export JSON if requested. An
// unwritable metrics path is a clean exit(1), not an uncaught throw — the
// table has already been printed by this point.
inline void finish_sweep(const SweepRunner& runner, const BenchOptions& opts) {
  runner.print_metrics(std::cerr);
  try {
    runner.write_metrics_json(opts.metrics_out);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(1);
  }
}

}  // namespace stcache::bench

namespace stcache::bench {

// The workloads in the same deterministic (name-sorted) order that
// ordered_split_traces() uses, for benches that capture per job instead of
// priming the process-wide trace cache. Keeping the order identical keeps
// every serial floating-point reduction — and therefore stdout — identical.
inline std::vector<const Workload*> ordered_workloads() {
  std::vector<const Workload*> out;
  for (const Workload& w : all_workloads()) out.push_back(&w);
  std::sort(out.begin(), out.end(),
            [](const Workload* a, const Workload* b) { return a->name < b->name; });
  return out;
}

// Shared implementation of Figures 3 and 4: sweep the 18 base
// configurations over all benchmarks' instruction or data streams,
// reporting average miss rate and average normalized energy (normalized
// per-benchmark to the 8 KB 4-way 32 B base, as the figures normalize
// fetch energy).
//
// The (workload x configuration) grid is evaluated by a SweepRunner with
// one BANK job per workload. Each job captures its workload with the fast
// interpreter directly in packed form — no TraceRecord AoS, no disk — and
// folds it through a BankAccumulator, which under the oneshot engine
// covers a whole line-size group in a single stack-distance traversal.
// Under --pipeline streaming (the default) the capture thread overlaps the
// sweep chunk by chunk; --pipeline materialized captures first and sweeps
// after. The averages are then reduced serially in workload-major
// (name-sorted) order, so the table is byte-identical for any --jobs
// value, any --engine, and either pipeline (per-cell stats are
// engine-invariant by the equivalence suite; chunked and one-shot feeding
// are bit-identical by construction).
inline int run_config_space_figure(bool instruction_stream,
                                   const BenchOptions& opts) {
  const char* which = instruction_stream ? "instruction" : "data";
  print_header(std::string("Average ") + which +
                   " miss rate and normalized energy over the 18 "
                   "size/line/associativity configurations",
               instruction_stream ? "Figure 3" : "Figure 4");

  const EnergyModel model;
  const std::vector<const Workload*> workloads = ordered_workloads();
  const std::vector<CacheConfig>& cfgs = base_configs();

  // Index of the normalization base (8K_4W_32B) inside the swept grid, so
  // its measurement is shared rather than repeated.
  std::size_t base_idx = cfgs.size();
  for (std::size_t c = 0; c < cfgs.size(); ++c) {
    if (cfgs[c] == base_cache()) base_idx = c;
  }

  struct Cell {
    double miss_rate = 0.0;
    double energy = 0.0;
  };
  SweepRunner runner(opts.sweep);
  const std::vector<std::vector<Cell>> rows_by_workload =
      runner.map<std::vector<Cell>>(
          workloads.size(),
          [&](std::size_t w) {
            BankAccumulator bank(cfgs);
            if (opts.streaming) {
              stream_workload(*workloads[w], [&](const PackedChunk& chunk) {
                bank.feed(instruction_stream ? chunk.ifetch_words()
                                             : chunk.data_words());
              });
            } else {
              const PackedCapture cap = capture_packed(*workloads[w]);
              bank.feed(instruction_stream ? cap.ifetch : cap.data);
            }
            const std::vector<CacheStats> stats = bank.stats();
            runner.add_accesses(bank.words_fed() * cfgs.size());
            std::vector<Cell> row(cfgs.size());
            for (std::size_t c = 0; c < cfgs.size(); ++c) {
              row[c] = Cell{stats[c].miss_rate(),
                            model.evaluate(cfgs[c], stats[c]).total()};
            }
            return row;
          },
          [&](std::size_t w) { return workloads[w]->name + " x all configs"; });
  std::vector<Cell> cells;
  cells.reserve(workloads.size() * cfgs.size());
  for (const std::vector<Cell>& row : rows_by_workload) {
    cells.insert(cells.end(), row.begin(), row.end());
  }

  Table table({"config", "avg miss rate", "avg normalized energy"});
  struct Row {
    CacheConfig cfg;
    double miss_sum = 0.0;
    double energy_sum = 0.0;
  };
  std::vector<Row> rows;
  for (const CacheConfig& cfg : cfgs) rows.push_back({cfg, 0, 0});

  const unsigned n = static_cast<unsigned>(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const double base = cells[w * cfgs.size() + base_idx].energy;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
      const Cell& cell = cells[w * cfgs.size() + c];
      rows[c].miss_sum += cell.miss_rate;
      rows[c].energy_sum += cell.energy / base;
    }
  }

  for (const Row& row : rows) {
    table.add_row({row.cfg.name(), fmt_percent(row.miss_sum / n, 2),
                   fmt_double(row.energy_sum / n, 3)});
  }
  table.print(std::cout);

  // The figures' qualitative reading: size has the largest impact, line
  // size matters more for data than instructions, associativity the least.
  auto avg_over = [&](auto pred) {
    double sum = 0;
    unsigned count = 0;
    for (const Row& row : rows) {
      if (pred(row.cfg)) {
        sum += row.energy_sum / n;
        ++count;
      }
    }
    return sum / count;
  };
  std::cout << "\nAverage normalized energy by total size:\n";
  for (CacheSizeKB s : kCacheSizes) {
    std::cout << "  " << to_string(s) << "B-class: "
              << fmt_double(avg_over([&](const CacheConfig& c) {
                              return c.size_kb == s;
                            }),
                            3)
              << "\n";
  }
  std::cout << "Average normalized energy by line size:\n";
  for (LineBytes l : kLineSizes) {
    std::cout << "  " << to_string(l) << ": "
              << fmt_double(avg_over([&](const CacheConfig& c) {
                              return c.line == l;
                            }),
                            3)
              << "\n";
  }
  std::cout << "Average normalized energy by associativity:\n";
  for (Assoc a : kAssocs) {
    std::cout << "  " << to_string(a) << ": "
              << fmt_double(avg_over([&](const CacheConfig& c) {
                              return c.assoc == a;
                            }),
                            3)
              << "\n";
  }
  finish_sweep(runner, opts);
  return 0;
}

}  // namespace stcache::bench
