// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure of the paper. The
// helpers here capture workload traces once per process and provide the
// common "evaluate a configuration on a stream" plumbing.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "energy/energy_model.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace stcache::bench {

// Captured and split traces for every workload, computed lazily and cached
// for the lifetime of the process.
inline const std::map<std::string, SplitTrace>& all_split_traces() {
  static const std::map<std::string, SplitTrace> kTraces = [] {
    std::map<std::string, SplitTrace> m;
    for (const Workload& w : all_workloads()) {
      m.emplace(w.name, split_trace(capture_trace(w)));
    }
    return m;
  }();
  return kTraces;
}

// Workload names in the paper's Table 1 order.
inline std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const Workload& w : all_workloads()) names.push_back(w.name);
  return names;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << " of Zhang/Vahid/Lysecky, DATE'04)\n"
            << "================================================================\n";
}

}  // namespace stcache::bench

namespace stcache::bench {

// Shared implementation of Figures 3 and 4: sweep the 18 base
// configurations over all benchmarks' instruction or data streams,
// reporting average miss rate and average normalized energy (normalized
// per-benchmark to the 8 KB 4-way 32 B base, as the figures normalize
// fetch energy).
inline int run_config_space_figure(bool instruction_stream) {
  const char* which = instruction_stream ? "instruction" : "data";
  print_header(std::string("Average ") + which +
                   " miss rate and normalized energy over the 18 "
                   "size/line/associativity configurations",
               instruction_stream ? "Figure 3" : "Figure 4");

  const EnergyModel model;
  const auto& traces = all_split_traces();

  Table table({"config", "avg miss rate", "avg normalized energy"});
  struct Row {
    CacheConfig cfg;
    double miss_sum = 0.0;
    double energy_sum = 0.0;
  };
  std::vector<Row> rows;
  for (const CacheConfig& cfg : base_configs()) rows.push_back({cfg, 0, 0});

  unsigned n = 0;
  for (const auto& [name, split] : traces) {
    const Trace& stream = instruction_stream ? split.ifetch : split.data;
    TraceEvaluator eval(stream, model);
    const double base = eval.energy(base_cache());
    for (Row& row : rows) {
      row.miss_sum += eval.stats(row.cfg).miss_rate();
      row.energy_sum += eval.energy(row.cfg) / base;
    }
    ++n;
  }

  for (const Row& row : rows) {
    table.add_row({row.cfg.name(), fmt_percent(row.miss_sum / n, 2),
                   fmt_double(row.energy_sum / n, 3)});
  }
  table.print(std::cout);

  // The figures' qualitative reading: size has the largest impact, line
  // size matters more for data than instructions, associativity the least.
  auto avg_over = [&](auto pred) {
    double sum = 0;
    unsigned count = 0;
    for (const Row& row : rows) {
      if (pred(row.cfg)) {
        sum += row.energy_sum / n;
        ++count;
      }
    }
    return sum / count;
  };
  std::cout << "\nAverage normalized energy by total size:\n";
  for (CacheSizeKB s : kCacheSizes) {
    std::cout << "  " << to_string(s) << "B-class: "
              << fmt_double(avg_over([&](const CacheConfig& c) {
                              return c.size_kb == s;
                            }),
                            3)
              << "\n";
  }
  std::cout << "Average normalized energy by line size:\n";
  for (LineBytes l : kLineSizes) {
    std::cout << "  " << to_string(l) << ": "
              << fmt_double(avg_over([&](const CacheConfig& c) {
                              return c.line == l;
                            }),
                            3)
              << "\n";
  }
  std::cout << "Average normalized energy by associativity:\n";
  for (Assoc a : kAssocs) {
    std::cout << "  " << to_string(a) << ": "
              << fmt_double(avg_over([&](const CacheConfig& c) {
                              return c.assoc == a;
                            }),
                            3)
              << "\n";
  }
  return 0;
}

}  // namespace stcache::bench
