// bench_replay_throughput — differential throughput of the three replay
// engines on the exhaustive 27-configuration bank sweep, of the two
// interpreters on trace capture, and of the streaming pipeline against the
// capture-to-disk round trip.
//
// Usage: bench_replay_throughput [--reps N] [--max-records N]
//                                [--out file.json]
//
// Replay section: for each workload, the 27 legal configurations are
// grouped into specialization classes by (ways, way prediction) — 1W:9,
// 2W:6, 2W_P:6, 4W:3, 4W_P:3 — and each class's bank sweep is timed under
// all three engines (best of --reps runs; default 3). The exhaustive row
// ("all") is timed DIRECTLY as one 27-configuration bank, not summed from
// the class rows: the oneshot engine shares one stack-distance traversal
// per line size across every specialization class, so a class-major sum
// would charge it three traversals per class and understate the sharing.
// The stream is captured AND packed once per workload, outside the timed
// region: a rep times bank construction + feed + stats only, so the rows
// measure replay, not the pack pass they all share (capture cost has its
// own section below).
//
// SIMD section: the oneshot stack-sweep kernel replayed with the AVX2
// flavor forced on vs. off (sims constructed outside the timed region so
// the ratio is kernel time, not allocation). The kernels replay the packed
// INSTRUCTION stream — the stream production sweeps feed — whose
// sequential-run structure the bulk-run kernel vectorizes; the merged
// trace the replay section uses would interleave data accesses between
// fetches and hide it. The scalar-vs-SIMD speedup is a PR acceptance
// metric (>= 1.3x when an AVX2 kernel is compiled in and the CPU has it;
// gated by scripts/bench_check.py).
//
// Parallel section: the exhaustive oneshot sweep with the set-partitioned
// parallel engine (--sweep-jobs) at jobs = min(cpus, 32) against serial,
// reporting the aggregate simulated records/second. bench_check.py arms
// the aggregate floor only when the snapshot reports cpus >= 2 — one core
// cannot outrun itself, and the merge is bit-identical either way.
//
// Capture section: each workload is captured end to end by the reference
// interpreter (Cpu + TracingMemory, the stcache_trace path) and by the
// fast interpreter (FastCpu + PackedBufferSink, the capture_packed path),
// reported in instructions/second. The fast/reference ratio is the PR's
// capture acceptance metric (>= 3x, gated by scripts/bench_check.py).
//
// End-to-end section: the full exhaustive-tune pipeline per workload,
// (a) the old round trip — reference capture, save_trace to disk,
// load_packed_trace back, 27-config bank sweep — against (b) the streaming
// pipeline — stream_workload folding chunks straight into a
// BankAccumulator, no trace ever materialized. The streaming/disk ratio is
// the second acceptance metric (>= 2x, also gated by bench_check.py).
//
// Results land on stdout as a table and in --out (default
// BENCH_replay.json) as JSON; the committed BENCH_replay.json at the repo
// root is a snapshot from the container this repo is developed in, and
// scripts/bench_check.py gates CI runs against it.
//
// Throughput here counts simulated records: a sweep over C configurations
// of an N-record stream processes N*C records.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cache/stack_sweep.hpp"
#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/fast_cpu.hpp"
#include "trace/replay.hpp"
#include "trace/stream.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace stcache {
namespace {

struct Options {
  unsigned reps = 3;
  std::size_t max_records = 200'000;
  std::string out = "BENCH_replay.json";
};

std::string class_name(const CacheConfig& cfg) {
  std::string s = std::to_string(static_cast<unsigned>(cfg.ways())) + "W";
  if (cfg.way_prediction) s += "_P";
  return s;
}

// Seconds per bank sweep over an already-packed stream, best of `reps`:
// bank construction + feed + stats. Every engine consumes the same packed
// words through a BankAccumulator, so the rows compare replay kernels, not
// the shared pack pass (hoisted to the caller, outside all timing).
double time_bank(const std::vector<CacheConfig>& configs,
                 std::span<const std::uint32_t> packed, ReplayEngine engine,
                 unsigned reps) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    BankAccumulator bank(configs, {}, engine);
    bank.feed(packed);
    const std::vector<CacheStats> stats = bank.stats();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (stats.size() != configs.size()) fail("bank sweep dropped configs");
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// One timed sweep under each engine plus its JSON fragment.
struct EngineTimes {
  double ref = 0.0, fast = 0.0, oneshot = 0.0;
};

EngineTimes time_all_engines(const std::vector<CacheConfig>& configs,
                             std::span<const std::uint32_t> packed,
                             unsigned reps) {
  EngineTimes t;
  t.ref = time_bank(configs, packed, ReplayEngine::kReference, reps);
  t.fast = time_bank(configs, packed, ReplayEngine::kFast, reps);
  t.oneshot = time_bank(configs, packed, ReplayEngine::kOneshot, reps);
  return t;
}

// --- SIMD oneshot kernel: scalar vs AVX2 ------------------------------------

// The 27 configurations grouped by line size — the three stack-distance
// traversals the oneshot engine actually runs for an exhaustive sweep.
std::vector<std::vector<CacheConfig>> line_size_groups() {
  std::vector<std::vector<CacheConfig>> groups;
  for (const LineBytes line : kLineSizes) {
    std::vector<CacheConfig> g;
    for (const CacheConfig& cfg : all_configs()) {
      if (cfg.line == line) g.push_back(cfg);
    }
    if (g.size() > 1) groups.push_back(std::move(g));
  }
  return groups;
}

// Pure kernel replay time: the sims are constructed outside the timed
// region (their allocation/zeroing would otherwise dilute the flavor
// ratio on short streams), and each rep replays the whole stream through
// all three traversals.
double time_sweep_kernels(const std::vector<std::vector<CacheConfig>>& groups,
                          std::span<const std::uint32_t> packed, bool simd,
                          unsigned reps) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    set_stack_sweep_simd(simd);
    std::vector<StackSweepSim> sims;
    sims.reserve(groups.size());
    for (const std::vector<CacheConfig>& g : groups) sims.emplace_back(g);
    const auto start = std::chrono::steady_clock::now();
    for (StackSweepSim& sim : sims) sim.replay(packed);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (sims[g].stats(groups[g].front()).accesses != packed.size()) {
        fail("sweep kernel dropped records");
      }
    }
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

// --- parallel set-partitioned sweep ------------------------------------------

// Exhaustive oneshot bank feed+stats with an explicit shard count; the
// bank (sims, scratch partitions) is constructed outside the timed region,
// the lazily-spawned worker pool is inside it (a real cost of the first
// feed, amortized in production by streaming many chunks).
double time_parallel_bank(const std::vector<CacheConfig>& configs,
                          std::span<const std::uint32_t> packed, unsigned jobs,
                          unsigned reps) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    BankAccumulator bank(configs, {}, ReplayEngine::kOneshot, jobs);
    const auto start = std::chrono::steady_clock::now();
    bank.feed(packed);
    const std::vector<CacheStats> stats = bank.stats();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (stats.size() != configs.size()) fail("bank sweep dropped configs");
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

std::string json_rates(const EngineTimes& t, double recs) {
  return "\"reference_records_per_second\": " + fmt(recs / t.ref) +
         ", \"fast_records_per_second\": " + fmt(recs / t.fast) +
         ", \"oneshot_records_per_second\": " + fmt(recs / t.oneshot) +
         ", \"fast_speedup\": " + fmt(t.ref / t.fast) +
         ", \"oneshot_speedup\": " + fmt(t.fast / t.oneshot);
}

template <typename F>
double best_of(unsigned reps, F&& body) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

// --- capture throughput ------------------------------------------------------

struct CaptureTimes {
  std::uint64_t instructions = 0;
  double ref = 0.0;   // reference interpreter, TraceRecord capture
  double fast = 0.0;  // fast interpreter, packed capture
};

// Times workload -> packed split streams, the product every replay path
// consumes, with assembly hoisted out. The reference route is the old
// round trip: Cpu + TracingMemory capture, split_trace, pack_stream on
// both halves. The fast route emits the packed split streams directly
// (FastCpu + PackedBufferSink) — interpreter construction including the
// predecode pass is inside the timed region.
CaptureTimes time_capture(const Workload& w, unsigned reps) {
  CaptureTimes t;
  const Program p = assemble(w.source);
  std::vector<std::uint32_t> iscratch, dscratch;
  t.ref = best_of(reps, [&] {
    TracingMemory tm;
    Cpu cpu(p, tm, w.mem_bytes);
    const RunResult r = cpu.run(w.max_instructions);
    if (!r.halted || cpu.reg(kV0) != w.expected_checksum) {
      fail("reference capture failed for " + w.name);
    }
    t.instructions = r.instructions;
    const SplitTrace split = split_trace(tm.trace());
    pack_stream(split.ifetch, iscratch);
    pack_stream(split.data, dscratch);
  });
  t.fast = best_of(reps, [&] {
    FastCpu cpu(p, w.mem_bytes);
    PackedBufferSink sink;
    const RunResult r = cpu.run(w.max_instructions, sink);
    if (!r.halted || cpu.reg(kV0) != w.expected_checksum ||
        r.instructions != t.instructions) {
      fail("fast capture diverged for " + w.name);
    }
  });
  return t;
}

// --- end-to-end exhaustive tune ----------------------------------------------

struct EndToEndTimes {
  double disk = 0.0;       // reference capture -> save -> load -> bank sweep
  double streaming = 0.0;  // stream_workload -> BankAccumulator, no trace
};

EndToEndTimes time_end_to_end(const Workload& w, unsigned reps,
                              const std::string& scratch_path) {
  EndToEndTimes t;
  const std::vector<CacheConfig>& configs = all_configs();
  t.disk = best_of(reps, [&] {
    const Program p = assemble(w.source);
    TracingMemory tm;
    Cpu cpu(p, tm, w.mem_bytes);
    const RunResult r = cpu.run(w.max_instructions);
    if (!r.halted || cpu.reg(kV0) != w.expected_checksum) {
      fail("reference capture failed for " + w.name);
    }
    save_trace(scratch_path, tm.trace());
    const PackedSplitTrace split = load_packed_trace(scratch_path);
    BankAccumulator bank(configs);
    bank.feed(split.ifetch);
    if (bank.stats().size() != configs.size()) fail("bank dropped configs");
  });
  t.streaming = best_of(reps, [&] {
    BankAccumulator bank(configs);
    stream_workload(w, [&](const PackedChunk& chunk) {
      bank.feed(chunk.ifetch_words());
    });
    if (bank.stats().size() != configs.size()) fail("bank dropped configs");
  });
  std::remove(scratch_path.c_str());
  return t;
}

int run(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      opts.reps = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--max-records") == 0 && i + 1 < argc)
      opts.max_records = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      opts.out = argv[++i];
    else {
      std::cerr << "usage: " << argv[0]
                << " [--reps N] [--max-records N] [--out file.json]\n";
      return 2;
    }
  }
  std::cerr
      << "[replay] engine=reference+fast+oneshot (differential throughput)\n";

  // Group the 27 configurations by specialization class, preserving
  // registry order inside each class.
  std::map<std::string, std::vector<CacheConfig>> by_class;
  for (const CacheConfig& cfg : all_configs()) {
    by_class[class_name(cfg)].push_back(cfg);
  }

  const std::vector<std::string> workload_set = {"crc", "bcnt", "ucbqsort"};
  Table table({"workload", "class", "configs", "reference rec/s", "fast rec/s",
               "oneshot rec/s", "fast/ref", "oneshot/fast"});
  std::string json = "{\n  \"reps\": " + std::to_string(opts.reps) +
                     ",\n  \"workloads\": [\n";

  // Capture and pack each stream once, before any timing: the replay and
  // parallel sections consume the packed merged trace; the SIMD section
  // replays the packed instruction stream — the stream the production
  // sweeps (stcache_tune, fig3) actually feed, whose sequential-run
  // structure is what the bulk-run kernel vectorizes.
  std::vector<std::vector<std::uint32_t>> packed_streams(workload_set.size());
  std::vector<std::vector<std::uint32_t>> packed_ifetch(workload_set.size());
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    Trace stream = capture_trace(find_workload(workload_set[wi]));
    const SplitTrace split = split_trace(stream);
    const std::span<const TraceRecord> if_span(
        split.ifetch.data(), std::min(split.ifetch.size(), opts.max_records));
    pack_stream(if_span, packed_ifetch[wi]);
    if (stream.size() > opts.max_records) stream.resize(opts.max_records);
    pack_stream(stream, packed_streams[wi]);
  }

  EngineTimes total;
  std::uint64_t total_records = 0;
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    const std::string& name = workload_set[wi];
    const std::span<const std::uint32_t> packed = packed_streams[wi];

    std::string class_json;
    for (const auto& [cls, cfgs] : by_class) {
      const EngineTimes t = time_all_engines(cfgs, packed, opts.reps);
      const double recs = static_cast<double>(packed.size()) *
                          static_cast<double>(cfgs.size());
      table.add_row({name, cls, std::to_string(cfgs.size()),
                     fmt(recs / t.ref), fmt(recs / t.fast),
                     fmt(recs / t.oneshot), fmt(t.ref / t.fast),
                     fmt(t.fast / t.oneshot)});
      if (!class_json.empty()) class_json += ",\n";
      class_json += "        {\"class\": \"" + cls +
                    "\", \"configs\": " + std::to_string(cfgs.size()) + ", " +
                    json_rates(t, recs) + "}";
    }

    // The exhaustive sweep, timed as one bank (this is where cross-class
    // traversal sharing shows up).
    const EngineTimes wl = time_all_engines(all_configs(), packed, opts.reps);
    const double wl_recs = static_cast<double>(packed.size()) * 27.0;
    table.add_row({name, "all", "27", fmt(wl_recs / wl.ref),
                   fmt(wl_recs / wl.fast), fmt(wl_recs / wl.oneshot),
                   fmt(wl.ref / wl.fast), fmt(wl.fast / wl.oneshot)});
    total.ref += wl.ref;
    total.fast += wl.fast;
    total.oneshot += wl.oneshot;
    total_records += packed.size() * 27;
    json += std::string("    {\"name\": \"") + name +
            "\", \"records\": " + std::to_string(packed.size()) + ",\n     " +
            json_rates(wl, wl_recs) + ",\n     \"classes\": [\n" + class_json +
            "\n     ]}" + (wi + 1 < workload_set.size() ? ",\n" : "\n");
  }

  const double recs = static_cast<double>(total_records);
  table.add_row({"OVERALL", "all", "27", fmt(recs / total.ref),
                 fmt(recs / total.fast), fmt(recs / total.oneshot),
                 fmt(total.ref / total.fast), fmt(total.fast / total.oneshot)});
  table.print(std::cout);
  std::cout << "\nExhaustive 27-config bank sweep: fast vs reference "
            << fmt(total.ref / total.fast) << "x, oneshot vs fast "
            << fmt(total.fast / total.oneshot) << "x\n";

  // --- SIMD: oneshot stack-sweep kernel, scalar vs AVX2 ---------------------
  const bool simd_avail = stack_sweep_simd_available();
  const std::vector<std::vector<CacheConfig>> groups = line_size_groups();
  Table simd_table({"workload", "records", "scalar rec/s", "simd rec/s",
                    "simd/scalar"});
  std::string simd_json;
  double simd_scalar_total = 0.0, simd_vec_total = 0.0;
  std::uint64_t simd_records = 0;
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    const std::span<const std::uint32_t> packed = packed_ifetch[wi];
    const double scalar =
        time_sweep_kernels(groups, packed, false, opts.reps);
    const double vec = time_sweep_kernels(groups, packed, simd_avail, opts.reps);
    const double recs = static_cast<double>(packed.size()) * 27.0;
    simd_table.add_row({workload_set[wi], std::to_string(packed.size()),
                        fmt(recs / scalar), fmt(recs / vec),
                        fmt(scalar / vec)});
    simd_scalar_total += scalar;
    simd_vec_total += vec;
    simd_records += packed.size() * 27;
    if (!simd_json.empty()) simd_json += ",\n";
    simd_json += "      {\"name\": \"" + workload_set[wi] +
                 "\", \"records\": " + std::to_string(packed.size()) +
                 ", \"scalar_records_per_second\": " + fmt(recs / scalar) +
                 ", \"simd_records_per_second\": " + fmt(recs / vec) +
                 ", \"speedup\": " + fmt(scalar / vec) + "}";
  }
  set_stack_sweep_simd(true);  // back to the runtime default for later sections
  const double simd_recs_d = static_cast<double>(simd_records);
  std::cout << "\n";
  simd_table.print(std::cout);
  std::cout << "\nOneshot sweep kernel: AVX2 vs scalar "
            << fmt(simd_scalar_total / simd_vec_total) << "x"
            << (simd_avail ? "" : " (AVX2 unavailable; both rows scalar)")
            << "\n";

  // --- parallel: set-partitioned exhaustive sweep ---------------------------
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  const unsigned par_jobs = std::min(cpus, 32u);
  Table par_table({"workload", "records", "serial rec/s", "parallel rec/s",
                   "speedup"});
  std::string par_json;
  double par_serial_total = 0.0, par_par_total = 0.0;
  std::uint64_t par_records = 0;
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    const std::span<const std::uint32_t> packed = packed_streams[wi];
    const double serial =
        time_parallel_bank(all_configs(), packed, 1, opts.reps);
    const double par =
        par_jobs > 1 ? time_parallel_bank(all_configs(), packed, par_jobs,
                                          opts.reps)
                     : serial;
    const double recs = static_cast<double>(packed.size()) * 27.0;
    par_table.add_row({workload_set[wi], std::to_string(packed.size()),
                       fmt(recs / serial), fmt(recs / par),
                       fmt(serial / par)});
    par_serial_total += serial;
    par_par_total += par;
    par_records += packed.size() * 27;
    if (!par_json.empty()) par_json += ",\n";
    par_json += "      {\"name\": \"" + workload_set[wi] +
                "\", \"records\": " + std::to_string(packed.size()) +
                ", \"serial_records_per_second\": " + fmt(recs / serial) +
                ", \"parallel_records_per_second\": " + fmt(recs / par) +
                ", \"speedup\": " + fmt(serial / par) + "}";
  }
  const double par_recs_d = static_cast<double>(par_records);
  std::cout << "\n";
  par_table.print(std::cout);
  std::cout << "\nParallel exhaustive sweep (" << par_jobs << " jobs on "
            << cpus << " cpus): aggregate "
            << fmt(par_recs_d / par_par_total) << " rec/s, "
            << fmt(par_serial_total / par_par_total) << "x vs serial\n";

  // --- capture throughput: reference vs fast interpreter --------------------
  Table cap_table({"workload", "instructions", "reference instr/s",
                   "fast instr/s", "fast/ref"});
  std::string cap_json;
  CaptureTimes cap_total;
  std::uint64_t cap_instr = 0;
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    const Workload& w = find_workload(workload_set[wi]);
    const CaptureTimes t = time_capture(w, opts.reps);
    const double instr = static_cast<double>(t.instructions);
    cap_table.add_row({w.name, std::to_string(t.instructions),
                       fmt(instr / t.ref), fmt(instr / t.fast),
                       fmt(t.ref / t.fast)});
    cap_total.ref += t.ref;
    cap_total.fast += t.fast;
    cap_instr += t.instructions;
    if (!cap_json.empty()) cap_json += ",\n";
    cap_json += "      {\"name\": \"" + w.name +
                "\", \"instructions\": " + std::to_string(t.instructions) +
                ", \"reference_instructions_per_second\": " +
                fmt(instr / t.ref) + ", \"fast_instructions_per_second\": " +
                fmt(instr / t.fast) + ", \"speedup\": " + fmt(t.ref / t.fast) +
                "}";
  }
  const double cap_instr_d = static_cast<double>(cap_instr);
  cap_table.add_row({"OVERALL", std::to_string(cap_instr),
                     fmt(cap_instr_d / cap_total.ref),
                     fmt(cap_instr_d / cap_total.fast),
                     fmt(cap_total.ref / cap_total.fast)});
  std::cout << "\n";
  cap_table.print(std::cout);
  std::cout << "\nTrace capture: fast interpreter vs reference "
            << fmt(cap_total.ref / cap_total.fast) << "x\n";

  // --- end-to-end exhaustive tune: streaming vs disk round trip -------------
  const std::string scratch_path = opts.out + ".e2e.stct";
  Table e2e_table({"workload", "disk round trip (s)", "streaming (s)",
                   "streaming/disk"});
  std::string e2e_json;
  EndToEndTimes e2e_total;
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    const Workload& w = find_workload(workload_set[wi]);
    const EndToEndTimes t = time_end_to_end(w, opts.reps, scratch_path);
    e2e_table.add_row({w.name, fmt(t.disk), fmt(t.streaming),
                       fmt(t.disk / t.streaming)});
    e2e_total.disk += t.disk;
    e2e_total.streaming += t.streaming;
    if (!e2e_json.empty()) e2e_json += ",\n";
    e2e_json += "      {\"name\": \"" + w.name + "\", \"disk_seconds\": " +
                fmt(t.disk) + ", \"streaming_seconds\": " + fmt(t.streaming) +
                ", \"speedup\": " + fmt(t.disk / t.streaming) + "}";
  }
  e2e_table.add_row({"OVERALL", fmt(e2e_total.disk), fmt(e2e_total.streaming),
                     fmt(e2e_total.disk / e2e_total.streaming)});
  std::cout << "\n";
  e2e_table.print(std::cout);
  std::cout << "\nExhaustive tune end to end: streaming vs capture-to-disk "
            << fmt(e2e_total.disk / e2e_total.streaming) << "x\n";

  json += "  ],\n  \"overall\": {" + json_rates(total, recs) + "},\n";
  json += std::string("  \"simd\": {\n    \"available\": ") +
          (simd_avail ? "true" : "false") + ",\n    \"workloads\": [\n" +
          simd_json + "\n    ],\n    \"overall\": {" +
          "\"scalar_records_per_second\": " +
          fmt(simd_recs_d / simd_scalar_total) +
          ", \"simd_records_per_second\": " + fmt(simd_recs_d / simd_vec_total) +
          ", \"speedup\": " + fmt(simd_scalar_total / simd_vec_total) +
          "}\n  },\n";
  json += "  \"parallel\": {\n    \"cpus\": " + std::to_string(cpus) +
          ",\n    \"jobs\": " + std::to_string(par_jobs) +
          ",\n    \"partitions\": " + std::to_string(sweep_partitions()) +
          ",\n    \"workloads\": [\n" + par_json + "\n    ],\n    \"overall\": {" +
          "\"serial_records_per_second\": " +
          fmt(par_recs_d / par_serial_total) +
          ", \"aggregate_records_per_second\": " +
          fmt(par_recs_d / par_par_total) +
          ", \"speedup\": " + fmt(par_serial_total / par_par_total) +
          "}\n  },\n";
  json += "  \"capture\": {\n    \"workloads\": [\n" + cap_json +
          "\n    ],\n    \"overall\": {\"instructions\": " +
          std::to_string(cap_instr) +
          ", \"reference_instructions_per_second\": " +
          fmt(cap_instr_d / cap_total.ref) +
          ", \"fast_instructions_per_second\": " +
          fmt(cap_instr_d / cap_total.fast) +
          ", \"speedup\": " + fmt(cap_total.ref / cap_total.fast) + "}\n  },\n";
  json += "  \"end_to_end\": {\n    \"workloads\": [\n" + e2e_json +
          "\n    ],\n    \"overall\": {\"disk_seconds\": " +
          fmt(e2e_total.disk) + ", \"streaming_seconds\": " +
          fmt(e2e_total.streaming) +
          ", \"speedup\": " + fmt(e2e_total.disk / e2e_total.streaming) +
          "}\n  }\n}\n";
  if (!opts.out.empty()) {
    std::ofstream os(opts.out);
    if (!os) {
      std::cerr << "error: cannot write '" << opts.out << "'\n";
      return 1;
    }
    os << json;
  }
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) {
  try {
    return stcache::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
