// bench_replay_throughput — differential throughput of the three replay
// engines on the exhaustive 27-configuration bank sweep.
//
// Usage: bench_replay_throughput [--reps N] [--max-records N]
//                                [--out file.json]
//
// For each workload, the 27 legal configurations are grouped into
// specialization classes by (ways, way prediction) — 1W:9, 2W:6, 2W_P:6,
// 4W:3, 4W_P:3 — and each class's bank sweep is timed under all three
// engines (best of --reps runs; default 3). The exhaustive row ("all") is
// timed DIRECTLY as one 27-configuration bank, not summed from the class
// rows: the oneshot engine shares one stack-distance traversal per line
// size across every specialization class, so a class-major sum would
// charge it three traversals per class and understate the sharing. The
// directly-timed all-27 row is the acceptance metric (oneshot vs fast).
// Results land on stdout as a table and in --out (default
// BENCH_replay.json) as JSON; the committed BENCH_replay.json at the repo
// root is a snapshot from the container this repo is developed in, and
// scripts/bench_check.py gates CI runs against it.
//
// Throughput here counts simulated records: a sweep over C configurations
// of an N-record stream processes N*C records.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace stcache {
namespace {

struct Options {
  unsigned reps = 3;
  std::size_t max_records = 200'000;
  std::string out = "BENCH_replay.json";
};

std::string class_name(const CacheConfig& cfg) {
  std::string s = std::to_string(static_cast<unsigned>(cfg.ways())) + "W";
  if (cfg.way_prediction) s += "_P";
  return s;
}

// Seconds per bank sweep, best of `reps`; the packed-stream scratch buffer
// is reused across every timing in the process (trace/replay.hpp overload).
double time_bank(const std::vector<CacheConfig>& configs, const Trace& stream,
                 ReplayEngine engine, unsigned reps,
                 std::vector<std::uint32_t>& scratch) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<CacheStats> stats =
        measure_config_bank(configs, stream, {}, engine, scratch);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (stats.size() != configs.size()) fail("bank sweep dropped configs");
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// One timed sweep under each engine plus its JSON fragment.
struct EngineTimes {
  double ref = 0.0, fast = 0.0, oneshot = 0.0;
};

EngineTimes time_all_engines(const std::vector<CacheConfig>& configs,
                             const Trace& stream, unsigned reps,
                             std::vector<std::uint32_t>& scratch) {
  EngineTimes t;
  t.ref = time_bank(configs, stream, ReplayEngine::kReference, reps, scratch);
  t.fast = time_bank(configs, stream, ReplayEngine::kFast, reps, scratch);
  t.oneshot = time_bank(configs, stream, ReplayEngine::kOneshot, reps, scratch);
  return t;
}

std::string json_rates(const EngineTimes& t, double recs) {
  return "\"reference_records_per_second\": " + fmt(recs / t.ref) +
         ", \"fast_records_per_second\": " + fmt(recs / t.fast) +
         ", \"oneshot_records_per_second\": " + fmt(recs / t.oneshot) +
         ", \"fast_speedup\": " + fmt(t.ref / t.fast) +
         ", \"oneshot_speedup\": " + fmt(t.fast / t.oneshot);
}

int run(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      opts.reps = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--max-records") == 0 && i + 1 < argc)
      opts.max_records = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      opts.out = argv[++i];
    else {
      std::cerr << "usage: " << argv[0]
                << " [--reps N] [--max-records N] [--out file.json]\n";
      return 2;
    }
  }
  std::cerr
      << "[replay] engine=reference+fast+oneshot (differential throughput)\n";

  // Group the 27 configurations by specialization class, preserving
  // registry order inside each class.
  std::map<std::string, std::vector<CacheConfig>> by_class;
  for (const CacheConfig& cfg : all_configs()) {
    by_class[class_name(cfg)].push_back(cfg);
  }

  const std::vector<std::string> workload_set = {"crc", "bcnt", "ucbqsort"};
  Table table({"workload", "class", "configs", "reference rec/s", "fast rec/s",
               "oneshot rec/s", "fast/ref", "oneshot/fast"});
  std::string json = "{\n  \"reps\": " + std::to_string(opts.reps) +
                     ",\n  \"workloads\": [\n";

  std::vector<std::uint32_t> scratch;
  EngineTimes total;
  std::uint64_t total_records = 0;
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    const std::string& name = workload_set[wi];
    Trace stream = capture_trace(find_workload(name));
    if (stream.size() > opts.max_records) stream.resize(opts.max_records);

    std::string class_json;
    for (const auto& [cls, cfgs] : by_class) {
      const EngineTimes t = time_all_engines(cfgs, stream, opts.reps, scratch);
      const double recs = static_cast<double>(stream.size()) *
                          static_cast<double>(cfgs.size());
      table.add_row({name, cls, std::to_string(cfgs.size()),
                     fmt(recs / t.ref), fmt(recs / t.fast),
                     fmt(recs / t.oneshot), fmt(t.ref / t.fast),
                     fmt(t.fast / t.oneshot)});
      if (!class_json.empty()) class_json += ",\n";
      class_json += "        {\"class\": \"" + cls +
                    "\", \"configs\": " + std::to_string(cfgs.size()) + ", " +
                    json_rates(t, recs) + "}";
    }

    // The exhaustive sweep, timed as one bank (this is where cross-class
    // traversal sharing shows up).
    const EngineTimes wl = time_all_engines(all_configs(), stream, opts.reps,
                                            scratch);
    const double wl_recs = static_cast<double>(stream.size()) * 27.0;
    table.add_row({name, "all", "27", fmt(wl_recs / wl.ref),
                   fmt(wl_recs / wl.fast), fmt(wl_recs / wl.oneshot),
                   fmt(wl.ref / wl.fast), fmt(wl.fast / wl.oneshot)});
    total.ref += wl.ref;
    total.fast += wl.fast;
    total.oneshot += wl.oneshot;
    total_records += stream.size() * 27;
    json += std::string("    {\"name\": \"") + name +
            "\", \"records\": " + std::to_string(stream.size()) + ",\n     " +
            json_rates(wl, wl_recs) + ",\n     \"classes\": [\n" + class_json +
            "\n     ]}" + (wi + 1 < workload_set.size() ? ",\n" : "\n");
  }

  const double recs = static_cast<double>(total_records);
  table.add_row({"OVERALL", "all", "27", fmt(recs / total.ref),
                 fmt(recs / total.fast), fmt(recs / total.oneshot),
                 fmt(total.ref / total.fast), fmt(total.fast / total.oneshot)});
  table.print(std::cout);
  std::cout << "\nExhaustive 27-config bank sweep: fast vs reference "
            << fmt(total.ref / total.fast) << "x, oneshot vs fast "
            << fmt(total.fast / total.oneshot) << "x\n";

  json += "  ],\n  \"overall\": {" + json_rates(total, recs) + "}\n}\n";
  if (!opts.out.empty()) {
    std::ofstream os(opts.out);
    if (!os) {
      std::cerr << "error: cannot write '" << opts.out << "'\n";
      return 1;
    }
    os << json;
  }
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) {
  try {
    return stcache::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
