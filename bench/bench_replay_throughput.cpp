// bench_replay_throughput — differential throughput of the two replay
// engines on the exhaustive 27-configuration bank sweep.
//
// Usage: bench_replay_throughput [--reps N] [--max-records N]
//                                [--out file.json]
//
// For each workload, the 27 legal configurations are grouped into
// specialization classes by (ways, way prediction) — 1W:9, 2W:6, 2W_P:6,
// 4W:3, 4W_P:3 — and each class's bank sweep is timed under both engines
// (best of --reps runs; default 3). The class times sum to the exhaustive
// sweep, so the table reports both the per-class and the overall
// records/second and the fast:reference speedup. Results land on stdout as
// a table and in --out (default BENCH_replay.json) as JSON; the committed
// BENCH_replay.json at the repo root is a snapshot from the container this
// repo is developed in.
//
// Throughput here counts simulated records: a sweep over C configurations
// of an N-record stream processes N*C records.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace stcache {
namespace {

struct Options {
  unsigned reps = 3;
  std::size_t max_records = 200'000;
  std::string out = "BENCH_replay.json";
};

struct ClassTiming {
  std::string name;     // 1W, 2W, 2W_P, 4W, 4W_P
  std::size_t configs = 0;
  double ref_seconds = 0.0;
  double fast_seconds = 0.0;
};

std::string class_name(const CacheConfig& cfg) {
  std::string s = std::to_string(static_cast<unsigned>(cfg.ways())) + "W";
  if (cfg.way_prediction) s += "_P";
  return s;
}

double time_bank(const std::vector<CacheConfig>& configs,
                 const Trace& stream, ReplayEngine engine, unsigned reps) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<CacheStats> stats =
        measure_config_bank(configs, stream, {}, engine);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (stats.size() != configs.size()) fail("bank sweep dropped configs");
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

int run(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      opts.reps = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--max-records") == 0 && i + 1 < argc)
      opts.max_records = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      opts.out = argv[++i];
    else {
      std::cerr << "usage: " << argv[0]
                << " [--reps N] [--max-records N] [--out file.json]\n";
      return 2;
    }
  }
  std::cerr << "[replay] engine=reference+fast (differential throughput)\n";

  // Group the 27 configurations by specialization class, preserving
  // registry order inside each class.
  std::vector<ClassTiming> classes;
  std::map<std::string, std::vector<CacheConfig>> by_class;
  for (const CacheConfig& cfg : all_configs()) {
    by_class[class_name(cfg)].push_back(cfg);
  }

  const std::vector<std::string> workload_set = {"crc", "bcnt", "ucbqsort"};
  Table table({"workload", "class", "configs", "reference rec/s",
               "fast rec/s", "speedup"});
  std::string json = "{\n  \"reps\": " + std::to_string(opts.reps) +
                     ",\n  \"workloads\": [\n";

  double total_ref = 0.0, total_fast = 0.0;
  std::uint64_t total_records = 0;
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    const std::string& name = workload_set[wi];
    Trace stream = capture_trace(find_workload(name));
    if (stream.size() > opts.max_records) stream.resize(opts.max_records);

    double wl_ref = 0.0, wl_fast = 0.0;
    std::string class_json;
    for (const auto& [cls, cfgs] : by_class) {
      const double ref_s = time_bank(cfgs, stream, ReplayEngine::kReference,
                                     opts.reps);
      const double fast_s =
          time_bank(cfgs, stream, ReplayEngine::kFast, opts.reps);
      wl_ref += ref_s;
      wl_fast += fast_s;
      const double recs = static_cast<double>(stream.size()) *
                          static_cast<double>(cfgs.size());
      table.add_row({name, cls, std::to_string(cfgs.size()),
                     fmt(recs / ref_s), fmt(recs / fast_s),
                     fmt(ref_s / fast_s)});
      if (!class_json.empty()) class_json += ",\n";
      class_json += "        {\"class\": \"" + cls +
                    "\", \"configs\": " + std::to_string(cfgs.size()) +
                    ", \"reference_records_per_second\": " + fmt(recs / ref_s) +
                    ", \"fast_records_per_second\": " + fmt(recs / fast_s) +
                    ", \"speedup\": " + fmt(ref_s / fast_s) + "}";
    }
    const double wl_recs = static_cast<double>(stream.size()) * 27.0;
    table.add_row({name, "all", "27", fmt(wl_recs / wl_ref),
                   fmt(wl_recs / wl_fast), fmt(wl_ref / wl_fast)});
    total_ref += wl_ref;
    total_fast += wl_fast;
    total_records += stream.size() * 27;
    json += std::string("    {\"name\": \"") + name +
            "\", \"records\": " + std::to_string(stream.size()) +
            ",\n     \"reference_records_per_second\": " +
            fmt(wl_recs / wl_ref) +
            ", \"fast_records_per_second\": " + fmt(wl_recs / wl_fast) +
            ", \"speedup\": " + fmt(wl_ref / wl_fast) +
            ",\n     \"classes\": [\n" + class_json + "\n     ]}" +
            (wi + 1 < workload_set.size() ? ",\n" : "\n");
  }

  const double overall = total_ref / total_fast;
  table.add_row({"OVERALL", "all", "27",
                 fmt(static_cast<double>(total_records) / total_ref),
                 fmt(static_cast<double>(total_records) / total_fast),
                 fmt(overall)});
  table.print(std::cout);
  std::cout << "\nExhaustive 27-config bank sweep, fast vs reference: "
            << fmt(overall) << "x\n";

  json += "  ],\n  \"overall\": {\"reference_records_per_second\": " +
          fmt(static_cast<double>(total_records) / total_ref) +
          ", \"fast_records_per_second\": " +
          fmt(static_cast<double>(total_records) / total_fast) +
          ", \"speedup\": " + fmt(overall) + "}\n}\n";
  if (!opts.out.empty()) {
    std::ofstream os(opts.out);
    if (!os) {
      std::cerr << "error: cannot write '" << opts.out << "'\n";
      return 1;
    }
    os << json;
  }
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) {
  try {
    return stcache::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
