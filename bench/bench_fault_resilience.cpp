// bench_fault_resilience — how much energy does the self-tuning heuristic
// lose when its measurement counters arrive corrupted, with and without the
// hardened tuner's plausibility guards?
//
// Methodology. For every benchmark's instruction stream the 27-point
// configuration space is measured once (a parallel sweep job per
// benchmark), and a BankTunerPort then serves every tuning session from
// that bank, so thousands of faulty sessions cost table lookups instead of
// trace replays. The fault-free FSMD choice is the drift reference. Then,
// per (benchmark x fault rate x trial), a FaultInjector running the default
// campaign (drop / bit-flip / saturate / coherent noise in equal parts,
// seeded per-trial via FaultPlan::reseeded) is interposed on the counter
// path and the tuner runs twice: guarded (TunerGuards defaults) and
// unguarded (TunerGuards::off). Each run's chosen configuration is scored
// with its CLEAN energy; drift is that energy relative to the fault-free
// choice, and the table reports the worst drift over the trials.
//
// The stdout table is byte-identical for any --jobs value: the sweep is
// index-keyed and every fault stream is a pure function of
// (benchmark, rate, trial), never of scheduling.
#include <string>
#include <vector>

#include "common.hpp"
#include "core/ports.hpp"
#include "core/tuner_fsmd.hpp"
#include "fault/fault.hpp"
#include "util/error.hpp"

namespace stcache::bench {
namespace {

constexpr double kRates[] = {0.0025, 0.01, 0.05};  // corrupted-interval rates
constexpr int kTrials = 32;                        // fault streams per cell
constexpr std::uint64_t kCampaignSeed = 0xFA17CA5E;
// The acceptance bar: the guarded tuner must stay within 5% of the
// fault-free choice at the default (1%) campaign rate.
constexpr double kDriftBudget = 0.05;
constexpr double kDefaultRate = 0.01;

struct WorkloadBank {
  const std::string* name;
  const Trace* stream;
  std::vector<CacheStats> stats;  // one per all_configs() entry
};

int run_bench(const BenchOptions& opts) {
  print_header(
      "Tuner energy drift under injected counter faults, guarded vs. "
      "unguarded",
      "robustness extension; fault model in docs/robustness.md");

  const EnergyModel model;
  const TimingParams timing;
  const std::vector<NamedSplitTrace> traces = ordered_split_traces();
  const std::vector<CacheConfig>& cfgs = all_configs();

  // Phase 1: one sweep job per benchmark measures the full bank.
  SweepRunner runner(opts.sweep);
  std::vector<WorkloadBank> banks = runner.map<WorkloadBank>(
      traces.size(),
      [&](std::size_t w) {
        WorkloadBank bank;
        bank.name = traces[w].name;
        bank.stream = &traces[w].split->ifetch;
        bank.stats = measure_config_bank(cfgs, *bank.stream, timing);
        runner.add_accesses(bank.stream->size() * cfgs.size());
        return bank;
      },
      [&](std::size_t w) { return *traces[w].name + " x 27-config bank"; });

  // Clean (double-precision) energy of one configuration, from the bank.
  auto clean_energy = [&](const WorkloadBank& bank, const CacheConfig& cfg) {
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      if (cfgs[i] == cfg) return model.evaluate(cfg, bank.stats[i]).total();
    }
    fail("bench_fault_resilience: choice outside the bank");
  };

  Table table({"Ben.", "fault-free choice", "grd 0.25%", "ungrd 0.25%",
               "grd 1%", "ungrd 1%", "grd 5%", "ungrd 5%"});

  double worst_guarded_default = 0.0;
  unsigned unguarded_breaches_default = 0;
  std::uint64_t faults_total = 0;
  std::uint64_t retries_total = 0;
  std::uint64_t exhausted_sessions = 0;

  for (std::size_t w = 0; w < banks.size(); ++w) {
    const WorkloadBank& bank = banks[w];
    const unsigned shift = TunerFsmd::shift_for(bank.stream->size() * 4);

    // Fault-free reference: guarded and unguarded walks must agree on a
    // pristine port (the guards are free when nothing fires).
    BankTunerPort clean_port(cfgs, bank.stats);
    TunerFsmd ref_tuner(model, timing, shift);
    const TunerFsmd::Result ref = ref_tuner.run(clean_port);
    {
      BankTunerPort port2(cfgs, bank.stats);
      TunerFsmd off_tuner(model, timing, shift, TunerGuards::off());
      const TunerFsmd::Result off = off_tuner.run(port2);
      if (!(off.best == ref.best)) {
        fail("bench_fault_resilience: guards changed the zero-fault walk on " +
             *bank.name);
      }
    }
    const double ref_energy = clean_energy(bank, ref.best);

    std::vector<std::string> row = {*bank.name, ref.best.name()};
    for (std::size_t ri = 0; ri < std::size(kRates); ++ri) {
      double worst[2] = {0.0, 0.0};  // [guarded, unguarded] max drift
      for (int trial = 0; trial < kTrials; ++trial) {
        const FaultPlan plan =
            FaultPlan::campaign(kRates[ri], kCampaignSeed)
                .reseeded((w * std::size(kRates) + ri) * kTrials +
                          static_cast<std::uint64_t>(trial));
        for (int mode = 0; mode < 2; ++mode) {
          const bool guarded = mode == 0;
          FaultInjector injector(plan);
          BankTunerPort bank_port(cfgs, bank.stats);
          TappedTunerPort port(bank_port, injector);
          TunerFsmd tuner(model, timing, shift,
                          guarded ? TunerGuards{} : TunerGuards::off());
          const TunerFsmd::Result r = tuner.run(port);
          const double drift = clean_energy(bank, r.best) / ref_energy - 1.0;
          worst[mode] = std::max(worst[mode], drift);
          faults_total += injector.faults_injected();
          if (guarded) {
            retries_total += r.remeasurements;
            if (r.guard_exhausted) ++exhausted_sessions;
          }
        }
      }
      row.push_back(fmt_percent(worst[0], 1));
      row.push_back(fmt_percent(worst[1], 1));
      if (kRates[ri] == kDefaultRate) {
        worst_guarded_default = std::max(worst_guarded_default, worst[0]);
        if (worst[1] > kDriftBudget) ++unguarded_breaches_default;
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nEach cell: worst clean-energy drift from the fault-free "
               "choice over "
            << kTrials << " seeded fault streams (default campaign: drop / "
            << "bit-flip / saturate / coherent noise in equal parts).\n";
  std::cout << "At the default 1% corrupted-interval rate:\n";
  std::cout << "  guarded worst drift:   " << fmt_percent(worst_guarded_default, 2)
            << " (budget " << fmt_percent(kDriftBudget, 0) << ")\n";
  std::cout << "  unguarded breaches:    " << unguarded_breaches_default << "/"
            << banks.size() << " benchmarks beyond the budget\n";
  std::cout << "Fault accounting across all campaigns: " << faults_total
            << " faults injected, " << retries_total
            << " guard re-measurements, " << exhausted_sessions
            << " guarded sessions exhausted.\n";

  finish_sweep(runner, opts);
  return 0;
}

}  // namespace
}  // namespace stcache::bench

int main(int argc, char** argv) {
  const auto opts = stcache::bench::parse_bench_args(argc, argv);
  try {
    return stcache::bench::run_bench(opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
