// Reconfiguration-transition cost (the Figure 5 analysis, quantified).
//
// For each class of configuration change the paper analyzes — increasing
// associativity, increasing size, changing line size, decreasing size —
// measure, on a warm cache running a real benchmark's data stream:
//   * what fraction of the previously hitting blocks still hit, and
//   * how many dirty lines the switch wrote back.
// This substantiates the heuristic's ordering rules: grow, never shrink;
// hits survive associativity increases completely and size increases
// partially; line-size changes are free.
#include <iostream>
#include <unordered_set>

#include "common.hpp"
#include "cache/configurable_cache.hpp"

namespace stcache {
namespace {

struct TransitionReport {
  double hit_survival = 0.0;
  std::uint64_t writebacks = 0;
};

TransitionReport measure_transition(const char* from, const char* to,
                                    std::span<const TraceRecord> stream) {
  ConfigurableCache cache(CacheConfig::parse(from));
  // Warm with the first half of the stream.
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    cache.access(stream[i].addr, stream[i].kind == AccessKind::kWrite);
  }
  // Sample which recently-touched blocks currently hit.
  std::unordered_set<std::uint32_t> hitting;
  const std::size_t window = std::min<std::size_t>(half, 20'000);
  for (std::size_t i = half - window; i < half; ++i) {
    const std::uint32_t block_addr = stream[i].addr & ~15u;
    if (cache.probe(block_addr)) hitting.insert(block_addr);
  }

  TransitionReport r;
  r.writebacks = cache.reconfigure(CacheConfig::parse(to));
  if (!hitting.empty()) {
    std::size_t survived = 0;
    for (std::uint32_t a : hitting) {
      if (cache.probe(a)) ++survived;
    }
    r.hit_survival = static_cast<double>(survived) / hitting.size();
  }
  return r;
}

int run() {
  bench::print_header(
      "Cost of each reconfiguration class on a warm cache (hit survival "
      "and forced write-backs)",
      "Figure 5 analysis (Section 3.3)");

  const struct {
    const char* label;
    const char* from;
    const char* to;
  } kTransitions[] = {
      {"assoc up (1W->2W @8K)", "8K_1W_16B", "8K_2W_16B"},
      {"assoc up (2W->4W @8K)", "8K_2W_16B", "8K_4W_16B"},
      {"line up (16B->64B)", "4K_1W_16B", "4K_1W_64B"},
      {"line down (64B->16B)", "4K_1W_64B", "4K_1W_16B"},
      {"size up (2K->4K)", "2K_1W_16B", "4K_1W_16B"},
      {"size up (4K->8K)", "4K_1W_16B", "8K_1W_16B"},
      {"size down (8K->2K)", "8K_1W_16B", "2K_1W_16B"},
      {"assoc down (4W->1W @8K)", "8K_4W_16B", "8K_1W_16B"},
  };

  Table table({"transition", "hit survival", "dirty write-backs"});
  const SplitTrace& split = bench::all_split_traces().at("ucbqsort");
  for (const auto& t : kTransitions) {
    const TransitionReport r = measure_transition(t.from, t.to, split.data);
    table.add_row({t.label, fmt_percent(r.hit_survival, 1),
                   std::to_string(r.writebacks)});
  }
  table.print(std::cout);

  std::cout << "\nReading: associativity increases and line-size changes\n"
            << "preserve all hits at zero write-back cost; size increases\n"
            << "lose the blocks whose new index bit flipped (extra misses,\n"
            << "cheap write-backs); shrinking pays for every dirty line in\n"
            << "the gated banks — which is why the heuristic only grows.\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
