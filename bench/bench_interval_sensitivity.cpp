// Measurement-interval sensitivity of the tuner's decisions.
//
// The paper evaluates the heuristic on full-benchmark simulations, but the
// hardware tuner measures bounded intervals of a RUNNING program with a
// warm, just-reconfigured cache. How short can the interval be before the
// decisions degrade? For each benchmark's instruction stream we tune with
// live windows of 10k / 50k / 200k accesses (LiveTunerPort over a cursor
// that keeps advancing, exactly like the hardware) and compare the chosen
// configuration's full-trace energy against the full-trace oracle tuning.
#include <iostream>

#include "common.hpp"
#include "core/ports.hpp"
#include "core/tuner_fsmd.hpp"
#include "util/stats.hpp"

namespace stcache {
namespace {

// Tune with live windows of `window` accesses; return the chosen config.
CacheConfig live_tune(const Trace& stream, std::size_t window,
                      const EnergyModel& model) {
  ConfigurableCache cache(CacheConfig::parse("2K_1W_16B"));
  std::size_t cursor = 0;
  LiveTunerPort port(cache, [&] {
    for (std::size_t i = 0; i < window; ++i) {
      const TraceRecord& r = stream[cursor];
      cache.access(r.addr, r.kind == AccessKind::kWrite);
      cursor = (cursor + 1) % stream.size();  // programs loop; so do we
    }
  });
  TunerFsmd tuner(model, cache.timing(), TunerFsmd::shift_for(window * 2));
  return tuner.run(port).best;
}

int run() {
  bench::print_header(
      "Sensitivity of tuning decisions to the measurement-interval length",
      "hardware-methodology gap between Section 3.5 and the Table 1 "
      "evaluation");

  const EnergyModel model;
  const std::size_t kWindows[] = {10'000, 50'000, 200'000};

  Table table({"Ben.", "oracle", "10k window", "50k window", "200k window"});
  RunningStats regret[3];

  for (const std::string& name : bench::workload_names()) {
    const Trace& stream = bench::all_split_traces().at(name).ifetch;
    TraceEvaluator eval(stream, model);
    const SearchResult oracle = tune(eval);

    std::vector<std::string> cells = {name, oracle.best.name()};
    for (std::size_t w = 0; w < 3; ++w) {
      const CacheConfig chosen = live_tune(stream, kWindows[w], model);
      const double gap = eval.energy(chosen) / oracle.best_energy - 1.0;
      regret[w].add(gap);
      cells.push_back(chosen.name() +
                      (gap > 0.001 ? " (+" + fmt_percent(gap, 1) + ")" : ""));
    }
    table.add_row(cells);
  }
  table.print(std::cout);

  std::cout << "\nMean energy regret vs. the full-trace oracle:\n";
  const char* labels[] = {"10k", "50k", "200k"};
  for (std::size_t w = 0; w < 3; ++w) {
    std::cout << "  " << labels[w] << " windows: mean "
              << fmt_percent(regret[w].mean(), 2) << ", worst "
              << fmt_percent(regret[w].max(), 1) << "\n";
  }
  std::cout << "\nReading: interval tuning on a warm, looping program\n"
            << "reproduces the oracle decisions once the window covers a\n"
            << "few loop iterations; very short windows can be fooled by\n"
            << "the cold-start transient of freshly grown configurations.\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
