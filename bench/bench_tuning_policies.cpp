// Tuning-application policies (Section 1's list of deployment approaches).
//
// The paper leaves WHEN to tune orthogonal to the tuner design: at task
// startup, periodically, or on detected phase changes. This ablation runs
// a two-phase workload (the instruction stream of a small-footprint kernel
// followed by a large-footprint one) under four policies and reports total
// memory-access energy, the number of tuning sessions, and tuner overhead:
//
//   fixed-base     never tune; run the 8K_4W_32B base cache
//   one-shot       tune once at startup (optimal for phase 1 only)
//   periodic       retune every N intervals
//   phase-change   retune when the miss rate departs from the tuned point
#include <iostream>

#include "common.hpp"
#include "core/controller.hpp"

namespace stcache {
namespace {

constexpr std::size_t kIntervalAccesses = 50'000;
constexpr std::size_t kSearchIntervalAccesses = 8'000;  // short search windows

// Phase 1: crc (2 KB loop). Phase 2: padpcm (8 KB live code). Each phase
// is repeated several times so that the retuning transient (a handful of
// measurement intervals spent in too-small configurations) amortizes the
// way it would over the paper's billion-instruction runs.
Trace phased_trace() {
  const auto& traces = bench::all_split_traces();
  constexpr int kRepeats = 4;
  Trace t;
  const Trace& first = traces.at("crc").ifetch;
  const Trace& second = traces.at("padpcm").ifetch;
  t.reserve((first.size() + second.size()) * kRepeats);
  for (int i = 0; i < kRepeats; ++i) t.insert(t.end(), first.begin(), first.end());
  for (int i = 0; i < kRepeats; ++i) t.insert(t.end(), second.begin(), second.end());
  return t;
}

struct PolicyOutcome {
  double energy = 0.0;        // Equation 1 over the whole run
  double tuner_energy = 0.0;  // Equation 2 over all sessions
  unsigned sessions = 0;
  std::string final_config;
  std::uint64_t reconfig_writebacks = 0;
};

PolicyOutcome run_policy(const Trace& trace, const EnergyModel& model,
                         const ControllerParams* params /* null = fixed base */) {
  ConfigurableCache cache(params != nullptr ? CacheConfig::parse("2K_1W_16B")
                                            : base_cache());
  PolicyOutcome out;
  std::size_t cursor = 0;

  auto run_n = [&](std::size_t n) {
    const CacheStats before = cache.stats();
    const std::size_t end = std::min(cursor + n, trace.size());
    for (; cursor < end; ++cursor) {
      cache.access(trace[cursor].addr,
                   trace[cursor].kind == AccessKind::kWrite);
    }
    out.energy += model.evaluate(cache.config(), cache.stats() - before).total();
  };
  IntervalFns fns;
  fns.quiet = [&] { run_n(kIntervalAccesses); };
  fns.search = [&] { run_n(kSearchIntervalAccesses); };

  if (params == nullptr) {
    while (cursor < trace.size()) fns.quiet();
  } else {
    TuningController controller(cache, model, *params,
                                TunerFsmd::shift_for(kIntervalAccesses * 2));
    while (cursor < trace.size()) controller.step(fns);
    out.sessions = static_cast<unsigned>(controller.sessions().size());
    out.tuner_energy = controller.total_tuner_energy();
  }
  out.final_config = cache.config().name();
  out.reconfig_writebacks = cache.stats().reconfig_writeback_bytes / 16;
  return out;
}

int run() {
  bench::print_header(
      "Tuning-policy ablation on a two-phase workload (crc then padpcm "
      "instruction streams)",
      "Section 1 (deployment approaches) / Section 4");

  const EnergyModel model;
  const Trace trace = phased_trace();
  std::cout << "Workload: " << trace.size() << " accesses in "
            << (trace.size() + kIntervalAccesses - 1) / kIntervalAccesses
            << " intervals; phase boundary at access "
            << 4 * bench::all_split_traces().at("crc").ifetch.size() << ".\n\n";

  ControllerParams oneshot;
  oneshot.trigger = TuningTrigger::kOneShot;
  ControllerParams periodic;
  periodic.trigger = TuningTrigger::kPeriodic;
  periodic.period_intervals = 30;
  ControllerParams phase;
  phase.trigger = TuningTrigger::kPhaseChange;
  phase.miss_rate_delta = 0.02;
  phase.phase_debounce = 2;

  struct Row {
    const char* name;
    const ControllerParams* params;
  };
  const Row rows[] = {{"fixed 8K_4W_32B base", nullptr},
                      {"one-shot (startup only)", &oneshot},
                      {"periodic (every 30 intervals)", &periodic},
                      {"phase-change detector", &phase}};

  Table table({"policy", "total energy", "sessions", "tuner energy",
               "final config", "reconfig WBs"});
  double base_energy = 0.0;
  for (const Row& row : rows) {
    const PolicyOutcome out = run_policy(trace, model, row.params);
    if (row.params == nullptr) base_energy = out.energy;
    table.add_row({row.name,
                   fmt_si_energy(out.energy) + " (" +
                       fmt_percent(1.0 - out.energy / base_energy, 1) + ")",
                   std::to_string(out.sessions),
                   fmt_si_energy(out.tuner_energy), out.final_config,
                   std::to_string(out.reconfig_writebacks)});
  }
  table.print(std::cout);

  std::cout << "\nReading: one-shot tunes perfectly for phase 1 but strands\n"
            << "phase 2 on a too-small cache. Every retune pays a search\n"
            << "transient (a few short intervals in deliberately small\n"
            << "configurations), so the periodic policy's gain depends on\n"
            << "its period, while the phase-change detector retunes exactly\n"
            << "twice and captures the adaptive benefit. Reconfiguration\n"
            << "write-backs stay at zero: instruction caches never dirty.\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
