// Victim-buffer ablation: buffer vs. associativity for conflict misses.
//
// The paper's research group studies a small fully associative victim
// buffer as an alternative to set associativity (it removes conflict
// misses without the per-access energy of probing extra ways, and — being
// fully tagged — it is immune to reconfiguration). This harness compares,
// on every benchmark's data stream:
//
//   1W          the tuned direct-mapped configuration alone
//   1W + VB8    the same with an 8-entry victim buffer
//   2W          the same size, 2-way set associative
//
// reporting off-chip misses and Equation 1 energy for each.
#include <iostream>

#include "common.hpp"
#include "cache/configurable_cache.hpp"
#include "util/stats.hpp"

namespace stcache {
namespace {

struct Outcome {
  std::uint64_t offchip_misses = 0;
  double energy = 0.0;
};

Outcome run(const CacheConfig& cfg, std::span<const TraceRecord> stream,
            std::uint32_t victim_entries, const EnergyModel& model) {
  ConfigurableCache cache(cfg, {}, WritePolicy::kWriteBack, victim_entries);
  for (const TraceRecord& r : stream) {
    cache.access(r.addr, r.kind == AccessKind::kWrite);
  }
  return {cache.stats().misses,
          model.evaluate(cfg, cache.stats(), victim_entries).total()};
}

int run_bench() {
  bench::print_header(
      "Victim buffer vs. associativity on each benchmark's data stream",
      "victim-buffer extension (companion work of the same group)");

  const EnergyModel model;
  Table table({"Ben.", "size", "1W misses", "1W+VB8 misses", "2W misses",
               "1W energy", "1W+VB8 energy", "2W energy"});

  GeoMean vb_ratio, assoc_ratio;
  for (const std::string& name : bench::workload_names()) {
    const SplitTrace& split = bench::all_split_traces().at(name);

    // Direct-mapped configuration at the size the heuristic would choose
    // for a direct-mapped walk: use 4K_1W_32B as the common comparison
    // point (2-way exists at 4K, so all three columns are legal).
    const CacheConfig dm = CacheConfig::parse("4K_1W_32B");
    CacheConfig two_way = dm;
    two_way.assoc = Assoc::w2;

    const Outcome plain = run(dm, split.data, 0, model);
    const Outcome with_vb = run(dm, split.data, 8, model);
    const Outcome assoc = run(two_way, split.data, 0, model);

    vb_ratio.add(with_vb.energy / plain.energy);
    assoc_ratio.add(assoc.energy / plain.energy);

    table.add_row({name, "4K", std::to_string(plain.offchip_misses),
                   std::to_string(with_vb.offchip_misses),
                   std::to_string(assoc.offchip_misses),
                   fmt_si_energy(plain.energy), fmt_si_energy(with_vb.energy),
                   fmt_si_energy(assoc.energy)});
  }
  table.print(std::cout);

  std::cout << "\nGeometric-mean energy vs. plain direct-mapped:\n"
            << "  + victim buffer: " << fmt_double(vb_ratio.value(), 3) << "x\n"
            << "  2-way assoc:     " << fmt_double(assoc_ratio.value(), 3)
            << "x\n"
            << "Reading: the buffer removes most conflict misses at a tag-\n"
            << "compare cost per miss, while associativity pays an extra\n"
            << "way probe on EVERY access — on conflict-light kernels the\n"
            << "buffer wins, which is why it is attractive for tunable\n"
            << "direct-mapped configurations.\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run_bench(); }
