// Flush-cost experiment (Section 4, final paragraph).
//
// What would it cost to search cache sizes in descending (8->4->2 KB)
// order instead of the heuristic's ascending order? Descending forces the
// dirty contents of every bank being shut down out to memory; ascending
// only writes back the few dirty lines stranded by the index change. The
// paper reports write-back energies of 9.48 uJ - 12 mJ (average 5.38 mJ),
// about 48,000x its tuner energy.
#include <iostream>

#include "common.hpp"
#include "core/flush_cost.hpp"

namespace stcache {
namespace {

int run() {
  bench::print_header(
      "Reconfiguration write-back cost: ascending vs. descending size "
      "search on each benchmark's data stream",
      "Section 4 (cache-flushing cost analysis)");

  const EnergyModel model;
  Table table({"Ben.", "asc lines", "desc lines", "asc energy", "desc energy",
               "desc/tuner"});

  // Tuner energy for a typical 6-configuration search (Equation 2).
  const double tuner = model.tuner_energy(6);

  double asc_total = 0, desc_total = 0;
  unsigned n = 0;
  for (const std::string& name : bench::workload_names()) {
    const SplitTrace& split = bench::all_split_traces().at(name);
    const FlushCostReport r = measure_flush_cost(split.data, model);
    table.add_row({name, std::to_string(r.ascending_writeback_lines),
                   std::to_string(r.descending_writeback_lines),
                   fmt_si_energy(r.ascending_writeback_energy),
                   fmt_si_energy(r.descending_writeback_energy),
                   fmt_double(r.descending_writeback_energy / tuner, 0) + "x"});
    asc_total += r.ascending_writeback_energy;
    desc_total += r.descending_writeback_energy;
    ++n;
  }
  table.add_row({"Average:", "", "", fmt_si_energy(asc_total / n),
                 fmt_si_energy(desc_total / n),
                 fmt_double(desc_total / n / tuner, 0) + "x"});
  table.print(std::cout);

  std::cout << "\nTuner energy for a 6-configuration search: "
            << fmt_si_energy(tuner) << "\n"
            << "Instruction caches cost nothing in either direction (never\n"
            << "dirty). The paper's 48,000x ratio comes from full-benchmark\n"
            << "runs with far larger dirty volumes; the claim reproduced\n"
            << "here is the orders-of-magnitude asymmetry and the near-zero\n"
            << "cost of the ascending order.\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
