// bench_serving — throughput of the tuning service (stcache_tuned's
// TuningServer) over a loopback unix-domain socket.
//
//   bench_serving [--clients N] [--reps N] [--workers N] [--out file.json]
//
// Two timed phases, both end-to-end (HELLO -> CHUNK stream -> FIN ->
// VERDICT) against one live server:
//
//   single  one client streams the packed crc instruction trace --reps
//           times back to back; words/second of the lone session.
//   multi   --clients clients do the same concurrently; aggregate
//           words/second across all sessions.
//
// The aggregate/single ratio is the serving scaling factor the ISSUE gates
// at >= 2x — ONLY meaningful on a multi-core host, since one CPU cannot
// run two sweep workers faster than one. The JSON snapshot therefore
// records "cpus" so scripts/bench_check.py can skip the scaling floor
// (while still regression-gating the absolute rates) when the measuring
// host is single-core.
//
// Results land on stdout as a table and in --out (default
// BENCH_serving.json) as JSON; the committed BENCH_serving.json at the
// repo root is the baseline snapshot bench_check.py compares against.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/replay.hpp"
#include "util/error.hpp"

namespace stcache {
namespace {

struct Options {
  unsigned clients = 4;
  unsigned reps = 3;
  unsigned workers = 0;  // 0 = hardware_concurrency
  std::string out = "BENCH_serving.json";
};

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
      opts.clients = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      opts.reps = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
      opts.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      opts.out = argv[++i];
    else {
      std::cerr << "usage: " << argv[0]
                << " [--clients N] [--reps N] [--workers N] [--out file.json]\n";
      std::exit(2);
    }
  }
  if (opts.clients == 0 || opts.reps == 0) {
    std::cerr << argv[0] << ": --clients and --reps must be positive\n";
    std::exit(2);
  }
  return opts;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// One full session: stream `sel` in kDefaultChunkWords chunks, wait for
// the verdict. Returns the verdict so callers can sanity-check it.
serve::Verdict one_session(const std::string& socket_path,
                           std::span<const std::uint32_t> sel) {
  return serve::tune_remote(socket_path, /*instruction=*/true, sel);
}

int run(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());

  bench::print_header(
      "Tuning-service throughput: single client vs " +
          std::to_string(opts.clients) + " concurrent clients",
      "the exhaustive sweep");

  // The workload stream is captured once, outside every timed region: the
  // bench measures serving (wire + sharded queues + sweep workers), not
  // trace capture.
  const std::vector<std::uint32_t> sel =
      capture_packed(find_workload("crc")).ifetch;

  serve::ServerOptions server_opts;
  char tmpl[] = "/tmp/stcbenXXXXXX";
  const char* dir = mkdtemp(tmpl);
  STC_ASSERT(dir != nullptr, "mkdtemp failed");
  server_opts.socket_path = std::string(dir) + "/b.sock";
  server_opts.workers = opts.workers;
  // Enough pooled chunks that clients are never throttled by the buffer
  // pool itself — the bench measures worker scaling, not pool sizing.
  server_opts.pool_chunks = std::max<std::size_t>(64, 8 * opts.clients);
  serve::TuningServer server(server_opts);
  server.start();

  // Warmup + correctness guard: the served verdict must be bit-identical
  // to the in-process bank before any number is worth reporting.
  {
    const serve::Verdict v = one_session(server_opts.socket_path, sel);
    BankAccumulator bank(all_configs());
    bank.feed(sel);
    STC_ASSERT(v.accesses == sel.size() && v.stats == bank.stats(),
               "served verdict diverged from the in-process bank");
  }

  // Phase 1: one client, sessions back to back.
  const auto t_single = std::chrono::steady_clock::now();
  for (unsigned r = 0; r < opts.reps; ++r) {
    one_session(server_opts.socket_path, sel);
  }
  const double single_secs = seconds_since(t_single);
  const double single_words = static_cast<double>(sel.size()) * opts.reps;
  const double single_rate = single_words / single_secs;

  // Phase 2: N clients at once, each the same --reps sessions.
  const auto t_multi = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < opts.clients; ++c) {
    threads.emplace_back([&] {
      for (unsigned r = 0; r < opts.reps; ++r) {
        one_session(server_opts.socket_path, sel);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double multi_secs = seconds_since(t_multi);
  const double multi_words = single_words * opts.clients;
  const double multi_rate = multi_words / multi_secs;
  const double scaling = multi_rate / single_rate;

  server.stop();
  std::string rmdir_cmd = dir;  // best-effort cleanup of the socket dir
  ::rmdir(rmdir_cmd.c_str());

  Table table({"mode", "sessions", "words", "seconds", "words/s"});
  table.add_row({"single-client", std::to_string(opts.reps),
                 std::to_string(static_cast<std::uint64_t>(single_words)),
                 fmt_double(single_secs, 3), fmt_double(single_rate, 0)});
  table.add_row({std::to_string(opts.clients) + "-client aggregate",
                 std::to_string(opts.reps * opts.clients),
                 std::to_string(static_cast<std::uint64_t>(multi_words)),
                 fmt_double(multi_secs, 3), fmt_double(multi_rate, 0)});
  table.print(std::cout);
  std::cout << "\nAggregate scaling over single client: "
            << fmt_double(scaling, 2) << "x on " << cpus
            << " cpu(s), workers=" << server.workers() << "\n";
  if (cpus < 2) {
    std::cout << "(single-core host: the >= 2x scaling floor does not "
                 "apply; see scripts/bench_check.py)\n";
  }

  std::ofstream out(opts.out);
  if (!out) {
    std::cerr << "error: cannot write " << opts.out << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"serving_throughput\",\n"
      << "  \"cpus\": " << cpus << ",\n"
      << "  \"workers\": " << server.workers() << ",\n"
      << "  \"clients\": " << opts.clients << ",\n"
      << "  \"reps\": " << opts.reps << ",\n"
      << "  \"stream_words\": " << sel.size() << ",\n"
      << "  \"single\": {\"seconds\": " << single_secs
      << ", \"words_per_second\": " << single_rate << "},\n"
      << "  \"multi\": {\"clients\": " << opts.clients
      << ", \"seconds\": " << multi_secs
      << ", \"aggregate_words_per_second\": " << multi_rate << "},\n"
      << "  \"scaling\": " << scaling << "\n"
      << "}\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) {
  try {
    return stcache::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
