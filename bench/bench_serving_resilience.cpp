// bench_serving_resilience — clean-tenant throughput of the tuning
// service while a misbehaving neighbor injects every wire fault class.
//
//   bench_serving_resilience [--reps N] [--seed N] [--out file.json]
//
// Two timed phases against one live server:
//
//   clean   one client streams the packed crc instruction trace --reps
//           times back to back, nothing else connected; words/second.
//   chaos   the same loop, while a ChaosEndpoint neighbor hammers the
//           server with back-to-back seeded fault sessions (corrupt,
//           truncate, disconnect, stall, duplicate) until the clean
//           client finishes.
//
// The chaos/clean ratio is the isolation factor the ISSUE gates at
// >= 0.8: a neighbor burning its own sessions with wire faults may not
// cost a clean tenant more than 20% throughput. Every clean verdict in
// both phases is checked bit-identical to the in-process bank, so the
// number only exists if correctness held under fire.
//
// Results land on stdout as a table and in --out (default
// BENCH_serving_resilience.json) as JSON; the committed copy at the repo
// root is the baseline snapshot scripts/bench_check.py --mode resilience
// compares against.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/replay.hpp"
#include "util/error.hpp"

namespace stcache {
namespace {

struct Options {
  unsigned reps = 8;  // long enough a window that the ratio is stable
  std::uint64_t seed = 0xbadcafe;
  std::string out = "BENCH_serving_resilience.json";
};

Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      opts.reps = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      opts.out = argv[++i];
    else {
      std::cerr << "usage: " << argv[0]
                << " [--reps N] [--seed N] [--out file.json]\n";
      std::exit(2);
    }
  }
  if (opts.reps == 0) {
    std::cerr << argv[0] << ": --reps must be positive\n";
    std::exit(2);
  }
  return opts;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int run(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());

  bench::print_header(
      "Tuning-service isolation: clean-tenant throughput with a "
      "fault-injecting neighbor",
      "the exhaustive sweep");

  const std::vector<std::uint32_t> sel =
      capture_packed(find_workload("crc")).ifetch;
  BankAccumulator bank(all_configs());
  bank.feed(sel);
  const std::vector<CacheStats> baseline = bank.stats();

  serve::ServerOptions server_opts;
  char tmpl[] = "/tmp/stcresbXXXXXX";
  const char* dir = mkdtemp(tmpl);
  STC_ASSERT(dir != nullptr, "mkdtemp failed");
  server_opts.socket_path = std::string(dir) + "/b.sock";
  server_opts.workers = 2;
  server_opts.pool_chunks = 64;
  // Generous deadlines: the bench measures isolation, not timeouts — a
  // sub-deadline stall from the neighbor must be absorbed, not shot.
  server_opts.idle_timeout_ms = 10'000;
  serve::TuningServer server(server_opts);
  server.start();

  // A clean pass: --reps verdicts, each checked bit-identical.
  const auto clean_pass = [&] {
    for (unsigned r = 0; r < opts.reps; ++r) {
      const serve::Verdict v =
          serve::tune_remote(server_opts.socket_path, true, sel);
      STC_ASSERT(v.accesses == sel.size() && v.stats == baseline,
                 "clean verdict diverged from the in-process bank");
    }
  };

  clean_pass();  // warmup, untimed

  // Phase 1: the clean tenant alone.
  const auto t_clean = std::chrono::steady_clock::now();
  clean_pass();
  const double clean_secs = seconds_since(t_clean);
  const double words = static_cast<double>(sel.size()) * opts.reps;
  const double clean_rate = words / clean_secs;

  // Phase 2: same loop, with the neighbor misbehaving the whole time.
  // High fault rates keep its sessions short and abusive — mostly error
  // paths, which is exactly the machinery whose cost is being measured.
  FaultPlan plan;
  plan.seed = opts.seed;
  plan.wire_corrupt = 0.2;
  plan.wire_truncate = 0.2;
  plan.wire_disconnect = 0.2;
  plan.wire_stall = 0.1;
  plan.wire_stall_ms = 5;
  plan.wire_duplicate = 0.1;

  std::atomic<bool> stop_chaos{false};
  std::uint64_t chaos_sessions = 0;
  std::uint64_t faults_injected = 0;
  std::thread neighbor([&] {
    const std::span<const std::uint32_t> small(sel.data(),
                                               std::min<std::size_t>(
                                                   sel.size(), 4096));
    for (std::uint64_t s = 1; !stop_chaos; ++s) {
      ChaosEndpoint chaos(plan.reseeded(s), /*response_timeout_ms=*/10'000);
      const ChaosReport report =
          chaos.run(server_opts.socket_path, true, small, 512);
      ++chaos_sessions;
      faults_injected += report.counts.total();
      // Pace the neighbor: the gate measures the server's fault-handling
      // overhead on a clean tenant, not fair-share scheduling against a
      // busy-loop — which a single-core host could never win anyway.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  const auto t_chaos = std::chrono::steady_clock::now();
  clean_pass();
  const double chaos_secs = seconds_since(t_chaos);
  stop_chaos = true;
  neighbor.join();
  const double chaos_rate = words / chaos_secs;
  const double ratio = chaos_rate / clean_rate;

  server.stop();
  ::rmdir(dir);

  Table table({"phase", "sessions", "words", "seconds", "words/s"});
  table.add_row({"clean", std::to_string(opts.reps),
                 std::to_string(static_cast<std::uint64_t>(words)),
                 fmt_double(clean_secs, 3), fmt_double(clean_rate, 0)});
  table.add_row({"under chaos", std::to_string(opts.reps),
                 std::to_string(static_cast<std::uint64_t>(words)),
                 fmt_double(chaos_secs, 3), fmt_double(chaos_rate, 0)});
  table.print(std::cout);
  std::cout << "\nClean-tenant throughput under chaos: " << fmt_double(ratio, 2)
            << "x of the quiet baseline (" << chaos_sessions
            << " chaos sessions, " << faults_injected
            << " faults injected) on " << cpus << " cpu(s)\n";

  std::ofstream out(opts.out);
  if (!out) {
    std::cerr << "error: cannot write " << opts.out << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"serving_resilience\",\n"
      << "  \"cpus\": " << cpus << ",\n"
      << "  \"workers\": " << server.workers() << ",\n"
      << "  \"reps\": " << opts.reps << ",\n"
      << "  \"stream_words\": " << sel.size() << ",\n"
      << "  \"clean\": {\"seconds\": " << clean_secs
      << ", \"words_per_second\": " << clean_rate << "},\n"
      << "  \"chaos\": {\"seconds\": " << chaos_secs
      << ", \"words_per_second\": " << chaos_rate
      << ", \"sessions\": " << chaos_sessions
      << ", \"faults_injected\": " << faults_injected << "},\n"
      << "  \"ratio\": " << ratio << "\n"
      << "}\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) {
  try {
    return stcache::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
