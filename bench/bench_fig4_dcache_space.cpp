// Figure 4: average data-cache miss rate (top) and normalized data-fetch
// energy (bottom) across the 18 size/line/associativity configurations,
// averaged over all benchmarks.
//
// Usage: bench_fig4_dcache_space [--jobs N] [--metrics-out file.json]
#include "common.hpp"

int main(int argc, char** argv) {
  return stcache::bench::run_config_space_figure(
      false, stcache::bench::parse_bench_args(argc, argv));
}
