// Tuner hardware overhead (Section 4).
//
// The paper synthesizes the tuner to ~4,000 gates / 0.039 mm^2 in 0.18 um
// CMOS (≈3% of a MIPS 4Kp), 2.69 mW at 200 MHz (≈0.5% of the processor
// power), 64 cycles per configuration evaluation, and ~11.9 nJ per tuning
// session — negligible against workload energies. This harness reruns the
// FSMD tuner on every benchmark stream and reports the cycle and energy
// overhead (Equation 2) next to the workload's own memory-access energy.
#include <iostream>

#include "common.hpp"
#include "core/ports.hpp"
#include "core/tuner_fsmd.hpp"

namespace stcache {
namespace {

int run() {
  bench::print_header(
      "Hardware tuner overhead: cycles and energy per tuning session "
      "(Equation 2) vs. workload memory energy",
      "Section 4 (tuner size/power/energy paragraph)");

  const EnergyModel model;
  const EnergyParams& p = model.params();
  const TimingParams timing;

  std::cout << "Hardware constants (paper-reported synthesis results):\n"
            << "  gates:            " << p.tuner_gates << "\n"
            << "  area:             " << p.tuner_area_mm2 << " mm^2 (0.18 um)\n"
            << "  power:            " << p.tuner_power * 1e3 << " mW @ "
            << p.clock_hz / 1e6 << " MHz\n"
            << "  cycles/config:    " << TunerFsmd::kCyclesPerEvaluation
            << " (+17 for a way-prediction evaluation)\n\n";

  Table table({"Ben.", "stream", "configs", "tuner cycles", "tuner energy",
               "workload energy", "ratio"});

  double energy_sum = 0.0;
  double configs_sum = 0.0;
  unsigned n = 0;
  for (const std::string& name : bench::workload_names()) {
    const SplitTrace& split = bench::all_split_traces().at(name);
    for (const bool instruction : {true, false}) {
      const Trace& stream = instruction ? split.ifetch : split.data;
      TraceTunerPort port(stream, timing);
      TunerFsmd tuner(model, timing, TunerFsmd::shift_for(stream.size() * 4));
      const TunerFsmd::Result r = tuner.run(port);

      TraceEvaluator eval(stream, model);
      const double workload = eval.energy(r.best);

      table.add_row({name, instruction ? "I" : "D",
                     std::to_string(r.configs_examined),
                     std::to_string(r.tuner_cycles),
                     fmt_si_energy(r.tuner_energy), fmt_si_energy(workload),
                     fmt_double(r.tuner_energy / workload * 1e6, 2) + " ppm"});
      energy_sum += r.tuner_energy;
      configs_sum += r.configs_examined;
      ++n;
    }
  }
  table.print(std::cout);

  std::cout << "\nAverage configurations searched: "
            << fmt_double(configs_sum / n, 1)
            << "\nAverage tuner energy per session: "
            << fmt_si_energy(energy_sum / n)
            << "\n(Paper: 5.4 searched on average -> ~11.9 nJ; our kernels\n"
            << "run ~1M instructions instead of billions, so the ppm ratios\n"
            << "here are conservative upper bounds on the overhead.)\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
