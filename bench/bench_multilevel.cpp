// Multi-level heuristic (Section 3.4).
//
// The paper sketches scaling the heuristic to a two-level hierarchy (16 KB
// 8-way L1 I/D with {8,16,32,64} B lines, 256 KB 8-way unified L2 with
// {64..512} B lines): the cross product is 64 configurations, the
// one-parameter-at-a-time heuristic examines at most ~12-13. This harness
// runs both searches on combined (I+D) traces — the large media kernels
// plus the parser-like workload, which actually exercises the L2 — and
// reports search counts and the energy gap.
#include <iostream>

#include "common.hpp"
#include "core/multilevel.hpp"
#include "trace/synthetic.hpp"

namespace stcache {
namespace {

int run() {
  bench::print_header(
      "Two-level hierarchy tuning: heuristic (<=12 evaluations) vs. "
      "exhaustive (64)",
      "Section 3.4 (multi-level heuristic)");

  const EnergyModel model;
  Table table({"workload", "heuristic cfg", "evals", "optimal cfg", "evals",
               "gap"});

  auto add_row = [&](const std::string& name, const Trace& trace) {
    const TwoLevelSearchResult heur = tune_two_level(trace, model);
    const TwoLevelSearchResult ex = tune_two_level_exhaustive(trace, model);
    table.add_row({name, heur.best.name(),
                   std::to_string(heur.configs_examined), ex.best.name(),
                   std::to_string(ex.configs_examined),
                   fmt_percent(heur.best_energy / ex.best_energy - 1.0, 1)});
  };

  // Combined traces of the kernels with the largest footprints.
  for (const char* name : {"mpeg2", "epic", "g3fax", "blit"}) {
    const Workload& w = find_workload(name);
    add_row(name, capture_trace(w));
  }

  // The parser-like workload is the only one whose working set stresses a
  // 256 KB L2 (the embedded kernels fit the 16 KB L1s almost entirely).
  ParserLikeParams params;
  params.accesses = 1'000'000;
  add_row("parser-like", gen_parser_like(params));

  table.print(std::cout);

  std::cout << "\n(Paper: 4+4+4 = 12-13 combinations searched vs. the\n"
            << " 4*4*4 = 64 of brute force, with near-optimal results.)\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
