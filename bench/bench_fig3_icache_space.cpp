// Figure 3: average instruction-cache miss rate (top) and normalized
// instruction-fetch energy (bottom) across the 18 size/line/associativity
// configurations, averaged over all benchmarks.
//
// Usage: bench_fig3_icache_space [--jobs N] [--metrics-out file.json]
#include "common.hpp"

int main(int argc, char** argv) {
  return stcache::bench::run_config_space_figure(
      true, stcache::bench::parse_bench_args(argc, argv));
}
