// Figure 3: average instruction-cache miss rate (top) and normalized
// instruction-fetch energy (bottom) across the 18 size/line/associativity
// configurations, averaged over all benchmarks.
#include "common.hpp"

int main() { return stcache::bench::run_config_space_figure(true); }
