// The naive approach vs. the heuristic (Section 3.1).
//
// The paper motivates the heuristic by dismantling the naive alternative:
// exhaustively trying all 27 configurations in arbitrary order, flushing
// the cache between configurations to guarantee correctness. This harness
// quantifies all three costs of the naive search against the heuristic,
// per benchmark data stream:
//
//   * configurations examined (27 vs. ~5),
//   * cache flushes and the dirty write-back energy they force,
//   * total energy consumed DURING the search phase itself (the
//     application runs in mostly-wrong configurations for much longer).
//
// This harness walks ONE warm ConfigurableCache through flush+reconfigure
// cycles — the mid-stream reconfiguration cost is the thing being
// measured — so it is inherently a reference-model experiment: the cold
// fixed-config fast/oneshot replay engines do not apply here (see
// docs/performance.md on engine scope).
#include <functional>
#include <iostream>

#include "common.hpp"
#include "cache/configurable_cache.hpp"
#include "util/stats.hpp"

namespace stcache {
namespace {

struct SearchPhaseCost {
  unsigned configs = 0;
  std::uint64_t flush_writebacks = 0;
  double energy = 0.0;  // Equation 1 over the whole search phase
  CacheConfig chosen;
};

// Naive: walk all 27 configurations in registry order, running one slice
// of the stream under each, flushing between configurations.
SearchPhaseCost naive_search(std::span<const TraceRecord> stream,
                             const EnergyModel& model) {
  SearchPhaseCost out;
  const auto& configs = all_configs();
  ConfigurableCache cache(configs.front());
  const std::size_t slice = stream.size() / configs.size();
  double best = 0.0;
  bool first = true;
  for (std::size_t k = 0; k < configs.size(); ++k) {
    if (k > 0) {
      out.flush_writebacks += cache.flush();  // "to ensure correct behavior"
      cache.reconfigure(configs[k]);
    }
    const CacheStats before = cache.stats();
    const std::size_t begin = k * slice;
    for (std::size_t i = begin; i < begin + slice; ++i) {
      cache.access(stream[i].addr, stream[i].kind == AccessKind::kWrite);
    }
    const CacheStats delta = cache.stats() - before;
    const double e = model.evaluate(configs[k], delta).total();
    out.energy += e;
    if (first || e < best) {
      best = e;
      out.chosen = configs[k];
      first = false;
    }
    ++out.configs;
  }
  return out;
}

// Heuristic: the flush-free ascending walk over the same stream, slices
// consumed as measurement intervals.
SearchPhaseCost heuristic_search(std::span<const TraceRecord> stream,
                                 const EnergyModel& model) {
  SearchPhaseCost out;
  ConfigurableCache cache(CacheConfig::parse("2K_1W_16B"));
  const std::size_t slice = stream.size() / 27;  // same interval length
  std::size_t cursor = 0;

  auto measure = [&](const CacheConfig& cfg) {
    out.flush_writebacks += cache.reconfigure(cfg);  // flushless (counted anyway)
    const CacheStats before = cache.stats();
    for (std::size_t i = 0; i < slice; ++i) {
      const TraceRecord& r = stream[cursor];
      cache.access(r.addr, r.kind == AccessKind::kWrite);
      cursor = (cursor + 1) % stream.size();
    }
    ++out.configs;
    const CacheStats delta = cache.stats() - before;
    const double e = model.evaluate(cfg, delta).total();
    out.energy += e;
    return e;
  };

  class MeasureEvaluator final : public Evaluator {
   public:
    explicit MeasureEvaluator(std::function<double(const CacheConfig&)> fn)
        : fn_(std::move(fn)) {}
    double energy(const CacheConfig& cfg) override { return fn_(cfg); }
    unsigned evaluations() const override { return 0; }

   private:
    std::function<double(const CacheConfig&)> fn_;
  };
  MeasureEvaluator eval(measure);
  out.chosen = tune(eval).best;
  return out;
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "The naive exhaustive-with-flush search vs. the heuristic: search "
      "length, forced flush write-backs, and search-phase energy",
      "Section 3.1 (problem overview)");

  const EnergyModel model;
  Table table({"Ben.", "naive cfgs", "heur cfgs", "naive flush WBs",
               "heur reconf WBs", "naive energy", "heur energy"});

  // Both searches on one benchmark are inherently sequential (each slice
  // runs on the state the previous one left behind), so the sweep shards
  // one job per workload; results are keyed by index and reduced in
  // Table 1 order below.
  const std::vector<std::string> names = bench::workload_names();
  const auto& traces = bench::all_split_traces();  // capture before timing
  struct JobResult {
    SearchPhaseCost naive;
    SearchPhaseCost heur;
  };
  SweepRunner runner(opts.sweep);
  const std::vector<JobResult> results = runner.map<JobResult>(
      names.size(), [&](std::size_t j) {
        const Trace& stream = traces.at(names[j]).data;
        JobResult r;
        r.naive = naive_search(stream, model);
        r.heur = heuristic_search(stream, model);
        const std::size_t slice = stream.size() / all_configs().size();
        runner.add_accesses(slice * (r.naive.configs + r.heur.configs));
        return r;
      });

  GeoMean energy_ratio;
  double flushes = 0;
  unsigned n = 0;
  for (std::size_t j = 0; j < names.size(); ++j) {
    const SearchPhaseCost& naive = results[j].naive;
    const SearchPhaseCost& heur = results[j].heur;
    energy_ratio.add(naive.energy / heur.energy);
    flushes += static_cast<double>(naive.flush_writebacks);
    ++n;
    table.add_row({names[j], std::to_string(naive.configs),
                   std::to_string(heur.configs),
                   std::to_string(naive.flush_writebacks),
                   std::to_string(heur.flush_writebacks),
                   fmt_si_energy(naive.energy), fmt_si_energy(heur.energy)});
  }
  table.print(std::cout);

  std::cout << "\nGeometric-mean search-phase energy: naive = "
            << fmt_double(energy_ratio.value(), 1)
            << "x the heuristic's.\nAverage dirty lines force-flushed by "
            << "the naive search: " << fmt_double(flushes / n, 0)
            << " per benchmark (the heuristic's flush-free walk writes\n"
            << "back only the handful of stranded lines shown above).\n";
  bench::finish_sweep(runner, opts);
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) { return stcache::run(argc, argv); }
