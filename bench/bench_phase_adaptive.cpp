// ✦ Phase-adaptive tuning vs. static Fig. 6 vs. the per-phase oracle.
//
// Usage: bench_phase_adaptive [--reps N] [--out file.json] [--scale N]
//                             [common sweep flags: --jobs N --sweep-jobs N
//                              --metrics-out file.json
//                              --engine reference|fast|oneshot
//                              --pipeline streaming|materialized]
//
// The paper tunes once per application (Fig. 6); Section 1 lists "whenever
// a program phase change is detected" as a deployment mode. This harness
// measures what that mode is worth on the canned phase-mixed scenarios
// (src/phase/scenario.hpp), for four tuning policies over each stream:
//
//   static    one Fig. 6 search over the whole stream; the winner serves
//             every phase (the paper's deployment).
//   adaptive  the phase-adaptive tuner (src/phase/): detect phases, reuse
//             the config of any tuned phase within the reuse threshold,
//             sweep only when no table entry is close (distance mapping).
//   naive     the same tuner with distance mapping disabled: every
//             detected phase pays for a fresh full-space sweep.
//   oracle    per ground-truth segment, the exhaustive best config — the
//             energy floor phase detection aims at (unrealizable online:
//             it knows the segment boundaries and sweeps every segment).
//
// Energy for a policy is the sum over its per-phase spans of the chosen
// configuration's Equation-1 energy on that span, so all four totals
// cover the identical words and compare directly. Bank stats are
// bit-identical across engines and --sweep-jobs, so the tables on stdout
// are byte-identical across both (repro.sh cmp-gates the timeline through
// stcache_tune --phases).
//
// The classifier-overhead section times the streaming full-space sweep
// pipeline (27-config oneshot bank fed chunk by chunk) with and without
// the classifier attached, best of --reps per scenario, and reports the
// paired slowdown. The classifier shares the pipeline's memory traffic,
// so its marginal cost is compute only — the PR gate is overhead <= 5%
// overall (scripts/bench_check.py --mode phase, with the energy-vs-oracle
// and sweep-reduction floors, on the --out JSON; default BENCH_phase.json,
// committed snapshot from this repo's development container). Wall-clock
// numbers go to stderr; stdout carries only deterministic tables.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/error.hpp"
#include "phase/adaptive.hpp"
#include "phase/classifier.hpp"
#include "phase/scenario.hpp"
#include "trace/phase_mix.hpp"

namespace stcache {
namespace {

constexpr std::size_t kChunk = 1u << 16;  // words per streamed chunk

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// Equation-1 energy of one configuration over one span of the stream.
double config_energy(const CacheConfig& cfg,
                     std::span<const std::uint32_t> words,
                     const EnergyModel& model) {
  BankAccumulator bank(std::span<const CacheConfig>(&cfg, 1));
  bank.feed(words);
  return model.evaluate(cfg, bank.stats()[0]).total();
}

// Sum of the timeline's per-phase energies: each phase billed at the
// configuration the policy chose for it.
double timeline_energy(std::span<const PhaseRecord> timeline,
                       std::span<const std::uint32_t> words,
                       const EnergyModel& model) {
  double total = 0.0;
  for (const PhaseRecord& r : timeline) {
    total += config_energy(
        r.config, words.subspan(r.begin, r.end - r.begin), model);
  }
  return total;
}

PhaseAdaptiveTuner run_tuner(std::span<const CacheConfig> configs,
                             const EnergyModel& model,
                             std::span<const std::uint32_t> words,
                             bool distance_mapping) {
  PhaseTunerParams params;
  params.distance_mapping = distance_mapping;
  PhaseAdaptiveTuner tuner(configs, model, params);
  while (!words.empty()) {
    const std::size_t take = std::min(kChunk, words.size());
    tuner.feed(words.first(take));
    words = words.subspan(take);
  }
  return tuner;
}

struct OverheadSample {
  double bank_seconds = 0.0;      // best-of-reps, bank alone
  double combined_seconds = 0.0;  // best-of-reps, bank + classifier
  double classifier_seconds = 0.0;  // best-of-reps, classifier alone
};

// Paired streaming-pipeline timing: per rep, the 27-config oneshot bank
// alone, then bank + classifier on the same chunking, then the classifier
// alone. Best-of-reps per leg (the repo's timing convention); pairing the
// legs inside one rep keeps container noise from landing on only one side.
OverheadSample time_overhead(std::span<const CacheConfig> configs,
                             std::span<const std::uint32_t> words,
                             unsigned reps) {
  OverheadSample s;
  for (unsigned r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    {
      BankAccumulator bank(configs, {}, ReplayEngine::kOneshot, 1);
      for (std::size_t i = 0; i < words.size(); i += kChunk)
        bank.feed(words.subspan(i, std::min(kChunk, words.size() - i)));
      if (bank.stats().size() != configs.size()) fail("bank dropped configs");
    }
    const auto t1 = std::chrono::steady_clock::now();
    {
      BankAccumulator bank(configs, {}, ReplayEngine::kOneshot, 1);
      PhaseClassifier cls({});
      for (std::size_t i = 0; i < words.size(); i += kChunk) {
        const auto chunk = words.subspan(i, std::min(kChunk, words.size() - i));
        cls.feed(chunk);
        bank.feed(chunk);
      }
      cls.finish();
      if (bank.stats().size() != configs.size() ||
          cls.words_seen() != words.size())
        fail("combined pipeline dropped work");
    }
    const auto t2 = std::chrono::steady_clock::now();
    {
      PhaseClassifier cls({});
      for (std::size_t i = 0; i < words.size(); i += kChunk)
        cls.feed(words.subspan(i, std::min(kChunk, words.size() - i)));
      cls.finish();
      if (cls.words_seen() != words.size()) fail("classifier dropped words");
    }
    const auto t3 = std::chrono::steady_clock::now();
    const double bank_s = std::chrono::duration<double>(t1 - t0).count();
    const double both_s = std::chrono::duration<double>(t2 - t1).count();
    const double cls_s = std::chrono::duration<double>(t3 - t2).count();
    if (r == 0 || bank_s < s.bank_seconds) s.bank_seconds = bank_s;
    if (r == 0 || both_s < s.combined_seconds) s.combined_seconds = both_s;
    if (r == 0 || cls_s < s.classifier_seconds) s.classifier_seconds = cls_s;
  }
  return s;
}

int run(int argc, char** argv) {
  // Local flags first (--reps/--out/--scale); everything else goes to the
  // common sweep parser, which exits with usage on anything it does not
  // know.
  unsigned reps = 5;
  unsigned scale = 1;
  std::string out = "BENCH_phase.json";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out = argv[++i];
    else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = static_cast<unsigned>(std::atoi(argv[++i]));
    else
      rest.push_back(argv[i]);
  }
  if (reps == 0 || scale == 0) {
    std::cerr << argv[0] << ": --reps and --scale must be > 0\n";
    return 2;
  }
  const bench::BenchOptions opts =
      bench::parse_bench_args(static_cast<int>(rest.size()), rest.data());
  (void)opts;
  bench::print_header(
      "Phase-adaptive tuning vs. static Fig. 6 vs. per-phase oracle",
      "Section 1 deployment modes, carried out per ROADMAP item 1");

  const EnergyModel model;
  const std::vector<CacheConfig>& configs = all_configs();

  std::string scenarios_json;
  double overhead_bank = 0.0, overhead_combined = 0.0;
  double cls_seconds = 0.0;
  std::uint64_t cls_words = 0;
  std::uint64_t naive_sweeps_total = 0, adaptive_sweeps_total = 0;
  unsigned beating_static = 0;

  for (const PhaseScenario& sc : phase_scenarios()) {
    const PhaseMixedStream mix = build_phase_scenario(sc.name, scale);
    const std::span<const std::uint32_t> words(mix.words);
    std::cout << "\n--- " << sc.name << " (" << words.size()
              << " words, " << mix.segments.size()
              << " ground-truth segments) ---\n";

    // Static: one Fig. 6 search over the whole stream.
    BankAccumulator whole(configs);
    whole.feed(words);
    const std::vector<CacheStats> whole_stats = whole.stats();
    TraceEvaluator eval(std::span<const std::uint32_t>{}, model);
    prime_all(eval, configs, whole_stats);
    const SearchResult static_r = tune(eval);
    std::size_t static_idx = 0;
    for (std::size_t c = 0; c < configs.size(); ++c)
      if (configs[c] == static_r.best) static_idx = c;
    const double static_energy =
        model.evaluate(static_r.best, whole_stats[static_idx]).total();

    // Adaptive and naive tuners over the same stream.
    PhaseAdaptiveTuner adaptive = run_tuner(configs, model, words, true);
    const std::vector<PhaseRecord> adaptive_tl = adaptive.finish();
    PhaseAdaptiveTuner naive = run_tuner(configs, model, words, false);
    const std::vector<PhaseRecord> naive_tl = naive.finish();
    const double adaptive_energy = timeline_energy(adaptive_tl, words, model);
    const double naive_energy = timeline_energy(naive_tl, words, model);

    // Oracle: exhaustive best per ground-truth segment.
    double oracle_energy = 0.0;
    for (const PhaseSegment& seg : mix.segments) {
      BankAccumulator bank(configs);
      bank.feed(words.subspan(seg.begin, seg.end - seg.begin));
      const std::vector<CacheStats> stats = bank.stats();
      double best = 0.0;
      for (std::size_t c = 0; c < configs.size(); ++c) {
        const double e = model.evaluate(configs[c], stats[c]).total();
        if (c == 0 || e < best) best = e;
      }
      oracle_energy += best;
    }

    Table table({"policy", "energy", "vs oracle", "full sweeps", "evals"});
    const auto row = [&](const char* name, double energy,
                         std::uint64_t sweeps, std::uint64_t evals) {
      table.add_row({name, fmt_si_energy(energy),
                     fmt_percent(energy / oracle_energy - 1.0, 2),
                     std::to_string(sweeps), std::to_string(evals)});
    };
    std::uint64_t adaptive_evals = 0, naive_evals = 0;
    for (const PhaseRecord& r : adaptive_tl) adaptive_evals += r.configs_examined;
    for (const PhaseRecord& r : naive_tl) naive_evals += r.configs_examined;
    row("static", static_energy, 1, static_r.configs_examined);
    row("adaptive", adaptive_energy, adaptive.sweeps(), adaptive_evals);
    row("naive", naive_energy, naive.sweeps(), naive_evals);
    row("oracle", oracle_energy, mix.segments.size(),
        mix.segments.size() * configs.size());
    table.print(std::cout);
    std::cout << "adaptive vs static: "
              << fmt_percent(adaptive_energy / static_energy - 1.0, 2)
              << "; phases " << adaptive_tl.size() << " (boundaries "
              << adaptive.boundaries() << ", blips " << adaptive.blips()
              << "), reuses " << adaptive.reuses() << ", swept words "
              << adaptive.swept_words() << "/" << words.size() << "\n";

    // Classifier overhead on the streaming sweep pipeline (stderr; the
    // wall clock is not part of the deterministic stdout contract).
    const OverheadSample ovh = time_overhead(configs, words, reps);
    const double overhead =
        ovh.combined_seconds / ovh.bank_seconds - 1.0;
    std::cerr << "[phase-bench] " << sc.name << ": bank "
              << fmt(ovh.bank_seconds) << "s, +classifier "
              << fmt(ovh.combined_seconds) << "s (overhead "
              << fmt_percent(overhead, 2) << "), classifier alone "
              << fmt(static_cast<double>(words.size()) /
                     ovh.classifier_seconds)
              << " words/s\n";

    overhead_bank += ovh.bank_seconds;
    overhead_combined += ovh.combined_seconds;
    cls_seconds += ovh.classifier_seconds;
    cls_words += words.size();
    naive_sweeps_total += naive.sweeps();
    adaptive_sweeps_total += adaptive.sweeps();
    if (adaptive_energy < static_energy) ++beating_static;

    if (!scenarios_json.empty()) scenarios_json += ",\n";
    scenarios_json +=
        "    {\"name\": \"" + sc.name + "\", \"words\": " +
        std::to_string(words.size()) + ", \"segments\": " +
        std::to_string(mix.segments.size()) + ",\n     \"phases\": " +
        std::to_string(adaptive_tl.size()) + ", \"boundaries\": " +
        std::to_string(adaptive.boundaries()) + ", \"reuses\": " +
        std::to_string(adaptive.reuses()) + ", \"adaptive_sweeps\": " +
        std::to_string(adaptive.sweeps()) + ", \"naive_sweeps\": " +
        std::to_string(naive.sweeps()) + ",\n     \"static_energy\": " +
        fmt(static_energy) + ", \"adaptive_energy\": " +
        fmt(adaptive_energy) + ", \"naive_energy\": " + fmt(naive_energy) +
        ", \"oracle_energy\": " + fmt(oracle_energy) +
        ",\n     \"adaptive_vs_static\": " +
        fmt(adaptive_energy / static_energy - 1.0) +
        ", \"adaptive_vs_oracle\": " +
        fmt(adaptive_energy / oracle_energy - 1.0) +
        ",\n     \"bank_seconds\": " + fmt(ovh.bank_seconds) +
        ", \"combined_seconds\": " + fmt(ovh.combined_seconds) +
        ", \"overhead\": " + fmt(overhead) + "}";
  }

  const double overall_overhead = overhead_combined / overhead_bank - 1.0;
  const double sweep_ratio =
      static_cast<double>(naive_sweeps_total) /
      static_cast<double>(adaptive_sweeps_total);
  std::cout << "\nOverall: distance mapping issued "
            << std::to_string(adaptive_sweeps_total) << " full sweeps where "
            << "naive per-phase re-tuning issued "
            << std::to_string(naive_sweeps_total) << " ("
            << fmt_double(sweep_ratio, 2) << "x fewer); adaptive beat the "
            << "static Fig. 6 config on " << beating_static << "/"
            << phase_scenarios().size() << " scenarios.\n";
  std::cerr << "[phase-bench] overall classifier overhead "
            << fmt_percent(overall_overhead, 2) << "; classifier "
            << fmt(static_cast<double>(cls_words) / cls_seconds)
            << " words/s\n";

  const std::string json =
      "{\n  \"bench\": \"phase_adaptive\", \"scale\": " +
      std::to_string(scale) + ", \"reps\": " + std::to_string(reps) +
      ", \"configs\": " + std::to_string(configs.size()) +
      ",\n  \"scenarios\": [\n" + scenarios_json + "\n  ],\n" +
      "  \"overall\": {\"naive_sweeps\": " +
      std::to_string(naive_sweeps_total) + ", \"adaptive_sweeps\": " +
      std::to_string(adaptive_sweeps_total) + ", \"sweep_ratio\": " +
      fmt(sweep_ratio) + ",\n    \"scenarios_beating_static\": " +
      std::to_string(beating_static) + ", \"overhead\": " +
      fmt(overall_overhead) + ",\n    \"classifier_words_per_second\": " +
      fmt(static_cast<double>(cls_words) / cls_seconds) + "}\n}\n";
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "error: cannot write '" << out << "'\n";
      return 1;
    }
    os << json;
  }
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) { return stcache::run(argc, argv); }
