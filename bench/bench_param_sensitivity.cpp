// Calibration-sensitivity analysis.
//
// The weakest link of any energy-model reproduction is the technology
// constants (EXPERIMENTS.md's calibration caveat). This harness stress-
// tests the conclusions against the two most influential knobs — off-chip
// access energy and leakage — each scaled x0.5 / x1 / x2, and reports for
// every combination:
//
//   * the average Table 1 savings (I and D),
//   * how often the heuristic still finds the exhaustive optimum,
//   * the average number of configurations examined.
//
// The paper's qualitative claims survive if those quantities move smoothly
// and stay in the same regime across the grid.
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"

namespace stcache {
namespace {

struct GridPoint {
  double savings_i = 0, savings_d = 0;
  unsigned optimal = 0, runs = 0;
  double examined = 0;
};

GridPoint evaluate_grid_point(const EnergyModel& model) {
  GridPoint g;
  for (const auto& [name, split] : bench::all_split_traces()) {
    for (const bool instruction : {true, false}) {
      const Trace& stream = instruction ? split.ifetch : split.data;
      TraceEvaluator eval(stream, model);
      const SearchResult heur = tune(eval);
      const SearchResult ex = tune_exhaustive(eval);
      const double base = eval.energy(base_cache());
      (instruction ? g.savings_i : g.savings_d) +=
          1.0 - heur.best_energy / base;
      if (heur.best == ex.best) ++g.optimal;
      g.examined += heur.configs_examined;
      ++g.runs;
    }
  }
  g.savings_i /= g.runs / 2;
  g.savings_d /= g.runs / 2;
  g.examined /= g.runs;
  return g;
}

int run() {
  bench::print_header(
      "Sensitivity of the headline results to the energy-model calibration "
      "(off-chip energy and leakage scaled x0.5 / x1 / x2)",
      "EXPERIMENTS.md calibration caveat");

  Table table({"offchip x", "leakage x", "avg I-E%", "avg D-E%",
               "heuristic optimal", "avg examined"});

  for (double mem_scale : {0.5, 1.0, 2.0}) {
    for (double leak_scale : {0.5, 1.0, 2.0}) {
      EnergyParams params;
      params.e_mem_fixed *= mem_scale;
      params.e_mem_per_byte *= mem_scale;
      params.p_static_per_bank *= leak_scale;
      const EnergyModel model(params);
      const GridPoint g = evaluate_grid_point(model);
      table.add_row({fmt_double(mem_scale, 1), fmt_double(leak_scale, 1),
                     fmt_percent(g.savings_i, 1), fmt_percent(g.savings_d, 1),
                     std::to_string(g.optimal) + "/" + std::to_string(g.runs),
                     fmt_double(g.examined, 1)});
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: the headline quantities are remarkably flat\n"
            << "across a 4x swing of either constant — average savings move\n"
            << "by a few points (expensive off-chip memory also raises the\n"
            << "baseline's bill, so relative savings can even shrink), and\n"
            << "the heuristic's search length and optimality rate stay in\n"
            << "the same band. The paper's story is a property of the\n"
            << "tradeoff's shape, not of one calibration.\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
