// Way-prediction accuracy and payoff (Section 3.3 / Table 1 discussion).
//
// The paper (citing Powell et al.) assumes prediction accuracy around 90%
// for set-associative instruction caches and around 70% for data caches,
// and observes in its Table 1 that prediction only paid off for 4-way
// instruction caches. This harness measures the MRU predictor's actual
// accuracy on every benchmark and both streams for the three
// set-associative platform configurations, plus the resulting energy delta
// of turning prediction on.
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"

namespace stcache {
namespace {

int run() {
  bench::print_header(
      "MRU way-prediction accuracy and energy payoff per benchmark",
      "Section 3.3 (way-prediction discussion)");

  const EnergyModel model;
  const char* kConfigs[] = {"4K_2W_16B", "8K_2W_32B", "8K_4W_32B"};

  for (const char* base_name : kConfigs) {
    const CacheConfig off = CacheConfig::parse(base_name);
    CacheConfig on = off;
    on.way_prediction = true;
    std::cout << "\n--- " << off.name() << " vs " << on.name() << " ---\n";

    Table table({"Ben.", "I accuracy", "I energy delta", "D accuracy",
                 "D energy delta"});
    RunningStats i_acc, d_acc;
    for (const std::string& name : bench::workload_names()) {
      const SplitTrace& split = bench::all_split_traces().at(name);
      std::string cells[4];
      int idx = 0;
      for (const bool instruction : {true, false}) {
        const Trace& stream = instruction ? split.ifetch : split.data;
        TraceEvaluator eval(stream, model);
        const double accuracy = eval.stats(on).prediction_accuracy();
        const double delta = eval.energy(on) / eval.energy(off) - 1.0;
        (instruction ? i_acc : d_acc).add(accuracy);
        cells[idx++] = fmt_percent(accuracy, 1);
        cells[idx++] = fmt_percent(delta, 1);
      }
      table.add_row({name, cells[0], cells[1], cells[2], cells[3]});
    }
    table.print(std::cout);
    std::cout << "average accuracy: I " << fmt_percent(i_acc.mean(), 1)
              << ", D " << fmt_percent(d_acc.mean(), 1) << "\n";
  }

  std::cout << "\n(Paper/Powell: ~90% accuracy for I, ~70% for D. Negative\n"
            << "energy deltas mean prediction pays off. Our embedded\n"
            << "kernels' sequential data scans push D accuracy above the\n"
            << "literature's 70%, which is why some data caches in our\n"
            << "Table 1 select prediction — see EXPERIMENTS.md.)\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
