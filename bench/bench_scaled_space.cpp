// Heuristic accuracy on larger caches (the paper's Section 3.4/5 future
// work, carried out) + throughput of the generalized oneshot sweep.
//
// Usage: bench_scaled_space [--reps N] [--out file.json]
//                           [common sweep flags: --jobs N --sweep-jobs N
//                            --metrics-out file.json
//                            --engine reference|fast|oneshot
//                            --pipeline streaming|materialized]
//
// Accuracy section: the 27-point platform space of the paper is small
// enough that greedy search rarely strays far. Does the heuristic stay
// accurate when the space grows? We run it against 64-point spaces
// (4-32 KB and 8-64 KB, up to 8-way, 16-128 B lines) on every benchmark
// stream and report, per space: evaluations used, how often the heuristic
// finds the optimum, and the distribution of its energy gap. The
// exhaustive baseline is measured as one bank pass per stream
// (tune_scaled_exhaustive -> ScaledEvaluator::prime), which under the
// oneshot engine covers each line-size family with a single generalized
// nested stack-distance traversal (NestedSweepSim); --engine selects the
// engine, --sweep-jobs shards each traversal by set partition (the bank
// reports [sweep] shard imbalance on stderr, exactly as the platform
// sweep does). Accuracy tables are byte-identical across engines and
// shard counts.
//
// Throughput section: for each workload and stream, the full 64-config
// embedded_32k sweep timed under (a) the generalized oneshot bank — one
// traversal per line-size family — and (b) the per-config fast engine
// (FastGeomSim per geometry), best of --reps, equality-asserted before
// timing. The per-workload oneshot/fast speedup is a PR acceptance
// metric (>= 5x on >= 2 workloads, gated by scripts/bench_check.py via
// the --out JSON, default BENCH_scaled.json; the committed snapshot at
// the repo root is from the container this repo is developed in).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>

#include "common.hpp"
#include "core/scaled_space.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace stcache {
namespace {

void run_space(const char* label, const ScaledSpace& space,
               const EnergyModel& model, SweepRunner& runner) {
  std::cout << "\n--- " << label << " (" << space.total_configs()
            << " configurations) ---\n";
  Table table({"Ben.", "stream", "heuristic", "evals", "optimal", "gap"});

  // One sweep job per (workload, stream): the job tunes heuristically and
  // exhaustively on its own memoized evaluator (the exhaustive pass primes
  // the whole space through one measure_geometry_bank call). Results come
  // back keyed by index, so the reduction below runs in the serial
  // program's order.
  const std::vector<std::string> names = bench::workload_names();
  const auto& traces = bench::all_split_traces();  // capture before timing
  struct JobResult {
    ScaledSearchResult heur;
    ScaledSearchResult ex;
  };
  const std::vector<JobResult> results = runner.map<JobResult>(
      names.size() * 2, [&](std::size_t j) {
        const SplitTrace& split = traces.at(names[j / 2]);
        const bool instruction = (j % 2) == 0;
        const Trace& stream = instruction ? split.ifetch : split.data;
        ScaledEvaluator eval(stream, model);
        JobResult r;
        r.heur = tune_scaled(eval, space);
        r.ex = tune_scaled_exhaustive(eval, space);
        runner.add_accesses(static_cast<std::uint64_t>(eval.evaluations()) *
                            stream.size());
        return r;
      });

  unsigned exact = 0, total = 0;
  RunningStats gaps, evals;
  for (std::size_t j = 0; j < results.size(); ++j) {
    const bool instruction = (j % 2) == 0;
    const ScaledSearchResult& heur = results[j].heur;
    const ScaledSearchResult& ex = results[j].ex;
    const double gap = heur.best_energy / ex.best_energy - 1.0;
    if (heur.best == ex.best) ++exact;
    ++total;
    gaps.add(gap);
    evals.add(heur.configs_examined);
    table.add_row({names[j / 2], instruction ? "I" : "D",
                   geometry_name(heur.best),
                   std::to_string(heur.configs_examined),
                   geometry_name(ex.best), fmt_percent(gap, 1)});
  }
  table.print(std::cout);
  std::cout << "Optimum found: " << exact << "/" << total
            << "; avg evaluations " << fmt_double(evals.mean(), 1) << "/"
            << space.total_configs() << "; gap mean "
            << fmt_percent(gaps.mean(), 1) << ", max "
            << fmt_percent(gaps.max(), 1) << "\n";
}

// --- throughput: generalized oneshot bank vs per-config fast engine ---------

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// Seconds for one full-space sweep of an already-packed stream under
// `engine`, best of `reps`: bank construction + feed + stats, serial
// (sweep_jobs = 1) so the ratio compares engines, not thread counts.
double time_space_bank(std::span<const CacheGeometry> geoms,
                       std::span<const std::uint32_t> packed,
                       ReplayEngine engine, unsigned reps) {
  double best = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    BankAccumulator bank(geoms, {}, engine, 1);
    bank.feed(packed);
    const std::vector<CacheStats> stats = bank.stats();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (stats.size() != geoms.size()) fail("scaled bank dropped configs");
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

void check_engines_agree(std::span<const CacheGeometry> geoms,
                         std::span<const std::uint32_t> packed,
                         const std::string& where) {
  const std::vector<CacheStats> a =
      measure_geometry_bank(geoms, packed, {}, ReplayEngine::kOneshot, 1);
  const std::vector<CacheStats> b =
      measure_geometry_bank(geoms, packed, {}, ReplayEngine::kFast, 1);
  for (std::size_t i = 0; i < geoms.size(); ++i) {
    if (a[i].hits != b[i].hits || a[i].misses != b[i].misses ||
        a[i].writeback_bytes != b[i].writeback_bytes ||
        a[i].fill_bytes != b[i].fill_bytes || a[i].cycles != b[i].cycles) {
      fail("scaled sweep engines disagree on " + where + " at " +
           geometry_name(geoms[i]));
    }
  }
}

int run(int argc, char** argv) {
  // Local flags first (--reps/--out); everything else goes to the common
  // sweep parser, which exits with usage on anything it does not know.
  unsigned reps = 3;
  std::string out = "BENCH_scaled.json";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out = argv[++i];
    else
      rest.push_back(argv[i]);
  }
  const bench::BenchOptions opts = bench::parse_bench_args(
      static_cast<int>(rest.size()), rest.data());
  bench::print_header(
      "Heuristic accuracy on larger configuration spaces (future-work "
      "analysis)",
      "Section 3.4 scaling discussion / Section 5 future work");

  const EnergyModel model;
  SweepRunner runner(opts.sweep);
  run_space("embedded 4-32 KB space", ScaledSpace::embedded_32k(), model,
            runner);
  run_space("desktop-ish 8-64 KB space", ScaledSpace::desktop_64k(), model,
            runner);

  std::cout << "\nConclusion for the paper's open question: the greedy\n"
            << "heuristic keeps its ~order-of-magnitude search reduction on\n"
            << "64-point spaces; its accuracy profile matches the 27-point\n"
            << "space (mostly optimal, with the occasional size/assoc\n"
            << "coupling miss).\n";

  // --- throughput: one traversal per line-size family vs 64 traversals ------
  const ScaledSpace space = ScaledSpace::embedded_32k();
  const std::vector<std::string> workload_set = {"crc", "bcnt", "ucbqsort"};
  const auto& traces = bench::all_split_traces();
  Table tp_table({"workload", "stream", "records", "fast rec/s",
                  "oneshot rec/s", "oneshot/fast"});
  std::string json = "{\n  \"reps\": " + std::to_string(reps) +
                     ",\n  \"space\": \"embedded_32k\", \"configs\": " +
                     std::to_string(space.total_configs()) +
                     ",\n  \"workloads\": [\n";
  double fast_total = 0.0, oneshot_total = 0.0;
  std::uint64_t total_records = 0;
  for (std::size_t wi = 0; wi < workload_set.size(); ++wi) {
    const SplitTrace& split = traces.at(workload_set[wi]);
    double w_fast = 0.0, w_oneshot = 0.0;
    std::string stream_json;
    for (const bool instruction : {true, false}) {
      const Trace& stream = instruction ? split.ifetch : split.data;
      std::vector<std::uint32_t> packed;
      pack_stream(stream, packed);
      const std::string where =
          workload_set[wi] + (instruction ? " I" : " D");
      check_engines_agree(space.configs(), packed, where);
      const double fast_s =
          time_space_bank(space.configs(), packed, ReplayEngine::kFast, reps);
      const double oneshot_s = time_space_bank(space.configs(), packed,
                                               ReplayEngine::kOneshot, reps);
      const double recs = static_cast<double>(packed.size()) *
                          static_cast<double>(space.total_configs());
      tp_table.add_row({workload_set[wi], instruction ? "I" : "D",
                        std::to_string(packed.size()), fmt(recs / fast_s),
                        fmt(recs / oneshot_s), fmt(fast_s / oneshot_s)});
      w_fast += fast_s;
      w_oneshot += oneshot_s;
      total_records += packed.size() * space.total_configs();
      if (!stream_json.empty()) stream_json += ",\n";
      stream_json += "        {\"stream\": \"" +
                     std::string(instruction ? "I" : "D") +
                     "\", \"records\": " + std::to_string(packed.size()) +
                     ", \"fast_seconds\": " + fmt(fast_s) +
                     ", \"oneshot_seconds\": " + fmt(oneshot_s) +
                     ", \"speedup\": " + fmt(fast_s / oneshot_s) + "}";
    }
    fast_total += w_fast;
    oneshot_total += w_oneshot;
    json += "    {\"name\": \"" + workload_set[wi] +
            "\", \"fast_seconds\": " + fmt(w_fast) +
            ", \"oneshot_seconds\": " + fmt(w_oneshot) +
            ", \"speedup\": " + fmt(w_fast / w_oneshot) +
            ",\n     \"streams\": [\n" + stream_json + "\n     ]}" +
            (wi + 1 < workload_set.size() ? ",\n" : "\n");
  }
  // Measured rates are wall-clock, so they go to stderr: stdout must stay
  // byte-identical across --jobs/--engine (the ✦ cmp contract). The JSON
  // snapshot in --out carries the same numbers for bench_check.py.
  const double recs_d = static_cast<double>(total_records);
  std::cerr << "\n--- generalized oneshot sweep vs per-config fast engine "
            << "(embedded_32k, " << space.total_configs()
            << " configs) ---\n";
  tp_table.print(std::cerr);
  std::cerr << "\nFull-space sweep: oneshot vs per-config fast "
            << fmt(fast_total / oneshot_total) << "x\n";

  json += "  ],\n  \"overall\": {\"fast_seconds\": " + fmt(fast_total) +
          ", \"oneshot_seconds\": " + fmt(oneshot_total) +
          ", \"oneshot_records_per_second\": " + fmt(recs_d / oneshot_total) +
          ", \"speedup\": " + fmt(fast_total / oneshot_total) + "}\n}\n";
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "error: cannot write '" << out << "'\n";
      return 1;
    }
    os << json;
  }

  bench::finish_sweep(runner, opts);
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) {
  try {
    return stcache::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
