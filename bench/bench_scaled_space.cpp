// Heuristic accuracy on larger caches (the paper's Section 3.4/5 future
// work, carried out).
//
// The 27-point platform space of the paper is small enough that greedy
// search rarely strays far. Does the heuristic stay accurate when the
// space grows? We run it against 64-point spaces (4-32 KB and 8-64 KB,
// up to 8-way, 16-128 B lines) on every benchmark stream and report, per
// space: evaluations used, how often the heuristic finds the optimum, and
// the distribution of its energy gap.
//
// The scaled spaces are generic CacheModel geometries, outside the
// platform cache's nested-index mapping, so the oneshot stack-distance
// engine does not apply; replay goes through measure_geometry() directly.
#include <iostream>

#include "common.hpp"
#include "core/scaled_space.hpp"
#include "util/stats.hpp"

namespace stcache {
namespace {

void run_space(const char* label, const ScaledSpace& space,
               const EnergyModel& model, SweepRunner& runner) {
  std::cout << "\n--- " << label << " (" << space.total_configs()
            << " configurations) ---\n";
  Table table({"Ben.", "stream", "heuristic", "evals", "optimal", "gap"});

  // One sweep job per (workload, stream): the job tunes heuristically and
  // exhaustively on its own memoized evaluator. Results come back keyed by
  // index, so the reduction below runs in the serial program's order.
  const std::vector<std::string> names = bench::workload_names();
  const auto& traces = bench::all_split_traces();  // capture before timing
  struct JobResult {
    ScaledSearchResult heur;
    ScaledSearchResult ex;
  };
  const std::vector<JobResult> results = runner.map<JobResult>(
      names.size() * 2, [&](std::size_t j) {
        const SplitTrace& split = traces.at(names[j / 2]);
        const bool instruction = (j % 2) == 0;
        const Trace& stream = instruction ? split.ifetch : split.data;
        ScaledEvaluator eval(stream, model);
        JobResult r;
        r.heur = tune_scaled(eval, space);
        r.ex = tune_scaled_exhaustive(eval, space);
        runner.add_accesses(static_cast<std::uint64_t>(eval.evaluations()) *
                            stream.size());
        return r;
      });

  unsigned exact = 0, total = 0;
  RunningStats gaps, evals;
  for (std::size_t j = 0; j < results.size(); ++j) {
    const bool instruction = (j % 2) == 0;
    const ScaledSearchResult& heur = results[j].heur;
    const ScaledSearchResult& ex = results[j].ex;
    const double gap = heur.best_energy / ex.best_energy - 1.0;
    if (heur.best == ex.best) ++exact;
    ++total;
    gaps.add(gap);
    evals.add(heur.configs_examined);
    table.add_row({names[j / 2], instruction ? "I" : "D",
                   geometry_name(heur.best),
                   std::to_string(heur.configs_examined),
                   geometry_name(ex.best), fmt_percent(gap, 1)});
  }
  table.print(std::cout);
  std::cout << "Optimum found: " << exact << "/" << total
            << "; avg evaluations " << fmt_double(evals.mean(), 1) << "/"
            << space.total_configs() << "; gap mean "
            << fmt_percent(gaps.mean(), 1) << ", max "
            << fmt_percent(gaps.max(), 1) << "\n";
}

int run(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Heuristic accuracy on larger configuration spaces (future-work "
      "analysis)",
      "Section 3.4 scaling discussion / Section 5 future work");

  const EnergyModel model;
  SweepRunner runner(opts.sweep);
  run_space("embedded 4-32 KB space", ScaledSpace::embedded_32k(), model,
            runner);
  run_space("desktop-ish 8-64 KB space", ScaledSpace::desktop_64k(), model,
            runner);

  std::cout << "\nConclusion for the paper's open question: the greedy\n"
            << "heuristic keeps its ~order-of-magnitude search reduction on\n"
            << "64-point spaces; its accuracy profile matches the 27-point\n"
            << "space (mostly optimal, with the occasional size/assoc\n"
            << "coupling miss).\n";
  bench::finish_sweep(runner, opts);
  return 0;
}

}  // namespace
}  // namespace stcache

int main(int argc, char** argv) { return stcache::run(argc, argv); }
