// Heuristic accuracy on larger caches (the paper's Section 3.4/5 future
// work, carried out).
//
// The 27-point platform space of the paper is small enough that greedy
// search rarely strays far. Does the heuristic stay accurate when the
// space grows? We run it against 64-point spaces (4-32 KB and 8-64 KB,
// up to 8-way, 16-128 B lines) on every benchmark stream and report, per
// space: evaluations used, how often the heuristic finds the optimum, and
// the distribution of its energy gap.
#include <iostream>

#include "common.hpp"
#include "core/scaled_space.hpp"
#include "util/stats.hpp"

namespace stcache {
namespace {

void run_space(const char* label, const ScaledSpace& space,
               const EnergyModel& model) {
  std::cout << "\n--- " << label << " (" << space.total_configs()
            << " configurations) ---\n";
  Table table({"Ben.", "stream", "heuristic", "evals", "optimal", "gap"});

  unsigned exact = 0, total = 0;
  RunningStats gaps, evals;
  for (const std::string& name : bench::workload_names()) {
    const SplitTrace& split = bench::all_split_traces().at(name);
    for (const bool instruction : {true, false}) {
      const Trace& stream = instruction ? split.ifetch : split.data;
      ScaledEvaluator eval(stream, model);
      const ScaledSearchResult heur = tune_scaled(eval, space);
      const ScaledSearchResult ex = tune_scaled_exhaustive(eval, space);
      const double gap = heur.best_energy / ex.best_energy - 1.0;
      if (heur.best == ex.best) ++exact;
      ++total;
      gaps.add(gap);
      evals.add(heur.configs_examined);
      table.add_row({name, instruction ? "I" : "D",
                     geometry_name(heur.best),
                     std::to_string(heur.configs_examined),
                     geometry_name(ex.best), fmt_percent(gap, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "Optimum found: " << exact << "/" << total
            << "; avg evaluations " << fmt_double(evals.mean(), 1) << "/"
            << space.total_configs() << "; gap mean "
            << fmt_percent(gaps.mean(), 1) << ", max "
            << fmt_percent(gaps.max(), 1) << "\n";
}

int run() {
  bench::print_header(
      "Heuristic accuracy on larger configuration spaces (future-work "
      "analysis)",
      "Section 3.4 scaling discussion / Section 5 future work");

  const EnergyModel model;
  run_space("embedded 4-32 KB space", ScaledSpace::embedded_32k(), model);
  run_space("desktop-ish 8-64 KB space", ScaledSpace::desktop_64k(), model);

  std::cout << "\nConclusion for the paper's open question: the greedy\n"
            << "heuristic keeps its ~order-of-magnitude search reduction on\n"
            << "64-point spaces; its accuracy profile matches the 27-point\n"
            << "space (mostly optimal, with the occasional size/assoc\n"
            << "coupling miss).\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
