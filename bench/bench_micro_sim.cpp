// Microbenchmarks of the simulation substrate itself (google-benchmark):
// ISS execution rate, cache access rates, assembler throughput, and
// full-trace replay speed. These are not paper results; they document the
// cost of running the reproduction pipeline.
#include <benchmark/benchmark.h>

#include "cache/cache_model.hpp"
#include "cache/configurable_cache.hpp"
#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/memory_system.hpp"
#include "trace/replay.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace stcache {
namespace {

void BM_ConfigurableCacheAccess(benchmark::State& state) {
  ConfigurableCache cache(
      all_configs()[static_cast<std::size_t>(state.range(0))]);
  Rng rng(1);
  std::vector<std::uint32_t> addrs(4096);
  for (auto& a : addrs) a = static_cast<std::uint32_t>(rng.next_below(32768)) & ~3u;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i], (i & 7) == 0));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConfigurableCacheAccess)->Arg(0)->Arg(13)->Arg(26);

void BM_GenericCacheAccess(benchmark::State& state) {
  CacheModel cache(CacheGeometry{static_cast<std::uint32_t>(state.range(0)), 4, 32});
  Rng rng(2);
  std::vector<std::uint32_t> addrs(4096);
  for (auto& a : addrs) a = static_cast<std::uint32_t>(rng.next_below(262144)) & ~3u;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i], false));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenericCacheAccess)->Arg(8192)->Arg(1 << 20);

void BM_IssExecution(benchmark::State& state) {
  const Workload& w = find_workload("bcnt");
  const Program p = assemble(w.source, w.name);
  for (auto _ : state) {
    PerfectMemory mem;
    Cpu cpu(p, mem, w.mem_bytes);
    const RunResult r = cpu.run(w.max_instructions);
    benchmark::DoNotOptimize(r.instructions);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(r.instructions));
  }
}
BENCHMARK(BM_IssExecution)->Unit(benchmark::kMillisecond);

void BM_Assemble(benchmark::State& state) {
  const Workload& w = find_workload("jpeg");  // largest generated source
  for (auto _ : state) {
    benchmark::DoNotOptimize(assemble(w.source, w.name));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.source.size()));
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMillisecond);

void BM_TraceReplay(benchmark::State& state) {
  static const Trace trace = capture_trace(find_workload("crc"));
  for (auto _ : state) {
    const CacheStats s = measure_config(base_cache(), trace);
    benchmark::DoNotOptimize(s.misses);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(trace.size()));
  }
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stcache

BENCHMARK_MAIN();
