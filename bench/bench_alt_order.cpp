// Search-order ablation (Section 4).
//
// The paper compares its size -> line -> associativity -> prediction order
// against an alternative that tunes line size first (line, assoc, pred,
// size), reporting that the alternative misses the optimum in 10/18
// instruction caches and 7/18 data caches, by up to 7% extra energy. We
// sweep ALL 24 parameter orders over every benchmark and stream and report,
// per order, how often it misses the exhaustive optimum, the worst energy
// gap, and the average number of configurations examined.
#include <iostream>

#include "common.hpp"

namespace stcache {
namespace {

std::string order_name(const std::array<Param, 4>& order) {
  std::string s;
  for (Param p : order) {
    if (!s.empty()) s += "->";
    s += to_string(p);
  }
  return s;
}

struct OrderStats {
  unsigned i_miss = 0, d_miss = 0;
  double worst_gap = 0.0;
  unsigned evaluations = 0;
  unsigned runs = 0;
};

int run() {
  bench::print_header(
      "Search-order ablation: misses of the optimum and worst-case energy "
      "gap for all 24 parameter orders",
      "Section 4 (alternative-heuristic comparison)");

  const EnergyModel model;
  const auto orders = all_param_orders();
  std::vector<OrderStats> stats(orders.size());

  // One evaluator per stream: the 27-point space is measured once and all
  // 24 orders walk the memoized landscape.
  for (const auto& [name, split] : bench::all_split_traces()) {
    for (const bool instruction : {true, false}) {
      const Trace& stream = instruction ? split.ifetch : split.data;
      TraceEvaluator eval(stream, model);
      const SearchResult ex = tune_exhaustive(eval);
      for (std::size_t o = 0; o < orders.size(); ++o) {
        const SearchResult heur = tune(eval, orders[o]);
        if (heur.best != ex.best) {
          (instruction ? stats[o].i_miss : stats[o].d_miss) += 1;
          stats[o].worst_gap = std::max(
              stats[o].worst_gap, heur.best_energy / ex.best_energy - 1.0);
        }
        stats[o].evaluations += heur.configs_examined;
        ++stats[o].runs;
      }
    }
  }

  Table table({"order", "I misses", "D misses", "worst gap", "avg examined"});
  for (std::size_t o = 0; o < orders.size(); ++o) {
    const bool is_paper = orders[o] == kPaperOrder;
    table.add_row(
        {order_name(orders[o]) + (is_paper ? "  <- paper" : ""),
         std::to_string(stats[o].i_miss), std::to_string(stats[o].d_miss),
         fmt_percent(stats[o].worst_gap, 1),
         fmt_double(static_cast<double>(stats[o].evaluations) / stats[o].runs,
                    1)});
  }
  table.print(std::cout);

  std::cout << "\n(Paper: its order misses only 2 data-cache optima out of\n"
            << " 18; the line-size-first alternative misses 10/18 I and\n"
            << " 7/18 D, with configurations up to 7% worse.)\n";
  return 0;
}

}  // namespace
}  // namespace stcache

int main() { return stcache::run(); }
