// Quickstart: the smallest end-to-end use of the library.
//
//  1. Pick a benchmark kernel (real assembly, executed on the bundled ISS).
//  2. Capture its memory-access trace.
//  3. Let the paper's heuristic tune the instruction and data caches.
//  4. Compare against the fixed 8 KB 4-way base cache.
//
// Build & run:  ./build/examples/example_quickstart [workload]
#include <iostream>

#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "energy/energy_model.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

using namespace stcache;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "crc";
  const Workload& workload = find_workload(name);
  std::cout << "Workload: " << workload.name << " — " << workload.description
            << "\n\n";

  // Run the kernel once on the instruction-set simulator, recording every
  // instruction fetch and data access.
  const Trace trace = capture_trace(workload);
  const SplitTrace split = split_trace(trace);
  std::cout << "Captured " << split.ifetch.size() << " instruction fetches and "
            << split.data.size() << " data accesses.\n\n";

  // Tune each cache with the paper's heuristic (size -> line size ->
  // associativity -> way prediction, each walked while energy improves).
  const EnergyModel model;
  Table table({"cache", "selected config", "configs examined",
               "energy (tuned)", "energy (8K_4W_32B base)", "savings"});
  for (const bool instruction : {true, false}) {
    const Trace& stream = instruction ? split.ifetch : split.data;
    TraceEvaluator evaluator(stream, model);
    const SearchResult result = tune(evaluator);
    const double base_energy = evaluator.energy(base_cache());
    table.add_row({instruction ? "I-cache" : "D-cache", result.best.name(),
                   std::to_string(result.configs_examined),
                   fmt_si_energy(result.best_energy),
                   fmt_si_energy(base_energy),
                   fmt_percent(1.0 - result.best_energy / base_energy, 1)});
  }
  table.print(std::cout);

  std::cout << "\nThe heuristic examined a handful of the 27 possible\n"
            << "configurations and never required a cache flush.\n";
  return 0;
}
