// Multi-level tuning (Section 3.4): apply the one-parameter-at-a-time
// heuristic to a two-level hierarchy — 16 KB 8-way L1 I/D caches with
// configurable line size and a 256 KB 8-way unified L2 — and compare the
// number of configurations examined against the 64-point cross product.
//
// Build & run:  ./build/examples/example_multilevel_tuning [workload]
#include <iostream>

#include "core/multilevel.hpp"
#include "trace/synthetic.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

using namespace stcache;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "mpeg2";

  Trace trace;
  if (name == "parser-like") {
    ParserLikeParams params;
    params.accesses = 1'000'000;
    trace = gen_parser_like(params);
    std::cout << "Two-level tuning of the parser-like synthetic workload\n\n";
  } else {
    const Workload& workload = find_workload(name);
    trace = capture_trace(workload);
    std::cout << "Two-level tuning of " << workload.name << " ("
              << workload.description << ")\n\n";
  }

  const EnergyModel model;
  const TwoLevelSearchResult heuristic = tune_two_level(trace, model);
  const TwoLevelSearchResult optimum = tune_two_level_exhaustive(trace, model);

  Table table({"search", "configuration", "configs examined", "energy"});
  table.add_row({"heuristic", heuristic.best.name(),
                 std::to_string(heuristic.configs_examined),
                 fmt_si_energy(heuristic.best_energy)});
  table.add_row({"exhaustive", optimum.best.name(),
                 std::to_string(optimum.configs_examined),
                 fmt_si_energy(optimum.best_energy)});
  table.print(std::cout);

  const TwoLevelStats stats = simulate_two_level(heuristic.best, trace);
  std::cout << "\nHierarchy behavior under the tuned configuration:\n"
            << "  L1I miss rate: " << fmt_percent(stats.l1i.miss_rate(), 2)
            << "\n  L1D miss rate: " << fmt_percent(stats.l1d.miss_rate(), 2)
            << "\n  L2  miss rate: " << fmt_percent(stats.l2.miss_rate(), 2)
            << " (of " << stats.l2.accesses << " L2 accesses)\n";

  std::cout << "\nThe heuristic searched " << heuristic.configs_examined
            << " of the 64 possible configurations (the paper: the sums of\n"
            << "the parameter value counts instead of their product) and\n"
            << "came within "
            << fmt_percent(heuristic.best_energy / optimum.best_energy - 1.0, 1)
            << " of the exhaustive optimum.\n";
  return 0;
}
