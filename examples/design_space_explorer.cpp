// Design-space explorer: the offline CAD flow the paper's on-chip tuner
// replaces. Prints the full 27-configuration energy/miss-rate landscape of
// one workload's instruction or data stream, marks the optimum, and shows
// the path the heuristic takes through it.
//
// Build & run:  ./build/examples/example_design_space_explorer [workload] [I|D]
#include <algorithm>
#include <iostream>

#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "energy/energy_model.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

using namespace stcache;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "jpeg";
  const bool instruction = argc > 2 ? std::string(argv[2]) != "D" : true;

  const Workload& workload = find_workload(name);
  std::cout << "Design space of " << workload.name << " ("
            << (instruction ? "instruction" : "data") << " stream)\n\n";

  const Trace trace = capture_trace(workload);
  const SplitTrace split = split_trace(trace);
  const Trace& stream = instruction ? split.ifetch : split.data;

  const EnergyModel model;
  TraceEvaluator evaluator(stream, model);
  const SearchResult heuristic = tune(evaluator);
  const SearchResult optimum = tune_exhaustive(evaluator);
  const double base_energy = evaluator.energy(base_cache());

  // Heuristic path, in visit order.
  auto visit_index = [&](const CacheConfig& cfg) -> int {
    for (std::size_t i = 0; i < heuristic.visited.size(); ++i) {
      if (heuristic.visited[i] == cfg) return static_cast<int>(i + 1);
    }
    return 0;
  };

  std::vector<CacheConfig> configs = all_configs();
  std::sort(configs.begin(), configs.end(),
            [&](const CacheConfig& a, const CacheConfig& b) {
              return evaluator.energy(a) < evaluator.energy(b);
            });

  Table table({"rank", "config", "miss rate", "energy", "vs base", "notes"});
  int rank = 0;
  for (const CacheConfig& cfg : configs) {
    ++rank;
    std::string notes;
    if (cfg == optimum.best) notes += "OPTIMAL ";
    if (cfg == heuristic.best) notes += "<- heuristic pick ";
    if (const int v = visit_index(cfg); v > 0) {
      notes += "(step " + std::to_string(v) + ")";
    }
    const double e = evaluator.energy(cfg);
    table.add_row({std::to_string(rank), cfg.name(),
                   fmt_percent(evaluator.stats(cfg).miss_rate(), 2),
                   fmt_si_energy(e), fmt_percent(1.0 - e / base_energy, 1),
                   notes});
  }
  table.print(std::cout);

  std::cout << "\nHeuristic examined " << heuristic.configs_examined << "/"
            << configs.size() << " configurations and landed "
            << (heuristic.best == optimum.best
                    ? "on the optimum."
                    : fmt_percent(heuristic.best_energy / optimum.best_energy -
                                      1.0,
                                  1) + " above the optimum.")
            << "\n";
  return 0;
}
