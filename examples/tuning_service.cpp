// Tuning as a service: an in-process TuningServer plus two concurrent
// clients of it — the worked example behind docs/serving.md §5.
//
//  1. Start stcache_tuned's server class on a loopback unix socket.
//  2. Client 1 streams the workload's instruction fetches chunk by chunk
//     as they are captured (nothing materialized on either side); client 2
//     ships the materialized data stream in one call. Both run at once.
//  3. Each VERDICT carries the full 27-config CacheStats bank; prime a
//     TraceEvaluator with it and both searches become pure lookups.
//  4. A third, misbehaving session (CRC-corrupted chunk) is answered with
//     a typed ERROR and perturbs neither verdict — the failure-isolation
//     invariant of docs/serving.md §4.
//
// Build & run:  ./build/examples/example_tuning_service [workload]
#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "energy/energy_model.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

using namespace stcache;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "crc";
  const Workload& workload = find_workload(name);
  std::cout << "Workload: " << workload.name << " — " << workload.description
            << "\n\n";

  // A daemon in miniature: same server class stcache_tuned wraps, here
  // with two sweep workers on a socket under a fresh temp directory
  // (sun_path caps socket paths at ~100 chars, so keep them short).
  char tmpl[] = "/tmp/stcexXXXXXX";
  const char* dir = mkdtemp(tmpl);
  STC_ASSERT(dir != nullptr, "mkdtemp failed");
  serve::ServerOptions opts;
  opts.socket_path = std::string(dir) + "/svc.sock";
  opts.workers = 2;
  serve::TuningServer server(opts);
  server.start();
  std::cout << "Server listening on " << server.socket_path() << " with "
            << server.workers() << " shard worker(s).\n";

  // Two sessions in flight at once, one per cache stream.
  serve::Verdict verdicts[2];
  std::thread ifetch_client([&] {
    // Streaming: each packed chunk goes from the capture callback straight
    // onto the wire; capture, socket, and the server's sweep all overlap.
    serve::TuneClient client(opts.socket_path, /*instruction=*/true);
    stream_workload(workload, [&](const PackedChunk& chunk) {
      client.send(chunk.ifetch_words());
    });
    verdicts[0] = client.finish();
  });
  std::thread data_client([&] {
    // Materialized: capture first, then one tune_remote() call.
    const PackedCapture cap = capture_packed(workload);
    verdicts[1] = serve::tune_remote(opts.socket_path, /*instruction=*/false,
                                     cap.data);
  });
  ifetch_client.join();
  data_client.join();

  // Each verdict is the whole measured design space: prime an evaluator
  // with it and run the paper's searches as memo lookups.
  const EnergyModel model;
  Table table({"cache", "heuristic pick", "examined", "exhaustive optimum",
               "energy", "savings vs base"});
  for (const bool instruction : {true, false}) {
    const serve::Verdict& v = verdicts[instruction ? 0 : 1];
    TraceEvaluator eval(std::span<const std::uint32_t>{}, model);
    for (std::size_t j = 0; j < all_configs().size(); ++j) {
      eval.prime(all_configs()[j], v.stats[j]);
    }
    const SearchResult heur = tune(eval);
    const SearchResult best = tune_exhaustive(eval);
    const double base = eval.energy(base_cache());
    table.add_row({instruction ? "I-cache" : "D-cache", heur.best.name(),
                   std::to_string(heur.configs_examined), best.best.name(),
                   fmt_si_energy(best.best_energy),
                   fmt_percent(1.0 - best.best_energy / base, 1)});
  }
  table.print(std::cout);

  // Failure isolation, live: a session that declares a wrong CRC gets a
  // typed ERROR and nothing else on the server notices.
  const int fd = serve::unix_connect(opts.socket_path);
  serve::write_frame(fd, serve::FrameType::kHello, serve::encode_hello(true));
  const std::uint32_t words[4] = {1, 2, 3, 4};
  std::vector<std::uint8_t> payload =
      serve::encode_chunk(std::span<const std::uint32_t>(words, 4));
  payload[8] ^= 0xff;  // flip a word byte: the declared CRC is now wrong
  serve::write_frame(fd, serve::FrameType::kChunk, payload);
  serve::Frame resp;
  STC_ASSERT(serve::read_frame(fd, resp) &&
                 resp.type == serve::FrameType::kError,
             "expected a typed ERROR for the corrupted session");
  const serve::WireError err = serve::decode_error(resp.payload);
  ::close(fd);
  std::cout << "\nA deliberately corrupted third session was answered with "
            << "ERROR '" << serve::to_string(err.code)
            << "' — and only that session was poisoned.\n";

  server.stop();
  ::unlink(opts.socket_path.c_str());
  ::rmdir(dir);
  std::cout << "Server drained and stopped after "
            << server.sessions_served() << " served sessions.\n";
  return 0;
}
