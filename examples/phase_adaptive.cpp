// Phase-adaptive tuning across a task switch.
//
// Section 1 of the paper lists "whenever a program phase change is
// detected" among the ways the self-tuning hardware can be deployed. This
// example runs two different kernels back-to-back on the same system —
// a task switch, the most drastic phase change an embedded system sees —
// with the TuningController watching the I-cache:
//
//   task 1: crc    (2 KB hot loop  -> a small cache wins)
//   task 2: padpcm (8 KB live code -> the small cache thrashes)
//
// The phase detector notices the miss-rate jump after the switch and
// retunes. Both tasks' checksums are verified: tuning stays transparent.
//
// Build & run:  ./build/examples/example_phase_adaptive
#include <iostream>
#include <memory>

#include "core/controller.hpp"
#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

using namespace stcache;

int main() {
  const Workload& task1 = find_workload("crc");
  const Workload& task2 = find_workload("padpcm");
  std::cout << "Task 1: " << task1.name << " — " << task1.description << "\n"
            << "Task 2: " << task2.name << " — " << task2.description << "\n\n";

  SplitCacheSystem system(CacheConfig::parse("2K_1W_16B"),
                          CacheConfig::parse("8K_4W_32B"));

  // The caches persist across the task switch (their contents simply stop
  // being useful); only the CPU state is replaced.
  const Program prog1 = assemble(task1.source, task1.name);
  const Program prog2 = assemble(task2.source, task2.name);
  auto cpu = std::make_unique<Cpu>(prog1, system, task1.mem_bytes);
  const Workload* active = &task1;
  bool all_done = false;

  auto run_some = [&](std::uint64_t instructions) {
    if (all_done) return;
    const RunResult r = cpu->run(instructions);
    if (!r.halted) return;
    // Task finished: verify it and switch to the next one.
    if (cpu->reg(kV0) != active->expected_checksum) {
      std::cerr << "CHECKSUM MISMATCH in " << active->name << "!\n";
      std::exit(1);
    }
    std::cout << "  [" << active->name << " completed, checksum OK]\n";
    if (active == &task1) {
      active = &task2;
      cpu = std::make_unique<Cpu>(prog2, system, task2.mem_bytes);
    } else {
      all_done = true;
    }
  };

  ControllerParams params;
  params.trigger = TuningTrigger::kPhaseChange;
  params.miss_rate_delta = 0.03;
  params.phase_debounce = 2;
  const EnergyModel model;
  TuningController controller(system.icache(), model, params,
                              TunerFsmd::shift_for(120'000));

  IntervalFns fns;
  fns.quiet = [&] { run_some(50'000); };
  fns.search = [&] { run_some(12'000); };  // short search windows

  Table log({"interval", "event", "I-cache config"});
  unsigned interval = 0;
  while (!all_done) {
    const bool tuned = controller.step(fns);
    ++interval;
    if (tuned) {
      log.add_row({std::to_string(interval), "tuning session",
                   controller.current().name()});
    }
  }
  log.print(std::cout);

  std::cout << "\nTuning sessions:\n";
  for (const TuningSession& s : controller.sessions()) {
    std::cout << "  chose " << s.chosen.name() << " after "
              << s.configs_examined << " configurations ("
              << fmt_si_energy(s.tuner_energy) << "); reference miss rate "
              << fmt_percent(s.reference_miss_rate, 2) << "\n";
  }
  std::cout << "\nTotal tuner energy: "
            << fmt_si_energy(controller.total_tuner_energy())
            << " — both tasks ran to completion, checksums intact,\n"
            << "and the I-cache followed the workload across the task\n"
            << "switch without a single flush.\n";
  return 0;
}
