// Phase-adaptive tuning with phase-distance config reuse.
//
// Section 1 of the paper lists "whenever a program phase change is
// detected" among the ways the self-tuning hardware can be deployed. The
// phase subsystem (src/phase/, docs/phases.md) carries that out on long
// phase-mixed streams: a streaming classifier folds working-set
// signatures over the packed stream into phase boundaries, and a phase
// table maps each new phase's signature onto previously tuned phases —
// a phase within the reuse threshold of a tuned one *reuses* that
// phase's configuration instead of paying for a fresh Fig. 6 sweep
// (phase distance mapping, Adegbija/Gordon-Ross/Munir).
//
// This example runs the phase-adaptive tuner over one of the canned
// phase-mixed scenarios (src/phase/scenario.hpp), prints the per-phase
// tuning timeline, and then repeats the run with distance mapping
// disabled — the naive tuner that re-sweeps every phase — to show how
// much search work the phase table saves on recurring phases.
//
// Build & run:  ./build/examples/example_phase_adaptive [SCENARIO] [SCALE]
//               (scenarios: squarewave | taskset | datamix)
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "energy/energy_model.hpp"
#include "phase/adaptive.hpp"
#include "phase/scenario.hpp"
#include "trace/phase_mix.hpp"
#include "util/table.hpp"

using namespace stcache;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "squarewave";
  const unsigned scale =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 1;
  const PhaseScenario& sc = find_phase_scenario(name);
  std::cout << "Scenario: " << sc.name << " — " << sc.description << "\n";

  const PhaseMixedStream mix = build_phase_scenario(name, scale);
  std::cout << "Stream: " << mix.words.size() << " packed words, "
            << mix.segments.size() << " ground-truth segments\n\n";

  const EnergyModel model;
  const std::vector<CacheConfig>& configs = all_configs();

  // Feed in bounded chunks, the way a deployment rides the streaming
  // capture pipeline; the timeline is invariant to the slicing.
  const auto run = [&](bool distance_mapping) {
    PhaseTunerParams params;
    params.distance_mapping = distance_mapping;
    PhaseAdaptiveTuner tuner(configs, model, params);
    constexpr std::size_t kChunk = 1u << 16;
    std::span<const std::uint32_t> rest(mix.words);
    while (!rest.empty()) {
      const std::size_t take = std::min<std::size_t>(kChunk, rest.size());
      tuner.feed(rest.first(take));
      rest = rest.subspan(take);
    }
    return tuner;
  };

  PhaseAdaptiveTuner adaptive = run(true);
  const std::vector<PhaseRecord> timeline = adaptive.finish();
  print_phase_timeline(std::cout, timeline);
  std::cout << "\nPhase-adaptive: " << timeline.size() << " phases, "
            << adaptive.sweeps() << " full sweeps, " << adaptive.reuses()
            << " config reuses (" << adaptive.swept_words() << "/"
            << adaptive.words_seen() << " words swept)\n";

  PhaseAdaptiveTuner naive = run(false);
  const std::vector<PhaseRecord> naive_timeline = naive.finish();
  std::cout << "Naive re-tuning: " << naive_timeline.size() << " phases, "
            << naive.sweeps() << " full sweeps (" << naive.swept_words()
            << " words swept)\n";

  if (adaptive.sweeps() == 0 || naive.sweeps() <= adaptive.sweeps()) {
    std::cerr << "expected distance mapping to save sweeps\n";
    return 1;
  }
  const double ratio = static_cast<double>(naive.sweeps()) /
                       static_cast<double>(adaptive.sweeps());
  std::cout << "\nDistance mapping issued " << fmt_double(ratio, 1)
            << "x fewer full sweeps than naive per-phase re-tuning;\n"
            << "every reused phase skipped a " << configs.size()
            << "-configuration search entirely.\n";
  return 0;
}
