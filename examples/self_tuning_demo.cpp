// Self-tuning demo: the paper's headline scenario, live.
//
// A CPU executes a real kernel against split configurable caches. The
// hardware tuner (cycle-accurate FSMD model) owns the caches: it runs the
// application for a measurement interval per candidate configuration,
// reads the hit/miss/cycle counters, computes Equation 1 in 16-bit
// fixed-point, and walks the heuristic — reconfiguring the running caches
// WITHOUT ever flushing them. The program keeps executing correctly
// throughout (its checksum is verified at the end).
//
// Build & run:  ./build/examples/example_self_tuning_demo [workload]
#include <iostream>

#include "core/ports.hpp"
#include "core/tuner_fsmd.hpp"
#include "isa/assembler.hpp"
#include "sim/cpu.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

using namespace stcache;

namespace {

// A LiveTunerPort that logs every measurement for the demo output.
class LoggingPort final : public TunerPort {
 public:
  LoggingPort(ConfigurableCache& cache, LiveTunerPort::IntervalFn fn)
      : inner_(cache, std::move(fn)) {}

  TunerCounters measure(const CacheConfig& cfg) override {
    const TunerCounters c = inner_.measure(cfg);
    const double miss_rate =
        c.accesses ? static_cast<double>(c.misses) / c.accesses : 0.0;
    log.add_row({cfg.name(), std::to_string(c.accesses),
                 std::to_string(c.misses), fmt_percent(miss_rate, 2),
                 std::to_string(inner_.reconfig_writebacks())});
    return c;
  }

  Table log{{"trying config", "accesses", "misses", "miss rate",
             "cum. reconfig write-backs"}};

 private:
  LiveTunerPort inner_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "padpcm";
  const Workload& workload = find_workload(name);
  std::cout << "Self-tuning the I-cache while '" << workload.name
            << "' runs (" << workload.description << ")\n\n";

  const Program program = assemble(workload.source, workload.name);
  SplitCacheSystem system(CacheConfig::parse("2K_1W_16B"),
                          CacheConfig::parse("8K_4W_32B"));
  Cpu cpu(program, system, workload.mem_bytes);

  bool halted = false;
  LoggingPort port(system.icache(), [&] {
    const RunResult r = cpu.run(60'000);  // one tuning interval
    halted = halted || r.halted;
  });

  const EnergyModel model;
  TunerFsmd tuner(model, system.icache().timing(), TunerFsmd::shift_for(80'000));
  const TunerFsmd::Result result = tuner.run(port);

  port.log.print(std::cout);
  std::cout << "\nTuner decision: " << result.best.name() << " after "
            << result.configs_examined << " configurations, "
            << result.tuner_cycles << " tuner cycles ("
            << fmt_si_energy(result.tuner_energy) << ", Equation 2).\n";

  system.icache().reconfigure(result.best);
  while (!halted) halted = cpu.run(1'000'000).halted;

  if (cpu.reg(kV0) == workload.expected_checksum) {
    std::cout << "\nWorkload completed with the CORRECT checksum 0x" << std::hex
              << cpu.reg(kV0) << std::dec
              << " — tuning was transparent to the program, with "
              << "no cache flushes along the search path.\n";
    return 0;
  }
  std::cout << "\nERROR: checksum mismatch after tuning!\n";
  return 1;
}
