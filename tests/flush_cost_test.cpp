// Tests of the flush-cost experiment (Section 4: searching sizes in
// descending order forces expensive dirty write-backs that the heuristic's
// ascending order avoids).
#include <gtest/gtest.h>

#include "core/flush_cost.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace stcache {
namespace {

Trace write_heavy_stream(std::uint64_t seed, std::uint64_t n = 60'000) {
  Rng rng(seed);
  Trace t;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(24 * 1024)) & ~3u;
    t.push_back({a, rng.next_bool(0.5) ? AccessKind::kWrite : AccessKind::kRead});
  }
  return t;
}

TEST(FlushCost, DescendingCostsMoreThanAscending) {
  EnergyModel model;
  const FlushCostReport r = measure_flush_cost(write_heavy_stream(1), model);
  EXPECT_GT(r.descending_writeback_lines, r.ascending_writeback_lines);
  EXPECT_GT(r.descending_writeback_energy, r.ascending_writeback_energy);
}

TEST(FlushCost, DescendingWritesBackHundredsOfLines) {
  // 8K -> 4K gates two banks, 4K -> 2K gates one more; with a write-heavy
  // stream most of the gated lines are dirty.
  EnergyModel model;
  const FlushCostReport r = measure_flush_cost(write_heavy_stream(2), model);
  EXPECT_GT(r.descending_writeback_lines, 200u);
  EXPECT_LE(r.descending_writeback_lines, 384u);  // 3 banks x 128 lines max
}

TEST(FlushCost, ReadOnlyStreamCostsNothingEitherWay) {
  Rng rng(3);
  Trace t;
  for (int i = 0; i < 30'000; ++i) {
    t.push_back({static_cast<std::uint32_t>(rng.next_below(16 * 1024)) & ~3u,
                 AccessKind::kRead});
  }
  EnergyModel model;
  const FlushCostReport r = measure_flush_cost(t, model);
  EXPECT_EQ(r.ascending_writeback_lines, 0u);
  EXPECT_EQ(r.descending_writeback_lines, 0u);
}

TEST(FlushCost, EnergyScalesWithLines) {
  EnergyModel model;
  const FlushCostReport r = measure_flush_cost(write_heavy_stream(4), model);
  EXPECT_DOUBLE_EQ(
      r.descending_writeback_energy,
      static_cast<double>(r.descending_writeback_lines) *
          model.offchip_writeback_energy_per_line());
}

TEST(FlushCost, DwarfsTunerEnergy) {
  // The paper's headline ratio: descending-order write-back energy is
  // orders of magnitude larger than the tuner's own energy (they report
  // ~48,000x; the exact factor depends on the workload's dirty volume).
  EnergyModel model;
  const FlushCostReport r = measure_flush_cost(write_heavy_stream(5), model);
  const double tuner = model.tuner_energy(6);
  EXPECT_GT(r.descending_writeback_energy / tuner, 100.0);
}

}  // namespace
}  // namespace stcache
