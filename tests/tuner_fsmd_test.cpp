// Tests of the hardware tuner FSMD model: fixed-point energy vs. the
// double-precision reference, cycle accounting (64 cycles per
// configuration evaluation, as the paper's gate-level simulation reports),
// Equation 2 energy, and saturation behavior.
#include <gtest/gtest.h>

#include <map>

#include "core/evaluator.hpp"
#include "core/ports.hpp"
#include "core/tuner_fsmd.hpp"
#include "trace/synthetic.hpp"
#include "workloads/workload.hpp"

namespace stcache {
namespace {

class TunerFsmdTest : public ::testing::Test {
 protected:
  EnergyModel model_;
  TimingParams timing_;
};

TEST_F(TunerFsmdTest, CyclesPerEvaluationIs64) {
  // The documented budget must reproduce the paper's number exactly.
  EXPECT_EQ(TunerFsmd::kCyclesPerEvaluation, 64u);
}

TEST_F(TunerFsmdTest, ShiftForCountsBits) {
  EXPECT_EQ(TunerFsmd::shift_for(0xFFFF), 0u);
  EXPECT_EQ(TunerFsmd::shift_for(0x10000), 1u);
  EXPECT_EQ(TunerFsmd::shift_for(1'000'000), 4u);
  EXPECT_EQ(TunerFsmd::shift_for(1ull << 40), 25u);
}

TEST_F(TunerFsmdTest, QuantizedEnergyTracksDoubleReference) {
  TunerFsmd tuner(model_, timing_, /*counter_shift=*/6);
  // Representative counters: a mid-size interval.
  TunerCounters c;
  c.accesses = 1'000'000;
  c.hits = 980'000;
  c.misses = 20'000;
  c.cycles = 2'500'000;
  for (const char* name : {"2K_1W_16B", "4K_1W_32B", "8K_4W_64B", "8K_2W_16B"}) {
    const CacheConfig cfg = CacheConfig::parse(name);
    const U32 q = tuner.quantized_energy(cfg, c);
    ASSERT_FALSE(q.saturated()) << name;
    const double fsmd_joules =
        dequantize(q.raw(), tuner.energy_lsb()) * (1 << 6);
    // Double-precision Equation 1 with the same three-term structure.
    CacheStats s;
    s.accesses = c.accesses;
    s.hits = c.hits;
    s.misses = c.misses;
    s.cycles = c.cycles;
    s.fill_bytes = c.misses * cfg.line_bytes();
    s.stall_cycles = c.misses * timing_.miss_stall_cycles(cfg.line_bytes());
    const double ref = model_.evaluate(cfg, s).total();
    EXPECT_NEAR(fsmd_joules, ref, 0.05 * ref) << name;
  }
}

TEST_F(TunerFsmdTest, SaturatesOnHugeCounters) {
  TunerFsmd tuner(model_, timing_, /*counter_shift=*/0);
  TunerCounters c;
  c.accesses = 1ull << 32;  // far beyond 16 bits at shift 0
  c.hits = c.accesses;
  c.misses = 1ull << 30;
  c.cycles = 1ull << 33;
  const U32 q = tuner.quantized_energy(CacheConfig::parse("8K_4W_32B"), c);
  EXPECT_TRUE(q.saturated());
}

TEST_F(TunerFsmdTest, PredictionEvaluationUsesPredictedProbeConstants) {
  TunerFsmd tuner(model_, timing_, 4);
  TunerCounters c;
  c.accesses = 100'000;
  c.hits = 99'000;
  c.misses = 1'000;
  c.cycles = 150'000;
  c.pred_first_hits = 90'000;
  const U32 with_pred =
      tuner.quantized_energy(CacheConfig::parse("8K_4W_16B_P"), c);
  const U32 without =
      tuner.quantized_energy(CacheConfig::parse("8K_4W_16B"), c);
  // 90% first-hit rate on a 4-way cache: prediction must look cheaper.
  EXPECT_LT(with_pred.raw(), without.raw());
}

TEST_F(TunerFsmdTest, PredictionOnDirectMappedRejected) {
  TunerFsmd tuner(model_, timing_, 4);
  CacheConfig bad{CacheSizeKB::k2, Assoc::w1, LineBytes::b16, true};
  TunerCounters c;
  EXPECT_THROW(tuner.quantized_energy(bad, c), Error);
}

// A scripted port with a fixed energy landscape lets us check the FSMD's
// walk order and cycle accounting precisely.
class ScriptedPort final : public TunerPort {
 public:
  // Miss counts per configuration name; unlisted configs get `fallback`.
  ScriptedPort(std::map<std::string, std::uint64_t> misses,
               std::uint64_t fallback)
      : misses_(std::move(misses)), fallback_(fallback) {}

  TunerCounters measure(const CacheConfig& cfg) override {
    visited.push_back(cfg.name());
    TunerCounters c;
    c.accesses = 1'000'000;
    auto it = misses_.find(cfg.name());
    c.misses = it != misses_.end() ? it->second : fallback_;
    c.hits = c.accesses - c.misses;
    c.cycles = c.accesses + 30 * c.misses;
    return c;
  }

  std::vector<std::string> visited;

 private:
  std::map<std::string, std::uint64_t> misses_;
  std::uint64_t fallback_;
};

TEST_F(TunerFsmdTest, WalksPaperOrderAndStopsOnRegression) {
  // 4 KB is the sweet spot; 32 B lines help; associativity does not.
  ScriptedPort port(
      {
          {"2K_1W_16B", 50'000},
          {"4K_1W_16B", 10'000},
          {"8K_1W_16B", 9'500},   // tiny gain, not worth the bigger cache
          {"4K_1W_32B", 6'000},
          {"4K_1W_64B", 7'000},
          {"4K_2W_32B", 5'900},   // small miss gain, but more probe energy
      },
      20'000);
  TunerFsmd tuner(model_, timing_, TunerFsmd::shift_for(2'000'000));
  const TunerFsmd::Result r = tuner.run(port);
  // Walk: 2K, 4K, 8K (8K worse) | 32B, 64B (64B worse) | 2W (worse).
  EXPECT_EQ(port.visited.size(), r.configs_examined);
  EXPECT_EQ(port.visited.front(), "2K_1W_16B");
  EXPECT_EQ(r.best.name(), "4K_1W_32B");
  EXPECT_EQ(r.tuner_cycles, r.configs_examined * 64ull);
  EXPECT_DOUBLE_EQ(r.tuner_energy,
                   r.tuner_cycles * model_.params().tuner_power /
                       model_.params().clock_hz);
}

TEST_F(TunerFsmdTest, AgreesWithBehaviouralHeuristicOnWorkloads) {
  // End-to-end: the fixed-point FSMD must reach a configuration whose
  // (double-precision) energy matches the behavioural heuristic's choice.
  // Quantization may legitimately flip exact near-ties — e.g. the line-size
  // walk on a loop that fits the cache, where the paper's own Figure 3
  // shows line size barely moves instruction energy — so we assert energy
  // equivalence within 2% rather than name equality.
  for (const char* name : {"crc", "bcnt", "jpeg", "auto"}) {
    const Trace trace = capture_trace(find_workload(name));
    const SplitTrace split = split_trace(trace);

    TraceEvaluator eval(split.ifetch, model_, timing_);
    const SearchResult behavioural = tune(eval);

    TraceTunerPort port(split.ifetch, timing_);
    TunerFsmd tuner(model_, timing_,
                    TunerFsmd::shift_for(split.ifetch.size() * 4));
    const TunerFsmd::Result fsmd = tuner.run(port);

    EXPECT_FALSE(fsmd.saturated) << name;
    EXPECT_EQ(fsmd.best.size_kb, behavioural.best.size_kb) << name;
    EXPECT_EQ(fsmd.best.assoc, behavioural.best.assoc) << name;
    const double fsmd_choice_energy = eval.energy(fsmd.best);
    EXPECT_LE(fsmd_choice_energy, 1.02 * behavioural.best_energy) << name;
    // Walk lengths may differ by the flipped near-ties only.
    EXPECT_NEAR(static_cast<double>(fsmd.configs_examined),
                static_cast<double>(behavioural.configs_examined), 2.0)
        << name;
  }
}

TEST_F(TunerFsmdTest, TunerEnergyIsNanojouleScale) {
  ScriptedPort port({}, 10'000);
  TunerFsmd tuner(model_, timing_, TunerFsmd::shift_for(2'000'000));
  const TunerFsmd::Result r = tuner.run(port);
  // Paper: ~11.9 nJ for an average search of ~5-6 configurations.
  EXPECT_GT(r.tuner_energy, 0.5e-9);
  EXPECT_LT(r.tuner_energy, 50e-9);
}

// --- counter plausibility guards -------------------------------------------

TEST_F(TunerFsmdTest, PlausibleAcceptsGenuineCounters) {
  TunerFsmd tuner(model_, timing_, TunerFsmd::shift_for(2'000'000));
  TunerCounters c;
  c.accesses = 1'000'000;
  c.hits = 980'000;
  c.misses = 20'000;
  c.cycles = c.accesses + 30 * c.misses;
  std::string reason;
  EXPECT_TRUE(tuner.plausible(c, &reason)) << reason;
  // Victim-buffer hits and write-through store misses are counted in
  // neither `hits` nor `misses`, so a genuine interval may have
  // hits + misses < accesses. The guard must accept that.
  c.hits = 900'000;
  EXPECT_TRUE(tuner.plausible(c, &reason)) << reason;
}

TEST_F(TunerFsmdTest, PlausibleRejectsEachInvariantViolation) {
  TunerFsmd tuner(model_, timing_, TunerFsmd::shift_for(2'000'000));
  TunerCounters good;
  good.accesses = 1'000'000;
  good.hits = 980'000;
  good.misses = 20'000;
  good.cycles = 1'600'000;
  good.pred_first_hits = 900'000;
  ASSERT_TRUE(tuner.plausible(good));

  std::string reason;
  TunerCounters c = good;
  c.accesses = 0;
  c.hits = c.misses = c.cycles = c.pred_first_hits = 0;
  EXPECT_FALSE(tuner.plausible(c, &reason));
  EXPECT_NE(reason.find("empty interval"), std::string::npos);

  c = good;
  c.hits = c.accesses + 1;  // more hits than accesses
  EXPECT_FALSE(tuner.plausible(c, &reason));
  EXPECT_NE(reason.find("exceed the access counter"), std::string::npos);

  c = good;
  c.misses = 30'000;  // hits + misses > accesses
  EXPECT_FALSE(tuner.plausible(c, &reason));
  EXPECT_NE(reason.find("exceed the access counter"), std::string::npos);

  c = good;
  c.pred_first_hits = c.hits + 1;
  EXPECT_FALSE(tuner.plausible(c, &reason));
  EXPECT_NE(reason.find("predicted-way"), std::string::npos);

  c = good;
  c.cycles = c.accesses - 1;  // faster than one cycle per access
  EXPECT_FALSE(tuner.plausible(c, &reason));
  EXPECT_NE(reason.find("shorter than its accesses"), std::string::npos);

  c = good;
  c.cycles = c.accesses * 1000;  // slower than any legal miss service
  EXPECT_FALSE(tuner.plausible(c, &reason));
  EXPECT_NE(reason.find("implausibly long"), std::string::npos);

  c = TunerCounters{};
  c.accesses = 1ull << 40;  // stuck-high counter, otherwise self-consistent
  c.hits = c.accesses;
  c.cycles = c.accesses;
  EXPECT_FALSE(tuner.plausible(c, &reason));
  EXPECT_NE(reason.find("saturate"), std::string::npos);
}

// A port whose first measurement of every configuration arrives corrupted
// (hits > accesses) and whose re-measurements are clean — the transient
// single-event-upset case the bounded-retry guard exists for.
class FlakyPort final : public TunerPort {
 public:
  FlakyPort(ScriptedPort& inner, unsigned bad_measures_per_config)
      : inner_(&inner), bad_per_config_(bad_measures_per_config) {}

  TunerCounters measure(const CacheConfig& cfg) override {
    TunerCounters c = inner_->measure(cfg);
    if (seen_[cfg.name()]++ < bad_per_config_) {
      c.hits = c.accesses + 1;  // impossible: more hits than accesses
    }
    return c;
  }

 private:
  ScriptedPort* inner_;
  unsigned bad_per_config_;
  std::map<std::string, unsigned> seen_;
};

TEST_F(TunerFsmdTest, GuardsRemeasureTransientCorruption) {
  const std::map<std::string, std::uint64_t> landscape = {
      {"2K_1W_16B", 50'000}, {"4K_1W_16B", 10'000}, {"4K_1W_32B", 6'000}};
  const unsigned shift = TunerFsmd::shift_for(2'000'000);

  ScriptedPort clean_port(landscape, 20'000);
  TunerFsmd clean_tuner(model_, timing_, shift);
  const TunerFsmd::Result clean = clean_tuner.run(clean_port);

  ScriptedPort inner(landscape, 20'000);
  FlakyPort flaky(inner, /*bad_measures_per_config=*/1);
  TunerFsmd tuner(model_, timing_, shift);
  const TunerFsmd::Result r = tuner.run(flaky);

  // One retry per configuration recovers the clean walk exactly.
  EXPECT_EQ(r.best.name(), clean.best.name());
  EXPECT_EQ(r.configs_examined, clean.configs_examined);
  EXPECT_FALSE(r.guard_exhausted);
  EXPECT_EQ(r.remeasurements, r.configs_examined);
  EXPECT_EQ(r.rejected_intervals, r.configs_examined);
  // Each retry costs a counter reload plus the guard comparisons.
  EXPECT_EQ(r.tuner_cycles,
            clean.tuner_cycles +
                r.remeasurements * (TunerFsmd::kCounterLoadCycles +
                                    TunerFsmd::kGuardCheckCycles));
}

// A port where one configuration's counters NEVER arrive clean.
class PoisonedPort final : public TunerPort {
 public:
  PoisonedPort(ScriptedPort& inner, std::string poisoned)
      : inner_(&inner), poisoned_(std::move(poisoned)) {}

  TunerCounters measure(const CacheConfig& cfg) override {
    TunerCounters c = inner_->measure(cfg);
    if (cfg.name() == poisoned_) c.cycles = 0;  // impossible: 0 cycles
    return c;
  }

 private:
  ScriptedPort* inner_;
  std::string poisoned_;
};

TEST_F(TunerFsmdTest, GuardExhaustionNeverSelectsThePoisonedCandidate) {
  // 4K_1W_16B would win cleanly, but its counters never arrive intact:
  // the guarded tuner must give up on it and keep a clean choice.
  const std::map<std::string, std::uint64_t> landscape = {
      {"2K_1W_16B", 50'000}, {"4K_1W_16B", 1'000}};
  ScriptedPort inner(landscape, 60'000);
  PoisonedPort port(inner, "4K_1W_16B");
  TunerFsmd tuner(model_, timing_, TunerFsmd::shift_for(2'000'000));
  const TunerFsmd::Result r = tuner.run(port);

  EXPECT_TRUE(r.guard_exhausted);
  EXPECT_NE(r.best.name(), "4K_1W_16B");
  // max_retries re-measures plus the final rejection, once.
  EXPECT_EQ(r.remeasurements, tuner.guards().max_retries);
  EXPECT_EQ(r.rejected_intervals, tuner.guards().max_retries + 1);
}

TEST_F(TunerFsmdTest, GuardsOffAcceptsTheGarbage) {
  // Same poisoned landscape with guards disabled: zero-cycle counters make
  // the poisoned candidate's quantized static energy vanish, and the
  // unguarded tuner happily selects it.
  const std::map<std::string, std::uint64_t> landscape = {
      {"2K_1W_16B", 50'000}, {"4K_1W_16B", 1'000}};
  ScriptedPort inner(landscape, 60'000);
  PoisonedPort port(inner, "4K_1W_16B");
  TunerFsmd tuner(model_, timing_, TunerFsmd::shift_for(2'000'000),
                  TunerGuards::off());
  const TunerFsmd::Result r = tuner.run(port);

  EXPECT_EQ(r.rejected_intervals, 0u);
  EXPECT_EQ(r.remeasurements, 0u);
  EXPECT_FALSE(r.guard_exhausted);
  EXPECT_EQ(r.best.size_kb, CacheSizeKB::k4);  // took the poisoned bait
}

TEST_F(TunerFsmdTest, GuardsAreFreeOnAPristinePort) {
  // Guards on vs. off over clean measurements: bit-identical walk, cycle
  // count, and energy — the zero-fault path must not change at all.
  const std::map<std::string, std::uint64_t> landscape = {
      {"2K_1W_16B", 50'000}, {"4K_1W_16B", 10'000}, {"4K_1W_32B", 6'000}};
  const unsigned shift = TunerFsmd::shift_for(2'000'000);

  ScriptedPort port_on(landscape, 20'000);
  TunerFsmd guarded(model_, timing_, shift);
  const TunerFsmd::Result on = guarded.run(port_on);

  ScriptedPort port_off(landscape, 20'000);
  TunerFsmd unguarded(model_, timing_, shift, TunerGuards::off());
  const TunerFsmd::Result off = unguarded.run(port_off);

  EXPECT_EQ(on.best.name(), off.best.name());
  EXPECT_EQ(on.configs_examined, off.configs_examined);
  EXPECT_EQ(on.tuner_cycles, off.tuner_cycles);
  EXPECT_DOUBLE_EQ(on.tuner_energy, off.tuner_energy);
  EXPECT_EQ(on.rejected_intervals, 0u);
  EXPECT_EQ(on.remeasurements, 0u);
  EXPECT_FALSE(on.guard_exhausted);
}

TEST(CountersFromStats, MapsFields) {
  CacheStats s;
  s.accesses = 10;
  s.hits = 8;
  s.misses = 2;
  s.cycles = 40;
  s.pred_first_hits = 7;
  const TunerCounters c = counters_from_stats(s);
  EXPECT_EQ(c.accesses, 10u);
  EXPECT_EQ(c.hits, 8u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.cycles, 40u);
  EXPECT_EQ(c.pred_first_hits, 7u);
}

}  // namespace
}  // namespace stcache
