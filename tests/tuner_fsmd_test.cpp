// Tests of the hardware tuner FSMD model: fixed-point energy vs. the
// double-precision reference, cycle accounting (64 cycles per
// configuration evaluation, as the paper's gate-level simulation reports),
// Equation 2 energy, and saturation behavior.
#include <gtest/gtest.h>

#include <map>

#include "core/evaluator.hpp"
#include "core/ports.hpp"
#include "core/tuner_fsmd.hpp"
#include "trace/synthetic.hpp"
#include "workloads/workload.hpp"

namespace stcache {
namespace {

class TunerFsmdTest : public ::testing::Test {
 protected:
  EnergyModel model_;
  TimingParams timing_;
};

TEST_F(TunerFsmdTest, CyclesPerEvaluationIs64) {
  // The documented budget must reproduce the paper's number exactly.
  EXPECT_EQ(TunerFsmd::kCyclesPerEvaluation, 64u);
}

TEST_F(TunerFsmdTest, ShiftForCountsBits) {
  EXPECT_EQ(TunerFsmd::shift_for(0xFFFF), 0u);
  EXPECT_EQ(TunerFsmd::shift_for(0x10000), 1u);
  EXPECT_EQ(TunerFsmd::shift_for(1'000'000), 4u);
  EXPECT_EQ(TunerFsmd::shift_for(1ull << 40), 25u);
}

TEST_F(TunerFsmdTest, QuantizedEnergyTracksDoubleReference) {
  TunerFsmd tuner(model_, timing_, /*counter_shift=*/6);
  // Representative counters: a mid-size interval.
  TunerCounters c;
  c.accesses = 1'000'000;
  c.hits = 980'000;
  c.misses = 20'000;
  c.cycles = 2'500'000;
  for (const char* name : {"2K_1W_16B", "4K_1W_32B", "8K_4W_64B", "8K_2W_16B"}) {
    const CacheConfig cfg = CacheConfig::parse(name);
    const U32 q = tuner.quantized_energy(cfg, c);
    ASSERT_FALSE(q.saturated()) << name;
    const double fsmd_joules =
        dequantize(q.raw(), tuner.energy_lsb()) * (1 << 6);
    // Double-precision Equation 1 with the same three-term structure.
    CacheStats s;
    s.accesses = c.accesses;
    s.hits = c.hits;
    s.misses = c.misses;
    s.cycles = c.cycles;
    s.fill_bytes = c.misses * cfg.line_bytes();
    s.stall_cycles = c.misses * timing_.miss_stall_cycles(cfg.line_bytes());
    const double ref = model_.evaluate(cfg, s).total();
    EXPECT_NEAR(fsmd_joules, ref, 0.05 * ref) << name;
  }
}

TEST_F(TunerFsmdTest, SaturatesOnHugeCounters) {
  TunerFsmd tuner(model_, timing_, /*counter_shift=*/0);
  TunerCounters c;
  c.accesses = 1ull << 32;  // far beyond 16 bits at shift 0
  c.hits = c.accesses;
  c.misses = 1ull << 30;
  c.cycles = 1ull << 33;
  const U32 q = tuner.quantized_energy(CacheConfig::parse("8K_4W_32B"), c);
  EXPECT_TRUE(q.saturated());
}

TEST_F(TunerFsmdTest, PredictionEvaluationUsesPredictedProbeConstants) {
  TunerFsmd tuner(model_, timing_, 4);
  TunerCounters c;
  c.accesses = 100'000;
  c.hits = 99'000;
  c.misses = 1'000;
  c.cycles = 150'000;
  c.pred_first_hits = 90'000;
  const U32 with_pred =
      tuner.quantized_energy(CacheConfig::parse("8K_4W_16B_P"), c);
  const U32 without =
      tuner.quantized_energy(CacheConfig::parse("8K_4W_16B"), c);
  // 90% first-hit rate on a 4-way cache: prediction must look cheaper.
  EXPECT_LT(with_pred.raw(), without.raw());
}

TEST_F(TunerFsmdTest, PredictionOnDirectMappedRejected) {
  TunerFsmd tuner(model_, timing_, 4);
  CacheConfig bad{CacheSizeKB::k2, Assoc::w1, LineBytes::b16, true};
  TunerCounters c;
  EXPECT_THROW(tuner.quantized_energy(bad, c), Error);
}

// A scripted port with a fixed energy landscape lets us check the FSMD's
// walk order and cycle accounting precisely.
class ScriptedPort final : public TunerPort {
 public:
  // Miss counts per configuration name; unlisted configs get `fallback`.
  ScriptedPort(std::map<std::string, std::uint64_t> misses,
               std::uint64_t fallback)
      : misses_(std::move(misses)), fallback_(fallback) {}

  TunerCounters measure(const CacheConfig& cfg) override {
    visited.push_back(cfg.name());
    TunerCounters c;
    c.accesses = 1'000'000;
    auto it = misses_.find(cfg.name());
    c.misses = it != misses_.end() ? it->second : fallback_;
    c.hits = c.accesses - c.misses;
    c.cycles = c.accesses + 30 * c.misses;
    return c;
  }

  std::vector<std::string> visited;

 private:
  std::map<std::string, std::uint64_t> misses_;
  std::uint64_t fallback_;
};

TEST_F(TunerFsmdTest, WalksPaperOrderAndStopsOnRegression) {
  // 4 KB is the sweet spot; 32 B lines help; associativity does not.
  ScriptedPort port(
      {
          {"2K_1W_16B", 50'000},
          {"4K_1W_16B", 10'000},
          {"8K_1W_16B", 9'500},   // tiny gain, not worth the bigger cache
          {"4K_1W_32B", 6'000},
          {"4K_1W_64B", 7'000},
          {"4K_2W_32B", 5'900},   // small miss gain, but more probe energy
      },
      20'000);
  TunerFsmd tuner(model_, timing_, TunerFsmd::shift_for(2'000'000));
  const TunerFsmd::Result r = tuner.run(port);
  // Walk: 2K, 4K, 8K (8K worse) | 32B, 64B (64B worse) | 2W (worse).
  EXPECT_EQ(port.visited.size(), r.configs_examined);
  EXPECT_EQ(port.visited.front(), "2K_1W_16B");
  EXPECT_EQ(r.best.name(), "4K_1W_32B");
  EXPECT_EQ(r.tuner_cycles, r.configs_examined * 64ull);
  EXPECT_DOUBLE_EQ(r.tuner_energy,
                   r.tuner_cycles * model_.params().tuner_power /
                       model_.params().clock_hz);
}

TEST_F(TunerFsmdTest, AgreesWithBehaviouralHeuristicOnWorkloads) {
  // End-to-end: the fixed-point FSMD must reach a configuration whose
  // (double-precision) energy matches the behavioural heuristic's choice.
  // Quantization may legitimately flip exact near-ties — e.g. the line-size
  // walk on a loop that fits the cache, where the paper's own Figure 3
  // shows line size barely moves instruction energy — so we assert energy
  // equivalence within 2% rather than name equality.
  for (const char* name : {"crc", "bcnt", "jpeg", "auto"}) {
    const Trace trace = capture_trace(find_workload(name));
    const SplitTrace split = split_trace(trace);

    TraceEvaluator eval(split.ifetch, model_, timing_);
    const SearchResult behavioural = tune(eval);

    TraceTunerPort port(split.ifetch, timing_);
    TunerFsmd tuner(model_, timing_,
                    TunerFsmd::shift_for(split.ifetch.size() * 4));
    const TunerFsmd::Result fsmd = tuner.run(port);

    EXPECT_FALSE(fsmd.saturated) << name;
    EXPECT_EQ(fsmd.best.size_kb, behavioural.best.size_kb) << name;
    EXPECT_EQ(fsmd.best.assoc, behavioural.best.assoc) << name;
    const double fsmd_choice_energy = eval.energy(fsmd.best);
    EXPECT_LE(fsmd_choice_energy, 1.02 * behavioural.best_energy) << name;
    // Walk lengths may differ by the flipped near-ties only.
    EXPECT_NEAR(static_cast<double>(fsmd.configs_examined),
                static_cast<double>(behavioural.configs_examined), 2.0)
        << name;
  }
}

TEST_F(TunerFsmdTest, TunerEnergyIsNanojouleScale) {
  ScriptedPort port({}, 10'000);
  TunerFsmd tuner(model_, timing_, TunerFsmd::shift_for(2'000'000));
  const TunerFsmd::Result r = tuner.run(port);
  // Paper: ~11.9 nJ for an average search of ~5-6 configurations.
  EXPECT_GT(r.tuner_energy, 0.5e-9);
  EXPECT_LT(r.tuner_energy, 50e-9);
}

TEST(CountersFromStats, MapsFields) {
  CacheStats s;
  s.accesses = 10;
  s.hits = 8;
  s.misses = 2;
  s.cycles = 40;
  s.pred_first_hits = 7;
  const TunerCounters c = counters_from_stats(s);
  EXPECT_EQ(c.accesses, 10u);
  EXPECT_EQ(c.hits, 8u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.cycles, 40u);
  EXPECT_EQ(c.pred_first_hits, 7u);
}

}  // namespace
}  // namespace stcache
