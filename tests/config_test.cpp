// Tests of the 27-point configuration space (cache/config.hpp).
#include <gtest/gtest.h>

#include <set>

#include "cache/config.hpp"
#include "util/error.hpp"

namespace stcache {
namespace {

TEST(Config, ExactlyTwentySevenLegalConfigs) {
  EXPECT_EQ(all_configs().size(), 27u);  // the paper's count
}

TEST(Config, EighteenBaseConfigs) {
  EXPECT_EQ(base_configs().size(), 18u);
  for (const CacheConfig& c : base_configs()) {
    EXPECT_FALSE(c.way_prediction);
  }
}

TEST(Config, NamesAreUnique) {
  std::set<std::string> names;
  for (const CacheConfig& c : all_configs()) names.insert(c.name());
  EXPECT_EQ(names.size(), all_configs().size());
}

TEST(Config, ParseRoundTrip) {
  for (const CacheConfig& c : all_configs()) {
    EXPECT_EQ(CacheConfig::parse(c.name()), c) << c.name();
  }
}

TEST(Config, ParseRejectsGarbage) {
  EXPECT_THROW(CacheConfig::parse(""), Error);
  EXPECT_THROW(CacheConfig::parse("8K"), Error);
  EXPECT_THROW(CacheConfig::parse("8K_4W"), Error);
  EXPECT_THROW(CacheConfig::parse("8K_4W_32B_X"), Error);
  EXPECT_THROW(CacheConfig::parse("3K_1W_16B"), Error);
}

TEST(Config, ParseRejectsIllegalCombinations) {
  EXPECT_THROW(CacheConfig::parse("2K_2W_16B"), Error);   // 2 KB is 1-way only
  EXPECT_THROW(CacheConfig::parse("4K_4W_16B"), Error);   // 4 KB is at most 2-way
  EXPECT_THROW(CacheConfig::parse("2K_1W_16B_P"), Error); // pred needs assoc > 1
}

TEST(Config, SizeAssocLegality) {
  auto legal = [](CacheSizeKB s, Assoc a) {
    return CacheConfig{s, a, LineBytes::b16, false}.valid();
  };
  EXPECT_TRUE(legal(CacheSizeKB::k8, Assoc::w4));
  EXPECT_TRUE(legal(CacheSizeKB::k8, Assoc::w2));
  EXPECT_TRUE(legal(CacheSizeKB::k8, Assoc::w1));
  EXPECT_TRUE(legal(CacheSizeKB::k4, Assoc::w2));
  EXPECT_TRUE(legal(CacheSizeKB::k4, Assoc::w1));
  EXPECT_TRUE(legal(CacheSizeKB::k2, Assoc::w1));
  EXPECT_FALSE(legal(CacheSizeKB::k2, Assoc::w2));
  EXPECT_FALSE(legal(CacheSizeKB::k2, Assoc::w4));
  EXPECT_FALSE(legal(CacheSizeKB::k4, Assoc::w4));
}

TEST(Config, DerivedGeometry8K4W) {
  CacheConfig c{CacheSizeKB::k8, Assoc::w4, LineBytes::b32, false};
  EXPECT_EQ(c.size_bytes(), 8192u);
  EXPECT_EQ(c.ways(), 4u);
  EXPECT_EQ(c.banks_powered(), 4u);
  EXPECT_EQ(c.banks_per_way(), 1u);
  EXPECT_EQ(c.num_sets(), 128u);
  EXPECT_EQ(c.index_bits(), 7u);
  EXPECT_EQ(c.sublines_per_line(), 2u);
}

TEST(Config, DerivedGeometry8K1W) {
  CacheConfig c{CacheSizeKB::k8, Assoc::w1, LineBytes::b64, false};
  EXPECT_EQ(c.banks_per_way(), 4u);  // way concatenation fuses all banks
  EXPECT_EQ(c.num_sets(), 512u);
  EXPECT_EQ(c.index_bits(), 9u);
  EXPECT_EQ(c.sublines_per_line(), 4u);
}

TEST(Config, DerivedGeometry2K1W) {
  CacheConfig c{CacheSizeKB::k2, Assoc::w1, LineBytes::b16, false};
  EXPECT_EQ(c.banks_powered(), 1u);
  EXPECT_EQ(c.num_sets(), 128u);
  EXPECT_EQ(c.sublines_per_line(), 1u);
}

TEST(Config, NameFormat) {
  EXPECT_EQ(base_cache().name(), "8K_4W_32B");
  CacheConfig p{CacheSizeKB::k8, Assoc::w4, LineBytes::b16, true};
  EXPECT_EQ(p.name(), "8K_4W_16B_P");
}

TEST(Config, BaseCacheIsThePaperReference) {
  const CacheConfig b = base_cache();
  EXPECT_EQ(b.size_kb, CacheSizeKB::k8);
  EXPECT_EQ(b.assoc, Assoc::w4);
  EXPECT_EQ(b.line, LineBytes::b32);
  EXPECT_FALSE(b.way_prediction);
}

// Way-prediction variants exist exactly for the 9 set-associative bases.
TEST(Config, PredictionVariantCount) {
  unsigned pred = 0;
  for (const CacheConfig& c : all_configs()) {
    if (c.way_prediction) {
      ++pred;
      EXPECT_NE(c.assoc, Assoc::w1);
    }
  }
  EXPECT_EQ(pred, 9u);
}

}  // namespace
}  // namespace stcache
