// Tests of the two-pass assembler: directives, labels, expressions,
// pseudo-instructions, error handling, and segment layout.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/isa.hpp"
#include "util/error.hpp"

namespace stcache {
namespace {

// Fetch the encoded word at `addr` from a program.
std::uint32_t word_at(const Program& p, std::uint32_t addr) {
  for (const Segment& s : p.segments) {
    if (addr >= s.base && addr + 4 <= s.base + s.bytes.size()) {
      const std::size_t off = addr - s.base;
      return static_cast<std::uint32_t>(s.bytes[off]) |
             (static_cast<std::uint32_t>(s.bytes[off + 1]) << 8) |
             (static_cast<std::uint32_t>(s.bytes[off + 2]) << 16) |
             (static_cast<std::uint32_t>(s.bytes[off + 3]) << 24);
    }
  }
  fail("word_at: address not covered");
}

TEST(Assembler, MinimalProgram) {
  const Program p = assemble("main: halt\n");
  EXPECT_EQ(p.entry, 0u);
  EXPECT_EQ(decode(word_at(p, 0)).op, Op::kHalt);
}

TEST(Assembler, EntryDefaultsToMainLabel) {
  const Program p = assemble(R"(
        nop
main:   halt
)");
  EXPECT_EQ(p.entry, 4u);
}

TEST(Assembler, ThreeOperandInstruction) {
  const Program p = assemble("add t0, t1, t2\nhalt\n");
  const Instr in = decode(word_at(p, 0));
  EXPECT_EQ(in.op, Op::kAdd);
  EXPECT_EQ(in.rd, kT0);
  EXPECT_EQ(in.rs, kT1);
  EXPECT_EQ(in.rt, kT2);
}

TEST(Assembler, MemoryOperandWithOffset) {
  const Program p = assemble("lw t0, -8(sp)\nhalt\n");
  const Instr in = decode(word_at(p, 0));
  EXPECT_EQ(in.op, Op::kLw);
  EXPECT_EQ(in.rt, kT0);
  EXPECT_EQ(in.rs, kSp);
  EXPECT_EQ(in.imm, -8);
}

TEST(Assembler, MemoryOperandWithoutOffset) {
  const Program p = assemble("sw t1, (t2)\nhalt\n");
  const Instr in = decode(word_at(p, 0));
  EXPECT_EQ(in.imm, 0);
  EXPECT_EQ(in.rs, kT2);
}

TEST(Assembler, BranchTargetsResolveForwardAndBackward) {
  const Program p = assemble(R"(
start:  beq t0, t1, done
        b   start
done:   halt
)");
  const Instr fwd = decode(word_at(p, 0));
  EXPECT_EQ(fwd.imm, 1);  // skip one instruction
  const Instr back = decode(word_at(p, 4));
  EXPECT_EQ(back.op, Op::kBeq);  // 'b' expands to beq zero, zero
  EXPECT_EQ(back.imm, -2);
}

TEST(Assembler, LiExpandsToLuiOri) {
  const Program p = assemble("li t0, 0x12345678\nhalt\n");
  const Instr hi = decode(word_at(p, 0));
  const Instr lo = decode(word_at(p, 4));
  EXPECT_EQ(hi.op, Op::kLui);
  EXPECT_EQ(hi.imm, 0x1234);
  EXPECT_EQ(lo.op, Op::kOri);
  EXPECT_EQ(lo.imm, 0x5678);
}

TEST(Assembler, LaResolvesDataLabels) {
  const Program p = assemble(R"(
main:   la  t0, buf
        halt
        .data
buf:    .space 16
)");
  EXPECT_EQ(p.symbol("buf"), kDefaultDataBase);
  const Instr hi = decode(word_at(p, 0));
  const Instr lo = decode(word_at(p, 4));
  EXPECT_EQ(static_cast<std::uint32_t>(hi.imm), kDefaultDataBase >> 16);
  EXPECT_EQ(static_cast<std::uint32_t>(lo.imm), kDefaultDataBase & 0xffffu);
}

TEST(Assembler, ExpressionsWithOffsetsAndHiLo) {
  const Program p = assemble(R"(
main:   la  t0, buf+16
        lui t1, %hi(buf+4)
        ori t1, t1, %lo(buf+4)
        halt
        .data
buf:    .space 64
)");
  const Instr lo = decode(word_at(p, 4));
  EXPECT_EQ(static_cast<std::uint32_t>(lo.imm), (kDefaultDataBase + 16) & 0xffffu);
  const Instr lo2 = decode(word_at(p, 12));
  EXPECT_EQ(static_cast<std::uint32_t>(lo2.imm), (kDefaultDataBase + 4) & 0xffffu);
}

TEST(Assembler, EquConstants) {
  const Program p = assemble(R"(
        .equ N, 42
        .equ TWICE, N+N
main:   addi t0, zero, TWICE
        halt
)");
  EXPECT_EQ(decode(word_at(p, 0)).imm, 84);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
main:   halt
        .data
w:      .word 1, 0x10, -1
h:      .half 2, 3
b:      .byte 4, 255
)");
  EXPECT_EQ(word_at(p, p.symbol("w")), 1u);
  EXPECT_EQ(word_at(p, p.symbol("w") + 4), 0x10u);
  EXPECT_EQ(word_at(p, p.symbol("w") + 8), 0xFFFFFFFFu);
  EXPECT_EQ(p.symbol("h"), p.symbol("w") + 12);
  EXPECT_EQ(p.symbol("b"), p.symbol("h") + 4);
}

TEST(Assembler, WordDirectiveAcceptsLabels) {
  const Program p = assemble(R"(
main:   halt
f1:     halt
        .data
tab:    .word f1, main
)");
  EXPECT_EQ(word_at(p, p.symbol("tab")), p.symbol("f1"));
  EXPECT_EQ(word_at(p, p.symbol("tab") + 4), 0u);
}

TEST(Assembler, AlignDirective) {
  const Program p = assemble(R"(
main:   halt
        .data
b:      .byte 1
        .align 8
w:      .word 5
)");
  EXPECT_EQ(p.symbol("w") % 8, 0u);
}

TEST(Assembler, OrgStartsNewSegment) {
  const Program p = assemble(R"(
main:   halt
        .data
        .org 0x20000
far:    .word 7
)");
  EXPECT_EQ(p.symbol("far"), 0x20000u);
  EXPECT_EQ(word_at(p, 0x20000), 7u);
}

TEST(Assembler, SpaceWithFill) {
  const Program p = assemble(R"(
main:   halt
        .data
buf:    .space 4, 0xAB
)");
  EXPECT_EQ(word_at(p, p.symbol("buf")), 0xABABABABu);
}

TEST(Assembler, AsciiDirectives) {
  const Program p = assemble(R"(
main:   halt
        .data
s1:     .ascii "Hi"
s2:     .asciiz "ok, bye"
end:    .byte 1
)");
  EXPECT_EQ(p.symbol("s2"), p.symbol("s1") + 2);
  // "ok, bye" contains a comma inside the quotes: 7 chars + NUL.
  EXPECT_EQ(p.symbol("end"), p.symbol("s2") + 8);
  const std::uint32_t first = word_at(p, p.symbol("s1"));
  EXPECT_EQ(first & 0xFF, static_cast<std::uint32_t>('H'));
  EXPECT_EQ((first >> 8) & 0xFF, static_cast<std::uint32_t>('i'));
}

TEST(Assembler, AsciiEscapes) {
  const Program p = assemble(R"(
main:   halt
        .data
s:      .asciiz "a\n\0\"b"
)");
  const std::uint32_t w = word_at(p, p.symbol("s"));
  EXPECT_EQ(w & 0xFF, static_cast<std::uint32_t>('a'));
  EXPECT_EQ((w >> 8) & 0xFF, static_cast<std::uint32_t>('\n'));
  EXPECT_EQ((w >> 16) & 0xFF, 0u);
  EXPECT_EQ((w >> 24) & 0xFF, static_cast<std::uint32_t>('"'));
}

TEST(Assembler, CommentCharactersInsideStrings) {
  const Program p = assemble(R"(
main:   halt
        .data
s:      .asciiz "a#b;c"   # a real comment
end:    .byte 1, 2, 3
)");
  EXPECT_EQ(p.symbol("end"), p.symbol("s") + 6);  // 5 chars + NUL survived
  const std::uint32_t w = word_at(p, p.symbol("s"));
  EXPECT_EQ((w >> 8) & 0xFF, static_cast<std::uint32_t>('#'));
  EXPECT_EQ((w >> 24) & 0xFF, static_cast<std::uint32_t>(';'));
}

TEST(AssemblerErrors, MalformedStringLiteral) {
  EXPECT_THROW(assemble("main: halt\n.data\ns: .ascii unquoted\n"), Error);
}

TEST(Assembler, PseudoInstructions) {
  const Program p = assemble(R"(
main:   move t0, t1
        nop
        not  t2, t3
        neg  t4, t5
        subi t6, t7, 5
        ret
)");
  EXPECT_EQ(decode(word_at(p, 0)).op, Op::kAdd);
  EXPECT_EQ(decode(word_at(p, 4)).op, Op::kSll);
  EXPECT_EQ(decode(word_at(p, 8)).op, Op::kNor);
  EXPECT_EQ(decode(word_at(p, 12)).op, Op::kSub);
  const Instr subi = decode(word_at(p, 16));
  EXPECT_EQ(subi.op, Op::kAddi);
  EXPECT_EQ(subi.imm, -5);
  const Instr ret = decode(word_at(p, 20));
  EXPECT_EQ(ret.op, Op::kJr);
  EXPECT_EQ(ret.rs, kRa);
}

TEST(Assembler, SwappedComparisonPseudos) {
  const Program p = assemble(R"(
main:   bgt t0, t1, l
        ble t0, t1, l
        bgtu t0, t1, l
        bleu t0, t1, l
l:      halt
)");
  const Instr bgt = decode(word_at(p, 0));
  EXPECT_EQ(bgt.op, Op::kBlt);
  EXPECT_EQ(bgt.rs, kT1);  // operands swapped
  EXPECT_EQ(bgt.rt, kT0);
  EXPECT_EQ(decode(word_at(p, 4)).op, Op::kBge);
  EXPECT_EQ(decode(word_at(p, 8)).op, Op::kBltu);
  EXPECT_EQ(decode(word_at(p, 12)).op, Op::kBgeu);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
# full-line comment
main:   halt   # trailing comment
        ; alt comment style
)");
  EXPECT_EQ(decode(word_at(p, 0)).op, Op::kHalt);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("a: halt\na: halt\n"), Error);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_THROW(assemble("main: j nowhere\n"), Error);
}

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_THROW(assemble("main: bogus t0, t1\n"), Error);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  EXPECT_THROW(assemble("main: addi t0, t0, 100000\n"), Error);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("main: add t0, t1\n"), Error);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_THROW(assemble("main: add q0, t1, t2\n"), Error);
}

TEST(AssemblerErrors, MessageContainsLineNumber) {
  try {
    assemble("nop\nnop\nbogus\n", "unit.s");
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unit.s:3"), std::string::npos)
        << e.what();
  }
}

TEST(AssemblerErrors, OverlappingSegments) {
  EXPECT_THROW(assemble(R"(
        .org 0x0
main:   halt
        .org 0x0
again:  halt
)"), Error);
}

TEST(Program, SymbolLookupThrowsOnMissing) {
  const Program p = assemble("main: halt\n");
  EXPECT_THROW(p.symbol("missing"), Error);
}

TEST(Program, EndAddressCoversAllSegments) {
  const Program p = assemble(R"(
main:   halt
        .data
buf:    .space 100
)");
  EXPECT_EQ(p.end_address(), kDefaultDataBase + 100);
}

}  // namespace
}  // namespace stcache
